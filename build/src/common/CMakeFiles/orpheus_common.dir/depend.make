# Empty dependencies file for orpheus_common.
# This may be replaced when dependencies are built.
