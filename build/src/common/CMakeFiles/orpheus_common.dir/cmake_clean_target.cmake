file(REMOVE_RECURSE
  "liborpheus_common.a"
)
