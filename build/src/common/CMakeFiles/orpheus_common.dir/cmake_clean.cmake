file(REMOVE_RECURSE
  "CMakeFiles/orpheus_common.dir/status.cc.o"
  "CMakeFiles/orpheus_common.dir/status.cc.o.d"
  "CMakeFiles/orpheus_common.dir/string_util.cc.o"
  "CMakeFiles/orpheus_common.dir/string_util.cc.o.d"
  "CMakeFiles/orpheus_common.dir/table_printer.cc.o"
  "CMakeFiles/orpheus_common.dir/table_printer.cc.o.d"
  "liborpheus_common.a"
  "liborpheus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
