file(REMOVE_RECURSE
  "liborpheus_vquel.a"
)
