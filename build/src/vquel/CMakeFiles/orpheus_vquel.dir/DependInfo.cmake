
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vquel/ast.cc" "src/vquel/CMakeFiles/orpheus_vquel.dir/ast.cc.o" "gcc" "src/vquel/CMakeFiles/orpheus_vquel.dir/ast.cc.o.d"
  "/root/repo/src/vquel/cvd_bridge.cc" "src/vquel/CMakeFiles/orpheus_vquel.dir/cvd_bridge.cc.o" "gcc" "src/vquel/CMakeFiles/orpheus_vquel.dir/cvd_bridge.cc.o.d"
  "/root/repo/src/vquel/evaluator.cc" "src/vquel/CMakeFiles/orpheus_vquel.dir/evaluator.cc.o" "gcc" "src/vquel/CMakeFiles/orpheus_vquel.dir/evaluator.cc.o.d"
  "/root/repo/src/vquel/lexer.cc" "src/vquel/CMakeFiles/orpheus_vquel.dir/lexer.cc.o" "gcc" "src/vquel/CMakeFiles/orpheus_vquel.dir/lexer.cc.o.d"
  "/root/repo/src/vquel/parser.cc" "src/vquel/CMakeFiles/orpheus_vquel.dir/parser.cc.o" "gcc" "src/vquel/CMakeFiles/orpheus_vquel.dir/parser.cc.o.d"
  "/root/repo/src/vquel/store.cc" "src/vquel/CMakeFiles/orpheus_vquel.dir/store.cc.o" "gcc" "src/vquel/CMakeFiles/orpheus_vquel.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orpheus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/orpheus_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/orpheus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
