file(REMOVE_RECURSE
  "CMakeFiles/orpheus_vquel.dir/ast.cc.o"
  "CMakeFiles/orpheus_vquel.dir/ast.cc.o.d"
  "CMakeFiles/orpheus_vquel.dir/cvd_bridge.cc.o"
  "CMakeFiles/orpheus_vquel.dir/cvd_bridge.cc.o.d"
  "CMakeFiles/orpheus_vquel.dir/evaluator.cc.o"
  "CMakeFiles/orpheus_vquel.dir/evaluator.cc.o.d"
  "CMakeFiles/orpheus_vquel.dir/lexer.cc.o"
  "CMakeFiles/orpheus_vquel.dir/lexer.cc.o.d"
  "CMakeFiles/orpheus_vquel.dir/parser.cc.o"
  "CMakeFiles/orpheus_vquel.dir/parser.cc.o.d"
  "CMakeFiles/orpheus_vquel.dir/store.cc.o"
  "CMakeFiles/orpheus_vquel.dir/store.cc.o.d"
  "liborpheus_vquel.a"
  "liborpheus_vquel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_vquel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
