# Empty dependencies file for orpheus_vquel.
# This may be replaced when dependencies are built.
