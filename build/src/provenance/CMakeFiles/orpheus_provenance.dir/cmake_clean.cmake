file(REMOVE_RECURSE
  "CMakeFiles/orpheus_provenance.dir/explanation.cc.o"
  "CMakeFiles/orpheus_provenance.dir/explanation.cc.o.d"
  "CMakeFiles/orpheus_provenance.dir/inference.cc.o"
  "CMakeFiles/orpheus_provenance.dir/inference.cc.o.d"
  "liborpheus_provenance.a"
  "liborpheus_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
