# Empty compiler generated dependencies file for orpheus_provenance.
# This may be replaced when dependencies are built.
