file(REMOVE_RECURSE
  "liborpheus_provenance.a"
)
