
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/explanation.cc" "src/provenance/CMakeFiles/orpheus_provenance.dir/explanation.cc.o" "gcc" "src/provenance/CMakeFiles/orpheus_provenance.dir/explanation.cc.o.d"
  "/root/repo/src/provenance/inference.cc" "src/provenance/CMakeFiles/orpheus_provenance.dir/inference.cc.o" "gcc" "src/provenance/CMakeFiles/orpheus_provenance.dir/inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orpheus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/orpheus_minidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
