file(REMOVE_RECURSE
  "liborpheus_benchdata.a"
)
