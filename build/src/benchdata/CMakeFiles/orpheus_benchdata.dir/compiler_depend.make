# Empty compiler generated dependencies file for orpheus_benchdata.
# This may be replaced when dependencies are built.
