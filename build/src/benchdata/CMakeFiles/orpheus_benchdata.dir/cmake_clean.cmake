file(REMOVE_RECURSE
  "CMakeFiles/orpheus_benchdata.dir/generator.cc.o"
  "CMakeFiles/orpheus_benchdata.dir/generator.cc.o.d"
  "liborpheus_benchdata.a"
  "liborpheus_benchdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
