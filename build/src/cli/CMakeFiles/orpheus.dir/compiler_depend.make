# Empty compiler generated dependencies file for orpheus.
# This may be replaced when dependencies are built.
