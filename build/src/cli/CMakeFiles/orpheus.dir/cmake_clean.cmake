file(REMOVE_RECURSE
  "CMakeFiles/orpheus.dir/main.cc.o"
  "CMakeFiles/orpheus.dir/main.cc.o.d"
  "orpheus"
  "orpheus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
