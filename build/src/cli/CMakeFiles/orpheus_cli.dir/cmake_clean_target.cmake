file(REMOVE_RECURSE
  "liborpheus_cli.a"
)
