# Empty compiler generated dependencies file for orpheus_cli.
# This may be replaced when dependencies are built.
