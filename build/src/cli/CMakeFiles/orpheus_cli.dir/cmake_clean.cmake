file(REMOVE_RECURSE
  "CMakeFiles/orpheus_cli.dir/command_processor.cc.o"
  "CMakeFiles/orpheus_cli.dir/command_processor.cc.o.d"
  "liborpheus_cli.a"
  "liborpheus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
