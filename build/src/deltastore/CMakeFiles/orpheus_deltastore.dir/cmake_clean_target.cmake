file(REMOVE_RECURSE
  "liborpheus_deltastore.a"
)
