
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deltastore/algorithms.cc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/algorithms.cc.o" "gcc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/algorithms.cc.o.d"
  "/root/repo/src/deltastore/dedup.cc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/dedup.cc.o" "gcc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/dedup.cc.o.d"
  "/root/repo/src/deltastore/delta.cc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/delta.cc.o" "gcc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/delta.cc.o.d"
  "/root/repo/src/deltastore/exact.cc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/exact.cc.o" "gcc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/exact.cc.o.d"
  "/root/repo/src/deltastore/repository.cc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/repository.cc.o" "gcc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/repository.cc.o.d"
  "/root/repo/src/deltastore/storage_graph.cc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/storage_graph.cc.o" "gcc" "src/deltastore/CMakeFiles/orpheus_deltastore.dir/storage_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orpheus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
