# Empty compiler generated dependencies file for orpheus_deltastore.
# This may be replaced when dependencies are built.
