file(REMOVE_RECURSE
  "CMakeFiles/orpheus_deltastore.dir/algorithms.cc.o"
  "CMakeFiles/orpheus_deltastore.dir/algorithms.cc.o.d"
  "CMakeFiles/orpheus_deltastore.dir/dedup.cc.o"
  "CMakeFiles/orpheus_deltastore.dir/dedup.cc.o.d"
  "CMakeFiles/orpheus_deltastore.dir/delta.cc.o"
  "CMakeFiles/orpheus_deltastore.dir/delta.cc.o.d"
  "CMakeFiles/orpheus_deltastore.dir/exact.cc.o"
  "CMakeFiles/orpheus_deltastore.dir/exact.cc.o.d"
  "CMakeFiles/orpheus_deltastore.dir/repository.cc.o"
  "CMakeFiles/orpheus_deltastore.dir/repository.cc.o.d"
  "CMakeFiles/orpheus_deltastore.dir/storage_graph.cc.o"
  "CMakeFiles/orpheus_deltastore.dir/storage_graph.cc.o.d"
  "liborpheus_deltastore.a"
  "liborpheus_deltastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_deltastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
