
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/column.cc" "src/minidb/CMakeFiles/orpheus_minidb.dir/column.cc.o" "gcc" "src/minidb/CMakeFiles/orpheus_minidb.dir/column.cc.o.d"
  "/root/repo/src/minidb/csv.cc" "src/minidb/CMakeFiles/orpheus_minidb.dir/csv.cc.o" "gcc" "src/minidb/CMakeFiles/orpheus_minidb.dir/csv.cc.o.d"
  "/root/repo/src/minidb/database.cc" "src/minidb/CMakeFiles/orpheus_minidb.dir/database.cc.o" "gcc" "src/minidb/CMakeFiles/orpheus_minidb.dir/database.cc.o.d"
  "/root/repo/src/minidb/join.cc" "src/minidb/CMakeFiles/orpheus_minidb.dir/join.cc.o" "gcc" "src/minidb/CMakeFiles/orpheus_minidb.dir/join.cc.o.d"
  "/root/repo/src/minidb/table.cc" "src/minidb/CMakeFiles/orpheus_minidb.dir/table.cc.o" "gcc" "src/minidb/CMakeFiles/orpheus_minidb.dir/table.cc.o.d"
  "/root/repo/src/minidb/value.cc" "src/minidb/CMakeFiles/orpheus_minidb.dir/value.cc.o" "gcc" "src/minidb/CMakeFiles/orpheus_minidb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orpheus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
