file(REMOVE_RECURSE
  "CMakeFiles/orpheus_minidb.dir/column.cc.o"
  "CMakeFiles/orpheus_minidb.dir/column.cc.o.d"
  "CMakeFiles/orpheus_minidb.dir/csv.cc.o"
  "CMakeFiles/orpheus_minidb.dir/csv.cc.o.d"
  "CMakeFiles/orpheus_minidb.dir/database.cc.o"
  "CMakeFiles/orpheus_minidb.dir/database.cc.o.d"
  "CMakeFiles/orpheus_minidb.dir/join.cc.o"
  "CMakeFiles/orpheus_minidb.dir/join.cc.o.d"
  "CMakeFiles/orpheus_minidb.dir/table.cc.o"
  "CMakeFiles/orpheus_minidb.dir/table.cc.o.d"
  "CMakeFiles/orpheus_minidb.dir/value.cc.o"
  "CMakeFiles/orpheus_minidb.dir/value.cc.o.d"
  "liborpheus_minidb.a"
  "liborpheus_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
