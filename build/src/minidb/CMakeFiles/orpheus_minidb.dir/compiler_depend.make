# Empty compiler generated dependencies file for orpheus_minidb.
# This may be replaced when dependencies are built.
