file(REMOVE_RECURSE
  "liborpheus_minidb.a"
)
