file(REMOVE_RECURSE
  "liborpheus_core.a"
)
