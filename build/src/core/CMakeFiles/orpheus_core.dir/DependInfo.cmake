
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_control.cc" "src/core/CMakeFiles/orpheus_core.dir/access_control.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/access_control.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/orpheus_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/cvd.cc" "src/core/CMakeFiles/orpheus_core.dir/cvd.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/cvd.cc.o.d"
  "/root/repo/src/core/data_models.cc" "src/core/CMakeFiles/orpheus_core.dir/data_models.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/data_models.cc.o.d"
  "/root/repo/src/core/lyresplit.cc" "src/core/CMakeFiles/orpheus_core.dir/lyresplit.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/lyresplit.cc.o.d"
  "/root/repo/src/core/online.cc" "src/core/CMakeFiles/orpheus_core.dir/online.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/online.cc.o.d"
  "/root/repo/src/core/partition_store.cc" "src/core/CMakeFiles/orpheus_core.dir/partition_store.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/partition_store.cc.o.d"
  "/root/repo/src/core/partitioning.cc" "src/core/CMakeFiles/orpheus_core.dir/partitioning.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/partitioning.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/orpheus_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/query.cc.o.d"
  "/root/repo/src/core/version_graph.cc" "src/core/CMakeFiles/orpheus_core.dir/version_graph.cc.o" "gcc" "src/core/CMakeFiles/orpheus_core.dir/version_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orpheus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/orpheus_minidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
