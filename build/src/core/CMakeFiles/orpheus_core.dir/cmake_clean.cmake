file(REMOVE_RECURSE
  "CMakeFiles/orpheus_core.dir/access_control.cc.o"
  "CMakeFiles/orpheus_core.dir/access_control.cc.o.d"
  "CMakeFiles/orpheus_core.dir/baselines.cc.o"
  "CMakeFiles/orpheus_core.dir/baselines.cc.o.d"
  "CMakeFiles/orpheus_core.dir/cvd.cc.o"
  "CMakeFiles/orpheus_core.dir/cvd.cc.o.d"
  "CMakeFiles/orpheus_core.dir/data_models.cc.o"
  "CMakeFiles/orpheus_core.dir/data_models.cc.o.d"
  "CMakeFiles/orpheus_core.dir/lyresplit.cc.o"
  "CMakeFiles/orpheus_core.dir/lyresplit.cc.o.d"
  "CMakeFiles/orpheus_core.dir/online.cc.o"
  "CMakeFiles/orpheus_core.dir/online.cc.o.d"
  "CMakeFiles/orpheus_core.dir/partition_store.cc.o"
  "CMakeFiles/orpheus_core.dir/partition_store.cc.o.d"
  "CMakeFiles/orpheus_core.dir/partitioning.cc.o"
  "CMakeFiles/orpheus_core.dir/partitioning.cc.o.d"
  "CMakeFiles/orpheus_core.dir/query.cc.o"
  "CMakeFiles/orpheus_core.dir/query.cc.o.d"
  "CMakeFiles/orpheus_core.dir/version_graph.cc.o"
  "CMakeFiles/orpheus_core.dir/version_graph.cc.o.d"
  "liborpheus_core.a"
  "liborpheus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpheus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
