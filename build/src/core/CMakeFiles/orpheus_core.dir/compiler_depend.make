# Empty compiler generated dependencies file for orpheus_core.
# This may be replaced when dependencies are built.
