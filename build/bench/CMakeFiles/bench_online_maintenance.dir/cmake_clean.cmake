file(REMOVE_RECURSE
  "CMakeFiles/bench_online_maintenance.dir/bench_online_maintenance.cc.o"
  "CMakeFiles/bench_online_maintenance.dir/bench_online_maintenance.cc.o.d"
  "bench_online_maintenance"
  "bench_online_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
