# Empty dependencies file for bench_online_maintenance.
# This may be replaced when dependencies are built.
