# Empty compiler generated dependencies file for bench_partitioning_benefit.
# This may be replaced when dependencies are built.
