file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_benefit.dir/bench_partitioning_benefit.cc.o"
  "CMakeFiles/bench_partitioning_benefit.dir/bench_partitioning_benefit.cc.o.d"
  "bench_partitioning_benefit"
  "bench_partitioning_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
