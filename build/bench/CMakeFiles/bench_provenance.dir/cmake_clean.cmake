file(REMOVE_RECURSE
  "CMakeFiles/bench_provenance.dir/bench_provenance.cc.o"
  "CMakeFiles/bench_provenance.dir/bench_provenance.cc.o.d"
  "bench_provenance"
  "bench_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
