# Empty dependencies file for bench_provenance.
# This may be replaced when dependencies are built.
