# Empty compiler generated dependencies file for bench_checkout_cost_model.
# This may be replaced when dependencies are built.
