file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_tradeoff.dir/bench_partitioning_tradeoff.cc.o"
  "CMakeFiles/bench_partitioning_tradeoff.dir/bench_partitioning_tradeoff.cc.o.d"
  "bench_partitioning_tradeoff"
  "bench_partitioning_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
