file(REMOVE_RECURSE
  "CMakeFiles/bench_deltastore.dir/bench_deltastore.cc.o"
  "CMakeFiles/bench_deltastore.dir/bench_deltastore.cc.o.d"
  "bench_deltastore"
  "bench_deltastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deltastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
