# Empty compiler generated dependencies file for bench_deltastore.
# This may be replaced when dependencies are built.
