file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_runtime.dir/bench_partitioning_runtime.cc.o"
  "CMakeFiles/bench_partitioning_runtime.dir/bench_partitioning_runtime.cc.o.d"
  "bench_partitioning_runtime"
  "bench_partitioning_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
