# Empty compiler generated dependencies file for bench_partitioning_runtime.
# This may be replaced when dependencies are built.
