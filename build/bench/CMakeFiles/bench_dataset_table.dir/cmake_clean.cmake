file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_table.dir/bench_dataset_table.cc.o"
  "CMakeFiles/bench_dataset_table.dir/bench_dataset_table.cc.o.d"
  "bench_dataset_table"
  "bench_dataset_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
