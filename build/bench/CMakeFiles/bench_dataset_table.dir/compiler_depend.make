# Empty compiler generated dependencies file for bench_dataset_table.
# This may be replaced when dependencies are built.
