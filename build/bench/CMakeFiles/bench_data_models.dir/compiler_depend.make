# Empty compiler generated dependencies file for bench_data_models.
# This may be replaced when dependencies are built.
