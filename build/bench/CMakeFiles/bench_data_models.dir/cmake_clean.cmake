file(REMOVE_RECURSE
  "CMakeFiles/bench_data_models.dir/bench_data_models.cc.o"
  "CMakeFiles/bench_data_models.dir/bench_data_models.cc.o.d"
  "bench_data_models"
  "bench_data_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
