# Empty dependencies file for test_cvd.
# This may be replaced when dependencies are built.
