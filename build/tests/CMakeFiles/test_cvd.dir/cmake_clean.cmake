file(REMOVE_RECURSE
  "CMakeFiles/test_cvd.dir/test_cvd.cc.o"
  "CMakeFiles/test_cvd.dir/test_cvd.cc.o.d"
  "test_cvd"
  "test_cvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
