file(REMOVE_RECURSE
  "CMakeFiles/test_online.dir/test_online.cc.o"
  "CMakeFiles/test_online.dir/test_online.cc.o.d"
  "test_online"
  "test_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
