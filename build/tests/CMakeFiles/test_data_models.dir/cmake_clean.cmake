file(REMOVE_RECURSE
  "CMakeFiles/test_data_models.dir/test_data_models.cc.o"
  "CMakeFiles/test_data_models.dir/test_data_models.cc.o.d"
  "test_data_models"
  "test_data_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
