# Empty dependencies file for test_data_models.
# This may be replaced when dependencies are built.
