file(REMOVE_RECURSE
  "CMakeFiles/test_minidb.dir/test_minidb.cc.o"
  "CMakeFiles/test_minidb.dir/test_minidb.cc.o.d"
  "test_minidb"
  "test_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
