# Empty compiler generated dependencies file for test_minidb.
# This may be replaced when dependencies are built.
