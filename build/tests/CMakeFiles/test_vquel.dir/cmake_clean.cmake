file(REMOVE_RECURSE
  "CMakeFiles/test_vquel.dir/test_vquel.cc.o"
  "CMakeFiles/test_vquel.dir/test_vquel.cc.o.d"
  "test_vquel"
  "test_vquel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vquel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
