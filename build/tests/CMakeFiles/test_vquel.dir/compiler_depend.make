# Empty compiler generated dependencies file for test_vquel.
# This may be replaced when dependencies are built.
