file(REMOVE_RECURSE
  "CMakeFiles/test_benchdata.dir/test_benchdata.cc.o"
  "CMakeFiles/test_benchdata.dir/test_benchdata.cc.o.d"
  "test_benchdata"
  "test_benchdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
