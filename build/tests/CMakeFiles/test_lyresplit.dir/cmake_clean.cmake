file(REMOVE_RECURSE
  "CMakeFiles/test_lyresplit.dir/test_lyresplit.cc.o"
  "CMakeFiles/test_lyresplit.dir/test_lyresplit.cc.o.d"
  "test_lyresplit"
  "test_lyresplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lyresplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
