# Empty compiler generated dependencies file for test_lyresplit.
# This may be replaced when dependencies are built.
