file(REMOVE_RECURSE
  "CMakeFiles/test_partition_store.dir/test_partition_store.cc.o"
  "CMakeFiles/test_partition_store.dir/test_partition_store.cc.o.d"
  "test_partition_store"
  "test_partition_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
