# Empty dependencies file for test_deltastore.
# This may be replaced when dependencies are built.
