file(REMOVE_RECURSE
  "CMakeFiles/test_deltastore.dir/test_deltastore.cc.o"
  "CMakeFiles/test_deltastore.dir/test_deltastore.cc.o.d"
  "test_deltastore"
  "test_deltastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deltastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
