file(REMOVE_RECURSE
  "CMakeFiles/team_workflow.dir/team_workflow.cpp.o"
  "CMakeFiles/team_workflow.dir/team_workflow.cpp.o.d"
  "team_workflow"
  "team_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
