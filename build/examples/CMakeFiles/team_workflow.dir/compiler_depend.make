# Empty compiler generated dependencies file for team_workflow.
# This may be replaced when dependencies are built.
