file(REMOVE_RECURSE
  "CMakeFiles/vquel_tour.dir/vquel_tour.cpp.o"
  "CMakeFiles/vquel_tour.dir/vquel_tour.cpp.o.d"
  "vquel_tour"
  "vquel_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vquel_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
