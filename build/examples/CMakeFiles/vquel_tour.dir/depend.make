# Empty dependencies file for vquel_tour.
# This may be replaced when dependencies are built.
