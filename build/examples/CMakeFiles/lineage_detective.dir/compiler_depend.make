# Empty compiler generated dependencies file for lineage_detective.
# This may be replaced when dependencies are built.
