file(REMOVE_RECURSE
  "CMakeFiles/lineage_detective.dir/lineage_detective.cpp.o"
  "CMakeFiles/lineage_detective.dir/lineage_detective.cpp.o.d"
  "lineage_detective"
  "lineage_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
