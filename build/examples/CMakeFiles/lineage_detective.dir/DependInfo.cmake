
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/lineage_detective.cpp" "examples/CMakeFiles/lineage_detective.dir/lineage_detective.cpp.o" "gcc" "examples/CMakeFiles/lineage_detective.dir/lineage_detective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vquel/CMakeFiles/orpheus_vquel.dir/DependInfo.cmake"
  "/root/repo/build/src/deltastore/CMakeFiles/orpheus_deltastore.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/orpheus_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/orpheus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchdata/CMakeFiles/orpheus_benchdata.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/orpheus_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orpheus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
