# Empty compiler generated dependencies file for protein_analysis.
# This may be replaced when dependencies are built.
