file(REMOVE_RECURSE
  "CMakeFiles/protein_analysis.dir/protein_analysis.cpp.o"
  "CMakeFiles/protein_analysis.dir/protein_analysis.cpp.o.d"
  "protein_analysis"
  "protein_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
