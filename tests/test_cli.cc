#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cli/command_processor.h"
#include "core/access_control.h"
#include "common/string_util.h"
#include "minidb/csv.h"

namespace orpheus::cli {
namespace {

using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "orpheus_cli_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << tmpl;
  }
  return tmpl;
}

class CliTest : public ::testing::Test {
 protected:
  std::string Ok(const std::string& line) {
    auto r = processor_.Execute(line);
    EXPECT_TRUE(r.ok()) << "'" << line << "': " << r.status().ToString();
    return r.ok() ? *r : "";
  }
  Status Err(const std::string& line) {
    auto r = processor_.Execute(line);
    EXPECT_FALSE(r.ok()) << "'" << line << "' unexpectedly succeeded";
    return r.status();
  }

  void SeedStagingTable(const std::string& name) {
    Table t(name, Schema({{"city", ValueType::kString},
                          {"pop", ValueType::kInt64}}));
    ASSERT_TRUE(t.InsertRow({Value("springfield"), Value(int64_t{30000})})
                    .ok());
    ASSERT_TRUE(t.InsertRow({Value("shelbyville"), Value(int64_t{20000})})
                    .ok());
    ASSERT_TRUE(processor_.staging()->AdoptTable(std::move(t)).ok());
  }

  CommandProcessor processor_;
};

TEST_F(CliTest, UserLifecycle) {
  EXPECT_EQ(Ok("whoami"), "<anonymous>");
  Ok("create_user alice");
  EXPECT_TRUE(Err("create_user alice").IsAlreadyExists());
  EXPECT_TRUE(Err("config bob").IsNotFound());
  Ok("config alice");
  EXPECT_EQ(Ok("whoami"), "alice");
}

TEST_F(CliTest, InitFromStagingTable) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  EXPECT_NE(processor_.cvd("Cities"), nullptr);
  EXPECT_TRUE(Err("init Cities -t cities").IsAlreadyExists());
  EXPECT_TRUE(Err("init Other -t missing").IsNotFound());
  EXPECT_NE(Ok("ls").find("Cities"), std::string::npos);
}

TEST_F(CliTest, CheckoutCommitCycle) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  Ok("checkout Cities -v 1 -t work");
  Table* work = processor_.staging()->GetTable("work");
  ASSERT_NE(work, nullptr);
  // Edit and commit.
  auto row = work->GetRow(0);
  row[2] = Value(int64_t{31000});
  work->SetRow(0, row);
  std::string out = Ok("commit -t work -m \"census update\"");
  EXPECT_NE(out.find("version 2"), std::string::npos);
  // Staging table gone after commit.
  EXPECT_EQ(processor_.staging()->GetTable("work"), nullptr);
  // Metadata recorded.
  std::string log = Ok("log Cities");
  EXPECT_NE(log.find("census update"), std::string::npos);
}

TEST_F(CliTest, CommitRequiresCheckoutProvenance) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities");
  SeedStagingTable("rogue");
  EXPECT_TRUE(Err("commit -t rogue -m x").IsNotFound());
}

TEST_F(CliTest, AccessControlOnStagingTables) {
  SeedStagingTable("cities");
  Ok("create_user alice");
  Ok("create_user bob");
  Ok("config alice");
  Ok("init Cities -t cities -k city");
  Ok("checkout Cities -v 1 -t alices_work");
  Ok("config bob");
  // Bob cannot commit Alice's materialized table (Sec. 3.3.1).
  auto status = Err("commit -t alices_work -m steal");
  EXPECT_TRUE(status.IsInvalidArgument());
  Ok("config alice");
  Ok("commit -t alices_work -m mine");
}

TEST_F(CliTest, DiffCommand) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  Ok("checkout Cities -v 1 -t w");
  Table* w = processor_.staging()->GetTable("w");
  w->AppendRowUnchecked({Value::Null(), Value("ogdenville"),
                         Value(int64_t{5000})});
  Ok("commit -t w -m grow");
  std::string out = Ok("diff Cities -v 2,1");
  EXPECT_NE(out.find("ogdenville"), std::string::npos);
  EXPECT_TRUE(Err("diff Cities -v 1").IsInvalidArgument());
}

TEST_F(CliTest, RunSqlCommand) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  std::string out = Ok(
      "run \"SELECT city FROM VERSION 1 OF CVD Cities WHERE pop > 25000\"");
  EXPECT_NE(out.find("springfield"), std::string::npos);
  EXPECT_EQ(out.find("shelbyville"), std::string::npos);
  EXPECT_TRUE(Err("run \"SELECT * FROM VERSION 1 OF CVD Ghost\"")
                  .IsNotFound());
}

TEST_F(CliTest, CsvWorkflow) {
  // init from csv, checkout to csv, edit the file, commit it back.
  std::string dir = testing::TempDir();
  std::string data_path = dir + "/cli_cities.csv";
  {
    std::ofstream f(data_path);
    f << "city,pop\nspringfield,30000\nshelbyville,20000\n";
  }
  Ok("init Cities -f " + data_path + " -k city");
  std::string work_path = dir + "/cli_work.csv";
  Ok("checkout Cities -v 1 -f " + work_path);
  // The exported file carries the hidden _rid column.
  auto exported = minidb::ReadCsv(work_path, "w");
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->schema().column(0).name, "_rid");
  // Append a record (empty rid) and commit with a schema file.
  {
    std::ofstream f(work_path, std::ios::app);
    f << ",ogdenville,5000\n";
  }
  std::string schema_path = dir + "/cli_schema.txt";
  {
    std::ofstream f(schema_path);
    f << "city:string\npop:int64\n";
  }
  std::string out = Ok("commit -f " + work_path + " -s " + schema_path +
                       " -m \"from csv\"");
  EXPECT_NE(out.find("version 2"), std::string::npos);
  // The new version contains three records; unchanged ones kept their rids.
  auto rids = processor_.cvd("Cities")->VersionRecords(2);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 3u);
  auto diff = processor_.cvd("Cities")->VDiff(2, 1);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 1u);
  std::remove(data_path.c_str());
  std::remove(work_path.c_str());
  std::remove(schema_path.c_str());
}

TEST_F(CliTest, DropAndUnknownCommands) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities");
  Ok("drop Cities");
  EXPECT_TRUE(Err("drop Cities").IsNotFound());
  EXPECT_TRUE(Err("frobnicate").IsInvalidArgument());
  EXPECT_EQ(Ok(""), "");
}

TEST_F(CliTest, OptimizeCommand) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  for (int i = 0; i < 5; ++i) {
    Ok(orpheus::StrFormat("checkout Cities -v %d -t w%d", i + 1, i));
    Table* w = processor_.staging()->GetTable(orpheus::StrFormat("w%d", i));
    w->AppendRowUnchecked({Value::Null(), Value(orpheus::StrFormat("town%d", i)),
                           Value(static_cast<int64_t>(100 + i))});
    Ok(orpheus::StrFormat("commit -t w%d -m grow%d", i, i));
  }
  std::string out = Ok("optimize Cities -g 2");
  EXPECT_NE(out.find("LyreSplit plan"), std::string::npos);
  EXPECT_TRUE(Err("optimize Cities -g 0.5").IsInvalidArgument());
}

TEST_F(CliTest, InitFromMissingCsvNamesThePath) {
  Status s = Err("init Cities -f /no/such/dir/cities.csv");
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_NE(s.message().find("/no/such/dir/cities.csv"), std::string::npos)
      << s.ToString();
  // A missing schema file is reported with its own path, not the CSV's.
  Status schema = Err("init Towns -f /no/such/t.csv -s /no/such/schema.txt");
  EXPECT_TRUE(schema.IsNotFound()) << schema.ToString();
  EXPECT_NE(schema.message().find("/no/such/schema.txt"), std::string::npos)
      << schema.ToString();
}

TEST_F(CliTest, CommitFromMissingCsvNamesThePath) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  const std::string path = ::testing::TempDir() + "cli_commit_missing.csv";
  Ok("checkout Cities -v 1 -f " + path);
  ASSERT_EQ(std::remove(path.c_str()), 0);
  // The checkout provenance still knows the file; the failure must come
  // from the CSV read and name the vanished path.
  Status s = Err("commit -f " + path + " -m x");
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_NE(s.message().find(path), std::string::npos) << s.ToString();
}

TEST_F(CliTest, SessionLifecycle) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  std::string out = Ok("session open Cities");
  EXPECT_NE(out.find("session-managed"), std::string::npos) << out;

  // While session-managed, the single-user commands must stand aside.
  Status plain = Err("checkout Cities -v 1 -t w");
  EXPECT_TRUE(plain.IsInvalidArgument()) << plain.ToString();
  EXPECT_NE(plain.message().find("open for concurrent use"), std::string::npos)
      << plain.ToString();
  EXPECT_TRUE(Err("drop Cities").IsInvalidArgument());
  EXPECT_TRUE(Err("session open Cities").IsAlreadyExists());
  EXPECT_NE(Ok("ls").find("session-managed"), std::string::npos);

  EXPECT_NE(Ok("session new Cities").find("opened session 1"),
            std::string::npos);
  EXPECT_NE(Ok("session new Cities").find("opened session 2"),
            std::string::npos);
  Ok("session checkout Cities 1 -v 1 -t w1");
  Ok("session checkout Cities 2 -v 1 -t w2");

  // Disjoint edits: session 1 grows springfield, session 2 shelbyville.
  // Session staging tables live inside each Session, not the shared
  // staging database, so plain `run` SQL cannot reach another session's
  // uncommitted work.
  Table* w1 = processor_.session("Cities", 1)->table("w1");
  ASSERT_NE(w1, nullptr);
  w1->SetRow(0, {w1->GetRow(0)[0], Value("springfield"),
                 Value(int64_t{31000})});
  Table* w2 = processor_.session("Cities", 2)->table("w2");
  ASSERT_NE(w2, nullptr);
  w2->SetRow(1, {w2->GetRow(1)[0], Value("shelbyville"),
                 Value(int64_t{21000})});

  Ok("session commit Cities 1 -t w1 -m grow1");
  std::string merged = Ok("session commit Cities 2 -t w2 -m grow2");
  EXPECT_NE(merged.find("reconciled with concurrent version 2"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("merge version 4"), std::string::npos) << merged;

  EXPECT_NE(Ok("session ls").find("open session(s)"), std::string::npos);
  out = Ok("session close Cities");
  EXPECT_NE(out.find("2 session(s) closed"), std::string::npos) << out;
  // The CVD is back under single-user control, merge history intact.
  Ok("checkout Cities -v 4 -t merged");
  Table* m = processor_.staging()->GetTable("merged");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->num_rows(), 2u);
  EXPECT_TRUE(Err("session new Cities").IsNotFound());
}

TEST_F(CliTest, SessionConflictRendering) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  Ok("session open Cities");
  Ok("session new Cities");
  Ok("session new Cities");
  Ok("session checkout Cities 1 -v 1 -t w1");
  Ok("session checkout Cities 2 -v 1 -t w2");
  Table* w1 = processor_.session("Cities", 1)->table("w1");
  ASSERT_NE(w1, nullptr);
  w1->SetRow(0, {w1->GetRow(0)[0], Value("springfield"),
                 Value(int64_t{111})});
  Table* w2 = processor_.session("Cities", 2)->table("w2");
  ASSERT_NE(w2, nullptr);
  w2->SetRow(0, {w2->GetRow(0)[0], Value("springfield"),
                 Value(int64_t{222})});
  Ok("session commit Cities 1 -t w1 -m first");
  std::string out = Ok("session commit Cities 2 -t w2 -m second");
  EXPECT_NE(out.find("CONFLICT with concurrent version 2"), std::string::npos)
      << out;
  EXPECT_NE(out.find("divergent branch"), std::string::npos) << out;
  EXPECT_NE(out.find("key=springfield attribute=pop"), std::string::npos)
      << out;
  Ok("session close Cities");
}

TEST_F(CliTest, SessionOpenGuards) {
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  EXPECT_TRUE(Err("session open Ghost").IsNotFound());
  // A pending staged checkout pins the CVD to this processor.
  Ok("checkout Cities -v 1 -t pending");
  Status staged = Err("session open Cities");
  EXPECT_TRUE(staged.IsInvalidArgument()) << staged.ToString();
  EXPECT_NE(staged.message().find("staged checkouts"), std::string::npos);
  Ok("commit -t pending -m flush");
  Ok("session open Cities");
  EXPECT_TRUE(Err("session new Ghost").IsNotFound());
  EXPECT_TRUE(Err("session checkout Cities 9 -v 1 -t w").IsNotFound());
  EXPECT_TRUE(Err("session checkout Cities bogus -v 1 -t w")
                  .IsInvalidArgument());
  Ok("session close Cities");
}

TEST_F(CliTest, RepositoryLifecycleRefusedWhileSessionManaged) {
  const std::string dir = MakeTempDir();
  Ok("open " + dir);
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  Ok("session open Cities");
  for (const char* cmd : {"checkpoint", "close"}) {
    Status s = Err(cmd);
    EXPECT_TRUE(s.IsInvalidArgument()) << cmd << ": " << s.ToString();
    EXPECT_NE(s.message().find("session close"), std::string::npos)
        << s.ToString();
  }
  Ok("session close Cities");
  Ok("close");
  EXPECT_EQ(processor_.exit_code(), 0);
}

TEST_F(CliTest, FsckSetsCorruptExitCode) {
  const std::string dir = MakeTempDir();
  Ok("open " + dir);
  SeedStagingTable("cities");
  Ok("init Cities -t cities -k city");
  Ok("close");
  EXPECT_NE(Ok("fsck -d " + dir).find("ok"), std::string::npos);
  EXPECT_EQ(processor_.exit_code(), 0);

  // Flip the active snapshot's format version byte: dual-read would
  // otherwise accept the neighbouring version, so the header checksum must
  // catch it.
  std::ifstream current(dir + "/CURRENT");
  std::string snapshot_name;
  ASSERT_TRUE(std::getline(current, snapshot_name));
  const std::string snapshot = dir + "/" + snapshot_name;
  std::fstream f(snapshot,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(8);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 1);
  f.seekp(8);
  f.write(&byte, 1);
  f.close();

  Status s = Err("fsck -d " + dir);
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_EQ(processor_.exit_code(), CommandProcessor::kExitCorrupt);
  // The corrupt code is sticky and outranks plain errors.
  processor_.NoteError();
  EXPECT_EQ(processor_.exit_code(), CommandProcessor::kExitCorrupt);
}

TEST(AccessControllerTest, Basics) {
  core::AccessController ac;
  EXPECT_TRUE(ac.CreateUser("a").ok());
  EXPECT_TRUE(ac.CreateUser("").IsInvalidArgument());
  EXPECT_TRUE(ac.Login("a").ok());
  ac.GrantTable("t");
  EXPECT_TRUE(ac.CheckTableAccess("t").ok());
  EXPECT_TRUE(ac.CreateUser("b").ok());
  EXPECT_TRUE(ac.Login("b").ok());
  EXPECT_FALSE(ac.CheckTableAccess("t").ok());
  EXPECT_TRUE(ac.CheckTableAccess("untracked").ok());
  ac.RevokeTable("t");
  EXPECT_TRUE(ac.CheckTableAccess("t").ok());
  EXPECT_EQ(ac.Users().size(), 2u);
}

}  // namespace
}  // namespace orpheus::cli
