#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace orpheus {
namespace {

TEST(ThreadPoolTest, DegreeFloorsAtOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.degree(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.degree(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0ul, 1ul, 7ul, 100ul, 4097ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(0, n, 16, [&hits](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, DegreeOneRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 1000, 10, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  // Exactly one chunk: serial semantics, no splitting observable effects.
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SmallRangeRunsAsSingleChunk) {
  ThreadPool pool(8);
  int calls = 0;
  std::mutex mu;
  pool.ParallelFor(5, 12, 100, [&](size_t lo, size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    ++calls;
    EXPECT_EQ(lo, 5u);
    EXPECT_EQ(hi, 12u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, TaskGroupRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Submit([&done] { done.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(done.load(), 64);
  }
}

TEST(ThreadPoolTest, TaskGroupDestructorWaits) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.Submit([&done] { done.fetch_add(1); });
    }
  }  // no explicit Wait
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnWorkers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  ThreadPool::TaskGroup group(&pool);
  for (int t = 0; t < 8; ++t) {
    group.Submit([&pool, &total] {
      // A worker fanning out again must not deadlock; the nested construct
      // degrades to inline execution.
      pool.ParallelFor(0, 100, 1, [&total](size_t lo, size_t hi) {
        total.fetch_add(static_cast<int>(hi - lo));
      });
    });
  }
  group.Wait();
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, ParallelCollectPreservesOrder) {
  // The stitched output must equal the serial filter regardless of which
  // thread finishes first.
  for (int degree : {1, 2, 8}) {
    ThreadPool::Global().SetDegree(degree);
    std::vector<int> out = ParallelCollect<int>(
        10000, 64, [](size_t lo, size_t hi, std::vector<int>* chunk) {
          for (size_t i = lo; i < hi; ++i) {
            if (i % 3 == 0) chunk->push_back(static_cast<int>(i));
          }
        });
    std::vector<int> expected;
    for (int i = 0; i < 10000; i += 3) expected.push_back(i);
    EXPECT_EQ(out, expected) << "degree " << degree;
  }
  ThreadPool::Global().SetDegree(1);
}

TEST(ThreadPoolTest, SetDegreeResizesGlobalPool) {
  ThreadPool& pool = ThreadPool::Global();
  pool.SetDegree(3);
  EXPECT_EQ(pool.degree(), 3);
  pool.SetDegree(1);
  EXPECT_EQ(pool.degree(), 1);
}

TEST(ThreadPoolTest, ManySmallGroupsDoNotLeakWork) {
  ThreadPool pool(2);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> done{0};
    ThreadPool::TaskGroup group(&pool);
    group.Submit([&done] { done.fetch_add(1); });
    group.Wait();
    ASSERT_EQ(done.load(), 1);
  }
}

}  // namespace
}  // namespace orpheus
