#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/command_processor.h"
#include "common/failpoint.h"
#include "common/file_util.h"
#include "common/log.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cvd.h"
#include "minidb/csv.h"
#include "minidb/database.h"
#include "minidb/schema.h"
#include "minidb/table.h"
#include "minidb/value.h"
#include "storage/format.h"
#include "storage/repository.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace orpheus::storage {
namespace {

using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

// The crash matrix forks mid-test; run the whole binary with a serial
// thread pool so the child never inherits a lock held by a pool worker.
// Dynamic initialization happens before main(), i.e. before the pool's
// first use can latch the degree.
[[maybe_unused]] const bool g_single_threaded = [] {
  ::setenv("ORPHEUS_THREADS", "1", 1);
  return true;
}();

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "orpheus_storage_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << tmpl;
  }
  return tmpl;
}

Table MakeTable(const std::vector<std::pair<int64_t, std::string>>& rows) {
  Table t("staged",
          Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}}));
  for (const auto& [id, name] : rows) {
    ORPHEUS_CHECK_OK(t.InsertRow({Value(id), Value(name)}));
  }
  return t;
}

Table V1Table() { return MakeTable({{1, "a"}, {2, "b"}, {3, "c"}}); }
Table V2Table() {
  return MakeTable({{1, "a"}, {2, "b2"}, {3, "c"}, {4, "d"}});
}
Table V3Table() {
  return MakeTable({{1, "a"}, {2, "b2"}, {4, "d4"}, {5, "e"}});
}

core::Cvd::Options PkOptions() {
  core::Cvd::Options opts;
  opts.primary_key = {"id"};
  return opts;
}

/// Materialize `vids` and render them as CSV — the bit-identical-checkout
/// yardstick all recovery tests compare against.
std::string CheckoutCsv(core::Cvd* cvd,
                        const std::vector<core::VersionId>& vids) {
  minidb::Database staging;
  Status s = cvd->Checkout(vids, "co_out", &staging);
  if (!s.ok()) return "<checkout failed: " + s.ToString() + ">";
  std::string csv = minidb::ToCsv(*staging.GetTable("co_out"));
  ORPHEUS_IGNORE_ERROR(cvd->ForgetStaging("co_out"));
  return csv;
}

std::unique_ptr<core::Cvd> MakeCvdWithTwoVersions() {
  auto cvd = core::Cvd::Init("t", V1Table(), PkOptions()).MoveValueOrDie();
  auto v2 = cvd->CommitTable(V2Table(), {1}, "v2", "tester");
  ORPHEUS_CHECK_OK(v2.status());
  return cvd;
}

struct Goldens {
  std::string v1;
  std::string v2;
  std::string v3;  // what a v3 commit on top of v2 must check out as
};

/// Initialize a repository at `dir` holding CVD "t" with versions 1 and 2,
/// deliberately left un-checkpointed: CURRENT points at the empty seed
/// snapshot and the WAL holds the create + one commit, so reopening
/// exercises replay. Also precomputes, via a state-clone, the checkout
/// bytes a future v3 commit must produce.
void BuildRepoWithTwoVersions(const std::string& dir, Goldens* goldens) {
  auto repo = Repository::Open(dir).MoveValueOrDie();
  auto cvd = core::Cvd::Init("t", V1Table(), PkOptions()).MoveValueOrDie();
  ASSERT_TRUE(repo->LogCreate(*cvd).ok());
  Repository* raw = repo.get();
  cvd->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  auto v2 = cvd->CommitTable(V2Table(), {1}, "v2", "tester");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  goldens->v1 = CheckoutCsv(cvd.get(), {1});
  goldens->v2 = CheckoutCsv(cvd.get(), {2});
  // Predict v3 on a clone: FromState preserves next_rid and the logical
  // clock, so committing the same table yields bit-identical checkouts.
  auto clone =
      core::Cvd::FromState(cvd->ExportState().MoveValueOrDie()).MoveValueOrDie();
  auto v3 = clone->CommitTable(V3Table(), {2}, "v3", "tester");
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  goldens->v3 = CheckoutCsv(clone.get(), {3});
  // No Close(): the Repository destructor only releases the WAL fd.
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Recovery paths log INFO/WARN by design; the byte-flip sweeps would
    // emit thousands of lines, so keep only errors for these tests.
    log::SetLevelForTest(log::Level::kError);
    dir_ = MakeTempDir();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    log::SetLevelForTest(log::Level::kInfo);
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Format: primitives, frames, domain records
// ---------------------------------------------------------------------------

TEST(FormatTest, Crc32cKnownVector) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_NE(Crc32c("123456789"), Crc32c("123456780"));
}

TEST(FormatTest, PrimitiveRoundtrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutI32(-7);
  enc.PutDouble(3.25);
  enc.PutString("hello");
  enc.PutString(std::string("bi\0nary", 7));  // embedded NUL must survive
  std::string data = enc.Take();
  Decoder dec(data);
  EXPECT_EQ(dec.GetU8().MoveValueOrDie(), 0xAB);
  EXPECT_EQ(dec.GetU32().MoveValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64().MoveValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI64().MoveValueOrDie(), -42);
  EXPECT_EQ(dec.GetI32().MoveValueOrDie(), -7);
  EXPECT_EQ(dec.GetDouble().MoveValueOrDie(), 3.25);
  EXPECT_EQ(dec.GetString().MoveValueOrDie(), "hello");  // literal stops at NUL
  EXPECT_EQ(dec.GetString().MoveValueOrDie(), std::string("bi\0nary", 7));
  EXPECT_TRUE(dec.AtEnd());
}

TEST(FormatTest, DecoderTruncationCarriesAbsoluteOffset) {
  std::string two_bytes("\x01\x02", 2);
  Decoder dec(two_bytes, /*base_offset=*/100);
  auto r = dec.GetU32();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("offset 100"), std::string::npos)
      << r.status().ToString();
}

TEST(FormatTest, FrameRoundtrip) {
  std::string buf;
  AppendFrame(&buf, FrameType::kWalCommit, "hello");
  AppendFrame(&buf, FrameType::kFooter, "world!");
  size_t pos = 0;
  Frame frame;
  bool torn = false;
  ASSERT_TRUE(ReadFrame(buf, 0, &pos, &frame, &torn).ok());
  EXPECT_FALSE(torn);
  EXPECT_EQ(frame.type, FrameType::kWalCommit);
  EXPECT_EQ(frame.payload, "hello");
  EXPECT_EQ(frame.offset, 0u);
  ASSERT_TRUE(ReadFrame(buf, 0, &pos, &frame, &torn).ok());
  EXPECT_FALSE(torn);
  EXPECT_EQ(frame.type, FrameType::kFooter);
  EXPECT_EQ(frame.payload, "world!");
  EXPECT_EQ(pos, buf.size());
}

TEST(FormatTest, FrameTornTailVsMidFileCorruption) {
  std::string buf;
  AppendFrame(&buf, FrameType::kWalCommit, "hello");
  const size_t second = buf.size();
  AppendFrame(&buf, FrameType::kFooter, "world!");

  // A final frame cut short is a torn tail, not corruption.
  std::string cut = buf.substr(0, buf.size() - 3);
  size_t pos = second;
  Frame frame;
  bool torn = false;
  ASSERT_TRUE(ReadFrame(cut, 0, &pos, &frame, &torn).ok());
  EXPECT_TRUE(torn);

  // A checksum-bad final frame is also a torn tail (interrupted append).
  std::string bad_tail = buf;
  bad_tail.back() ^= 0x01;
  pos = second;
  torn = false;
  ASSERT_TRUE(ReadFrame(bad_tail, 0, &pos, &frame, &torn).ok());
  EXPECT_TRUE(torn);

  // A checksum-bad frame with data after it is DataLoss, with the offset.
  std::string bad_mid = buf;
  bad_mid[kFrameHeaderSize] ^= 0x01;  // first payload byte of frame one
  pos = 0;
  torn = false;
  Status s = ReadFrame(bad_mid, 0, &pos, &frame, &torn);
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_NE(s.message().find("offset"), std::string::npos) << s.ToString();
}

TEST(FormatTest, ValueRoundtrip) {
  std::vector<Value> values;
  values.push_back(Value::Null());
  values.push_back(Value(int64_t{-7}));
  values.push_back(Value(3.5));
  values.push_back(Value("text"));
  values.push_back(Value(std::vector<int64_t>{1, 2, 3}));
  Encoder enc;
  for (const Value& v : values) EncodeValue(v, &enc);
  std::string data = enc.Take();
  Decoder dec(data);
  for (const Value& want : values) {
    auto got = DecodeValue(&dec);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Value v = got.MoveValueOrDie();
    ASSERT_EQ(v.type(), want.type());
    switch (want.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        EXPECT_EQ(v.AsInt(), want.AsInt());
        break;
      case ValueType::kDouble:
        EXPECT_EQ(v.AsDouble(), want.AsDouble());
        break;
      case ValueType::kString:
        EXPECT_EQ(v.AsString(), want.AsString());
        break;
      case ValueType::kIntArray:
        EXPECT_EQ(v.AsIntArray(), want.AsIntArray());
        break;
    }
  }
  EXPECT_TRUE(dec.AtEnd());

  // Unknown type tag is DataLoss, not a crash.
  std::string junk(1, '\xFF');
  Decoder bad(junk);
  auto r = DecodeValue(&bad);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
}

TEST(FormatTest, CvdStateRoundtripPreservesCheckouts) {
  auto cvd = MakeCvdWithTwoVersions();
  auto state = cvd->ExportState().MoveValueOrDie();
  Encoder enc;
  EncodeCvdState(state, &enc);
  std::string data = enc.Take();
  Decoder dec(data);
  auto decoded = DecodeCvdState(&dec, kFormatVersion);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(dec.AtEnd());
  core::CvdState got = decoded.MoveValueOrDie();
  EXPECT_EQ(got.name, "t");
  ASSERT_EQ(got.metadata.size(), 2u);
  EXPECT_EQ(got.metadata[1].message, "v2");
  EXPECT_EQ(got.metadata[1].author, "tester");
  auto clone = core::Cvd::FromState(got).MoveValueOrDie();
  EXPECT_EQ(CheckoutCsv(clone.get(), {1}), CheckoutCsv(cvd.get(), {1}));
  EXPECT_EQ(CheckoutCsv(clone.get(), {2}), CheckoutCsv(cvd.get(), {2}));
}

TEST(FormatTest, CommitRecordRoundtripReplaysIdentically) {
  auto cvd = core::Cvd::Init("t", V1Table(), PkOptions()).MoveValueOrDie();
  auto pre = cvd->ExportState().MoveValueOrDie();
  core::CvdCommitRecord captured;
  cvd->set_commit_observer([&captured](const core::CvdCommitRecord& record) {
    captured = record;
    return Status::OK();
  });
  auto v2 = cvd->CommitTable(V2Table(), {1}, "v2", "tester");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  Encoder enc;
  EncodeCommitRecord(captured, &enc);
  std::string data = enc.Take();
  Decoder dec(data);
  auto decoded = DecodeCommitRecord(&dec, kFormatVersion);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(dec.AtEnd());
  core::CvdCommitRecord got = decoded.MoveValueOrDie();
  EXPECT_EQ(got.vid, captured.vid);
  EXPECT_EQ(got.parents, captured.parents);
  EXPECT_EQ(got.parent_weights, captured.parent_weights);
  EXPECT_EQ(got.rids, captured.rids);
  EXPECT_EQ(got.next_rid_after, captured.next_rid_after);
  EXPECT_EQ(got.new_records.size(), captured.new_records.size());
  EXPECT_EQ(got.metadata.message, "v2");

  // Replaying the decoded record against the pre-commit state reproduces
  // the post-commit checkout bytes exactly.
  auto replayed = core::Cvd::FromState(pre).MoveValueOrDie();
  ASSERT_TRUE(replayed->ApplyCommitRecord(got).ok());
  EXPECT_EQ(CheckoutCsv(replayed.get(), {2}), CheckoutCsv(cvd.get(), {2}));
}

TEST(FormatTest, V2RepositoryStaysReadableAndAppendable) {
  // Hand-build a format-v2 repository (double-typed logical clocks): a v2
  // snapshot holding the CVD and an empty v2 WAL. Existing repositories
  // written before the v3 bump must keep working end to end.
  const std::string dir = MakeTempDir();
  auto cvd = MakeCvdWithTwoVersions();
  auto state = cvd->ExportState().MoveValueOrDie();
  {
    Encoder header;
    header.PutU32(2);  // format version 2
    header.PutU32(0);
    header.PutU64(1);
    std::string data(kSnapshotMagic, 8);
    data.append(header.data());
    Encoder enc;
    EncodeCvdState(state, &enc, /*version=*/2);
    AppendFrame(&data, FrameType::kCvdState, enc.data());
    Encoder footer;
    footer.PutU32(1);
    AppendFrame(&data, FrameType::kFooter, footer.data());
    ASSERT_TRUE(WriteFileAtomic(dir + "/snapshot-1", data, true).ok());
  }
  {
    Encoder header;
    header.PutU32(2);
    header.PutU32(0);
    header.PutU64(1);
    std::string data(kWalMagic, 8);
    data.append(header.data());
    ASSERT_TRUE(WriteFileAtomic(dir + "/wal-1", data, true).ok());
  }
  ASSERT_TRUE(WriteFileAtomic(dir + "/CURRENT", "snapshot-1\n", true).ok());

  // Dual-read: fsck and open accept v2, and the converted clocks are exact.
  ASSERT_TRUE(Repository::Fsck(dir).ok());
  auto repo = Repository::Open(dir).MoveValueOrDie();
  auto cvds = repo->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  core::Cvd* t = cvds[0].get();
  EXPECT_EQ(t->num_versions(), 2);
  EXPECT_EQ(t->version_metadata(2).commit_time,
            cvd->version_metadata(2).commit_time);
  EXPECT_EQ(CheckoutCsv(t, {1}), CheckoutCsv(cvd.get(), {1}));
  EXPECT_EQ(CheckoutCsv(t, {2}), CheckoutCsv(cvd.get(), {2}));

  // A writer reopened on the v2 WAL appends v2-encoded records so the file
  // stays self-consistent.
  Repository* raw = repo.get();
  t->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  auto v3 = t->CommitTable(V3Table(), {2}, "v3", "tester");
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  const std::string golden3 = CheckoutCsv(t, {3});
  repo.reset();

  auto wal1 = ReadWal(dir + "/wal-1");
  ASSERT_TRUE(wal1.ok()) << wal1.status().ToString();
  EXPECT_EQ(wal1->version, 2u);
  ASSERT_EQ(wal1->records.size(), 1u);

  auto again = Repository::Open(dir).MoveValueOrDie();
  auto cvds2 = again->TakeCvds();
  ASSERT_EQ(cvds2.size(), 1u);
  EXPECT_EQ(cvds2[0]->num_versions(), 3);
  EXPECT_EQ(CheckoutCsv(cvds2[0].get(), {3}), golden3);

  // The first checkpoint rewrites the whole epoch at the current version.
  std::vector<const core::Cvd*> ptrs = {cvds2[0].get()};
  ASSERT_TRUE(again->Checkpoint(ptrs).ok());
  again.reset();
  auto snap = ReadSnapshot(dir + "/snapshot-2");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->version, kFormatVersion);
  auto wal2 = ReadWal(dir + "/wal-2");
  ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
  EXPECT_EQ(wal2->version, kFormatVersion);
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

TEST_F(StorageTest, SnapshotRoundtrip) {
  auto cvd = MakeCvdWithTwoVersions();
  std::vector<core::CvdState> states;
  states.push_back(cvd->ExportState().MoveValueOrDie());
  const std::string path = dir_ + "/snapshot-9";
  ASSERT_TRUE(WriteSnapshot(path, 9, states).ok());
  auto read = ReadSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  SnapshotContents contents = read.MoveValueOrDie();
  EXPECT_EQ(contents.seq, 9u);
  ASSERT_EQ(contents.cvds.size(), 1u);
  auto clone = core::Cvd::FromState(contents.cvds[0]).MoveValueOrDie();
  EXPECT_EQ(CheckoutCsv(clone.get(), {2}), CheckoutCsv(cvd.get(), {2}));
}

TEST_F(StorageTest, SnapshotCorruptionIsDataLossNeverCrash) {
  auto cvd = MakeCvdWithTwoVersions();
  std::vector<core::CvdState> states;
  states.push_back(cvd->ExportState().MoveValueOrDie());
  const std::string path = dir_ + "/snapshot-9";
  ASSERT_TRUE(WriteSnapshot(path, 9, states).ok());
  const std::string pristine = ReadFileToString(path).MoveValueOrDie();

  auto read_mutated = [&](std::string data) {
    ORPHEUS_CHECK_OK(WriteFileAtomic(path, data, /*sync=*/false));
    return ReadSnapshot(path).status();
  };
  auto flipped = [&](size_t i) {
    std::string data = pristine;
    data[i] ^= 0x01;
    return data;
  };

  // Bit-flipped magic.
  Status s = read_mutated(flipped(0));
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_NE(s.message().find(path), std::string::npos) << s.ToString();
  // Unknown format version.
  EXPECT_TRUE(read_mutated(flipped(8)).IsDataLoss());
  // Truncated inside the header.
  EXPECT_TRUE(read_mutated(pristine.substr(0, 10)).IsDataLoss());
  // Truncated mid-frame.
  EXPECT_TRUE(read_mutated(pristine.substr(0, pristine.size() - 5)).IsDataLoss());
  // Footer frame sliced off entirely (truncation on a frame boundary).
  EXPECT_TRUE(
      read_mutated(pristine.substr(0, pristine.size() - kFrameHeaderSize - 4))
          .IsDataLoss());
  // Trailing garbage after the footer.
  EXPECT_TRUE(read_mutated(pristine + "xyz").IsDataLoss());
  // Bit flip inside a frame payload, with the offset reported.
  s = read_mutated(flipped(24 + kFrameHeaderSize + 3));
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_NE(s.message().find("offset"), std::string::npos) << s.ToString();
  // The pristine bytes still read back fine.
  ORPHEUS_CHECK_OK(WriteFileAtomic(path, pristine, /*sync=*/false));
  EXPECT_TRUE(ReadSnapshot(path).ok());
}

// ---------------------------------------------------------------------------
// WAL files
// ---------------------------------------------------------------------------

TEST_F(StorageTest, WalAppendAndReadBack) {
  const std::string path = dir_ + "/wal-5";
  auto writer = WalWriter::Create(path, 5).MoveValueOrDie();
  auto cvd = core::Cvd::Init("t", V1Table(), PkOptions()).MoveValueOrDie();
  WalCreateRecord create{cvd->ExportState().MoveValueOrDie()};
  ASSERT_TRUE(writer.Append(WalRecord{create}).ok());
  ASSERT_TRUE(writer.Append(WalRecord{WalDropRecord{"t"}}).ok());
  ASSERT_TRUE(writer.Close().ok());

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  WalContents contents = read.MoveValueOrDie();
  EXPECT_EQ(contents.seq, 5u);
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<WalCreateRecord>(contents.records[0]));
  EXPECT_TRUE(std::holds_alternative<WalDropRecord>(contents.records[1]));
  EXPECT_EQ(std::get<WalDropRecord>(contents.records[1]).cvd, "t");
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(contents.valid_bytes, size.MoveValueOrDie());
}

TEST_F(StorageTest, WalTornTailReportedWithValidPrefix) {
  const std::string path = dir_ + "/wal-5";
  auto writer = WalWriter::Create(path, 5).MoveValueOrDie();
  ASSERT_TRUE(writer.Append(WalRecord{WalDropRecord{"t"}}).ok());
  ASSERT_TRUE(writer.Close().ok());
  const std::string pristine = ReadFileToString(path).MoveValueOrDie();

  // Interrupted append: a few header bytes of a frame that never finished.
  ORPHEUS_CHECK_OK(
      WriteFileAtomic(path, pristine + std::string("\x40\x00\x00", 3),
                      /*sync=*/false));
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  WalContents contents = read.MoveValueOrDie();
  EXPECT_TRUE(contents.torn_tail);
  EXPECT_EQ(contents.valid_bytes, pristine.size());
  EXPECT_EQ(contents.records.size(), 1u);
}

TEST_F(StorageTest, WalMidFileCorruptionIsDataLoss) {
  const std::string path = dir_ + "/wal-5";
  auto writer = WalWriter::Create(path, 5).MoveValueOrDie();
  ASSERT_TRUE(writer.Append(WalRecord{WalDropRecord{"a"}}).ok());
  const uint64_t first_end = writer.offset();
  ASSERT_TRUE(writer.Append(WalRecord{WalDropRecord{"b"}}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::string data = ReadFileToString(path).MoveValueOrDie();
  data[first_end - 1] ^= 0x01;  // inside the first record, not the tail
  ORPHEUS_CHECK_OK(WriteFileAtomic(path, data, /*sync=*/false));
  auto read = ReadWal(path);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();
  EXPECT_NE(read.status().message().find(path), std::string::npos);
}

// ---------------------------------------------------------------------------
// Repository lifecycle
// ---------------------------------------------------------------------------

TEST_F(StorageTest, FreshInitLaysOutEpochFiles) {
  auto repo = Repository::Open(dir_).MoveValueOrDie();
  EXPECT_EQ(ReadFileToString(dir_ + "/CURRENT").MoveValueOrDie(),
            "snapshot-1\n");
  EXPECT_TRUE(FileExists(dir_ + "/snapshot-1"));
  EXPECT_TRUE(FileExists(dir_ + "/wal-1"));
  EXPECT_EQ(repo->stats().seq, 1u);
  EXPECT_TRUE(repo->TakeCvds().empty());
  EXPECT_FALSE(repo->degraded());
}

TEST_F(StorageTest, OpenRefusesOrphanEpochFilesWithoutCurrent) {
  // A directory with snapshot/WAL files but no CURRENT means the pointer
  // was lost; silently re-initializing would shadow recoverable data.
  ORPHEUS_CHECK_OK(WriteFileAtomic(dir_ + "/snapshot-3", "x", /*sync=*/false));
  auto repo = Repository::Open(dir_);
  ASSERT_FALSE(repo.ok());
  EXPECT_TRUE(repo.status().IsDataLoss()) << repo.status().ToString();
}

TEST_F(StorageTest, MalformedCurrentIsDataLoss) {
  {
    auto repo = Repository::Open(dir_).MoveValueOrDie();
  }
  ORPHEUS_CHECK_OK(
      WriteFileAtomic(dir_ + "/CURRENT", "not-a-pointer\n", /*sync=*/false));
  auto repo = Repository::Open(dir_);
  ASSERT_FALSE(repo.ok());
  EXPECT_TRUE(repo.status().IsDataLoss()) << repo.status().ToString();
}

TEST_F(StorageTest, ReopenReplaysWalBitIdentically) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));

  auto repo = Repository::Open(dir_).MoveValueOrDie();
  EXPECT_EQ(repo->stats().seq, 1u);
  EXPECT_EQ(repo->stats().wal_records, 2u);  // create + one commit
  EXPECT_FALSE(repo->stats().recovered_torn_tail);
  auto cvds = repo->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  core::Cvd* cvd = cvds[0].get();
  EXPECT_EQ(cvd->name(), "t");
  ASSERT_EQ(cvd->num_versions(), 2);
  EXPECT_EQ(CheckoutCsv(cvd, {1}), goldens.v1);
  EXPECT_EQ(CheckoutCsv(cvd, {2}), goldens.v2);

  // Recovery preserved next_rid and the logical clock: a post-recovery
  // commit produces exactly the checkout the pre-crash clone predicted.
  Repository* raw = repo.get();
  cvd->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  auto v3 = cvd->CommitTable(V3Table(), {2}, "v3", "tester");
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(*v3, 3);
  EXPECT_EQ(CheckoutCsv(cvd, {3}), goldens.v3);

  std::vector<const core::Cvd*> ptrs = {cvd};
  ASSERT_TRUE(repo->Close(ptrs).ok());

  // Close checkpointed into a new epoch and removed the old files.
  EXPECT_EQ(ReadFileToString(dir_ + "/CURRENT").MoveValueOrDie(),
            "snapshot-2\n");
  EXPECT_FALSE(FileExists(dir_ + "/snapshot-1"));
  EXPECT_FALSE(FileExists(dir_ + "/wal-1"));

  auto repo2 = Repository::Open(dir_).MoveValueOrDie();
  EXPECT_EQ(repo2->stats().seq, 2u);
  EXPECT_EQ(repo2->stats().wal_records, 0u);
  auto cvds2 = repo2->TakeCvds();
  ASSERT_EQ(cvds2.size(), 1u);
  ASSERT_EQ(cvds2[0]->num_versions(), 3);
  EXPECT_EQ(CheckoutCsv(cvds2[0].get(), {1}), goldens.v1);
  EXPECT_EQ(CheckoutCsv(cvds2[0].get(), {2}), goldens.v2);
  EXPECT_EQ(CheckoutCsv(cvds2[0].get(), {3}), goldens.v3);
}

TEST_F(StorageTest, DropIsDurable) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));
  {
    auto repo = Repository::Open(dir_).MoveValueOrDie();
    auto cvds = repo->TakeCvds();
    ASSERT_EQ(cvds.size(), 1u);
    ASSERT_TRUE(repo->LogDrop("t").ok());
  }
  auto repo = Repository::Open(dir_).MoveValueOrDie();
  EXPECT_TRUE(repo->TakeCvds().empty());
}

TEST_F(StorageTest, TornWalTailIsTruncatedAndRepaired) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));
  const std::string wal = dir_ + "/wal-1";
  const std::string pristine = ReadFileToString(wal).MoveValueOrDie();
  ORPHEUS_CHECK_OK(
      WriteFileAtomic(wal, pristine + std::string("\x40\x00\x00\x00\x99", 5),
                      /*sync=*/false));

  auto repo = Repository::Open(dir_).MoveValueOrDie();
  EXPECT_TRUE(repo->stats().recovered_torn_tail);
  EXPECT_EQ(FileSize(wal).MoveValueOrDie(), pristine.size());
  auto cvds = repo->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  core::Cvd* cvd = cvds[0].get();
  EXPECT_EQ(CheckoutCsv(cvd, {1}), goldens.v1);
  EXPECT_EQ(CheckoutCsv(cvd, {2}), goldens.v2);

  // The repaired WAL accepts appends again.
  Repository* raw = repo.get();
  cvd->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  auto v3 = cvd->CommitTable(V3Table(), {2}, "v3", "tester");
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(CheckoutCsv(cvd, {3}), goldens.v3);
}

TEST_F(StorageTest, FsckReportsCleanRepository) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));
  auto fsck = Repository::Fsck(dir_);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  std::string joined;
  for (const std::string& line : fsck.MoveValueOrDie()) {
    joined += line;
    joined += '\n';
  }
  EXPECT_NE(joined.find("snapshot-1"), std::string::npos) << joined;
  EXPECT_NE(joined.find("wal-1"), std::string::npos) << joined;
  EXPECT_NE(joined.find("t"), std::string::npos) << joined;

  auto missing = Repository::Fsck(dir_ + "/does-not-exist");
  EXPECT_FALSE(missing.ok());
}

// ---------------------------------------------------------------------------
// Exhaustive single-bit corruption sweeps: recovery must fail cleanly or
// succeed with intact data for every possible one-bit flip — never crash.
// ---------------------------------------------------------------------------

TEST_F(StorageTest, SnapshotByteFlipSweep) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));
  {
    // Checkpoint so the live snapshot actually carries the CVD.
    auto repo = Repository::Open(dir_).MoveValueOrDie();
    auto cvds = repo->TakeCvds();
    ASSERT_EQ(cvds.size(), 1u);
    std::vector<const core::Cvd*> ptrs = {cvds[0].get()};
    ASSERT_TRUE(repo->Close(ptrs).ok());
  }
  const std::string snap = dir_ + "/snapshot-2";
  const std::string pristine = ReadFileToString(snap).MoveValueOrDie();
  ASSERT_GT(pristine.size(), 24u);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string mutated = pristine;
    mutated[i] ^= 0x01;
    ASSERT_TRUE(WriteFileAtomic(snap, mutated, /*sync=*/false).ok());
    auto repo = Repository::Open(dir_);
    // Every byte is covered: the formerly-reserved word now holds the
    // header checksum, so even version/seq/checksum flips are caught.
    ASSERT_FALSE(repo.ok()) << "flip at byte " << i << " went undetected";
    EXPECT_TRUE(repo.status().IsDataLoss())
        << "byte " << i << ": " << repo.status().ToString();
  }
  ORPHEUS_CHECK_OK(WriteFileAtomic(snap, pristine, /*sync=*/false));
  EXPECT_TRUE(Repository::Open(dir_).ok());
}

TEST_F(StorageTest, WalByteFlipSweep) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));
  const std::string wal = dir_ + "/wal-1";
  const std::string pristine = ReadFileToString(wal).MoveValueOrDie();
  ASSERT_GT(pristine.size(), 24u);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string mutated = pristine;
    mutated[i] ^= 0x01;
    ASSERT_TRUE(WriteFileAtomic(wal, mutated, /*sync=*/false).ok());
    auto repo = Repository::Open(dir_);
    if (!repo.ok()) {
      EXPECT_TRUE(repo.status().IsDataLoss())
          << "byte " << i << ": " << repo.status().ToString();
      continue;
    }
    // A flip in the final frame reads as a torn tail and is truncated
    // away; whatever survives must still be exactly v1 (and v2 when the
    // tail was intact). Committed data is never silently altered.
    auto cvds = repo.MoveValueOrDie()->TakeCvds();
    if (cvds.empty()) continue;  // create record itself truncated
    ASSERT_EQ(cvds.size(), 1u) << "byte " << i;
    core::Cvd* cvd = cvds[0].get();
    ASSERT_LE(cvd->num_versions(), 2) << "byte " << i;
    EXPECT_EQ(CheckoutCsv(cvd, {1}), goldens.v1) << "byte " << i;
    if (cvd->num_versions() == 2) {
      EXPECT_EQ(CheckoutCsv(cvd, {2}), goldens.v2) << "byte " << i;
    }
  }
  ORPHEUS_CHECK_OK(WriteFileAtomic(wal, pristine, /*sync=*/false));
  EXPECT_TRUE(Repository::Open(dir_).ok());
}

#if ORPHEUS_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// Fault injection: error returns
// ---------------------------------------------------------------------------

TEST_F(StorageTest, WalAppendFailureDegradesRepository) {
  auto repo = Repository::Open(dir_).MoveValueOrDie();
  auto cvd = core::Cvd::Init("t", V1Table(), PkOptions()).MoveValueOrDie();
  ASSERT_TRUE(repo->LogCreate(*cvd).ok());
  Repository* raw = repo.get();
  cvd->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  // Fail before the frame bytes reach the file, so the commit is durably
  // absent (a post-write sync failure may still leave replayable bytes in
  // the page cache — that case is covered by the crash matrix).
  failpoint::Arm("storage.wal.append.frame", failpoint::Action::kError);
  auto v2 = cvd->CommitTable(V2Table(), {1}, "v2");
  EXPECT_FALSE(v2.ok());
  EXPECT_TRUE(repo->degraded());
  failpoint::DisarmAll();
  // Log-before-apply: the failed WAL append must leave NO phantom version
  // in memory. The commit was planned but never applied, so the CVD still
  // has exactly v1 and a checkout of v2 is refused.
  EXPECT_EQ(cvd->num_versions(), 1);
  EXPECT_EQ(cvd->latest(), 1);
  {
    minidb::Database staging;
    EXPECT_FALSE(cvd->Checkout({2}, "phantom", &staging).ok());
  }
  // Degraded mode sticks: the WAL file position is unreliable, so even
  // healthy I/O must be refused until the repository is reopened.
  EXPECT_TRUE(repo->LogDrop("t").IsInternal());
  repo.reset();

  // On-disk state is a consistent v1-only repository: fsck is clean and
  // reopening agrees with memory.
  ASSERT_TRUE(Repository::Fsck(dir_).ok());
  auto reopened = Repository::Open(dir_).MoveValueOrDie();
  auto cvds = reopened->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  EXPECT_EQ(cvds[0]->num_versions(), 1);  // v2 was never acknowledged
  EXPECT_EQ(CheckoutCsv(cvds[0].get(), {1}), CheckoutCsv(cvd.get(), {1}));
}

TEST_F(StorageTest, FailedCheckpointKeepsOldEpochRecoverable) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));
  {
    auto repo = Repository::Open(dir_).MoveValueOrDie();
    auto cvds = repo->TakeCvds();
    ASSERT_EQ(cvds.size(), 1u);
    failpoint::Arm("storage.current.write", failpoint::Action::kError);
    std::vector<const core::Cvd*> ptrs = {cvds[0].get()};
    EXPECT_FALSE(repo->Checkpoint(ptrs).ok());
    failpoint::DisarmAll();
  }
  // CURRENT was never repointed: the old epoch recovers untouched, and the
  // half-written new epoch's files are inert orphans.
  ASSERT_TRUE(Repository::Fsck(dir_).ok());
  auto repo = Repository::Open(dir_).MoveValueOrDie();
  EXPECT_EQ(repo->stats().seq, 1u);
  auto cvds = repo->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  EXPECT_EQ(CheckoutCsv(cvds[0].get(), {1}), goldens.v1);
  EXPECT_EQ(CheckoutCsv(cvds[0].get(), {2}), goldens.v2);
}

// ---------------------------------------------------------------------------
// Fault injection: the crash matrix
// ---------------------------------------------------------------------------

/// What the forked child runs: reopen the repository, commit v3, and close
/// (which checkpoints). The armed failpoint _exit(134)s somewhere in the
/// middle; if everything unexpectedly succeeds that is fine too (the site's
/// nth hit may be past the end of the run). Plain exit codes instead of
/// gtest: the child must never run test machinery.
[[noreturn]] void ChildCommitAndCheckpoint(const std::string& dir) {
  auto repo_or = Repository::Open(dir);
  if (!repo_or.ok()) _exit(7);
  auto repo = repo_or.MoveValueOrDie();
  auto cvds = repo->TakeCvds();
  if (cvds.size() != 1) _exit(7);
  core::Cvd* cvd = cvds[0].get();
  Repository* raw = repo.get();
  cvd->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  auto v3 = cvd->CommitTable(V3Table(), {2}, "v3", "tester");
  if (!v3.ok()) _exit(7);
  std::vector<const core::Cvd*> ptrs = {cvd};
  if (!repo->Close(ptrs).ok()) _exit(7);
  _exit(0);
}

TEST_F(StorageTest, CrashMatrixRecoversAtEveryFailpoint) {
  struct Site {
    const char* name;
    int max_trigger;  // kill at the 1st..max_trigger'th hit of the site
  };
  static const Site kSites[] = {
      // Generic I/O sites (common/file_util.cc).
      {"io.open", 2},
      {"io.write", 3},
      {"io.sync", 3},
      {"io.close", 2},
      {"io.rename", 2},
      {"io.dirsync", 2},
      {"io.remove", 2},
      // Storage-layer protocol sites.
      {"storage.wal.append.frame", 1},
      {"storage.wal.append.sync", 1},
      {"storage.snapshot.frame", 1},
      {"storage.snapshot.sync", 1},
      {"storage.snapshot.rename", 1},
      {"storage.current.write", 1},
      {"storage.checkpoint.wal_create", 1},
      {"storage.checkpoint.cleanup", 1},
      {"storage.wal.create.header", 1},
      {"storage.wal.create.sync", 1},
  };

  for (const Site& site : kSites) {
    for (int nth = 1; nth <= site.max_trigger; ++nth) {
      SCOPED_TRACE(std::string(site.name) + " hit " + std::to_string(nth));
      const std::string dir = MakeTempDir();
      Goldens goldens;
      ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir, &goldens));

      pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        failpoint::Arm(site.name, failpoint::Action::kAbort, nth);
        ChildCommitAndCheckpoint(dir);  // never returns
      }
      int wstatus = 0;
      ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus));
      const int code = WEXITSTATUS(wstatus);
      // 134: the failpoint killed the child mid-operation. 0: the site was
      // hit fewer than `nth` times and the run completed.
      ASSERT_TRUE(code == 0 || code == 134) << "child exit code " << code;

      // Whatever instant the child died at, the directory must fsck clean
      // and reopen with all previously committed versions bit-identical.
      auto fsck = Repository::Fsck(dir);
      ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
      auto repo_or = Repository::Open(dir);
      ASSERT_TRUE(repo_or.ok()) << repo_or.status().ToString();
      auto repo = repo_or.MoveValueOrDie();
      auto cvds = repo->TakeCvds();
      ASSERT_EQ(cvds.size(), 1u);
      core::Cvd* cvd = cvds[0].get();
      ASSERT_GE(cvd->num_versions(), 2);
      EXPECT_EQ(CheckoutCsv(cvd, {1}), goldens.v1);
      EXPECT_EQ(CheckoutCsv(cvd, {2}), goldens.v2);
      // v3 survives iff its WAL append (or the checkpoint containing it)
      // became durable before the kill; when it did, it must be exactly
      // the commit the child was applying.
      if (cvd->num_versions() >= 3) {
        EXPECT_EQ(cvd->num_versions(), 3);
        EXPECT_EQ(CheckoutCsv(cvd, {3}), goldens.v3);
      }
      repo.reset();
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
}

/// Torn-batch child: queue TWO commits without waiting (so they flush as
/// one group-commit batch), then arm the bespoke torn-batch site and call
/// WaitCommitDurable — the elected leader writes record 1 whole plus half
/// of record 2, fsyncs that torn prefix, and dies. Exit codes as above.
[[noreturn]] void ChildTornGroupCommitBatch(const std::string& dir) {
  auto repo_or = Repository::Open(dir);
  if (!repo_or.ok()) _exit(7);
  auto repo = repo_or.MoveValueOrDie();
  auto cvds = repo->TakeCvds();
  if (cvds.size() != 1) _exit(7);
  core::Cvd* cvd = cvds[0].get();
  Repository* raw = repo.get();
  std::vector<uint64_t> tickets;
  cvd->set_commit_observer(
      [raw, &tickets](const core::CvdCommitRecord& record) -> Status {
        auto t = raw->EnqueueCommit("t", record);
        if (!t.ok()) return t.status();
        tickets.push_back(t.ValueOrDie());
        return Status::OK();
      });
  if (!cvd->CommitTable(V3Table(), {2}, "v3", "tester").ok()) _exit(7);
  if (!cvd->CommitTable(MakeTable({{1, "a"}, {6, "f"}}), {3}, "v4", "tester")
           .ok()) {
    _exit(7);
  }
  if (tickets.size() != 2) _exit(7);
  failpoint::Arm("storage.wal.append_batch.torn", failpoint::Action::kAbort);
  ORPHEUS_IGNORE_ERROR(repo->WaitCommitDurable(tickets.back()));
  _exit(9);  // the torn-batch site must have fired during the leader flush
}

TEST_F(StorageTest, TornGroupCommitBatchRecoversAppliedPrefix) {
  Goldens goldens;
  ASSERT_NO_FATAL_FAILURE(BuildRepoWithTwoVersions(dir_, &goldens));

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ChildTornGroupCommitBatch(dir_);  // never returns
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 134) << "torn-batch site did not fire";

  // The tear landed BETWEEN records of one batch and the torn prefix was
  // fsynced: recovery must keep the applied prefix (v3, whose record is
  // whole) and truncate the half record — v4/v5 must not exist even as
  // phantoms, and the repository must be fully consistent.
  auto fsck = Repository::Fsck(dir_);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  auto repo_or = Repository::Open(dir_);
  ASSERT_TRUE(repo_or.ok()) << repo_or.status().ToString();
  auto repo = repo_or.MoveValueOrDie();
  EXPECT_FALSE(repo->degraded());
  auto cvds = repo->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  core::Cvd* cvd = cvds[0].get();
  EXPECT_EQ(cvd->num_versions(), 3);
  EXPECT_EQ(CheckoutCsv(cvd, {1}), goldens.v1);
  EXPECT_EQ(CheckoutCsv(cvd, {2}), goldens.v2);
  EXPECT_EQ(CheckoutCsv(cvd, {3}), goldens.v3);
  {
    minidb::Database staging;
    EXPECT_FALSE(cvd->Checkout({4}, "phantom", &staging).ok());
  }
  // The repaired WAL must accept new commits: the truncated tail left the
  // file position exactly after v3's record.
  Repository* raw = repo.get();
  cvd->set_commit_observer([raw](const core::CvdCommitRecord& record) {
    return raw->LogCommit("t", record);
  });
  auto v4 = cvd->CommitTable(MakeTable({{1, "a"}, {8, "h"}}), {3}, "v4-retry",
                             "tester");
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  EXPECT_EQ(cvd->num_versions(), 4);
}

// ---------------------------------------------------------------------------
// Group commit: the deadline-bounded durability wait
// ---------------------------------------------------------------------------

TEST_F(StorageTest, WaitCommitDurableForTimesOutBehindStalledLeader) {
  auto repo = Repository::Open(dir_).MoveValueOrDie();
  auto cvd = core::Cvd::Init("t", V1Table(), PkOptions()).MoveValueOrDie();
  ASSERT_TRUE(repo->LogCreate(*cvd).ok());
  Repository* raw = repo.get();
  std::vector<uint64_t> tickets;
  cvd->set_commit_observer(
      [raw, &tickets](const core::CvdCommitRecord& record) -> Status {
        auto t = raw->EnqueueCommit("t", record);
        if (!t.ok()) return t.status();
        tickets.push_back(t.ValueOrDie());
        return Status::OK();
      });
  ASSERT_TRUE(cvd->CommitTable(V2Table(), {1}, "v2", "tester").ok());
  ASSERT_TRUE(cvd->CommitTable(V3Table(), {2}, "v3", "tester").ok());
  ASSERT_EQ(tickets.size(), 2u);

  // Stall the leader's fsync: the follower's bounded wait must give up at
  // its deadline (leaving the commit in flight), not block behind the
  // leader indefinitely.
  failpoint::Arm("storage.wal.append.sync", failpoint::Action::kDelay,
                 /*trigger_at=*/1, /*once=*/true, /*probability=*/1.0,
                 /*delay_ms=*/800);
  Status leader_status;
  DedicatedThread leader("test-leader", [&] {
    leader_status = raw->WaitCommitDurable(tickets[0]);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Status bounded =
      raw->WaitCommitDurableFor(tickets[1], Deadline::AfterMillis(100));
  EXPECT_TRUE(bounded.IsDeadlineExceeded()) << bounded.ToString();

  // The timed-out wait abandoned nothing: re-waiting on the SAME ticket
  // resolves once the leader's flush lands (both records were in its
  // batch), exactly like a network client retrying a parked commit.
  Status resolved =
      raw->WaitCommitDurableFor(tickets[1], Deadline::Infinite());
  EXPECT_TRUE(resolved.ok()) << resolved.ToString();
  leader.Join();
  EXPECT_TRUE(leader_status.ok()) << leader_status.ToString();
  EXPECT_FALSE(repo->degraded());

  // Durable means durable: a reopen replays both commits.
  repo.reset();
  auto reopened = Repository::Open(dir_).MoveValueOrDie();
  auto cvds = reopened->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  EXPECT_EQ(cvds[0]->num_versions(), 3);
}

#endif  // ORPHEUS_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// CLI integration: a session survives a process restart
// ---------------------------------------------------------------------------

class StorageCliTest : public StorageTest {
 protected:
  static std::string Ok(cli::CommandProcessor* p, const std::string& line) {
    auto r = p->Execute(line);
    EXPECT_TRUE(r.ok()) << "'" << line << "': " << r.status().ToString();
    return r.ok() ? *r : "";
  }

  static void SeedStagingTable(cli::CommandProcessor* p,
                               const std::string& name) {
    Table t(name,
            Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}}));
    ASSERT_TRUE(t.InsertRow({Value(int64_t{1}), Value("a")}).ok());
    ASSERT_TRUE(t.InsertRow({Value(int64_t{2}), Value("b")}).ok());
    ASSERT_TRUE(p->staging()->AdoptTable(std::move(t)).ok());
  }
};

TEST_F(StorageCliTest, SessionSurvivesRestart) {
  std::string golden_v2;
  {
    cli::CommandProcessor session;
    Ok(&session, "open " + dir_);
    ASSERT_NO_FATAL_FAILURE(SeedStagingTable(&session, "stage"));
    Ok(&session, "init Data -t stage -k id");
    Ok(&session, "checkout Data -v 1 -t work");
    Table* work = session.staging()->GetTable("work");
    ASSERT_NE(work, nullptr);
    work->AppendRowUnchecked(
        {Value::Null(), Value(int64_t{3}), Value("c")});
    Ok(&session, "commit -t work -m \"add c\"");
    minidb::Database staging;
    ASSERT_TRUE(session.cvd("Data")->Checkout({2}, "golden", &staging).ok());
    golden_v2 = minidb::ToCsv(*staging.GetTable("golden"));
    Ok(&session, "close");
    // close releases the session CVDs along with the repository.
    EXPECT_EQ(session.cvd("Data"), nullptr);
  }
  {
    cli::CommandProcessor session;
    std::string opened = Ok(&session, "open " + dir_);
    EXPECT_NE(opened.find("1 CVD(s) recovered"), std::string::npos) << opened;
    EXPECT_NE(Ok(&session, "ls").find("Data"), std::string::npos);
    ASSERT_NE(session.cvd("Data"), nullptr);
    minidb::Database staging;
    ASSERT_TRUE(session.cvd("Data")->Checkout({2}, "again", &staging).ok());
    EXPECT_EQ(minidb::ToCsv(*staging.GetTable("again")), golden_v2);
    EXPECT_NE(Ok(&session, "fsck -d " + dir_).find("clean"),
              std::string::npos);
    Ok(&session, "close");
  }
}

TEST_F(StorageCliTest, LogOnlyCommandsRequireOpenRepository) {
  cli::CommandProcessor session;
  auto r = session.Execute("checkpoint");
  EXPECT_FALSE(r.ok());
  r = session.Execute("close");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace orpheus::storage
