// Model-based property tests: a randomized sequence of version-control
// operations is replayed both against each physical data-model backend and
// against a trivially-correct in-memory reference model; every observable
// (membership, payloads, checkout contents, diffs) must agree, for every
// backend, across many random histories.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "core/cvd.h"
#include "core/data_models.h"
#include "minidb/database.h"

namespace orpheus::core {
namespace {

using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

Schema DataSchema() {
  return Schema({{"k", ValueType::kInt64},
                 {"payload", ValueType::kString},
                 {"weight", ValueType::kInt64}});
}

Row MakePayload(int64_t key, Xorshift* rng) {
  return {Value(key), Value("p" + std::to_string(rng->Uniform(100000))),
          Value(static_cast<int64_t>(rng->Uniform(1000)))};
}

/// The reference model: version -> set of records, record -> payload.
struct Model {
  std::map<RecordId, Row> payloads;
  std::vector<std::vector<RecordId>> versions;  // sorted rid lists
  std::vector<std::vector<int>> parents;
};

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

class ModelCheckTest : public ::testing::TestWithParam<DataModelType> {};

TEST_P(ModelCheckTest, RandomHistoriesAgreeWithReferenceModel) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Xorshift rng(seed);
    auto backend = DataModelBackend::Create(GetParam(), DataSchema());
    Model model;
    RecordId next_rid = 0;
    int64_t next_key = 0;

    // Root version with 30 records.
    {
      std::vector<NewRecord> fresh;
      std::vector<RecordId> rids;
      for (int i = 0; i < 30; ++i) {
        Row payload = MakePayload(next_key++, &rng);
        model.payloads[next_rid] = payload;
        fresh.push_back({next_rid, payload});
        rids.push_back(next_rid);
        ++next_rid;
      }
      ASSERT_TRUE(backend->AddVersion(0, rids, fresh, {}).ok());
      model.versions.push_back(rids);
      model.parents.push_back({});
    }

    // 25 random commits: derive from a random version (occasionally two),
    // apply random inserts/updates/deletes.
    for (int v = 1; v <= 25; ++v) {
      int p1 = static_cast<int>(rng.Uniform(model.versions.size()));
      std::vector<int> parents = {p1};
      std::set<RecordId> working(model.versions[p1].begin(),
                                 model.versions[p1].end());
      if (rng.Bernoulli(0.2) && model.versions.size() > 1) {
        int p2 = static_cast<int>(rng.Uniform(model.versions.size()));
        if (p2 != p1) {
          parents.push_back(p2);
          // Merge by union (rid-level; key conflicts don't matter to the
          // backend contract).
          working.insert(model.versions[p2].begin(),
                         model.versions[p2].end());
        }
      }
      std::set<RecordId> created_now;
      int edits = 1 + static_cast<int>(rng.Uniform(8));
      for (int e = 0; e < edits; ++e) {
        double dice = rng.NextDouble();
        if (dice < 0.4 || working.empty()) {
          // Insert a brand-new record.
          model.payloads[next_rid] = MakePayload(next_key++, &rng);
          created_now.insert(next_rid);
          working.insert(next_rid);
          ++next_rid;
        } else if (dice < 0.75) {
          // Update: replace a random record with a fresh rid.
          auto it = working.begin();
          std::advance(it, rng.Uniform(working.size()));
          working.erase(it);
          model.payloads[next_rid] = MakePayload(next_key++, &rng);
          created_now.insert(next_rid);
          working.insert(next_rid);
          ++next_rid;
        } else {
          // Delete (possibly a record created earlier in this same commit;
          // such a record never reaches the backend at all — the
          // AddVersion contract requires every new record to be in rids).
          auto it = working.begin();
          std::advance(it, rng.Uniform(working.size()));
          working.erase(it);
        }
      }
      std::vector<NewRecord> fresh;
      for (RecordId rid : created_now) {
        if (working.count(rid)) fresh.push_back({rid, model.payloads[rid]});
      }
      std::vector<RecordId> rids(working.begin(), working.end());
      std::sort(fresh.begin(), fresh.end(),
                [](const NewRecord& a, const NewRecord& b) {
                  return a.rid < b.rid;
                });
      ASSERT_TRUE(backend->AddVersion(v, rids, fresh, parents).ok())
          << "seed " << seed << " version " << v;
      model.versions.push_back(rids);
      model.parents.push_back(parents);
    }

    // Invariant 1: membership agrees for every version.
    for (size_t v = 0; v < model.versions.size(); ++v) {
      auto rids = backend->VersionRecords(static_cast<int>(v));
      ASSERT_TRUE(rids.ok());
      EXPECT_EQ(*rids, model.versions[v]) << "seed " << seed << " v" << v;
    }

    // Invariant 2: checkout materializes exactly the right payloads.
    for (size_t v = 0; v < model.versions.size(); v += 3) {
      auto table = backend->Checkout(static_cast<int>(v), "chk");
      ASSERT_TRUE(table.ok());
      ASSERT_EQ(table->num_rows(), model.versions[v].size());
      for (uint32_t r = 0; r < table->num_rows(); ++r) {
        RecordId rid = table->column(0).GetInt(r);
        Row got = table->GetRow(r);
        got.erase(got.begin());
        ASSERT_TRUE(model.payloads.count(rid));
        EXPECT_TRUE(RowsEqual(got, model.payloads[rid]))
            << "seed " << seed << " v" << v << " rid " << rid;
      }
    }

    // Invariant 3: random point lookups agree.
    for (int probe = 0; probe < 20; ++probe) {
      RecordId rid = static_cast<RecordId>(rng.Uniform(next_rid));
      auto payload = backend->GetRecordPayload(
          rid, static_cast<int>(model.versions.size()) - 1);
      // A record created and deleted within one commit never enters the
      // backend; both must then agree it is unknown — but every rid in our
      // model was live in some version, so it must be found.
      bool live = false;
      for (const auto& vr : model.versions) {
        if (std::binary_search(vr.begin(), vr.end(), rid)) live = true;
      }
      if (live) {
        ASSERT_TRUE(payload.ok()) << "rid " << rid;
        EXPECT_TRUE(RowsEqual(*payload, model.payloads[rid]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelCheckTest,
    ::testing::Values(DataModelType::kATablePerVersion,
                      DataModelType::kCombinedTable,
                      DataModelType::kSplitByVlist,
                      DataModelType::kSplitByRlist,
                      DataModelType::kDeltaBased),
    [](const auto& info) {
      switch (info.param) {
        case DataModelType::kATablePerVersion: return "TablePerVersion";
        case DataModelType::kCombinedTable: return "Combined";
        case DataModelType::kSplitByVlist: return "SplitByVlist";
        case DataModelType::kSplitByRlist: return "SplitByRlist";
        case DataModelType::kDeltaBased: return "DeltaBased";
      }
      return "Unknown";
    });

// End-to-end model check at the CVD layer: random checkout/edit/commit
// cycles; the reference is a map from version to its expected row multiset.
TEST(CvdModelCheckTest, RandomEditSessions) {
  for (uint64_t seed : {5u, 6u}) {
    Xorshift rng(seed);
    Table initial("init", DataSchema());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(initial
                      .InsertRow({Value(static_cast<int64_t>(i)),
                                  Value("base"),
                                  Value(static_cast<int64_t>(i * 7))})
                      .ok());
    }
    Cvd::Options options;
    options.primary_key = {"k"};
    auto cvd = Cvd::Init("Prop", initial, options);
    ASSERT_TRUE(cvd.ok());
    minidb::Database staging;

    // Expected contents per version: sorted (k, payload, weight) triples.
    std::vector<std::vector<std::string>> expected;
    auto snapshot = [](const Table& t) {
      std::vector<std::string> rows;
      for (uint32_t r = 0; r < t.num_rows(); ++r) {
        std::string s;
        for (size_t c = 1; c < t.num_columns(); ++c) {
          s += t.GetValue(r, c).ToString();
          s += '|';
        }
        rows.push_back(s);
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };

    {
      auto t = (*cvd)->backend()->Checkout(0, "snap");
      ASSERT_TRUE(t.ok());
      expected.push_back(snapshot(*t));
    }
    int64_t next_key = 1000;
    for (int round = 0; round < 12; ++round) {
      VersionId base = static_cast<VersionId>(
          1 + rng.Uniform((*cvd)->num_versions()));
      std::string work = "w" + std::to_string(round);
      ASSERT_TRUE((*cvd)->Checkout({base}, work, &staging).ok());
      Table* t = staging.GetTable(work);
      int edits = 1 + static_cast<int>(rng.Uniform(4));
      for (int e = 0; e < edits; ++e) {
        double dice = rng.NextDouble();
        if (dice < 0.4 || t->num_rows() == 0) {
          t->AppendRowUnchecked({Value::Null(),
                                 Value(static_cast<int64_t>(next_key++)),
                                 Value("ins"), Value(int64_t{1})});
        } else if (dice < 0.75) {
          uint32_t r = static_cast<uint32_t>(rng.Uniform(t->num_rows()));
          Row row = t->GetRow(r);
          row[2] = Value("upd" + std::to_string(round));
          t->SetRow(r, row);
        } else {
          uint32_t r = static_cast<uint32_t>(rng.Uniform(t->num_rows()));
          t->DeleteRows({r});
        }
      }
      expected.push_back(snapshot(*t));
      auto vid = (*cvd)->Commit(work, &staging, "round");
      ASSERT_TRUE(vid.ok()) << vid.status().ToString();
    }

    // Every version must check out to exactly its expected contents.
    for (int v = 1; v <= (*cvd)->num_versions(); ++v) {
      std::string name = "verify" + std::to_string(v);
      ASSERT_TRUE((*cvd)->Checkout({static_cast<VersionId>(v)}, name,
                                   &staging)
                      .ok());
      Table* t = staging.GetTable(name);
      EXPECT_EQ(snapshot(*t), expected[v - 1]) << "seed " << seed << " v"
                                               << v;
    }
  }
}

}  // namespace
}  // namespace orpheus::core
