#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "minidb/database.h"
#include "minidb/join.h"
#include "minidb/table.h"

namespace orpheus::minidb {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", ValueType::kInt64}, {"score", ValueType::kInt64}});
}

Table MakeSmallTable() {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 10; ++i) {
    t.AppendIntRowUnchecked({i, i * 10});
  }
  return t;
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{4}).AsInt(), 4);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(std::vector<int64_t>{1, 2}).AsIntArray().size(), 2u);
}

TEST(ValueTest, NumericComparison) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(2.5));
  EXPECT_TRUE(Value(2.0) == Value(2.0));
  EXPECT_FALSE(Value(int64_t{2}) == Value(2.0));  // different types
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value(std::vector<int64_t>{1, 2, 3}).ToString(), "{1,2,3}");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(ColumnTest, IntAppendAndGet) {
  Column c(ValueType::kInt64);
  c.AppendInt(5);
  c.AppendInt(-1);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt(0), 5);
  EXPECT_EQ(c.GetValue(1).AsInt(), -1);
}

TEST(ColumnTest, NullTracking) {
  Column c(ValueType::kInt64);
  c.AppendInt(1);
  c.AppendNull();
  c.AppendInt(3);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_EQ(c.GetValue(2).AsInt(), 3);
}

TEST(ColumnTest, WidenIntToDouble) {
  Column c(ValueType::kInt64);
  c.AppendInt(3);
  c.AppendInt(4);
  ASSERT_TRUE(c.Widen(ValueType::kDouble).ok());
  EXPECT_EQ(c.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 3.0);
  EXPECT_DOUBLE_EQ(c.GetValue(1).AsDouble(), 4.0);
}

TEST(ColumnTest, WidenToStringAndUnsupported) {
  Column c(ValueType::kInt64);
  c.AppendInt(3);
  ASSERT_TRUE(c.Widen(ValueType::kString).ok());
  EXPECT_EQ(c.GetString(0), "3");
  Column arr(ValueType::kIntArray);
  EXPECT_FALSE(arr.Widen(ValueType::kString).ok());
}

TEST(ColumnTest, StorageBytesAccounting) {
  Column ints(ValueType::kInt64);
  ints.AppendInt(1);
  ints.AppendInt(2);
  EXPECT_EQ(ints.StorageBytes(), 16u);
  Column arr(ValueType::kIntArray);
  arr.AppendIntArray({1, 2, 3});
  EXPECT_EQ(arr.StorageBytes(), 3 * 8 + 16u);
}

TEST(TableTest, InsertRowValidates) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.InsertRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_TRUE(t.InsertRow({Value(int64_t{1})}).IsInvalidArgument());
  EXPECT_TRUE(
      t.InsertRow({Value("nope"), Value(int64_t{2})}).IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, UniqueIndexLookupAndViolation) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  EXPECT_EQ(*t.LookupUniqueInt(0, 7), 7u);
  EXPECT_FALSE(t.LookupUniqueInt(0, 99).has_value());
  // Appends maintain the index.
  t.AppendIntRowUnchecked({100, 0});
  EXPECT_EQ(*t.LookupUniqueInt(0, 100), 10u);
  // Duplicate keys are rejected at build time.
  Table dup("dup", TwoColSchema());
  dup.AppendIntRowUnchecked({1, 0});
  dup.AppendIntRowUnchecked({1, 0});
  EXPECT_TRUE(dup.BuildUniqueIntIndex(0).IsConstraintViolation());
}

TEST(TableTest, SelectRowsPredicate) {
  Table t = MakeSmallTable();
  auto rows = t.SelectRows([](const Table& tb, uint32_t r) {
    return tb.column(1).GetInt(r) >= 50;
  });
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front(), 5u);
}

TEST(TableTest, ArrayContainsScan) {
  Table t("t", Schema({{"rid", ValueType::kInt64},
                       {"vlist", ValueType::kIntArray}}));
  t.AppendRowUnchecked({Value(int64_t{1}), Value(std::vector<int64_t>{1, 3})});
  t.AppendRowUnchecked({Value(int64_t{2}), Value(std::vector<int64_t>{2})});
  t.AppendRowUnchecked({Value(int64_t{3}), Value(std::vector<int64_t>{1, 2, 3})});
  auto rows = t.SelectRowsArrayContains(1, 3);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
}

TEST(TableTest, CopyAndProjectRows) {
  Table t = MakeSmallTable();
  Table copy = t.CopyRows({1, 3}, "copy");
  EXPECT_EQ(copy.num_rows(), 2u);
  EXPECT_EQ(copy.column(1).GetInt(1), 30);
  Table proj = t.ProjectRows({0, 2}, {1}, "proj");
  EXPECT_EQ(proj.num_columns(), 1u);
  EXPECT_EQ(proj.schema().column(0).name, "score");
  EXPECT_EQ(proj.column(0).GetInt(1), 20);
}

TEST(TableTest, SortByIntColumnReclusters) {
  Table t("t", TwoColSchema());
  t.AppendIntRowUnchecked({3, 30});
  t.AppendIntRowUnchecked({1, 10});
  t.AppendIntRowUnchecked({2, 20});
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  t.SortByIntColumn(0);
  EXPECT_EQ(t.column(0).GetInt(0), 1);
  EXPECT_EQ(t.column(0).GetInt(2), 3);
  // Index rebuilt after physical reorder.
  EXPECT_EQ(*t.LookupUniqueInt(0, 3), 2u);
}

TEST(TableTest, AddColumnFillsNulls) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.AddColumn({"extra", ValueType::kString}).ok());
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_TRUE(t.GetValue(0, 2).is_null());
  EXPECT_TRUE(t.AddColumn({"extra", ValueType::kString}).IsAlreadyExists());
}

TEST(TableTest, RewriteRowAppendToArray) {
  Table t("t", Schema({{"rid", ValueType::kInt64},
                       {"vlist", ValueType::kIntArray}}));
  t.AppendRowUnchecked({Value(int64_t{9}), Value(std::vector<int64_t>{1})});
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  t.RewriteRowAppendToArray(0, 1, 5);
  const auto& arr = t.column(1).GetIntArray(0);
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[1], 5);
  EXPECT_EQ(*t.LookupUniqueInt(0, 9), 0u);
}

TEST(TableTest, DeleteRowsCompacts) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  t.DeleteRows({0, 5, 9});
  EXPECT_EQ(t.num_rows(), 7u);
  // Deleted keys are gone; survivors remain reachable through the index
  // (row order is not preserved — DeleteRows swap-removes).
  for (int64_t gone : {0, 5, 9}) {
    EXPECT_FALSE(t.LookupUniqueInt(0, gone).has_value());
  }
  for (int64_t kept : {1, 2, 3, 4, 6, 7, 8}) {
    auto row = t.LookupUniqueInt(0, kept);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(t.column(0).GetInt(*row), kept);
    EXPECT_EQ(t.column(1).GetInt(*row), kept * 10);
  }
}

TEST(TableTest, DeleteAllRows) {
  Table t = MakeSmallTable();
  std::vector<uint32_t> all(t.num_rows());
  std::iota(all.begin(), all.end(), 0u);
  t.DeleteRows(all);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, WidenColumn) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.WidenColumn(1, ValueType::kDouble).ok());
  EXPECT_EQ(t.schema().column(1).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(t.column(1).GetDouble(3), 30.0);
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  EXPECT_TRUE(t.WidenColumn(0, ValueType::kDouble).code() ==
              orpheus::StatusCode::kNotSupported);
}

TEST(TableTest, StorageBytes) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.DataBytes(), 10u * 2 * 8);
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  EXPECT_EQ(t.IndexBytes(), 10u * 16);
  EXPECT_EQ(t.StorageBytes(), t.DataBytes() + t.IndexBytes());
}

class JoinTest : public ::testing::TestWithParam<JoinAlgorithm> {};

TEST_P(JoinTest, FindsExactlyMatchingRids) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 100; ++i) t.AppendIntRowUnchecked({i * 2, i});
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  std::vector<int64_t> rlist = {0, 10, 11, 50, 198, 200};
  auto rows = JoinRids(t, 0, rlist, GetParam(), /*clustered_on_rid=*/true);
  std::vector<int64_t> found;
  for (uint32_t r : rows) found.push_back(t.column(0).GetInt(r));
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<int64_t>{0, 10, 50, 198}));
}

TEST_P(JoinTest, EmptyRlist) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  EXPECT_TRUE(JoinRids(t, 0, {}, GetParam(), true).empty());
}

TEST_P(JoinTest, UnclusteredDataSide) {
  Table t("t", TwoColSchema());
  // rids intentionally out of order.
  for (int64_t i = 0; i < 50; ++i) t.AppendIntRowUnchecked({(i * 37) % 101, i});
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  std::vector<int64_t> rlist = {1, 2, 3, 99, 100};
  auto rows = JoinRids(t, 0, rlist, GetParam(), /*clustered_on_rid=*/false);
  std::vector<int64_t> found;
  for (uint32_t r : rows) found.push_back(t.column(0).GetInt(r));
  std::sort(found.begin(), found.end());
  // Values present in the table among the probes:
  std::vector<int64_t> expect;
  for (int64_t probe : rlist) {
    for (int64_t i = 0; i < 50; ++i) {
      if ((i * 37) % 101 == probe) expect.push_back(probe);
    }
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(found, expect);
}

INSTANTIATE_TEST_SUITE_P(AllJoins, JoinTest,
                         ::testing::Values(JoinAlgorithm::kHashJoin,
                                           JoinAlgorithm::kMergeJoin,
                                           JoinAlgorithm::kIndexNestedLoop),
                         [](const auto& info) {
                           switch (info.param) {
                             case JoinAlgorithm::kHashJoin: return "Hash";
                             case JoinAlgorithm::kMergeJoin: return "Merge";
                             case JoinAlgorithm::kIndexNestedLoop: return "Inl";
                           }
                           return "Unknown";
                         });

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  auto t = db.CreateTable("a", TwoColSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.HasTable("a"));
  EXPECT_TRUE(db.CreateTable("a", TwoColSchema()).status().IsAlreadyExists());
  EXPECT_NE(db.GetTable("a"), nullptr);
  EXPECT_EQ(db.GetTable("b"), nullptr);
  EXPECT_TRUE(db.DropTable("a").ok());
  EXPECT_TRUE(db.DropTable("a").IsNotFound());
}

TEST(DatabaseTest, AdoptAndTotals) {
  Database db;
  Table t = MakeSmallTable();
  uint64_t bytes = t.StorageBytes();
  ASSERT_TRUE(db.AdoptTable(std::move(t)).ok());
  EXPECT_EQ(db.TotalStorageBytes(), bytes);
  EXPECT_EQ(db.ListTables(), std::vector<std::string>{"t"});
}

}  // namespace
}  // namespace orpheus::minidb
