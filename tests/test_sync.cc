#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace orpheus {
namespace {

using std::chrono::milliseconds;

/// Every test runs with the detector in a known state and restores the
/// process-wide setting afterwards (the TSan CI job runs this binary with
/// ORPHEUS_DEADLOCK_DEBUG=1, so "leave it as you found it" matters).
class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = DeadlockDebugEnabled();
    SetDeadlockDebug(false);
  }
  void TearDown() override { SetDeadlockDebug(was_enabled_); }

  bool was_enabled_ = false;
};

// ---------------------------------------------------------------------------
// Wrapper semantics
// ---------------------------------------------------------------------------

TEST_F(SyncTest, MutexProvidesMutualExclusion) {
  ThreadPool pool(4);
  Mutex mu("test.counter");
  int counter = 0;
  pool.ParallelFor(0, 1000, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      MutexLock lock(&mu);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 1000);
}

TEST_F(SyncTest, TryLockSucceedsWhenFreeAndFailsWhenHeld) {
  Mutex mu("test.trylock");
  ASSERT_TRUE(mu.TryLock());
  // Probe from another thread while this one holds the lock.
  ThreadPool pool(2);
  std::atomic<int> observed{-1};
  {
    ThreadPool::TaskGroup group(&pool);
    group.Submit([&] { observed = mu.TryLock() ? 1 : 0; });
    group.Wait();
  }
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST_F(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu("test.shared");
  mu.ReaderLock();
  EXPECT_TRUE(mu.ReaderTryLock());  // second reader enters
  EXPECT_FALSE(mu.TryLock());       // writer does not
  mu.ReaderUnlock();
  mu.ReaderUnlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
  {
    WriterMutexLock writer(&mu);
    EXPECT_FALSE(mu.ReaderTryLock());
  }
  { ReaderMutexLock reader(&mu); }
}

TEST_F(SyncTest, MutexExposesNameAndRank) {
  Mutex anon;
  EXPECT_STREQ(anon.name(), "mutex");
  EXPECT_EQ(anon.rank(), lock_rank::kUnranked);
  Mutex named("test.named", lock_rank::kLogger);
  EXPECT_STREQ(named.name(), "test.named");
  EXPECT_EQ(named.rank(), lock_rank::kLogger);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

TEST_F(SyncTest, CondVarWaitForTimesOutWithoutNotify) {
  Mutex mu("test.cv");
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, milliseconds(5)));
}

TEST_F(SyncTest, CondVarPredicateWaitForSeesNotifiedCondition) {
  ThreadPool pool(2);
  Mutex mu("test.cv");
  CondVar cv;
  bool ready = false;
  ThreadPool::TaskGroup group(&pool);
  group.Submit([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  bool result = false;
  {
    MutexLock lock(&mu);
    result = cv.WaitFor(&mu, milliseconds(5000), [&] { return ready; });
  }
  group.Wait();
  EXPECT_TRUE(result);
}

TEST_F(SyncTest, CondVarPredicateWaitForReportsFalseOnTimeout) {
  Mutex mu("test.cv");
  CondVar cv;
  bool never = false;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, milliseconds(5), [&] { return never; }));
}

TEST_F(SyncTest, CondVarWaitKeepsDetectorHeldStackAccurate) {
  SetDeadlockDebug(true);
  Mutex mu("test.cv");
  CondVar cv;
  {
    MutexLock lock(&mu);
    EXPECT_EQ(sync_internal::HeldLockCountForTest(), 1u);
    // The wait releases and re-acquires; afterwards the lock must still be
    // recorded as held exactly once.
    EXPECT_FALSE(cv.WaitFor(&mu, milliseconds(2)));
    EXPECT_EQ(sync_internal::HeldLockCountForTest(), 1u);
  }
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 0u);
}

// ---------------------------------------------------------------------------
// Detector bookkeeping
// ---------------------------------------------------------------------------

TEST_F(SyncTest, DetectorOffRecordsNothing) {
  ASSERT_FALSE(DeadlockDebugEnabled());
  Mutex a("test.a", 10);
  Mutex b("test.b", 20);
  // Out-of-rank and ABBA orders are invisible (and harmless) while off.
  b.Lock();
  a.Lock();
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 0u);
  a.Unlock();
  b.Unlock();
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 0u);
}

TEST_F(SyncTest, DetectorTracksHeldStack) {
  SetDeadlockDebug(true);
  Mutex a("test.a", 10);
  Mutex b("test.b", 20);
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 0u);
  {
    MutexLock la(&a);
    EXPECT_EQ(sync_internal::HeldLockCountForTest(), 1u);
    MutexLock lb(&b);
    EXPECT_EQ(sync_internal::HeldLockCountForTest(), 2u);
  }
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 0u);
}

TEST_F(SyncTest, ConsistentLockOrderNeverAborts) {
  SetDeadlockDebug(true);
  Mutex a("test.a");
  Mutex b("test.b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  SUCCEED();
}

TEST_F(SyncTest, IncreasingRankOrderNeverAborts) {
  SetDeadlockDebug(true);
  Mutex repo("test.repo", lock_rank::kRepository);
  Mutex logger("test.logger", lock_rank::kLogger);
  Mutex shard("test.shard", lock_rank::kMetricsShard);
  MutexLock l1(&repo);
  MutexLock l2(&logger);
  MutexLock l3(&shard);
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 3u);
}

TEST_F(SyncTest, DestroyedMutexLeavesNoStaleGraphEdges) {
  SetDeadlockDebug(true);
  Mutex a("test.a");
  {
    // Record a -> tmp, then destroy tmp. If its edges survived, the
    // tmp2 -> a acquisition below could alias tmp's recycled address and
    // report a phantom cycle.
    Mutex tmp("test.tmp");
    MutexLock la(&a);
    MutexLock lt(&tmp);
  }
  {
    Mutex tmp2("test.tmp2");
    MutexLock lt(&tmp2);
    MutexLock la(&a);
  }
  SUCCEED();
}

TEST_F(SyncTest, PoolFanoutUnderDetectorIsClean) {
  SetDeadlockDebug(true);
  ThreadPool pool(8);
  Mutex mu("test.fanout");
  uint64_t sum = 0;
  // Touch the instrumented subsystems from every worker: pool queue and
  // group locks, metrics shards, trace registry, and the logger all
  // interleave here, so a rank-table regression aborts this test.
  trace::Start();
  pool.ParallelFor(0, 2000, 16, [&](size_t lo, size_t hi) {
    ORPHEUS_TRACE_SPAN("test.sync.chunk");
    uint64_t local = 0;
    for (size_t i = lo; i < hi; ++i) local += i;
    MutexLock lock(&mu);
    sum += local;
  });
  trace::Stop();
  EXPECT_EQ(sum, 2000u * 1999 / 2);
  EXPECT_EQ(sync_internal::HeldLockCountForTest(), 0u);
}

// ---------------------------------------------------------------------------
// Detector abort paths (fork-based death tests)
// ---------------------------------------------------------------------------

class SyncDeathTest : public SyncTest {
 protected:
  void SetUp() override {
    SyncTest::SetUp();
    // Re-execute the binary for the death statement: the parent process
    // already runs pool workers in other tests, and fork()+threads in the
    // "fast" style is not reliable.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SyncDeathTest, RankViolationAbortsWithBothLocks) {
  EXPECT_DEATH(
      {
        SetDeadlockDebug(true);
        Mutex low("death.low", lock_rank::kRepository);
        Mutex high("death.high", lock_rank::kLogger);
        MutexLock lh(&high);
        MutexLock ll(&low);  // rank 10 after rank 80: out of order
      },
      "LOCK RANK VIOLATION(.|\n)*death\\.low(.|\n)*death\\.high");
}

TEST_F(SyncDeathTest, EqualRankNestingAborts) {
  EXPECT_DEATH(
      {
        SetDeadlockDebug(true);
        Mutex s1("death.shard1", lock_rank::kMetricsShard);
        Mutex s2("death.shard2", lock_rank::kMetricsShard);
        MutexLock l1(&s1);
        MutexLock l2(&s2);  // equal ranks must never nest
      },
      "LOCK RANK VIOLATION(.|\n)*death\\.shard2");
}

TEST_F(SyncDeathTest, AbbaCycleAbortsWithBothAcquisitionStacks) {
  EXPECT_DEATH(
      {
        SetDeadlockDebug(true);
        Mutex a("death.a");
        Mutex b("death.b");
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // records a -> b
        }
        MutexLock lb(&b);
        MutexLock la(&a);  // b -> a closes the cycle
      },
      "LOCK-ORDER CYCLE(.|\n)*death\\.a(.|\n)*death\\.b(.|\n)*"
      "conflicting prior acquisition(.|\n)*death\\.b");
}

TEST_F(SyncDeathTest, SelfDeadlockAborts) {
  EXPECT_DEATH(
      {
        SetDeadlockDebug(true);
        Mutex mu("death.self");
        mu.Lock();
        mu.Lock();  // re-acquiring a held non-recursive mutex
      },
      "SELF-DEADLOCK(.|\n)*death\\.self");
}

// ---------------------------------------------------------------------------
// Regression tests for races surfaced by the annotation pass
// ---------------------------------------------------------------------------

// log::Enabled() reads the level on every site without the logger lock; the
// level is now atomic. Hammer reads against concurrent set_level calls (the
// TSan job turns any regression into a hard failure).
TEST_F(SyncTest, LoggerLevelIsSafeToReadConcurrently) {
  ThreadPool pool(4);
  std::atomic<uint64_t> enabled_reads{0};
  pool.ParallelFor(0, 400, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      if (i % 2 == 0) {
        log::SetLevelForTest(i % 4 == 0 ? log::Level::kDebug
                                        : log::Level::kWarn);
      } else if (log::Enabled(log::Level::kInfo)) {
        enabled_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  log::SetLevelForTest(log::Level::kInfo);
  EXPECT_LE(enabled_reads.load(), 200u);
}

// Trace ring publication: a thread's first emit allocates its ring and
// publishes it while a snapshotting thread iterates the registry; the
// pointer is now an acquire/release atomic. Emit from fresh pool workers
// while snapshotting concurrently.
TEST_F(SyncTest, TraceRingPublicationRacesSnapshot) {
  trace::Start();
  ThreadPool pool(8);
  ThreadPool::TaskGroup group(&pool);
  for (int t = 0; t < 7; ++t) {
    group.Submit([] {
      for (int i = 0; i < 50; ++i) ORPHEUS_TRACE_INSTANT("test.sync.emit", i);
    });
  }
  size_t snapshot_events = 0;
  for (int i = 0; i < 20; ++i) {
    for (const auto& thread : trace::SnapshotAll()) {
      snapshot_events += thread.events.size();
    }
    snapshot_events += trace::NumBufferedEvents();
  }
  group.Wait();
  trace::Stop();
  size_t emitted = 0;
  for (const auto& thread : trace::SnapshotAll()) {
    emitted += thread.events.size();
  }
  EXPECT_GE(emitted, 1u);
}

}  // namespace
}  // namespace orpheus
