// Tests for the orpheusd network layer (DESIGN.md §14): wire codecs,
// handshake, the remote Session API, exactly-once commit retry, leases,
// graceful degradation, and the network chaos matrix — every protocol
// state killed at least once, with full version accounting afterwards.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/validation.h"
#include "core/cvd.h"
#include "core/types.h"
#include "core/validate.h"
#include "minidb/schema.h"
#include "minidb/table.h"
#include "minidb/value.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "session/session.h"
#include "storage/repository.h"

namespace orpheus::net {
namespace {

using core::VersionId;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "orpheus_net_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << tmpl;
  }
  return tmpl;
}

Table MakeSeedTable(const std::vector<std::pair<int64_t, std::string>>& rows) {
  Table t("seed",
          Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}}));
  for (const auto& [id, name] : rows) {
    ORPHEUS_CHECK_OK(t.InsertRow({Value(id), Value(name)}));
  }
  return t;
}

std::unique_ptr<core::Cvd> MakeCvd() {
  core::Cvd::Options opts;
  opts.primary_key = {"id"};
  return core::Cvd::Init("t",
                         MakeSeedTable({{1, "alpha"}, {2, "beta"}}), opts)
      .MoveValueOrDie();
}

/// Checked-out staging tables carry (_rid, id, name).
void AddRow(Table* t, int64_t id, const std::string& name) {
  t->AppendRowUnchecked({Value::Null(), Value(id), Value(name)});
}

/// An in-memory server (no repository) over one seed CVD.
std::unique_ptr<SessionServer> StartMemoryServer(ServerOptions options) {
  std::vector<std::unique_ptr<core::Cvd>> cvds;
  cvds.push_back(MakeCvd());
  auto server = SessionServer::Start(nullptr, std::move(cvds), options);
  ORPHEUS_CHECK_OK(server.status());
  return server.MoveValueOrDie();
}

ClientOptions FastClientOptions(uint64_t seed) {
  ClientOptions opts;
  opts.call_deadline_ms = 5000;
  opts.max_attempts = 10;
  opts.backoff_base_ms = 2;
  opts.backoff_cap_ms = 50;
  opts.jitter_seed = seed;
  return opts;
}

int NumVersions(Client* client) {
  auto cvds = client->Ls();
  ORPHEUS_CHECK_OK(cvds.status());
  EXPECT_EQ(cvds.ValueOrDie().size(), 1u);
  return cvds.ValueOrDie()[0].num_versions;
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { log::SetLevelForTest(log::Level::kError); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST_F(NetTest, HelloRoundtrip) {
  Hello hello;
  hello.magic = kNetMagic;
  hello.protocol_version = 7;
  hello.client_uuid = "client-42";
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().magic, kNetMagic);
  EXPECT_EQ(decoded.ValueOrDie().protocol_version, 7u);
  EXPECT_EQ(decoded.ValueOrDie().client_uuid, "client-42");
}

TEST_F(NetTest, HelloAckRoundtrip) {
  HelloAck ack;
  ack.protocol_version = 3;
  ack.server_id = "srv";
  ack.degraded = true;
  ack.code = static_cast<uint8_t>(StatusCode::kNotSupported);
  ack.message = "nope";
  auto decoded = DecodeHelloAck(EncodeHelloAck(ack));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().protocol_version, 3u);
  EXPECT_EQ(decoded.ValueOrDie().server_id, "srv");
  EXPECT_TRUE(decoded.ValueOrDie().degraded);
  EXPECT_EQ(decoded.ValueOrDie().code,
            static_cast<uint8_t>(StatusCode::kNotSupported));
  EXPECT_EQ(decoded.ValueOrDie().message, "nope");
}

TEST_F(NetTest, RequestRoundtripWithTable) {
  Request req;
  req.op = Op::kCommit;
  req.request_seq = 99;
  req.acked_seq = 42;
  req.sid = 7;
  req.deadline_ms = 1234;
  req.table_name = "w";
  req.message = "msg";
  req.author = "alice";
  Table staged("w", Schema({{"id", ValueType::kInt64},
                            {"name", ValueType::kString}}));
  ORPHEUS_CHECK_OK(staged.InsertRow({Value(int64_t{5}), Value("five")}));
  req.table = std::make_unique<Table>(std::move(staged));

  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Request& out = decoded.ValueOrDie();
  EXPECT_EQ(out.op, Op::kCommit);
  EXPECT_EQ(out.request_seq, 99u);
  EXPECT_EQ(out.acked_seq, 42u);
  EXPECT_EQ(out.sid, 7u);
  EXPECT_EQ(out.deadline_ms, 1234);
  EXPECT_EQ(out.table_name, "w");
  EXPECT_EQ(out.message, "msg");
  EXPECT_EQ(out.author, "alice");
  ASSERT_NE(out.table, nullptr);
  EXPECT_EQ(out.table->num_rows(), 1u);
  EXPECT_EQ(out.table->GetValue(0, 1).ToString(), "five");
}

TEST_F(NetTest, RequestRoundtripCheckout) {
  Request req;
  req.op = Op::kCheckout;
  req.request_seq = 3;
  req.sid = 1;
  req.vids = {1, 4, 9};
  req.table_name = "w";
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().vids, (std::vector<VersionId>{1, 4, 9}));
}

TEST_F(NetTest, ResponseRoundtripCommitOutcome) {
  Response resp;
  resp.request_seq = 8;
  resp.op = Op::kCommit;
  resp.outcome.vid = 12;
  resp.outcome.merged_vid = 13;
  resp.outcome.reconciled_with = 11;
  resp.outcome.reconciled = true;
  session::MergeConflict conflict;
  conflict.key = "k";
  conflict.attribute = "name";
  conflict.base = "a";
  conflict.ours = "b";
  conflict.theirs = "c";
  resp.outcome.conflicts.push_back(conflict);

  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Response& out = decoded.ValueOrDie();
  EXPECT_EQ(out.request_seq, 8u);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.outcome.vid, 12);
  EXPECT_EQ(out.outcome.merged_vid, 13);
  EXPECT_EQ(out.outcome.reconciled_with, 11);
  EXPECT_TRUE(out.outcome.reconciled);
  ASSERT_EQ(out.outcome.conflicts.size(), 1u);
  EXPECT_EQ(out.outcome.conflicts[0].attribute, "name");
  EXPECT_EQ(out.outcome.conflicts[0].theirs, "c");
}

TEST_F(NetTest, ResponseRoundtripError) {
  Response resp;
  resp.request_seq = 4;
  resp.op = Op::kCommit;
  resp.SetStatus(Status::Unavailable("busy"), /*transient=*/true);
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded.ValueOrDie().ok());
  EXPECT_TRUE(decoded.ValueOrDie().retryable);
  Status s = decoded.ValueOrDie().ToStatus();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.message(), "busy");
}

TEST_F(NetTest, ResponseRoundtripLs) {
  Response resp;
  resp.op = Op::kLs;
  CvdSummary summary;
  summary.name = "t";
  summary.num_versions = 4;
  summary.watermark = 4;
  summary.open_sessions = 2;
  summary.failed = true;
  resp.cvds.push_back(summary);
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.ValueOrDie().cvds.size(), 1u);
  EXPECT_EQ(decoded.ValueOrDie().cvds[0].name, "t");
  EXPECT_EQ(decoded.ValueOrDie().cvds[0].num_versions, 4);
  EXPECT_TRUE(decoded.ValueOrDie().cvds[0].failed);
}

TEST_F(NetTest, DecodeRejectsTruncatedPayload) {
  Request req;
  req.op = Op::kCommit;
  req.request_seq = 1;
  req.table_name = "w";
  std::string encoded = EncodeRequest(req);
  for (size_t cut : {size_t{0}, size_t{1}, encoded.size() / 2,
                     encoded.size() - 1}) {
    EXPECT_FALSE(DecodeRequest(encoded.substr(0, cut)).ok())
        << "decoded a request truncated to " << cut << " bytes";
  }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

TEST_F(NetTest, HandshakeRejectsVersionMismatch) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);

  auto connected =
      Socket::Connect(server->address(), Deadline::AfterMillis(2000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Socket sock = connected.MoveValueOrDie();
  Hello hello;
  hello.magic = kNetMagic;
  hello.protocol_version = 99;
  hello.client_uuid = "future-client";
  ORPHEUS_CHECK_OK(SendMessage(&sock, MsgType::kHello, EncodeHello(hello),
                               Deadline::AfterMillis(2000)));
  MsgType type;
  std::string payload;
  ORPHEUS_CHECK_OK(
      RecvMessage(&sock, &type, &payload, Deadline::AfterMillis(2000)));
  ASSERT_EQ(type, MsgType::kHelloAck);
  auto ack = DecodeHelloAck(payload);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.ValueOrDie().code,
            static_cast<uint8_t>(StatusCode::kNotSupported));
  EXPECT_NE(ack.ValueOrDie().message.find("version"), std::string::npos);
}

TEST_F(NetTest, HandshakeRejectsBadMagic) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);

  auto connected =
      Socket::Connect(server->address(), Deadline::AfterMillis(2000));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Socket sock = connected.MoveValueOrDie();
  Hello hello;
  hello.magic = "NOTORPH1";
  hello.client_uuid = "x";
  ORPHEUS_CHECK_OK(SendMessage(&sock, MsgType::kHello, EncodeHello(hello),
                               Deadline::AfterMillis(2000)));
  MsgType type;
  std::string payload;
  ORPHEUS_CHECK_OK(
      RecvMessage(&sock, &type, &payload, Deadline::AfterMillis(2000)));
  auto ack = DecodeHelloAck(payload);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.ValueOrDie().code,
            static_cast<uint8_t>(StatusCode::kInvalidArgument));
}

// ---------------------------------------------------------------------------
// Basic remote session lifecycle
// ---------------------------------------------------------------------------

void RunLifecycle(const std::string& listen) {
  ServerOptions options;
  options.listen = listen;
  auto server = StartMemoryServer(options);

  auto client = Client::Connect(server->address(), FastClientOptions(1));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();
  EXPECT_FALSE(c->server_degraded());

  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.ValueOrDie().watermark, 1);

  auto missing = c->Open("nope");
  EXPECT_TRUE(missing.status().IsNotFound());

  const uint64_t sid = opened.ValueOrDie().sid;
  auto checked = c->Checkout(sid, {1}, "w");
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  Table table = checked.MoveValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);

  AddRow(&table, 3, "gamma");
  auto outcome = c->Commit(sid, table, "add gamma", "tester");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_NE(outcome.ValueOrDie().vid, core::kInvalidVersion);
  EXPECT_TRUE(outcome.ValueOrDie().conflicts.empty());

  auto refreshed = c->Refresh(sid);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed.ValueOrDie(), outcome.ValueOrDie().vid);

  // The committed version materializes with the new row.
  auto again = c->Checkout(sid, {outcome.ValueOrDie().vid}, "w2");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.ValueOrDie().num_rows(), 3u);

  auto lease = c->Heartbeat(sid);
  ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  EXPECT_GT(lease.ValueOrDie(), 0);

  EXPECT_EQ(NumVersions(c), 2);
  ORPHEUS_CHECK_OK(c->CloseSession(sid));
  ORPHEUS_CHECK_OK(c->CloseSession(sid));  // idempotent
  EXPECT_EQ(server->stats().sessions_open, 0u);
}

TEST_F(NetTest, LifecycleOverUnixSocket) {
  RunLifecycle("unix:" + MakeTempDir() + "/sock");
}

TEST_F(NetTest, LifecycleOverLoopbackTcp) { RunLifecycle("tcp:0"); }

TEST_F(NetTest, ListenerRejectsNonLoopbackTcp) {
  EXPECT_FALSE(Listener::Listen("tcp:8.8.8.8:1234").ok());
}

// ---------------------------------------------------------------------------
// Exactly-once commit retry
// ---------------------------------------------------------------------------

// Requests dispatch in order open(1), checkout(2), commit(3): the drop
// sites below use those hit ordinals to kill the commit exchange exactly.

TEST_F(NetTest, LostCommitAckReplaysOriginalResult) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);
  auto client = Client::Connect(server->address(), FastClientOptions(2));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  // Hit ordinals count from arming: open=1, checkout=2, commit=3. The
  // commit EXECUTES, then its ACK is lost: the retry must replay the
  // recorded verdict, not commit a second time.
  failpoint::Arm("net.server.drop_before_send", failpoint::Action::kError,
                 /*trigger_at=*/3, /*once=*/true);

  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uint64_t sid = opened.ValueOrDie().sid;
  auto checked = c->Checkout(sid, {1}, "w");
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  Table table = checked.MoveValueOrDie();
  AddRow(&table, 3, "gamma");

  auto outcome = c->Commit(sid, table, "add gamma", "tester");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_NE(outcome.ValueOrDie().vid, core::kInvalidVersion);
  EXPECT_GE(c->stats().retries, 1u);

  SessionServer::Stats stats = server->stats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_GE(stats.commits_replayed, 1u);
  EXPECT_EQ(NumVersions(c), 2);  // exactly one new version — no duplicate
}

TEST_F(NetTest, DroppedCommitRequestExecutesOnce) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);
  auto client = Client::Connect(server->address(), FastClientOptions(3));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  // The commit request (hit 3: open=1, checkout=2) is read, then the
  // connection dies BEFORE dispatch: nothing executed, so the retry
  // performs the one and only commit.
  failpoint::Arm("net.server.drop_after_read", failpoint::Action::kError,
                 /*trigger_at=*/3, /*once=*/true);

  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uint64_t sid = opened.ValueOrDie().sid;
  auto checked = c->Checkout(sid, {1}, "w");
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  Table table = checked.MoveValueOrDie();
  AddRow(&table, 4, "delta");

  auto outcome = c->Commit(sid, table, "add delta", "tester");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  SessionServer::Stats stats = server->stats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(NumVersions(c), 2);
}

TEST_F(NetTest, RetriedOpenReturnsOriginalSid) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);
  auto client = Client::Connect(server->address(), FastClientOptions(4));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  // Open's ACK is lost: the retry must get the SAME sid back rather than
  // leak a second server-side session.
  failpoint::Arm("net.server.drop_before_send", failpoint::Action::kError,
                 /*trigger_at=*/1, /*once=*/true);
  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(server->stats().sessions_open, 1u);
  // The replayed sid really works.
  auto checked = c->Checkout(opened.ValueOrDie().sid, {1}, "w");
  EXPECT_TRUE(checked.ok()) << checked.status().ToString();
}

// ---------------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------------

TEST_F(NetTest, LeaseExpiryReleasesSession) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  options.lease_ms = 150;
  auto server = StartMemoryServer(options);
  auto client = Client::Connect(server->address(), FastClientOptions(5));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uint64_t sid = opened.ValueOrDie().sid;

  // Go silent past the lease: the reaper must release the session.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  auto checked = c->Checkout(sid, {1}, "w");
  EXPECT_TRUE(checked.status().IsNotFound())
      << checked.status().ToString();
  SessionServer::Stats stats = server->stats();
  EXPECT_GE(stats.leases_expired, 1u);
  EXPECT_EQ(stats.sessions_open, 0u);

  // A fresh open starts over.
  auto reopened = c->Open("t");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NE(reopened.ValueOrDie().sid, sid);
}

TEST_F(NetTest, HeartbeatKeepsLeaseAlive) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  options.lease_ms = 400;
  auto server = StartMemoryServer(options);
  auto client = Client::Connect(server->address(), FastClientOptions(6));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uint64_t sid = opened.ValueOrDie().sid;
  // 5 x 150ms > lease, but each heartbeat renews it.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto lease = c->Heartbeat(sid);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  }
  auto checked = c->Checkout(sid, {1}, "w");
  EXPECT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(server->stats().leases_expired, 0u);
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

TEST_F(NetTest, DegradedRepositoryServesReadOnly) {
  const std::string dir = MakeTempDir();
  auto repo = storage::Repository::Open(dir + "/repo");
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  std::vector<std::unique_ptr<core::Cvd>> cvds;
  cvds.push_back(MakeCvd());
  ORPHEUS_CHECK_OK(repo.ValueOrDie()->LogCreate(*cvds[0]));

  ServerOptions options;
  options.listen = "unix:" + dir + "/sock";
  auto started = SessionServer::Start(repo.ValueOrDie().get(),
                                      std::move(cvds), options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  SessionServer* server = started.ValueOrDie().get();

  auto client = Client::Connect(server->address(), FastClientOptions(7));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();
  auto opened = c->Open("t");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uint64_t sid = opened.ValueOrDie().sid;

  // A healthy commit works end to end (durable through the repository).
  auto checked = c->Checkout(sid, {1}, "w");
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  Table t1 = checked.MoveValueOrDie();
  AddRow(&t1, 3, "gamma");
  auto ok_outcome = c->Commit(sid, t1, "healthy", "tester");
  ASSERT_TRUE(ok_outcome.ok()) << ok_outcome.status().ToString();

  // Break the WAL: the in-flight commit fails and degrades the repository.
  failpoint::Arm("storage.wal.append.frame", failpoint::Action::kError);
  auto checked2 = c->Checkout(sid, {1}, "w2");
  ASSERT_TRUE(checked2.ok()) << checked2.status().ToString();
  Table t2 = checked2.MoveValueOrDie();
  AddRow(&t2, 4, "delta");
  auto failed = c->Commit(sid, t2, "doomed", "tester");
  EXPECT_FALSE(failed.ok());
  failpoint::DisarmAll();
  EXPECT_TRUE(repo.ValueOrDie()->degraded());

  // Commits are now refused with a DEFINITIVE (non-retryable) verdict …
  const uint64_t retries_before = c->stats().retries;
  auto checked3 = c->Checkout(sid, {1}, "w3");
  ASSERT_TRUE(checked3.ok()) << checked3.status().ToString();
  Table t3 = checked3.MoveValueOrDie();
  AddRow(&t3, 5, "epsilon");
  auto refused = c->Commit(sid, t3, "refused", "tester");
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable());
  EXPECT_NE(refused.status().message().find("degraded"), std::string::npos)
      << refused.status().ToString();
  EXPECT_EQ(c->stats().retries, retries_before)
      << "client retried a non-retryable degraded verdict";

  // … while read-only checkouts keep being served,
  auto checked4 = c->Checkout(sid, {1}, "w4");
  EXPECT_TRUE(checked4.ok()) << checked4.status().ToString();
  // ls reports the failure,
  auto cvd_list = c->Ls();
  ASSERT_TRUE(cvd_list.ok()) << cvd_list.status().ToString();
  ASSERT_EQ(cvd_list.ValueOrDie().size(), 1u);
  EXPECT_TRUE(cvd_list.ValueOrDie()[0].failed);
  // and new connections learn of the degradation in the handshake.
  auto fresh = Client::Connect(server->address(), FastClientOptions(8));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_TRUE(fresh.ValueOrDie()->server_degraded());

  started.ValueOrDie()->Stop();
}

// A commit whose durability wait outlives the caller's deadline is PARKED,
// not lost: the client's retry under the original stamp resumes the wait
// and collects the one-and-only verdict. Slow disk simulated by delaying
// the WAL fsync 1500ms while client B calls with a 500ms budget.
TEST_F(NetTest, DurabilityTimeoutResumesNotRepeats) {
  const std::string dir = MakeTempDir();
  auto repo = storage::Repository::Open(dir + "/repo");
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  std::vector<std::unique_ptr<core::Cvd>> cvds;
  cvds.push_back(MakeCvd());
  ORPHEUS_CHECK_OK(repo.ValueOrDie()->LogCreate(*cvds[0]));

  ServerOptions options;
  options.listen = "unix:" + dir + "/sock";
  auto started = SessionServer::Start(repo.ValueOrDie().get(),
                                      std::move(cvds), options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  SessionServer* server = started.ValueOrDie().get();

  // Client A: patient (5s). Client B: a 500ms budget that cannot cover
  // the stalled flush.
  auto client_a = Client::Connect(server->address(), FastClientOptions(20));
  ASSERT_TRUE(client_a.ok()) << client_a.status().ToString();
  ClientOptions bopts = FastClientOptions(21);
  bopts.call_deadline_ms = 500;
  auto client_b = Client::Connect(server->address(), bopts);
  ASSERT_TRUE(client_b.ok()) << client_b.status().ToString();
  Client* a = client_a.ValueOrDie().get();
  Client* b = client_b.ValueOrDie().get();

  auto opened_a = a->Open("t");
  ASSERT_TRUE(opened_a.ok()) << opened_a.status().ToString();
  auto opened_b = b->Open("t");
  ASSERT_TRUE(opened_b.ok()) << opened_b.status().ToString();
  const uint64_t sid_a = opened_a.ValueOrDie().sid;
  const uint64_t sid_b = opened_b.ValueOrDie().sid;

  auto checked_a = a->Checkout(sid_a, {1}, "w");
  ASSERT_TRUE(checked_a.ok()) << checked_a.status().ToString();
  Table ta = checked_a.MoveValueOrDie();
  AddRow(&ta, 10, "a-row");
  auto checked_b = b->Checkout(sid_b, {1}, "w");
  ASSERT_TRUE(checked_b.ok()) << checked_b.status().ToString();
  Table tb = checked_b.MoveValueOrDie();
  AddRow(&tb, 11, "b-row");

  // First WAL fsync after arming = A's group-commit leader flush.
  failpoint::Arm("storage.wal.append.sync", failpoint::Action::kDelay,
                 /*trigger_at=*/1, /*once=*/true, /*probability=*/1.0,
                 /*delay_ms=*/1500);
  Result<session::CommitOutcome> outcome_a =
      Status::Unavailable("commit A never ran");
  DedicatedThread committer_a("test-committer-a", [&] {
    outcome_a = a->Commit(sid_a, ta, "slow but durable", "alice");
  });
  // Let A become the leader and stall inside the delayed fsync, then
  // commit from B: its durability wait parks behind the leader and the
  // 500ms call budget expires first.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto unknown = b->Commit(sid_b, tb, "parked", "bob");
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsDeadlineExceeded() ||
              unknown.status().IsUnavailable())
      << unknown.status().ToString();

  committer_a.Join();
  ASSERT_TRUE(outcome_a.ok()) << outcome_a.status().ToString();

  // B retries with the same staged table: the client reuses the original
  // stamp, the server resumes the PARKED wait (now instantly resolvable),
  // and exactly one new version exists for B — no duplicate commit.
  auto resumed = b->Commit(sid_b, tb, "parked", "bob");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  const auto& stats = server->stats();
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_GE(stats.commits_resumed, 1u);
  const int expected_versions =
      1 + (1 + (outcome_a.ValueOrDie().reconciled ? 1 : 0)) +
      (1 + (resumed.ValueOrDie().reconciled ? 1 : 0));
  EXPECT_EQ(NumVersions(a), expected_versions);

  started.ValueOrDie()->Stop();
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST_F(NetTest, CallsNeverHangPastDeadline) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);

  ClientOptions copts = FastClientOptions(9);
  copts.call_deadline_ms = 300;
  copts.max_attempts = 100;  // the deadline, not the cap, must stop us
  auto client = Client::Connect(server->address(), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  // Every server read now fails: no response will ever arrive.
  failpoint::Arm("net.server.recv", failpoint::Action::kError);
  Timer timer;
  auto opened = c->Open("t");
  const double elapsed_ms = timer.ElapsedMillis();
  EXPECT_FALSE(opened.ok());
  EXPECT_LT(elapsed_ms, 5000.0)
      << "call ran far past its 300ms deadline: " << elapsed_ms << "ms";
}

// ---------------------------------------------------------------------------
// The network chaos matrix
// ---------------------------------------------------------------------------

// Deterministic kill matrix: for every net.* failpoint site, inject one
// fault and drive a full open/checkout/commit cycle. Every cycle must
// converge to exactly one new version — transient faults are the client's
// problem, never the caller's.
TEST_F(NetTest, KillMatrixEverySiteOnce) {
  const struct {
    const char* site;
    bool fires_on_connect;  // arm BEFORE Client::Connect
  } kMatrix[] = {
      {"net.client.connect", true},
      {"net.server.accept", true},
      {"net.client.send", false},
      {"net.client.send.partial", false},
      {"net.client.recv", false},
      {"net.server.send", false},
      {"net.server.send.partial", false},
      {"net.server.recv", false},
      {"net.server.drop_after_read", false},
      {"net.server.drop_before_send", false},
  };

  int round = 0;
  for (const auto& entry : kMatrix) {
    SCOPED_TRACE(entry.site);
    ServerOptions options;
    options.listen = "unix:" + MakeTempDir() + "/sock";
    auto server = StartMemoryServer(options);
    ClientOptions copts = FastClientOptions(100 + round);

    std::unique_ptr<Client> client;
    if (entry.fires_on_connect) {
      failpoint::Arm(entry.site, failpoint::Action::kError,
                     /*trigger_at=*/1, /*once=*/true);
      auto c = Client::Connect(server->address(), copts);
      if (!c.ok()) c = Client::Connect(server->address(), copts);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      client = c.MoveValueOrDie();
    } else {
      auto c = Client::Connect(server->address(), copts);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      client = c.MoveValueOrDie();
      failpoint::Arm(entry.site, failpoint::Action::kError,
                     /*trigger_at=*/1, /*once=*/true);
    }

    auto opened = client->Open("t");
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const uint64_t sid = opened.ValueOrDie().sid;
    auto checked = client->Checkout(sid, {1}, "w");
    ASSERT_TRUE(checked.ok()) << checked.status().ToString();
    Table table = checked.MoveValueOrDie();
    AddRow(&table, 100 + round, "chaos");
    auto outcome = client->Commit(sid, table, "chaos commit", "tester");
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_NE(outcome.ValueOrDie().vid, core::kInvalidVersion);

    EXPECT_GE(failpoint::HitCount(entry.site), 1u)
        << "site never fired — the matrix entry tested nothing";
    EXPECT_EQ(NumVersions(client.get()), 2)
        << "fault produced a phantom or duplicate version";
    ORPHEUS_CHECK_OK(client->CloseSession(sid));
    failpoint::DisarmAll();
    server->Stop();
    ++round;
  }
}

// Probabilistic chaos hammer: 8 clients commit concurrently while every
// net.* site misbehaves at random (deterministically seeded). Afterwards:
// every client got a definitive result for every round, version accounting
// matches commits exactly (no phantoms, no duplicates), and the CVD passes
// the full invariant validator.
TEST_F(NetTest, ChaosHammerEightClients) {
  ServerOptions options;
  options.listen = "unix:" + MakeTempDir() + "/sock";
  auto server = StartMemoryServer(options);

  failpoint::Reseed(12345);
  ORPHEUS_CHECK_OK(failpoint::ArmFromSpec(
      "net.server.recv=error:p0.05;net.server.send=error:p0.05;"
      "net.client.send=error:p0.05;net.client.recv=error:p0.05;"
      "net.server.drop_before_send=error:p0.03;"
      "net.server.drop_after_read=error:p0.03;"
      "net.server.send.partial=error:p0.02;"
      "net.client.send.partial=error:p0.02"));

  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  struct ClientResult {
    std::vector<session::CommitOutcome> outcomes;
    std::vector<Status> definitive_errors;
    int unresolved = 0;
    Status fatal = Status::OK();
  };
  std::vector<ClientResult> results(kClients);

  ThreadPool pool(kClients);
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < kClients; ++i) {
      group.Submit([&, i] {
        ClientResult& r = results[i];
        ClientOptions copts;
        copts.client_uuid = "chaos-" + std::to_string(i);
        copts.jitter_seed = 1000 + i;
        copts.call_deadline_ms = 8000;
        copts.max_attempts = 12;
        copts.backoff_base_ms = 2;
        copts.backoff_cap_ms = 100;
        auto connected = Client::Connect(server->address(), copts);
        for (int tries = 0; !connected.ok() && tries < 10; ++tries) {
          connected = Client::Connect(server->address(), copts);
        }
        if (!connected.ok()) {
          r.fatal = connected.status();
          return;
        }
        Client* c = connected.ValueOrDie().get();
        auto opened = c->Open("t");
        if (!opened.ok()) {
          r.fatal = opened.status();
          return;
        }
        const uint64_t sid = opened.ValueOrDie().sid;
        // DeadlineExceeded and Unavailable are "try again" answers (the
        // client keeps a timed-out commit's stamp, so retrying RESOLVES
        // it); anything else is a definitive verdict.
        auto unknown = [](const Status& s) {
          return s.IsDeadlineExceeded() || s.IsUnavailable();
        };
        for (int round = 0; round < kRounds; ++round) {
          const std::string table_name = "w" + std::to_string(round);
          Result<Table> checked = Status::Unavailable("not tried");
          for (int tries = 0; tries < 8; ++tries) {
            checked = c->Checkout(sid, {1}, table_name);
            if (checked.ok() || !unknown(checked.status())) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          if (!checked.ok()) {
            r.definitive_errors.push_back(checked.status());
            continue;
          }
          Table table = checked.MoveValueOrDie();
          // Disjoint key ranges: concurrent commits reconcile cleanly.
          AddRow(&table, 10000 + i * 100 + round, "c" + std::to_string(i));
          bool resolved = false;
          for (int tries = 0; tries < 8; ++tries) {
            auto outcome = c->Commit(sid, table, "chaos", "tester");
            if (outcome.ok()) {
              r.outcomes.push_back(outcome.MoveValueOrDie());
              resolved = true;
              break;
            }
            if (unknown(outcome.status())) {
              std::this_thread::sleep_for(std::chrono::milliseconds(100));
              continue;
            }
            r.definitive_errors.push_back(outcome.status());
            resolved = true;
            break;
          }
          if (!resolved) ++r.unresolved;
        }
        ORPHEUS_IGNORE_ERROR(c->CloseSession(sid));
      });
    }
    group.Wait();
  }
  failpoint::DisarmAll();

  // Every client connected and resolved every round — confirmed result or
  // definitive error, never a dangling unknown.
  int total_commits = 0;
  int expected_versions = 1;  // the seed version
  std::set<VersionId> all_vids;
  for (int i = 0; i < kClients; ++i) {
    const ClientResult& r = results[i];
    ASSERT_TRUE(r.fatal.ok())
        << "client " << i << " never got going: " << r.fatal.ToString();
    EXPECT_EQ(r.unresolved, 0) << "client " << i
                               << " left a commit outcome unresolved";
    // With this fault mix every op resolves to success under retry;
    // a definitive error here would be a protocol-level bug.
    for (const Status& s : r.definitive_errors) {
      ADD_FAILURE() << "client " << i
                    << " got a definitive error: " << s.ToString();
    }
    for (const session::CommitOutcome& outcome : r.outcomes) {
      ++total_commits;
      ++expected_versions;
      EXPECT_TRUE(all_vids.insert(outcome.vid).second)
          << "duplicate version " << outcome.vid << " from client " << i;
      if (outcome.merged_vid != core::kInvalidVersion) {
        ++expected_versions;
        EXPECT_TRUE(all_vids.insert(outcome.merged_vid).second)
            << "duplicate merge version " << outcome.merged_vid;
      }
    }
  }
  EXPECT_GT(total_commits, 0) << "chaos swallowed every commit";

  // Version accounting: the CVD holds exactly the versions the confirmed
  // outcomes claim — no phantom from a killed connection, no duplicate
  // from a retried commit.
  auto audit = Client::Connect(server->address(), FastClientOptions(77));
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(NumVersions(audit.ValueOrDie().get()), expected_versions);

  // And the structure is fsck-clean.
  ValidationReport report;
  ORPHEUS_CHECK_OK(server->manager("t")->ReadCvd(
      [&report](const core::Cvd& cvd) {
        core::ValidateCvd(cvd, &report);
        return Status::OK();
      }));
  EXPECT_TRUE(report.ok()) << report.ToString();

  SessionServer::Stats stats = server->stats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(total_commits));
}

}  // namespace
}  // namespace orpheus::net
