#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "common/env.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace orpheus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("version 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: version 7");
}

TEST(StatusTest, AllConstructorsProduceTheirCode) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    ORPHEUS_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.MoveValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(RandomTest, Deterministic) {
  Xorshift a(123);
  Xorshift b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformWithinBounds) {
  Xorshift rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Xorshift rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xorshift rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Xorshift rng(11);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<uint64_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(uniq.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RandomTest, SampleClampedToPopulation) {
  Xorshift rng(11);
  auto sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitSingle) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("checkout -v 1", "checkout"));
  EXPECT_FALSE(StartsWith("co", "checkout"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SELECT Vid"), "select vid");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(HumanSeconds(0.053), "53.0 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
  EXPECT_EQ(HumanSeconds(180.0), "3.0 min");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(ParseIntStrictTest, AcceptsOnlyCleanIntegers) {
  EXPECT_EQ(ParseIntStrict("0"), 0);
  EXPECT_EQ(ParseIntStrict("-3"), -3);
  EXPECT_EQ(ParseIntStrict("+8"), 8);
  EXPECT_EQ(ParseIntStrict("9223372036854775807"), INT64_MAX);
  EXPECT_FALSE(ParseIntStrict("").has_value());
  EXPECT_FALSE(ParseIntStrict("8abc").has_value());
  EXPECT_FALSE(ParseIntStrict(" 8").has_value());
  EXPECT_FALSE(ParseIntStrict("8 ").has_value());
  EXPECT_FALSE(ParseIntStrict("1.5").has_value());
  EXPECT_FALSE(ParseIntStrict("+").has_value());
  EXPECT_FALSE(ParseIntStrict("0x10").has_value());
  // Overflow is a failure, not a clamp (atoi/strtoll behavior).
  EXPECT_FALSE(ParseIntStrict("9223372036854775808").has_value());
}

TEST(ParseEnvIntTest, FallsBackOnGarbageAndRange) {
  // Regression: ORPHEUS_THREADS="8abc" used to atoi() to 8 silently; any
  // malformed value now falls back to the default (with one warning).
  setenv("ORPHEUS_TEST_INT", "8abc", 1);
  EXPECT_EQ(ParseEnvInt("ORPHEUS_TEST_INT", 4, 1, 4096), 4);
  setenv("ORPHEUS_TEST_INT", "-3", 1);
  EXPECT_EQ(ParseEnvInt("ORPHEUS_TEST_INT", 4, 1, 4096), 4);
  setenv("ORPHEUS_TEST_INT", "", 1);
  EXPECT_EQ(ParseEnvInt("ORPHEUS_TEST_INT", 4, 1, 4096), 4);
  setenv("ORPHEUS_TEST_INT", "99999", 1);
  EXPECT_EQ(ParseEnvInt("ORPHEUS_TEST_INT", 4, 1, 4096), 4);
  setenv("ORPHEUS_TEST_INT", "16", 1);
  EXPECT_EQ(ParseEnvInt("ORPHEUS_TEST_INT", 4, 1, 4096), 16);
  unsetenv("ORPHEUS_TEST_INT");
  EXPECT_EQ(ParseEnvInt("ORPHEUS_TEST_INT", 4, 1, 4096), 4);
}

TEST(ParseEnvBoolTest, AcceptsCommonSpellings) {
  for (const char* on : {"1", "true", "TRUE", "yes", "on", "On"}) {
    setenv("ORPHEUS_TEST_BOOL", on, 1);
    EXPECT_TRUE(ParseEnvBool("ORPHEUS_TEST_BOOL", false)) << on;
  }
  for (const char* off : {"0", "false", "no", "OFF"}) {
    setenv("ORPHEUS_TEST_BOOL", off, 1);
    EXPECT_FALSE(ParseEnvBool("ORPHEUS_TEST_BOOL", true)) << off;
  }
  setenv("ORPHEUS_TEST_BOOL", "maybe", 1);
  EXPECT_TRUE(ParseEnvBool("ORPHEUS_TEST_BOOL", true));
  EXPECT_FALSE(ParseEnvBool("ORPHEUS_TEST_BOOL", false));
  unsetenv("ORPHEUS_TEST_BOOL");
  EXPECT_TRUE(ParseEnvBool("ORPHEUS_TEST_BOOL", true));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"longer", "22"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

}  // namespace
}  // namespace orpheus
