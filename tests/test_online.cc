#include <gtest/gtest.h>

#include "benchdata/generator.h"
#include "core/online.h"

namespace orpheus::core {
namespace {

struct StreamFixture {
  benchdata::VersionedDataset ds;
  VersionGraph graph;  // grows as versions are fed

  explicit StreamFixture(int versions = 200, int ops = 15)
      : ds(benchdata::VersionedDataset::Generate(
            benchdata::SciConfig("S", versions, 10, ops))) {}

  void Feed(int v) {
    const auto& spec = ds.version(v);
    std::vector<int64_t> w;
    for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
    graph.AddVersion(spec.parents, w,
                     static_cast<int64_t>(spec.records.size()));
  }
};

TEST(OnlineMaintainerTest, PlacesEveryVersion) {
  StreamFixture f(120);
  OnlineMaintainer::Options opt;
  opt.mu = 1.5;
  opt.replan_every = 10;
  OnlineMaintainer maint(&f.graph, opt);

  const int warm = 30;
  for (int v = 0; v < warm; ++v) f.Feed(v);
  uint64_t gamma = static_cast<uint64_t>(
      opt.gamma_factor * f.graph.TotalBipartiteEdges());
  (void)gamma;
  maint.Bootstrap(LyreSplitForBudget(
      f.graph, static_cast<uint64_t>(2.0 * f.ds.num_distinct_records())));

  int migrations = 0;
  for (int v = warm; v < f.ds.num_versions(); ++v) {
    f.Feed(v);
    bool migrate = false;
    int part = maint.OnCommit(v, &migrate);
    EXPECT_GE(part, 0);
    EXPECT_EQ(maint.current().partition_of[v], part);
    if (migrate) {
      maint.OnMigrated();
      ++migrations;
    }
  }
  EXPECT_EQ(maint.versions_seen(), f.ds.num_versions());
  // The tolerance mechanism keeps divergence bounded.
  EXPECT_LE(maint.current_checkout_cost(),
            opt.mu * maint.best_checkout_cost() * 1.5 + 1);
  // Migration should be rare relative to the number of commits (Fig. 5.17).
  EXPECT_LT(migrations, (f.ds.num_versions() - warm) / 4);
}

TEST(OnlineMaintainerTest, MigrationResetsToBestPlan) {
  StreamFixture f(80);
  OnlineMaintainer::Options opt;
  opt.replan_every = 5;
  OnlineMaintainer maint(&f.graph, opt);
  for (int v = 0; v < 40; ++v) f.Feed(v);
  maint.Bootstrap(LyreSplitForBudget(
      f.graph, static_cast<uint64_t>(2.0 * f.ds.num_distinct_records())));
  for (int v = 40; v < 80; ++v) {
    f.Feed(v);
    bool migrate = false;
    maint.OnCommit(v, &migrate);
  }
  maint.OnMigrated();
  // After migration the current cost equals the best plan's cost.
  EXPECT_NEAR(maint.current_checkout_cost(), maint.best_checkout_cost(),
              1e-6);
}

TEST(OnlineMaintainerTest, HigherMuMigratesLessOften) {
  auto run = [](double mu) {
    StreamFixture f(200);
    OnlineMaintainer::Options opt;
    opt.mu = mu;
    opt.replan_every = 5;
    OnlineMaintainer maint(&f.graph, opt);
    for (int v = 0; v < 30; ++v) f.Feed(v);
    maint.Bootstrap(LyreSplitForBudget(
        f.graph, static_cast<uint64_t>(2.0 * f.ds.num_distinct_records())));
    int migrations = 0;
    for (int v = 30; v < f.ds.num_versions(); ++v) {
      f.Feed(v);
      bool migrate = false;
      maint.OnCommit(v, &migrate);
      if (migrate) {
        maint.OnMigrated();
        ++migrations;
      }
    }
    return migrations;
  };
  EXPECT_LE(run(2.0), run(1.2));
}

TEST(OnlineMaintainerTest, StorageGrowsMonotonically) {
  StreamFixture f(60);
  OnlineMaintainer maint(&f.graph, {});
  for (int v = 0; v < 20; ++v) f.Feed(v);
  maint.Bootstrap(LyreSplitForBudget(
      f.graph, static_cast<uint64_t>(2.0 * f.ds.num_distinct_records())));
  uint64_t last = maint.current_storage();
  for (int v = 20; v < 60; ++v) {
    f.Feed(v);
    bool migrate = false;
    maint.OnCommit(v, &migrate);
    EXPECT_GE(maint.current_storage(), last);
    last = maint.current_storage();
  }
}

}  // namespace
}  // namespace orpheus::core
