#include <gtest/gtest.h>

#include "vquel/evaluator.h"
#include "vquel/lexer.h"
#include "vquel/parser.h"
#include "vquel/cvd_bridge.h"
#include "vquel/store.h"

namespace orpheus::vquel {
namespace {

using minidb::Value;

// Builds the Fig. 6.1(b)-style store:
//   v01 (Alice): Employee {e1,e2,e3}, Department {d1,d2}
//   v02 (Bob, from v01): Employee {e1,e2,e3,e4}, Department {d1,d2}
//   v03 (Alice, from v02): Employee {e1,e2',e4} (e2 modified, e3 removed)
// Record-level provenance: e2' derives from e2.
VersionStore MakeStore() {
  VersionStore store;

  auto employee = [](int64_t id, const std::string& eid,
                     const std::string& last, int64_t age) {
    VersionStore::Record r;
    r.id = id;
    r.fields["employee_id"] = Value(eid);
    r.fields["last_name"] = Value(last);
    r.fields["age"] = Value(age);
    return r;
  };
  auto department = [](int64_t id, const std::string& name) {
    VersionStore::Record r;
    r.id = id;
    r.fields["dept_name"] = Value(name);
    return r;
  };

  VersionStore::Version v1;
  v1.commit_id = "v01";
  v1.commit_msg = "initial import";
  v1.creation_ts = 100;
  v1.author_name = "Alice";
  v1.author_email = "alice@example.org";
  v1.relations.push_back(
      {"Employee", false,
       {employee(1, "e01", "Smith", 34), employee(2, "e02", "Jones", 28),
        employee(3, "e03", "Smith", 61)}});
  v1.relations.push_back(
      {"Department", false, {department(4, "Sales"), department(5, "R&D")}});
  store.AddVersion(v1);

  VersionStore::Version v2;
  v2.commit_id = "v02";
  v2.commit_msg = "add new hire";
  v2.creation_ts = 200;
  v2.author_name = "Bob";
  v2.author_email = "bob@example.org";
  v2.parents = {0};
  v2.relations.push_back(
      {"Employee", false,
       {employee(1, "e01", "Smith", 34), employee(2, "e02", "Jones", 28),
        employee(3, "e03", "Smith", 61), employee(6, "e04", "Brown", 45)}});
  v2.relations.push_back(
      {"Department", false, {department(4, "Sales"), department(5, "R&D")}});
  store.AddVersion(v2);

  VersionStore::Version v3;
  v3.commit_id = "v03";
  v3.commit_msg = "cleanup";
  v3.creation_ts = 300;
  v3.author_name = "Alice";
  v3.author_email = "alice@example.org";
  v3.parents = {1};
  VersionStore::Record e2p = employee(7, "e02", "Jones-Lee", 29);
  e2p.parents = {2};  // record-level provenance
  v3.relations.push_back(
      {"Employee", false,
       {employee(1, "e01", "Smith", 34), e2p, employee(6, "e04", "Brown", 45)}});
  v3.relations.push_back(
      {"Department", false, {department(4, "Sales"), department(5, "R&D")}});
  store.AddVersion(v3);
  return store;
}

class VquelTest : public ::testing::Test {
 protected:
  VquelTest() : store_(MakeStore()), session_(&store_) {}

  QueryResult RunOne(const std::string& program) {
    auto results = session_.Execute(program);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    if (!results.ok() || results->empty()) return QueryResult();
    return results->back();
  }

  VersionStore store_;
  Session session_;
};

// Query 6.1: Who is the author of version "v01"?
TEST_F(VquelTest, Query61Author) {
  auto r = RunOne(R"(
      range of V is Version
      retrieve V.author.name where V.id = "v01")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Alice");
}

// Query 6.2: What commits did Alice make after ts 150?
TEST_F(VquelTest, Query62CommitsByAuthorAfterTime) {
  auto r = RunOne(R"(
      range of V is Version
      retrieve V.all
      where V.author.name = "Alice" and V.creation_ts >= 150)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NE(r.rows[0][0].AsString().find("v03"), std::string::npos);
}

// Query 6.3: commit timestamps of versions containing the Employee relation.
TEST_F(VquelTest, Query63VersionsWithRelation) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations
      retrieve V.creation_ts where R.name = "Employee")");
  ASSERT_EQ(r.rows.size(), 3u);
}

// Query 6.4: commit history of Employee in reverse chronological order.
TEST_F(VquelTest, Query64SortDescending) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations
      retrieve V.creation_ts, V.author.name
      where R.name = "Employee" and R.changed = 1
      sort by V.creation_ts desc)");
  ASSERT_EQ(r.rows.size(), 3u);  // all three versions changed Employee
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 300.0);
  EXPECT_DOUBLE_EQ(r.rows[2][0].AsDouble(), 100.0);
}

// Query 6.5: history of tuple e01.
TEST_F(VquelTest, Query65TupleHistory) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations
      range of E is R.Tuples
      retrieve E.all, V.id, V.creation_ts
      where E.employee_id = "e01" and R.name = "Employee"
      sort by V.creation_ts)");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "v01");
  EXPECT_EQ(r.rows[2][1].AsString(), "v03");
}

// Shorthand range with inline filters (Sec. 6.3.2).
TEST_F(VquelTest, Query66InlineFilterShorthand) {
  auto r = RunOne(R"(
      range of E1 is Version(id = "v01").Relations(name = "Employee").Tuples
      range of E2 is Version(id = "v03").Relations(name = "Employee").Tuples
      retrieve E1.all
      where E1.employee_id = E2.employee_id and E1.all != E2.all)");
  // e02 differs between v01 and v03 (e01 identical; e03/e04 don't join).
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NE(r.rows[0][0].AsString().find("e02"), std::string::npos);
}

// Query 6.7: for each version, count the relations inside it.
TEST_F(VquelTest, Query67CountPerVersion) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations
      retrieve V.id, count(R))");
  ASSERT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    EXPECT_DOUBLE_EQ(row[1].NumericValue(), 2.0);
  }
}

// Query 6.8: versions containing exactly 2 Smiths.
TEST_F(VquelTest, Query68CountWithPredicate) {
  auto r = RunOne(R"(
      range of V is Version
      range of E is V.Relations(name = "Employee").Tuples
      retrieve V.id
      where count(E.employee_id where E.last_name = "Smith") = 2)");
  ASSERT_EQ(r.rows.size(), 2u);  // v01 and v02 have e01+e03 Smith
  EXPECT_EQ(r.rows[0][0].AsString(), "v01");
  EXPECT_EQ(r.rows[1][0].AsString(), "v02");
}

// Query 6.9: count_all with group by is equivalent here.
TEST_F(VquelTest, Query69CountAllEquivalent) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations(name = "Employee")
      range of E is R.Tuples
      retrieve V.id
      where count_all(E.employee_id group by R, V
                      where E.last_name = "Smith") = 2)");
  ASSERT_EQ(r.rows.size(), 2u);
}

// Query 6.10: versions whose relations hold exactly 5 tuples total.
TEST_F(VquelTest, Query610TotalTuplesPerVersion) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations
      range of T is R.Tuples
      retrieve V.id where count_all(T group by V) = 5)");
  // v01: 3+2 = 5; v03: 3+2 = 5; v02: 4+2 = 6.
  ASSERT_EQ(r.rows.size(), 2u);
}

// Query 6.11: the version with the most employees above age 40, via
// retrieve into + a second query over the named result.
TEST_F(VquelTest, Query611RetrieveInto) {
  auto r = RunOne(R"(
      range of V is Version
      range of E is V.Relations(name = "Employee").Tuples
      retrieve into T (V.id as id, count(E.id where E.age > 40) as c)
      range of T2 is T
      retrieve T2.id where T2.c = max(T2.c))");
  // v02 has two employees over 40 (e03 age 61, e04 age 45).
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "v02");
}

// Query 6.13: versions within 2 hops of v01 with fewer than 4 employees.
TEST_F(VquelTest, Query613NeighborhoodTraversal) {
  auto r = RunOne(R"(
      range of V is Version(id = "v01")
      range of N is V.N(2)
      range of E is N.Relations(name = "Employee").Tuples
      retrieve N.id where count(E) < 4)");
  // Neighbors of v01 within 2 hops: v02 (4 employees), v03 (3).
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "v03");
}

// Query 6.14: versions whose delta from the previous version exceeds 0
// tuples (abs of count difference).
TEST_F(VquelTest, Query614DeltaFromParent) {
  auto r = RunOne(R"(
      range of V is Version
      range of P is V.P(1)
      retrieve unique V.id
      where abs(count(V.Relations.Tuples) - count(P.Relations.Tuples)) >= 1)");
  // v02 adds one tuple vs v01; v03 drops one vs v02.
  ASSERT_EQ(r.rows.size(), 2u);
}

// Query 6.15-style: the parent version where each v03 employee first
// appeared with the same payload is not needed — we check the ancestor walk.
TEST_F(VquelTest, AncestorWalkUnbounded) {
  auto r = RunOne(R"(
      range of V is Version(id = "v03")
      range of P is V.P()
      retrieve P.id sort by P.id)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "v01");
  EXPECT_EQ(r.rows[1][0].AsString(), "v02");
}

// Query 6.16: record-level provenance — parents of the modified e02.
TEST_F(VquelTest, Query616RecordProvenance) {
  auto r = RunOne(R"(
      range of E is Version(id = "v03").Relations(name = "Employee").Tuples
      range of P is E.parents
      retrieve E.id, P.id where E.employee_id = "e02")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

// Descendant traversal.
TEST_F(VquelTest, DescendantTraversal) {
  auto r = RunOne(R"(
      range of V is Version(id = "v01")
      range of D is V.D()
      retrieve D.id sort by D.id)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "v02");
}

// Upward reference Version(E).id.
TEST_F(VquelTest, UpwardReference) {
  auto r = RunOne(R"(
      range of E is Version(id = "v02").Relations(name = "Employee").Tuples
      retrieve E.employee_id, Version(E).id
      where E.employee_id = "e04")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "v02");
}

TEST_F(VquelTest, UniqueDeduplicates) {
  auto r = RunOne(R"(
      range of V is Version
      range of R is V.Relations
      retrieve unique R.name sort by R.name)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Department");
  EXPECT_EQ(r.rows[1][0].AsString(), "Employee");
}

TEST_F(VquelTest, ParseErrors) {
  EXPECT_FALSE(session_.Execute("range broken").ok());
  EXPECT_FALSE(session_.Execute("retrieve X.id").ok());  // unknown iterator
  EXPECT_FALSE(session_.Execute("range of V is Nope retrieve V.id").ok());
}

TEST_F(VquelTest, LexerBasics) {
  auto tokens = Tokenize("retrieve V.id where x >= 1.5 # comment");
  ASSERT_TRUE(tokens.ok());
  // retrieve V . id where x >= 1.5 END
  EXPECT_EQ(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[6].text, ">=");
  EXPECT_FALSE((*tokens)[7].is_integer);
}

TEST(VquelStoreTest, ChangedFlagDerivation) {
  VersionStore store = MakeStore();
  // v02: Employee changed (new tuple), Department unchanged.
  const auto& v2 = store.version(1);
  EXPECT_TRUE(v2.relations[0].changed);
  EXPECT_FALSE(v2.relations[1].changed);
}

TEST(VquelStoreTest, FindHelpers) {
  VersionStore store = MakeStore();
  EXPECT_EQ(store.FindVersion("v02"), 1);
  EXPECT_EQ(store.FindVersion("nope"), -1);
  ASSERT_NE(store.FindRecord(7), nullptr);
  EXPECT_EQ(store.FindRecord(7)->fields.at("last_name").AsString(),
            "Jones-Lee");
  EXPECT_EQ(store.FindRecord(999), nullptr);
}


// ---- CVD bridge (Part 1 <-> Part 2 integration) ----

TEST(CvdBridgeTest, VquelQueriesOverACvdHistory) {
  using orpheus::core::Cvd;
  using orpheus::minidb::Database;
  using orpheus::minidb::Schema;
  using orpheus::minidb::Table;
  using orpheus::minidb::ValueType;

  Table t("genes", Schema({{"gene", ValueType::kString},
                           {"expr", ValueType::kInt64}}));
  ASSERT_TRUE(t.InsertRow({Value("BRCA1"), Value(int64_t{10})}).ok());
  ASSERT_TRUE(t.InsertRow({Value("TP53"), Value(int64_t{20})}).ok());
  Cvd::Options opt;
  opt.primary_key = {"gene"};
  auto cvd = Cvd::Init("Genes", t, opt);
  ASSERT_TRUE(cvd.ok());
  Database staging;
  ASSERT_TRUE((*cvd)->Checkout({1}, "w", &staging).ok());
  Table* w = staging.GetTable("w");
  auto row = w->GetRow(1);
  row[2] = Value(int64_t{25});
  w->SetRow(1, row);
  ASSERT_TRUE((*cvd)->Commit("w", &staging, "bump TP53", "ana").ok());

  auto store = BuildVersionStore(**cvd);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->num_versions(), 2);

  Session session(&*store);
  // Which versions have TP53 expression above 22?
  auto r = session.Execute(R"(
      range of V is Version
      range of E is V.Relations(name = "Genes").Tuples
      retrieve V.id
      where count(E.gene where E.expr > 22) = 1)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->back().rows.size(), 1u);
  EXPECT_EQ(r->back().rows[0][0].AsString(), "v2");

  // Version metadata flows through (author, parents).
  auto meta = session.Execute(R"(
      range of V is Version(id = "v2")
      range of P is V.parents
      retrieve V.author.name, P.id)");
  ASSERT_TRUE(meta.ok());
  ASSERT_EQ(meta->back().rows.size(), 1u);
  EXPECT_EQ(meta->back().rows[0][0].AsString(), "ana");
  EXPECT_EQ(meta->back().rows[0][1].AsString(), "v1");
}

TEST(CvdBridgeTest, RecordIdentityIsPreserved) {
  using orpheus::core::Cvd;
  using orpheus::minidb::Schema;
  using orpheus::minidb::Table;
  using orpheus::minidb::ValueType;
  Table t("d", Schema({{"k", ValueType::kInt64}}));
  ASSERT_TRUE(t.InsertRow({Value(int64_t{1})}).ok());
  auto cvd = Cvd::Init("D", t, {});
  ASSERT_TRUE(cvd.ok());
  auto store = BuildVersionStore(**cvd, "Data");
  ASSERT_TRUE(store.ok());
  const auto& rel = store->version(0).relations[0];
  EXPECT_EQ(rel.name, "Data");
  auto rids = (*cvd)->VersionRecords(1);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rel.tuples[0].id, (*rids)[0]);
}

}  // namespace
}  // namespace orpheus::vquel

