#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "benchdata/generator.h"
#include "core/lyresplit.h"
#include "core/partitioning.h"

namespace orpheus::core {
namespace {

// Version graph from the generated benchmark dataset.
VersionGraph GraphOf(const benchdata::VersionedDataset& ds) {
  VersionGraph g;
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<int64_t> weights;
    for (int p : spec.parents) weights.push_back(ds.CommonRecords(p, v));
    g.AddVersion(spec.parents, weights,
                 static_cast<int64_t>(spec.records.size()));
  }
  return g;
}

RecordSetView ViewOf(const benchdata::VersionedDataset& ds) {
  RecordSetView view;
  view.num_versions = ds.num_versions();
  view.records_of = [&ds](int v) -> const std::vector<RecordId>& {
    return ds.version(v).records;
  };
  return view;
}

// The Figure 5.4 example tree (δ = 0.5): 7 versions.
// v1(30 recs) -> v2(12), v3(10); v2 -> v4(6), v5(8); v3 -> v6(8), v7(7)
// weights: (1,2)=10, (1,3)=8, (2,4)=6, (2,5)=6, (3,6)=8, (3,7)=7.
VersionGraph Fig54Graph() {
  VersionGraph g;
  g.AddVersion({}, {}, 30);
  g.AddVersion({0}, {10}, 12);
  g.AddVersion({0}, {8}, 10);
  g.AddVersion({1}, {6}, 6);
  g.AddVersion({1}, {6}, 8);
  g.AddVersion({2}, {8}, 8);
  g.AddVersion({2}, {7}, 7);
  return g;
}

TEST(PartitioningTest, ExtremePartitionings) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 60, 6, 30));
  auto view = ViewOf(ds);
  // Single partition: storage = |R|, the union of all versions' records
  // (Observation 5.2). Note ds.num_distinct_records() over-counts rids that
  // were created and deleted within a single commit.
  std::unordered_set<RecordId> all;
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& rs = ds.version(v).records;
    all.insert(rs.begin(), rs.end());
  }
  auto single = ComputeExactCosts(
      view, Partitioning::SinglePartition(ds.num_versions()));
  EXPECT_EQ(single.storage, all.size());
  EXPECT_DOUBLE_EQ(single.checkout_avg, static_cast<double>(single.storage));
  // One partition per version: checkout = |E|/|V| (Observation 5.1).
  auto split =
      ComputeExactCosts(view, Partitioning::OnePerVersion(ds.num_versions()));
  EXPECT_EQ(split.storage, ds.num_bipartite_edges());
  EXPECT_DOUBLE_EQ(split.checkout_avg,
                   static_cast<double>(ds.num_bipartite_edges()) /
                       ds.num_versions());
}

TEST(PartitioningTest, TreeEstimateMatchesExactOnTree) {
  // For a tree workload (SCI), the no-cross-version-diff estimate is exact.
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 80, 8, 25));
  VersionGraph g = GraphOf(ds);
  auto tree = g.ToTree();
  auto view = ViewOf(ds);
  LyreSplitResult r = LyreSplitWithDelta(g, 0.3);
  auto est = ComputeTreeEstimatedCosts(g, tree, r.partitioning);
  auto exact = ComputeExactCosts(view, r.partitioning);
  EXPECT_EQ(est.storage, exact.storage);
  EXPECT_DOUBLE_EQ(est.checkout_avg, exact.checkout_avg);
}

TEST(LyreSplitTest, PartitionsAreConnectedTreeComponents) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 100, 10, 20));
  VersionGraph g = GraphOf(ds);
  LyreSplitResult r = LyreSplitWithDelta(g, 0.4);
  auto tree = g.ToTree();
  // Every version is assigned; component roots are where the parent lies in
  // another partition.
  for (int v = 0; v < g.num_versions(); ++v) {
    EXPECT_GE(r.partitioning.partition_of[v], 0);
    EXPECT_LT(r.partitioning.partition_of[v], r.partitioning.num_partitions);
  }
  // Each partition's members must form one connected subtree: count roots.
  std::vector<int> roots(r.partitioning.num_partitions, 0);
  for (int v = 0; v < g.num_versions(); ++v) {
    int part = r.partitioning.partition_of[v];
    if (tree[v] < 0 || r.partitioning.partition_of[tree[v]] != part) {
      ++roots[part];
    }
  }
  for (int part = 0; part < r.partitioning.num_partitions; ++part) {
    EXPECT_EQ(roots[part], 1) << "partition " << part << " disconnected";
  }
}

TEST(LyreSplitTest, TheoremGuarantees) {
  // Theorem 5.2: C_avg <= (1/δ) |E|/|V| and S <= (1+δ)^ℓ (|R|+|R̂|).
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto ds = benchdata::VersionedDataset::Generate(
        benchdata::SciConfig("S", 120, 12, 20, seed));
    VersionGraph g = GraphOf(ds);
    for (double delta : {0.2, 0.5, 0.8}) {
      LyreSplitResult r = LyreSplitWithDelta(g, delta);
      auto view = ViewOf(ds);
      auto costs = ComputeExactCosts(view, r.partitioning);
      double bound_c = (1.0 / delta) *
                       static_cast<double>(g.TotalBipartiteEdges()) /
                       g.num_versions();
      EXPECT_LE(costs.checkout_avg, bound_c + 1e-6)
          << "delta=" << delta << " seed=" << seed;
      double bound_s = std::pow(1.0 + delta, r.recursion_levels) *
                       static_cast<double>(ds.num_distinct_records());
      EXPECT_LE(static_cast<double>(costs.storage), bound_s + 1e-6);
    }
  }
}

TEST(LyreSplitTest, MonotoneInDelta) {
  // Larger δ => more partitions, more storage, lower checkout cost
  // (superset property of Sec. 5.2).
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 150, 15, 20));
  VersionGraph g = GraphOf(ds);
  LyreSplitResult small = LyreSplitWithDelta(g, 0.1);
  LyreSplitResult big = LyreSplitWithDelta(g, 0.9);
  EXPECT_LE(small.partitioning.num_partitions,
            big.partitioning.num_partitions);
  EXPECT_LE(small.estimated.storage, big.estimated.storage);
  EXPECT_GE(small.estimated.checkout_avg, big.estimated.checkout_avg);
}

TEST(LyreSplitTest, BudgetSearchRespectsGamma) {
  for (bool curated : {false, true}) {
    auto ds = benchdata::VersionedDataset::Generate(
        curated ? benchdata::CurConfig("C", 80, 8, 25)
                : benchdata::SciConfig("S", 80, 8, 25));
    VersionGraph g = GraphOf(ds);
    uint64_t gamma = 2 * static_cast<uint64_t>(ds.num_distinct_records());
    LyreSplitResult r = LyreSplitForBudget(g, gamma);
    EXPECT_LE(r.estimated.storage, gamma);
    EXPECT_GT(r.search_iterations, 0);
    // Partitioning must beat the single-partition checkout cost.
    auto single = ComputeTreeEstimatedCosts(
        g, g.ToTree(), Partitioning::SinglePartition(g.num_versions()));
    EXPECT_LT(r.estimated.checkout_avg, single.checkout_avg);
  }
}

TEST(LyreSplitTest, Fig54SplitsIntoMultipleParts) {
  VersionGraph g = Fig54Graph();
  LyreSplitResult r = LyreSplitWithDelta(g, 0.5);
  // The example terminates with three partitions at δ = 0.5 (Fig. 5.4c).
  EXPECT_EQ(r.partitioning.num_partitions, 3);
}

TEST(LyreSplitTest, SingleVersionGraph) {
  VersionGraph g;
  g.AddVersion({}, {}, 10);
  LyreSplitResult r = LyreSplitWithDelta(g, 0.5);
  EXPECT_EQ(r.partitioning.num_partitions, 1);
  EXPECT_EQ(r.estimated.storage, 10u);
}

TEST(LyreSplitTest, DagInputUsesTreeReduction) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::CurConfig("C", 100, 10, 20));
  VersionGraph g = GraphOf(ds);
  ASSERT_TRUE(g.IsDag());
  LyreSplitResult r = LyreSplitWithDelta(g, 0.5);
  EXPECT_GT(r.partitioning.num_partitions, 1);
  auto view = ViewOf(ds);
  auto exact = ComputeExactCosts(view, r.partitioning);
  // Post-processing (real record sets) only improves on the estimate
  // because R̂ duplicates collapse (Sec. 5.3.1).
  EXPECT_LE(exact.storage, r.estimated.storage);
}

TEST(LyreSplitTest, WeightedFavorsHotVersions) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 60, 6, 25));
  VersionGraph g = GraphOf(ds);
  std::vector<int64_t> freq(g.num_versions(), 1);
  // Recent versions checked out 20x more often.
  for (int v = g.num_versions() - 10; v < g.num_versions(); ++v) {
    freq[v] = 20;
  }
  LyreSplitResult weighted = LyreSplitWeighted(g, freq, 0.5);
  LyreSplitResult plain = LyreSplitWithDelta(g, 0.5);
  auto view = ViewOf(ds);
  auto wcost = PerVersionCheckoutCost(view, weighted.partitioning);
  auto pcost = PerVersionCheckoutCost(view, plain.partitioning);
  auto weighted_avg = [&freq](const std::vector<uint64_t>& c) {
    double num = 0;
    double den = 0;
    for (size_t i = 0; i < c.size(); ++i) {
      num += static_cast<double>(freq[i]) * static_cast<double>(c[i]);
      den += static_cast<double>(freq[i]);
    }
    return num / den;
  };
  // The weighted variant should not be worse on the weighted objective.
  EXPECT_LE(weighted_avg(wcost), weighted_avg(pcost) * 1.25);
}

TEST(LyreSplitTest, SchemaAwareVariantRuns) {
  VersionGraph g = Fig54Graph();
  std::vector<int> attrs(g.num_versions(), 5);
  std::vector<int> common(g.num_versions(), 4);
  LyreSplitResult r = LyreSplitSchemaAware(g, attrs, common, 5, 0.5);
  EXPECT_GE(r.partitioning.num_partitions, 1);
  for (int part : r.partitioning.partition_of) EXPECT_GE(part, 0);
}

}  // namespace
}  // namespace orpheus::core
