// Cross-cutting property tests: invariants that must hold for every random
// input, swept with parameterized gtest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "benchdata/generator.h"
#include "common/random.h"
#include "core/lyresplit.h"
#include "deltastore/algorithms.h"
#include "deltastore/repository.h"
#include "minidb/join.h"

namespace orpheus {
namespace {

// ---------------------------------------------------------------------------
// All three join strategies are interchangeable: same matches on random
// tables regardless of clustering.
// ---------------------------------------------------------------------------

struct JoinCase {
  uint64_t seed;
  bool clustered;
};

class JoinAgreementTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinAgreementTest, AllStrategiesReturnTheSameRows) {
  const JoinCase& param = GetParam();
  Xorshift rng(param.seed);
  minidb::Table t("t", minidb::Schema({{"rid", minidb::ValueType::kInt64},
                                       {"a", minidb::ValueType::kInt64}}));
  std::set<int64_t> rids;
  while (rids.size() < 500) {
    rids.insert(static_cast<int64_t>(rng.Uniform(5000)));
  }
  for (int64_t rid : rids) {
    t.AppendIntRowUnchecked({rid, static_cast<int64_t>(rng.Uniform(100))});
  }
  if (!param.clustered) t.SortByIntColumn(1);
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());

  std::vector<int64_t> rlist;
  for (int i = 0; i < 200; ++i) {
    rlist.push_back(static_cast<int64_t>(rng.Uniform(5000)));
  }
  std::sort(rlist.begin(), rlist.end());
  rlist.erase(std::unique(rlist.begin(), rlist.end()), rlist.end());

  auto collect = [&t, &rlist, &param](minidb::JoinAlgorithm algo) {
    auto rows = minidb::JoinRids(t, 0, rlist, algo, param.clustered);
    std::vector<int64_t> out;
    for (uint32_t r : rows) out.push_back(t.column(0).GetInt(r));
    std::sort(out.begin(), out.end());
    return out;
  };
  auto hash = collect(minidb::JoinAlgorithm::kHashJoin);
  auto merge = collect(minidb::JoinAlgorithm::kMergeJoin);
  auto inl = collect(minidb::JoinAlgorithm::kIndexNestedLoop);
  EXPECT_EQ(hash, merge);
  EXPECT_EQ(hash, inl);
  // Sanity: the matches are exactly rlist ∩ rids.
  for (int64_t v : hash) {
    EXPECT_TRUE(std::binary_search(rlist.begin(), rlist.end(), v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinAgreementTest,
    ::testing::Values(JoinCase{1, true}, JoinCase{1, false}, JoinCase{2, true},
                      JoinCase{2, false}, JoinCase{3, true},
                      JoinCase{3, false}),
    [](const auto& info) {
      return "Seed" + std::to_string(info.param.seed) +
             (info.param.clustered ? "Rid" : "Pk");
    });

// ---------------------------------------------------------------------------
// Chapter 7 heuristics: monotonicity in their budgets on random
// repositories.
// ---------------------------------------------------------------------------

class DeltastoreMonotonicityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  deltastore::StorageGraph MakeGraph() {
    deltastore::FileRepository::Config cfg;
    cfg.num_versions = 40;
    cfg.seed = GetParam();
    auto repo = deltastore::FileRepository::Generate(cfg);
    return repo.BuildStorageGraph(false, deltastore::PhiModel::kProportional,
                                  2, GetParam());
  }
};

TEST_P(DeltastoreMonotonicityTest, LmgSumRecreationFallsAsBudgetGrows) {
  auto g = MakeGraph();
  auto mst = EvaluateSolution(g, deltastore::MinimumStorageArborescence(g));
  ASSERT_TRUE(mst.ok());
  double prev = std::numeric_limits<double>::infinity();
  for (double beta_factor : {1.2, 1.5, 2.0, 3.0, 5.0}) {
    auto sol = deltastore::LmgWithStorageBudget(
        g, beta_factor * mst->total_storage);
    auto costs = EvaluateSolution(g, sol);
    ASSERT_TRUE(costs.ok());
    EXPECT_LE(costs->total_storage,
              beta_factor * mst->total_storage + 1e-6);
    EXPECT_LE(costs->sum_recreation, prev + 1e-6);
    prev = costs->sum_recreation;
  }
}

TEST_P(DeltastoreMonotonicityTest, MpObeysThetaAcrossSweep) {
  auto g = MakeGraph();
  auto spt = EvaluateSolution(g, deltastore::ShortestPathTree(g));
  ASSERT_TRUE(spt.ok());
  for (double theta_factor : {1.1, 1.5, 2.0, 4.0}) {
    double theta = theta_factor * spt->max_recreation;
    auto sol = deltastore::MpWithRecreationThreshold(g, theta);
    auto costs = EvaluateSolution(g, sol);
    ASSERT_TRUE(costs.ok());
    EXPECT_LE(costs->max_recreation, theta + 1e-6);
  }
}

TEST_P(DeltastoreMonotonicityTest, SptIsRecreationLowerBound) {
  auto g = MakeGraph();
  auto spt = EvaluateSolution(g, deltastore::ShortestPathTree(g));
  auto mst = EvaluateSolution(g, deltastore::MinimumStorageArborescence(g));
  ASSERT_TRUE(spt.ok());
  ASSERT_TRUE(mst.ok());
  // SPT minimizes every R_i simultaneously; MST minimizes storage.
  for (int v = 0; v < g.num_versions(); ++v) {
    EXPECT_LE(spt->recreation[v], mst->recreation[v] + 1e-6);
  }
  EXPECT_LE(mst->total_storage, spt->total_storage + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltastoreMonotonicityTest,
                         ::testing::Values(101u, 202u, 303u));

// ---------------------------------------------------------------------------
// LyreSplit budget sweep: feasibility and monotone checkout improvement on
// random workloads.
// ---------------------------------------------------------------------------

class LyreSplitSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LyreSplitSweepTest, BudgetSweepIsFeasibleAndMonotone) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 150, 15, 20, GetParam()));
  core::VersionGraph g;
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<int64_t> w;
    for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
    g.AddVersion(spec.parents, w,
                 static_cast<int64_t>(spec.records.size()));
  }
  double prev_checkout = std::numeric_limits<double>::infinity();
  for (double factor : {1.2, 1.5, 2.0, 3.0}) {
    uint64_t gamma = static_cast<uint64_t>(
        factor * static_cast<double>(ds.num_distinct_records()));
    auto r = core::LyreSplitForBudget(g, gamma);
    EXPECT_LE(r.estimated.storage, gamma);
    // More budget can only help (best feasible kept by the search).
    EXPECT_LE(r.estimated.checkout_avg, prev_checkout * 1.0001);
    prev_checkout = r.estimated.checkout_avg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LyreSplitSweepTest,
                         ::testing::Values(7u, 8u, 9u));

// ---------------------------------------------------------------------------
// Benchmark generator invariants.
// ---------------------------------------------------------------------------

class GeneratorInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorInvariantTest, CommitTouchesAtMostIRecords) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("S", 60, 6, 25, GetParam()));
  const int64_t kI = 25;
  for (int v = 1; v < ds.num_versions(); ++v) {
    for (int p : ds.version(v).parents) {
      int64_t common = ds.CommonRecords(p, v);
      int64_t child = static_cast<int64_t>(ds.version(v).records.size());
      int64_t parent = static_cast<int64_t>(ds.version(p).records.size());
      // Records added or removed vs the parent are bounded by I ops.
      EXPECT_LE(child - common, kI);
      EXPECT_LE(parent - common, kI);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariantTest,
                         ::testing::Values(41u, 42u, 43u));

}  // namespace
}  // namespace orpheus
