// Differential tests for the compressed version-membership index: every
// versioning operation must produce identical results with ORPHEUS_RIDSET
// off (plain i64 rlist/vlist vectors, the legacy representation) and on
// (compressed RidSet cells probed in place). The gate changes the physical
// representation and the checkout kernel — never the answer or the bytes
// that reach disk.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchdata/generator.h"
#include "common/ridset.h"
#include "common/thread_pool.h"
#include "common/validation.h"
#include "core/data_models.h"
#include "core/lyresplit.h"
#include "core/partition_store.h"
#include "storage/format.h"

namespace orpheus::core {
namespace {

// The delta backend only takes the compressed chain path above a membership
// crossover; the test datasets sit below it, so lower the threshold to zero
// (must land before the first checkout caches the parsed value).
const bool kForceDeltaRidSetPath = [] {
  ::setenv("ORPHEUS_RIDSET_DELTA_MIN", "0", /*overwrite=*/1);
  return true;
}();

/// Restores the previous gate state on scope exit so one failing test
/// cannot leak a disabled gate into the rest of the suite.
struct GateGuard {
  bool saved = RidSetEnabled();
  ~GateGuard() { SetRidSetEnabled(saved); }
};

struct Fixture {
  benchdata::VersionedDataset ds;
  DatasetAccessor accessor;
  VersionGraph graph;

  explicit Fixture(int versions = 40, int ops = 15)
      : ds(benchdata::VersionedDataset::Generate(
            benchdata::SciConfig("S", versions, 5, ops))) {
    accessor.num_versions = ds.num_versions();
    accessor.num_attributes = ds.num_attributes();
    accessor.records_of = [this](int v) -> const std::vector<RecordId>& {
      return ds.version(v).records;
    };
    accessor.payload_of = [this](RecordId rid, std::vector<int64_t>* out) {
      *out = ds.RecordPayload(rid);
    };
    for (int v = 0; v < ds.num_versions(); ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      graph.AddVersion(spec.parents, w,
                       static_cast<int64_t>(spec.records.size()));
    }
  }
};

std::vector<int64_t> Flatten(const minidb::Table& t) {
  std::vector<int64_t> out;
  out.reserve(t.num_rows() * t.num_columns());
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      out.push_back(t.column(static_cast<int>(c)).GetInt(r));
    }
  }
  return out;
}

minidb::Row PayloadRow(const benchdata::VersionedDataset& ds, RecordId rid) {
  minidb::Row row;
  for (int64_t v : ds.RecordPayload(rid)) row.emplace_back(v);
  return row;
}

std::unique_ptr<DataModelBackend> BuildBackend(
    DataModelType type, const benchdata::VersionedDataset& ds) {
  std::vector<minidb::ColumnDef> cols;
  for (int a = 0; a < ds.num_attributes(); ++a) {
    cols.push_back({"a" + std::to_string(a), minidb::ValueType::kInt64});
  }
  auto backend =
      DataModelBackend::Create(type, minidb::Schema(std::move(cols)));
  std::vector<char> seen(ds.num_distinct_records(), 0);
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<NewRecord> fresh;
    for (RecordId rid : spec.records) {
      if (!seen[rid]) {
        seen[rid] = 1;
        fresh.push_back({rid, PayloadRow(ds, rid)});
      }
    }
    Status s = backend->AddVersion(v, spec.records, fresh, spec.parents);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return backend;
}

const DataModelType kAllModels[] = {
    DataModelType::kATablePerVersion, DataModelType::kCombinedTable,
    DataModelType::kSplitByVlist, DataModelType::kSplitByRlist,
    DataModelType::kDeltaBased,
};

TEST(RidSetDifferential, BackendCheckoutIdenticalOffVsOn) {
  GateGuard guard;
  Fixture f;
  for (DataModelType model : kAllModels) {
    SetRidSetEnabled(false);
    auto off = BuildBackend(model, f.ds);
    SetRidSetEnabled(true);
    auto on = BuildBackend(model, f.ds);
    for (int v : {0, 7, f.ds.num_versions() / 2, f.ds.num_versions() - 1}) {
      auto t_off = off->Checkout(v, "off");
      auto t_on = on->Checkout(v, "on");
      ASSERT_TRUE(t_off.ok()) << t_off.status().ToString();
      ASSERT_TRUE(t_on.ok()) << t_on.status().ToString();
      EXPECT_EQ(Flatten(*t_off), Flatten(*t_on))
          << DataModelTypeName(model) << " v" << v;
    }
    // VersionRecords (the commit/diff membership source) must agree too.
    for (int v = 0; v < f.ds.num_versions(); ++v) {
      auto r_off = off->VersionRecords(v);
      auto r_on = on->VersionRecords(v);
      ASSERT_TRUE(r_off.ok() && r_on.ok());
      EXPECT_EQ(r_off.ValueOrDie(), r_on.ValueOrDie())
          << DataModelTypeName(model) << " v" << v;
    }
  }
}

TEST(RidSetDifferential, PartitionedStoreCheckoutIdenticalOffVsOn) {
  GateGuard guard;
  Fixture f;
  Partitioning plan =
      LyreSplitForBudget(
          f.graph, 2 * static_cast<uint64_t>(f.ds.num_distinct_records()))
          .partitioning;

  SetRidSetEnabled(false);
  PartitionedStore store_off = PartitionedStore::Build(f.accessor, plan);
  SetRidSetEnabled(true);
  PartitionedStore store_on = PartitionedStore::Build(f.accessor, plan);

  for (int v = 0; v < f.ds.num_versions(); ++v) {
    auto t_off = store_off.Checkout(v);
    auto t_on = store_on.Checkout(v);
    ASSERT_TRUE(t_off.ok()) << t_off.status().ToString();
    ASSERT_TRUE(t_on.ok()) << t_on.status().ToString();
    EXPECT_EQ(Flatten(*t_off), Flatten(*t_on)) << "v" << v;
  }
  // The compressed rlists must cost no more than the plain vectors.
  EXPECT_LE(store_on.VersioningBytes(), store_off.VersioningBytes());
}

TEST(RidSetDifferential, CheckoutDeterministicAcrossPoolDegrees) {
  GateGuard guard;
  SetRidSetEnabled(true);
  Fixture f;
  Partitioning plan =
      LyreSplitForBudget(
          f.graph, 2 * static_cast<uint64_t>(f.ds.num_distinct_records()))
          .partitioning;
  PartitionedStore store = PartitionedStore::Build(f.accessor, plan);
  for (int v : {0, 11, f.ds.num_versions() - 1}) {
    ThreadPool::Global().SetDegree(1);
    auto serial = store.Checkout(v);
    ThreadPool::Global().SetDegree(8);
    auto fanned = store.Checkout(v);
    ThreadPool::Global().SetDegree(1);
    ASSERT_TRUE(serial.ok() && fanned.ok());
    EXPECT_EQ(Flatten(*serial), Flatten(*fanned)) << "v" << v;
  }
}

TEST(RidSetDifferential, EncodedValueBytesIndependentOfGate) {
  GateGuard guard;
  // A versioning cell holding the same rid list, stored compressed (gate
  // on) and plain (gate off), must serialize to identical bytes: snapshots
  // and WAL records cannot depend on the in-memory representation.
  std::vector<int64_t> rids;
  for (int i = 0; i < 10000; ++i) rids.push_back(i * 3 + 100);

  minidb::Value plain(rids);
  auto set = RidSet::TryFromVector(rids);
  ASSERT_NE(set, nullptr);
  minidb::Value compressed(set);

  storage::Encoder enc_plain;
  storage::EncodeValue(plain, &enc_plain);
  storage::Encoder enc_set;
  storage::EncodeValue(compressed, &enc_set);
  EXPECT_EQ(enc_plain.data(), enc_set.data());

  // Decode under both gate settings: same logical value either way.
  for (bool on : {false, true}) {
    SetRidSetEnabled(on);
    storage::Decoder dec(enc_plain.data());
    auto back = storage::DecodeValue(&dec);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.ValueOrDie().AsIntArray(), rids) << "gate=" << on;
    EXPECT_TRUE(dec.AtEnd());
  }

  // Short or unsorted lists take the raw encoding and roundtrip too.
  for (const std::vector<int64_t>& raw :
       {std::vector<int64_t>{5, 3, 9}, std::vector<int64_t>{1, 2, 3}}) {
    storage::Encoder enc;
    storage::EncodeValue(minidb::Value(raw), &enc);
    storage::Decoder dec(enc.data());
    auto back = storage::DecodeValue(&dec);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.ValueOrDie().AsIntArray(), raw);
  }
}

TEST(RidSetDifferential, EncodedRidListRoundTrip) {
  for (const std::vector<int64_t>& rids :
       {std::vector<int64_t>{}, std::vector<int64_t>{1, 2, 3},
        std::vector<int64_t>{9, 1, 4},  // unsorted stays raw
        [] {
          std::vector<int64_t> v;
          for (int i = 0; i < 5000; ++i) v.push_back(i * i);
          return v;
        }()}) {
    storage::Encoder enc;
    storage::EncodeRidList(rids, &enc);
    storage::Decoder dec(enc.data());
    auto back = storage::DecodeRidList(&dec);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.ValueOrDie(), rids);
    EXPECT_TRUE(dec.AtEnd());
  }
}

// Regression: rlist sortedness is established once when versions are
// inserted (or migrated), not re-derived per checkout — an unsorted rlist
// reaching AppendVersionRecords must still check out correctly via the
// hash-join fallback instead of tripping the merge join.
TEST(RidSetDifferential, UnsortedPlainRlistStillCheckoutCorrect) {
  // Unsorted rlists violate the store's documented invariant, and
  // ORPHEUS_VALIDATE=1 builds reject such a store at Build() time (which is
  // also correct behavior). This test covers the other half of the defense:
  // without the validator, the cached rlists_sorted=false must route
  // checkout to the hash join so the answer stays right.
  if (orpheus::ValidationEnabled()) {
    GTEST_SKIP() << "validate mode rejects unsorted rlists at build time";
  }
  GateGuard guard;
  // With the gate off, AddVersion keeps whatever order the accessor hands
  // out; the store must remember that sortedness was broken.
  SetRidSetEnabled(false);
  Fixture f;
  // Accessor that reverses every rlist (sorted ascending -> descending).
  std::vector<std::vector<RecordId>> reversed(f.ds.num_versions());
  for (int v = 0; v < f.ds.num_versions(); ++v) {
    reversed[v] = f.ds.version(v).records;
    std::reverse(reversed[v].begin(), reversed[v].end());
  }
  DatasetAccessor rev = f.accessor;
  rev.records_of = [&reversed](int v) -> const std::vector<RecordId>& {
    return reversed[v];
  };

  Partitioning plan = Partitioning::SinglePartition(f.ds.num_versions());
  PartitionedStore store = PartitionedStore::Build(rev, plan);
  for (int v : {0, f.ds.num_versions() - 1}) {
    auto t = store.Checkout(v);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    std::vector<RecordId> rids(t->column(0).int_data().begin(),
                               t->column(0).int_data().end());
    std::sort(rids.begin(), rids.end());
    EXPECT_EQ(rids, f.ds.version(v).records) << "v" << v;
  }
}

}  // namespace
}  // namespace orpheus::core
