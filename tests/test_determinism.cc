// Determinism across pool degrees: every parallel construct in the engine
// must produce byte-identical results whether it runs serially (degree 1,
// the reference semantics) or fanned out (degree 8 on however many cores
// the machine has). These tests re-run whole engine operations at both
// degrees and compare exact outputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "benchdata/generator.h"
#include "common/thread_pool.h"
#include "core/baselines.h"
#include "core/lyresplit.h"
#include "core/partition_store.h"
#include "deltastore/algorithms.h"
#include "deltastore/delta.h"
#include "deltastore/repository.h"
#include "deltastore/storage_graph.h"
#include "minidb/join.h"

namespace orpheus::core {
namespace {

struct Fixture {
  benchdata::VersionedDataset ds;
  DatasetAccessor accessor;
  RecordSetView view;
  VersionGraph graph;

  explicit Fixture(int versions = 40, int ops = 15)
      : ds(benchdata::VersionedDataset::Generate(
            benchdata::SciConfig("S", versions, 5, ops))) {
    accessor.num_versions = ds.num_versions();
    accessor.num_attributes = ds.num_attributes();
    accessor.records_of = [this](int v) -> const std::vector<RecordId>& {
      return ds.version(v).records;
    };
    accessor.payload_of = [this](RecordId rid, std::vector<int64_t>* out) {
      *out = ds.RecordPayload(rid);
    };
    view.num_versions = ds.num_versions();
    view.records_of = accessor.records_of;
    for (int v = 0; v < ds.num_versions(); ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      graph.AddVersion(spec.parents, w,
                       static_cast<int64_t>(spec.records.size()));
    }
  }
};

// Every cell of an all-int64 table, row-major: equal vectors <=> identical
// physical layout.
std::vector<int64_t> Flatten(const minidb::Table& t) {
  std::vector<int64_t> out;
  out.reserve(t.num_rows() * t.num_columns());
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      out.push_back(t.column(c).GetInt(r));
    }
  }
  return out;
}

// Run `fn` once at degree 1 and once at degree 8; returns the two results.
template <typename Fn>
auto AtBothDegrees(Fn fn) {
  ThreadPool::Global().SetDegree(1);
  auto serial = fn();
  ThreadPool::Global().SetDegree(8);
  auto parallel = fn();
  ThreadPool::Global().SetDegree(1);
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(DeterminismTest, BuildAndCheckoutIdenticalAcrossDegrees) {
  Fixture f;
  Partitioning plan = LyreSplitWithDelta(f.graph, 0.3).partitioning;
  auto run = [&f, &plan] {
    PartitionedStore store = PartitionedStore::Build(f.accessor, plan);
    std::vector<std::vector<int64_t>> checkouts;
    for (int v = 0; v < f.ds.num_versions(); ++v) {
      auto t = store.Checkout(v);
      EXPECT_TRUE(t.ok()) << t.status().ToString();
      checkouts.push_back(Flatten(*t));
    }
    checkouts.push_back({static_cast<int64_t>(store.TotalDataRecords()),
                         static_cast<int64_t>(store.StorageBytes())});
    return checkouts;
  };
  auto [serial, parallel] = AtBothDegrees(run);
  EXPECT_EQ(serial, parallel);
}

TEST(DeterminismTest, MigrationIdenticalAcrossDegrees) {
  Fixture f;
  Partitioning coarse = LyreSplitWithDelta(f.graph, 0.15).partitioning;
  Partitioning fine = LyreSplitWithDelta(f.graph, 0.35).partitioning;
  for (bool intelligent : {false, true}) {
    auto run = [&f, &coarse, &fine, intelligent] {
      PartitionedStore store = PartitionedStore::Build(f.accessor, coarse);
      uint64_t work = store.MigrateTo(f.accessor, fine, intelligent);
      std::vector<std::vector<int64_t>> state;
      state.push_back({static_cast<int64_t>(work),
                       static_cast<int64_t>(store.TotalDataRecords())});
      for (int v = 0; v < f.ds.num_versions(); ++v) {
        auto t = store.Checkout(v);
        EXPECT_TRUE(t.ok());
        state.push_back(Flatten(*t));
      }
      return state;
    };
    auto [serial, parallel] = AtBothDegrees(run);
    EXPECT_EQ(serial, parallel) << "intelligent=" << intelligent;
  }
}

TEST(DeterminismTest, JoinsIdenticalAcrossDegrees) {
  // A table whose rid column is deliberately unordered, probed with both
  // sorted and unsorted rlists under each algorithm.
  minidb::Table t("t", minidb::Schema({{"_rid", minidb::ValueType::kInt64},
                                       {"a", minidb::ValueType::kInt64}}));
  for (int64_t i = 0; i < 20000; ++i) {
    t.AppendIntRowUnchecked({(i * 7919) % 20011, i});
  }
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  std::vector<int64_t> sorted_rlist;
  for (int64_t r = 0; r < 20011; r += 3) sorted_rlist.push_back(r);
  std::vector<int64_t> unsorted_rlist(sorted_rlist.rbegin(),
                                      sorted_rlist.rend());
  for (auto algo : {minidb::JoinAlgorithm::kHashJoin,
                    minidb::JoinAlgorithm::kMergeJoin,
                    minidb::JoinAlgorithm::kIndexNestedLoop}) {
    for (const auto* rlist : {&sorted_rlist, &unsorted_rlist}) {
      auto run = [&t, rlist, algo] {
        return minidb::JoinRids(t, 0, *rlist, algo,
                                /*clustered_on_rid=*/false);
      };
      auto [serial, parallel] = AtBothDegrees(run);
      EXPECT_EQ(serial, parallel)
          << minidb::JoinAlgorithmName(algo) << " sorted="
          << (rlist == &sorted_rlist);
    }
  }
}

TEST(DeterminismTest, PartitionersIdenticalAcrossDegrees) {
  Fixture f;
  {
    auto run = [&f] {
      return LyreSplitForBudget(f.graph, 2 * f.ds.num_distinct_records())
          .partitioning.partition_of;
    };
    auto [serial, parallel] = AtBothDegrees(run);
    EXPECT_EQ(serial, parallel) << "lyresplit";
  }
  {
    auto run = [&f] {
      return KmeansPartition(f.view, KmeansOptions{}).partition_of;
    };
    auto [serial, parallel] = AtBothDegrees(run);
    EXPECT_EQ(serial, parallel) << "kmeans";
  }
  {
    auto run = [&f] {
      return AggloPartition(f.view, AggloOptions{}).partition_of;
    };
    auto [serial, parallel] = AtBothDegrees(run);
    EXPECT_EQ(serial, parallel) << "agglo";
  }
}

TEST(DeterminismTest, DeltaMaterializationIdenticalAcrossDegrees) {
  using deltastore::FileRepository;
  FileRepository::Config config;
  config.num_versions = 30;
  FileRepository repo = FileRepository::Generate(config);
  deltastore::StorageGraph graph =
      repo.BuildStorageGraph(/*undirected=*/false,
                             deltastore::PhiModel::kProportional);
  deltastore::StorageSolution solution =
      deltastore::MinimumStorageArborescence(graph);
  std::vector<int> versions(repo.num_versions());
  for (int v = 0; v < repo.num_versions(); ++v) versions[v] = v;
  auto run = [&repo, &solution, &versions] {
    auto many = repo.MaterializeMany(solution, versions);
    EXPECT_TRUE(many.ok());
    std::vector<std::vector<std::string>> lines;
    for (const auto& f : *many) lines.push_back(f.lines);
    return lines;
  };
  auto [serial, parallel] = AtBothDegrees(run);
  EXPECT_EQ(serial, parallel);
  // And the batch path agrees with the one-at-a-time path.
  for (int v : versions) {
    auto one = repo.Materialize(solution, v);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->lines, serial[v]);
  }
}

}  // namespace
}  // namespace orpheus::core
