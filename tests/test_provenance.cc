#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/random.h"
#include "provenance/explanation.h"
#include "provenance/inference.h"

namespace orpheus::provenance {
namespace {

using minidb::ColumnDef;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

Schema BaseSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"city", ValueType::kString},
                 {"score", ValueType::kInt64}});
}

Table MakeBase(int rows, uint64_t seed = 3) {
  Table t("base", BaseSchema());
  Xorshift rng(seed);
  for (int i = 0; i < rows; ++i) {
    t.AppendRowUnchecked({Value(static_cast<int64_t>(i)),
                          Value("city" + std::to_string(rng.Uniform(20))),
                          Value(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  return t;
}

// ---- Structural explanation ----

TEST(ExplanationTest, Identity) {
  Table a = MakeBase(50);
  Table b = a.Clone("b");
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kIdentity);
  EXPECT_EQ(ex.rows_added, 0);
  EXPECT_EQ(ex.rows_removed, 0);
}

TEST(ExplanationTest, Projection) {
  Table a = MakeBase(50);
  std::vector<uint32_t> all(a.num_rows());
  for (uint32_t r = 0; r < a.num_rows(); ++r) all[r] = r;
  Table b = a.ProjectRows(all, {0, 1}, "b");  // drop score
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kProjection);
  ASSERT_EQ(ex.columns_removed.size(), 1u);
  EXPECT_EQ(ex.columns_removed[0], "score");
}

TEST(ExplanationTest, ColumnAddition) {
  Table a = MakeBase(50);
  Table b = a.Clone("b");
  ASSERT_TRUE(b.AddColumn({"derived", ValueType::kDouble}).ok());
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kColumnAddition);
  ASSERT_EQ(ex.columns_added.size(), 1u);
  EXPECT_EQ(ex.columns_added[0], "derived");
}

TEST(ExplanationTest, Selection) {
  Table a = MakeBase(60);
  std::vector<uint32_t> keep;
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    if (a.column(2).GetInt(r) >= 500) keep.push_back(r);
  }
  Table b = a.CopyRows(keep, "b");
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kSelection);
  EXPECT_EQ(ex.rows_removed,
            static_cast<int>(a.num_rows() - keep.size()));
  EXPECT_EQ(ex.rows_added, 0);
}

TEST(ExplanationTest, Append) {
  Table a = MakeBase(40);
  Table b = a.Clone("b");
  for (int i = 0; i < 10; ++i) {
    b.AppendRowUnchecked({Value(static_cast<int64_t>(1000 + i)), Value("new"),
                          Value(int64_t{1})});
  }
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kAppend);
  EXPECT_EQ(ex.rows_added, 10);
}

TEST(ExplanationTest, UpdateDetectedViaKeyColumn) {
  Table a = MakeBase(50);
  Table b = a.Clone("b");
  for (uint32_t r = 0; r < 8; ++r) {
    Row row = b.GetRow(r);
    row[2] = Value(int64_t{-1});
    b.SetRow(r, row);
  }
  Explanation ex = ExplainDerivation(a, b, "id");
  EXPECT_EQ(ex.op, Operation::kUpdate);
  EXPECT_EQ(ex.rows_modified, 8);
}

TEST(ExplanationTest, UnknownForMixedChanges) {
  Table a = MakeBase(30);
  Table b("b", Schema({{"id", ValueType::kInt64},
                       {"other", ValueType::kString}}));
  for (int i = 0; i < 5; ++i) {
    b.AppendRowUnchecked({Value(static_cast<int64_t>(i)), Value("x")});
  }
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kUnknown);
}

TEST(ExplanationTest, OperationNames) {
  EXPECT_STREQ(OperationName(Operation::kProjection), "projection");
  EXPECT_STREQ(OperationName(Operation::kUpdate), "update");
}

// ---- Signatures & similarity ----

TEST(SignatureTest, BasicProperties) {
  Table a = MakeBase(30);
  Signature sig = ComputeSignature(a);
  EXPECT_EQ(sig.num_rows, 30u);
  EXPECT_EQ(sig.columns.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sig.row_hashes.begin(), sig.row_hashes.end()));
  EXPECT_DOUBLE_EQ(RowJaccard(sig, sig), 1.0);
  EXPECT_DOUBLE_EQ(ColumnContainment(sig, sig), 1.0);
}

TEST(SignatureTest, JaccardDropsWithEdits) {
  Table a = MakeBase(100);
  Table b = a.Clone("b");
  for (uint32_t r = 0; r < 50; ++r) {
    Row row = b.GetRow(r);
    row[2] = Value(int64_t{-7});
    b.SetRow(r, row);
  }
  double j = RowJaccard(ComputeSignature(a), ComputeSignature(b));
  EXPECT_GT(j, 0.2);
  EXPECT_LT(j, 0.6);
}

// ---- Lineage inference ----

struct Repo {
  std::vector<std::unique_ptr<Table>> tables;
  std::vector<std::vector<int>> true_parents;
  std::vector<DatasetVersion> versions;
};

// A chain of row-preserving-ish edits with occasional branches.
Repo MakeRepo(int n, bool with_timestamps, uint64_t seed = 11) {
  Repo repo;
  Xorshift rng(seed);
  repo.tables.push_back(std::make_unique<Table>(MakeBase(200, seed)));
  repo.true_parents.push_back({});
  for (int v = 1; v < n; ++v) {
    int parent = v - 1;
    if (v > 2 && rng.Bernoulli(0.3)) {
      parent = static_cast<int>(rng.Uniform(v));  // branch
    }
    Table next = repo.tables[parent]->Clone("v" + std::to_string(v));
    // Modify ~5% of rows, append a couple.
    for (int e = 0; e < 10; ++e) {
      uint32_t r = static_cast<uint32_t>(rng.Uniform(next.num_rows()));
      Row row = next.GetRow(r);
      row[2] = Value(static_cast<int64_t>(rng.Uniform(1000)));
      next.SetRow(r, row);
    }
    next.AppendRowUnchecked({Value(static_cast<int64_t>(10000 + v)),
                             Value("new"), Value(int64_t{0})});
    repo.tables.push_back(std::make_unique<Table>(std::move(next)));
    repo.true_parents.push_back({parent});
  }
  for (int v = 0; v < n; ++v) {
    DatasetVersion dv;
    dv.name = "v" + std::to_string(v);
    dv.table = repo.tables[v].get();
    dv.timestamp = with_timestamps ? static_cast<double>(v) : -1.0;
    repo.versions.push_back(dv);
  }
  return repo;
}

TEST(InferenceTest, RecoversChainWithTimestamps) {
  Repo repo = MakeRepo(20, /*with_timestamps=*/true);
  InferredGraph g = InferLineage(repo.versions);
  EdgeQuality q = ScoreEdges(g, repo.true_parents);
  EXPECT_GE(q.precision, 0.8) << "precision " << q.precision;
  EXPECT_GE(q.recall, 0.8) << "recall " << q.recall;
  EXPECT_EQ(g.parent[0], -1);  // the root has no plausible parent
}

TEST(InferenceTest, WorksWithoutTimestamps) {
  Repo repo = MakeRepo(15, /*with_timestamps=*/false);
  InferredGraph g = InferLineage(repo.versions);
  EdgeQuality q = ScoreEdges(g, repo.true_parents);
  // Orientation is harder without timestamps; undirected adjacency should
  // still be mostly right, so precision stays usable.
  EXPECT_GE(q.precision, 0.5);
  // No cycles.
  for (int v = 0; v < static_cast<int>(g.parent.size()); ++v) {
    int steps = 0;
    int x = v;
    while (x >= 0 && steps <= static_cast<int>(g.parent.size())) {
      x = g.parent[x];
      ++steps;
    }
    EXPECT_LE(steps, static_cast<int>(g.parent.size()));
  }
}

TEST(InferenceTest, UnrelatedDatasetsStayDisconnected) {
  Table a = MakeBase(100, 1);
  Table b("other", Schema({{"k", ValueType::kString}}));
  for (int i = 0; i < 80; ++i) {
    b.AppendRowUnchecked({Value("item" + std::to_string(i * 13))});
  }
  std::vector<DatasetVersion> versions = {
      {"a", &a, 1.0},
      {"b", &b, 2.0},
  };
  InferredGraph g = InferLineage(versions);
  EXPECT_EQ(g.parent[0], -1);
  EXPECT_EQ(g.parent[1], -1);
}

TEST(InferenceTest, RecognizesProjectionEdges) {
  // A projection shares no full-row hashes with its parent; the per-column
  // sketches must still link them.
  Table a = MakeBase(200, 8);
  std::vector<uint32_t> all(a.num_rows());
  for (uint32_t r = 0; r < a.num_rows(); ++r) all[r] = r;
  Table b = a.ProjectRows(all, {0, 1}, "b");
  std::vector<DatasetVersion> versions = {{"a", &a, 1.0}, {"b", &b, 2.0}};
  InferredGraph g = InferLineage(versions);
  EXPECT_EQ(g.parent[1], 0);
  Explanation ex = ExplainDerivation(a, b);
  EXPECT_EQ(ex.op, Operation::kProjection);
}

TEST(SignatureTest, ColumnValueSimilarity) {
  Table a = MakeBase(100, 4);
  Signature sa = ComputeSignature(a);
  EXPECT_DOUBLE_EQ(ColumnValueSimilarity(sa, sa), 1.0);
  // Projection keeps surviving column contents identical.
  std::vector<uint32_t> all(a.num_rows());
  for (uint32_t r = 0; r < a.num_rows(); ++r) all[r] = r;
  Table b = a.ProjectRows(all, {0, 1}, "b");
  Signature sb = ComputeSignature(b);
  EXPECT_NEAR(ColumnValueSimilarity(sa, sb), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(RowJaccard(sa, sb), 0.0);
}

TEST(InferenceTest, LshMatchesExhaustiveSearch) {
  Repo repo = MakeRepo(30, /*with_timestamps=*/true, 21);
  InferenceOptions exhaustive;
  InferenceOptions lsh;
  lsh.use_lsh = true;
  InferredGraph a = InferLineage(repo.versions, exhaustive);
  InferredGraph b = InferLineage(repo.versions, lsh);
  // The banded candidates must retain every confident edge.
  int agree = 0;
  int edges = 0;
  for (size_t v = 0; v < a.parent.size(); ++v) {
    if (a.parent[v] < 0) continue;
    ++edges;
    if (a.parent[v] == b.parent[v]) ++agree;
  }
  EXPECT_GE(agree, edges * 8 / 10);
}

TEST(InferenceTest, LshCandidatesCoverTrueEdges) {
  Repo repo = MakeRepo(40, /*with_timestamps=*/true, 31);
  std::vector<Signature> sigs;
  for (const auto& v : repo.versions) {
    sigs.push_back(ComputeSignature(*v.table));
  }
  auto pairs = LshCandidatePairs(sigs, 16, 2);
  std::set<std::pair<int, int>> set(pairs.begin(), pairs.end());
  int covered = 0;
  int total = 0;
  for (int v = 1; v < static_cast<int>(repo.versions.size()); ++v) {
    int p = repo.true_parents[v][0];
    ++total;
    if (set.count({std::min(p, v), std::max(p, v)})) ++covered;
  }
  EXPECT_GE(covered, total * 9 / 10);
  // And far fewer pairs than all-pairs.
  size_t n = repo.versions.size();
  EXPECT_LT(pairs.size(), n * (n - 1) / 2);
}

TEST(InferenceTest, ScoreEdgesMath) {
  InferredGraph g;
  g.parent = {-1, 0, 0, 1};
  g.score = {0, 1, 1, 1};
  std::vector<std::vector<int>> truth = {{}, {0}, {1}, {1}};
  EdgeQuality q = ScoreEdges(g, truth);
  EXPECT_EQ(q.inferred, 3);
  EXPECT_EQ(q.correct, 2);  // edges into 1 and 3 correct, into 2 wrong
  EXPECT_EQ(q.actual, 3);
  EXPECT_NEAR(q.precision, 2.0 / 3, 1e-9);
  EXPECT_NEAR(q.recall, 2.0 / 3, 1e-9);
}

}  // namespace
}  // namespace orpheus::provenance
