#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace orpheus {
namespace {

// Every test runs against the global registry (that is what the engine
// instruments), so each resets it first and uses test-unique metric names.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().Reset(); }
};

TEST_F(MetricsTest, CounterAddAndReset) {
  auto& c = MetricsRegistry::Global().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Reset zeroes the value but the handle stays valid (names are never
  // erased, so function-local static references survive).
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(c.value(), 0u);
  c.Add(7);
  EXPECT_EQ(MetricsRegistry::Global().counter("test.counter").value(), 7u);
  EXPECT_EQ(&MetricsRegistry::Global().counter("test.counter"), &c);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  auto& g = MetricsRegistry::Global().gauge("test.gauge");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST_F(MetricsTest, HistogramExactStatsApproxPercentiles) {
  auto& h = MetricsRegistry::Global().histogram("test.hist");
  for (uint64_t v : {0ull, 1ull, 2ull, 100ull, 1000ull}) h.Record(v);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1103u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  // Power-of-two buckets: percentiles are bucket upper edges clamped to
  // [min, max], so they are within 2x of the true value and ordered.
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_GE(snap.p50, snap.min);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_GE(snap.p99, 512u);  // true p99 is 1000; bucket edge is >= 512
}

TEST_F(MetricsTest, HistogramResetClearsMinMaxAndPercentiles) {
  // Regression: after Reset, min/max/percentiles must reflect only the
  // records made since — a stale min of 0 or max of 1e6 would silently
  // corrupt every later snapshot.
  auto& h = MetricsRegistry::Global().histogram("test.reset_hist");
  h.Record(1);
  h.Record(1000000);
  MetricsRegistry::Global().Reset();
  auto cleared = h.TakeSnapshot();
  EXPECT_EQ(cleared.count, 0u);
  EXPECT_EQ(cleared.sum, 0u);
  EXPECT_EQ(cleared.min, 0u);
  EXPECT_EQ(cleared.max, 0u);
  EXPECT_EQ(cleared.p50, 0u);
  EXPECT_EQ(cleared.p99, 0u);
  h.Record(500);
  h.Record(700);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 1200u);
  EXPECT_EQ(snap.min, 500u);
  EXPECT_EQ(snap.max, 700u);
  // Percentiles are bucket edges clamped to [min, max]: nothing may leak
  // from the pre-reset records (1 and 1000000).
  EXPECT_GE(snap.p50, 500u);
  EXPECT_LE(snap.p99, 700u);
}

TEST_F(MetricsTest, HistogramEmptySnapshotIsZero) {
  auto snap = MetricsRegistry::Global().histogram("test.empty").TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p99, 0u);
}

TEST_F(MetricsTest, CountersAreExactUnderThreadPool) {
  ThreadPool pool(8);
  auto& c = MetricsRegistry::Global().counter("test.pool_counter");
  auto& h = MetricsRegistry::Global().histogram("test.pool_hist");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  {
    ThreadPool::TaskGroup group(&pool);
    for (int t = 0; t < kTasks; ++t) {
      group.Submit([&c, &h] {
        for (int i = 0; i < kAddsPerTask; ++i) {
          c.Add();
          h.Record(static_cast<uint64_t>(i));
        }
      });
    }
  }  // TaskGroup dtor waits
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kTasks) * kAddsPerTask);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, static_cast<uint64_t>(kAddsPerTask - 1));
}

TEST_F(MetricsTest, SpanPathsNest) {
  if (!MetricsEnabled()) GTEST_SKIP() << "metrics disabled via env/build";
  {
    TraceSpan outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    {
      TraceSpan inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
    }
  }
  auto snap = MetricsRegistry::Global().TakeSnapshot();
  const MetricsRegistry::Snapshot::Span* outer = nullptr;
  const MetricsRegistry::Snapshot::Span* inner = nullptr;
  for (const auto& s : snap.spans) {
    if (s.path == "outer") outer = &s;
    if (s.path == "outer/inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
  // The inner span's time was charged to the outer's child_us, so outer
  // self time excludes it: self = total - child <= total.
  EXPECT_LE(outer->self_us, outer->total_us);
  EXPECT_GE(outer->total_us, inner->total_us);
}

TEST_F(MetricsTest, SpansAggregateAcrossPoolThreads) {
  if (!MetricsEnabled()) GTEST_SKIP() << "metrics disabled via env/build";
  ThreadPool pool(8);
  constexpr int kTasks = 32;
  {
    ThreadPool::TaskGroup group(&pool);
    for (int t = 0; t < kTasks; ++t) {
      group.Submit([] {
        TraceSpan span("test.pool_span");
        ORPHEUS_COUNTER_ADD("test.span_body", 1);
      });
    }
  }
  auto snap = MetricsRegistry::Global().TakeSnapshot();
  uint64_t count = 0;
  for (const auto& s : snap.spans) {
    // Spans nest per thread: a task running inside a worker that is not
    // itself traced records at the root path.
    if (s.path == "test.pool_span") count += s.count;
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kTasks));
}

TEST_F(MetricsTest, SnapshotSortedAndTextRendering) {
  MetricsRegistry::Global().counter("test.b").Add(2);
  MetricsRegistry::Global().counter("test.a").Add(1);
  MetricsRegistry::Global().gauge("test.g").Set(3);
  auto snap = MetricsRegistry::Global().TakeSnapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap.counters) names.push_back(name);
  ASSERT_GE(names.size(), 2u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  std::string text = MetricsRegistry::Global().ToText();
  EXPECT_NE(text.find("test.a"), std::string::npos);
  EXPECT_NE(text.find("test.g"), std::string::npos);
}

TEST_F(MetricsTest, JsonExportShape) {
  MetricsRegistry::Global().counter("test.json_counter").Add(5);
  MetricsRegistry::Global().histogram("test.json_hist").Record(16);
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, MacrosCacheHandles) {
  if (!MetricsEnabled()) GTEST_SKIP() << "metrics disabled via env/build";
  for (int i = 0; i < 3; ++i) ORPHEUS_COUNTER_ADD("test.macro_counter", 2);
  EXPECT_EQ(MetricsRegistry::Global().counter("test.macro_counter").value(),
            6u);
  ORPHEUS_GAUGE_SET("test.macro_gauge", 9);
  EXPECT_EQ(MetricsRegistry::Global().gauge("test.macro_gauge").value(), 9);
  ORPHEUS_HISTOGRAM_RECORD("test.macro_hist", 4);
  EXPECT_EQ(
      MetricsRegistry::Global().histogram("test.macro_hist").TakeSnapshot()
          .count,
      1u);
}

}  // namespace
}  // namespace orpheus
