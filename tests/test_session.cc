#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/validation.h"
#include "core/cvd.h"
#include "core/types.h"
#include "core/validate.h"
#include "minidb/csv.h"
#include "minidb/schema.h"
#include "minidb/table.h"
#include "minidb/value.h"
#include "session/session.h"
#include "storage/repository.h"

namespace orpheus::session {
namespace {

using core::VersionId;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;
using storage::Repository;

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "orpheus_session_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << tmpl;
  }
  return tmpl;
}

Table MakeTable(const std::vector<std::pair<int64_t, std::string>>& rows) {
  Table t("seed",
          Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}}));
  for (const auto& [id, name] : rows) {
    ORPHEUS_CHECK_OK(t.InsertRow({Value(id), Value(name)}));
  }
  return t;
}

core::Cvd::Options PkOptions() {
  core::Cvd::Options opts;
  opts.primary_key = {"id"};
  return opts;
}

std::unique_ptr<core::Cvd> MakeCvd(
    const std::vector<std::pair<int64_t, std::string>>& rows,
    const core::Cvd::Options& opts) {
  return core::Cvd::Init("t", MakeTable(rows), opts).MoveValueOrDie();
}

// --- Helpers over checked-out staging tables (schema: _rid, id, name) ---

int64_t RowOf(const Table& t, int64_t id) {
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    if (t.GetValue(r, 1).AsInt() == id) return r;
  }
  return -1;
}

void SetName(Table* t, int64_t id, const std::string& name) {
  int64_t row = RowOf(*t, id);
  ASSERT_GE(row, 0) << "no row with id " << id;
  minidb::Row vals = t->GetRow(static_cast<uint32_t>(row));
  vals[2] = Value(name);
  t->SetRow(static_cast<uint32_t>(row), vals);
}

void DeleteKey(Table* t, int64_t id) {
  int64_t row = RowOf(*t, id);
  ASSERT_GE(row, 0) << "no row with id " << id;
  t->DeleteRows({static_cast<uint32_t>(row)});
}

void AddRow(Table* t, int64_t id, const std::string& name) {
  t->AppendRowUnchecked({Value::Null(), Value(id), Value(name)});
}

std::map<int64_t, std::string> NamesByKey(const Table& t) {
  std::map<int64_t, std::string> out;
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    out[t.GetValue(r, 1).AsInt()] = t.GetValue(r, 2).ToString();
  }
  return out;
}

/// Materialize `vids` through a throwaway session and render as CSV (the
/// byte-identical yardstick; includes the _rid column).
std::string CheckoutCsv(SessionManager* manager,
                        const std::vector<VersionId>& vids) {
  auto s = manager->Open();
  ORPHEUS_CHECK_OK(s->Checkout(vids, "peek"));
  return minidb::ToCsv(*s->table("peek"));
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { log::SetLevelForTest(log::Level::kError); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Basic flow + snapshot isolation
// ---------------------------------------------------------------------------

TEST_F(SessionTest, CommitAdvancesOnlyTheCommittersView) {
  SessionManager manager(MakeCvd({{1, "a"}, {2, "b"}, {3, "c"}}, PkOptions()),
                        /*repo=*/nullptr);
  auto s1 = manager.Open();
  auto s2 = manager.Open();
  EXPECT_EQ(s1->watermark(), 1);
  EXPECT_EQ(s2->watermark(), 1);

  ASSERT_TRUE(s1->Checkout({1}, "t").ok());
  SetName(s1->table("t"), 2, "b2");
  AddRow(s1->table("t"), 4, "d");
  auto out = s1->Commit("t", "edit b, add d");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->vid, 2);
  EXPECT_FALSE(out->reconciled);
  EXPECT_EQ(out->merged_vid, core::kInvalidVersion);
  EXPECT_TRUE(out->conflicts.empty());
  EXPECT_EQ(s1->watermark(), 2);  // read-your-writes
  EXPECT_FALSE(s1->staging()->HasTable("t"));

  // s2 is pinned at its open-time snapshot: v2 is invisible until Refresh.
  EXPECT_EQ(s2->watermark(), 1);
  EXPECT_FALSE(s2->Checkout({2}, "t").ok());
  ASSERT_TRUE(s2->Refresh().ok());
  EXPECT_EQ(s2->watermark(), 2);
  ASSERT_TRUE(s2->Checkout({2}, "t").ok());
  EXPECT_EQ(NamesByKey(*s2->table("t")),
            (std::map<int64_t, std::string>{
                {1, "a"}, {2, "b2"}, {3, "c"}, {4, "d"}}));
}

TEST_F(SessionTest, DiffIsWatermarkGated) {
  SessionManager manager(MakeCvd({{1, "a"}}, PkOptions()), nullptr);
  auto reader = manager.Open();  // pinned at v1
  auto writer = manager.Open();
  ASSERT_TRUE(writer->Checkout({1}, "t").ok());
  AddRow(writer->table("t"), 2, "b");
  ASSERT_TRUE(writer->Commit("t", "add b").ok());

  EXPECT_FALSE(reader->Diff(2, 1).ok());
  ASSERT_TRUE(reader->Refresh().ok());
  auto diff = reader->Diff(2, 1);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_EQ(diff->num_rows(), 1u);
  EXPECT_EQ(diff->GetValue(0, 1).AsInt(), 2);
}

// ---------------------------------------------------------------------------
// Optimistic commit reconciliation (three-way record-level merge)
// ---------------------------------------------------------------------------

TEST_F(SessionTest, DisjointEditsReconcileIntoMergeCommit) {
  SessionManager manager(MakeCvd({{1, "a"}, {2, "b"}, {3, "c"}}, PkOptions()),
                        nullptr);
  auto s1 = manager.Open();
  auto s2 = manager.Open();
  ASSERT_TRUE(s1->Checkout({1}, "t").ok());
  ASSERT_TRUE(s2->Checkout({1}, "t").ok());

  SetName(s1->table("t"), 2, "s1");
  AddRow(s1->table("t"), 4, "d");
  ASSERT_TRUE(s1->Commit("t", "s1 edits").ok());

  SetName(s2->table("t"), 3, "s2");
  AddRow(s2->table("t"), 5, "e");
  auto out = s2->Commit("t", "s2 edits");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->vid, 3);
  EXPECT_TRUE(out->reconciled);
  EXPECT_EQ(out->reconciled_with, 2);
  EXPECT_EQ(out->merged_vid, 4);
  EXPECT_TRUE(out->conflicts.empty());

  // Merge commit has both divergent versions as parents: {tip, ours}.
  ASSERT_TRUE(manager
                  .ReadCvd([](const core::Cvd& cvd) {
                    EXPECT_EQ(cvd.num_versions(), 4);
                    EXPECT_EQ(cvd.Parents(4),
                              (std::vector<VersionId>{2, 3}));
                    return Status::OK();
                  })
                  .ok());

  auto merged = manager.Open();
  ASSERT_TRUE(merged->Checkout({4}, "m").ok());
  EXPECT_EQ(NamesByKey(*merged->table("m")),
            (std::map<int64_t, std::string>{
                {1, "a"}, {2, "s1"}, {3, "s2"}, {4, "d"}, {5, "e"}}));
}

TEST_F(SessionTest, DeleteVersusModifyTheModificationWins) {
  SessionManager manager(MakeCvd({{1, "a"}, {2, "b"}, {3, "c"}}, PkOptions()),
                        nullptr);
  auto s1 = manager.Open();
  auto s2 = manager.Open();
  ASSERT_TRUE(s1->Checkout({1}, "t").ok());
  ASSERT_TRUE(s2->Checkout({1}, "t").ok());

  DeleteKey(s1->table("t"), 2);  // tip deletes...
  ASSERT_TRUE(s1->Commit("t", "delete b").ok());
  SetName(s2->table("t"), 2, "kept");  // ...we modify concurrently
  auto out = s2->Commit("t", "modify b");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->reconciled);

  auto merged = manager.Open();
  ASSERT_TRUE(merged->Checkout({out->merged_vid}, "m").ok());
  EXPECT_EQ(NamesByKey(*merged->table("m")),
            (std::map<int64_t, std::string>{
                {1, "a"}, {2, "kept"}, {3, "c"}}));
}

TEST_F(SessionTest, IdenticalConcurrentInsertsMergeToOneRecord) {
  SessionManager manager(MakeCvd({{1, "a"}}, PkOptions()), nullptr);
  auto s1 = manager.Open();
  auto s2 = manager.Open();
  ASSERT_TRUE(s1->Checkout({1}, "t").ok());
  ASSERT_TRUE(s2->Checkout({1}, "t").ok());
  AddRow(s1->table("t"), 2, "same");
  ASSERT_TRUE(s1->Commit("t", "add").ok());
  AddRow(s2->table("t"), 2, "same");
  auto out = s2->Commit("t", "add again");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->reconciled);

  // One surviving record, carrying the tip's record id.
  auto peek = manager.Open();
  ASSERT_TRUE(peek->Checkout({out->merged_vid}, "m").ok());
  ASSERT_TRUE(peek->Checkout({2}, "tip").ok());
  const Table* m = peek->table("m");
  EXPECT_EQ(m->num_rows(), 2u);
  int64_t merged_row = RowOf(*m, 2);
  int64_t tip_row = RowOf(*peek->table("tip"), 2);
  ASSERT_GE(merged_row, 0);
  ASSERT_GE(tip_row, 0);
  EXPECT_EQ(m->GetValue(static_cast<uint32_t>(merged_row), 0),
            peek->table("tip")->GetValue(static_cast<uint32_t>(tip_row), 0));
}

TEST_F(SessionTest, SameAttributeDivergenceReportsConflictSet) {
  SessionManager manager(MakeCvd({{1, "a"}, {2, "b"}}, PkOptions()), nullptr);
  auto s1 = manager.Open();
  auto s2 = manager.Open();
  ASSERT_TRUE(s1->Checkout({1}, "t").ok());
  ASSERT_TRUE(s2->Checkout({1}, "t").ok());
  SetName(s1->table("t"), 2, "theirs");
  ASSERT_TRUE(s1->Commit("t", "edit").ok());
  SetName(s2->table("t"), 2, "ours");
  auto out = s2->Commit("t", "conflicting edit");
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  EXPECT_EQ(out->vid, 3);
  EXPECT_FALSE(out->reconciled);
  EXPECT_EQ(out->merged_vid, core::kInvalidVersion);
  EXPECT_EQ(out->reconciled_with, 2);
  ASSERT_EQ(out->conflicts.size(), 1u);
  EXPECT_EQ(out->conflicts[0].key, "2");
  EXPECT_EQ(out->conflicts[0].attribute, "name");
  EXPECT_EQ(out->conflicts[0].base, "b");
  EXPECT_EQ(out->conflicts[0].ours, "ours");
  EXPECT_EQ(out->conflicts[0].theirs, "theirs");

  // No merge commit: the session's version stays as a divergent branch.
  ASSERT_TRUE(manager
                  .ReadCvd([](const core::Cvd& cvd) {
                    EXPECT_EQ(cvd.num_versions(), 3);
                    EXPECT_EQ(cvd.Parents(3),
                              (std::vector<VersionId>{1}));
                    return Status::OK();
                  })
                  .ok());
  auto peek = manager.Open();
  ASSERT_TRUE(peek->Checkout({3}, "v").ok());
  EXPECT_EQ(NamesByKey(*peek->table("v"))[2], "ours");
}

TEST_F(SessionTest, NoPrimaryKeyMergesAtTheRecordLevelWithoutConflicts) {
  // Records are immutable, so without a PK the merge is pure set algebra:
  // (base - both delete sets) + both add sets. Conflicts are impossible.
  SessionManager manager(
      MakeCvd({{1, "a"}, {2, "b"}, {3, "c"}}, core::Cvd::Options{}), nullptr);
  auto s1 = manager.Open();
  auto s2 = manager.Open();
  ASSERT_TRUE(s1->Checkout({1}, "t").ok());
  ASSERT_TRUE(s2->Checkout({1}, "t").ok());
  DeleteKey(s1->table("t"), 1);
  AddRow(s1->table("t"), 4, "d");
  ASSERT_TRUE(s1->Commit("t", "s1").ok());
  DeleteKey(s2->table("t"), 2);
  AddRow(s2->table("t"), 5, "e");
  auto out = s2->Commit("t", "s2");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->reconciled);

  auto peek = manager.Open();
  ASSERT_TRUE(peek->Checkout({out->merged_vid}, "m").ok());
  EXPECT_EQ(NamesByKey(*peek->table("m")),
            (std::map<int64_t, std::string>{
                {3, "c"}, {4, "d"}, {5, "e"}}));
}

// ---------------------------------------------------------------------------
// Determinism: a fixed commit order reconciles identically at any degree
// ---------------------------------------------------------------------------

struct RunResult {
  std::vector<std::tuple<VersionId, VersionId, VersionId>> outcomes;
  std::string final_csv;
  int num_versions = 0;
};

RunResult RunFixedScheduleAtDegree(int degree) {
  constexpr int kWorkers = 6;
  SessionManager manager(
      MakeCvd({{1, "r"}, {2, "r"}, {3, "r"}, {4, "r"}, {5, "r"}, {6, "r"}},
              PkOptions()),
      nullptr);

  // Every worker edits its own key; commit order is forced by a turn
  // counter, so the reconciliation chain (and every assigned rid) must come
  // out identical no matter how many threads run the schedule.
  std::vector<std::tuple<VersionId, VersionId, VersionId>> outcomes(kWorkers);
  std::atomic<int> turn{0};
  ThreadPool pool(degree);
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < kWorkers; ++i) {
      group.Submit([&, i] {
        auto s = manager.Open();
        ORPHEUS_CHECK_OK(s->Checkout({1}, "t"));
        SetName(s->table("t"), i + 1, "w" + std::to_string(i));
        while (turn.load(std::memory_order_acquire) != i) {
        }
        auto out = s->Commit("t", "worker " + std::to_string(i));
        ORPHEUS_CHECK_OK(out.status());
        EXPECT_TRUE(out->conflicts.empty());
        outcomes[i] = {out->vid, out->merged_vid, out->reconciled_with};
        turn.store(i + 1, std::memory_order_release);
      });
    }
    group.Wait();
  }

  RunResult result;
  result.outcomes = std::move(outcomes);
  result.final_csv = CheckoutCsv(&manager, {manager.watermark()});
  ORPHEUS_CHECK_OK(manager.ReadCvd([&](const core::Cvd& cvd) {
    result.num_versions = cvd.num_versions();
    ValidationReport report;
    core::ValidateCvd(cvd, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
    return Status::OK();
  }));
  return result;
}

TEST_F(SessionTest, ReconciliationIsDeterministicAcrossDegrees) {
  RunResult serial = RunFixedScheduleAtDegree(1);
  RunResult parallel = RunFixedScheduleAtDegree(8);
  EXPECT_EQ(serial.outcomes, parallel.outcomes);
  EXPECT_EQ(serial.num_versions, parallel.num_versions);
  EXPECT_EQ(serial.final_csv, parallel.final_csv);
  // First committer saw its base still a tip; everyone after reconciled.
  EXPECT_EQ(std::get<1>(serial.outcomes[0]), core::kInvalidVersion);
  for (size_t i = 1; i < serial.outcomes.size(); ++i) {
    EXPECT_NE(std::get<1>(serial.outcomes[i]), core::kInvalidVersion);
  }
}

// ---------------------------------------------------------------------------
// 8-session hammer over a durable repository
// ---------------------------------------------------------------------------

TEST_F(SessionTest, EightSessionHammerStaysConsistentAndDurable) {
  constexpr int kWorkers = 8;
  constexpr int kIters = 6;
  const std::string dir = MakeTempDir();
  auto repo = Repository::Open(dir).MoveValueOrDie();
  auto cvd = MakeCvd({{1, "r1"},
                      {2, "r2"},
                      {3, "r3"},
                      {4, "r4"},
                      {5, "r5"},
                      {6, "r6"},
                      {7, "r7"},
                      {8, "r8"}},
                     PkOptions());
  ASSERT_TRUE(repo->LogCreate(*cvd).ok());
  SessionManager manager(std::move(cvd), repo.get());

  const std::string pinned_golden = CheckoutCsv(&manager, {1});
  const uint64_t syncs_before =
      MetricsRegistry::Global().counter("storage.wal.syncs").value();
  std::atomic<int> done{0};
  ThreadPool pool(kWorkers + 1);
  {
    ThreadPool::TaskGroup group(&pool);
    // Pinned reader: mid-churn checkouts of v1 must stay byte-identical.
    group.Submit([&] {
      auto s = manager.Open();
      int j = 0;
      while (done.load(std::memory_order_acquire) < kWorkers) {
        std::string name = "pin" + std::to_string(j++);
        ORPHEUS_CHECK_OK(s->Checkout({1}, name));
        EXPECT_EQ(minidb::ToCsv(*s->table(name)), pinned_golden);
        ORPHEUS_CHECK_OK(s->staging()->DropTable(name));
      }
    });
    // Committers: each owns one key, so every reconciliation is clean.
    for (int i = 0; i < kWorkers; ++i) {
      group.Submit([&, i] {
        auto s = manager.Open();
        for (int it = 0; it < kIters; ++it) {
          ORPHEUS_CHECK_OK(s->Refresh());
          ORPHEUS_CHECK_OK(s->Checkout({s->watermark()}, "t"));
          SetName(s->table("t"), i + 1,
                  "w" + std::to_string(i) + "_" + std::to_string(it));
          auto out = s->Commit("t", "hammer");
          ORPHEUS_CHECK_OK(out.status());
          EXPECT_TRUE(out->conflicts.empty());
        }
        done.fetch_add(1, std::memory_order_release);
      });
    }
    group.Wait();
  }
  EXPECT_FALSE(manager.failed());

  // Validator-clean graph; the watermark covers every applied version.
  VersionId final_wm = manager.watermark();
  ASSERT_TRUE(manager
                  .ReadCvd([&](const core::Cvd& cvd_ref) {
                    EXPECT_EQ(cvd_ref.num_versions(),
                              static_cast<int>(final_wm));
                    ValidationReport report;
                    core::ValidateCvd(cvd_ref, &report);
                    EXPECT_TRUE(report.ok()) << report.ToString();
                    return Status::OK();
                  })
                  .ok());
  const std::string final_golden = CheckoutCsv(&manager, {final_wm});

  // Every applied version reached the WAL, and the leader batched: the
  // fsync count can never exceed one per logged commit record.
  const uint64_t commits = static_cast<uint64_t>(final_wm) - 1;
  EXPECT_EQ(repo->stats().wal_records, commits + 1);  // + the create record
  if (MetricsEnabled()) {
    const uint64_t syncs =
        MetricsRegistry::Global().counter("storage.wal.syncs").value() -
        syncs_before;
    EXPECT_LE(syncs, commits);
  }

  // Everything survives close + fsck + reopen bit-identically.
  auto released = manager.Release();
  ASSERT_TRUE(repo->Close({released.get()}).ok());
  repo.reset();
  ASSERT_TRUE(Repository::Fsck(dir).ok());
  auto reopened = Repository::Open(dir).MoveValueOrDie();
  auto cvds = reopened->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  SessionManager manager2(std::move(cvds[0]), reopened.get());
  EXPECT_EQ(manager2.watermark(), final_wm);
  EXPECT_EQ(CheckoutCsv(&manager2, {final_wm}), final_golden);
}

// ---------------------------------------------------------------------------
// Durability failure: no phantom version, manager poisoned
// ---------------------------------------------------------------------------

#if ORPHEUS_FAILPOINTS_ENABLED
TEST_F(SessionTest, DurabilityFailurePoisonsManagerWithoutPhantomVersions) {
  const std::string dir = MakeTempDir();
  auto repo = Repository::Open(dir).MoveValueOrDie();
  auto cvd = MakeCvd({{1, "a"}, {2, "b"}}, PkOptions());
  ASSERT_TRUE(repo->LogCreate(*cvd).ok());
  SessionManager manager(std::move(cvd), repo.get());
  const std::string golden = CheckoutCsv(&manager, {1});

  // Fail before any byte reaches the file: the commit must be absent both
  // from every live session's view and from the reopened repository. (A
  // failed *fsync* is weaker — the record may survive in the page cache —
  // so the live-view guarantees below hold for it too, but not the
  // absent-after-reopen one.)
  failpoint::Arm("storage.wal.append.frame", failpoint::Action::kError);
  auto s = manager.Open();
  ASSERT_TRUE(s->Checkout({1}, "t").ok());
  SetName(s->table("t"), 2, "lost");
  auto out = s->Commit("t", "never durable");
  EXPECT_FALSE(out.ok());
  failpoint::DisarmAll();

  // The manager is poisoned and the un-durable version stays invisible:
  // the watermark never advanced over it, so no session can check it out.
  EXPECT_TRUE(manager.failed());
  EXPECT_TRUE(repo->degraded());
  EXPECT_EQ(manager.watermark(), 1);
  auto s2 = manager.Open();
  EXPECT_FALSE(s2->Checkout({2}, "t").ok());
  EXPECT_TRUE(s2->Checkout({1}, "ok").ok());  // snapshot reads still work
  EXPECT_FALSE(s2->Refresh().ok());
  ASSERT_TRUE(s2->Checkout({1}, "t2").ok());
  SetName(s2->table("t2"), 2, "refused");
  EXPECT_FALSE(s2->Commit("t2", "must be refused").ok());

  // Recovery path: reopen from disk — only the durable state is there.
  repo.reset();
  ASSERT_TRUE(Repository::Fsck(dir).ok());
  auto reopened = Repository::Open(dir).MoveValueOrDie();
  auto cvds = reopened->TakeCvds();
  ASSERT_EQ(cvds.size(), 1u);
  SessionManager manager2(std::move(cvds[0]), reopened.get());
  EXPECT_EQ(manager2.watermark(), 1);
  EXPECT_EQ(CheckoutCsv(&manager2, {1}), golden);
}
#endif  // ORPHEUS_FAILPOINTS_ENABLED

}  // namespace
}  // namespace orpheus::session
