#include <gtest/gtest.h>

#include <unordered_set>

#include "benchdata/generator.h"
#include "core/baselines.h"
#include "core/lyresplit.h"

namespace orpheus::core {
namespace {

struct Fixture {
  benchdata::VersionedDataset ds;
  RecordSetView view;

  explicit Fixture(int versions = 60, int branches = 6, int ops = 20)
      : ds(benchdata::VersionedDataset::Generate(
            benchdata::SciConfig("S", versions, branches, ops))) {
    view.num_versions = ds.num_versions();
    view.records_of = [this](int v) -> const std::vector<RecordId>& {
      return ds.version(v).records;
    };
  }
};

void ExpectValidPartitioning(const Partitioning& p, int n) {
  ASSERT_EQ(static_cast<int>(p.partition_of.size()), n);
  for (int v = 0; v < n; ++v) {
    EXPECT_GE(p.partition_of[v], 0);
    EXPECT_LT(p.partition_of[v], p.num_partitions);
  }
  // Every partition id is used (dense numbering).
  std::vector<int> used(p.num_partitions, 0);
  for (int v = 0; v < n; ++v) used[p.partition_of[v]] = 1;
  for (int k = 0; k < p.num_partitions; ++k) EXPECT_EQ(used[k], 1);
}

TEST(AggloTest, ProducesValidPartitioning) {
  Fixture f;
  AggloOptions opt;
  Partitioning p = AggloPartition(f.view, opt);
  ExpectValidPartitioning(p, f.ds.num_versions());
}

TEST(AggloTest, CapacityBoundsPartitionSize) {
  Fixture f;
  AggloOptions opt;
  opt.capacity = 500;
  Partitioning p = AggloPartition(f.view, opt);
  ExpectValidPartitioning(p, f.ds.num_versions());
  auto groups = p.Groups();
  for (const auto& g : groups) {
    std::unordered_set<RecordId> u;
    for (int v : g) {
      const auto& rs = f.view.records_of(v);
      u.insert(rs.begin(), rs.end());
    }
    // Single versions can exceed BC on their own; merged groups cannot.
    if (g.size() > 1) {
      EXPECT_LE(u.size(), 500u);
    }
  }
}

TEST(AggloTest, InfiniteCapacityMergesAggressively) {
  Fixture f;
  AggloOptions opt;
  opt.capacity = 0;
  Partitioning p = AggloPartition(f.view, opt);
  EXPECT_LT(p.num_partitions, f.ds.num_versions());
}

TEST(KmeansTest, ProducesValidPartitioningWithAtMostKParts) {
  Fixture f;
  KmeansOptions opt;
  opt.k = 5;
  Partitioning p = KmeansPartition(f.view, opt);
  ExpectValidPartitioning(p, f.ds.num_versions());
  EXPECT_LE(p.num_partitions, 5);
}

TEST(KmeansTest, MoreClustersMoreStorageLessCheckout) {
  Fixture f(80, 8, 20);
  KmeansOptions few;
  few.k = 2;
  KmeansOptions many;
  many.k = 16;
  auto cost_few = ComputeExactCosts(f.view, KmeansPartition(f.view, few));
  auto cost_many = ComputeExactCosts(f.view, KmeansPartition(f.view, many));
  EXPECT_LE(cost_few.storage, cost_many.storage);
  EXPECT_GE(cost_few.checkout_avg, cost_many.checkout_avg * 0.9);
}

TEST(KmeansTest, KOneIsSinglePartition) {
  Fixture f;
  KmeansOptions opt;
  opt.k = 1;
  Partitioning p = KmeansPartition(f.view, opt);
  EXPECT_EQ(p.num_partitions, 1);
}

TEST(BudgetSearchTest, BothBaselinesRespectGamma) {
  Fixture f;
  uint64_t gamma = 2 * static_cast<uint64_t>(f.ds.num_distinct_records());
  int agglo_iters = 0;
  Partitioning agglo = AggloForBudget(f.view, gamma, &agglo_iters);
  EXPECT_LE(ComputeExactCosts(f.view, agglo).storage, gamma);
  EXPECT_GT(agglo_iters, 0);
  int kmeans_iters = 0;
  Partitioning kmeans = KmeansForBudget(f.view, gamma, &kmeans_iters);
  EXPECT_LE(ComputeExactCosts(f.view, kmeans).storage, gamma);
  EXPECT_GT(kmeans_iters, 0);
}

TEST(BudgetSearchTest, LyreSplitDominatesBaselines) {
  // The headline comparison (Fig. 5.8): at equal storage budget, LyreSplit's
  // checkout cost is at least as good as Agglo's and KMeans'.
  Fixture f(100, 10, 25);
  VersionGraph g;
  for (int v = 0; v < f.ds.num_versions(); ++v) {
    const auto& spec = f.ds.version(v);
    std::vector<int64_t> w;
    for (int p : spec.parents) w.push_back(f.ds.CommonRecords(p, v));
    g.AddVersion(spec.parents, w,
                 static_cast<int64_t>(spec.records.size()));
  }
  uint64_t gamma = 2 * static_cast<uint64_t>(f.ds.num_distinct_records());
  auto lyre = LyreSplitForBudget(g, gamma);
  auto lyre_cost = ComputeExactCosts(f.view, lyre.partitioning);
  auto agglo_cost = ComputeExactCosts(f.view, AggloForBudget(f.view, gamma));
  auto kmeans_cost =
      ComputeExactCosts(f.view, KmeansForBudget(f.view, gamma));
  EXPECT_LE(lyre_cost.storage, gamma);
  EXPECT_LE(lyre_cost.checkout_avg, agglo_cost.checkout_avg * 1.05);
  EXPECT_LE(lyre_cost.checkout_avg, kmeans_cost.checkout_avg * 1.05);
}

}  // namespace
}  // namespace orpheus::core
