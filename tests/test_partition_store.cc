#include <gtest/gtest.h>

#include <algorithm>

#include "benchdata/generator.h"
#include "core/lyresplit.h"
#include "core/partition_store.h"

namespace orpheus::core {
namespace {

struct Fixture {
  benchdata::VersionedDataset ds;
  DatasetAccessor accessor;
  RecordSetView view;
  VersionGraph graph;

  explicit Fixture(int versions = 50, int ops = 20, bool curated = false)
      : ds(benchdata::VersionedDataset::Generate(
            curated ? benchdata::CurConfig("C", versions, 5, ops)
                    : benchdata::SciConfig("S", versions, 5, ops))) {
    accessor.num_versions = ds.num_versions();
    accessor.num_attributes = ds.num_attributes();
    accessor.records_of = [this](int v) -> const std::vector<RecordId>& {
      return ds.version(v).records;
    };
    accessor.payload_of = [this](RecordId rid, std::vector<int64_t>* out) {
      *out = ds.RecordPayload(rid);
    };
    view.num_versions = ds.num_versions();
    view.records_of = accessor.records_of;
    for (int v = 0; v < ds.num_versions(); ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      graph.AddVersion(spec.parents, w,
                       static_cast<int64_t>(spec.records.size()));
    }
  }

  // Build a store limited to the first `n` versions.
  Partitioning Plan(uint64_t gamma_factor = 2) {
    uint64_t gamma = gamma_factor *
                     static_cast<uint64_t>(ds.num_distinct_records());
    return LyreSplitForBudget(graph, gamma).partitioning;
  }
};

TEST(PartitionedStoreTest, CheckoutRecoversExactVersion) {
  Fixture f;
  PartitionedStore store =
      PartitionedStore::Build(f.accessor, f.Plan());
  for (int v : {0, 10, 25, f.ds.num_versions() - 1}) {
    auto t = store.Checkout(v);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    std::vector<RecordId> rids(t->column(0).int_data().begin(),
                               t->column(0).int_data().end());
    std::sort(rids.begin(), rids.end());
    EXPECT_EQ(rids, f.ds.version(v).records);
    // Payload spot check.
    std::vector<int64_t> payload = f.ds.RecordPayload(rids[0]);
    bool found = false;
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (t->column(0).GetInt(r) == rids[0]) {
        for (int a = 0; a < f.ds.num_attributes(); ++a) {
          EXPECT_EQ(t->column(a + 1).GetInt(r), payload[a]);
        }
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(PartitionedStoreTest, StorageMatchesPartitionCosts) {
  Fixture f;
  Partitioning plan = f.Plan();
  PartitionedStore store = PartitionedStore::Build(f.accessor, plan);
  auto costs = ComputeExactCosts(f.view, plan);
  EXPECT_EQ(store.TotalDataRecords(), costs.storage);
  EXPECT_GT(store.StorageBytes(), 0u);
  for (int v = 0; v < f.ds.num_versions(); ++v) {
    EXPECT_EQ(store.partition_of(v), plan.partition_of[v]);
  }
}

TEST(PartitionedStoreTest, PartitioningShrinksCheckoutWork) {
  Fixture f(80, 25);
  PartitionedStore whole = PartitionedStore::Build(
      f.accessor, Partitioning::SinglePartition(f.ds.num_versions()));
  PartitionedStore parts = PartitionedStore::Build(f.accessor, f.Plan());
  // Per-version scan work drops for at least most versions.
  uint64_t improved = 0;
  for (int v = 0; v < f.ds.num_versions(); ++v) {
    if (parts.PartitionRecords(v) < whole.PartitionRecords(v)) ++improved;
  }
  EXPECT_GT(improved, static_cast<uint64_t>(f.ds.num_versions() / 2));
}

TEST(PartitionedStoreTest, CheckoutUnknownVersion) {
  Fixture f;
  PartitionedStore store = PartitionedStore::Build(f.accessor, f.Plan());
  EXPECT_TRUE(store.Checkout(-1).status().IsNotFound());
  EXPECT_TRUE(store.Checkout(10000).status().IsNotFound());
}

TEST(PartitionedStoreTest, MigrationReachesTargetIntelligent) {
  Fixture f;
  Partitioning initial = Partitioning::SinglePartition(f.ds.num_versions());
  PartitionedStore store = PartitionedStore::Build(f.accessor, initial);
  Partitioning target = f.Plan();
  uint64_t work = store.MigrateTo(f.accessor, target, /*intelligent=*/true);
  EXPECT_GT(work, 0u);
  EXPECT_EQ(store.num_partitions(), target.num_partitions);
  // Post-migration checkouts are still exact.
  for (int v : {3, 17, 44}) {
    auto t = store.Checkout(v);
    ASSERT_TRUE(t.ok());
    std::vector<RecordId> rids(t->column(0).int_data().begin(),
                               t->column(0).int_data().end());
    std::sort(rids.begin(), rids.end());
    EXPECT_EQ(rids, f.ds.version(v).records);
  }
  auto costs = ComputeExactCosts(f.view, target);
  EXPECT_EQ(store.TotalDataRecords(), costs.storage);
}

TEST(PartitionedStoreTest, IntelligentMigrationCheaperThanNaive) {
  Fixture f(60, 25);
  Partitioning coarse = LyreSplitWithDelta(f.graph, 0.2).partitioning;
  Partitioning fine = LyreSplitWithDelta(f.graph, 0.35).partitioning;
  PartitionedStore a = PartitionedStore::Build(f.accessor, coarse);
  PartitionedStore b = PartitionedStore::Build(f.accessor, coarse);
  uint64_t intelligent = a.MigrateTo(f.accessor, fine, true);
  uint64_t naive = b.MigrateTo(f.accessor, fine, false);
  EXPECT_LT(intelligent, naive);
  // Both end in the same state.
  EXPECT_EQ(a.TotalDataRecords(), b.TotalDataRecords());
}

// Handcrafted record sets where the optimal matches and the exact patch
// work (deletes + inserts) are computable by hand — exercises the
// record-level patch path directly rather than through aggregate
// comparisons.
TEST(PartitionedStoreTest, IntelligentMigrationPatchPathExactWork) {
  auto range = [](int lo, int hi) {
    std::vector<RecordId> r;
    for (int i = lo; i < hi; ++i) r.push_back(i);
    return r;
  };
  std::vector<std::vector<RecordId>> versions(4);
  versions[0] = range(0, 100);
  versions[1] = range(0, 120);
  versions[2] = range(0, 100);
  for (RecordId r : range(200, 220)) versions[2].push_back(r);
  versions[3] = range(300, 450);

  DatasetAccessor ds;
  ds.num_versions = 4;
  ds.num_attributes = 2;
  ds.records_of = [&versions](int v) -> const std::vector<RecordId>& {
    return versions[v];
  };
  ds.payload_of = [](RecordId rid, std::vector<int64_t>* out) {
    (*out)[0] = rid * 2;
    (*out)[1] = rid + 7;
  };

  // Initial: p0 = {v0,v1,v2} (rids 0..119 + 200..219, 140 records),
  //          p1 = {v3} (300..449, 150 records).
  Partitioning initial;
  initial.partition_of = {0, 0, 0, 1};
  initial.num_partitions = 2;
  PartitionedStore store = PartitionedStore::Build(ds, initial);
  ASSERT_EQ(store.TotalDataRecords(), 140u + 150u);

  // Target: t0 = {v0,v1} (0..119), t1 = {v2,v3} (0..99 + 200..219 +
  // 300..449, 270 records). Greedy matching must pick t0<-p0 (20 deletes,
  // cost 20) before t1<-p1 (120 inserts, cost 120); t1<-p0 (cost 170) and
  // from-scratch builds (cost 120 / 270) are worse.
  Partitioning target;
  target.partition_of = {0, 0, 1, 1};
  target.num_partitions = 2;
  uint64_t work = store.MigrateTo(ds, target, /*intelligent=*/true);
  EXPECT_EQ(work, 20u + 120u);
  EXPECT_EQ(store.TotalDataRecords(), 120u + 270u);
  EXPECT_EQ(store.num_partitions(), 2);

  // Patched partitions still check out exactly, payloads included.
  for (int v = 0; v < 4; ++v) {
    auto t = store.Checkout(v);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    std::vector<RecordId> rids(t->column(0).int_data().begin(),
                               t->column(0).int_data().end());
    std::sort(rids.begin(), rids.end());
    EXPECT_EQ(rids, versions[v]) << "version " << v;
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      int64_t rid = t->column(0).GetInt(r);
      EXPECT_EQ(t->column(1).GetInt(r), rid * 2);
      EXPECT_EQ(t->column(2).GetInt(r), rid + 7);
    }
  }
}

TEST(PartitionedStoreTest, NaiveMigrationWorkEqualsRebuild) {
  Fixture f;
  Partitioning target = f.Plan();
  PartitionedStore store = PartitionedStore::Build(
      f.accessor, Partitioning::SinglePartition(f.ds.num_versions()));
  uint64_t work = store.MigrateTo(f.accessor, target, false);
  EXPECT_EQ(work, store.TotalDataRecords());
}

TEST(PartitionedStoreTest, OnlineAddVersionToExistingPartition) {
  Fixture f;
  const int warm = 40;
  Partitioning partial;
  partial.partition_of.assign(warm, 0);
  partial.num_partitions = 1;
  DatasetAccessor head = f.accessor;
  head.num_versions = warm;
  PartitionedStore store = PartitionedStore::Build(head, partial);
  // Stream the remaining versions into partition 0 or new partitions.
  for (int v = warm; v < f.ds.num_versions(); ++v) {
    auto part = store.AddVersion(f.accessor, v, v % 2 == 0 ? 0 : -1);
    ASSERT_TRUE(part.ok());
    auto t = store.Checkout(v);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->num_rows(), f.ds.version(v).records.size());
  }
  EXPECT_GT(store.num_partitions(), 1);
}

TEST(PartitionedStoreTest, OnlineAddVersionValidation) {
  Fixture f;
  DatasetAccessor head = f.accessor;
  head.num_versions = 10;
  Partitioning partial;
  partial.partition_of.assign(10, 0);
  partial.num_partitions = 1;
  PartitionedStore store = PartitionedStore::Build(head, partial);
  EXPECT_TRUE(store.AddVersion(f.accessor, 12, 0).status().IsInvalidArgument());
  EXPECT_TRUE(store.AddVersion(f.accessor, 10, 7).status().IsInvalidArgument());
}

TEST(PartitionedStoreTest, CuratedDatasetRoundTrip) {
  Fixture f(60, 20, /*curated=*/true);
  PartitionedStore store = PartitionedStore::Build(f.accessor, f.Plan());
  for (int v : {5, 30, 59}) {
    auto t = store.Checkout(v);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->num_rows(), f.ds.version(v).records.size());
  }
}

}  // namespace
}  // namespace orpheus::core
