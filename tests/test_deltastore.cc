#include <gtest/gtest.h>

#include <algorithm>

#include "deltastore/algorithms.h"
#include "deltastore/dedup.h"
#include "deltastore/delta.h"
#include "deltastore/exact.h"
#include "deltastore/repository.h"
#include "deltastore/storage_graph.h"

namespace orpheus::deltastore {
namespace {

// The running example of Fig. 7.1: five versions.
// Materialization <∆ii, Φii>:
//   V1 <10000,10000> V2 <10100,10100> V3 <9700,9700> V4 <9800,9800>
//   V5 <10120,10120>
// Deltas: (V1->V2) <200,200>, (V1->V3) <1000,3000>, (V2->V4) <50,400>,
//   (V2->V5) <800,2500>, (V3->V5) <200,550>.
StorageGraph Fig71Graph() {
  StorageGraph g(5);
  g.SetMaterializationCost(0, {10000, 10000});
  g.SetMaterializationCost(1, {10100, 10100});
  g.SetMaterializationCost(2, {9700, 9700});
  g.SetMaterializationCost(3, {9800, 9800});
  g.SetMaterializationCost(4, {10120, 10120});
  g.AddDelta(0, 1, {200, 200});
  g.AddDelta(0, 2, {1000, 3000});
  g.AddDelta(1, 3, {50, 400});
  g.AddDelta(1, 4, {800, 2500});
  g.AddDelta(2, 4, {200, 550});
  return g;
}

TEST(StorageGraphTest, EvaluateFullyMaterialized) {
  StorageGraph g = Fig71Graph();
  StorageSolution sol;
  sol.parent.assign(5, StorageGraph::kDummy);
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  // Fig. 7.1(ii): total storage 49720; every version recreated directly.
  EXPECT_DOUBLE_EQ(costs->total_storage, 49720.0);
  EXPECT_DOUBLE_EQ(costs->max_recreation, 10120.0);
}

TEST(StorageGraphTest, EvaluateSingleMaterializedChain) {
  // Fig. 7.1(iii): only V1 materialized.
  StorageGraph g = Fig71Graph();
  StorageSolution sol;
  sol.parent = {StorageGraph::kDummy, 0, 0, 1, 2};
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  EXPECT_DOUBLE_EQ(costs->total_storage, 11450.0);
  // R5 via V1 -> V3 -> V5 = 10000 + 3000 + 550 = 13550 (paper's number).
  EXPECT_DOUBLE_EQ(costs->recreation[4], 13550.0);
}

TEST(StorageGraphTest, EvaluateRejectsUnrevealedDeltaAndCycle) {
  StorageGraph g = Fig71Graph();
  StorageSolution bad;
  bad.parent = {StorageGraph::kDummy, 3, 0, 1, 2};  // 3 -> 1 not revealed
  EXPECT_FALSE(EvaluateSolution(g, bad).ok());
  StorageGraph g2(2);
  g2.SetMaterializationCost(0, {1, 1});
  g2.SetMaterializationCost(1, {1, 1});
  g2.AddDelta(0, 1, {1, 1});
  g2.AddDelta(1, 0, {1, 1});
  StorageSolution cyc;
  cyc.parent = {1, 0};
  EXPECT_FALSE(EvaluateSolution(g2, cyc).ok());
}

// Symmetric (undirected) variant of Fig. 7.1 for the Prim-based solver.
StorageGraph Fig71Symmetric() {
  StorageGraph g = Fig71Graph();
  g.AddDelta(1, 0, {200, 200});
  g.AddDelta(2, 0, {1000, 3000});
  g.AddDelta(3, 1, {50, 400});
  g.AddDelta(4, 1, {800, 2500});
  g.AddDelta(4, 2, {200, 550});
  return g;
}

TEST(AlgorithmsTest, MinimumStorageMatchesFig71) {
  // Fig. 7.1(iii) is the minimum-storage solution: 11450. Edmonds handles
  // the directed instance; Prim requires the symmetric (undirected) one.
  {
    StorageSolution sol = MinimumStorageArborescence(Fig71Graph());
    auto costs = EvaluateSolution(Fig71Graph(), sol);
    ASSERT_TRUE(costs.ok());
    EXPECT_DOUBLE_EQ(costs->total_storage, 11450.0);
  }
  {
    // With symmetric deltas, reversed edges unlock a cheaper tree: root at
    // V3 (9700) + {V3-V5 200, V5-V2 800, V2-V4 50, V2-V1 200} = 10950.
    StorageGraph sym = Fig71Symmetric();
    StorageSolution sol = MinimumStorageTree(sym);
    auto costs = EvaluateSolution(sym, sol);
    ASSERT_TRUE(costs.ok());
    EXPECT_DOUBLE_EQ(costs->total_storage, 10950.0);
  }
}

TEST(AlgorithmsTest, PrimEqualsEdmondsOnSymmetricGraphs) {
  FileRepository repo = FileRepository::Generate({});
  StorageGraph g = repo.BuildStorageGraph(/*undirected=*/true,
                                          PhiModel::kProportional, 2);
  auto prim = EvaluateSolution(g, MinimumStorageTree(g));
  auto edmonds = EvaluateSolution(g, MinimumStorageArborescence(g));
  ASSERT_TRUE(prim.ok());
  ASSERT_TRUE(edmonds.ok());
  EXPECT_NEAR(prim->total_storage, edmonds->total_storage, 1e-6);
}

TEST(AlgorithmsTest, ShortestPathTreeMinimizesEveryRecreation) {
  StorageGraph g = Fig71Graph();
  StorageSolution sol = ShortestPathTree(g);
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  // R1 = 10000; R2 = 10000+200 = 10200 < 10100? No: materializing V2 costs
  // 10100 < 10200, so V2 is materialized.
  EXPECT_DOUBLE_EQ(costs->recreation[0], 10000.0);
  EXPECT_DOUBLE_EQ(costs->recreation[1], 10100.0);
  EXPECT_DOUBLE_EQ(costs->recreation[3], 9800.0);
}

TEST(AlgorithmsTest, EdmondsHandlesCycleContraction) {
  // A graph engineered so the greedy in-edge choice creates a 2-cycle that
  // must be contracted: cheap mutual deltas between 0 and 1.
  StorageGraph g(3);
  g.SetMaterializationCost(0, {100, 100});
  g.SetMaterializationCost(1, {90, 90});
  g.SetMaterializationCost(2, {80, 80});
  g.AddDelta(0, 1, {5, 5});
  g.AddDelta(1, 0, {4, 4});
  g.AddDelta(1, 2, {50, 50});
  StorageSolution sol = MinimumStorageArborescence(g);
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  // Optimal: materialize 0 (100), delta 0->1 (5), delta 1->2 (50) = 155,
  // vs materializing 1 (90) + 1->0 (4) + 1->2 (50) = 144.
  EXPECT_DOUBLE_EQ(costs->total_storage, 144.0);
  EXPECT_EQ(sol.parent[0], 1);
  EXPECT_EQ(sol.parent[1], StorageGraph::kDummy);
}

TEST(AlgorithmsTest, LmgTradesStorageForRecreation) {
  StorageGraph g = Fig71Graph();
  StorageSolution mst = MinimumStorageArborescence(g);
  auto mst_costs = EvaluateSolution(g, mst);
  ASSERT_TRUE(mst_costs.ok());
  // Allow 2x the minimal storage.
  StorageSolution lmg = LmgWithStorageBudget(g, 2 * mst_costs->total_storage);
  auto lmg_costs = EvaluateSolution(g, lmg);
  ASSERT_TRUE(lmg_costs.ok());
  EXPECT_LE(lmg_costs->total_storage, 2 * mst_costs->total_storage);
  EXPECT_LT(lmg_costs->sum_recreation, mst_costs->sum_recreation);
}

TEST(AlgorithmsTest, LmgRecreationTargetStopsEarly) {
  StorageGraph g = Fig71Graph();
  auto spt_costs = EvaluateSolution(g, ShortestPathTree(g));
  ASSERT_TRUE(spt_costs.ok());
  double theta = spt_costs->sum_recreation * 1.2;
  StorageSolution sol = LmgWithRecreationTarget(g, theta);
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  EXPECT_LE(costs->sum_recreation, theta);
}

TEST(AlgorithmsTest, MpRespectsRecreationThreshold) {
  StorageGraph g = Fig71Graph();
  // theta = 11000 permits V1's children via deltas but not deep chains.
  StorageSolution sol = MpWithRecreationThreshold(g, 11000);
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  EXPECT_LE(costs->max_recreation, 11000.0);
  // And it beats full materialization on storage.
  EXPECT_LT(costs->total_storage, 49720.0);
}

TEST(AlgorithmsTest, MpWithStorageBudgetFeasible) {
  StorageGraph g = Fig71Graph();
  StorageSolution sol = MpWithStorageBudget(g, 21000);
  auto costs = EvaluateSolution(g, sol);
  ASSERT_TRUE(costs.ok());
  EXPECT_LE(costs->total_storage, 21000.0 + 1e-9);
  // Max recreation better than the min-storage solution's.
  auto mst_costs = EvaluateSolution(g, MinimumStorageArborescence(g));
  EXPECT_LT(costs->max_recreation, mst_costs->max_recreation);
}

TEST(AlgorithmsTest, LastBalancesMstAndSpt) {
  // Undirected Φ = ∆ scenario over a synthetic repository.
  FileRepository repo = FileRepository::Generate({});
  StorageGraph g = repo.BuildStorageGraph(/*undirected=*/true,
                                          PhiModel::kProportional, 2);
  auto mst_costs = EvaluateSolution(g, MinimumStorageTree(g));
  auto spt_costs = EvaluateSolution(g, ShortestPathTree(g));
  ASSERT_TRUE(mst_costs.ok());
  ASSERT_TRUE(spt_costs.ok());
  double alpha = 2.0;
  StorageSolution last = LastTree(g, alpha);
  auto last_costs = EvaluateSolution(g, last);
  ASSERT_TRUE(last_costs.ok());
  // LAST guarantees: every root path within alpha of the shortest path;
  // total weight within (1 + 2/(alpha-1)) of the MST.
  for (int v = 0; v < g.num_versions(); ++v) {
    EXPECT_LE(last_costs->recreation[v],
              alpha * spt_costs->recreation[v] + 1e-6);
  }
  EXPECT_LE(last_costs->total_storage,
            (1 + 2 / (alpha - 1)) * mst_costs->total_storage + 1e-6);
}

TEST(ExactTest, HeuristicsNearOptimalOnSmallInstances) {
  StorageGraph g = Fig71Graph();
  auto mst_costs = EvaluateSolution(g, MinimumStorageArborescence(g));
  ASSERT_TRUE(mst_costs.ok());
  // Problem 7.3 with beta = 1.5x minimal storage.
  double beta = 1.5 * mst_costs->total_storage;
  auto exact = ExactMinSumRecreationStorageBudget(g, beta);
  ASSERT_TRUE(exact.has_value());
  auto exact_costs = EvaluateSolution(g, *exact);
  ASSERT_TRUE(exact_costs.ok());
  auto lmg_costs = EvaluateSolution(g, LmgWithStorageBudget(g, beta));
  ASSERT_TRUE(lmg_costs.ok());
  EXPECT_LE(lmg_costs->total_storage, beta);
  EXPECT_GE(lmg_costs->sum_recreation, exact_costs->sum_recreation - 1e-9);
  // LMG within 2x of optimal on this instance.
  EXPECT_LE(lmg_costs->sum_recreation, 2 * exact_costs->sum_recreation);
}

TEST(ExactTest, MinStorageMaxRecreationAgainstMp) {
  StorageGraph g = Fig71Graph();
  double theta = 11000;
  auto exact = ExactMinStorageMaxRecreation(g, theta);
  ASSERT_TRUE(exact.has_value());
  auto exact_costs = EvaluateSolution(g, *exact);
  auto mp_costs = EvaluateSolution(g, MpWithRecreationThreshold(g, theta));
  ASSERT_TRUE(exact_costs.ok());
  ASSERT_TRUE(mp_costs.ok());
  EXPECT_LE(exact_costs->max_recreation, theta);
  EXPECT_LE(exact_costs->total_storage, mp_costs->total_storage + 1e-9);
}

TEST(ExactTest, InfeasibleThetaReturnsNullopt) {
  StorageGraph g = Fig71Graph();
  EXPECT_FALSE(ExactMinStorageMaxRecreation(g, 10).has_value());
}

TEST(DeltaTest, RoundTripOnEdits) {
  FileContent a;
  for (int i = 0; i < 100; ++i) a.lines.push_back("line " + std::to_string(i));
  FileContent b = a;
  b.lines.erase(b.lines.begin() + 10, b.lines.begin() + 20);
  b.lines.insert(b.lines.begin() + 40, "NEW CONTENT");
  b.lines[55] = "MODIFIED";
  LineDelta d = ComputeLineDelta(a, b);
  EXPECT_EQ(ApplyLineDelta(a, d), b);
  // The delta is far smaller than the file.
  EXPECT_LT(d.StorageBytes(), b.SizeBytes() / 2);
}

TEST(DeltaTest, EmptyAndIdenticalFiles) {
  FileContent empty;
  FileContent a;
  a.lines = {"x", "y"};
  EXPECT_EQ(ApplyLineDelta(empty, ComputeLineDelta(empty, a)), a);
  EXPECT_EQ(ApplyLineDelta(a, ComputeLineDelta(a, empty)), empty);
  LineDelta same = ComputeLineDelta(a, a);
  EXPECT_EQ(ApplyLineDelta(a, same), a);
}

TEST(DeltaTest, AsymmetricCosts) {
  // Deleting many lines is cheap one way, expensive the other (Sec. 7.2.1's
  // "delete all tuples with age > 60" example).
  FileContent big;
  for (int i = 0; i < 1000; ++i) {
    big.lines.push_back("unique row " + std::to_string(i * 7919));
  }
  FileContent small;
  small.lines.assign(big.lines.begin(), big.lines.begin() + 10);
  LineDelta shrink = ComputeLineDelta(big, small);
  LineDelta grow = ComputeLineDelta(small, big);
  EXPECT_LT(shrink.StorageBytes() * 10, grow.StorageBytes());
}

TEST(RepositoryTest, GeneratedShapesAreSane) {
  FileRepository::Config cfg;
  cfg.num_versions = 40;
  cfg.curated = true;
  FileRepository repo = FileRepository::Generate(cfg);
  EXPECT_EQ(repo.num_versions(), 40);
  EXPECT_TRUE(repo.parents(0).empty());
  for (int v = 1; v < repo.num_versions(); ++v) {
    EXPECT_GE(repo.parents(v).size(), 1u);
    for (int p : repo.parents(v)) EXPECT_LT(p, v);
    EXPECT_GT(repo.file(v).SizeBytes(), 0u);
  }
}

TEST(RepositoryTest, SolutionsMaterializeExactContent) {
  FileRepository repo = FileRepository::Generate({});
  StorageGraph g = repo.BuildStorageGraph(false, PhiModel::kProportional, 1);
  for (const StorageSolution& sol :
       {MinimumStorageArborescence(g), ShortestPathTree(g),
        LmgWithStorageBudget(
            g, 2 * EvaluateSolution(g, MinimumStorageArborescence(g))
                       ->total_storage)}) {
    for (int v : {0, 7, 23, repo.num_versions() - 1}) {
      auto content = repo.Materialize(sol, v);
      ASSERT_TRUE(content.ok()) << content.status().ToString();
      EXPECT_EQ(*content, repo.file(v)) << "version " << v;
    }
  }
}

TEST(RepositoryTest, PhiModelsDiffer) {
  FileRepository repo = FileRepository::Generate({});
  StorageGraph prop = repo.BuildStorageGraph(false, PhiModel::kProportional);
  StorageGraph out = repo.BuildStorageGraph(false, PhiModel::kOutputBytes);
  // Under kProportional, Φ == ∆ on deltas; under kOutputBytes they differ.
  const auto& e1 = prop.InEdges(1).front();
  EXPECT_DOUBLE_EQ(e1.cost.storage, e1.cost.recreation);
  const auto& e2 = out.InEdges(1).front();
  EXPECT_NE(e2.cost.storage, e2.cost.recreation);
}

TEST(RepositoryTest, StorageRecreationFrontier) {
  // The headline Chapter 7 shape: MST minimizes storage with the worst
  // recreation; SPT the reverse; LMG lands in between on both axes.
  FileRepository::Config cfg;
  cfg.num_versions = 60;
  FileRepository repo = FileRepository::Generate(cfg);
  StorageGraph g = repo.BuildStorageGraph(false, PhiModel::kProportional, 2);
  auto mst = EvaluateSolution(g, MinimumStorageArborescence(g));
  auto spt = EvaluateSolution(g, ShortestPathTree(g));
  ASSERT_TRUE(mst.ok());
  ASSERT_TRUE(spt.ok());
  EXPECT_LT(mst->total_storage, spt->total_storage);
  EXPECT_GT(mst->sum_recreation, spt->sum_recreation);
  auto lmg = EvaluateSolution(
      g, LmgWithStorageBudget(g, 2 * mst->total_storage));
  ASSERT_TRUE(lmg.ok());
  EXPECT_LE(mst->total_storage, lmg->total_storage);
  EXPECT_LE(lmg->sum_recreation, mst->sum_recreation);
}

TEST(DedupStoreTest, MaterializesExactly) {
  FileRepository repo = FileRepository::Generate({});
  DedupStore store;
  for (int v = 0; v < repo.num_versions(); ++v) {
    store.AddVersion(repo.file(v));
  }
  for (int v : {0, 10, repo.num_versions() - 1}) {
    auto content = store.Materialize(v);
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(*content, repo.file(v)) << "version " << v;
  }
  EXPECT_TRUE(store.Materialize(999).status().IsNotFound());
}

TEST(DedupStoreTest, DeduplicatesSharedContent) {
  // Lightly-edited versions share most chunks.
  FileRepository::Config cfg;
  cfg.base_lines = 800;
  cfg.edits_per_version = 3;
  FileRepository repo = FileRepository::Generate(cfg);
  DedupStore store;
  uint64_t full = 0;
  for (int v = 0; v < repo.num_versions(); ++v) {
    store.AddVersion(repo.file(v));
    full += repo.file(v).SizeBytes();
  }
  // Shared chunks are stored once: well below full materialization.
  EXPECT_LT(store.StorageBytes(), full / 2);
  EXPECT_GT(store.num_unique_chunks(), 0u);
}

TEST(DedupStoreTest, DeltasBeatChunkDedupOnScatteredEdits) {
  // With scattered per-version edits most chunks are disturbed, while
  // line-level deltas stay tiny — the Chapter 7 motivation for delta
  // encoding over block deduplication.
  FileRepository repo = FileRepository::Generate({});
  DedupStore store;
  for (int v = 0; v < repo.num_versions(); ++v) {
    store.AddVersion(repo.file(v));
  }
  StorageGraph g = repo.BuildStorageGraph(false, PhiModel::kProportional);
  auto mst = EvaluateSolution(g, MinimumStorageArborescence(g));
  ASSERT_TRUE(mst.ok());
  EXPECT_LT(mst->total_storage, 0.5 * static_cast<double>(
                                          store.StorageBytes()));
}

TEST(DedupStoreTest, RecreationAlwaysFullSize) {
  // The baseline has no storage/recreation knob: every retrieval reads the
  // whole version.
  FileRepository repo = FileRepository::Generate({});
  DedupStore store;
  for (int v = 0; v < repo.num_versions(); ++v) {
    store.AddVersion(repo.file(v));
  }
  int last = repo.num_versions() - 1;
  EXPECT_GE(store.RecreationCost(last),
            static_cast<double>(repo.file(last).SizeBytes()));
}

TEST(DedupStoreTest, InsertionOnlyDisturbsNeighbouringChunks) {
  FileContent a;
  for (int i = 0; i < 400; ++i) {
    a.lines.push_back("stable line " + std::to_string(i));
  }
  FileContent b = a;
  b.lines.insert(b.lines.begin() + 200, "INSERTED");
  DedupStore store;
  store.AddVersion(a);
  size_t before = store.num_unique_chunks();
  store.AddVersion(b);
  size_t added = store.num_unique_chunks() - before;
  // Content-defined chunking: the insertion adds only a couple of chunks.
  EXPECT_LE(added, 3u);
}

}  // namespace
}  // namespace orpheus::deltastore
