#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "benchdata/generator.h"

namespace orpheus::benchdata {
namespace {

TEST(GeneratorTest, RootVersionHasBaseRecords) {
  GeneratorConfig cfg = SciConfig("SCI_T", 10, 2, 50);
  VersionedDataset ds = VersionedDataset::Generate(cfg);
  ASSERT_EQ(ds.num_versions(), 10);
  EXPECT_TRUE(ds.version(0).parents.empty());
  EXPECT_EQ(ds.version(0).records.size(), 500u);  // 10 * I
}

TEST(GeneratorTest, RecordsSortedAndUnique) {
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 50, 5, 40));
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& recs = ds.version(v).records;
    EXPECT_TRUE(std::is_sorted(recs.begin(), recs.end()));
    EXPECT_EQ(std::unordered_set<int64_t>(recs.begin(), recs.end()).size(),
              recs.size());
  }
}

TEST(GeneratorTest, SciIsTree) {
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 100, 10, 30));
  int roots = 0;
  for (int v = 0; v < ds.num_versions(); ++v) {
    EXPECT_LE(ds.version(v).parents.size(), 1u);
    if (ds.version(v).parents.empty()) ++roots;
    for (int p : ds.version(v).parents) EXPECT_LT(p, v);
  }
  EXPECT_EQ(roots, 1);
}

TEST(GeneratorTest, CurHasMerges) {
  VersionedDataset ds =
      VersionedDataset::Generate(CurConfig("CUR_T", 200, 20, 30));
  int merges = 0;
  for (int v = 0; v < ds.num_versions(); ++v) {
    if (ds.version(v).parents.size() > 1) ++merges;
  }
  EXPECT_GT(merges, 0);
}

TEST(GeneratorTest, MergePreservesPrimaryKeyUniqueness) {
  VersionedDataset ds =
      VersionedDataset::Generate(CurConfig("CUR_T", 150, 15, 40));
  for (int v = 0; v < ds.num_versions(); ++v) {
    std::unordered_set<int64_t> pks;
    for (int64_t rid : ds.version(v).records) {
      EXPECT_TRUE(pks.insert(ds.PrimaryKeyOf(rid)).second)
          << "duplicate PK in version " << v;
    }
  }
}

TEST(GeneratorTest, UpdatesPreservePrimaryKey) {
  // An updated record carries the PK of the record it replaced: child and
  // parent versions must cover a near-identical PK set.
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 20, 2, 50));
  const auto& child = ds.version(1);
  ASSERT_EQ(child.parents.size(), 1u);
  const auto& parent = ds.version(child.parents[0]);
  std::unordered_set<int64_t> parent_pks;
  for (int64_t rid : parent.records) parent_pks.insert(ds.PrimaryKeyOf(rid));
  int64_t shared_pk = 0;
  for (int64_t rid : child.records) {
    shared_pk += parent_pks.count(ds.PrimaryKeyOf(rid));
  }
  // Updates dominate: most PKs survive even though rids change.
  EXPECT_GT(shared_pk, static_cast<int64_t>(parent.records.size() * 8 / 10));
}

TEST(GeneratorTest, PayloadDeterministicAndPkFirst) {
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 5, 1, 20));
  auto p1 = ds.RecordPayload(7);
  auto p2 = ds.RecordPayload(7);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(static_cast<int>(p1.size()), ds.num_attributes());
  EXPECT_EQ(p1[0], ds.PrimaryKeyOf(7));
  EXPECT_NE(ds.RecordPayload(8), p1);
}

TEST(GeneratorTest, CommonRecordsMatchesBruteForce) {
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 30, 3, 30));
  const auto& a = ds.version(3).records;
  std::unordered_set<int64_t> sa(a.begin(), a.end());
  int64_t brute = 0;
  for (int64_t rid : ds.version(7).records) brute += sa.count(rid);
  EXPECT_EQ(ds.CommonRecords(3, 7), brute);
}

TEST(GeneratorTest, BipartiteEdgeCount) {
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 12, 2, 25));
  uint64_t total = 0;
  for (int v = 0; v < ds.num_versions(); ++v) {
    total += ds.version(v).records.size();
  }
  EXPECT_EQ(ds.num_bipartite_edges(), total);
}

TEST(GeneratorTest, ParentChildShareMostRecords) {
  VersionedDataset ds =
      VersionedDataset::Generate(SciConfig("SCI_T", 40, 4, 20));
  for (int v = 1; v < ds.num_versions(); ++v) {
    for (int p : ds.version(v).parents) {
      int64_t common = ds.CommonRecords(p, v);
      // Each commit touches at most I records, so overlap is large.
      EXPECT_GT(common, 0);
    }
  }
}

TEST(GeneratorTest, CurLargerThanSci) {
  auto sci = VersionedDataset::Generate(SciConfig("S", 50, 5, 30));
  auto cur = VersionedDataset::Generate(CurConfig("C", 50, 5, 30));
  // CUR's base multiplier makes average version size ~3x larger.
  EXPECT_GT(cur.num_bipartite_edges(), 2 * sci.num_bipartite_edges());
}

TEST(GeneratorTest, SeedChangesOutput) {
  auto a = VersionedDataset::Generate(SciConfig("S", 20, 3, 20, 1));
  auto b = VersionedDataset::Generate(SciConfig("S", 20, 3, 20, 2));
  EXPECT_NE(a.version(5).records, b.version(5).records);
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  auto a = VersionedDataset::Generate(CurConfig("C", 30, 4, 20, 9));
  auto b = VersionedDataset::Generate(CurConfig("C", 30, 4, 20, 9));
  for (int v = 0; v < a.num_versions(); ++v) {
    EXPECT_EQ(a.version(v).records, b.version(v).records);
    EXPECT_EQ(a.version(v).parents, b.version(v).parents);
  }
}

}  // namespace
}  // namespace orpheus::benchdata
