#include <gtest/gtest.h>

#include <algorithm>

#include "core/cvd.h"
#include "minidb/database.h"

namespace orpheus::core {
namespace {

using minidb::Database;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

Table InteractionTable() {
  Table t("interaction", Schema({{"protein1", ValueType::kString},
                                 {"protein2", ValueType::kString},
                                 {"coexpression", ValueType::kInt64}}));
  EXPECT_TRUE(t.InsertRow({Value("ENSP273047"), Value("ENSP261890"),
                           Value(int64_t{0})})
                  .ok());
  EXPECT_TRUE(t.InsertRow({Value("ENSP273047"), Value("ENSP235932"),
                           Value(int64_t{87})})
                  .ok());
  EXPECT_TRUE(t.InsertRow({Value("ENSP300413"), Value("ENSP274242"),
                           Value(int64_t{164})})
                  .ok());
  return t;
}

Cvd::Options PkOptions() {
  Cvd::Options opt;
  opt.primary_key = {"protein1", "protein2"};
  return opt;
}

class CvdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cvd = Cvd::Init("Interaction", InteractionTable(), PkOptions());
    ASSERT_TRUE(cvd.ok()) << cvd.status().ToString();
    cvd_ = cvd.MoveValueOrDie();
  }

  std::unique_ptr<Cvd> cvd_;
  Database staging_;
};

TEST_F(CvdTest, InitCreatesVersionOne) {
  EXPECT_EQ(cvd_->num_versions(), 1);
  EXPECT_EQ(cvd_->latest(), 1);
  auto rids = cvd_->VersionRecords(1);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 3u);
  EXPECT_EQ(cvd_->version_metadata(1).num_records, 3);
}

TEST_F(CvdTest, InitRejectsBadPrimaryKey) {
  Cvd::Options opt;
  opt.primary_key = {"nonexistent"};
  EXPECT_TRUE(Cvd::Init("X", InteractionTable(), opt)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CvdTest, CheckoutMaterializesStagingTable) {
  ASSERT_TRUE(cvd_->Checkout({1}, "my_work", &staging_).ok());
  Table* t = staging_.GetTable("my_work");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->schema().column(0).name, "_rid");
  EXPECT_EQ(cvd_->StagedTables(), std::vector<std::string>{"my_work"});
  // Duplicate checkout name is rejected.
  EXPECT_TRUE(cvd_->Checkout({1}, "my_work", &staging_).IsAlreadyExists());
}

TEST_F(CvdTest, CommitUnchangedSharesAllRecords) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  auto v2 = cvd_->Commit("w", &staging_, "no changes");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, 2);
  // No new records were created; graph edge carries full weight.
  EXPECT_EQ(cvd_->graph().EdgeWeight(0, 1), 3);
  EXPECT_EQ(*cvd_->VersionRecords(2), *cvd_->VersionRecords(1));
  // Staging table dropped after commit.
  EXPECT_EQ(staging_.GetTable("w"), nullptr);
  EXPECT_TRUE(cvd_->StagedTables().empty());
}

TEST_F(CvdTest, CommitDetectsModifiedRecords) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  // Modify coexpression of the first row: same rid, new payload.
  Row row = t->GetRow(0);
  row[3] = Value(int64_t{999});
  t->SetRow(0, row);
  auto v2 = cvd_->Commit("w", &staging_, "edit");
  ASSERT_TRUE(v2.ok());
  // Two records survive, one is new: weight with parent is 2.
  EXPECT_EQ(cvd_->graph().EdgeWeight(0, 1), 2);
  auto d = cvd_->VDiff(2, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
}

TEST_F(CvdTest, CommitDetectsInsertedAndDeletedRecords) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  // Delete row 2 and insert a brand-new record (rid NULL).
  t->DeleteRows({2});
  Row fresh = {Value::Null(), Value("NEW1"), Value("NEW2"),
               Value(int64_t{50})};
  t->AppendRowUnchecked(fresh);
  auto v2 = cvd_->Commit("w", &staging_, "insert+delete");
  ASSERT_TRUE(v2.ok());
  auto rids2 = cvd_->VersionRecords(2);
  ASSERT_TRUE(rids2.ok());
  EXPECT_EQ(rids2->size(), 3u);
  EXPECT_EQ(cvd_->graph().EdgeWeight(0, 1), 2);  // two kept
}

TEST_F(CvdTest, CommitEnforcesPrimaryKey) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  // Duplicate the PK of row 0 in a new row.
  Row dup = {Value::Null(), Value("ENSP273047"), Value("ENSP261890"),
             Value(int64_t{123})};
  t->AppendRowUnchecked(dup);
  EXPECT_TRUE(
      cvd_->Commit("w", &staging_, "dup").status().IsConstraintViolation());
}

TEST_F(CvdTest, CommitWithoutCheckoutRejected) {
  EXPECT_TRUE(cvd_->Commit("ghost", &staging_, "x").status().IsNotFound());
}

TEST_F(CvdTest, BranchAndMergeWithPrecedence) {
  // Branch A: modify record 0. Branch B: modify record 1.
  ASSERT_TRUE(cvd_->Checkout({1}, "a", &staging_).ok());
  Table* ta = staging_.GetTable("a");
  Row row_a = ta->GetRow(0);
  row_a[3] = Value(int64_t{111});
  ta->SetRow(0, row_a);
  ASSERT_TRUE(cvd_->Commit("a", &staging_, "branch a").ok());  // v2

  ASSERT_TRUE(cvd_->Checkout({1}, "b", &staging_).ok());
  Table* tb = staging_.GetTable("b");
  Row row_b = tb->GetRow(0);
  row_b[3] = Value(int64_t{222});
  tb->SetRow(0, row_b);
  ASSERT_TRUE(cvd_->Commit("b", &staging_, "branch b").ok());  // v3

  // Merge checkout: v2 has precedence over v3 on PK conflicts.
  ASSERT_TRUE(cvd_->Checkout({2, 3}, "m", &staging_).ok());
  Table* tm = staging_.GetTable("m");
  EXPECT_EQ(tm->num_rows(), 3u);  // 3 distinct PKs
  bool saw_111 = false;
  bool saw_222 = false;
  for (uint32_t r = 0; r < tm->num_rows(); ++r) {
    int64_t co = tm->column(3).GetInt(r);
    saw_111 |= co == 111;
    saw_222 |= co == 222;
  }
  EXPECT_TRUE(saw_111);
  EXPECT_FALSE(saw_222) << "precedence order must drop v3's conflict";

  auto v4 = cvd_->Commit("m", &staging_, "merge");
  ASSERT_TRUE(v4.ok());
  EXPECT_EQ(*v4, 4);
  EXPECT_EQ(cvd_->Parents(4), (std::vector<VersionId>{2, 3}));
  EXPECT_EQ(cvd_->Ancestors(4), (std::vector<VersionId>{1, 2, 3}));
}

TEST_F(CvdTest, DiffReturnsExclusiveRecords) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  Row row = t->GetRow(1);
  row[3] = Value(int64_t{4242});
  t->SetRow(1, row);
  ASSERT_TRUE(cvd_->Commit("w", &staging_, "edit").ok());
  auto diff = cvd_->Diff(2, 1);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->num_rows(), 1u);
  EXPECT_EQ(diff->GetValue(0, 3).AsInt(), 4242);
  auto diff_rev = cvd_->Diff(1, 2);
  ASSERT_TRUE(diff_rev.ok());
  EXPECT_EQ(diff_rev->num_rows(), 1u);
  EXPECT_EQ(diff_rev->GetValue(0, 3).AsInt(), 87);
}

TEST_F(CvdTest, VIntersect) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  Row row = t->GetRow(0);
  row[3] = Value(int64_t{5});
  t->SetRow(0, row);
  ASSERT_TRUE(cvd_->Commit("w", &staging_, "edit").ok());
  auto common = cvd_->VIntersect({1, 2});
  ASSERT_TRUE(common.ok());
  EXPECT_EQ(common->size(), 2u);
}

TEST_F(CvdTest, SchemaEvolutionOnCommit) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  // Add a new attribute and fill it.
  ASSERT_TRUE(t->AddColumn({"neighborhood", ValueType::kInt64}).ok());
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    Row row = t->GetRow(r);
    row[4] = Value(int64_t{r});
    t->SetRow(r, row);
  }
  auto v2 = cvd_->Commit("w", &staging_, "add attribute");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  // The CVD schema evolved; the attribute table logged the new attribute.
  EXPECT_EQ(cvd_->backend()->data_schema().num_columns(), 4u);
  EXPECT_EQ(cvd_->attribute_table().size(), 4u);
  // All records are new (every payload changed by the added value).
  auto mat = cvd_->backend()->Checkout(1, "m");
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->num_columns(), 5u);
}

TEST_F(CvdTest, SchemaEvolutionTypeWidening) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  Table* t = staging_.GetTable("w");
  ASSERT_TRUE(t->WidenColumn(3, ValueType::kDouble).ok());
  auto v2 = cvd_->Commit("w", &staging_, "int -> decimal");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(cvd_->backend()->data_schema().column(2).type,
            ValueType::kDouble);
  // A new attribute-table entry was created for the widened column.
  EXPECT_EQ(cvd_->attribute_table().size(), 4u);
  // Unchanged values (modulo the widen) are recognized: records survive.
  EXPECT_EQ(cvd_->graph().EdgeWeight(0, 1), 3);
}

TEST_F(CvdTest, MetadataTracksCommits) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w", &staging_).ok());
  ASSERT_TRUE(cvd_->Commit("w", &staging_, "msg two", "alice").ok());
  const auto& meta = cvd_->version_metadata(2);
  EXPECT_EQ(meta.message, "msg two");
  EXPECT_EQ(meta.author, "alice");
  EXPECT_EQ(meta.parents, std::vector<VersionId>{1});
  EXPECT_GT(meta.commit_time, meta.checkout_time);
}

TEST_F(CvdTest, CheckoutUnknownVersion) {
  EXPECT_TRUE(cvd_->Checkout({7}, "w", &staging_).IsNotFound());
  EXPECT_TRUE(cvd_->Checkout({}, "w", &staging_).IsInvalidArgument());
}

class CvdAllModelsTest : public ::testing::TestWithParam<DataModelType> {};

TEST_P(CvdAllModelsTest, FullRoundTrip) {
  Cvd::Options opt = PkOptions();
  opt.model = GetParam();
  auto cvd = Cvd::Init("Interaction", InteractionTable(), opt);
  ASSERT_TRUE(cvd.ok());
  Database staging;
  ASSERT_TRUE((*cvd)->Checkout({1}, "w", &staging).ok());
  Table* t = staging.GetTable("w");
  Row row = t->GetRow(0);
  row[3] = Value(int64_t{12345});
  t->SetRow(0, row);
  auto v2 = (*cvd)->Commit("w", &staging, "edit");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE((*cvd)->Checkout({2}, "verify", &staging).ok());
  Table* check = staging.GetTable("verify");
  bool found = false;
  for (uint32_t r = 0; r < check->num_rows(); ++r) {
    if (check->column(3).GetInt(r) == 12345) found = true;
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CvdAllModelsTest,
    ::testing::Values(DataModelType::kATablePerVersion,
                      DataModelType::kCombinedTable,
                      DataModelType::kSplitByVlist,
                      DataModelType::kSplitByRlist,
                      DataModelType::kDeltaBased));

}  // namespace
}  // namespace orpheus::core
