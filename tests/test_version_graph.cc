#include <gtest/gtest.h>

#include "core/version_graph.h"

namespace orpheus::core {
namespace {

// Builds the paper's Fig. 4.2 graph: v1 -> {v2, v3}, v2+v3 -> v4 (merge).
// Node sizes: v1=3, v2=3, v3=4, v4=6; weights: (v1,v2)=2, (v1,v3)=1,
// (v2,v4)=3, (v3,v4)=4.
VersionGraph Fig42Graph() {
  VersionGraph g;
  g.AddVersion({}, {}, 3);          // v1 = index 0
  g.AddVersion({0}, {2}, 3);        // v2 = index 1
  g.AddVersion({0}, {1}, 4);        // v3 = index 2
  g.AddVersion({1, 2}, {3, 4}, 6);  // v4 = index 3
  return g;
}

TEST(VersionGraphTest, ParentsAndChildren) {
  VersionGraph g = Fig42Graph();
  EXPECT_TRUE(g.parents(0).empty());
  EXPECT_EQ(g.children(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.parents(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.num_records(3), 6);
}

TEST(VersionGraphTest, EdgeWeight) {
  VersionGraph g = Fig42Graph();
  EXPECT_EQ(g.EdgeWeight(0, 1), 2);
  EXPECT_EQ(g.EdgeWeight(2, 3), 4);
  EXPECT_EQ(g.EdgeWeight(1, 0), -1);  // no such edge
}

TEST(VersionGraphTest, AncestorsDescendants) {
  VersionGraph g = Fig42Graph();
  EXPECT_EQ(g.Ancestors(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(g.Ancestors(3, 1), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.Descendants(0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(g.Descendants(1), (std::vector<int>{3}));
  EXPECT_TRUE(g.Ancestors(0).empty());
}

TEST(VersionGraphTest, Neighborhood) {
  VersionGraph g = Fig42Graph();
  EXPECT_EQ(g.Neighborhood(1, 1), (std::vector<int>{0, 3}));
  EXPECT_EQ(g.Neighborhood(1, 2), (std::vector<int>{0, 2, 3}));
}

TEST(VersionGraphTest, TopologicalLevels) {
  VersionGraph g = Fig42Graph();
  auto levels = g.TopologicalLevels();
  EXPECT_EQ(levels[0], 1);
  EXPECT_EQ(levels[1], 2);
  EXPECT_EQ(levels[2], 2);
  EXPECT_EQ(levels[3], 3);
}

TEST(VersionGraphTest, IsDag) {
  VersionGraph g = Fig42Graph();
  EXPECT_TRUE(g.IsDag());
  VersionGraph chain;
  chain.AddVersion({}, {}, 1);
  chain.AddVersion({0}, {1}, 1);
  EXPECT_FALSE(chain.IsDag());
}

TEST(VersionGraphTest, ToTreeKeepsHeaviestEdge) {
  // Sec. 5.3.1's example: v4 keeps the edge from v3 (weight 4 > 3) and
  // conceptually duplicates 6 - 4 = 2 records (Fig. 5.5's r̂2, r̂4).
  VersionGraph g = Fig42Graph();
  int64_t dup = 0;
  auto tree = g.ToTree(&dup);
  EXPECT_EQ(tree[0], -1);
  EXPECT_EQ(tree[1], 0);
  EXPECT_EQ(tree[2], 0);
  EXPECT_EQ(tree[3], 2);
  EXPECT_EQ(dup, 2);
}

TEST(VersionGraphTest, TotalBipartiteEdges) {
  VersionGraph g = Fig42Graph();
  EXPECT_EQ(g.TotalBipartiteEdges(), 16u);  // 3+3+4+6
}

TEST(VersionGraphTest, DeepChainAncestors) {
  VersionGraph g;
  g.AddVersion({}, {}, 10);
  for (int i = 1; i < 100; ++i) g.AddVersion({i - 1}, {9}, 10);
  EXPECT_EQ(g.Ancestors(99).size(), 99u);
  EXPECT_EQ(g.Ancestors(99, 3), (std::vector<int>{96, 97, 98}));
  EXPECT_EQ(g.TopologicalLevels()[99], 100);
}

}  // namespace
}  // namespace orpheus::core
