#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace orpheus::failpoint {
namespace {

/// A function with a failpoint site, as production code would have one.
Status GuardedOperation() {
  ORPHEUS_FAILPOINT("test.failpoint.site");
  return Status::OK();
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

#if ORPHEUS_FAILPOINTS_ENABLED

TEST_F(FailpointTest, UnarmedSiteIsFree) {
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(HitCount("test.failpoint.site"), 0u);
}

TEST_F(FailpointTest, ErrorModeFiresEveryHit) {
  Arm("test.failpoint.site", Action::kError);
  EXPECT_TRUE(AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status s = GuardedOperation();
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.IsInternal()) << s.ToString();
    EXPECT_NE(s.message().find("test.failpoint.site"), std::string::npos)
        << s.ToString();
  }
  EXPECT_EQ(HitCount("test.failpoint.site"), 3u);
  Disarm("test.failpoint.site");
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, TriggerAtNthHit) {
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/3);
  EXPECT_TRUE(GuardedOperation().ok());   // hit 1
  EXPECT_TRUE(GuardedOperation().ok());   // hit 2
  EXPECT_FALSE(GuardedOperation().ok());  // hit 3 fires
  EXPECT_FALSE(GuardedOperation().ok());  // and keeps firing
  EXPECT_EQ(HitCount("test.failpoint.site"), 4u);
}

TEST_F(FailpointTest, OnceExpiresAfterFiring) {
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/2, /*once=*/true);
  EXPECT_TRUE(GuardedOperation().ok());   // hit 1
  EXPECT_FALSE(GuardedOperation().ok());  // hit 2 fires
  EXPECT_TRUE(GuardedOperation().ok());   // expired: passes again
  EXPECT_TRUE(GuardedOperation().ok());
  auto infos = List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_TRUE(infos[0].expired);
  EXPECT_EQ(infos[0].hits, 4u);
}

TEST_F(FailpointTest, ListReportsArmedState) {
  Arm("test.failpoint.site", Action::kAbort, /*trigger_at=*/7);
  auto infos = List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "test.failpoint.site");
  EXPECT_EQ(infos[0].action, Action::kAbort);
  EXPECT_EQ(infos[0].trigger_at, 7);
  EXPECT_FALSE(infos[0].once);
  // Never reached -> abort never fires; we are still alive to check that.
  EXPECT_EQ(infos[0].hits, 0u);
}

TEST_F(FailpointTest, RearmResetsCount) {
  Arm("test.failpoint.site", Action::kError);
  EXPECT_FALSE(GuardedOperation().ok());
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/2);
  EXPECT_TRUE(GuardedOperation().ok());  // count restarted
  EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecSingle) {
  ASSERT_TRUE(ArmFromSpec("test.failpoint.site=error").ok());
  EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecNthAndOnce) {
  ASSERT_TRUE(ArmFromSpec("test.failpoint.site=error:2:once").ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecMultipleEntries) {
  ASSERT_TRUE(
      ArmFromSpec("a.one=error;b.two=abort:3,test.failpoint.site=error")
          .ok());
  auto infos = List();
  EXPECT_EQ(infos.size(), 3u);
  EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecOffDisarms) {
  Arm("test.failpoint.site", Action::kError);
  ASSERT_TRUE(ArmFromSpec("test.failpoint.site=off").ok());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecRejectsMalformedInput) {
  EXPECT_TRUE(ArmFromSpec("noequalsign").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=explode").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:0").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:notanumber").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:1:sometimes").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("=error").IsInvalidArgument());
  EXPECT_FALSE(AnyArmed()) << "malformed spec must not leave sites armed";
}

TEST_F(FailpointTest, ArmFromSpecEmptyIsOk) {
  EXPECT_TRUE(ArmFromSpec("").ok());
  EXPECT_TRUE(ArmFromSpec(" ; , ").ok());
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, ProbabilisticFiringIsSeedDeterministic) {
  // p=0.5: each eligible hit draws from the registry RNG. Two runs under
  // the same seed must fire on exactly the same hit ordinals — reproducible
  // chaos is the whole point of ORPHEUS_FAILPOINT_SEED.
  auto run = [](uint64_t seed) {
    Reseed(seed);
    Arm("test.failpoint.site", Action::kError, /*trigger_at=*/1,
        /*once=*/false, /*probability=*/0.5);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!GuardedOperation().ok());
    Disarm("test.failpoint.site");
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  EXPECT_EQ(a, b);
  const size_t fires = static_cast<size_t>(
      std::count(a.begin(), a.end(), true));
  // Loose two-sided bound: 64 draws at p=0.5 landing outside [10, 54]
  // would mean the draw is not actually probabilistic.
  EXPECT_GE(fires, 10u);
  EXPECT_LE(fires, 54u);
  // A different seed yields a different firing sequence (with probability
  // 1 - 2^-64; a flake here means the seed is being ignored).
  EXPECT_NE(run(43), a);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresButCountsHits) {
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/1,
      /*once=*/false, /*probability=*/0.0);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(HitCount("test.failpoint.site"), 20u);
}

TEST_F(FailpointTest, DelayActionStallsThenProceeds) {
  Arm("test.failpoint.site", Action::kDelay, /*trigger_at=*/1,
      /*once=*/true, /*probability=*/1.0, /*delay_ms=*/120);
  Timer timer;
  EXPECT_TRUE(GuardedOperation().ok());  // slow, but NOT a failure
  EXPECT_GE(timer.ElapsedMillis(), 100.0);
  EXPECT_EQ(HitCount("test.failpoint.site"), 1u);
  timer.Restart();
  EXPECT_TRUE(GuardedOperation().ok());  // once: expired, back to fast
  EXPECT_LT(timer.ElapsedMillis(), 100.0);
}

TEST_F(FailpointTest, ArmFromSpecProbabilityAndDelayOptions) {
  ASSERT_TRUE(
      ArmFromSpec("test.failpoint.site=delay:25ms:p0.25;x.other=error:p1.0")
          .ok());
  auto infos = List();
  ASSERT_EQ(infos.size(), 2u);
  for (const auto& info : infos) {
    if (info.name == "test.failpoint.site") {
      EXPECT_EQ(info.action, Action::kDelay);
      EXPECT_EQ(info.delay_ms, 25);
      EXPECT_DOUBLE_EQ(info.probability, 0.25);
    } else {
      EXPECT_EQ(info.name, "x.other");
      EXPECT_EQ(info.action, Action::kError);
      EXPECT_DOUBLE_EQ(info.probability, 1.0);
    }
  }
}

TEST_F(FailpointTest, ArmFromSpecRejectsBadProbabilityAndDelay) {
  EXPECT_TRUE(ArmFromSpec("x=error:p1.5").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:p-0.1").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:pmaybe").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:p").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=delay:-5ms").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=delay:12sm").IsInvalidArgument());
  EXPECT_FALSE(AnyArmed()) << "malformed spec must not leave sites armed";
}

TEST_F(FailpointTest, AbortModeTerminatesTheProcess) {
  Arm("test.failpoint.site", Action::kAbort);
  // _exit(134): the conventional SIGABRT-style exit, minus signal cleanup.
  EXPECT_EXIT({ ORPHEUS_IGNORE_ERROR(GuardedOperation()); },
              ::testing::ExitedWithCode(134), "");
}

#else  // !ORPHEUS_FAILPOINTS_ENABLED

TEST_F(FailpointTest, SitesCompileOut) {
  Arm("test.failpoint.site", Action::kError);
  // The macro expands to nothing: arming has no effect on execution.
  EXPECT_TRUE(GuardedOperation().ok());
}

#endif  // ORPHEUS_FAILPOINTS_ENABLED

}  // namespace
}  // namespace orpheus::failpoint
