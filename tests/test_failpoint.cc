#include "common/failpoint.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace orpheus::failpoint {
namespace {

/// A function with a failpoint site, as production code would have one.
Status GuardedOperation() {
  ORPHEUS_FAILPOINT("test.failpoint.site");
  return Status::OK();
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

#if ORPHEUS_FAILPOINTS_ENABLED

TEST_F(FailpointTest, UnarmedSiteIsFree) {
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(HitCount("test.failpoint.site"), 0u);
}

TEST_F(FailpointTest, ErrorModeFiresEveryHit) {
  Arm("test.failpoint.site", Action::kError);
  EXPECT_TRUE(AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status s = GuardedOperation();
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.IsInternal()) << s.ToString();
    EXPECT_NE(s.message().find("test.failpoint.site"), std::string::npos)
        << s.ToString();
  }
  EXPECT_EQ(HitCount("test.failpoint.site"), 3u);
  Disarm("test.failpoint.site");
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, TriggerAtNthHit) {
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/3);
  EXPECT_TRUE(GuardedOperation().ok());   // hit 1
  EXPECT_TRUE(GuardedOperation().ok());   // hit 2
  EXPECT_FALSE(GuardedOperation().ok());  // hit 3 fires
  EXPECT_FALSE(GuardedOperation().ok());  // and keeps firing
  EXPECT_EQ(HitCount("test.failpoint.site"), 4u);
}

TEST_F(FailpointTest, OnceExpiresAfterFiring) {
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/2, /*once=*/true);
  EXPECT_TRUE(GuardedOperation().ok());   // hit 1
  EXPECT_FALSE(GuardedOperation().ok());  // hit 2 fires
  EXPECT_TRUE(GuardedOperation().ok());   // expired: passes again
  EXPECT_TRUE(GuardedOperation().ok());
  auto infos = List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_TRUE(infos[0].expired);
  EXPECT_EQ(infos[0].hits, 4u);
}

TEST_F(FailpointTest, ListReportsArmedState) {
  Arm("test.failpoint.site", Action::kAbort, /*trigger_at=*/7);
  auto infos = List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "test.failpoint.site");
  EXPECT_EQ(infos[0].action, Action::kAbort);
  EXPECT_EQ(infos[0].trigger_at, 7);
  EXPECT_FALSE(infos[0].once);
  // Never reached -> abort never fires; we are still alive to check that.
  EXPECT_EQ(infos[0].hits, 0u);
}

TEST_F(FailpointTest, RearmResetsCount) {
  Arm("test.failpoint.site", Action::kError);
  EXPECT_FALSE(GuardedOperation().ok());
  Arm("test.failpoint.site", Action::kError, /*trigger_at=*/2);
  EXPECT_TRUE(GuardedOperation().ok());  // count restarted
  EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecSingle) {
  ASSERT_TRUE(ArmFromSpec("test.failpoint.site=error").ok());
  EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecNthAndOnce) {
  ASSERT_TRUE(ArmFromSpec("test.failpoint.site=error:2:once").ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecMultipleEntries) {
  ASSERT_TRUE(
      ArmFromSpec("a.one=error;b.two=abort:3,test.failpoint.site=error")
          .ok());
  auto infos = List();
  EXPECT_EQ(infos.size(), 3u);
  EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecOffDisarms) {
  Arm("test.failpoint.site", Action::kError);
  ASSERT_TRUE(ArmFromSpec("test.failpoint.site=off").ok());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecRejectsMalformedInput) {
  EXPECT_TRUE(ArmFromSpec("noequalsign").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=explode").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:0").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:notanumber").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("x=error:1:sometimes").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpec("=error").IsInvalidArgument());
  EXPECT_FALSE(AnyArmed()) << "malformed spec must not leave sites armed";
}

TEST_F(FailpointTest, ArmFromSpecEmptyIsOk) {
  EXPECT_TRUE(ArmFromSpec("").ok());
  EXPECT_TRUE(ArmFromSpec(" ; , ").ok());
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, AbortModeTerminatesTheProcess) {
  Arm("test.failpoint.site", Action::kAbort);
  // _exit(134): the conventional SIGABRT-style exit, minus signal cleanup.
  EXPECT_EXIT({ ORPHEUS_IGNORE_ERROR(GuardedOperation()); },
              ::testing::ExitedWithCode(134), "");
}

#else  // !ORPHEUS_FAILPOINTS_ENABLED

TEST_F(FailpointTest, SitesCompileOut) {
  Arm("test.failpoint.site", Action::kError);
  // The macro expands to nothing: arming has no effect on execution.
  EXPECT_TRUE(GuardedOperation().ok());
}

#endif  // ORPHEUS_FAILPOINTS_ENABLED

}  // namespace
}  // namespace orpheus::failpoint
