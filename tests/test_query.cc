#include <gtest/gtest.h>

#include "core/cvd.h"
#include "core/query.h"
#include "minidb/database.h"

namespace orpheus::core {
namespace {

using minidb::Database;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

// Interaction CVD with two versions: v1 = 4 base records, v2 edits one
// coexpression value to 90.
std::unique_ptr<Cvd> MakeCvd(Database* staging) {
  Table t("interaction", Schema({{"protein1", ValueType::kString},
                                 {"protein2", ValueType::kString},
                                 {"coexpression", ValueType::kInt64}}));
  auto add = [&t](const char* a, const char* b, int64_t co) {
    EXPECT_TRUE(t.InsertRow({Value(a), Value(b), Value(co)}).ok());
  };
  add("A", "B", 10);
  add("A", "C", 85);
  add("D", "E", 95);
  add("F", "G", 40);
  Cvd::Options opt;
  opt.primary_key = {"protein1", "protein2"};
  auto cvd = Cvd::Init("Interaction", t, opt);
  EXPECT_TRUE(cvd.ok());
  auto owned = cvd.MoveValueOrDie();
  EXPECT_TRUE(owned->Checkout({1}, "w", staging).ok());
  Table* staged = staging->GetTable("w");
  Row row = staged->GetRow(0);
  row[3] = Value(int64_t{90});
  staged->SetRow(0, row);
  EXPECT_TRUE(owned->Commit("w", staging, "bump").ok());
  return owned;
}

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override { cvd_ = MakeCvd(&staging_); }
  Database staging_;
  std::unique_ptr<Cvd> cvd_;
};

TEST_F(QueryTest, SelectFromSingleVersion) {
  auto r = RunQuery(*cvd_, "SELECT * FROM VERSION 1 OF CVD Interaction "
                           "WHERE coexpression > 80");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 2u);  // 85 and 95
  EXPECT_EQ(r->schema().column(0).name, "vid");
}

TEST_F(QueryTest, SelectFromMultipleVersions) {
  auto r = RunQuery(*cvd_, "SELECT * FROM VERSION 1, 2 OF CVD Interaction "
                           "WHERE coexpression > 80");
  ASSERT_TRUE(r.ok());
  // v1 contributes 2 matches, v2 contributes 3 (10 -> 90).
  EXPECT_EQ(r->num_rows(), 5u);
}

TEST_F(QueryTest, LimitClause) {
  auto r = RunQuery(*cvd_, "SELECT * FROM VERSION 1, 2 OF CVD Interaction "
                           "WHERE coexpression > 80 LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
}

TEST_F(QueryTest, ProjectionColumns) {
  auto r = RunQuery(*cvd_,
                    "SELECT protein1, coexpression FROM VERSION 1 OF CVD "
                    "Interaction WHERE protein1 = 'D'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->num_columns(), 3u);  // vid + 2
  EXPECT_EQ(r->GetValue(0, 1).AsString(), "D");
  EXPECT_EQ(r->GetValue(0, 2).AsInt(), 95);
}

TEST_F(QueryTest, MultipleConditions) {
  auto r = RunQuery(*cvd_,
                    "SELECT * FROM VERSION 2 OF CVD Interaction WHERE "
                    "coexpression >= 85 AND coexpression <= 90");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);  // 85 and 90
}

TEST_F(QueryTest, AggregateCountGroupByVid) {
  auto r = RunQuery(*cvd_, "SELECT vid, COUNT(*) FROM CVD Interaction "
                           "WHERE coexpression > 80 GROUP BY vid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->GetValue(0, 0).AsInt(), 1);
  EXPECT_DOUBLE_EQ(r->GetValue(0, 1).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(r->GetValue(1, 1).AsDouble(), 3.0);
}

TEST_F(QueryTest, AggregateAvg) {
  auto r = RunQuery(*cvd_,
                    "SELECT vid, AVG(coexpression) FROM CVD Interaction "
                    "GROUP BY vid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r->GetValue(0, 1).AsDouble(), (10 + 85 + 95 + 40) / 4.0);
  EXPECT_DOUBLE_EQ(r->GetValue(1, 1).AsDouble(), (90 + 85 + 95 + 40) / 4.0);
}

TEST_F(QueryTest, AggregateMinMaxSum) {
  auto mx = RunQuery(*cvd_, "SELECT vid, MAX(coexpression) FROM CVD "
                            "Interaction GROUP BY vid");
  ASSERT_TRUE(mx.ok());
  EXPECT_DOUBLE_EQ(mx->GetValue(0, 1).AsDouble(), 95.0);
  auto mn = RunQuery(*cvd_, "SELECT vid, MIN(coexpression) FROM CVD "
                            "Interaction GROUP BY vid");
  ASSERT_TRUE(mn.ok());
  EXPECT_DOUBLE_EQ(mn->GetValue(1, 1).AsDouble(), 40.0);
  auto sm = RunQuery(*cvd_, "SELECT vid, SUM(coexpression) FROM CVD "
                            "Interaction GROUP BY vid");
  ASSERT_TRUE(sm.ok());
  EXPECT_DOUBLE_EQ(sm->GetValue(0, 1).AsDouble(), 230.0);
}

TEST_F(QueryTest, StringEquality) {
  auto r = RunQuery(*cvd_, "SELECT * FROM VERSION 1 OF CVD Interaction "
                           "WHERE protein2 = 'C'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
}

TEST_F(QueryTest, NotEqualOperator) {
  auto r = RunQuery(*cvd_, "SELECT * FROM VERSION 1 OF CVD Interaction "
                           "WHERE protein1 != 'A'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST_F(QueryTest, Errors) {
  EXPECT_FALSE(RunQuery(*cvd_, "DELETE FROM x").ok());
  EXPECT_FALSE(RunQuery(*cvd_, "SELECT * FROM VERSION 9 OF CVD Interaction")
                   .ok());
  EXPECT_FALSE(
      RunQuery(*cvd_, "SELECT * FROM VERSION 1 OF CVD WrongName").ok());
  EXPECT_FALSE(RunQuery(*cvd_,
                        "SELECT nope FROM VERSION 1 OF CVD Interaction")
                   .ok());
  EXPECT_FALSE(RunQuery(*cvd_, "SELECT vid, COUNT(*) FROM CVD Interaction")
                   .ok());  // missing GROUP BY
}

TEST_F(QueryTest, ProgrammaticConditionSemantics) {
  Condition c;
  c.column = "x";
  c.op = Condition::Op::kGe;
  c.value = Value(int64_t{5});
  EXPECT_TRUE(c.Matches(Value(int64_t{5})));
  EXPECT_TRUE(c.Matches(Value(int64_t{6})));
  EXPECT_FALSE(c.Matches(Value(int64_t{4})));
  EXPECT_FALSE(c.Matches(Value::Null()));
}

}  // namespace
}  // namespace orpheus::core
