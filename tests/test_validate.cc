// Tests for the invariant validator subsystem (core/validate.h,
// deltastore/validate.h) and the fsck CLI command: every seeded corruption
// must be detected and reported, and clean stores must validate clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "benchdata/generator.h"
#include "cli/command_processor.h"
#include "common/validation.h"
#include "core/cvd.h"
#include "core/lyresplit.h"
#include "core/partition_store.h"
#include "core/validate.h"
#include "deltastore/algorithms.h"
#include "deltastore/repository.h"
#include "deltastore/validate.h"
#include "minidb/table.h"

namespace orpheus::core {

// Test-only corruption backdoors (friends of the production classes): seed
// exactly one broken invariant without touching any public mutation path.
struct VersionGraphTestAccess {
  static void AddRawEdge(VersionGraph* g, int parent, int child, int64_t w) {
    g->children_[parent].push_back(child);
    g->parents_[child].push_back(parent);
    g->parent_weights_[child].push_back(w);
  }
  static void AddChildOnly(VersionGraph* g, int parent, int child) {
    g->children_[parent].push_back(child);
  }
};

struct PartitionedStoreTestAccess {
  static minidb::Table* data(PartitionedStore* s, int p) {
    return &s->parts_[p].data;
  }
  static minidb::Table* versioning(PartitionedStore* s, int p) {
    return &s->parts_[p].versioning;
  }
  static void set_partition_of(PartitionedStore* s, int v, int p) {
    s->partition_of_[v] = p;
  }
};

}  // namespace orpheus::core

namespace orpheus::minidb {

struct TableTestAccess {
  static void PointIndexEntryAt(Table* t, int col, int64_t key,
                                uint32_t row) {
    t->indexes_[col][key] = row;
  }
  static void EraseIndexEntry(Table* t, int col, int64_t key) {
    t->indexes_[col].erase(key);
  }
};

}  // namespace orpheus::minidb

namespace orpheus {
namespace {

using core::Cvd;
using core::DatasetAccessor;
using core::PartitionedStore;
using core::PartitionedStoreTestAccess;
using core::Partitioning;
using core::RecordId;
using core::VersionGraph;
using core::VersionGraphTestAccess;
using deltastore::FileRepository;
using deltastore::PhiModel;
using deltastore::StorageGraph;
using deltastore::StorageSolution;

bool Mentions(const ValidationReport& report, const std::string& needle) {
  return report.ToString().find(needle) != std::string::npos;
}

VersionGraph ChainGraph(int n) {
  VersionGraph g;
  g.AddVersion({}, {}, 10);
  for (int v = 1; v < n; ++v) g.AddVersion({v - 1}, {8}, 10);
  return g;
}

// ---------------------------------------------------------------------------
// Version graph.
// ---------------------------------------------------------------------------

TEST(ValidateVersionGraphTest, CleanChainHasNoViolations) {
  VersionGraph g = ChainGraph(5);
  ValidationReport report;
  core::ValidateVersionGraph(g, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateVersionGraphTest, DetectsCycle) {
  VersionGraph g = ChainGraph(3);
  // Close the chain 0 -> 1 -> 2 back onto 0. Symmetric adjacency and a
  // legal weight, so the *only* broken invariant is acyclicity.
  VersionGraphTestAccess::AddRawEdge(&g, 2, 0, 0);
  ValidationReport report;
  core::ValidateVersionGraph(g, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "cycle")) << report.ToString();
  EXPECT_EQ(report.num_violations(), 1u) << report.ToString();
}

TEST(ValidateVersionGraphTest, DetectsAdjacencyAsymmetry) {
  VersionGraph g = ChainGraph(3);
  VersionGraphTestAccess::AddChildOnly(&g, 0, 2);
  ValidationReport report;
  core::ValidateVersionGraph(g, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "does not list 0 as a parent"))
      << report.ToString();
}

TEST(ValidateVersionGraphTest, DetectsOverweightEdge) {
  VersionGraph g;
  g.AddVersion({}, {}, 10);
  g.AddVersion({}, {}, 10);  // unconnected: the raw edge is the only one
  VersionGraphTestAccess::AddRawEdge(&g, 0, 1, 999);  // > both record counts
  ValidationReport report;
  core::ValidateVersionGraph(g, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "exceeds an endpoint")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Partition store. The fixture mirrors test_partition_store.cc: a generated
// benchmark dataset partitioned by LyreSplit.
// ---------------------------------------------------------------------------

struct StoreFixture {
  benchdata::VersionedDataset ds;
  DatasetAccessor accessor;
  VersionGraph graph;

  StoreFixture()
      : ds(benchdata::VersionedDataset::Generate(
            benchdata::SciConfig("S", 40, 5, 20))) {
    accessor.num_versions = ds.num_versions();
    accessor.num_attributes = ds.num_attributes();
    accessor.records_of = [this](int v) -> const std::vector<RecordId>& {
      return ds.version(v).records;
    };
    accessor.payload_of = [this](RecordId rid, std::vector<int64_t>* out) {
      *out = ds.RecordPayload(rid);
    };
    for (int v = 0; v < ds.num_versions(); ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      graph.AddVersion(spec.parents, w,
                       static_cast<int64_t>(spec.records.size()));
    }
  }

  PartitionedStore BuildStore(uint64_t gamma_factor = 2) {
    uint64_t gamma = gamma_factor *
                     static_cast<uint64_t>(ds.num_distinct_records());
    Partitioning plan = core::LyreSplitForBudget(graph, gamma).partitioning;
    return PartitionedStore::Build(accessor, plan);
  }
};

TEST(ValidatePartitionedStoreTest, CleanBenchdataStoreHasNoViolations) {
  StoreFixture f;
  PartitionedStore store = f.BuildStore();
  ValidationReport report;
  core::ValidatePartitionedStore(store, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidatePartitionedStoreTest, DetectsOverlappingPartitions) {
  StoreFixture f;
  PartitionedStore store = f.BuildStore(1);  // tight budget => >1 partition
  ASSERT_GE(store.num_partitions(), 2);
  // Duplicate partition 1's first versioning row into partition 0: that
  // version is now claimed by two partitions.
  minidb::Table* v0 = PartitionedStoreTestAccess::versioning(&store, 0);
  minidb::Table* v1 = PartitionedStoreTestAccess::versioning(&store, 1);
  v0->AppendFrom(*v1, {0});
  ValidationReport report;
  core::ValidatePartitionedStore(store, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "partitions not disjoint"))
      << report.ToString();
}

TEST(ValidatePartitionedStoreTest, DetectsWrongPartitionMapping) {
  StoreFixture f;
  PartitionedStore store = f.BuildStore(1);
  ASSERT_GE(store.num_partitions(), 2);
  // Find a version stored in partition 0 and remap it to partition 1.
  const minidb::Table& v0 =
      store.partition_versioning_table(0);
  ASSERT_GT(v0.num_rows(), 0u);
  int victim = static_cast<int>(v0.column(0).GetInt(0));
  PartitionedStoreTestAccess::set_partition_of(&store, victim, 1);
  ValidationReport report;
  core::ValidatePartitionedStore(store, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "stored here but mapped to partition"))
      << report.ToString();
}

TEST(ValidatePartitionedStoreTest, DetectsStaleRidClusteredFlag) {
  StoreFixture f;
  PartitionedStore store = f.BuildStore();
  ASSERT_TRUE(store.partition_rid_clustered(0));
  // Physically re-cluster the data table on an attribute column. Indexes
  // are rebuilt (so they stay consistent) but the rid order is destroyed
  // while the flag still claims rid clustering.
  minidb::Table* data = PartitionedStoreTestAccess::data(&store, 0);
  ASSERT_GT(data->num_columns(), 1u);
  data->SortByIntColumn(1);
  const auto& rids = data->column(0).int_data();
  ASSERT_FALSE(std::is_sorted(rids.begin(), rids.end()))
      << "attribute sort left rids ordered; pick another column";
  ValidationReport report;
  core::ValidatePartitionedStore(store, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "rid_clustered flag set"))
      << report.ToString();
  EXPECT_EQ(report.num_violations(), 1u) << report.ToString();
}

TEST(ValidatePartitionedStoreTest, DetectsCorruptedIndex) {
  StoreFixture f;
  PartitionedStore store = f.BuildStore();
  minidb::Table* data = PartitionedStoreTestAccess::data(&store, 0);
  ASSERT_GE(data->num_rows(), 2u);
  int64_t key = data->column(0).GetInt(0);
  minidb::TableTestAccess::PointIndexEntryAt(data, 0, key, 1);
  ValidationReport report;
  core::ValidatePartitionedStore(store, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "minidb.index")) << report.ToString();
}

TEST(ValidateTableIndexTest, DetectsMissingIndexEntry) {
  minidb::Table t("t", minidb::Schema({{"rid", minidb::ValueType::kInt64}}));
  t.AppendIntRowUnchecked({7});
  t.AppendIntRowUnchecked({9});
  ASSERT_TRUE(t.BuildUniqueIntIndex(0).ok());
  minidb::TableTestAccess::EraseIndexEntry(&t, 0, 9);
  ValidationReport report;
  t.ValidateIndexes(&report);
  ASSERT_FALSE(report.ok());
  // Both the entry-count mismatch and the missing key are reported.
  EXPECT_TRUE(Mentions(report, "missing from the index"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// CVD end-to-end validation.
// ---------------------------------------------------------------------------

TEST(ValidateCvdTest, CleanCvdAfterCommitsHasNoViolations) {
  minidb::Table t("prot", minidb::Schema({{"a", minidb::ValueType::kInt64},
                                          {"b", minidb::ValueType::kInt64}}));
  for (int64_t i = 0; i < 20; ++i) t.AppendIntRowUnchecked({i, i * 3});
  Cvd::Options options;
  auto cvd = Cvd::Init("P", t, options);
  ASSERT_TRUE(cvd.ok()) << cvd.status().ToString();

  minidb::Database staging;
  ASSERT_TRUE((*cvd)->Checkout({1}, "work", &staging).ok());
  minidb::Table* work = staging.GetTable("work");
  ASSERT_NE(work, nullptr);
  work->AppendIntRowUnchecked({0, 99, 99});  // _rid=0 is a modification
  auto v2 = (*cvd)->Commit("work", &staging, "edit");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  ValidationReport report;
  core::ValidateCvd(**cvd, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// Delta storage solutions.
// ---------------------------------------------------------------------------

struct DeltaFixture {
  FileRepository repo;
  StorageGraph graph;

  DeltaFixture()
      : repo(FileRepository::Generate({.num_versions = 24,
                                       .num_branches = 4,
                                       .base_lines = 120,
                                       .edits_per_version = 15,
                                       .seed = 11})),
        graph(repo.BuildStorageGraph(true, PhiModel::kProportional)) {}
};

TEST(ValidateStorageSolutionTest, SolverOutputsAreClean) {
  DeltaFixture f;
  for (const StorageSolution& sol :
       {deltastore::MinimumStorageTree(f.graph),
        deltastore::ShortestPathTree(f.graph),
        deltastore::LastTree(f.graph, 2.0)}) {
    ValidationReport report;
    deltastore::ValidateStorageSolution(f.graph, sol, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST(ValidateStorageSolutionTest, DetectsBrokenDeltaChain) {
  DeltaFixture f;
  StorageSolution sol = deltastore::MinimumStorageTree(f.graph);
  // Find a delta edge v -> parent p and point p back at v: a two-cycle that
  // never reaches a materialized version. Both directions are revealed
  // (undirected graph), so chain reachability is the only broken invariant.
  int v = -1;
  for (int i = 0; i < sol.num_versions(); ++i) {
    if (sol.parent[i] != StorageGraph::kDummy) {
      v = i;
      break;
    }
  }
  ASSERT_GE(v, 0);
  sol.parent[sol.parent[v]] = v;
  ValidationReport report;
  deltastore::ValidateStorageSolution(f.graph, sol, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "delta chain never reaches a materialized"))
      << report.ToString();

  // The repository must refuse (not crash on) materialization through the
  // cyclic chain.
  auto content = f.repo.Materialize(sol, v);
  EXPECT_FALSE(content.ok());
}

TEST(ValidateStorageSolutionTest, DetectsUnrevealedDelta) {
  DeltaFixture f;
  StorageSolution sol = deltastore::MinimumStorageTree(f.graph);
  // Point some version at a node with no revealed delta between them.
  int v = -1;
  int q = -1;
  for (int i = 0; i < sol.num_versions() && v < 0; ++i) {
    for (int cand = 0; cand < sol.num_versions(); ++cand) {
      if (cand == i) continue;
      bool revealed = false;
      for (const auto& e : f.graph.InEdges(i)) {
        if (e.from == cand) {
          revealed = true;
          break;
        }
      }
      if (!revealed) {
        v = i;
        q = cand;
        break;
      }
    }
  }
  ASSERT_GE(v, 0) << "every pair revealed; enlarge the repository";
  sol.parent[v] = q;
  ValidationReport report;
  deltastore::ValidateStorageSolution(f.graph, sol, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "never revealed")) << report.ToString();
}

TEST(ValidateStorageSolutionTest, DetectsSizeMismatch) {
  DeltaFixture f;
  StorageSolution sol = deltastore::MinimumStorageTree(f.graph);
  sol.parent.pop_back();
  ValidationReport report;
  deltastore::ValidateStorageSolution(f.graph, sol, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(Mentions(report, "solution covers")) << report.ToString();

  // Materialize must reject the short solution instead of reading past it.
  EXPECT_FALSE(f.repo.Materialize(sol, f.repo.num_versions() - 1).ok());
}

// ---------------------------------------------------------------------------
// fsck CLI.
// ---------------------------------------------------------------------------

TEST(FsckCliTest, ReportsCleanSession) {
  cli::CommandProcessor processor;
  minidb::Table t("cities", minidb::Schema({{"id", minidb::ValueType::kInt64},
                                            {"pop",
                                             minidb::ValueType::kInt64}}));
  for (int64_t i = 0; i < 10; ++i) t.AppendIntRowUnchecked({i, 1000 * i});
  ASSERT_TRUE(processor.staging()->AdoptTable(std::move(t)).ok());
  auto init = processor.Execute("init Cities -t cities -k id");
  ASSERT_TRUE(init.ok()) << init.status().ToString();

  auto out = processor.Execute("fsck");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("no violations"), std::string::npos) << *out;

  auto one = processor.Execute("fsck Cities");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_NE(one->find("no violations"), std::string::npos) << *one;

  auto missing = processor.Execute("fsck Nope");
  EXPECT_FALSE(missing.ok());
}

// ---------------------------------------------------------------------------
// Result<T>::status() lifetime (regression: it used to return a reference
// to a function-local static that was re-created per call site).
// ---------------------------------------------------------------------------

TEST(ResultStatusTest, OkStatusReferenceOutlivesResult) {
  const Status* s = nullptr;
  {
    Result<int> r(7);
    s = &r.status();
    EXPECT_TRUE(s->ok());
  }
  EXPECT_TRUE(s->ok());  // refers to the process-wide OK constant
}

}  // namespace
}  // namespace orpheus
