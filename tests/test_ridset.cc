// RidSet (common/ridset.h): property tests against a std::set<int64_t>
// reference model, container-promotion thresholds, the bit-packed
// serialization roundtrip, and Validate()'s corruption detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/ridset.h"

namespace orpheus {

/// Test-only backdoor (friend of RidSet): corrupts internals so Validate's
/// checks can be exercised one violation at a time.
class RidSetTestAccess {
 public:
  static std::vector<RidSet::Container>& containers(RidSet* s) {
    return s->containers_;
  }
  static size_t& cardinality(RidSet* s) { return s->cardinality_; }
};

namespace {

std::vector<int64_t> SortedUnique(std::vector<int64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Random value sets spanning several chunks, with negative values and
// chunk-boundary neighbours mixed in.
std::vector<int64_t> RandomValues(uint64_t seed, size_t n, int64_t span) {
  Xorshift rng(seed);
  std::vector<int64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t v = static_cast<int64_t>(rng.Uniform(
                    static_cast<uint64_t>(2 * span))) -
                span;
    out.push_back(v);
    if (rng.Uniform(8) == 0) {
      // Chunk-boundary neighbours: low bits 0x0000 / 0xFFFF.
      out.push_back((v & ~0xFFFFll));
      out.push_back((v | 0xFFFFll));
    }
  }
  return SortedUnique(out);
}

TEST(RidSet, EmptyAndSingle) {
  RidSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.Contains(0));
  EXPECT_TRUE(empty.ToVector().empty());
  EXPECT_TRUE(empty.Validate().ok());

  RidSet one = RidSet::FromSorted({42});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.Contains(42));
  EXPECT_FALSE(one.Contains(41));
  EXPECT_EQ(one.ToVector(), std::vector<int64_t>{42});
  EXPECT_TRUE(one.Validate().ok());
}

TEST(RidSet, RoundTripRandom) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto values = RandomValues(seed, 5000, 1 << 20);
    RidSet set = RidSet::FromSorted(values);
    EXPECT_EQ(set.size(), values.size());
    EXPECT_EQ(set.ToVector(), values);
    ASSERT_TRUE(set.Validate().ok()) << set.Validate().ToString();
  }
}

TEST(RidSet, ContainsMatchesReference) {
  auto values = RandomValues(7, 4000, 1 << 19);
  std::set<int64_t> ref(values.begin(), values.end());
  RidSet set = RidSet::FromSorted(values);
  Xorshift rng(11);
  size_t hint = 0;
  for (int i = 0; i < 20000; ++i) {
    int64_t probe =
        static_cast<int64_t>(rng.Uniform(1 << 20)) - (1 << 19);
    EXPECT_EQ(set.Contains(probe), ref.count(probe) > 0) << probe;
    EXPECT_EQ(set.ContainsHint(probe, &hint), ref.count(probe) > 0) << probe;
  }
  for (int64_t v : values) {
    ASSERT_TRUE(set.Contains(v)) << v;
  }
}

TEST(RidSet, HintFromAnotherSetIsSafe) {
  RidSet a = RidSet::FromSorted(RandomValues(1, 3000, 1 << 20));
  RidSet b = RidSet::FromSorted({5, 70000, 140000});
  size_t hint = 0;
  for (int64_t v : a.ToVector()) a.ContainsHint(v, &hint);
  // `hint` may now be far beyond b's container count.
  EXPECT_TRUE(b.ContainsHint(70000, &hint));
  EXPECT_FALSE(b.ContainsHint(70001, &hint));
}

TEST(RidSet, SetAlgebraMatchesReference) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto va = RandomValues(seed, 3000, 1 << 18);
    auto vb = RandomValues(seed + 100, 3000, 1 << 18);
    std::set<int64_t> ra(va.begin(), va.end());
    std::set<int64_t> rb(vb.begin(), vb.end());
    RidSet a = RidSet::FromSorted(va);
    RidSet b = RidSet::FromSorted(vb);

    std::vector<int64_t> expect;
    std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                          std::back_inserter(expect));
    EXPECT_EQ(a.Intersect(b).ToVector(), expect);

    expect.clear();
    std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                   std::back_inserter(expect));
    EXPECT_EQ(a.Union(b).ToVector(), expect);

    expect.clear();
    std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::back_inserter(expect));
    EXPECT_EQ(a.Difference(b).ToVector(), expect);

    // Canonical form: structural equality == set equality regardless of
    // how the set was produced.
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    EXPECT_EQ(a.Union(b), b.Union(a));
    ASSERT_TRUE(a.Union(b).Validate().ok());
    ASSERT_TRUE(a.Intersect(b).Validate().ok());
    ASSERT_TRUE(a.Difference(b).Validate().ok());
  }
}

TEST(RidSet, WithAppended) {
  auto values = RandomValues(31, 2000, 1 << 18);
  RidSet set = RidSet::FromSorted(values);
  RidSet grown = set.WithAppended(123456789);
  EXPECT_EQ(grown.size(), set.size() + 1);
  EXPECT_TRUE(grown.Contains(123456789));
  ASSERT_TRUE(grown.Validate().ok());
  // Appending an existing value is a no-op copy.
  EXPECT_EQ(set.WithAppended(values.front()), set);
  // Equivalent to rebuilding from the extended list (canonical form).
  auto extended = values;
  extended.push_back(123456789);
  EXPECT_EQ(grown, RidSet::FromSorted(SortedUnique(extended)));
}

TEST(RidSet, IntersectToRowsMatchesScan) {
  // Ascending rid column with gaps; rlist samples across all chunk shapes.
  std::vector<int64_t> rids;
  Xorshift rng(47);
  int64_t next = -200000;
  for (int i = 0; i < 300000; ++i) {
    next += 1 + static_cast<int64_t>(rng.Uniform(3));
    rids.push_back(next);
  }
  for (double frac : {0.001, 0.1, 0.9}) {
    std::vector<int64_t> member;
    Xorshift pick(53);
    for (int64_t r : rids) {
      if (pick.NextDouble() < frac) member.push_back(r);
    }
    // Plus values absent from the rid column.
    member.push_back(rids.back() + 5);
    member = SortedUnique(member);
    RidSet set = RidSet::FromSorted(member);

    std::vector<uint32_t> expect;
    for (size_t r = 0; r < rids.size(); ++r) {
      if (std::binary_search(member.begin(), member.end(), rids[r])) {
        expect.push_back(static_cast<uint32_t>(r) + 7);
      }
    }
    std::vector<uint32_t> got;
    set.IntersectToRows(rids.data(), rids.size(), &got, /*base_row=*/7);
    EXPECT_EQ(got, expect) << "frac=" << frac;
  }
}

TEST(RidSet, ContainerPromotionThresholds) {
  // Sparse chunk -> array container.
  std::vector<int64_t> sparse;
  for (int i = 0; i < 100; ++i) sparse.push_back(i * 7);
  RidSet s = RidSet::FromSorted(sparse);
  ASSERT_EQ(s.containers().size(), 1u);
  EXPECT_EQ(s.containers()[0].type, RidSet::ContainerType::kArray);

  // Dense scattered chunk -> bitmap (cardinality > 4096, many runs).
  std::vector<int64_t> dense;
  for (int i = 0; i < 65536; i += 2) dense.push_back(i);
  RidSet d = RidSet::FromSorted(dense);
  ASSERT_EQ(d.containers().size(), 1u);
  EXPECT_EQ(d.containers()[0].type, RidSet::ContainerType::kBitmap);

  // One contiguous interval -> run container.
  std::vector<int64_t> run;
  for (int i = 1000; i < 31000; ++i) run.push_back(i);
  RidSet r = RidSet::FromSorted(run);
  ASSERT_EQ(r.containers().size(), 1u);
  EXPECT_EQ(r.containers()[0].type, RidSet::ContainerType::kRun);
  EXPECT_LT(r.SizeBytes(), 64u);  // 30000 values in one (start,last) pair
}

TEST(RidSet, TryFromVectorGate) {
  EXPECT_EQ(RidSet::TryFromVector({1, 2, 3}), nullptr);  // below min size
  EXPECT_EQ(RidSet::TryFromVector({1, 2, 3, 4, 5, 6, 7, 9, 8}),
            nullptr);  // not sorted
  EXPECT_EQ(RidSet::TryFromVector({1, 2, 2, 3, 4, 5, 6, 7}),
            nullptr);  // duplicate
  auto ok = RidSet::TryFromVector({1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->size(), 8u);
}

TEST(RidSet, SerializeRoundTrip) {
  for (uint64_t seed : {61u, 62u}) {
    auto values = RandomValues(seed, 6000, 1 << 21);
    RidSet set = RidSet::FromSorted(values);
    std::string blob = set.SerializeBlob();
    EXPECT_EQ(blob.size(), set.SizeBytes());
    auto back = RidSet::DeserializeBlob(blob);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.ValueOrDie(), set);
  }
  // Empty set.
  auto empty = RidSet::DeserializeBlob(RidSet().SerializeBlob());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.ValueOrDie().empty());
}

TEST(RidSet, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RidSet::DeserializeBlob("").ok());
  EXPECT_FALSE(RidSet::DeserializeBlob("xx").ok());
  RidSet set = RidSet::FromSorted({1, 2, 3, 100000, 200000});
  std::string blob = set.SerializeBlob();
  // Truncation at every prefix must be detected, never crash.
  for (size_t cut = 0; cut + 1 < blob.size(); ++cut) {
    EXPECT_FALSE(RidSet::DeserializeBlob(blob.substr(0, cut)).ok()) << cut;
  }
  // Trailing junk is corruption too.
  EXPECT_FALSE(RidSet::DeserializeBlob(blob + "z").ok());
}

TEST(RidSet, ValidateDetectsCorruption) {
  auto make = [] {
    std::vector<int64_t> v;
    for (int i = 0; i < 5000; ++i) v.push_back(i * 3);
    for (int i = 0; i < 300; ++i) v.push_back(200000 + i);
    return RidSet::FromSorted(SortedUnique(v));
  };

  {  // Chunk keys out of order.
    RidSet s = make();
    auto& cs = RidSetTestAccess::containers(&s);
    ASSERT_GE(cs.size(), 2u);
    std::swap(cs[0], cs[1]);
    EXPECT_FALSE(s.Validate().ok());
  }
  {  // Empty container.
    RidSet s = make();
    auto& cs = RidSetTestAccess::containers(&s);
    RidSetTestAccess::cardinality(&s) -= cs.back().cardinality;
    cs.back().cardinality = 0;
    cs.back().u16.clear();
    cs.back().words.clear();
    EXPECT_FALSE(s.Validate().ok());
  }
  {  // Cardinality disagrees with payload.
    RidSet s = make();
    RidSetTestAccess::containers(&s)[0].cardinality += 1;
    EXPECT_FALSE(s.Validate().ok());
  }
  {  // Array values not sorted.
    std::vector<int64_t> sparse;
    for (int i = 0; i < 500; ++i) sparse.push_back(i * 7);
    RidSet s = RidSet::FromSorted(sparse);
    auto& c = RidSetTestAccess::containers(&s)[0];
    ASSERT_EQ(c.type, RidSet::ContainerType::kArray);
    ASSERT_GE(c.u16.size(), 2u);
    std::swap(c.u16[0], c.u16[1]);
    EXPECT_FALSE(s.Validate().ok());
  }
  {  // Total cardinality mismatch.
    RidSet s = make();
    RidSetTestAccess::cardinality(&s) += 5;
    EXPECT_FALSE(s.Validate().ok());
  }
}

TEST(RidSet, GateControls) {
  bool initial = RidSetEnabled();
  SetRidSetEnabled(false);
  EXPECT_FALSE(RidSetEnabled());
  EXPECT_EQ(RidSet::TryFromVector({1, 2, 3, 4, 5, 6, 7, 8}) != nullptr,
            true);  // TryFromVector itself is not gated; callers gate.
  SetRidSetEnabled(true);
  EXPECT_TRUE(RidSetEnabled());
  SetRidSetEnabled(initial);
}

}  // namespace
}  // namespace orpheus
