#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "minidb/csv.h"

namespace orpheus::minidb {
namespace {

Table SampleTable() {
  Table t("t", Schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"ratio", ValueType::kDouble}}));
  EXPECT_TRUE(t.InsertRow({Value(int64_t{1}), Value("plain"),
                           Value(0.5)}).ok());
  EXPECT_TRUE(t.InsertRow({Value(int64_t{2}), Value("has,comma"),
                           Value(1.25)}).ok());
  EXPECT_TRUE(t.InsertRow({Value(int64_t{3}), Value("has \"quote\""),
                           Value(-2.0)}).ok());
  return t;
}

TEST(CsvTest, RoundTripWithQuoting) {
  Table t = SampleTable();
  std::string csv = ToCsv(t);
  auto back = ParseCsv(csv, "back", &t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->GetValue(1, 1).AsString(), "has,comma");
  EXPECT_EQ(back->GetValue(2, 1).AsString(), "has \"quote\"");
  EXPECT_DOUBLE_EQ(back->GetValue(1, 2).AsDouble(), 1.25);
}

TEST(CsvTest, TypeInference) {
  std::string csv = "a,b,c\n1,2.5,x\n2,3.25,y\n";
  auto t = ParseCsv(csv, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(t->schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ(t->schema().column(2).type, ValueType::kString);
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  std::string csv = "a,b\n1,\n,x\n";
  auto t = ParseCsv(csv, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
  EXPECT_TRUE(t->GetValue(1, 0).is_null());
}

TEST(CsvTest, ArityMismatchRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n", "t").ok());
}

TEST(CsvTest, BadCellForDeclaredType) {
  Schema schema({{"a", ValueType::kInt64}});
  EXPECT_FALSE(ParseCsv("a\nnot_a_number\n", "t", &schema).ok());
}

TEST(CsvTest, SchemaSpecParsing) {
  auto schema = ParseSchemaSpec(
      "protein1:string\nprotein2:string\ncoexpression:int64\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3u);
  EXPECT_EQ(schema->column(2).type, ValueType::kInt64);
  // Comma-separated and aliases.
  auto alt = ParseSchemaSpec("a:integer, b:decimal, c:text");
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(alt->column(1).type, ValueType::kDouble);
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("a=b").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:blob").ok());
}

TEST(CsvTest, FileRoundTrip) {
  Table t = SampleTable();
  std::string path = testing::TempDir() + "/orpheus_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, "back");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 3u);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsv(path, "gone").status().IsNotFound());
}

TEST(CsvTest, CrlfLineEndings) {
  auto t = ParseCsv("a,b\r\n1,2\r\n3,4\r\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 1).AsInt(), 4);
}

TEST(CsvTest, QuotedNewlineInsideCell) {
  auto t = ParseCsv("a,b\n\"line1\nline2\",7\n", "t");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).AsString(), "line1\nline2");
}

}  // namespace
}  // namespace orpheus::minidb
