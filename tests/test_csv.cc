#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <locale>
#include <stdexcept>

#include "minidb/csv.h"

namespace orpheus::minidb {
namespace {

Table SampleTable() {
  Table t("t", Schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"ratio", ValueType::kDouble}}));
  EXPECT_TRUE(t.InsertRow({Value(int64_t{1}), Value("plain"),
                           Value(0.5)}).ok());
  EXPECT_TRUE(t.InsertRow({Value(int64_t{2}), Value("has,comma"),
                           Value(1.25)}).ok());
  EXPECT_TRUE(t.InsertRow({Value(int64_t{3}), Value("has \"quote\""),
                           Value(-2.0)}).ok());
  return t;
}

TEST(CsvTest, RoundTripWithQuoting) {
  Table t = SampleTable();
  std::string csv = ToCsv(t);
  auto back = ParseCsv(csv, "back", &t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->GetValue(1, 1).AsString(), "has,comma");
  EXPECT_EQ(back->GetValue(2, 1).AsString(), "has \"quote\"");
  EXPECT_DOUBLE_EQ(back->GetValue(1, 2).AsDouble(), 1.25);
}

TEST(CsvTest, TypeInference) {
  std::string csv = "a,b,c\n1,2.5,x\n2,3.25,y\n";
  auto t = ParseCsv(csv, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(t->schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ(t->schema().column(2).type, ValueType::kString);
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  std::string csv = "a,b\n1,\n,x\n";
  auto t = ParseCsv(csv, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
  EXPECT_TRUE(t->GetValue(1, 0).is_null());
}

TEST(CsvTest, ArityMismatchRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n", "t").ok());
}

TEST(CsvTest, BadCellForDeclaredType) {
  Schema schema({{"a", ValueType::kInt64}});
  EXPECT_FALSE(ParseCsv("a\nnot_a_number\n", "t", &schema).ok());
}

TEST(CsvTest, SchemaSpecParsing) {
  auto schema = ParseSchemaSpec(
      "protein1:string\nprotein2:string\ncoexpression:int64\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3u);
  EXPECT_EQ(schema->column(2).type, ValueType::kInt64);
  // Comma-separated and aliases.
  auto alt = ParseSchemaSpec("a:integer, b:decimal, c:text");
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(alt->column(1).type, ValueType::kDouble);
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("a=b").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:blob").ok());
}

TEST(CsvTest, FileRoundTrip) {
  Table t = SampleTable();
  std::string path = testing::TempDir() + "/orpheus_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, "back");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 3u);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsv(path, "gone").status().IsNotFound());
}

TEST(CsvTest, CrlfLineEndings) {
  auto t = ParseCsv("a,b\r\n1,2\r\n3,4\r\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 1).AsInt(), 4);
}

TEST(CsvTest, QuotedNewlineInsideCell) {
  auto t = ParseCsv("a,b\n\"line1\nline2\",7\n", "t");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).AsString(), "line1\nline2");
}

// Regression: a quote still open at end of input used to be accepted,
// silently folding the rest of the file into one cell of the last row.
// It is now an error that points at the offending quote.
TEST(CsvTest, UnterminatedQuoteAtEofRejected) {
  auto t = ParseCsv("a,b\n1,\"oops\n2,3\n", "t");
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsInvalidArgument());
  // The quote opens on line 2, column 3 (1-based).
  EXPECT_NE(t.status().ToString().find("line 2"), std::string::npos)
      << t.status().ToString();
  EXPECT_NE(t.status().ToString().find("column 3"), std::string::npos)
      << t.status().ToString();
}

TEST(CsvTest, UnterminatedQuoteAfterEmbeddedNewline) {
  // The open quote is on line 2; the error must report where it opened,
  // not where the input ended.
  auto t = ParseCsv("a\n\"first\nsecond\n", "t");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().ToString().find("line 2, column 1"),
            std::string::npos)
      << t.status().ToString();
}

TEST(CsvTest, UnterminatedQuoteInHeaderRejected) {
  EXPECT_FALSE(ParseCsv("\"a,b\n1,2\n", "t").ok());
}

TEST(CsvTest, CrOnlyLineEndings) {
  // Classic Mac line endings: a lone \r terminates the record.
  auto t = ParseCsv("a,b\r1,2\r3,4\r", "t");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 0).AsInt(), 3);
}

TEST(CsvTest, NoTrailingNewline) {
  auto t = ParseCsv("a,b\n1,2\n3,4", "t");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 1).AsInt(), 4);
}

TEST(CsvTest, ArityErrorReportsLine) {
  auto t = ParseCsv("a,b\n1,2\n1,2,3\n", "t");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().ToString().find("line 3"), std::string::npos)
      << t.status().ToString();
}

// Regression: double parsing used strtod, which honors LC_NUMERIC — under
// a comma-decimal locale "1.5" stopped parsing at the '.' and double
// columns silently degraded to string. std::from_chars is locale-free.
TEST(CsvTest, DoubleParsingIsLocaleIndependent) {
  std::locale original;
  try {
    std::locale::global(std::locale("de_DE.UTF-8"));
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not available";
  }
  auto t = ParseCsv("x\n1.5\n2.25\n", "t");
  std::locale::global(original);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).AsDouble(), 1.5);
}

TEST(CsvTest, StrictNumericCells) {
  // Trailing junk is not a number; the column falls back to string.
  auto t = ParseCsv("x\n1.5abc\n2\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kString);
  // A leading '+' is still accepted (strtod compatibility).
  auto plus = ParseCsv("x\n+3\n+4.5\n", "t");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(plus->schema().column(0).type, ValueType::kDouble);
}

TEST(CsvTest, Int64OverflowWidensToDouble) {
  // 2^63 does not fit int64; the column must not be inferred as int (the
  // old strtoll path clamped it to INT64_MAX).
  auto t = ParseCsv("x\n9223372036854775808\n1\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).AsDouble(), 9223372036854775808.0);
}

}  // namespace
}  // namespace orpheus::minidb
