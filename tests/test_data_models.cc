#include <gtest/gtest.h>

#include <algorithm>

#include "core/data_models.h"

namespace orpheus::core {
namespace {

using minidb::Row;
using minidb::Schema;
using minidb::Value;
using minidb::ValueType;

Schema ProteinSchema() {
  return Schema({{"protein1", ValueType::kString},
                 {"protein2", ValueType::kString},
                 {"coexpression", ValueType::kInt64}});
}

Row ProteinRow(const std::string& p1, const std::string& p2, int64_t co) {
  return {Value(p1), Value(p2), Value(co)};
}

/// Replays a miniature version of Fig. 3.2's protein-interaction history:
///   v0: records r0 (A,B,0), r1 (A,C,0), r2 (D,E,164)
///   v1 (from v0): r1, r2 kept; r3 (A,B,83) replaces r0
///   v2 (from v0): r0, r1, r2 + r4 (F,G,975)
///   v3 (merge of v1, v2): r1, r2, r3, r4
void PopulateFig32(DataModelBackend* backend) {
  std::vector<NewRecord> v0 = {
      {0, ProteinRow("A", "B", 0)},
      {1, ProteinRow("A", "C", 0)},
      {2, ProteinRow("D", "E", 164)},
  };
  ASSERT_TRUE(backend->AddVersion(0, {0, 1, 2}, v0, {}).ok());
  std::vector<NewRecord> v1 = {{3, ProteinRow("A", "B", 83)}};
  ASSERT_TRUE(backend->AddVersion(1, {1, 2, 3}, v1, {0}).ok());
  std::vector<NewRecord> v2 = {{4, ProteinRow("F", "G", 975)}};
  ASSERT_TRUE(backend->AddVersion(2, {0, 1, 2, 4}, v2, {0}).ok());
  ASSERT_TRUE(backend->AddVersion(3, {1, 2, 3, 4}, {}, {1, 2}).ok());
}

std::vector<RecordId> CheckedOutRids(const minidb::Table& t) {
  const auto& rids = t.column(0).int_data();
  std::vector<RecordId> out(rids.begin(), rids.end());
  std::sort(out.begin(), out.end());
  return out;
}

class DataModelTest : public ::testing::TestWithParam<DataModelType> {
 protected:
  std::unique_ptr<DataModelBackend> Make() {
    return DataModelBackend::Create(GetParam(), ProteinSchema());
  }
};

TEST_P(DataModelTest, VersionRecordsMatchHistory) {
  auto backend = Make();
  PopulateFig32(backend.get());
  EXPECT_EQ(*backend->VersionRecords(0), (std::vector<RecordId>{0, 1, 2}));
  EXPECT_EQ(*backend->VersionRecords(1), (std::vector<RecordId>{1, 2, 3}));
  EXPECT_EQ(*backend->VersionRecords(2), (std::vector<RecordId>{0, 1, 2, 4}));
  EXPECT_EQ(*backend->VersionRecords(3), (std::vector<RecordId>{1, 2, 3, 4}));
}

TEST_P(DataModelTest, CheckoutMaterializesExactRecords) {
  auto backend = Make();
  PopulateFig32(backend.get());
  for (int v = 0; v < 4; ++v) {
    auto t = backend->Checkout(v, "out");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(CheckedOutRids(*t), *backend->VersionRecords(v));
    EXPECT_EQ(t->num_columns(), 4u);  // _rid + 3 attrs
  }
}

TEST_P(DataModelTest, CheckoutPayloadsCorrect) {
  auto backend = Make();
  PopulateFig32(backend.get());
  auto t = backend->Checkout(1, "out");
  ASSERT_TRUE(t.ok());
  // Find r3 and validate its payload.
  bool found = false;
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    if (t->column(0).GetInt(r) == 3) {
      EXPECT_EQ(t->GetValue(r, 1).AsString(), "A");
      EXPECT_EQ(t->GetValue(r, 2).AsString(), "B");
      EXPECT_EQ(t->GetValue(r, 3).AsInt(), 83);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(DataModelTest, GetRecordPayload) {
  auto backend = Make();
  PopulateFig32(backend.get());
  auto payload = backend->GetRecordPayload(4, 2);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ((*payload)[0].AsString(), "F");
  EXPECT_EQ((*payload)[2].AsInt(), 975);
  EXPECT_TRUE(backend->GetRecordPayload(99, 0).status().IsNotFound());
}

TEST_P(DataModelTest, UnknownVersionRejected) {
  auto backend = Make();
  PopulateFig32(backend.get());
  EXPECT_FALSE(backend->Checkout(9, "out").ok());
  EXPECT_FALSE(backend->VersionRecords(-1).ok());
}

TEST_P(DataModelTest, OutOfOrderAddRejected) {
  auto backend = Make();
  EXPECT_TRUE(backend
                  ->AddVersion(5, {0}, {{0, ProteinRow("A", "B", 0)}}, {})
                  .IsInvalidArgument());
}

TEST_P(DataModelTest, SchemaEvolutionAddAttribute) {
  auto backend = Make();
  PopulateFig32(backend.get());
  ASSERT_TRUE(
      backend->AddAttribute({"neighborhood", ValueType::kInt64}).ok());
  EXPECT_EQ(backend->data_schema().num_columns(), 4u);
  // Existing records read NULL for the new attribute.
  auto t = backend->Checkout(0, "out");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->GetValue(0, 4).is_null());
  // A later version can populate it.
  std::vector<NewRecord> v4 = {
      {5, {Value("H"), Value("I"), Value(int64_t{7}), Value(int64_t{42})}}};
  ASSERT_TRUE(backend->AddVersion(4, {1, 5}, v4, {3}).ok());
  auto t4 = backend->Checkout(4, "out4");
  ASSERT_TRUE(t4.ok());
  for (uint32_t r = 0; r < t4->num_rows(); ++r) {
    if (t4->column(0).GetInt(r) == 5) {
      EXPECT_EQ(t4->GetValue(r, 4).AsInt(), 42);
    }
  }
}

TEST_P(DataModelTest, SchemaEvolutionWidenAttribute) {
  auto backend = Make();
  PopulateFig32(backend.get());
  ASSERT_TRUE(backend->WidenAttribute(2, ValueType::kDouble).ok())
      << backend->name();
  EXPECT_EQ(backend->data_schema().column(2).type, ValueType::kDouble);
  auto payload = backend->GetRecordPayload(2, 0);
  ASSERT_TRUE(payload.ok());
  EXPECT_DOUBLE_EQ((*payload)[2].AsDouble(), 164.0);
}

TEST_P(DataModelTest, StorageBytesNonzeroAndOrdered) {
  auto backend = Make();
  PopulateFig32(backend.get());
  EXPECT_GT(backend->StorageBytes(), 0u);
}

TEST_P(DataModelTest, ManyVersionsLinearChain) {
  // A longer chain where each version replaces one record.
  auto backend = Make();
  std::vector<NewRecord> base;
  std::vector<RecordId> rids;
  for (RecordId r = 0; r < 20; ++r) {
    base.push_back({r, ProteinRow("P" + std::to_string(r), "Q", r)});
    rids.push_back(r);
  }
  ASSERT_TRUE(backend->AddVersion(0, rids, base, {}).ok());
  RecordId next = 20;
  for (int v = 1; v <= 10; ++v) {
    rids.erase(rids.begin());  // drop oldest
    RecordId fresh = next++;
    rids.push_back(fresh);
    std::vector<NewRecord> nr = {
        {fresh, ProteinRow("P" + std::to_string(fresh), "Q", fresh)}};
    ASSERT_TRUE(backend->AddVersion(v, rids, nr, {v - 1}).ok());
  }
  auto last = backend->VersionRecords(10);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->size(), 20u);
  EXPECT_EQ(last->front(), 10);
  EXPECT_EQ(last->back(), 29);
  auto t = backend->Checkout(10, "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 20u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, DataModelTest,
    ::testing::Values(DataModelType::kATablePerVersion,
                      DataModelType::kCombinedTable,
                      DataModelType::kSplitByVlist,
                      DataModelType::kSplitByRlist,
                      DataModelType::kDeltaBased),
    [](const auto& info) {
      switch (info.param) {
        case DataModelType::kATablePerVersion: return "TablePerVersion";
        case DataModelType::kCombinedTable: return "Combined";
        case DataModelType::kSplitByVlist: return "SplitByVlist";
        case DataModelType::kSplitByRlist: return "SplitByRlist";
        case DataModelType::kDeltaBased: return "DeltaBased";
      }
      return "Unknown";
    });

TEST(DataModelStorageTest, PerVersionCostsMostRlistDeduplicates) {
  // The Chapter 4 storage ordering: a-table-per-version duplicates shared
  // records, split models store them once.
  auto per_version = DataModelBackend::Create(
      DataModelType::kATablePerVersion, ProteinSchema());
  auto rlist =
      DataModelBackend::Create(DataModelType::kSplitByRlist, ProteinSchema());
  for (auto* b : {per_version.get(), rlist.get()}) {
    std::vector<NewRecord> base;
    std::vector<RecordId> rids;
    for (RecordId r = 0; r < 100; ++r) {
      base.push_back({r, ProteinRow("P" + std::to_string(r), "Q", r)});
      rids.push_back(r);
    }
    ASSERT_TRUE(b->AddVersion(0, rids, base, {}).ok());
    // Ten further versions identical to the base: pure duplication.
    for (int v = 1; v <= 10; ++v) {
      ASSERT_TRUE(b->AddVersion(v, rids, {}, {v - 1}).ok());
    }
  }
  // With 11 identical versions, per-version stores every payload 11 times
  // while split-by-rlist stores payloads once plus 11 narrow rlists. (The
  // paper's 10x gap uses 100-attribute records; this table has 3.)
  EXPECT_GT(per_version->StorageBytes(), 3 * rlist->StorageBytes());
}

TEST(DataModelDeltaTest, MergePicksBaseWithMostSharedRecords) {
  auto backend =
      DataModelBackend::Create(DataModelType::kDeltaBased, ProteinSchema());
  PopulateFig32(backend.get());
  // v3 = {1,2,3,4}; shares 3 records with v1={1,2,3} and 3 with v2={0,1,2,4}.
  // Either base is valid; the checkout must still be exact.
  auto t = backend->Checkout(3, "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(CheckedOutRids(*t), (std::vector<RecordId>{1, 2, 3, 4}));
}

TEST(DataModelNameTest, Names) {
  EXPECT_STREQ(DataModelTypeName(DataModelType::kSplitByRlist),
               "split-by-rlist");
  EXPECT_STREQ(DataModelTypeName(DataModelType::kCombinedTable),
               "combined-table");
}

}  // namespace
}  // namespace orpheus::core
