#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace orpheus {
namespace {

using trace::Event;
using trace::EventType;
using trace::ThreadTrace;

// The tracer is process-global (like the metrics registry), so every test
// stops recording, resets capacity, and clears all rings around itself.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Stop();
    saved_capacity_ = trace::RingCapacity();
    trace::Clear();
  }
  void TearDown() override {
    trace::Stop();
    trace::SetRingCapacity(saved_capacity_);
    trace::Clear();
  }

  size_t saved_capacity_ = 0;
};

/// Events named `name` across all threads, in per-thread emit order.
std::vector<Event> EventsNamed(const std::vector<ThreadTrace>& threads,
                               const char* name) {
  std::vector<Event> out;
  for (const auto& t : threads) {
    for (const auto& e : t.events) {
      if (e.name != nullptr && std::strcmp(e.name, name) == 0) {
        out.push_back(e);
      }
    }
  }
  return out;
}

TEST_F(TraceTest, DisabledEmitsNothing) {
  ASSERT_FALSE(trace::IsActive());
  for (int i = 0; i < 10; ++i) trace::EmitInstant("test.disabled", i);
  ORPHEUS_TRACE_INSTANT("test.disabled_macro", 1);
  ORPHEUS_TRACE_COUNTER("test.disabled_counter", 2);
  { TraceSpan span("test.disabled_span"); }
  EXPECT_EQ(trace::NumBufferedEvents(), 0u);
  auto threads = trace::SnapshotAll();
  EXPECT_TRUE(EventsNamed(threads, "test.disabled").empty());
  EXPECT_TRUE(EventsNamed(threads, "test.disabled_span").empty());
}

TEST_F(TraceTest, StartStopBracketsRecording) {
  trace::EmitInstant("test.before", 0);  // stopped: dropped
  trace::Start();
  if (!trace::IsActive()) GTEST_SKIP() << "tracing compiled out";
  trace::EmitInstant("test.during", 1);
  trace::Stop();
  trace::EmitInstant("test.after", 2);  // stopped again: dropped
  auto threads = trace::SnapshotAll();
  EXPECT_TRUE(EventsNamed(threads, "test.before").empty());
  ASSERT_EQ(EventsNamed(threads, "test.during").size(), 1u);
  EXPECT_TRUE(EventsNamed(threads, "test.after").empty());
}

TEST_F(TraceTest, WraparoundKeepsNewestEvents) {
  trace::SetRingCapacity(64);
  trace::Clear();  // re-size this thread's ring
  EXPECT_EQ(trace::RingCapacity(), 64u);
  trace::Start();
  if (!trace::IsActive()) GTEST_SKIP() << "tracing compiled out";
  constexpr uint64_t kEmitted = 200;
  for (uint64_t i = 0; i < kEmitted; ++i) {
    trace::EmitInstant("test.wrap", i);
  }
  trace::Stop();
  auto events = EventsNamed(trace::SnapshotAll(), "test.wrap");
  ASSERT_EQ(events.size(), 64u);
  // Overwrite-oldest: exactly the newest 64 events survive, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, kEmitted - 64 + i);
  }
  EXPECT_EQ(events.back().arg, kEmitted - 1);
}

TEST_F(TraceTest, RingCapacityIsClamped) {
  trace::SetRingCapacity(1);
  EXPECT_EQ(trace::RingCapacity(), 16u);  // clamped to the minimum
  trace::SetRingCapacity(saved_capacity_);
  EXPECT_EQ(trace::RingCapacity(), saved_capacity_);
}

uint64_t CountType(const std::vector<Event>& events, EventType type) {
  uint64_t n = 0;
  for (const auto& e : events) n += e.type == type ? 1 : 0;
  return n;
}

TEST_F(TraceTest, SpanPairingSurvivesEarlyReturn) {
  if (!MetricsEnabled()) GTEST_SKIP() << "metrics disabled via env/build";
  trace::Start();
  auto early = [](bool bail) {
    TraceSpan span("test.early_span");
    if (bail) return 1;  // early return must still close the span
    return 2;
  };
  EXPECT_EQ(early(true), 1);
  EXPECT_EQ(early(false), 2);
  trace::Stop();
  auto events = EventsNamed(trace::SnapshotAll(), "test.early_span");
  EXPECT_EQ(CountType(events, EventType::kBegin), 2u);
  EXPECT_EQ(CountType(events, EventType::kEnd), 2u);
  // Both spans closed, so the export has complete (X) events and no
  // still-open (B) rows for this name.
  std::string json = trace::ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("test.early_span"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"B\""), std::string::npos);
}

TEST_F(TraceTest, PoolRunAttributesEventsToDistinctThreads) {
  if (!MetricsEnabled()) GTEST_SKIP() << "metrics disabled via env/build";
  constexpr int kDegree = 8;
  ThreadPool pool(kDegree);
  trace::Start();
  // A spin barrier forces every task onto its own thread (7 workers + the
  // helping submitter), so the trace must attribute spans to 8 tids.
  std::atomic<int> arrived{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int t = 0; t < kDegree; ++t) {
      group.Submit([&arrived] {
        TraceSpan outer("test.pool_outer");
        {
          TraceSpan inner("test.pool_inner");
          arrived.fetch_add(1);
          while (arrived.load() < kDegree) {
          }
        }
      });
    }
  }  // TaskGroup dtor waits
  trace::Stop();
  auto threads = trace::SnapshotAll();
  int threads_with_task = 0;
  for (const auto& t : threads) {
    std::vector<const Event*> ours;
    for (const auto& e : t.events) {
      if (e.name != nullptr &&
          (std::strcmp(e.name, "test.pool_outer") == 0 ||
           std::strcmp(e.name, "test.pool_inner") == 0)) {
        ours.push_back(&e);
      }
    }
    if (ours.empty()) continue;
    ++threads_with_task;
    // One task per thread, so the per-thread sequence is exactly the
    // nesting begin(outer) begin(inner) end(inner) end(outer)...
    ASSERT_EQ(ours.size(), 4u) << "thread " << t.name;
    EXPECT_EQ(ours[0]->type, EventType::kBegin);
    EXPECT_STREQ(ours[0]->name, "test.pool_outer");
    EXPECT_EQ(ours[1]->type, EventType::kBegin);
    EXPECT_STREQ(ours[1]->name, "test.pool_inner");
    EXPECT_EQ(ours[2]->type, EventType::kEnd);
    EXPECT_STREQ(ours[2]->name, "test.pool_inner");
    EXPECT_EQ(ours[3]->type, EventType::kEnd);
    EXPECT_STREQ(ours[3]->name, "test.pool_outer");
    // ...with monotone timestamps (one shared steady clock).
    for (size_t i = 1; i < ours.size(); ++i) {
      EXPECT_GE(ours[i]->ts_us, ours[i - 1]->ts_us);
    }
  }
  EXPECT_EQ(threads_with_task, kDegree);
}

TEST_F(TraceTest, ChromeJsonShape) {
  trace::SetCurrentThreadName("trace-test-main");
  trace::Start();
  if (!trace::IsActive()) GTEST_SKIP() << "tracing compiled out";
  trace::EmitBegin("test.json_span");
  trace::EmitInstant("test.json_instant", 7);
  trace::EmitCounter("test.json_counter", 42);
  trace::EmitEnd("test.json_span");
  trace::Stop();
  std::string json = trace::ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Thread metadata names our row.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"trace-test-main\""), std::string::npos);
  // One complete span, one instant with its payload, one counter sample.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"arg\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
}

TEST_F(TraceTest, ChromeJsonMarksStillOpenSpans) {
  trace::Start();
  if (!trace::IsActive()) GTEST_SKIP() << "tracing compiled out";
  trace::EmitBegin("test.open_span");
  trace::Stop();
  std::string json = trace::ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("test.open_span"), std::string::npos);
}

TEST_F(TraceTest, ProfileReportRendersSpanTree) {
  if (!MetricsEnabled()) GTEST_SKIP() << "metrics disabled via env/build";
  trace::Start();
  for (int i = 0; i < 3; ++i) {
    TraceSpan outer("test.profile_outer");
    TraceSpan inner("test.profile_inner");
  }
  trace::Stop();
  std::string report = trace::ProfileReport();
  EXPECT_NE(report.find("stage"), std::string::npos);
  EXPECT_NE(report.find("p95"), std::string::npos);
  EXPECT_NE(report.find("test.profile_outer"), std::string::npos);
  // The child renders indented under its parent, leaf name only.
  EXPECT_NE(report.find("  test.profile_inner"), std::string::npos);
  EXPECT_NE(report.find("3"), std::string::npos);  // count column
}

TEST_F(TraceTest, ProfileReportEmptyWithoutSpans) {
  EXPECT_EQ(trace::ProfileReport(), "(no spans traced)\n");
}

// The structured logger rides along in this suite: it is the other half of
// DESIGN.md §9 and has no binary of its own.

TEST(LogTest, TextFormatRendersFields) {
  std::string captured;
  log::CaptureForTest(&captured);
  log::SetLevelForTest(log::Level::kDebug);
  LOG_WARN("checkout slow", {{"cvd", "wine"}, {"ms", 1830}});
  log::CaptureForTest(nullptr);
  log::SetLevelForTest(log::Level::kInfo);
  EXPECT_NE(captured.find(" W "), std::string::npos);
  EXPECT_NE(captured.find("test_trace.cc:"), std::string::npos);
  EXPECT_NE(captured.find("checkout slow"), std::string::npos);
  EXPECT_NE(captured.find("cvd=wine"), std::string::npos);
  EXPECT_NE(captured.find("ms=1830"), std::string::npos);
}

TEST(LogTest, LevelFiltersRecords) {
  std::string captured;
  log::CaptureForTest(&captured);
  log::SetLevelForTest(log::Level::kError);
  EXPECT_FALSE(log::Enabled(log::Level::kWarn));
  EXPECT_TRUE(log::Enabled(log::Level::kError));
  LOG_WARN("should be filtered");
  LOG_ERROR("should appear");
  log::CaptureForTest(nullptr);
  log::SetLevelForTest(log::Level::kInfo);
  EXPECT_EQ(captured.find("should be filtered"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST(LogTest, QuotedValuesEscape) {
  std::string captured;
  log::CaptureForTest(&captured);
  log::SetLevelForTest(log::Level::kDebug);
  LOG_INFO("msg", {{"path", "a b\"c"}});
  log::CaptureForTest(nullptr);
  log::SetLevelForTest(log::Level::kInfo);
  EXPECT_NE(captured.find("path=\"a b\\\"c\""), std::string::npos);
}

TEST(LogConfigTest, UnopenableLogFileFallsBackToStderrWithWarning) {
  // A directory can never be opened for append, so this reliably exercises
  // the fallback path without touching the filesystem.
  ASSERT_EQ(::setenv("ORPHEUS_LOG_FILE", "/", 1), 0);
  log::ReinitFromEnvForTest();
  std::string captured;
  log::CaptureForTest(&captured);
  log::SetLevelForTest(log::Level::kInfo);
  LOG_INFO("first record after misconfig");
  LOG_INFO("second record");
  log::CaptureForTest(nullptr);
  ASSERT_EQ(::unsetenv("ORPHEUS_LOG_FILE"), 0);
  log::ReinitFromEnvForTest();
  log::SetLevelForTest(log::Level::kInfo);

  const size_t warning = captured.find("cannot open ORPHEUS_LOG_FILE");
  const size_t record = captured.find("first record after misconfig");
  ASSERT_NE(warning, std::string::npos) << captured;
  ASSERT_NE(record, std::string::npos) << captured;
  // The configuration warning is emitted once, ahead of the first record.
  EXPECT_LT(warning, record);
  EXPECT_EQ(captured.find("cannot open", warning + 1), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("second record"), std::string::npos);
}

}  // namespace
}  // namespace orpheus
