#!/usr/bin/env python3
"""Repository lint: rules the compiler and clang-tidy do not enforce.

Run from the repository root (the CMake `lint` target does):

    python3 tools/lint.py [paths...]

With no arguments, lints every .h/.cc file under src/ and tests/.

Rules
-----
void-cast
    `(void)` applied to a call expression. With [[nodiscard]] Status/Result
    this silently swallows errors; use ORPHEUS_IGNORE_ERROR(...) to discard
    a fallible call on purpose. `(void)name;` on a plain identifier (unused
    structured bindings or parameters) stays allowed.

include-guard
    Header guards must be ORPHEUS_<PATH>_H_ derived from the path under
    src/ (e.g. src/core/validate.h -> ORPHEUS_CORE_VALIDATE_H_).

bare-thread
    std::thread / std::jthread outside src/common/thread_pool.*. All
    parallelism goes through the shared pool (ThreadPool / ParallelFor) so
    thread counts and shutdown stay centrally controlled.

nondeterminism
    rand() / srand() / std::random_device / time(NULL) inside src/. Core
    algorithms must be reproducible: take a uint64 seed and use
    common/random.h (Xorshift).

raw-env
    getenv() / atoi() outside src/common/env.cc. Raw getenv+atoi silently
    maps garbage ("8abc", "") to a number; go through ParseEnvInt /
    ParseEnvBool (common/env.h), which validate and warn once.

raw-clock
    std::chrono::steady_clock outside src/common/. Timing goes through
    Timer (common/timer.h) or TraceSpan (common/metrics.h) so every
    measurement lands in the metrics registry and stays mockable.

raw-stderr
    std::cerr / fprintf(stderr, ...) inside src/ outside common/log.cc.
    Diagnostics go through the structured logger (LOG_INFO/WARN/ERROR in
    common/log.h) so level filtering, ORPHEUS_LOG_FILE redirection, and
    JSON-lines mode apply uniformly. Benches and tests keep direct stderr
    for progress output.

raw-sync
    std::mutex / std::shared_mutex / std::lock_guard / std::unique_lock /
    std::condition_variable (and friends) inside src/ outside
    common/sync.{h,cc}. All locking goes through the annotated wrappers
    (Mutex, MutexLock, CondVar in common/sync.h) so Clang thread-safety
    analysis and the ORPHEUS_DEADLOCK_DEBUG lock-order detector see every
    acquisition.

raw-file-write
    std::ofstream / std::fstream / fopen() inside src/ outside the durable
    storage layer (src/storage/), common/file_util.cc, and common/log.cc.
    Ad-hoc stream writes silently ignore short writes and full disks and
    leave half-written files on a crash; use WriteFileAtomic / FileWriter
    (common/file_util.h), which check errors and go through the failpoint
    sites the crash tests exercise. Reads (std::ifstream) stay allowed.

ridset-decompress
    GetIntArray() / AsIntArray() inside src/ outside the RidSet
    infrastructure and the sanctioned legacy-fallback sites. These calls
    materialize a compressed rlist/vlist cell into a plain vector; on the
    checkout hot path that silently undoes the membership-index
    compression. Probe in place instead (Contains/ContainsHint,
    IntersectToRows, JoinRidSet) or, for a genuine legacy path, add the
    file to the allowlist with a comment saying why.

Exit status: 0 when clean, 1 when any violation is found.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DIRS = ("src", "tests", "bench")

# (void) followed by something that ends in a call. Bare identifiers
# ((void)name;) do not match because of the trailing '('.
VOID_CAST_CALL = re.compile(
    r"\(\s*void\s*\)\s*[A-Za-z_][A-Za-z0-9_]*"
    r"(?:(?:::|\.|->)[A-Za-z_][A-Za-z0-9_]*|<[^;()]*>)*\s*\(")

# std::thread::id etc. is fine anywhere; only thread construction is banned.
BARE_THREAD = re.compile(r"\bstd::j?thread\b(?!\s*::)")
THREAD_ALLOWED = ("src/common/thread_pool.h", "src/common/thread_pool.cc")

NONDETERMINISM = re.compile(
    r"(?<![A-Za-z0-9_:])(?:s?rand\s*\(|std::random_device"
    r"|time\s*\(\s*(?:NULL|nullptr|0)\s*\))")
NONDETERMINISM_ALLOWED = ("src/common/random.h",)

# getenv / atoi anywhere except the env shim. `std::getenv` and plain
# `getenv` both match; `ParseEnvInt` etc. do not (lookbehind).
RAW_ENV = re.compile(r"(?<![A-Za-z0-9_])(?:std::)?(?:getenv|atoi)\s*\(")
RAW_ENV_ALLOWED = ("src/common/env.cc",)

RAW_CLOCK = re.compile(r"\bsteady_clock\b")
RAW_CLOCK_ALLOWED_PREFIX = "src/common/"

# Direct stderr writes in src/; `stderr` only matters as a stream argument
# (fprintf/fputs/fputc), so match the stream uses rather than the token.
RAW_STDERR = re.compile(
    r"\bstd::cerr\b|\bf(?:printf|puts|putc|write|flush)\s*\([^)]*\bstderr\b")
# sync.cc: the deadlock detector's abort path must not re-enter the logger
# (whose own mutex may be involved in the reported cycle).
RAW_STDERR_ALLOWED = ("src/common/log.cc", "src/common/sync.cc")

# Raw standard-library synchronization primitives outside the annotated
# wrapper layer. Everything locks through common/sync.h (Mutex, SharedMutex,
# MutexLock, CondVar) so the Clang thread-safety job and the runtime
# lock-order detector observe every acquisition.
RAW_SYNC = re.compile(
    r"\bstd::(?:mutex|shared_mutex|timed_mutex|recursive_mutex"
    r"|recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock"
    r"|shared_lock|scoped_lock|condition_variable|condition_variable_any)\b")
RAW_SYNC_ALLOWED = ("src/common/sync.h", "src/common/sync.cc")

# File *writes* must go through common/file_util.h (atomic replace + fsync +
# failpoints) or the storage layer built on it. std::ifstream (reads) is fine.
RAW_FILE_WRITE = re.compile(
    r"\bstd::o?fstream\b"
    r"|(?<![A-Za-z0-9_])(?:std::)?fopen\s*\(")
RAW_FILE_WRITE_ALLOWED = ("src/common/file_util.cc", "src/common/log.cc")
RAW_FILE_WRITE_ALLOWED_PREFIX = "src/storage/"

# Decompression of versioning array cells. Allowed only where the plain
# view is the point: the RidSet/Value/Column plumbing itself, the codec's
# raw fallback, the validator (which checks the materialized view against
# the compressed one), and the gated ORPHEUS_RIDSET=0 legacy joins.
RIDSET_DECOMPRESS = re.compile(r"\b(?:GetIntArray|AsIntArray)\s*\(")
RIDSET_DECOMPRESS_ALLOWED = (
    "src/minidb/column.h", "src/minidb/column.cc", "src/minidb/value.h",
    "src/minidb/value.cc", "src/minidb/table.cc", "src/storage/format.cc",
    "src/core/validate.cc", "src/core/partition_store.cc",
    "src/core/data_models.cc",
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line breaks."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail out of the literal
                    break
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel):
    """src/core/validate.h -> ORPHEUS_CORE_VALIDATE_H_"""
    inner = rel[len("src/"):] if rel.startswith("src/") else rel
    return "ORPHEUS_" + re.sub(r"[^A-Za-z0-9]", "_", inner).upper() + "_"


def lint_file(rel, violations):
    path = os.path.join(REPO_ROOT, rel)
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()

    for lineno, line in enumerate(lines, 1):
        if VOID_CAST_CALL.search(line):
            violations.append(
                (rel, lineno, "void-cast",
                 "raw (void) cast of a call; use ORPHEUS_IGNORE_ERROR(...)"))
        if rel not in THREAD_ALLOWED and BARE_THREAD.search(line):
            violations.append(
                (rel, lineno, "bare-thread",
                 "std::thread outside common/thread_pool; use ThreadPool "
                 "or ParallelFor"))
        if (rel.startswith("src/") and rel not in NONDETERMINISM_ALLOWED
                and NONDETERMINISM.search(line)):
            violations.append(
                (rel, lineno, "nondeterminism",
                 "banned nondeterminism source; seed a common/random.h "
                 "Xorshift instead"))
        if rel not in RAW_ENV_ALLOWED and RAW_ENV.search(line):
            violations.append(
                (rel, lineno, "raw-env",
                 "raw getenv/atoi; use ParseEnvInt / ParseEnvBool from "
                 "common/env.h"))
        if (not rel.startswith(RAW_CLOCK_ALLOWED_PREFIX)
                and RAW_CLOCK.search(line)):
            violations.append(
                (rel, lineno, "raw-clock",
                 "direct steady_clock use; go through Timer "
                 "(common/timer.h) or TraceSpan (common/metrics.h)"))
        if (rel.startswith("src/") and rel not in RAW_STDERR_ALLOWED
                and RAW_STDERR.search(line)):
            violations.append(
                (rel, lineno, "raw-stderr",
                 "direct stderr write; use LOG_INFO/WARN/ERROR "
                 "(common/log.h)"))
        if (rel.startswith("src/") and rel not in RAW_SYNC_ALLOWED
                and RAW_SYNC.search(line)):
            violations.append(
                (rel, lineno, "raw-sync",
                 "raw std:: sync primitive; use Mutex / MutexLock / CondVar "
                 "from common/sync.h"))
        if (rel.startswith("src/") and rel not in RAW_FILE_WRITE_ALLOWED
                and not rel.startswith(RAW_FILE_WRITE_ALLOWED_PREFIX)
                and RAW_FILE_WRITE.search(line)):
            violations.append(
                (rel, lineno, "raw-file-write",
                 "raw ofstream/fopen write; use WriteFileAtomic or "
                 "FileWriter (common/file_util.h)"))
        if (rel.startswith("src/") and rel not in RIDSET_DECOMPRESS_ALLOWED
                and RIDSET_DECOMPRESS.search(line)):
            violations.append(
                (rel, lineno, "ridset-decompress",
                 "GetIntArray/AsIntArray decompresses a versioning cell; "
                 "probe the RidSet in place (ContainsHint, IntersectToRows, "
                 "JoinRidSet) or extend the allowlist"))

    if rel.startswith("src/") and rel.endswith(".h"):
        guard = expected_guard(rel)
        m = re.search(r"^#ifndef\s+(\S+)", code, re.MULTILINE)
        if m is None:
            violations.append((rel, 1, "include-guard",
                               "missing include guard %s" % guard))
        elif m.group(1) != guard:
            lineno = code[:m.start()].count("\n") + 1
            violations.append(
                (rel, lineno, "include-guard",
                 "guard %s should be %s" % (m.group(1), guard)))


def collect_files(argv):
    if argv:
        rels = []
        for a in argv:
            rels.append(os.path.relpath(os.path.abspath(a), REPO_ROOT))
        return rels
    rels = []
    for d in DEFAULT_DIRS:
        for root, _, names in os.walk(os.path.join(REPO_ROOT, d)):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    rels.append(
                        os.path.relpath(os.path.join(root, name), REPO_ROOT))
    return sorted(rels)


def main(argv):
    violations = []
    files = collect_files(argv)
    for rel in files:
        lint_file(rel.replace(os.sep, "/"), violations)
    for rel, lineno, rule, msg in violations:
        print("%s:%d: [%s] %s" % (rel, lineno, rule, msg))
    if violations:
        print("lint: %d violation(s) in %d file(s) checked"
              % (len(violations), len(files)))
        return 1
    print("lint: %d file(s) clean" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
