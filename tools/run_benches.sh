#!/usr/bin/env bash
# Run the paper's headline benchmarks at small scale and write their
# machine-readable metrics snapshots to the repo root as BENCH_<name>.json
# (schema: tools/metrics_schema.json, checked by check_metrics_schema.py).
#
# Usage: tools/run_benches.sh [build_dir]   (default: build)
#
# The committed BENCH_*.json files carry the compressed-membership-index
# comparison gauges (bench.ridset.*): checkout time and versioning bytes
# with ORPHEUS_RIDSET off vs on, measured in one process from one binary.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 2
fi

run() {
  local name="$1"
  shift
  echo "=== $name ===" >&2
  "$BUILD_DIR/bench/$name" --scale=small "$@" \
    --metrics-json "BENCH_${name#bench_}.json"
}

run bench_checkout_cost_model
run bench_data_models
run bench_partitioning_tradeoff --quick
run bench_session
run bench_net_session

for f in BENCH_checkout_cost_model.json BENCH_data_models.json \
         BENCH_partitioning_tradeoff.json BENCH_session.json \
         BENCH_net_session.json; do
  python3 tools/check_metrics_schema.py "$f"
done
