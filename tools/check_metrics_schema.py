#!/usr/bin/env python3
"""Validate a --metrics-json file against tools/metrics_schema.json.

Usage: python3 tools/check_metrics_schema.py <metrics.json> [schema.json]

Implements only the JSON-Schema subset the schema uses — type, properties,
required, additionalProperties, minimum — with no third-party dependencies,
so CI can run it on a bare python3. Exit status: 0 valid, 1 invalid or
unreadable.
"""

import json
import os
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        py_type = TYPES[expected]
        ok = isinstance(value, py_type)
        # bool is a subclass of int in Python; "integer" must not accept it.
        if ok and expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            errors.append("%s: expected %s, got %s"
                          % (path, expected, type(value).__name__))
            return

    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append("%s: %r below minimum %r"
                          % (path, value, schema["minimum"]))

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                errors.append("%s: missing required key %r" % (path, name))
        additional = schema.get("additionalProperties", True)
        for name, child in value.items():
            child_path = "%s.%s" % (path, name)
            if name in props:
                validate(child, props[name], child_path, errors)
            elif isinstance(additional, dict):
                validate(child, additional, child_path, errors)
            elif additional is False:
                errors.append("%s: unexpected key %r" % (path, name))


def main(argv):
    if len(argv) < 1:
        print(__doc__.strip())
        return 1
    default_schema = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "metrics_schema.json")
    schema_path = argv[1] if len(argv) > 1 else default_schema
    try:
        with open(argv[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("%s: %s" % (argv[0], e))
        return 1
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    validate(doc, schema, "$", errors)
    for e in errors:
        print(e)
    if errors:
        print("%s: INVALID (%d error(s))" % (argv[0], len(errors)))
        return 1
    print("%s: ok (%d counters, %d gauges, %d histograms, %d spans)"
          % (argv[0], len(doc.get("counters", {})), len(doc.get("gauges", {})),
             len(doc.get("histograms", {})), len(doc.get("spans", {}))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
