#!/usr/bin/env python3
"""Validate a --trace-out / `trace dump` file as Chrome trace-event JSON.

Usage: python3 tools/check_trace_schema.py <trace.json>

Checks the subset of the trace-event format the exporter emits (and that
chrome://tracing / Perfetto rely on):

  - top level: object with a "traceEvents" array (and optional
    "displayTimeUnit")
  - every event: object with string "ph" in {X, B, E, i, C, M} and
    integer "pid"/"tid"
  - X/B/E/i/C events: string "name" and non-negative integer "ts";
    X additionally a non-negative integer "dur"; i a "s" scope string
  - C events: an "args" object with at least one numeric series
  - M metadata: "name" in {process_name, thread_name} with args.name a
    string; every tid referenced by an event must be named by a
    thread_name row

No third-party dependencies, so CI can run it on a bare python3.
Exit status: 0 valid, 1 invalid or unreadable.
"""

import json
import sys

EVENT_PHASES = ("X", "B", "E", "i", "C", "M")
METADATA_NAMES = ("process_name", "thread_name")


def check_int(event, key, path, errors, required=True, minimum=None):
    if key not in event:
        if required:
            errors.append("%s: missing %r" % (path, key))
        return None
    value = event[key]
    if isinstance(value, bool) or not isinstance(value, int):
        errors.append("%s: %r must be an integer, got %s"
                      % (path, key, type(value).__name__))
        return None
    if minimum is not None and value < minimum:
        errors.append("%s: %r is %d, below %d" % (path, key, value, minimum))
    return value


def check_str(event, key, path, errors):
    if key not in event:
        errors.append("%s: missing %r" % (path, key))
        return None
    if not isinstance(event[key], str):
        errors.append("%s: %r must be a string, got %s"
                      % (path, key, type(event[key]).__name__))
        return None
    return event[key]


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["$: top level must be an object"], {}
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["$.traceEvents: missing or not an array"], {}

    counts = {ph: 0 for ph in EVENT_PHASES}
    named_tids = set()
    used_tids = set()
    for i, event in enumerate(events):
        path = "$.traceEvents[%d]" % i
        if not isinstance(event, dict):
            errors.append("%s: not an object" % path)
            continue
        ph = check_str(event, "ph", path, errors)
        if ph is None:
            continue
        if ph not in EVENT_PHASES:
            errors.append("%s: unknown phase %r" % (path, ph))
            continue
        counts[ph] += 1
        check_int(event, "pid", path, errors)
        tid = check_int(event, "tid", path, errors)

        if ph == "M":
            name = check_str(event, "name", path, errors)
            if name is not None and name not in METADATA_NAMES:
                errors.append("%s: unknown metadata row %r" % (path, name))
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(
                    args.get("name"), str):
                errors.append("%s: metadata needs args.name string" % path)
            elif name == "thread_name" and tid is not None:
                named_tids.add(tid)
            continue

        if tid is not None:
            used_tids.add(tid)
        check_str(event, "name", path, errors)
        check_int(event, "ts", path, errors, minimum=0)
        if ph == "X":
            check_int(event, "dur", path, errors, minimum=0)
        if ph == "i" and not isinstance(event.get("s"), str):
            errors.append("%s: instant needs a scope string %r" % (path, "s"))
        if ph == "C":
            args = event.get("args")
            if (not isinstance(args, dict) or not args
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool)
                               for v in args.values())):
                errors.append("%s: counter needs numeric args" % path)

    for tid in sorted(used_tids - named_tids):
        errors.append("$.traceEvents: tid %d has events but no thread_name "
                      "metadata" % tid)
    return errors, counts


def main(argv):
    if len(argv) != 1:
        print(__doc__.strip())
        return 1
    try:
        with open(argv[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("%s: %s" % (argv[0], e))
        return 1

    errors, counts = validate(doc)
    for e in errors:
        print(e)
    if errors:
        print("%s: INVALID (%d error(s))" % (argv[0], len(errors)))
        return 1
    print("%s: ok (%d complete, %d open, %d instant, %d counter, "
          "%d metadata)" % (argv[0], counts["X"], counts["B"], counts["i"],
                            counts["C"], counts["M"]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
