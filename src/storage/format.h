#ifndef ORPHEUS_STORAGE_FORMAT_H_
#define ORPHEUS_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "core/cvd.h"

namespace orpheus::storage {

/// Versioned binary on-disk format shared by snapshots and the WAL
/// (DESIGN.md §10.2). All integers are little-endian fixed-width; strings
/// are length-prefixed; doubles are IEEE-754 bit patterns. Every frame is
/// length-prefixed and CRC32C-checksummed so corruption is detected at the
/// frame that contains it, with a byte offset in the error.

/// Version 2: rid lists (version membership and kIntArray values) are
/// stored as tagged payloads — raw i64 lists for short or unsorted arrays,
/// packed RidSet chunk blobs (common/ridset.h) otherwise — instead of one
/// fixed-width i64 per element.
///
/// Version 3: logical-clock fields (CvdState.logical_clock, the metadata
/// checkout/commit timestamps, CvdCommitRecord.logical_clock_after) are
/// i64 instead of IEEE doubles (a double silently loses increments past
/// 2^53). The domain codecs below take the file's format version and
/// dual-read: v2 files decode the old double fields and convert (every v2
/// clock is a whole number, so the cast is exact). Writers opened on a v2
/// file keep appending v2-encoded records so the file stays self-
/// consistent; the first checkpoint rewrites everything at v3.
inline constexpr uint32_t kFormatVersion = 3;
/// Oldest format version the readers still understand.
inline constexpr uint32_t kMinFormatVersion = 2;

/// CRC32C (Castagnoli, the checksum RocksDB/ext4/iSCSI use), software
/// table-driven. Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(std::string_view data);

/// Checksum of a snapshot/WAL file header (magic | version | seq). Stored
/// in the header's formerly-reserved u32 at v3+, so a bit flip anywhere in
/// the header — including one that rewrites the version into another
/// accepted value — is caught before the payload is decoded with the wrong
/// rules. v2 writers always put 0 there; readers enforce exactly that.
uint32_t HeaderCrc(std::string_view magic, uint32_t version, uint64_t seq);

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader. Every getter returns DataLoss with the absolute
/// byte offset (`base_offset` + local position) on truncation, so callers
/// can report exactly where a file went bad.
class Decoder {
 public:
  explicit Decoder(std::string_view data, uint64_t base_offset = 0)
      : data_(data), base_(base_offset) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<int32_t> GetI32();
  Result<double> GetDouble();
  Result<std::string> GetString();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }
  uint64_t file_offset() const { return base_ + pos_; }

 private:
  Status Truncated(const char* what, size_t need) const;

  std::string_view data_;
  uint64_t base_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Checksummed frames
// ---------------------------------------------------------------------------

enum class FrameType : uint8_t {
  kCvdState = 1,   // snapshot: one serialized CvdState
  kFooter = 2,     // snapshot: trailing frame carrying the CVD count
  kWalCreate = 3,  // WAL: CVD created (payload: CvdState)
  kWalCommit = 4,  // WAL: one commit (payload: name + CvdCommitRecord)
  kWalDrop = 5,    // WAL: CVD dropped (payload: name)
};

/// Wire layout of one frame:
///   u32 payload_size | u32 crc32c(type byte + payload) | u8 type | payload
inline constexpr size_t kFrameHeaderSize = 9;

void AppendFrame(std::string* out, FrameType type, std::string_view payload);

struct Frame {
  FrameType type = FrameType::kCvdState;
  std::string_view payload;
  uint64_t offset = 0;  // where the frame header starts in the file
};

/// Read one frame from `data` at `*pos` (advancing it past the frame).
/// Outcomes:
///  - frame parsed: returns OK, fills `*frame`;
///  - the frame extends past end-of-data, or its checksum fails *and* it is
///    the final bytes: returns OK with `*torn_tail` = true (an interrupted
///    append — recoverable by truncating at `*pos`);
///  - checksum failure with more data after the frame: DataLoss at the
///    offending offset (silent mid-file corruption — not recoverable).
/// Callers must check `*pos < data.size()` before calling (clean EOF).
Status ReadFrame(std::string_view data, uint64_t base_offset, size_t* pos,
                 Frame* frame, bool* torn_tail);

// ---------------------------------------------------------------------------
// Domain encoding
// ---------------------------------------------------------------------------

/// The domain codecs are parameterized on the container file's format
/// version (read from the snapshot/WAL header): clock fields are i64 at
/// v3+, doubles at v2. Encoders accept an old version so a writer
/// appending to a v2 WAL keeps the file uniform.
void EncodeCvdState(const core::CvdState& state, Encoder* enc,
                    uint32_t version = kFormatVersion);
Result<core::CvdState> DecodeCvdState(Decoder* dec, uint32_t version);

void EncodeCommitRecord(const core::CvdCommitRecord& record, Encoder* enc,
                        uint32_t version = kFormatVersion);
Result<core::CvdCommitRecord> DecodeCommitRecord(Decoder* dec,
                                                 uint32_t version);

void EncodeValue(const minidb::Value& value, Encoder* enc);
Result<minidb::Value> DecodeValue(Decoder* dec);

/// Rid-list payload: u8 tag — 0 = raw (u32 count + i64 each, the defensive
/// encoding for short or non-sorted-unique lists), 1 = packed RidSet chunk
/// blob. The choice is a deterministic function of the list contents, so
/// the bytes written do not depend on the in-memory representation (or on
/// ORPHEUS_RIDSET).
void EncodeRidList(const std::vector<int64_t>& rids, Encoder* enc);
Result<std::vector<int64_t>> DecodeRidList(Decoder* dec);

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_FORMAT_H_
