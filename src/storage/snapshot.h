#ifndef ORPHEUS_STORAGE_SNAPSHOT_H_
#define ORPHEUS_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/cvd.h"

namespace orpheus::storage {

/// Snapshot file (DESIGN.md §10.3): the full logical state of every CVD in
/// the repository at checkpoint sequence `seq`.
///
/// Layout:
///   16-byte header: magic "ORPHSNP1" | u32 format version | u32 reserved
///   u64 checkpoint sequence number
///   one kCvdState frame per CVD
///   one kFooter frame: u32 CVD count (detects a truncated frame sequence
///   that happens to end on a frame boundary)
///
/// Snapshots are written to `<path>.tmp` and atomically renamed into place
/// (fsync file, rename, fsync directory), so a crash mid-write never leaves
/// a partial snapshot under the live name.

inline constexpr char kSnapshotMagic[] = "ORPHSNP1";  // 8 bytes, no NUL

struct SnapshotContents {
  uint64_t seq = 0;
  /// Format version read from the header (kMinFormatVersion..kFormatVersion;
  /// new snapshots are always written at kFormatVersion).
  uint32_t version = 0;
  std::vector<core::CvdState> cvds;
};

/// Serialize + durably write the snapshot to `path` via temp-file + rename.
Status WriteSnapshot(const std::string& path, uint64_t seq,
                     const std::vector<core::CvdState>& cvds);

/// Read and verify a snapshot. Any corruption — bad magic, bad version,
/// frame checksum failure, truncation, trailing garbage, footer/count
/// mismatch — returns DataLoss naming `path` and the byte offset.
Result<SnapshotContents> ReadSnapshot(const std::string& path);

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_SNAPSHOT_H_
