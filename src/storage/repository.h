#ifndef ORPHEUS_STORAGE_REPOSITORY_H_
#define ORPHEUS_STORAGE_REPOSITORY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/cvd.h"
#include "storage/wal.h"

namespace orpheus::storage {

/// Crash-safe durable repository (DESIGN.md §10): a directory holding
///   CURRENT           -> "snapshot-<seq>\n" (atomically replaced pointer)
///   snapshot-<seq>    -> full state at checkpoint seq (snapshot.h)
///   wal-<seq>         -> commits/creates/drops since that snapshot (wal.h)
///
/// Open() reads CURRENT, loads the snapshot, replays the WAL (truncating a
/// torn tail), validates every recovered CVD, and returns a Repository
/// whose WAL is positioned for appending. Commits are logged write-AHEAD:
/// Cvd::CommitTable hands the planned commit record to its observer (which
/// lands here) before applying it in memory, so a failed append aborts the
/// commit with no phantom in-memory version; the repository still enters
/// degraded mode (no further logging is acknowledged — reopen to recover)
/// because the WAL file may hold a torn tail. Checkpoint() folds the WAL
/// into a fresh snapshot and starts a new epoch.
///
/// Concurrent committers use group commit (DESIGN.md §13.3): EnqueueCommit
/// queues the record and returns a ticket; WaitCommitDurable elects the
/// first waiter as leader, which appends every queued record under ONE
/// fsync while the repository lock is released — later committers keep
/// enqueueing meanwhile and are batched into the next flush.
class Repository {
 public:
  struct Stats {
    uint64_t seq = 0;              // current checkpoint epoch
    uint64_t wal_records = 0;      // records replayed + appended this epoch
    uint64_t wal_bytes = 0;        // current WAL size in bytes
    bool recovered_torn_tail = false;
  };

  /// Open (or initialize) a repository at `dir`. A missing directory or a
  /// directory without CURRENT is initialized fresh (seq 1, empty
  /// snapshot, empty WAL). Corruption anywhere -> DataLoss with the file
  /// and offset; a torn WAL tail is repaired silently (logged + counted).
  static Result<std::unique_ptr<Repository>> Open(const std::string& dir);

  ~Repository();
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  /// The CVDs recovered by Open(), handed over exactly once (the CLI owns
  /// them afterwards and wires each Cvd's commit observer to LogCommit).
  std::vector<std::unique_ptr<core::Cvd>> TakeCvds();

  /// Durably log a freshly initialized CVD / one commit / a drop.
  /// LogCommit is EnqueueCommit + WaitCommitDurable (a group of >= 1).
  Status LogCreate(const core::Cvd& cvd);
  Status LogCommit(const std::string& cvd_name,
                   const core::CvdCommitRecord& record);
  Status LogDrop(const std::string& cvd_name);

  /// Group commit. Enqueue the record for the WAL and return its ticket;
  /// records are written in ticket order. The caller must follow up with
  /// WaitCommitDurable before acknowledging the commit. Enqueue order is
  /// the WAL order, so callers serialize Enqueue with their in-memory
  /// apply (the session layer holds its commit lock across both).
  Result<uint64_t> EnqueueCommit(const std::string& cvd_name,
                                 const core::CvdCommitRecord& record)
      ORPHEUS_EXCLUDES(mu_);

  /// Block until the batch containing `ticket` is fsync'd (leading the
  /// flush if no leader is active). Returns the batch's append status:
  /// non-OK means the record is NOT durable and the repository is
  /// degraded.
  Status WaitCommitDurable(uint64_t ticket) ORPHEUS_EXCLUDES(mu_);

  /// WaitCommitDurable with a deadline. When another committer is leading
  /// the flush (e.g. stalled in fsync) and `ticket`'s batch is still not
  /// durable at the deadline, returns DeadlineExceeded: durability is then
  /// UNKNOWN — the record stays queued/in-flight and the caller may wait
  /// again. When no leader is active this waiter leads the flush itself,
  /// to completion regardless of the deadline: its own in-progress write
  /// cannot be safely abandoned, and without a leader the queue would
  /// never drain. So the deadline bounds waiting on *others*, not this
  /// thread's own fsync.
  Status WaitCommitDurableFor(uint64_t ticket, const Deadline& deadline)
      ORPHEUS_EXCLUDES(mu_);

  /// Fold the current state (passed in by the owner of the CVDs) into a
  /// new snapshot, start a fresh WAL, repoint CURRENT, and remove the old
  /// epoch's files. Crash-safe at every step: until CURRENT is replaced,
  /// recovery uses the old snapshot+WAL; afterwards, the new one.
  Status Checkpoint(const std::vector<const core::Cvd*>& cvds);

  /// Checkpoint + close the WAL. The repository is unusable afterwards.
  Status Close(const std::vector<const core::Cvd*>& cvds);

  /// Verify the on-disk state of a repository directory without opening
  /// it for writing: snapshot + WAL parse cleanly, every CVD passes the
  /// in-memory invariant validator. Returns per-file detail lines.
  static Result<std::vector<std::string>> Fsck(const std::string& dir);

  /// True once a WAL append has failed: in-memory state is ahead of the
  /// log, so further commits are refused until the repository is reopened.
  bool degraded() const ORPHEUS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return degraded_;
  }

  const std::string& dir() const { return dir_; }

  /// Snapshot of the durability counters. By value: a reference into the
  /// guarded struct would escape the lock.
  Stats stats() const ORPHEUS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  Repository(std::string dir, uint64_t seq, WalWriter wal);

  Status RequireHealthy() ORPHEUS_REQUIRES(mu_);
  Status AppendRecord(const WalRecord& record) ORPHEUS_REQUIRES(mu_);
  /// Checkpoint body, factored out so Close can run it under its own lock.
  Status CheckpointLocked(const std::vector<const core::Cvd*>& cvds)
      ORPHEUS_REQUIRES(mu_);
  Result<uint64_t> EnqueueCommitLocked(const std::string& cvd_name,
                                       const core::CvdCommitRecord& record)
      ORPHEUS_REQUIRES(mu_);
  Status WaitCommitDurableLocked(uint64_t ticket, const Deadline& deadline)
      ORPHEUS_REQUIRES(mu_);
  /// Flush the whole pending queue as leader: swap it out, release mu_,
  /// append + fsync the batch, re-acquire mu_, publish the outcome.
  void LeadBatchLocked() ORPHEUS_REQUIRES(mu_);
  /// Wait until no leader is mid-flush and no commit is pending (leading
  /// flushes ourselves if needed). Direct WAL users (creates, drops,
  /// checkpoints, close) call this first: it orders them after every
  /// enqueued commit and guarantees exclusive use of the WAL file.
  void DrainCommitsLocked() ORPHEUS_REQUIRES(mu_);

  const std::string dir_;  // immutable after construction

  // One coarse lock serializes all logging/checkpoint state: WAL appends
  // fsync, so the lock hold time is dominated by the disk anyway. Rank
  // kRepository is the lowest in the table — the repository may call into
  // every common/ subsystem (logger, metrics, failpoints) while held.
  mutable Mutex mu_{"storage.repository", lock_rank::kRepository};
  uint64_t seq_ ORPHEUS_GUARDED_BY(mu_) = 0;
  std::optional<WalWriter> wal_ ORPHEUS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<core::Cvd>> recovered_ ORPHEUS_GUARDED_BY(mu_);
  bool degraded_ ORPHEUS_GUARDED_BY(mu_) = false;
  bool closed_ ORPHEUS_GUARDED_BY(mu_) = false;
  Stats stats_ ORPHEUS_GUARDED_BY(mu_);

  // Group-commit state. Tickets are dense: record for ticket t is the
  // (t - durable_ticket_)'th entry of pending_ once the earlier ones are
  // flushed. While leader_active_ the in-flight leader owns the WAL file
  // with mu_ released; everyone else keeps enqueueing or waits.
  std::vector<WalRecord> pending_ ORPHEUS_GUARDED_BY(mu_);
  uint64_t enqueued_ticket_ ORPHEUS_GUARDED_BY(mu_) = 0;
  uint64_t durable_ticket_ ORPHEUS_GUARDED_BY(mu_) = 0;
  /// First ticket of the failed range (0 = no failure). Tickets >= this
  /// were never made durable: their waiters get batch_error_.
  uint64_t failed_from_ticket_ ORPHEUS_GUARDED_BY(mu_) = 0;
  Status batch_error_ ORPHEUS_GUARDED_BY(mu_);
  bool leader_active_ ORPHEUS_GUARDED_BY(mu_) = false;
  CondVar commit_cv_;
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_REPOSITORY_H_
