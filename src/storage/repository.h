#ifndef ORPHEUS_STORAGE_REPOSITORY_H_
#define ORPHEUS_STORAGE_REPOSITORY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/cvd.h"
#include "storage/wal.h"

namespace orpheus::storage {

/// Crash-safe durable repository (DESIGN.md §10): a directory holding
///   CURRENT           -> "snapshot-<seq>\n" (atomically replaced pointer)
///   snapshot-<seq>    -> full state at checkpoint seq (snapshot.h)
///   wal-<seq>         -> commits/creates/drops since that snapshot (wal.h)
///
/// Open() reads CURRENT, loads the snapshot, replays the WAL (truncating a
/// torn tail), validates every recovered CVD, and returns a Repository
/// whose WAL is positioned for appending. Commits are logged write-behind:
/// the in-memory commit happens first, then the WAL append+fsync; if the
/// append fails the commit's caller sees the error and the repository
/// enters degraded mode (no further logging is acknowledged — reopen to
/// recover). Checkpoint() folds the WAL into a fresh snapshot and starts a
/// new epoch.
class Repository {
 public:
  struct Stats {
    uint64_t seq = 0;              // current checkpoint epoch
    uint64_t wal_records = 0;      // records replayed + appended this epoch
    uint64_t wal_bytes = 0;        // current WAL size in bytes
    bool recovered_torn_tail = false;
  };

  /// Open (or initialize) a repository at `dir`. A missing directory or a
  /// directory without CURRENT is initialized fresh (seq 1, empty
  /// snapshot, empty WAL). Corruption anywhere -> DataLoss with the file
  /// and offset; a torn WAL tail is repaired silently (logged + counted).
  static Result<std::unique_ptr<Repository>> Open(const std::string& dir);

  ~Repository();
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  /// The CVDs recovered by Open(), handed over exactly once (the CLI owns
  /// them afterwards and wires each Cvd's commit observer to LogCommit).
  std::vector<std::unique_ptr<core::Cvd>> TakeCvds();

  /// Durably log a freshly initialized CVD / one commit / a drop.
  Status LogCreate(const core::Cvd& cvd);
  Status LogCommit(const std::string& cvd_name,
                   const core::CvdCommitRecord& record);
  Status LogDrop(const std::string& cvd_name);

  /// Fold the current state (passed in by the owner of the CVDs) into a
  /// new snapshot, start a fresh WAL, repoint CURRENT, and remove the old
  /// epoch's files. Crash-safe at every step: until CURRENT is replaced,
  /// recovery uses the old snapshot+WAL; afterwards, the new one.
  Status Checkpoint(const std::vector<const core::Cvd*>& cvds);

  /// Checkpoint + close the WAL. The repository is unusable afterwards.
  Status Close(const std::vector<const core::Cvd*>& cvds);

  /// Verify the on-disk state of a repository directory without opening
  /// it for writing: snapshot + WAL parse cleanly, every CVD passes the
  /// in-memory invariant validator. Returns per-file detail lines.
  static Result<std::vector<std::string>> Fsck(const std::string& dir);

  /// True once a WAL append has failed: in-memory state is ahead of the
  /// log, so further commits are refused until the repository is reopened.
  bool degraded() const ORPHEUS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return degraded_;
  }

  const std::string& dir() const { return dir_; }

  /// Snapshot of the durability counters. By value: a reference into the
  /// guarded struct would escape the lock.
  Stats stats() const ORPHEUS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  Repository(std::string dir, uint64_t seq, WalWriter wal);

  Status RequireHealthy() ORPHEUS_REQUIRES(mu_);
  Status AppendRecord(const WalRecord& record) ORPHEUS_REQUIRES(mu_);
  /// Checkpoint body, factored out so Close can run it under its own lock.
  Status CheckpointLocked(const std::vector<const core::Cvd*>& cvds)
      ORPHEUS_REQUIRES(mu_);

  const std::string dir_;  // immutable after construction

  // One coarse lock serializes all logging/checkpoint state: WAL appends
  // fsync, so the lock hold time is dominated by the disk anyway. Rank
  // kRepository is the lowest in the table — the repository may call into
  // every common/ subsystem (logger, metrics, failpoints) while held.
  mutable Mutex mu_{"storage.repository", lock_rank::kRepository};
  uint64_t seq_ ORPHEUS_GUARDED_BY(mu_) = 0;
  std::optional<WalWriter> wal_ ORPHEUS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<core::Cvd>> recovered_ ORPHEUS_GUARDED_BY(mu_);
  bool degraded_ ORPHEUS_GUARDED_BY(mu_) = false;
  bool closed_ ORPHEUS_GUARDED_BY(mu_) = false;
  Stats stats_ ORPHEUS_GUARDED_BY(mu_);
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_REPOSITORY_H_
