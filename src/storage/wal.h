#ifndef ORPHEUS_STORAGE_WAL_H_
#define ORPHEUS_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/file_util.h"
#include "common/result.h"
#include "common/status.h"
#include "core/cvd.h"
#include "storage/format.h"

namespace orpheus::storage {

/// Write-ahead log (DESIGN.md §10.4). One WAL file per checkpoint epoch:
///   16-byte header: magic "ORPHWAL1" | u32 format version | u32 reserved
///   u64 checkpoint sequence (must match the live snapshot's)
///   zero or more frames, each one durable record:
///     kWalCreate: CvdState of a freshly initialized CVD
///     kWalCommit: cvd name + CvdCommitRecord
///     kWalDrop:   cvd name
/// Appends are fsync'd before the commit returns. Concurrent committers go
/// through AppendBatch: the repository's group-commit leader concatenates
/// every queued record into one write and one fsync (DESIGN.md §13.3).
///
/// On replay, a final frame that is truncated or checksum-bad is a torn
/// tail — the record was never acknowledged, so it is safely truncated
/// away. A bad frame with more frames after it is DataLoss.

inline constexpr char kWalMagic[] = "ORPHWAL1";  // 8 bytes, no NUL

struct WalCreateRecord {
  core::CvdState state;
};
struct WalCommitRecord {
  std::string cvd;
  core::CvdCommitRecord record;
};
struct WalDropRecord {
  std::string cvd;
};
using WalRecord = std::variant<WalCreateRecord, WalCommitRecord, WalDropRecord>;

struct WalContents {
  uint64_t seq = 0;
  /// Format version read from the header (kMinFormatVersion..kFormatVersion).
  uint32_t version = 0;
  std::vector<WalRecord> records;
  /// True when the final frame was interrupted mid-append; `valid_bytes`
  /// is the prefix length holding only whole, verified frames — the caller
  /// truncates the file there before appending again.
  bool torn_tail = false;
  uint64_t valid_bytes = 0;
};

/// Parse and verify a WAL file. Torn tails are reported, not errors;
/// mid-file corruption is DataLoss naming `path` and the byte offset.
Result<WalContents> ReadWal(const std::string& path);

/// Appender over one WAL file. Not thread-safe (the repository serializes
/// commits through it).
class WalWriter {
 public:
  /// Create a fresh WAL for checkpoint epoch `seq` (header written+synced,
  /// always at the current kFormatVersion).
  static Result<WalWriter> Create(const std::string& path, uint64_t seq);
  /// Reopen an existing WAL for appending at `offset` (bytes past it — a
  /// torn tail found by ReadWal — are truncated away first). `version` is
  /// the format version ReadWal found in the header: appended records are
  /// encoded at that version so the file stays self-consistent.
  static Result<WalWriter> Open(const std::string& path, uint64_t offset,
                                uint32_t version = kFormatVersion);

  /// Serialize, append, and fsync one record. On failure the WAL's durable
  /// contents are unchanged or hold a torn tail that replay truncates —
  /// the commit was never applied in memory (log-before-apply), but the
  /// repository still degrades because this writer's file position may no
  /// longer match the file.
  Status Append(const WalRecord& record);

  /// Group commit: append every record as consecutive frames with a single
  /// write and a single fsync. All-or-nothing durability per batch: on
  /// failure none of the records is acknowledged (a torn tail inside the
  /// batch is truncated on replay, exactly like a torn single append).
  Status AppendBatch(const std::vector<WalRecord>& records);

  Status Sync() { return file_.Sync(); }
  Status Close() { return file_.Close(); }
  uint64_t offset() const { return file_.offset(); }
  const std::string& path() const { return file_.path(); }
  uint32_t version() const { return version_; }

 private:
  WalWriter(FileWriter file, uint32_t version)
      : file_(std::move(file)), version_(version) {}

  FileWriter file_;
  uint32_t version_ = kFormatVersion;
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_WAL_H_
