#include "storage/snapshot.h"

#include <utility>

#include "common/failpoint.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "storage/format.h"

namespace orpheus::storage {

namespace {

constexpr size_t kMagicSize = 8;
constexpr size_t kHeaderSize = kMagicSize + 4 + 4 + 8;  // magic|ver|rsvd|seq

}  // namespace

Status WriteSnapshot(const std::string& path, uint64_t seq,
                     const std::vector<core::CvdState>& cvds) {
  ORPHEUS_TRACE_SPAN("storage.snapshot.write");
  Encoder header;
  header.PutU32(kFormatVersion);
  header.PutU32(HeaderCrc({kSnapshotMagic, kMagicSize}, kFormatVersion, seq));
  header.PutU64(seq);
  std::string data(kSnapshotMagic, kMagicSize);
  data.append(header.data());

  for (const core::CvdState& state : cvds) {
    ORPHEUS_FAILPOINT("storage.snapshot.frame");
    Encoder enc;
    EncodeCvdState(state, &enc);
    AppendFrame(&data, FrameType::kCvdState, enc.data());
  }
  Encoder footer;
  footer.PutU32(static_cast<uint32_t>(cvds.size()));
  AppendFrame(&data, FrameType::kFooter, footer.data());

  ORPHEUS_COUNTER_ADD("storage.snapshot.writes", 1);
  ORPHEUS_COUNTER_ADD("storage.snapshot.bytes", data.size());
  // WriteFileAtomic is itself failpoint-instrumented (io.write, io.sync,
  // io.rename, ...); the extra sites here let the crash matrix target the
  // snapshot path specifically.
  ORPHEUS_FAILPOINT("storage.snapshot.sync");
  ORPHEUS_RETURN_NOT_OK(WriteFileAtomic(path, data, /*sync=*/true));
  ORPHEUS_FAILPOINT("storage.snapshot.rename");
  return Status::OK();
}

Result<SnapshotContents> ReadSnapshot(const std::string& path) {
  ORPHEUS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kHeaderSize) {
    return Status::DataLoss(StrFormat(
        "%s: snapshot header truncated (%zu bytes, need %zu)", path.c_str(),
        data.size(), kHeaderSize));
  }
  if (data.compare(0, kMagicSize, kSnapshotMagic, kMagicSize) != 0) {
    return Status::DataLoss(
        StrFormat("%s: bad snapshot magic at offset 0", path.c_str()));
  }
  Decoder header(
      std::string_view(data).substr(kMagicSize, kHeaderSize - kMagicSize),
      kMagicSize);
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return Status::DataLoss(StrFormat(
        "%s: unsupported snapshot format version %u (expected %u..%u) at "
        "offset %zu",
        path.c_str(), version, kMinFormatVersion, kFormatVersion, kMagicSize));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t header_crc, header.GetU32());
  SnapshotContents contents;
  contents.version = version;
  ORPHEUS_ASSIGN_OR_RETURN(contents.seq, header.GetU64());
  // v3+ stores a header checksum where v2 always wrote 0; both rules catch
  // flips that rewrite the version into the other accepted value.
  const uint32_t want_crc =
      version >= 3 ? HeaderCrc({kSnapshotMagic, kMagicSize}, version,
                               contents.seq)
                   : 0;
  if (header_crc != want_crc) {
    return Status::DataLoss(StrFormat(
        "%s: snapshot header checksum mismatch (got %08x, want %08x) at "
        "offset %zu",
        path.c_str(), header_crc, want_crc, kMagicSize + 4));
  }

  size_t pos = kHeaderSize;
  bool saw_footer = false;
  while (pos < data.size()) {
    if (saw_footer) {
      return Status::DataLoss(StrFormat(
          "%s: %zu bytes of trailing garbage after footer at offset %zu",
          path.c_str(), data.size() - pos, pos));
    }
    Frame frame;
    bool torn = false;
    Status s = ReadFrame(data, 0, &pos, &frame, &torn);
    if (!s.ok()) {
      return Status::DataLoss(
          StrFormat("%s: %s", path.c_str(), s.message().c_str()));
    }
    if (torn) {
      // A snapshot is written atomically, so a torn tail is not an
      // interrupted append — it is corruption.
      return Status::DataLoss(StrFormat(
          "%s: snapshot truncated mid-frame at offset %zu", path.c_str(),
          pos));
    }
    switch (frame.type) {
      case FrameType::kCvdState: {
        Decoder dec(frame.payload, frame.offset + kFrameHeaderSize);
        auto state = DecodeCvdState(&dec, version);
        if (!state.ok()) {
          return Status::DataLoss(StrFormat(
              "%s: %s", path.c_str(), state.status().message().c_str()));
        }
        contents.cvds.push_back(state.MoveValueOrDie());
        break;
      }
      case FrameType::kFooter: {
        Decoder dec(frame.payload, frame.offset + kFrameHeaderSize);
        ORPHEUS_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
        if (count != contents.cvds.size()) {
          return Status::DataLoss(StrFormat(
              "%s: footer says %u CVDs but %zu frames present (offset %llu)",
              path.c_str(), count, contents.cvds.size(),
              static_cast<unsigned long long>(frame.offset)));
        }
        saw_footer = true;
        break;
      }
      default:
        return Status::DataLoss(StrFormat(
            "%s: unexpected frame type %d in snapshot at offset %llu",
            path.c_str(), static_cast<int>(frame.type),
            static_cast<unsigned long long>(frame.offset)));
    }
  }
  if (!saw_footer) {
    return Status::DataLoss(StrFormat(
        "%s: snapshot missing footer frame (file ends at offset %zu)",
        path.c_str(), data.size()));
  }
  return contents;
}

}  // namespace orpheus::storage
