#include "storage/repository.h"

#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/file_util.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/validation.h"
#include "core/validate.h"
#include "storage/snapshot.h"

namespace orpheus::storage {

namespace {

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return StrFormat("%s/snapshot-%llu", dir.c_str(),
                   static_cast<unsigned long long>(seq));
}

std::string WalPath(const std::string& dir, uint64_t seq) {
  return StrFormat("%s/wal-%llu", dir.c_str(),
                   static_cast<unsigned long long>(seq));
}

std::string CurrentPath(const std::string& dir) { return dir + "/CURRENT"; }

/// Parse CURRENT's contents, "snapshot-<seq>\n", into the sequence number.
Result<uint64_t> ParseCurrent(const std::string& path,
                              const std::string& contents) {
  constexpr std::string_view kPrefix = "snapshot-";
  std::string_view body = contents;
  if (!body.empty() && body.back() == '\n') body.remove_suffix(1);
  if (body.substr(0, kPrefix.size()) != kPrefix) {
    return Status::DataLoss(StrFormat("%s: malformed CURRENT contents \"%s\"",
                                      path.c_str(), contents.c_str()));
  }
  body.remove_prefix(kPrefix.size());
  if (body.empty()) {
    return Status::DataLoss(
        StrFormat("%s: CURRENT names no sequence number", path.c_str()));
  }
  uint64_t seq = 0;
  for (char c : body) {
    if (c < '0' || c > '9') {
      return Status::DataLoss(StrFormat(
          "%s: malformed CURRENT contents \"%s\"", path.c_str(),
          contents.c_str()));
    }
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

Status WriteCurrent(const std::string& dir, uint64_t seq) {
  ORPHEUS_FAILPOINT("storage.current.write");
  return WriteFileAtomic(
      CurrentPath(dir),
      StrFormat("snapshot-%llu\n", static_cast<unsigned long long>(seq)),
      /*sync=*/true);
}

Status ValidateRecovered(const core::Cvd& cvd, const std::string& source) {
  ValidationReport report;
  core::ValidateCvd(cvd, &report);
  if (!report.ok()) {
    return Status::DataLoss(StrFormat(
        "%s: recovered CVD \"%s\" fails invariant validation:\n%s",
        source.c_str(), cvd.name().c_str(), report.ToString().c_str()));
  }
  return Status::OK();
}

struct RecoveredState {
  uint64_t seq = 0;
  std::vector<std::unique_ptr<core::Cvd>> cvds;
  WalContents wal;
  std::string snapshot_path;
  std::string wal_path;
};

/// Shared by Open and Fsck: load CURRENT -> snapshot -> WAL and replay the
/// records in memory. Pure read — torn tails are reported, not repaired.
Result<RecoveredState> Recover(const std::string& dir) {
  RecoveredState out;
  ORPHEUS_ASSIGN_OR_RETURN(std::string current,
                           ReadFileToString(CurrentPath(dir)));
  ORPHEUS_ASSIGN_OR_RETURN(out.seq, ParseCurrent(CurrentPath(dir), current));
  out.snapshot_path = SnapshotPath(dir, out.seq);
  out.wal_path = WalPath(dir, out.seq);

  ORPHEUS_ASSIGN_OR_RETURN(SnapshotContents snapshot,
                           ReadSnapshot(out.snapshot_path));
  if (snapshot.seq != out.seq) {
    return Status::DataLoss(StrFormat(
        "%s: snapshot sequence %llu does not match CURRENT (%llu)",
        out.snapshot_path.c_str(),
        static_cast<unsigned long long>(snapshot.seq),
        static_cast<unsigned long long>(out.seq)));
  }

  std::unordered_map<std::string, size_t> by_name;
  for (const core::CvdState& state : snapshot.cvds) {
    if (by_name.count(state.name) != 0) {
      return Status::DataLoss(
          StrFormat("%s: duplicate CVD \"%s\" in snapshot",
                    out.snapshot_path.c_str(), state.name.c_str()));
    }
    auto cvd = core::Cvd::FromState(state);
    if (!cvd.ok()) {
      return Status::DataLoss(StrFormat(
          "%s: CVD \"%s\": %s", out.snapshot_path.c_str(),
          state.name.c_str(), cvd.status().message().c_str()));
    }
    by_name[state.name] = out.cvds.size();
    out.cvds.push_back(cvd.MoveValueOrDie());
  }

  ORPHEUS_ASSIGN_OR_RETURN(out.wal, ReadWal(out.wal_path));
  if (out.wal.seq != out.seq) {
    return Status::DataLoss(StrFormat(
        "%s: WAL sequence %llu does not match CURRENT (%llu)",
        out.wal_path.c_str(), static_cast<unsigned long long>(out.wal.seq),
        static_cast<unsigned long long>(out.seq)));
  }

  for (const WalRecord& record : out.wal.records) {
    if (const auto* create = std::get_if<WalCreateRecord>(&record)) {
      if (by_name.count(create->state.name) != 0) {
        return Status::DataLoss(StrFormat(
            "%s: WAL creates CVD \"%s\" which already exists",
            out.wal_path.c_str(), create->state.name.c_str()));
      }
      auto cvd = core::Cvd::FromState(create->state);
      if (!cvd.ok()) {
        return Status::DataLoss(StrFormat(
            "%s: CVD \"%s\": %s", out.wal_path.c_str(),
            create->state.name.c_str(), cvd.status().message().c_str()));
      }
      by_name[create->state.name] = out.cvds.size();
      out.cvds.push_back(cvd.MoveValueOrDie());
    } else if (const auto* commit = std::get_if<WalCommitRecord>(&record)) {
      auto it = by_name.find(commit->cvd);
      if (it == by_name.end() || out.cvds[it->second] == nullptr) {
        return Status::DataLoss(StrFormat(
            "%s: WAL commit targets unknown CVD \"%s\"", out.wal_path.c_str(),
            commit->cvd.c_str()));
      }
      Status s = out.cvds[it->second]->ApplyCommitRecord(commit->record);
      if (!s.ok()) {
        return Status::DataLoss(StrFormat(
            "%s: replaying commit v%d of \"%s\": %s", out.wal_path.c_str(),
            commit->record.vid, commit->cvd.c_str(), s.message().c_str()));
      }
    } else {
      const auto& drop = std::get<WalDropRecord>(record);
      auto it = by_name.find(drop.cvd);
      if (it == by_name.end() || out.cvds[it->second] == nullptr) {
        return Status::DataLoss(StrFormat(
            "%s: WAL drops unknown CVD \"%s\"", out.wal_path.c_str(),
            drop.cvd.c_str()));
      }
      out.cvds[it->second].reset();
      by_name.erase(it);
    }
  }
  // Compact out dropped CVDs.
  std::vector<std::unique_ptr<core::Cvd>> live;
  for (auto& cvd : out.cvds) {
    if (cvd != nullptr) live.push_back(std::move(cvd));
  }
  out.cvds = std::move(live);
  return out;
}

}  // namespace

Repository::Repository(std::string dir, uint64_t seq, WalWriter wal)
    : dir_(std::move(dir)) {
  MutexLock lock(&mu_);
  seq_ = seq;
  wal_ = std::move(wal);
  stats_.seq = seq;
  stats_.wal_bytes = wal_->offset();
}

Repository::~Repository() {
  // Closing the WAL fd drops no acknowledged data (every Append fsyncs);
  // errors here have no one to report to.
  MutexLock lock(&mu_);
  // A leader mid-flush holds a raw pointer into wal_ with mu_ released;
  // wait for it to publish before closing the file. (Destroying the
  // repository while commits are still being enqueued is a caller bug —
  // this only covers the in-flight batch.)
  while (leader_active_) {
    commit_cv_.Wait(&mu_);
  }
  if (wal_.has_value()) {
    ORPHEUS_IGNORE_ERROR(wal_->Close());
  }
}

Result<std::unique_ptr<Repository>> Repository::Open(const std::string& dir) {
  ORPHEUS_TRACE_SPAN("storage.recovery");
  ORPHEUS_RETURN_NOT_OK(CreateDirs(dir));

  if (!FileExists(CurrentPath(dir))) {
    // Refuse to "fresh-init" a directory that clearly held a repository:
    // a missing CURRENT next to snapshot/WAL files means the pointer was
    // lost, and silently starting over would shadow recoverable data.
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(dir));
    for (const std::string& name : entries) {
      if (name.rfind("snapshot-", 0) == 0 || name.rfind("wal-", 0) == 0) {
        return Status::DataLoss(StrFormat(
            "%s: CURRENT missing but repository files present (found %s)",
            dir.c_str(), name.c_str()));
      }
    }
    constexpr uint64_t kFirstSeq = 1;
    ORPHEUS_RETURN_NOT_OK(WriteSnapshot(SnapshotPath(dir, kFirstSeq),
                                        kFirstSeq, {}));
    ORPHEUS_FAILPOINT("storage.checkpoint.wal_create");
    ORPHEUS_ASSIGN_OR_RETURN(WalWriter wal,
                             WalWriter::Create(WalPath(dir, kFirstSeq),
                                               kFirstSeq));
    ORPHEUS_RETURN_NOT_OK(WriteCurrent(dir, kFirstSeq));
    LOG_INFO("repository initialized", {{"dir", dir}});
    return std::unique_ptr<Repository>(
        new Repository(dir, kFirstSeq, std::move(wal)));
  }

  ORPHEUS_ASSIGN_OR_RETURN(RecoveredState state, Recover(dir));
  for (const auto& cvd : state.cvds) {
    ORPHEUS_RETURN_NOT_OK(ValidateRecovered(*cvd, state.wal_path));
  }
  if (state.wal.torn_tail) {
    // The torn record was never acknowledged to any client (Append fsyncs
    // before returning), so dropping it is loss-free.
    ORPHEUS_FAILPOINT("storage.open.truncate");
    ORPHEUS_RETURN_NOT_OK(
        TruncateFile(state.wal_path, state.wal.valid_bytes));
    ORPHEUS_COUNTER_ADD("storage.recovery.torn_tail_truncated", 1);
    LOG_WARN("truncated torn WAL tail",
             {{"path", state.wal_path},
              {"valid_bytes",
               static_cast<unsigned long long>(state.wal.valid_bytes)}});
  }
  // The reopened writer keeps appending at the file's own format version;
  // the first checkpoint rewrites everything at kFormatVersion.
  ORPHEUS_ASSIGN_OR_RETURN(
      WalWriter wal, WalWriter::Open(state.wal_path, state.wal.valid_bytes,
                                     state.wal.version));
  ORPHEUS_COUNTER_ADD("storage.wal.replayed_records",
                      state.wal.records.size());
  LOG_INFO("repository opened",
           {{"dir", dir},
            {"seq", static_cast<unsigned long long>(state.seq)},
            {"cvds", static_cast<unsigned long long>(state.cvds.size())},
            {"wal_records",
             static_cast<unsigned long long>(state.wal.records.size())},
            {"torn_tail", state.wal.torn_tail}});
  auto repo = std::unique_ptr<Repository>(
      new Repository(dir, state.seq, std::move(wal)));
  {
    MutexLock lock(&repo->mu_);
    repo->recovered_ = std::move(state.cvds);
    repo->stats_.seq = state.seq;
    repo->stats_.wal_records = state.wal.records.size();
    repo->stats_.wal_bytes = state.wal.valid_bytes;
    repo->stats_.recovered_torn_tail = state.wal.torn_tail;
  }
  return repo;
}

std::vector<std::unique_ptr<core::Cvd>> Repository::TakeCvds() {
  MutexLock lock(&mu_);
  return std::move(recovered_);
}

Status Repository::RequireHealthy() {
  if (closed_) {
    return Status::Internal("repository is closed");
  }
  if (degraded_) {
    return Status::Internal(StrFormat(
        "repository %s is degraded after a WAL write failure; reopen it to "
        "recover",
        dir_.c_str()));
  }
  return Status::OK();
}

Status Repository::AppendRecord(const WalRecord& record) {
  // Creates and drops write the WAL directly; order them after every
  // enqueued commit and keep the file exclusively ours for the append.
  DrainCommitsLocked();
  ORPHEUS_RETURN_NOT_OK(RequireHealthy());
  Status s = wal_->Append(record);
  if (!s.ok()) {
    // Creates/drops are logged write-behind (the in-memory change already
    // happened), so the log is now behind memory. Refuse further writes so
    // the divergence cannot grow (the analog of RocksDB's background-error
    // state).
    degraded_ = true;
    LOG_ERROR("WAL append failed; repository degraded",
              {{"dir", dir_}, {"error", s.message()}});
    return s;
  }
  stats_.wal_records += 1;
  stats_.wal_bytes = wal_->offset();
  return Status::OK();
}

Status Repository::LogCreate(const core::Cvd& cvd) {
  ORPHEUS_ASSIGN_OR_RETURN(core::CvdState state, cvd.ExportState());
  MutexLock lock(&mu_);
  return AppendRecord(WalCreateRecord{std::move(state)});
}

Status Repository::LogCommit(const std::string& cvd_name,
                             const core::CvdCommitRecord& record) {
  MutexLock lock(&mu_);
  ORPHEUS_ASSIGN_OR_RETURN(uint64_t ticket,
                           EnqueueCommitLocked(cvd_name, record));
  return WaitCommitDurableLocked(ticket, Deadline::Infinite());
}

Status Repository::LogDrop(const std::string& cvd_name) {
  MutexLock lock(&mu_);
  return AppendRecord(WalDropRecord{cvd_name});
}

Result<uint64_t> Repository::EnqueueCommit(
    const std::string& cvd_name, const core::CvdCommitRecord& record) {
  MutexLock lock(&mu_);
  return EnqueueCommitLocked(cvd_name, record);
}

Status Repository::WaitCommitDurable(uint64_t ticket) {
  MutexLock lock(&mu_);
  return WaitCommitDurableLocked(ticket, Deadline::Infinite());
}

Status Repository::WaitCommitDurableFor(uint64_t ticket,
                                        const Deadline& deadline) {
  MutexLock lock(&mu_);
  return WaitCommitDurableLocked(ticket, deadline);
}

Result<uint64_t> Repository::EnqueueCommitLocked(
    const std::string& cvd_name, const core::CvdCommitRecord& record) {
  ORPHEUS_RETURN_NOT_OK(RequireHealthy());
  pending_.push_back(WalCommitRecord{cvd_name, record});
  return ++enqueued_ticket_;
}

Status Repository::WaitCommitDurableLocked(uint64_t ticket,
                                           const Deadline& deadline) {
  while (durable_ticket_ < ticket) {
    if (!leader_active_ && !pending_.empty()) {
      // No leader in flight: this waiter flushes the whole queue itself.
      // Deliberately not deadline-bounded — abandoning our own append
      // mid-write is not safe, and if every bounded waiter bailed before
      // leading, the queue would never drain.
      LeadBatchLocked();
      continue;
    }
    if (!commit_cv_.WaitFor(&mu_, deadline.remaining()) &&
        durable_ticket_ < ticket && deadline.expired()) {
      // A leader is still mid-flush. The batch may yet land (or fail):
      // this ticket's durability is UNKNOWN, and the caller may call
      // again to keep waiting.
      return Status::DeadlineExceeded(StrFormat(
          "commit ticket %llu not durable before deadline (leader still "
          "flushing); durability unknown — wait again or reopen",
          static_cast<unsigned long long>(ticket)));
    }
  }
  if (failed_from_ticket_ != 0 && ticket >= failed_from_ticket_) {
    return batch_error_;
  }
  return Status::OK();
}

void Repository::LeadBatchLocked() {
  std::vector<WalRecord> batch;
  batch.swap(pending_);
  const uint64_t hi = enqueued_ticket_;
  leader_active_ = true;
  // Safe to deref while unlocked: leader_active_ pins wal_ — checkpoints,
  // direct appends, and the destructor all wait for the leader first, and
  // nothing else reassigns wal_.
  WalWriter* wal = &*wal_;
  mu_.Unlock();
  Status s = wal->AppendBatch(batch);
  ORPHEUS_HISTOGRAM_RECORD("session.commit.group_size",
                           static_cast<double>(batch.size()));
  mu_.Lock();
  if (s.ok()) {
    stats_.wal_records += batch.size();
    stats_.wal_bytes = wal_->offset();
  } else {
    // None of the batch is durable (a torn tail inside it is truncated on
    // replay). The committers were applied in memory only AFTER their wait
    // succeeds, so refusing here leaves no phantom versions — but the file
    // position is unreliable, so degrade until reopen.
    degraded_ = true;
    if (failed_from_ticket_ == 0) failed_from_ticket_ = durable_ticket_ + 1;
    batch_error_ = s;
    LOG_ERROR("WAL batch append failed; repository degraded",
              {{"dir", dir_},
               {"batch", static_cast<unsigned long long>(batch.size())},
               {"error", s.message()}});
  }
  durable_ticket_ = hi;
  leader_active_ = false;
  commit_cv_.NotifyAll();
}

void Repository::DrainCommitsLocked() {
  while (leader_active_ || !pending_.empty()) {
    if (!leader_active_) {
      LeadBatchLocked();
    } else {
      commit_cv_.Wait(&mu_);
    }
  }
}

Status Repository::Checkpoint(const std::vector<const core::Cvd*>& cvds) {
  MutexLock lock(&mu_);
  return CheckpointLocked(cvds);
}

Status Repository::CheckpointLocked(
    const std::vector<const core::Cvd*>& cvds) {
  ORPHEUS_TRACE_SPAN("storage.checkpoint");
  DrainCommitsLocked();  // the WAL swap below must not race a leader flush
  ORPHEUS_RETURN_NOT_OK(RequireHealthy());
  const uint64_t new_seq = seq_ + 1;

  std::vector<core::CvdState> states;
  states.reserve(cvds.size());
  for (const core::Cvd* cvd : cvds) {
    ORPHEUS_ASSIGN_OR_RETURN(core::CvdState state, cvd->ExportState());
    states.push_back(std::move(state));
  }

  // Order matters for crash safety: (1) new snapshot, (2) new WAL, (3)
  // repoint CURRENT, (4) drop old files. A crash before (3) recovers from
  // the old epoch (new files are orphans, overwritten next time); a crash
  // after (3) recovers from the new one (old files are orphans).
  ORPHEUS_RETURN_NOT_OK(
      WriteSnapshot(SnapshotPath(dir_, new_seq), new_seq, states));
  ORPHEUS_FAILPOINT("storage.checkpoint.wal_create");
  ORPHEUS_ASSIGN_OR_RETURN(
      WalWriter new_wal, WalWriter::Create(WalPath(dir_, new_seq), new_seq));
  ORPHEUS_RETURN_NOT_OK(WriteCurrent(dir_, new_seq));

  ORPHEUS_IGNORE_ERROR(wal_->Close());
  const uint64_t old_seq = seq_;
  wal_ = std::move(new_wal);
  seq_ = new_seq;
  stats_.seq = new_seq;
  stats_.wal_records = 0;
  stats_.wal_bytes = wal_->offset();

  // Best-effort cleanup; leftover old-epoch files are inert.
  ORPHEUS_FAILPOINT("storage.checkpoint.cleanup");
  ORPHEUS_IGNORE_ERROR(RemoveFile(SnapshotPath(dir_, old_seq)));
  ORPHEUS_IGNORE_ERROR(RemoveFile(WalPath(dir_, old_seq)));
  LOG_INFO("checkpoint complete",
           {{"dir", dir_},
            {"seq", static_cast<unsigned long long>(new_seq)},
            {"cvds", static_cast<unsigned long long>(states.size())}});
  return Status::OK();
}

Status Repository::Close(const std::vector<const core::Cvd*>& cvds) {
  MutexLock lock(&mu_);
  ORPHEUS_RETURN_NOT_OK(CheckpointLocked(cvds));
  ORPHEUS_RETURN_NOT_OK(wal_->Close());
  closed_ = true;
  return Status::OK();
}

Result<std::vector<std::string>> Repository::Fsck(const std::string& dir) {
  std::vector<std::string> lines;
  if (!FileExists(CurrentPath(dir))) {
    return Status::DataLoss(
        StrFormat("%s: no CURRENT file (not a repository?)", dir.c_str()));
  }
  ORPHEUS_ASSIGN_OR_RETURN(RecoveredState state, Recover(dir));
  lines.push_back(StrFormat("CURRENT -> snapshot-%llu",
                            static_cast<unsigned long long>(state.seq)));
  lines.push_back(StrFormat(
      "%s: ok (%zu CVDs)", state.snapshot_path.c_str(), state.cvds.size()));
  lines.push_back(StrFormat(
      "%s: ok (%zu records%s)", state.wal_path.c_str(),
      state.wal.records.size(),
      state.wal.torn_tail ? ", torn tail pending truncation" : ""));
  for (const auto& cvd : state.cvds) {
    ORPHEUS_RETURN_NOT_OK(ValidateRecovered(*cvd, state.wal_path));
    lines.push_back(StrFormat("cvd %s: ok (%d versions)", cvd->name().c_str(),
                              cvd->num_versions()));
  }
  return lines;
}

}  // namespace orpheus::storage
