#include "storage/format.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <utility>

#include "common/ridset.h"
#include "common/string_util.h"

namespace orpheus::storage {

namespace {

std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli polynomial
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32cTable();
  uint32_t crc = 0xFFFFFFFF;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ c) & 0xFF];
  }
  return crc ^ 0xFFFFFFFF;
}

uint32_t HeaderCrc(std::string_view magic, uint32_t version, uint64_t seq) {
  Encoder enc;
  enc.PutString(magic);
  enc.PutU32(version);
  enc.PutU64(seq);
  return Crc32c(enc.data());
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

void Encoder::PutU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf_.append(bytes, 4);
}

void Encoder::PutU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf_.append(bytes, 8);
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

Status Decoder::Truncated(const char* what, size_t need) const {
  return Status::DataLoss(StrFormat(
      "truncated %s at offset %llu: need %zu bytes, %zu available", what,
      static_cast<unsigned long long>(base_ + pos_), need, data_.size() - pos_));
}

Result<uint8_t> Decoder::GetU8() {
  if (data_.size() - pos_ < 1) return Truncated("u8", 1);
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Decoder::GetU32() {
  if (data_.size() - pos_ < 4) return Truncated("u32", 4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (data_.size() - pos_ < 8) return Truncated("u64", 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Decoder::GetI64() {
  ORPHEUS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<int32_t> Decoder::GetI32() {
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<double> Decoder::GetDouble() {
  ORPHEUS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Decoder::GetString() {
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (data_.size() - pos_ < len) return Truncated("string payload", len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  Encoder header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  std::string checked;
  checked.reserve(1 + payload.size());
  checked.push_back(static_cast<char>(type));
  checked.append(payload.data(), payload.size());
  header.PutU32(Crc32c(checked));
  out->append(header.data());
  out->append(checked);
}

Status ReadFrame(std::string_view data, uint64_t base_offset, size_t* pos,
                 Frame* frame, bool* torn_tail) {
  *torn_tail = false;
  const uint64_t frame_offset = base_offset + *pos;
  const size_t avail = data.size() - *pos;
  if (avail < kFrameHeaderSize) {
    *torn_tail = true;  // header itself is incomplete
    return Status::OK();
  }
  Decoder header(data.substr(*pos, 8), frame_offset);
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t payload_size, header.GetU32());
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t stored_crc, header.GetU32());
  const size_t frame_size = kFrameHeaderSize + payload_size;
  if (avail < frame_size) {
    *torn_tail = true;  // payload extends past EOF
    return Status::OK();
  }
  std::string_view checked = data.substr(*pos + 8, 1 + payload_size);
  if (Crc32c(checked) != stored_crc) {
    if (avail == frame_size) {
      // Bad checksum on the very last frame: indistinguishable from an
      // interrupted append — treat as torn tail.
      *torn_tail = true;
      return Status::OK();
    }
    return Status::DataLoss(StrFormat(
        "checksum mismatch in frame at offset %llu (%u-byte payload, "
        "followed by %zu more bytes)",
        static_cast<unsigned long long>(frame_offset), payload_size,
        avail - frame_size));
  }
  frame->type = static_cast<FrameType>(checked[0]);
  frame->payload = checked.substr(1);
  frame->offset = frame_offset;
  *pos += frame_size;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

void EncodeValue(const minidb::Value& value, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case minidb::ValueType::kNull:
      break;
    case minidb::ValueType::kInt64:
      enc->PutI64(value.AsInt());
      break;
    case minidb::ValueType::kDouble:
      enc->PutDouble(value.AsDouble());
      break;
    case minidb::ValueType::kString:
      enc->PutString(value.AsString());
      break;
    case minidb::ValueType::kIntArray: {
      // Already-compressed cells serialize their canonical containers
      // directly; plain vectors go through EncodeRidList, which rebuilds
      // the same canonical form when eligible. Either way the bytes are a
      // function of the list contents alone.
      if (const auto* set = value.TryRidSet();
          set && (*set)->size() >= RidSet::kMinCompressElems) {
        enc->PutU8(1);
        enc->PutString((*set)->SerializeBlob());
      } else {
        EncodeRidList(value.AsIntArray(), enc);
      }
      break;
    }
  }
}

Result<minidb::Value> DecodeValue(Decoder* dec) {
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (static_cast<minidb::ValueType>(tag)) {
    case minidb::ValueType::kNull:
      return minidb::Value::Null();
    case minidb::ValueType::kInt64: {
      ORPHEUS_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
      return minidb::Value(v);
    }
    case minidb::ValueType::kDouble: {
      ORPHEUS_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return minidb::Value(v);
    }
    case minidb::ValueType::kString: {
      ORPHEUS_ASSIGN_OR_RETURN(std::string v, dec->GetString());
      return minidb::Value(std::move(v));
    }
    case minidb::ValueType::kIntArray: {
      // Peek the rid-list tag: packed blobs become compressed cells without
      // a decompression round-trip when the gate is on.
      const uint64_t tag_offset = dec->file_offset();
      ORPHEUS_ASSIGN_OR_RETURN(uint8_t packed, dec->GetU8());
      if (packed == 1) {
        ORPHEUS_ASSIGN_OR_RETURN(std::string blob, dec->GetString());
        ORPHEUS_ASSIGN_OR_RETURN(RidSet set, RidSet::DeserializeBlob(blob));
        if (RidSetEnabled()) {
          return minidb::Value(
              std::make_shared<const RidSet>(std::move(set)));
        }
        return minidb::Value(set.ToVector());
      }
      if (packed != 0) {
        return Status::DataLoss(StrFormat(
            "unknown rid-list tag %d at offset %llu",
            static_cast<int>(packed),
            static_cast<unsigned long long>(tag_offset)));
      }
      ORPHEUS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
      std::vector<int64_t> arr;
      arr.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ORPHEUS_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
        arr.push_back(v);
      }
      return minidb::Value(std::move(arr));
    }
  }
  return Status::DataLoss(StrFormat(
      "unknown value type tag %d at offset %llu", static_cast<int>(tag),
      static_cast<unsigned long long>(dec->file_offset())));
}

void EncodeRidList(const std::vector<int64_t>& rids, Encoder* enc) {
  if (auto set = RidSet::TryFromVector(rids)) {
    enc->PutU8(1);
    enc->PutString(set->SerializeBlob());
    return;
  }
  enc->PutU8(0);
  enc->PutU32(static_cast<uint32_t>(rids.size()));
  for (int64_t v : rids) enc->PutI64(v);
}

Result<std::vector<int64_t>> DecodeRidList(Decoder* dec) {
  const uint64_t tag_offset = dec->file_offset();
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  if (tag == 1) {
    ORPHEUS_ASSIGN_OR_RETURN(std::string blob, dec->GetString());
    ORPHEUS_ASSIGN_OR_RETURN(RidSet set, RidSet::DeserializeBlob(blob));
    return set.ToVector();
  }
  if (tag != 0) {
    return Status::DataLoss(StrFormat(
        "unknown rid-list tag %d at offset %llu", static_cast<int>(tag),
        static_cast<unsigned long long>(tag_offset)));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  std::vector<int64_t> rids;
  rids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
    rids.push_back(v);
  }
  return rids;
}

// ---------------------------------------------------------------------------
// Domain structs
// ---------------------------------------------------------------------------

namespace {

void EncodeColumnDef(const minidb::ColumnDef& col, Encoder* enc) {
  enc->PutString(col.name);
  enc->PutU8(static_cast<uint8_t>(col.type));
}

Result<minidb::ColumnDef> DecodeColumnDef(Decoder* dec) {
  minidb::ColumnDef col;
  ORPHEUS_ASSIGN_OR_RETURN(col.name, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t type, dec->GetU8());
  col.type = static_cast<minidb::ValueType>(type);
  return col;
}

void EncodeAttributeInfo(const core::AttributeInfo& attr, Encoder* enc) {
  enc->PutI32(attr.attr_id);
  enc->PutString(attr.name);
  enc->PutU8(static_cast<uint8_t>(attr.type));
}

Result<core::AttributeInfo> DecodeAttributeInfo(Decoder* dec) {
  core::AttributeInfo attr;
  ORPHEUS_ASSIGN_OR_RETURN(attr.attr_id, dec->GetI32());
  ORPHEUS_ASSIGN_OR_RETURN(attr.name, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t type, dec->GetU8());
  attr.type = static_cast<minidb::ValueType>(type);
  return attr;
}

/// Logical-clock fields: i64 at format v3+, IEEE double at v2 (DESIGN.md
/// §10.2). Every v2 clock value is a whole number produced by `+= 1.0`, so
/// the narrowing cast on read is exact.
void PutClock(core::LogicalTime t, Encoder* enc, uint32_t version) {
  if (version >= 3) {
    enc->PutI64(t);
  } else {
    enc->PutDouble(static_cast<double>(t));
  }
}

Result<core::LogicalTime> GetClock(Decoder* dec, uint32_t version) {
  if (version >= 3) return dec->GetI64();
  ORPHEUS_ASSIGN_OR_RETURN(double t, dec->GetDouble());
  return static_cast<core::LogicalTime>(t);
}

void EncodeMetadata(const core::VersionMetadata& meta, Encoder* enc,
                    uint32_t version) {
  enc->PutI32(meta.vid);
  enc->PutU32(static_cast<uint32_t>(meta.parents.size()));
  for (core::VersionId p : meta.parents) enc->PutI32(p);
  PutClock(meta.checkout_time, enc, version);
  PutClock(meta.commit_time, enc, version);
  enc->PutString(meta.message);
  enc->PutString(meta.author);
  enc->PutU32(static_cast<uint32_t>(meta.attributes.size()));
  for (int a : meta.attributes) enc->PutI32(a);
  enc->PutI64(meta.num_records);
}

Result<core::VersionMetadata> DecodeMetadata(Decoder* dec, uint32_t version) {
  core::VersionMetadata meta;
  ORPHEUS_ASSIGN_OR_RETURN(meta.vid, dec->GetI32());
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_parents, dec->GetU32());
  meta.parents.reserve(num_parents);
  for (uint32_t i = 0; i < num_parents; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::VersionId p, dec->GetI32());
    meta.parents.push_back(p);
  }
  ORPHEUS_ASSIGN_OR_RETURN(meta.checkout_time, GetClock(dec, version));
  ORPHEUS_ASSIGN_OR_RETURN(meta.commit_time, GetClock(dec, version));
  ORPHEUS_ASSIGN_OR_RETURN(meta.message, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(meta.author, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_attrs, dec->GetU32());
  meta.attributes.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(int a, dec->GetI32());
    meta.attributes.push_back(a);
  }
  ORPHEUS_ASSIGN_OR_RETURN(meta.num_records, dec->GetI64());
  return meta;
}

void EncodeRow(const minidb::Row& row, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(row.size()));
  for (const minidb::Value& v : row) EncodeValue(v, enc);
}

Result<minidb::Row> DecodeRow(Decoder* dec) {
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  minidb::Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(minidb::Value v, DecodeValue(dec));
    row.push_back(std::move(v));
  }
  return row;
}

void EncodeNewRecord(const core::NewRecord& rec, Encoder* enc) {
  enc->PutI64(rec.rid);
  EncodeRow(rec.data, enc);
}

Result<core::NewRecord> DecodeNewRecord(Decoder* dec) {
  core::NewRecord rec;
  ORPHEUS_ASSIGN_OR_RETURN(rec.rid, dec->GetI64());
  ORPHEUS_ASSIGN_OR_RETURN(rec.data, DecodeRow(dec));
  return rec;
}

}  // namespace

void EncodeCvdState(const core::CvdState& state, Encoder* enc,
                    uint32_t version) {
  enc->PutString(state.name);
  enc->PutU8(static_cast<uint8_t>(state.model));
  enc->PutU32(static_cast<uint32_t>(state.primary_key.size()));
  for (const std::string& k : state.primary_key) enc->PutString(k);
  enc->PutU32(static_cast<uint32_t>(state.data_schema.size()));
  for (const auto& col : state.data_schema) EncodeColumnDef(col, enc);
  enc->PutU32(static_cast<uint32_t>(state.attributes.size()));
  for (const auto& attr : state.attributes) EncodeAttributeInfo(attr, enc);
  enc->PutU32(static_cast<uint32_t>(state.current_attr_ids.size()));
  for (int id : state.current_attr_ids) enc->PutI32(id);
  enc->PutI64(state.next_rid);
  PutClock(state.logical_clock, enc, version);
  const uint32_t num_versions = static_cast<uint32_t>(state.metadata.size());
  enc->PutU32(num_versions);
  for (const auto& meta : state.metadata) EncodeMetadata(meta, enc, version);
  for (uint32_t v = 0; v < num_versions; ++v) {
    enc->PutU32(static_cast<uint32_t>(state.version_parents[v].size()));
    for (int p : state.version_parents[v]) enc->PutI32(p);
    for (int64_t w : state.version_weights[v]) enc->PutI64(w);
    EncodeRidList(state.version_rids[v], enc);
    enc->PutU32(static_cast<uint32_t>(state.version_new_records[v].size()));
    for (const auto& rec : state.version_new_records[v]) {
      EncodeNewRecord(rec, enc);
    }
  }
}

Result<core::CvdState> DecodeCvdState(Decoder* dec, uint32_t version) {
  core::CvdState state;
  ORPHEUS_ASSIGN_OR_RETURN(state.name, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t model, dec->GetU8());
  state.model = static_cast<core::DataModelType>(model);
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_pk, dec->GetU32());
  state.primary_key.reserve(num_pk);
  for (uint32_t i = 0; i < num_pk; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(std::string k, dec->GetString());
    state.primary_key.push_back(std::move(k));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_cols, dec->GetU32());
  state.data_schema.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(minidb::ColumnDef col, DecodeColumnDef(dec));
    state.data_schema.push_back(std::move(col));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_attrs, dec->GetU32());
  state.attributes.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::AttributeInfo attr,
                             DecodeAttributeInfo(dec));
    state.attributes.push_back(std::move(attr));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_cur, dec->GetU32());
  state.current_attr_ids.reserve(num_cur);
  for (uint32_t i = 0; i < num_cur; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(int id, dec->GetI32());
    state.current_attr_ids.push_back(id);
  }
  ORPHEUS_ASSIGN_OR_RETURN(state.next_rid, dec->GetI64());
  ORPHEUS_ASSIGN_OR_RETURN(state.logical_clock, GetClock(dec, version));
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_versions, dec->GetU32());
  state.metadata.reserve(num_versions);
  for (uint32_t i = 0; i < num_versions; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::VersionMetadata meta,
                             DecodeMetadata(dec, version));
    state.metadata.push_back(std::move(meta));
  }
  state.version_parents.resize(num_versions);
  state.version_weights.resize(num_versions);
  state.version_rids.resize(num_versions);
  state.version_new_records.resize(num_versions);
  for (uint32_t v = 0; v < num_versions; ++v) {
    ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_parents, dec->GetU32());
    state.version_parents[v].reserve(num_parents);
    state.version_weights[v].reserve(num_parents);
    for (uint32_t i = 0; i < num_parents; ++i) {
      ORPHEUS_ASSIGN_OR_RETURN(int p, dec->GetI32());
      state.version_parents[v].push_back(p);
    }
    for (uint32_t i = 0; i < num_parents; ++i) {
      ORPHEUS_ASSIGN_OR_RETURN(int64_t w, dec->GetI64());
      state.version_weights[v].push_back(w);
    }
    ORPHEUS_ASSIGN_OR_RETURN(state.version_rids[v], DecodeRidList(dec));
    ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_new, dec->GetU32());
    state.version_new_records[v].reserve(num_new);
    for (uint32_t i = 0; i < num_new; ++i) {
      ORPHEUS_ASSIGN_OR_RETURN(core::NewRecord rec, DecodeNewRecord(dec));
      state.version_new_records[v].push_back(std::move(rec));
    }
  }
  return state;
}

void EncodeCommitRecord(const core::CvdCommitRecord& record, Encoder* enc,
                        uint32_t version) {
  enc->PutI32(record.vid);
  enc->PutU32(static_cast<uint32_t>(record.parents.size()));
  for (core::VersionId p : record.parents) enc->PutI32(p);
  for (int64_t w : record.parent_weights) enc->PutI64(w);
  EncodeRidList(record.rids, enc);
  enc->PutU32(static_cast<uint32_t>(record.new_records.size()));
  for (const auto& rec : record.new_records) EncodeNewRecord(rec, enc);
  EncodeMetadata(record.metadata, enc, version);
  enc->PutU32(static_cast<uint32_t>(record.new_attributes.size()));
  for (const auto& attr : record.new_attributes) EncodeAttributeInfo(attr, enc);
  enc->PutU32(static_cast<uint32_t>(record.current_attr_ids.size()));
  for (int id : record.current_attr_ids) enc->PutI32(id);
  enc->PutU32(static_cast<uint32_t>(record.schema_after.size()));
  for (const auto& col : record.schema_after) EncodeColumnDef(col, enc);
  enc->PutI64(record.next_rid_after);
  PutClock(record.logical_clock_after, enc, version);
}

Result<core::CvdCommitRecord> DecodeCommitRecord(Decoder* dec,
                                                 uint32_t version) {
  core::CvdCommitRecord record;
  ORPHEUS_ASSIGN_OR_RETURN(record.vid, dec->GetI32());
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_parents, dec->GetU32());
  record.parents.reserve(num_parents);
  record.parent_weights.reserve(num_parents);
  for (uint32_t i = 0; i < num_parents; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::VersionId p, dec->GetI32());
    record.parents.push_back(p);
  }
  for (uint32_t i = 0; i < num_parents; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(int64_t w, dec->GetI64());
    record.parent_weights.push_back(w);
  }
  ORPHEUS_ASSIGN_OR_RETURN(record.rids, DecodeRidList(dec));
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_new, dec->GetU32());
  record.new_records.reserve(num_new);
  for (uint32_t i = 0; i < num_new; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::NewRecord rec, DecodeNewRecord(dec));
    record.new_records.push_back(std::move(rec));
  }
  ORPHEUS_ASSIGN_OR_RETURN(record.metadata, DecodeMetadata(dec, version));
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_attrs, dec->GetU32());
  record.new_attributes.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::AttributeInfo attr,
                             DecodeAttributeInfo(dec));
    record.new_attributes.push_back(std::move(attr));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_cur, dec->GetU32());
  record.current_attr_ids.reserve(num_cur);
  for (uint32_t i = 0; i < num_cur; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(int id, dec->GetI32());
    record.current_attr_ids.push_back(id);
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t num_cols, dec->GetU32());
  record.schema_after.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(minidb::ColumnDef col, DecodeColumnDef(dec));
    record.schema_after.push_back(std::move(col));
  }
  ORPHEUS_ASSIGN_OR_RETURN(record.next_rid_after, dec->GetI64());
  ORPHEUS_ASSIGN_OR_RETURN(record.logical_clock_after, GetClock(dec, version));
  return record;
}

}  // namespace orpheus::storage
