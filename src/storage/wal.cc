#include "storage/wal.h"

#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace orpheus::storage {

namespace {

constexpr size_t kMagicSize = 8;
constexpr size_t kHeaderSize = kMagicSize + 4 + 4 + 8;  // magic|ver|rsvd|seq

std::string EncodeHeader(uint64_t seq) {
  Encoder enc;
  enc.PutU32(kFormatVersion);
  enc.PutU32(HeaderCrc({kWalMagic, kMagicSize}, kFormatVersion, seq));
  enc.PutU64(seq);
  std::string header(kWalMagic, kMagicSize);
  header.append(enc.data());
  return header;
}

Result<WalRecord> DecodeWalFrame(const Frame& frame, uint32_t version) {
  Decoder dec(frame.payload, frame.offset + kFrameHeaderSize);
  switch (frame.type) {
    case FrameType::kWalCreate: {
      WalCreateRecord rec;
      ORPHEUS_ASSIGN_OR_RETURN(rec.state, DecodeCvdState(&dec, version));
      return WalRecord(std::move(rec));
    }
    case FrameType::kWalCommit: {
      WalCommitRecord rec;
      ORPHEUS_ASSIGN_OR_RETURN(rec.cvd, dec.GetString());
      ORPHEUS_ASSIGN_OR_RETURN(rec.record, DecodeCommitRecord(&dec, version));
      return WalRecord(std::move(rec));
    }
    case FrameType::kWalDrop: {
      WalDropRecord rec;
      ORPHEUS_ASSIGN_OR_RETURN(rec.cvd, dec.GetString());
      return WalRecord(std::move(rec));
    }
    default:
      return Status::DataLoss(StrFormat(
          "unexpected frame type %d in WAL at offset %llu",
          static_cast<int>(frame.type),
          static_cast<unsigned long long>(frame.offset)));
  }
}

std::string EncodeWalFrame(const WalRecord& record, uint32_t version) {
  std::string out;
  if (const auto* create = std::get_if<WalCreateRecord>(&record)) {
    Encoder enc;
    EncodeCvdState(create->state, &enc, version);
    AppendFrame(&out, FrameType::kWalCreate, enc.data());
  } else if (const auto* commit = std::get_if<WalCommitRecord>(&record)) {
    Encoder enc;
    enc.PutString(commit->cvd);
    EncodeCommitRecord(commit->record, &enc, version);
    AppendFrame(&out, FrameType::kWalCommit, enc.data());
  } else {
    Encoder enc;
    enc.PutString(std::get<WalDropRecord>(record).cvd);
    AppendFrame(&out, FrameType::kWalDrop, enc.data());
  }
  return out;
}

}  // namespace

Result<WalContents> ReadWal(const std::string& path) {
  ORPHEUS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  WalContents contents;
  if (data.size() < kHeaderSize) {
    // The header is written and synced by Create before the WAL is
    // referenced; a short header means the file was never initialized
    // (crash between open and header sync is handled by the checkpoint
    // protocol, which only points CURRENT at a WAL after its header is
    // durable) — so this is corruption, not a torn tail.
    return Status::DataLoss(
        StrFormat("%s: WAL header truncated (%zu bytes, need %zu)",
                  path.c_str(), data.size(), kHeaderSize));
  }
  if (data.compare(0, kMagicSize, kWalMagic, kMagicSize) != 0) {
    return Status::DataLoss(
        StrFormat("%s: bad WAL magic at offset 0", path.c_str()));
  }
  Decoder header(
      std::string_view(data).substr(kMagicSize, kHeaderSize - kMagicSize),
      kMagicSize);
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return Status::DataLoss(StrFormat(
        "%s: unsupported WAL format version %u (expected %u..%u)",
        path.c_str(), version, kMinFormatVersion, kFormatVersion));
  }
  contents.version = version;
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t header_crc, header.GetU32());
  ORPHEUS_ASSIGN_OR_RETURN(contents.seq, header.GetU64());
  // v3+ stores a header checksum where v2 always wrote 0; both rules catch
  // flips that rewrite the version into the other accepted value.
  const uint32_t want_crc =
      version >= 3 ? HeaderCrc({kWalMagic, kMagicSize}, version, contents.seq)
                   : 0;
  if (header_crc != want_crc) {
    return Status::DataLoss(StrFormat(
        "%s: WAL header checksum mismatch (got %08x, want %08x)",
        path.c_str(), header_crc, want_crc));
  }

  size_t pos = kHeaderSize;
  contents.valid_bytes = pos;
  while (pos < data.size()) {
    Frame frame;
    bool torn = false;
    Status s = ReadFrame(data, 0, &pos, &frame, &torn);
    if (!s.ok()) {
      return Status::DataLoss(
          StrFormat("%s: %s", path.c_str(), s.message().c_str()));
    }
    if (torn) {
      contents.torn_tail = true;
      break;
    }
    auto record = DecodeWalFrame(frame, version);
    if (!record.ok()) {
      return Status::DataLoss(StrFormat("%s: %s", path.c_str(),
                                        record.status().message().c_str()));
    }
    contents.records.push_back(record.MoveValueOrDie());
    contents.valid_bytes = pos;
  }
  return contents;
}

Result<WalWriter> WalWriter::Create(const std::string& path, uint64_t seq) {
  ORPHEUS_ASSIGN_OR_RETURN(FileWriter file, FileWriter::Create(path));
  ORPHEUS_FAILPOINT("storage.wal.create.header");
  ORPHEUS_RETURN_NOT_OK(file.Append(EncodeHeader(seq)));
  ORPHEUS_FAILPOINT("storage.wal.create.sync");
  ORPHEUS_RETURN_NOT_OK(file.Sync());
  return WalWriter(std::move(file), kFormatVersion);
}

Result<WalWriter> WalWriter::Open(const std::string& path, uint64_t offset,
                                  uint32_t version) {
  ORPHEUS_ASSIGN_OR_RETURN(FileWriter file, FileWriter::OpenAt(path, offset));
  return WalWriter(std::move(file), version);
}

Status WalWriter::Append(const WalRecord& record) {
  ORPHEUS_TRACE_SPAN("storage.wal.append");
  const std::string frame = EncodeWalFrame(record, version_);
  ORPHEUS_FAILPOINT("storage.wal.append.frame");
  ORPHEUS_RETURN_NOT_OK(file_.Append(frame));
  ORPHEUS_FAILPOINT("storage.wal.append.sync");
  ORPHEUS_RETURN_NOT_OK(file_.Sync());
  ORPHEUS_COUNTER_ADD("storage.wal.appends", 1);
  ORPHEUS_COUNTER_ADD("storage.wal.syncs", 1);
  ORPHEUS_COUNTER_ADD("storage.wal.append_bytes", frame.size());
  return Status::OK();
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::OK();
  ORPHEUS_TRACE_SPAN("storage.wal.append_batch");
  std::string frames;
  size_t first_frame_bytes = 0;
  for (const WalRecord& record : records) {
    frames.append(EncodeWalFrame(record, version_));
    if (first_frame_bytes == 0) first_frame_bytes = frames.size();
  }
#if ORPHEUS_FAILPOINTS_ENABLED
  if (failpoint::AnyArmed()) {
    // Torn-batch simulation: persist the first record whole plus half of
    // the second (or half of a lone record), sync, then fire — a power cut
    // that lands *between* the records of one group-commit batch. Replay
    // must recover the applied prefix (record 1) and truncate the tear;
    // none of the torn-off records may surface as phantom versions.
    if (auto action =
            failpoint::internal::ConsumeHit("storage.wal.append_batch.torn")) {
      const size_t keep = records.size() > 1
                              ? first_frame_bytes +
                                    (frames.size() - first_frame_bytes) / 2
                              : frames.size() / 2;
      ORPHEUS_RETURN_NOT_OK(file_.Append(frames.substr(0, keep)));
      ORPHEUS_RETURN_NOT_OK(file_.Sync());
      if (*action == failpoint::Action::kAbort) {
        failpoint::internal::CrashNow("storage.wal.append_batch.torn");
      }
      return Status::Internal(
          "injected failure at failpoint storage.wal.append_batch.torn");
    }
  }
#endif
  // Same failpoint sites as Append, so the crash matrix and degradation
  // tests exercise the batched path identically.
  ORPHEUS_FAILPOINT("storage.wal.append.frame");
  ORPHEUS_RETURN_NOT_OK(file_.Append(frames));
  ORPHEUS_FAILPOINT("storage.wal.append.sync");
  ORPHEUS_RETURN_NOT_OK(file_.Sync());
  ORPHEUS_COUNTER_ADD("storage.wal.appends", records.size());
  ORPHEUS_COUNTER_ADD("storage.wal.syncs", 1);
  ORPHEUS_COUNTER_ADD("storage.wal.append_bytes", frames.size());
  return Status::OK();
}

}  // namespace orpheus::storage
