#ifndef ORPHEUS_VQUEL_LEXER_H_
#define ORPHEUS_VQUEL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orpheus::vquel {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;  // identifier / symbol spelling / string payload
  double number = 0.0;
  bool is_integer = false;
};

/// Tokenize a VQuel program. Strings accept single or double quotes.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace orpheus::vquel

#endif  // ORPHEUS_VQUEL_LEXER_H_
