#include "vquel/parser.h"

#include <algorithm>

#include "common/string_util.h"
#include "vquel/lexer.h"

namespace orpheus::vquel {

namespace {

bool IsAggName(const std::string& lower) {
  return lower == "count" || lower == "count_all" || lower == "sum" ||
         lower == "avg" || lower == "min" || lower == "max" || lower == "any";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Query>> Run() {
    std::vector<Query> queries;
    std::vector<RangeDecl> ranges;
    while (!AtEnd()) {
      if (PeekKeyword("range")) {
        auto decl = ParseRange();
        if (!decl.ok()) return decl.status();
        // A redeclaration of the same variable replaces the old one.
        auto it = std::find_if(ranges.begin(), ranges.end(),
                               [&](const RangeDecl& r) {
                                 return r.var == decl->var;
                               });
        if (it != ranges.end()) {
          *it = *decl;
        } else {
          ranges.push_back(*decl);
        }
        continue;
      }
      if (PeekKeyword("retrieve")) {
        auto q = ParseRetrieve();
        if (!q.ok()) return q.status();
        q->ranges = ranges;
        queries.push_back(std::move(*q));
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("expected 'range' or 'retrieve', got '%s'",
                    Peek().text.c_str()));
    }
    return queries;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }

  bool PeekKeyword(const char* kw, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == Token::Kind::kIdent && ToLower(t.text) == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }
  bool PeekSymbol(const char* s, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == Token::Kind::kSymbol && t.text == s;
  }
  bool ConsumeSymbol(const char* s) {
    if (PeekSymbol(s)) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(const char* what, bool ok) {
    if (!ok) {
      return Status::InvalidArgument(
          StrFormat("expected %s near '%s'", what, Peek().text.c_str()));
    }
    return Status::OK();
  }

  // range of X is Root(filters).Step(...).Step ...
  Result<RangeDecl> ParseRange() {
    Next();  // range
    ORPHEUS_RETURN_NOT_OK(Expect("'of'", ConsumeKeyword("of")));
    RangeDecl decl;
    ORPHEUS_RETURN_NOT_OK(
        Expect("iterator name", Peek().kind == Token::Kind::kIdent));
    decl.var = Next().text;
    ORPHEUS_RETURN_NOT_OK(Expect("'is'", ConsumeKeyword("is")));
    ORPHEUS_RETURN_NOT_OK(
        Expect("set root", Peek().kind == Token::Kind::kIdent));
    decl.root = Next().text;
    if (ConsumeSymbol("(")) {
      ORPHEUS_RETURN_NOT_OK(ParseFilters(&decl.root_filters));
      ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
    }
    while (ConsumeSymbol(".")) {
      PathStep step;
      ORPHEUS_RETURN_NOT_OK(
          Expect("path step", Peek().kind == Token::Kind::kIdent));
      step.name = Next().text;
      if (ConsumeSymbol("(")) {
        if (Peek().kind == Token::Kind::kNumber) {
          step.arg = static_cast<int64_t>(Next().number);
        } else if (!PeekSymbol(")")) {
          ORPHEUS_RETURN_NOT_OK(ParseFilters(&step.filters));
        }
        ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
      }
      decl.steps.push_back(std::move(step));
    }
    return decl;
  }

  Status ParseFilters(std::vector<std::pair<std::string, ExprPtr>>* filters) {
    while (true) {
      ORPHEUS_RETURN_NOT_OK(
          Expect("filter attribute", Peek().kind == Token::Kind::kIdent));
      std::string attr = Next().text;
      ORPHEUS_RETURN_NOT_OK(Expect("'='", ConsumeSymbol("=")));
      auto value = ParsePrimary();
      if (!value.ok()) return value.status();
      filters->emplace_back(attr, *value);
      if (!ConsumeSymbol(",") && !ConsumeKeyword("and")) break;
    }
    return Status::OK();
  }

  // retrieve [into T] [unique] targets [where expr] [sort by keys]
  Result<Query> ParseRetrieve() {
    Next();  // retrieve
    Query q;
    if (ConsumeKeyword("into")) {
      ORPHEUS_RETURN_NOT_OK(
          Expect("result name", Peek().kind == Token::Kind::kIdent));
      q.into = Next().text;
    }
    if (ConsumeKeyword("unique")) q.unique = true;
    bool parenthesized = ConsumeSymbol("(");
    while (true) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      Target t;
      t.expr = *expr;
      if (ConsumeKeyword("as")) {
        ORPHEUS_RETURN_NOT_OK(
            Expect("alias", Peek().kind == Token::Kind::kIdent));
        t.alias = Next().text;
      }
      q.targets.push_back(std::move(t));
      if (!ConsumeSymbol(",")) break;
    }
    if (parenthesized) {
      ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
    }
    if (ConsumeKeyword("where")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      q.where = *expr;
    }
    if (ConsumeKeyword("sort")) {
      ORPHEUS_RETURN_NOT_OK(Expect("'by'", ConsumeKeyword("by")));
      while (true) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        Query::SortKey key;
        key.expr = *expr;
        if (ConsumeKeyword("desc")) {
          key.descending = true;
        } else {
          ConsumeKeyword("asc");
        }
        q.sort.push_back(std::move(key));
        if (!ConsumeSymbol(",")) break;
      }
    }
    return q;
  }

  // ---- Expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (PeekKeyword("or")) {
      Next();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = "or";
      e->lhs = *lhs;
      e->rhs = *rhs;
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (PeekKeyword("and")) {
      Next();
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = "and";
      e->lhs = *lhs;
      e->rhs = *rhs;
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("not")) {
      Next();
      auto child = ParseNot();
      if (!child.ok()) return child;
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = "not";
      e->child = *child;
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    static const char* kOps[] = {"=", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (PeekSymbol(op)) {
        Next();
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kBinary;
        e->op = op;
        e->lhs = *lhs;
        e->rhs = *rhs;
        return Result<ExprPtr>(std::move(e));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    while (PeekSymbol("+") || PeekSymbol("-")) {
      std::string op = Next().text;
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = op;
      e->lhs = *lhs;
      e->rhs = *rhs;
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    while (PeekSymbol("*") || PeekSymbol("/")) {
      std::string op = Next().text;
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs;
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = op;
      e->lhs = *lhs;
      e->rhs = *rhs;
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == Token::Kind::kNumber) {
      Next();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kLiteral;
      e->literal = t.is_integer
                       ? minidb::Value(static_cast<int64_t>(t.number))
                       : minidb::Value(t.number);
      return Result<ExprPtr>(std::move(e));
    }
    if (t.kind == Token::Kind::kString) {
      Next();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kLiteral;
      e->literal = minidb::Value(t.text);
      return Result<ExprPtr>(std::move(e));
    }
    if (PeekSymbol("(")) {
      Next();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
      return inner;
    }
    if (t.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("unexpected token '%s'", t.text.c_str()));
    }
    std::string lower = ToLower(t.text);
    if (IsAggName(lower)) return ParseAggregate(lower);
    if (lower == "abs") {
      Next();
      ORPHEUS_RETURN_NOT_OK(Expect("'('", ConsumeSymbol("(")));
      auto child = ParseExpr();
      if (!child.ok()) return child;
      ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = "abs";
      e->child = *child;
      return Result<ExprPtr>(std::move(e));
    }
    // UpRef: Version(E).path
    if ((t.text == "Version" || t.text == "Relation") && PeekSymbol("(", 1)) {
      std::string up_kind = Next().text;
      Next();  // (
      ORPHEUS_RETURN_NOT_OK(
          Expect("iterator", Peek().kind == Token::Kind::kIdent));
      std::string it = Next().text;
      ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kUpRef;
      e->up_kind = up_kind;
      e->iterator = it;
      while (ConsumeSymbol(".")) {
        ORPHEUS_RETURN_NOT_OK(
            Expect("attribute", Peek().kind == Token::Kind::kIdent));
        e->path.push_back(Next().text);
      }
      return Result<ExprPtr>(std::move(e));
    }
    // Plain attribute reference: X(.attr)*
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::kAttrRef;
    e->iterator = Next().text;
    while (PeekSymbol(".")) {
      Next();
      ORPHEUS_RETURN_NOT_OK(
          Expect("attribute", Peek().kind == Token::Kind::kIdent));
      e->path.push_back(Next().text);
    }
    return Result<ExprPtr>(std::move(e));
  }

  // agg(arg [group by a, b] [where pred])
  Result<ExprPtr> ParseAggregate(const std::string& func) {
    Next();  // function name
    ORPHEUS_RETURN_NOT_OK(Expect("'('", ConsumeSymbol("(")));
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::kAggregate;
    e->agg_func = func;
    auto arg = ParseExpr();
    if (!arg.ok()) return arg;
    e->agg_arg = *arg;
    if (ConsumeKeyword("group")) {
      ORPHEUS_RETURN_NOT_OK(Expect("'by'", ConsumeKeyword("by")));
      while (true) {
        ORPHEUS_RETURN_NOT_OK(
            Expect("group-by iterator", Peek().kind == Token::Kind::kIdent));
        e->agg_group_by.push_back(Next().text);
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("where")) {
      auto pred = ParseExpr();
      if (!pred.ok()) return pred;
      e->agg_where = *pred;
    }
    ORPHEUS_RETURN_NOT_OK(Expect("')'", ConsumeSymbol(")")));
    return Result<ExprPtr>(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Query>> ParseProgram(const std::string& input) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.MoveValueOrDie());
  return parser.Run();
}

}  // namespace orpheus::vquel
