#ifndef ORPHEUS_VQUEL_CVD_BRIDGE_H_
#define ORPHEUS_VQUEL_CVD_BRIDGE_H_

#include <string>

#include "common/result.h"
#include "core/cvd.h"
#include "vquel/store.h"

namespace orpheus::vquel {

/// Bridges Part 1 and Part 2 of the thesis: exports an OrpheusDB CVD into
/// the conceptual Version/Relation/Record model so VQuel programs can query
/// its data, versioning metadata, and version graph. Every CVD version
/// becomes a VersionStore version holding one relation named
/// `relation_name` (default: the CVD's name); versions are labelled
/// "v<vid>"; record ids are the CVD's immutable rids.
Result<VersionStore> BuildVersionStore(
    const core::Cvd& cvd, const std::string& relation_name = "");

}  // namespace orpheus::vquel

#endif  // ORPHEUS_VQUEL_CVD_BRIDGE_H_
