#include "vquel/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace orpheus::vquel {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      Token t;
      t.kind = Token::Kind::kIdent;
      t.text = input.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') is_double = true;
        ++i;
      }
      Token t;
      t.kind = Token::Kind::kNumber;
      t.text = input.substr(start, i - start);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.is_integer = !is_double;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      size_t end = input.find(c, i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated string literal");
      }
      Token t;
      t.kind = Token::Kind::kString;
      t.text = input.substr(i + 1, end - i - 1);
      out.push_back(std::move(t));
      i = end + 1;
      continue;
    }
    // Multi-char symbols first.
    auto two = input.substr(i, 2);
    if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
      Token t;
      t.kind = Token::Kind::kSymbol;
      t.text = two == "<>" ? "!=" : two;
      out.push_back(std::move(t));
      i += 2;
      continue;
    }
    if (std::string(".,()=<>+-*/").find(c) != std::string::npos) {
      Token t;
      t.kind = Token::Kind::kSymbol;
      t.text = std::string(1, c);
      out.push_back(std::move(t));
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  out.push_back(std::move(end));
  return out;
}

}  // namespace orpheus::vquel
