#ifndef ORPHEUS_VQUEL_EVALUATOR_H_
#define ORPHEUS_VQUEL_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "vquel/ast.h"
#include "vquel/store.h"

namespace orpheus::vquel {

/// Rows produced by a retrieve statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// A VQuel session over one VersionStore. Range declarations persist across
/// retrieves within a program, and `retrieve into T (...)` results become
/// queryable sets named T (used by e.g. Query 6.11).
class Session {
 public:
  explicit Session(const VersionStore* store) : store_(store) {}

  /// Parse and execute a whole program; returns one QueryResult per
  /// retrieve statement.
  Result<std::vector<QueryResult>> Execute(const std::string& program);

  /// Execute a single parsed query.
  Result<QueryResult> ExecuteQuery(const Query& query);

  const QueryResult* named_result(const std::string& name) const {
    auto it = named_results_.find(name);
    return it == named_results_.end() ? nullptr : &it->second;
  }

 private:
  const VersionStore* store_;
  std::map<std::string, QueryResult> named_results_;
};

}  // namespace orpheus::vquel

#endif  // ORPHEUS_VQUEL_EVALUATOR_H_
