#ifndef ORPHEUS_VQUEL_AST_H_
#define ORPHEUS_VQUEL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "minidb/value.h"

namespace orpheus::vquel {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression node of a VQuel query (Chapter 6).
struct Expr {
  enum class Kind {
    kLiteral,    // a constant value
    kAttrRef,    // iterator.path, e.g. V.author.name, E.all
    kUpRef,      // Version(E).id — upward reference (Sec. 6.3.3)
    kBinary,     // and or = != < <= > >= + - * /
    kUnary,      // not, abs
    kAggregate,  // count/count_all/sum/avg/min/max/any(arg [group by ...]
                 //                                       [where pred])
  };

  Kind kind = Kind::kLiteral;

  minidb::Value literal;                        // kLiteral
  std::string iterator;                         // kAttrRef / kUpRef
  std::vector<std::string> path;                // kAttrRef / kUpRef
  std::string up_kind;                          // kUpRef: "Version"
  std::string op;                               // kBinary / kUnary
  ExprPtr lhs, rhs;                             // kBinary
  ExprPtr child;                                // kUnary
  std::string agg_func;                         // kAggregate
  ExprPtr agg_arg;                              // kAggregate
  ExprPtr agg_where;                            // optional
  std::vector<std::string> agg_group_by;        // optional

  std::string ToString() const;
};

/// One step of a range path, e.g. `.Relations(name = "Employee")` or
/// `.P(2)`.
struct PathStep {
  std::string name;
  std::optional<int64_t> arg;  // P(k)/D(k)/N(k)
  // Inline equality filters: attribute = literal.
  std::vector<std::pair<std::string, ExprPtr>> filters;
};

/// `range of X is <root>(filters).step.step...`
struct RangeDecl {
  std::string var;
  std::string root;  // "Version", another iterator, or a result-table name
  std::vector<std::pair<std::string, ExprPtr>> root_filters;
  std::vector<PathStep> steps;
};

/// One retrieve target, optionally aliased with `as`.
struct Target {
  ExprPtr expr;
  std::string alias;
};

/// A full retrieve statement together with the range declarations in scope.
struct Query {
  std::vector<RangeDecl> ranges;
  bool unique = false;
  std::string into;  // non-empty: store the result under this name
  std::vector<Target> targets;
  ExprPtr where;  // may be null
  struct SortKey {
    ExprPtr expr;
    bool descending = false;
  };
  std::vector<SortKey> sort;
};

}  // namespace orpheus::vquel

#endif  // ORPHEUS_VQUEL_AST_H_
