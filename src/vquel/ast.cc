#include "vquel/ast.h"

namespace orpheus::vquel {

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kAttrRef: {
      std::string out = iterator;
      for (const auto& p : path) {
        out += ".";
        out += p;
      }
      return out;
    }
    case Kind::kUpRef: {
      std::string out = up_kind + "(" + iterator + ")";
      for (const auto& p : path) {
        out += ".";
        out += p;
      }
      return out;
    }
    case Kind::kBinary:
      return "(" + (lhs ? lhs->ToString() : "?") + " " + op + " " +
             (rhs ? rhs->ToString() : "?") + ")";
    case Kind::kUnary:
      return op + "(" + (child ? child->ToString() : "?") + ")";
    case Kind::kAggregate: {
      std::string out = agg_func + "(";
      if (agg_arg) out += agg_arg->ToString();
      if (!agg_group_by.empty()) {
        out += " group by ";
        for (size_t i = 0; i < agg_group_by.size(); ++i) {
          if (i) out += ", ";
          out += agg_group_by[i];
        }
      }
      if (agg_where) out += " where " + agg_where->ToString();
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace orpheus::vquel
