#include "vquel/evaluator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "vquel/parser.h"

namespace orpheus::vquel {

namespace {

bool IsNavStep(const std::string& name) {
  return name == "Relations" || name == "Tuples" || name == "parents" ||
         name == "children" || name == "P" || name == "D" || name == "N";
}

/// A bound object: a version, a relation or record inside one, or a row of
/// a named result table.
struct Entity {
  enum class Kind { kVersion, kRelation, kRecord, kResultRow };
  Kind kind = Kind::kVersion;
  int version = -1;
  int relation = -1;
  const VersionStore::Record* record = nullptr;
  const QueryResult* table = nullptr;
  int row = -1;
};

using Binding = std::map<std::string, Entity>;

class Evaluator {
 public:
  Evaluator(const VersionStore* store,
            const std::map<std::string, QueryResult>* named,
            const std::vector<RangeDecl>* ranges)
      : store_(store), named_(named), ranges_(ranges) {}

  Result<QueryResult> Run(const Query& query);

 private:
  const RangeDecl* FindRange(const std::string& var) const {
    for (const auto& r : *ranges_) {
      if (r.var == var) return &r;
    }
    return nullptr;
  }

  // ---- attribute access ----

  Result<Value> VersionAttr(int v, const std::vector<std::string>& path) const {
    const auto& ver = store_->version(v);
    if (path.empty()) return Value(ver.commit_id);
    const std::string& a = path[0];
    if (a == "id" || a == "commit_id") return Value(ver.commit_id);
    if (a == "commit_msg" || a == "commit_message" || a == "msg") {
      return Value(ver.commit_msg);
    }
    if (a == "creation_ts" || a == "commit_ts") return Value(ver.creation_ts);
    if (a == "author") {
      if (path.size() > 1 && path[1] == "email") return Value(ver.author_email);
      return Value(ver.author_name);
    }
    if (a == "all") {
      return Value(StrFormat("%s|%s|%g|%s", ver.commit_id.c_str(),
                             ver.commit_msg.c_str(), ver.creation_ts,
                             ver.author_name.c_str()));
    }
    return Status::InvalidArgument(
        StrFormat("unknown Version attribute '%s'", a.c_str()));
  }

  Result<Value> Attr(const Entity& e, const std::vector<std::string>& path) const {
    switch (e.kind) {
      case Entity::Kind::kVersion:
        return VersionAttr(e.version, path);
      case Entity::Kind::kRelation: {
        const auto& rel = store_->version(e.version).relations[e.relation];
        if (path.empty() || path[0] == "name") return Value(rel.name);
        if (path[0] == "changed") {
          return Value(static_cast<int64_t>(rel.changed ? 1 : 0));
        }
        return Status::InvalidArgument(
            StrFormat("unknown Relation attribute '%s'", path[0].c_str()));
      }
      case Entity::Kind::kRecord: {
        const VersionStore::Record* rec = e.record;
        if (path.empty() || path[0] == "id") {
          return Value(static_cast<int64_t>(rec->id));
        }
        if (path[0] == "all") {
          std::string s;
          for (const auto& [k, v] : rec->fields) {
            s += k;
            s += "=";
            s += v.ToString();
            s += ";";
          }
          return Value(s);
        }
        auto it = rec->fields.find(path[0]);
        if (it == rec->fields.end()) return Value::Null();
        return it->second;
      }
      case Entity::Kind::kResultRow: {
        if (path.empty()) {
          return Status::InvalidArgument("result row needs an attribute");
        }
        int col = e.table->FindColumn(path[0]);
        if (col < 0) {
          return Status::InvalidArgument(
              StrFormat("unknown result column '%s'", path[0].c_str()));
        }
        return e.table->rows[e.row][col];
      }
    }
    return Value::Null();
  }

  // ---- set navigation ----

  Result<std::vector<Entity>> ApplyStep(const Entity& e, const PathStep& step) const {
    std::vector<Entity> out;
    if (step.name == "Relations") {
      if (e.kind != Entity::Kind::kVersion) {
        return Status::InvalidArgument("Relations applies to versions");
      }
      const auto& ver = store_->version(e.version);
      for (int r = 0; r < static_cast<int>(ver.relations.size()); ++r) {
        Entity rel;
        rel.kind = Entity::Kind::kRelation;
        rel.version = e.version;
        rel.relation = r;
        out.push_back(rel);
      }
    } else if (step.name == "Tuples") {
      if (e.kind != Entity::Kind::kRelation) {
        return Status::InvalidArgument("Tuples applies to relations");
      }
      const auto& rel = store_->version(e.version).relations[e.relation];
      for (const auto& rec : rel.tuples) {
        Entity r;
        r.kind = Entity::Kind::kRecord;
        r.version = e.version;
        r.relation = e.relation;
        r.record = &rec;
        out.push_back(r);
      }
    } else if (step.name == "parents" && e.kind == Entity::Kind::kRecord) {
      for (int64_t pid : e.record->parents) {
        const VersionStore::Record* prec = store_->FindRecord(pid);
        if (prec == nullptr) continue;
        Entity r;
        r.kind = Entity::Kind::kRecord;
        r.record = prec;
        out.push_back(r);
      }
    } else if (step.name == "parents" || step.name == "children" ||
               step.name == "P" || step.name == "D" || step.name == "N") {
      if (e.kind != Entity::Kind::kVersion) {
        return Status::InvalidArgument(
            StrFormat("%s applies to versions", step.name.c_str()));
      }
      std::vector<int> versions;
      if (step.name == "parents") {
        versions = store_->version(e.version).parents;
      } else if (step.name == "children") {
        versions = store_->version(e.version).children;
      } else if (step.name == "P") {
        versions = store_->Ancestors(
            e.version, step.arg ? static_cast<int>(*step.arg) : -1);
      } else if (step.name == "D") {
        versions = store_->Descendants(
            e.version, step.arg ? static_cast<int>(*step.arg) : -1);
      } else {
        versions = store_->Neighborhood(
            e.version, step.arg ? static_cast<int>(*step.arg) : 1);
      }
      for (int v : versions) {
        Entity r;
        r.kind = Entity::Kind::kVersion;
        r.version = v;
        out.push_back(r);
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown path step '%s'", step.name.c_str()));
    }
    // Inline filters.
    if (!step.filters.empty()) {
      std::vector<Entity> kept;
      for (const Entity& cand : out) {
        bool ok = true;
        for (const auto& [attr, lit] : step.filters) {
          auto v = Attr(cand, {attr});
          if (!v.ok() || !(*v == lit->literal)) {
            ok = false;
            break;
          }
        }
        if (ok) kept.push_back(cand);
      }
      out = std::move(kept);
    }
    return out;
  }

  Result<std::vector<Entity>> Domain(const RangeDecl& decl,
                                     const Binding& binding) const {
    std::vector<Entity> current;
    if (decl.root == "Version") {
      for (int v = 0; v < store_->num_versions(); ++v) {
        Entity e;
        e.kind = Entity::Kind::kVersion;
        e.version = v;
        current.push_back(e);
      }
    } else if (auto it = binding.find(decl.root); it != binding.end()) {
      current.push_back(it->second);
    } else if (named_ != nullptr) {
      auto nit = named_->find(decl.root);
      if (nit == named_->end()) {
        return Status::NotFound(
            StrFormat("unknown range root '%s'", decl.root.c_str()));
      }
      for (int r = 0; r < static_cast<int>(nit->second.rows.size()); ++r) {
        Entity e;
        e.kind = Entity::Kind::kResultRow;
        e.table = &nit->second;
        e.row = r;
        current.push_back(e);
      }
    } else {
      return Status::NotFound(
          StrFormat("unknown range root '%s'", decl.root.c_str()));
    }
    // Root filters.
    if (!decl.root_filters.empty()) {
      std::vector<Entity> kept;
      for (const Entity& cand : current) {
        bool ok = true;
        for (const auto& [attr, lit] : decl.root_filters) {
          auto v = Attr(cand, {attr});
          if (!v.ok() || !(*v == lit->literal)) {
            ok = false;
            break;
          }
        }
        if (ok) kept.push_back(cand);
      }
      current = std::move(kept);
    }
    for (const auto& step : decl.steps) {
      std::vector<Entity> next;
      for (const Entity& e : current) {
        auto stepped = ApplyStep(e, step);
        if (!stepped.ok()) return stepped.status();
        next.insert(next.end(), stepped->begin(), stepped->end());
      }
      current = std::move(next);
    }
    return current;
  }

  // ---- expression evaluation ----

  // Iterators syntactically referenced by an expression, outside aggregates
  // when `outside_aggregates` is set.
  void CollectRefs(const ExprPtr& expr, bool outside_aggregates,
                   std::set<std::string>* out) const {
    if (!expr) return;
    switch (expr->kind) {
      case Expr::Kind::kAttrRef:
      case Expr::Kind::kUpRef:
        out->insert(expr->iterator);
        break;
      case Expr::Kind::kBinary:
        CollectRefs(expr->lhs, outside_aggregates, out);
        CollectRefs(expr->rhs, outside_aggregates, out);
        break;
      case Expr::Kind::kUnary:
        CollectRefs(expr->child, outside_aggregates, out);
        break;
      case Expr::Kind::kAggregate:
        if (!outside_aggregates) {
          CollectRefs(expr->agg_arg, false, out);
          CollectRefs(expr->agg_where, false, out);
        } else if (expr->agg_arg &&
                   expr->agg_arg->kind == Expr::Kind::kAttrRef &&
                   !expr->agg_arg->path.empty() &&
                   IsNavStep(expr->agg_arg->path.front())) {
          // `count(P.Relations.Tuples)` aggregates the tuples *of a given
          // P*: the navigation root participates in the outer product.
          out->insert(expr->agg_arg->iterator);
        }
        break;
      case Expr::Kind::kLiteral:
        break;
    }
  }

  Result<Value> Eval(const ExprPtr& expr, const Binding& binding) const {
    switch (expr->kind) {
      case Expr::Kind::kLiteral:
        return expr->literal;
      case Expr::Kind::kAttrRef: {
        auto it = binding.find(expr->iterator);
        if (it == binding.end()) {
          return Status::InvalidArgument(
              StrFormat("iterator '%s' not bound", expr->iterator.c_str()));
        }
        // Navigation steps inside a value expression are not directly
        // evaluable (they denote sets); Attr handles attribute paths only.
        return Attr(it->second, expr->path);
      }
      case Expr::Kind::kUpRef: {
        auto it = binding.find(expr->iterator);
        if (it == binding.end()) {
          return Status::InvalidArgument(
              StrFormat("iterator '%s' not bound", expr->iterator.c_str()));
        }
        Entity e = it->second;
        if (expr->up_kind == "Version") {
          if (e.version < 0) {
            return Status::InvalidArgument("entity has no version context");
          }
          Entity ver;
          ver.kind = Entity::Kind::kVersion;
          ver.version = e.version;
          return Attr(ver, expr->path);
        }
        if (expr->up_kind == "Relation") {
          if (e.relation < 0) {
            return Status::InvalidArgument("entity has no relation context");
          }
          Entity rel;
          rel.kind = Entity::Kind::kRelation;
          rel.version = e.version;
          rel.relation = e.relation;
          return Attr(rel, expr->path);
        }
        return Status::InvalidArgument("unknown upward reference");
      }
      case Expr::Kind::kUnary: {
        auto v = Eval(expr->child, binding);
        if (!v.ok()) return v;
        if (expr->op == "not") {
          return Value(static_cast<int64_t>(v->NumericValue() == 0 ? 1 : 0));
        }
        if (expr->op == "abs") {
          return Value(std::fabs(v->NumericValue()));
        }
        return Status::InvalidArgument("unknown unary op");
      }
      case Expr::Kind::kBinary: {
        if (expr->op == "and" || expr->op == "or") {
          auto l = Eval(expr->lhs, binding);
          if (!l.ok()) return l;
          bool lv = !l->is_null() && l->NumericValue() != 0;
          if (expr->op == "and" && !lv) return Value(int64_t{0});
          if (expr->op == "or" && lv) return Value(int64_t{1});
          auto r = Eval(expr->rhs, binding);
          if (!r.ok()) return r;
          bool rv = !r->is_null() && r->NumericValue() != 0;
          return Value(static_cast<int64_t>(rv ? 1 : 0));
        }
        auto l = Eval(expr->lhs, binding);
        if (!l.ok()) return l;
        auto r = Eval(expr->rhs, binding);
        if (!r.ok()) return r;
        if (expr->op == "+" || expr->op == "-" || expr->op == "*" ||
            expr->op == "/") {
          double a = l->NumericValue();
          double b = r->NumericValue();
          double v = expr->op == "+"   ? a + b
                     : expr->op == "-" ? a - b
                     : expr->op == "*" ? a * b
                                       : (b == 0 ? 0 : a / b);
          return Value(v);
        }
        bool result = false;
        if (expr->op == "=") {
          result = ValuesEqual(*l, *r);
        } else if (expr->op == "!=") {
          result = !ValuesEqual(*l, *r);
        } else if (expr->op == "<") {
          result = *l < *r;
        } else if (expr->op == "<=") {
          result = !(*r < *l);
        } else if (expr->op == ">") {
          result = *r < *l;
        } else if (expr->op == ">=") {
          result = !(*l < *r);
        } else {
          return Status::InvalidArgument("unknown operator " + expr->op);
        }
        return Value(static_cast<int64_t>(result ? 1 : 0));
      }
      case Expr::Kind::kAggregate:
        return EvalAggregate(expr, binding);
    }
    return Status::Internal("unreachable");
  }

  static bool ValuesEqual(const Value& a, const Value& b) {
    if (a == b) return true;
    // Numeric cross-type equality.
    bool a_num = a.type() == minidb::ValueType::kInt64 ||
                 a.type() == minidb::ValueType::kDouble;
    bool b_num = b.type() == minidb::ValueType::kInt64 ||
                 b.type() == minidb::ValueType::kDouble;
    if (a_num && b_num) return a.NumericValue() == b.NumericValue();
    return false;
  }

  /// Evaluate an aggregate for a fixed outer binding: enumerate the
  /// iterators the aggregate references (fresh, even if bound — so that
  /// e.g. `max(T.c)` ranges over all of T), accumulate over assignments
  /// that satisfy the aggregate's where clause.
  Result<Value> EvalAggregate(const ExprPtr& expr,
                              const Binding& outer) const {
    // The aggregate argument may navigate sets inline, e.g.
    // count(V.Relations.Tuples): split it into a synthetic range plus a
    // value expression. The navigation root (V) then stays bound to the
    // outer assignment rather than being re-enumerated.
    ExprPtr value_expr = expr->agg_arg;
    std::optional<RangeDecl> synthetic;
    if (expr->agg_arg && expr->agg_arg->kind == Expr::Kind::kAttrRef) {
      const auto& path = expr->agg_arg->path;
      size_t nav = 0;
      while (nav < path.size() && IsNavStep(path[nav])) ++nav;
      if (nav > 0) {
        RangeDecl decl;
        decl.var = "$agg";
        decl.root = expr->agg_arg->iterator;
        for (size_t i = 0; i < nav; ++i) {
          PathStep step;
          step.name = path[i];
          decl.steps.push_back(step);
        }
        synthetic = decl;
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kAttrRef;
        e->iterator = "$agg";
        e->path.assign(path.begin() + static_cast<long>(nav), path.end());
        value_expr = e;
      }
    }

    // Iterators the aggregate ranges over: those referenced by the value
    // expression and the aggregate's where clause. These are enumerated
    // fresh even if bound (so `max(T.c)` ranges over all of T).
    std::set<std::string> refs;
    CollectRefs(value_expr, false, &refs);
    CollectRefs(expr->agg_where, false, &refs);

    // Ranges to enumerate: declared iterators in `refs` (fresh), plus
    // unbound dependencies of those, in declaration order; the synthetic
    // range (if any) comes last.
    std::vector<const RangeDecl*> to_enumerate;
    std::set<std::string> need = refs;
    // If the synthetic navigation is rooted at an unbound declared
    // iterator, that iterator must be enumerated too.
    if (synthetic && !outer.count(synthetic->root) &&
        FindRange(synthetic->root) != nullptr) {
      need.insert(synthetic->root);
    }
    // Close over dependencies: a referenced iterator whose root is a
    // declared, unbound iterator pulls that root in too.
    bool grew = true;
    while (grew) {
      grew = false;
      for (const std::string& var : std::vector<std::string>(need.begin(),
                                                             need.end())) {
        const RangeDecl* decl = FindRange(var);
        if (decl == nullptr) continue;
        const RangeDecl* root_decl = FindRange(decl->root);
        if (root_decl != nullptr && !outer.count(decl->root) &&
            !need.count(decl->root)) {
          need.insert(decl->root);
          grew = true;
        }
      }
    }
    for (const auto& r : *ranges_) {
      if (need.count(r.var)) to_enumerate.push_back(&r);
    }
    if (synthetic) to_enumerate.push_back(&*synthetic);

    // Accumulators.
    double sum = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    int64_t count = 0;
    bool any = false;

    Status inner_error = Status::OK();
    std::function<void(size_t, Binding&)> recurse =
        [&](size_t idx, Binding& binding) {
          if (!inner_error.ok()) return;
          if (idx == to_enumerate.size()) {
            if (expr->agg_where) {
              auto ok = Eval(expr->agg_where, binding);
              if (!ok.ok()) return;  // unsatisfied/unevaluable -> skip
              if (ok->is_null() || ok->NumericValue() == 0) return;
            }
            Value v;
            if (value_expr) {
              auto r = Eval(value_expr, binding);
              if (!r.ok()) return;
              v = *r;
            }
            ++count;
            any = true;
            if (!v.is_null() &&
                (v.type() == minidb::ValueType::kInt64 ||
                 v.type() == minidb::ValueType::kDouble)) {
              double x = v.NumericValue();
              sum += x;
              mn = std::min(mn, x);
              mx = std::max(mx, x);
            }
            return;
          }
          const RangeDecl* decl = to_enumerate[idx];
          auto domain = Domain(*decl, binding);
          if (!domain.ok()) {
            inner_error = domain.status();
            return;
          }
          for (const Entity& e : *domain) {
            binding[decl->var] = e;
            recurse(idx + 1, binding);
          }
          binding.erase(decl->var);
        };
    Binding binding = outer;
    // Referenced iterators are enumerated fresh.
    for (const RangeDecl* d : to_enumerate) binding.erase(d->var);
    recurse(0, binding);
    ORPHEUS_RETURN_NOT_OK(inner_error);

    const std::string& f = expr->agg_func;
    if (f == "count" || f == "count_all") {
      return Value(static_cast<int64_t>(count));
    }
    if (f == "any") return Value(static_cast<int64_t>(any ? 1 : 0));
    if (count == 0) return Value::Null();
    if (f == "sum") return Value(sum);
    if (f == "avg") return Value(sum / static_cast<double>(count));
    if (f == "min") return Value(mn);
    if (f == "max") return Value(mx);
    return Status::InvalidArgument("unknown aggregate " + f);
  }

 public:
  const VersionStore* store_;
  const std::map<std::string, QueryResult>* named_;
  const std::vector<RangeDecl>* ranges_;
};

std::string ColumnName(const Target& t) {
  if (!t.alias.empty()) return t.alias;
  const ExprPtr& e = t.expr;
  if (e->kind == Expr::Kind::kAttrRef || e->kind == Expr::Kind::kUpRef) {
    return e->path.empty() ? e->iterator : e->path.back();
  }
  if (e->kind == Expr::Kind::kAggregate) return e->agg_func;
  return e->ToString();
}

Result<QueryResult> Evaluator::Run(const Query& query) {
  // Outer iterators: referenced outside aggregates anywhere in the query,
  // closed over declared-root dependencies.
  std::set<std::string> outer_refs;
  for (const auto& t : query.targets) CollectRefs(t.expr, true, &outer_refs);
  CollectRefs(query.where, true, &outer_refs);
  for (const auto& s : query.sort) CollectRefs(s.expr, true, &outer_refs);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const std::string& var :
         std::vector<std::string>(outer_refs.begin(), outer_refs.end())) {
      const RangeDecl* decl = FindRange(var);
      if (decl == nullptr) continue;
      if (FindRange(decl->root) != nullptr && !outer_refs.count(decl->root)) {
        outer_refs.insert(decl->root);
        grew = true;
      }
    }
  }
  std::vector<const RangeDecl*> outer_decls;
  for (const auto& r : *ranges_) {
    if (outer_refs.count(r.var)) outer_decls.push_back(&r);
  }

  QueryResult result;
  for (const auto& t : query.targets) result.columns.push_back(ColumnName(t));

  struct PendingRow {
    std::vector<Value> values;
    std::vector<Value> sort_keys;
  };
  std::vector<PendingRow> pending;

  Status error = Status::OK();
  std::function<void(size_t, Binding&)> recurse = [&](size_t idx,
                                                      Binding& binding) {
    if (!error.ok()) return;
    if (idx == outer_decls.size()) {
      if (query.where) {
        auto ok = Eval(query.where, binding);
        if (!ok.ok()) {
          error = ok.status();
          return;
        }
        if (ok->is_null() || ok->NumericValue() == 0) return;
      }
      PendingRow row;
      for (const auto& t : query.targets) {
        auto v = Eval(t.expr, binding);
        if (!v.ok()) {
          error = v.status();
          return;
        }
        row.values.push_back(*v);
      }
      for (const auto& s : query.sort) {
        auto v = Eval(s.expr, binding);
        if (!v.ok()) {
          error = v.status();
          return;
        }
        row.sort_keys.push_back(*v);
      }
      pending.push_back(std::move(row));
      return;
    }
    auto domain = Domain(*outer_decls[idx], binding);
    if (!domain.ok()) {
      error = domain.status();
      return;
    }
    for (const Entity& e : *domain) {
      binding[outer_decls[idx]->var] = e;
      recurse(idx + 1, binding);
    }
    binding.erase(outer_decls[idx]->var);
  };
  Binding binding;
  recurse(0, binding);
  ORPHEUS_RETURN_NOT_OK(error);

  // Sort.
  if (!query.sort.empty()) {
    std::stable_sort(pending.begin(), pending.end(),
                     [&query](const PendingRow& a, const PendingRow& b) {
                       for (size_t k = 0; k < query.sort.size(); ++k) {
                         if (a.sort_keys[k] < b.sort_keys[k]) {
                           return !query.sort[k].descending;
                         }
                         if (b.sort_keys[k] < a.sort_keys[k]) {
                           return query.sort[k].descending;
                         }
                       }
                       return false;
                     });
  }
  // Unique.
  for (auto& row : pending) {
    if (query.unique) {
      bool dup = false;
      for (const auto& existing : result.rows) {
        if (existing == row.values) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
    }
    result.rows.push_back(std::move(row.values));
  }
  return result;
}

}  // namespace

Result<std::vector<QueryResult>> Session::Execute(const std::string& program) {
  auto queries = ParseProgram(program);
  if (!queries.ok()) return queries.status();
  std::vector<QueryResult> results;
  for (const Query& q : *queries) {
    auto r = ExecuteQuery(q);
    if (!r.ok()) return r.status();
    results.push_back(std::move(*r));
  }
  return results;
}

Result<QueryResult> Session::ExecuteQuery(const Query& query) {
  Evaluator eval(store_, &named_results_, &query.ranges);
  auto result = eval.Run(query);
  if (!result.ok()) return result;
  if (!query.into.empty()) {
    named_results_[query.into] = *result;
  }
  return result;
}

}  // namespace orpheus::vquel
