#include "vquel/cvd_bridge.h"

#include "common/string_util.h"

namespace orpheus::vquel {

Result<VersionStore> BuildVersionStore(const core::Cvd& cvd,
                                       const std::string& relation_name) {
  VersionStore store;
  const std::string rel_name =
      relation_name.empty() ? cvd.name() : relation_name;

  for (core::VersionId vid = 1; vid <= cvd.num_versions(); ++vid) {
    const auto& meta = cvd.version_metadata(vid);
    VersionStore::Version version;
    version.commit_id = StrFormat("v%d", vid);
    version.commit_msg = meta.message;
    // VQuel's Version.creation_ts stays a double (wall-clock-shaped for
    // query literals); the logical clock is an exact int64 well below 2^53.
    version.creation_ts = static_cast<double>(meta.commit_time);
    version.author_name = meta.author;
    for (core::VersionId p : meta.parents) {
      version.parents.push_back(p - 1);  // dense store indices
    }

    auto table = cvd.backend()->Checkout(vid - 1, "bridge");
    if (!table.ok()) return table.status();
    VersionStore::Relation relation;
    relation.name = rel_name;
    relation.tuples.reserve(table->num_rows());
    for (uint32_t r = 0; r < table->num_rows(); ++r) {
      VersionStore::Record rec;
      rec.id = table->column(0).GetInt(r);  // _rid
      for (size_t c = 1; c < table->num_columns(); ++c) {
        minidb::Value v = table->GetValue(r, c);
        if (!v.is_null()) {
          rec.fields[table->schema().column(c).name] = std::move(v);
        }
      }
      relation.tuples.push_back(std::move(rec));
    }
    version.relations.push_back(std::move(relation));
    store.AddVersion(std::move(version));
  }
  return store;
}

}  // namespace orpheus::vquel
