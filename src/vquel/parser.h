#ifndef ORPHEUS_VQUEL_PARSER_H_
#define ORPHEUS_VQUEL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "vquel/ast.h"

namespace orpheus::vquel {

/// Parse a VQuel program: a sequence of `range of ... is ...` declarations
/// and `retrieve ...` statements. Each returned Query carries the range
/// declarations visible to it (declarations persist across retrieves within
/// one program, as in Quel sessions).
Result<std::vector<Query>> ParseProgram(const std::string& input);

}  // namespace orpheus::vquel

#endif  // ORPHEUS_VQUEL_PARSER_H_
