#ifndef ORPHEUS_VQUEL_STORE_H_
#define ORPHEUS_VQUEL_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "minidb/value.h"

namespace orpheus::vquel {

using minidb::Value;

/// The conceptual data model of Fig. 6.1 that VQuel queries run against:
/// versions containing relations containing records, a version graph, and
/// optional record-level provenance. This model is deliberately independent
/// of the physical CVD representation (Chapter 6 removes the SQL/relational
/// assumption).
class VersionStore {
 public:
  struct Record {
    int64_t id = -1;  // globally unique across the store
    std::map<std::string, Value> fields;
    std::vector<int64_t> parents;  // record-level provenance (Sec. 6.3.5)
  };

  struct Relation {
    std::string name;
    bool changed = false;  // derived: differs from the parent version's copy
    std::vector<Record> tuples;
  };

  struct Version {
    std::string commit_id;
    std::string commit_msg;
    double creation_ts = 0.0;
    std::string author_name;
    std::string author_email;
    std::vector<int> parents;   // version indices
    std::vector<int> children;  // filled by AddVersion
    std::vector<Relation> relations;
  };

  /// Append a version; parents must already exist. `changed` flags are
  /// derived automatically against the first parent. Returns the index.
  int AddVersion(Version version);

  int num_versions() const { return static_cast<int>(versions_.size()); }
  const Version& version(int v) const { return versions_[v]; }

  /// Index of the version with this commit id, or -1.
  int FindVersion(const std::string& commit_id) const;

  /// Record lookup by global id (for provenance walks); nullptr if absent.
  /// Returns the first occurrence (records are immutable, so any is fine).
  const Record* FindRecord(int64_t id) const;

  /// Ancestors within `hops` (-1 = unbounded), excluding v (VQuel's P()).
  std::vector<int> Ancestors(int v, int hops = -1) const;
  /// Descendants (VQuel's D()).
  std::vector<int> Descendants(int v, int hops = -1) const;
  /// Undirected neighborhood within `hops` (VQuel's N()).
  std::vector<int> Neighborhood(int v, int hops) const;

  /// Next unused record id (callers allocate ids through this).
  int64_t NextRecordId() { return next_record_id_++; }

 private:
  std::vector<Version> versions_;
  std::map<int64_t, std::pair<int, int>> record_index_;  // id -> (v, rel)
  int64_t next_record_id_ = 0;
};

}  // namespace orpheus::vquel

#endif  // ORPHEUS_VQUEL_STORE_H_
