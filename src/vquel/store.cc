#include "vquel/store.h"

#include <algorithm>
#include <deque>
#include <set>

namespace orpheus::vquel {

int VersionStore::AddVersion(Version version) {
  int idx = num_versions();
  // Derive `changed` flags against the first parent: a relation changed if
  // absent there or with a different tuple set.
  if (!version.parents.empty()) {
    const Version& parent = versions_[version.parents.front()];
    for (auto& rel : version.relations) {
      const Relation* prel = nullptr;
      for (const auto& r : parent.relations) {
        if (r.name == rel.name) prel = &r;
      }
      if (prel == nullptr || prel->tuples.size() != rel.tuples.size()) {
        rel.changed = true;
        continue;
      }
      rel.changed = false;
      for (size_t i = 0; i < rel.tuples.size(); ++i) {
        if (rel.tuples[i].id != prel->tuples[i].id) {
          rel.changed = true;
          break;
        }
      }
    }
  } else {
    for (auto& rel : version.relations) rel.changed = true;
  }
  for (int p : version.parents) versions_[p].children.push_back(idx);
  for (size_t r = 0; r < version.relations.size(); ++r) {
    for (const auto& rec : version.relations[r].tuples) {
      record_index_.emplace(rec.id, std::make_pair(idx, static_cast<int>(r)));
      next_record_id_ = std::max(next_record_id_, rec.id + 1);
    }
  }
  versions_.push_back(std::move(version));
  return idx;
}

int VersionStore::FindVersion(const std::string& commit_id) const {
  for (int v = 0; v < num_versions(); ++v) {
    if (versions_[v].commit_id == commit_id) return v;
  }
  return -1;
}

const VersionStore::Record* VersionStore::FindRecord(int64_t id) const {
  auto it = record_index_.find(id);
  if (it == record_index_.end()) return nullptr;
  const auto& [v, r] = it->second;
  for (const auto& rec : versions_[v].relations[r].tuples) {
    if (rec.id == id) return &rec;
  }
  return nullptr;
}

namespace {

std::vector<int> Walk(int start, int hops,
                      const std::vector<std::vector<int>>& adj) {
  std::vector<int> out;
  std::set<int> seen = {start};
  std::deque<std::pair<int, int>> frontier = {{start, 0}};
  while (!frontier.empty()) {
    auto [v, d] = frontier.front();
    frontier.pop_front();
    if (hops >= 0 && d >= hops) continue;
    for (int next : adj[v]) {
      if (seen.insert(next).second) {
        out.push_back(next);
        frontier.emplace_back(next, d + 1);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<int> VersionStore::Ancestors(int v, int hops) const {
  std::vector<std::vector<int>> adj(num_versions());
  for (int i = 0; i < num_versions(); ++i) adj[i] = versions_[i].parents;
  return Walk(v, hops, adj);
}

std::vector<int> VersionStore::Descendants(int v, int hops) const {
  std::vector<std::vector<int>> adj(num_versions());
  for (int i = 0; i < num_versions(); ++i) adj[i] = versions_[i].children;
  return Walk(v, hops, adj);
}

std::vector<int> VersionStore::Neighborhood(int v, int hops) const {
  std::vector<std::vector<int>> adj(num_versions());
  for (int i = 0; i < num_versions(); ++i) {
    for (int p : versions_[i].parents) {
      adj[i].push_back(p);
      adj[p].push_back(i);
    }
  }
  return Walk(v, hops, adj);
}

}  // namespace orpheus::vquel
