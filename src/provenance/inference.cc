#include "provenance/inference.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace orpheus::provenance {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Signature ComputeSignature(const minidb::Table& table) {
  constexpr size_t kSketchSize = 32;
  Signature sig;
  sig.num_rows = table.num_rows();
  for (const auto& def : table.schema().columns()) {
    sig.columns.push_back(def.name);
  }
  sig.row_hashes.reserve(table.num_rows());
  std::vector<std::vector<uint64_t>> col_hashes(table.num_columns());
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    uint64_t h = 0;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      uint64_t cell = HashString(table.GetValue(r, c).ToString());
      h = HashCombine(h, cell);
      col_hashes[c].push_back(cell);
    }
    sig.row_hashes.push_back(h);
  }
  std::sort(sig.row_hashes.begin(), sig.row_hashes.end());
  // Per-column min-hash sketches: the k smallest distinct value hashes.
  sig.column_sketches.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    auto& hashes = col_hashes[c];
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
    if (hashes.size() > kSketchSize) hashes.resize(kSketchSize);
    sig.column_sketches[c] = std::move(hashes);
  }
  // Row-set min-hash vector for LSH banding (Sec. 8.6).
  constexpr size_t kMinhash = 32;
  sig.minhash.assign(kMinhash, ~0ULL);
  for (uint64_t h : sig.row_hashes) {
    for (size_t k = 0; k < kMinhash; ++k) {
      uint64_t salted = h;
      salted ^= 0x9E3779B97F4A7C15ULL * (k + 1);
      salted *= 0xBF58476D1CE4E5B9ULL;
      salted ^= salted >> 31;
      if (salted < sig.minhash[k]) sig.minhash[k] = salted;
    }
  }
  return sig;
}

std::vector<std::pair<int, int>> LshCandidatePairs(
    const std::vector<Signature>& signatures, int bands, int rows_per_band) {
  const int n = static_cast<int>(signatures.size());
  std::set<std::pair<int, int>> pairs;
  // Banded min-hash buckets: versions agreeing on an entire band of
  // min-hash values are candidates.
  for (int b = 0; b < bands; ++b) {
    std::unordered_map<uint64_t, std::vector<int>> buckets;
    for (int v = 0; v < n; ++v) {
      const auto& mh = signatures[v].minhash;
      uint64_t key = 0xCBF29CE484222325ULL + static_cast<uint64_t>(b);
      for (int r = 0; r < rows_per_band; ++r) {
        size_t idx = (static_cast<size_t>(b) * rows_per_band + r) % mh.size();
        key = HashCombine(key, mh[idx]);
      }
      buckets[key].push_back(v);
    }
    for (const auto& [key, members] : buckets) {
      (void)key;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          pairs.emplace(members[i], members[j]);
        }
      }
    }
  }
  // Column-sketch buckets: identical column contents link versions even
  // when full rows differ (projection / column addition).
  std::unordered_map<uint64_t, std::vector<int>> col_buckets;
  for (int v = 0; v < n; ++v) {
    for (size_t c = 0; c < signatures[v].columns.size(); ++c) {
      uint64_t key = HashString(signatures[v].columns[c]);
      for (uint64_t h : signatures[v].column_sketches[c]) {
        key = HashCombine(key, h);
      }
      col_buckets[key].push_back(v);
    }
  }
  for (const auto& [key, members] : col_buckets) {
    (void)key;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j]) {
          pairs.emplace(std::min(members[i], members[j]),
                        std::max(members[i], members[j]));
        }
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

namespace {

uint64_t CommonRows(const Signature& a, const Signature& b) {
  uint64_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.row_hashes.size() && j < b.row_hashes.size()) {
    if (a.row_hashes[i] < b.row_hashes[j]) {
      ++i;
    } else if (a.row_hashes[i] > b.row_hashes[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

double RowJaccard(const Signature& a, const Signature& b) {
  if (a.row_hashes.empty() && b.row_hashes.empty()) return 1.0;
  uint64_t common = CommonRows(a, b);
  uint64_t uni = a.row_hashes.size() + b.row_hashes.size() - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

double ColumnValueSimilarity(const Signature& a, const Signature& b) {
  if (a.columns.empty() || b.columns.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.columns.size(); ++i) {
    for (size_t j = 0; j < b.columns.size(); ++j) {
      if (a.columns[i] != b.columns[j]) continue;
      const auto& sa = a.column_sketches[i];
      const auto& sb = b.column_sketches[j];
      if (sa.empty() || sb.empty()) break;
      // Overlap of the two sketches (both sorted).
      uint64_t common = 0;
      size_t x = 0;
      size_t y = 0;
      while (x < sa.size() && y < sb.size()) {
        if (sa[x] < sb[y]) {
          ++x;
        } else if (sa[x] > sb[y]) {
          ++y;
        } else {
          ++common;
          ++x;
          ++y;
        }
      }
      sum += static_cast<double>(common) /
             static_cast<double>(std::max(sa.size(), sb.size()));
      break;
    }
  }
  return sum / static_cast<double>(std::max(a.columns.size(),
                                            b.columns.size()));
}

double ColumnContainment(const Signature& a, const Signature& b) {
  if (a.columns.empty()) return 1.0;
  int present = 0;
  for (const auto& c : a.columns) {
    if (std::find(b.columns.begin(), b.columns.end(), c) != b.columns.end()) {
      ++present;
    }
  }
  return static_cast<double>(present) / static_cast<double>(a.columns.size());
}

InferredGraph InferLineage(const std::vector<DatasetVersion>& versions,
                           const InferenceOptions& options) {
  const int n = static_cast<int>(versions.size());
  std::vector<Signature> sigs(n);
  for (int i = 0; i < n; ++i) sigs[i] = ComputeSignature(*versions[i].table);

  InferredGraph graph;
  graph.parent.assign(n, -1);
  graph.score.assign(n, 0.0);

  // Content similarity: full-row Jaccard plus a column-content term that
  // survives row-preserving schema operations like projection — Sec. 8.4's
  // combination of content and schema evidence.
  auto similarity = [&](int a, int b) {
    double rows = RowJaccard(sigs[a], sigs[b]);
    double col_values = ColumnValueSimilarity(sigs[a], sigs[b]);
    return 0.7 * rows + 0.3 * col_values;
  };

  // LSH acceleration (Sec. 8.6): restrict comparisons to candidate pairs.
  std::vector<std::vector<int>> candidates_of;
  if (options.use_lsh) {
    candidates_of.assign(n, {});
    for (const auto& [i, j] : LshCandidatePairs(sigs, options.lsh_bands,
                                                options.lsh_rows_per_band)) {
      candidates_of[i].push_back(j);
      candidates_of[j].push_back(i);
    }
  }

  // Can `p` plausibly be the parent of `c`?
  auto can_derive = [&](int p, int c) {
    if (options.use_timestamps && versions[p].timestamp >= 0 &&
        versions[c].timestamp >= 0) {
      return versions[p].timestamp < versions[c].timestamp;
    }
    // No timestamps: orient by asymmetric containment — prefer the parent
    // whose columns the child extends or preserves more than vice versa;
    // break ties toward the smaller version deriving the larger one.
    double pc = ColumnContainment(sigs[p], sigs[c]);
    double cp = ColumnContainment(sigs[c], sigs[p]);
    if (pc != cp) return pc > cp;
    return sigs[p].num_rows <= sigs[c].num_rows;
  };

  std::vector<int> all_parents(n);
  for (int p = 0; p < n; ++p) all_parents[p] = p;
  for (int c = 0; c < n; ++c) {
    int best = -1;
    double best_score = options.min_similarity;
    const std::vector<int>& pool =
        options.use_lsh ? candidates_of[c] : all_parents;
    for (int p : pool) {
      if (p == c || !can_derive(p, c)) continue;
      double s = similarity(p, c);
      if (s > best_score) {
        best_score = s;
        best = p;
      }
    }
    if (best >= 0) {
      graph.parent[c] = best;
      graph.score[c] = best_score;
    }
  }

  // Cycle breaking (possible when timestamps are absent and containment is
  // symmetric): walk each chain and cut the weakest edge of any cycle.
  std::vector<int> state(n, 0);
  for (int v = 0; v < n; ++v) {
    if (state[v] != 0) continue;
    std::vector<int> path;
    int x = v;
    while (x >= 0 && state[x] == 0) {
      state[x] = 1;
      path.push_back(x);
      x = graph.parent[x];
    }
    if (x >= 0 && state[x] == 1) {
      // Cut the weakest edge on the cycle.
      int weakest = x;
      int y = graph.parent[x];
      while (y != x) {
        if (graph.score[y] < graph.score[weakest]) weakest = y;
        y = graph.parent[y];
      }
      graph.parent[weakest] = -1;
      graph.score[weakest] = 0.0;
    }
    for (int p : path) state[p] = 2;
  }
  return graph;
}

EdgeQuality ScoreEdges(const InferredGraph& inferred,
                       const std::vector<std::vector<int>>& true_parents) {
  EdgeQuality q;
  const int n = static_cast<int>(inferred.parent.size());
  for (int v = 0; v < n; ++v) {
    q.actual += static_cast<int>(true_parents[v].size());
    if (inferred.parent[v] < 0) continue;
    ++q.inferred;
    for (int p : true_parents[v]) {
      if (p == inferred.parent[v]) {
        ++q.correct;
        break;
      }
    }
  }
  q.precision = q.inferred == 0
                    ? 0.0
                    : static_cast<double>(q.correct) / q.inferred;
  q.recall = q.actual == 0 ? 0.0
                           : static_cast<double>(q.correct) / q.actual;
  return q;
}

}  // namespace orpheus::provenance
