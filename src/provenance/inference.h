#ifndef ORPHEUS_PROVENANCE_INFERENCE_H_
#define ORPHEUS_PROVENANCE_INFERENCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "minidb/table.h"

namespace orpheus::provenance {

/// Chapter 8 removes the "from-scratch" assumption: dataset versions already
/// sit in a shared repository with no registered derivation metadata. The
/// inference engine reconstructs the version graph from content alone
/// (edges inference, Sec. 8.4), optionally guided by file timestamps.

/// One unregistered dataset version in the repository.
struct DatasetVersion {
  std::string name;
  const minidb::Table* table = nullptr;
  double timestamp = -1.0;  // -1 = unknown
};

/// A content signature used for candidate generation: hashed rows, schema,
/// and a per-column min-hash sketch. The column sketches let the engine
/// recognize row-preserving schema operations (projection, column
/// addition) whose full-row hashes share nothing with the parent.
struct Signature {
  std::vector<uint64_t> row_hashes;     // sorted
  std::vector<std::string> columns;     // column names
  std::vector<std::vector<uint64_t>> column_sketches;  // sorted min-hashes
  std::vector<uint64_t> minhash;        // k min-hash values for LSH banding
  uint64_t num_rows = 0;
};

Signature ComputeSignature(const minidb::Table& table);

/// Jaccard similarity of two signatures' row-hash sets.
double RowJaccard(const Signature& a, const Signature& b);

/// Fraction of a's columns present in b.
double ColumnContainment(const Signature& a, const Signature& b);

/// Column-content similarity: average min-hash sketch overlap of same-named
/// columns, normalized by the larger column count. High when one version is
/// a projection/extension of the other.
double ColumnValueSimilarity(const Signature& a, const Signature& b);

/// An inferred derivation edge.
struct InferredEdge {
  int parent = -1;
  int child = -1;
  double score = 0.0;  // similarity supporting the edge
};

struct InferredGraph {
  std::vector<int> parent;  // per version; -1 = root (no inferred parent)
  std::vector<double> score;
};

struct InferenceOptions {
  /// Candidate edges require at least this row-set similarity.
  double min_similarity = 0.05;
  /// Use timestamps to orient edges when available.
  bool use_timestamps = true;
  /// Accelerate candidate generation with banded min-hashing (Sec. 8.6):
  /// only pairs sharing an LSH bucket (or a column sketch) are compared,
  /// avoiding the all-pairs similarity computation.
  bool use_lsh = false;
  int lsh_bands = 16;
  int lsh_rows_per_band = 2;
};

/// Candidate pairs via LSH banding over row min-hashes plus column-sketch
/// matching. Returns (i, j) pairs with i < j. Exposed for testing and for
/// the Sec. 8.8-style acceleration benchmark.
std::vector<std::pair<int, int>> LshCandidatePairs(
    const std::vector<Signature>& signatures, int bands, int rows_per_band);

/// Infer lineage: compute pairwise similarities over candidate pairs, then
/// select for each version its most similar plausible parent (a maximum
/// branching over the similarity graph, oriented by timestamp or by
/// asymmetric containment when timestamps are missing).
InferredGraph InferLineage(const std::vector<DatasetVersion>& versions,
                           const InferenceOptions& options = {});

/// Precision/recall of inferred parent edges against the ground truth
/// parent array (Sec. 8.8's preliminary evaluation metric).
struct EdgeQuality {
  double precision = 0.0;
  double recall = 0.0;
  int inferred = 0;
  int correct = 0;
  int actual = 0;
};

EdgeQuality ScoreEdges(const InferredGraph& inferred,
                       const std::vector<std::vector<int>>& true_parents);

}  // namespace orpheus::provenance

#endif  // ORPHEUS_PROVENANCE_INFERENCE_H_
