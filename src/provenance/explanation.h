#ifndef ORPHEUS_PROVENANCE_EXPLANATION_H_
#define ORPHEUS_PROVENANCE_EXPLANATION_H_

#include <string>
#include <vector>

#include "minidb/table.h"

namespace orpheus::provenance {

/// Structural explanation (Sec. 8.5): given an inferred parent/child pair,
/// identify the data-processing operation(s) that most plausibly produced
/// the child, with an emphasis on row-preserving operations.
enum class Operation {
  kIdentity,        // same rows, same columns
  kProjection,      // columns dropped, rows preserved (row-preserving)
  kColumnAddition,  // columns added, rows preserved (row-preserving)
  kSelection,       // rows dropped (subset), columns same
  kAppend,          // rows added (superset), columns same
  kUpdate,          // same key set, some attribute values changed
  kUnknown,
};

const char* OperationName(Operation op);

struct Explanation {
  Operation op = Operation::kUnknown;
  double confidence = 0.0;       // fraction of evidence supporting op
  int rows_added = 0;
  int rows_removed = 0;
  int rows_modified = 0;         // w.r.t. the key column (if any)
  std::vector<std::string> columns_added;
  std::vector<std::string> columns_removed;
};

/// Explain how `child` could derive from `parent`. `key_column` names the
/// column identifying records across versions for update detection (empty:
/// full-row comparison only, so updates count as remove+add).
Explanation ExplainDerivation(const minidb::Table& parent,
                              const minidb::Table& child,
                              const std::string& key_column = "");

}  // namespace orpheus::provenance

#endif  // ORPHEUS_PROVENANCE_EXPLANATION_H_
