#include "provenance/explanation.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace orpheus::provenance {

const char* OperationName(Operation op) {
  switch (op) {
    case Operation::kIdentity: return "identity";
    case Operation::kProjection: return "projection";
    case Operation::kColumnAddition: return "column-addition";
    case Operation::kSelection: return "selection";
    case Operation::kAppend: return "append";
    case Operation::kUpdate: return "update";
    case Operation::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

// Serialize a row restricted to the given columns.
std::string RowKey(const minidb::Table& t, uint32_t r,
                   const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    key += t.GetValue(r, static_cast<size_t>(c)).ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

Explanation ExplainDerivation(const minidb::Table& parent,
                              const minidb::Table& child,
                              const std::string& key_column) {
  Explanation ex;

  // Schema comparison.
  std::set<std::string> pcols;
  std::set<std::string> ccols;
  for (const auto& def : parent.schema().columns()) pcols.insert(def.name);
  for (const auto& def : child.schema().columns()) ccols.insert(def.name);
  for (const auto& c : ccols) {
    if (!pcols.count(c)) ex.columns_added.push_back(c);
  }
  for (const auto& c : pcols) {
    if (!ccols.count(c)) ex.columns_removed.push_back(c);
  }

  // Common columns, in child order, mapped to positions in both tables.
  std::vector<int> p_common;
  std::vector<int> c_common;
  for (const auto& def : child.schema().columns()) {
    int pc = parent.schema().FindColumn(def.name);
    if (pc >= 0) {
      p_common.push_back(pc);
      c_common.push_back(child.schema().FindColumn(def.name));
    }
  }

  // Row comparison over the common columns.
  std::unordered_map<std::string, int> parent_rows;
  for (uint32_t r = 0; r < parent.num_rows(); ++r) {
    ++parent_rows[RowKey(parent, r, p_common)];
  }
  int common_rows = 0;
  std::unordered_map<std::string, int> remaining = parent_rows;
  for (uint32_t r = 0; r < child.num_rows(); ++r) {
    auto it = remaining.find(RowKey(child, r, c_common));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      ++common_rows;
    } else {
      ++ex.rows_added;
    }
  }
  ex.rows_removed = static_cast<int>(parent.num_rows()) - common_rows;

  // Update detection on the key column.
  if (!key_column.empty()) {
    int pk = parent.schema().FindColumn(key_column);
    int ck = child.schema().FindColumn(key_column);
    if (pk >= 0 && ck >= 0) {
      std::unordered_map<std::string, uint32_t> by_key;
      for (uint32_t r = 0; r < parent.num_rows(); ++r) {
        by_key.emplace(parent.GetValue(r, pk).ToString(), r);
      }
      std::unordered_set<std::string> parent_full;
      for (uint32_t r = 0; r < parent.num_rows(); ++r) {
        parent_full.insert(RowKey(parent, r, p_common));
      }
      for (uint32_t r = 0; r < child.num_rows(); ++r) {
        if (parent_full.count(RowKey(child, r, c_common))) continue;
        if (by_key.count(child.GetValue(r, ck).ToString())) {
          ++ex.rows_modified;
        }
      }
    }
  }

  // Classify. Row-preserving schema changes first (Sec. 8.5's emphasis).
  const bool rows_preserved = ex.rows_added == 0 && ex.rows_removed == 0;
  const bool cols_same = ex.columns_added.empty() && ex.columns_removed.empty();
  const double total_rows =
      std::max<double>(1.0, std::max(parent.num_rows(), child.num_rows()));

  if (rows_preserved && cols_same) {
    ex.op = Operation::kIdentity;
    ex.confidence = 1.0;
  } else if (rows_preserved && !ex.columns_removed.empty() &&
             ex.columns_added.empty()) {
    ex.op = Operation::kProjection;
    ex.confidence = 1.0;
  } else if (rows_preserved && !ex.columns_added.empty() &&
             ex.columns_removed.empty()) {
    ex.op = Operation::kColumnAddition;
    ex.confidence = 1.0;
  } else if (cols_same && ex.rows_modified > 0 &&
             ex.rows_modified >= ex.rows_added - ex.rows_modified &&
             ex.rows_modified >= ex.rows_removed - ex.rows_modified) {
    ex.op = Operation::kUpdate;
    ex.confidence = 1.0 - static_cast<double>(std::max(
                              ex.rows_added - ex.rows_modified,
                              ex.rows_removed - ex.rows_modified)) /
                              total_rows;
  } else if (cols_same && ex.rows_added == 0 && ex.rows_removed > 0) {
    ex.op = Operation::kSelection;
    ex.confidence = 1.0;
  } else if (cols_same && ex.rows_removed == 0 && ex.rows_added > 0) {
    ex.op = Operation::kAppend;
    ex.confidence = 1.0;
  } else {
    ex.op = Operation::kUnknown;
    ex.confidence = 0.0;
  }
  return ex;
}

}  // namespace orpheus::provenance
