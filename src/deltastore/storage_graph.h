#ifndef ORPHEUS_DELTASTORE_STORAGE_GRAPH_H_
#define ORPHEUS_DELTASTORE_STORAGE_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orpheus::deltastore {

/// Cost of storing/recreating one version or delta (Chapter 7): ∆ is bytes
/// of storage, Φ is recreation time units.
struct Cost {
  double storage = 0.0;     // ∆
  double recreation = 0.0;  // Φ
};

/// The augmented graph G of Sec. 7.2.2: versions 0..n-1 plus the implicit
/// dummy vertex V0. An edge (i -> j) carries <∆ij, Φij>; the edge from the
/// dummy vertex to i carries <∆ii, Φii> (materialization). Only *revealed*
/// entries are stored; the matrices are typically sparse (Sec. 7.2.1).
class StorageGraph {
 public:
  static constexpr int kDummy = -1;

  explicit StorageGraph(int num_versions) : num_versions_(num_versions) {
    materialization_.resize(num_versions);
    in_edges_.resize(num_versions);
  }

  int num_versions() const { return num_versions_; }

  /// Set <∆ii, Φii> for version i.
  void SetMaterializationCost(int i, Cost cost) { materialization_[i] = cost; }
  const Cost& MaterializationCost(int i) const { return materialization_[i]; }

  /// Reveal the delta from i to j. In the undirected case the caller adds
  /// both directions.
  void AddDelta(int from, int to, Cost cost) {
    in_edges_[to].push_back({from, cost});
  }

  struct InEdge {
    int from;
    Cost cost;
  };
  const std::vector<InEdge>& InEdges(int to) const { return in_edges_[to]; }

  /// Number of revealed deltas.
  size_t num_deltas() const {
    size_t n = 0;
    for (const auto& e : in_edges_) n += e.size();
    return n;
  }

 private:
  int num_versions_;
  std::vector<Cost> materialization_;
  std::vector<std::vector<InEdge>> in_edges_;
};

/// A storage solution (Sec. 7.2.1's P): for each version, either materialize
/// it (parent == kDummy) or store the delta from `parent`. Every solution
/// is a spanning tree of the augmented graph rooted at the dummy vertex
/// (Lemma 7.1).
struct StorageSolution {
  std::vector<int> parent;  // per version; StorageGraph::kDummy => material.

  int num_versions() const { return static_cast<int>(parent.size()); }
};

/// Evaluated metrics of a solution.
struct SolutionCosts {
  double total_storage = 0.0;             // C
  double sum_recreation = 0.0;            // Σ R_i
  double max_recreation = 0.0;            // max R_i
  std::vector<double> recreation;         // R_i per version
};

/// Evaluate a solution against the graph. Fails if the solution uses an
/// unrevealed delta or contains a cycle.
Result<SolutionCosts> EvaluateSolution(const StorageGraph& graph,
                                       const StorageSolution& solution);

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_STORAGE_GRAPH_H_
