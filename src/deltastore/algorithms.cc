#include "deltastore/algorithms.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "common/validation.h"
#include "deltastore/validate.h"

namespace orpheus::deltastore {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Solver postcondition, enforced when ORPHEUS_VALIDATE is set: every
// produced solution must be a spanning forest of revealed deltas rooted at
// the dummy vertex (deltastore/validate.h). Aborts on a violation.
StorageSolution Checked(const StorageGraph& graph, StorageSolution sol,
                        const char* op) {
  if (ValidationEnabled()) {
    ValidationReport report;
    ValidateStorageSolution(graph, sol, &report);
    DieIfViolations(report, op);
  }
  return sol;
}

struct OutEdge {
  int to;
  Cost cost;
};

// Forward adjacency (deltas are stored as in-edges).
std::vector<std::vector<OutEdge>> BuildOutAdjacency(const StorageGraph& g) {
  std::vector<std::vector<OutEdge>> out(g.num_versions());
  for (int v = 0; v < g.num_versions(); ++v) {
    for (const auto& e : g.InEdges(v)) {
      out[e.from].push_back({v, e.cost});
    }
  }
  return out;
}

}  // namespace

StorageSolution MinimumStorageTree(const StorageGraph& graph) {
  // Prim's algorithm on the augmented graph: every unattached node's best
  // candidate starts as materialization (the edge from the dummy vertex).
  const int n = graph.num_versions();
  auto out = BuildOutAdjacency(graph);
  std::vector<double> best(n);
  std::vector<int> best_parent(n, StorageGraph::kDummy);
  std::vector<char> attached(n, 0);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (int v = 0; v < n; ++v) {
    best[v] = graph.MaterializationCost(v).storage;
    pq.push({best[v], v});
  }
  StorageSolution sol;
  sol.parent.assign(n, StorageGraph::kDummy);
  int added = 0;
  while (!pq.empty() && added < n) {
    auto [w, v] = pq.top();
    pq.pop();
    if (attached[v] || w > best[v]) continue;
    attached[v] = 1;
    sol.parent[v] = best_parent[v];
    ++added;
    for (const auto& e : out[v]) {
      if (!attached[e.to] && e.cost.storage < best[e.to]) {
        best[e.to] = e.cost.storage;
        best_parent[e.to] = v;
        pq.push({best[e.to], e.to});
      }
    }
  }
  return Checked(graph, std::move(sol), "MinimumStorageTree");
}

// ---------------------------------------------------------------------------
// Edmonds / Chu-Liu minimum arborescence (directed case of Problem 7.1).
// ---------------------------------------------------------------------------

namespace {

struct DirEdge {
  int u;       // from
  int v;       // to
  double w;
  int id;      // original edge id (for reconstruction)
};

// Recursive Chu-Liu/Edmonds returning the set of original edge ids forming
// a minimum arborescence rooted at `root` over nodes [0, nn).
bool ChuLiu(int nn, int root, std::vector<DirEdge> edges,
            std::vector<int>* chosen_ids) {
  while (true) {
    // 1. Cheapest in-edge per node.
    std::vector<int> in_edge(nn, -1);
    for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
      const DirEdge& e = edges[i];
      if (e.v == e.u || e.v == root) continue;
      if (in_edge[e.v] < 0 || e.w < edges[in_edge[e.v]].w) in_edge[e.v] = i;
    }
    for (int v = 0; v < nn; ++v) {
      if (v != root && in_edge[v] < 0) return false;  // unreachable
    }
    // 2. Detect cycles among the chosen in-edges.
    std::vector<int> comp(nn, -1);
    std::vector<int> state(nn, 0);  // 0 unvisited, 1 on stack, 2 done
    int num_comp = 0;
    std::vector<int> cycle_of(nn, -1);
    bool has_cycle = false;
    for (int v = 0; v < nn; ++v) {
      if (state[v] != 0) continue;
      std::vector<int> path;
      int x = v;
      while (x != root && state[x] == 0) {
        state[x] = 1;
        path.push_back(x);
        x = edges[in_edge[x]].u;
      }
      if (x != root && state[x] == 1) {
        // Found a cycle ending at x: mark its members.
        has_cycle = true;
        int cid = num_comp++;
        int y = x;
        do {
          cycle_of[y] = cid;
          y = edges[in_edge[y]].u;
        } while (y != x);
      }
      for (int y : path) state[y] = 2;
    }
    if (!has_cycle) {
      for (int v = 0; v < nn; ++v) {
        if (v != root) chosen_ids->push_back(edges[in_edge[v]].id);
      }
      return true;
    }
    // 3. Contract: cycles become supernodes; others keep distinct ids.
    for (int v = 0; v < nn; ++v) {
      comp[v] = cycle_of[v] >= 0 ? cycle_of[v] : num_comp++;
    }
    // Record which in-cycle edges we tentatively keep: all cycle edges are
    // part of the answer except the one displaced by the supernode's
    // in-edge. We resolve that after the recursive call by a replay trick:
    // append cycle edges now, and let the chosen supernode in-edge's
    // original id override via the `drop` map below.
    std::vector<DirEdge> next;
    std::vector<int> pending_cycle_edges;
    for (int v = 0; v < nn; ++v) {
      if (cycle_of[v] >= 0) pending_cycle_edges.push_back(in_edge[v]);
    }
    // Map: new edge id -> (original id, displaced cycle edge id or -1).
    struct Provenance {
      int original;
      int displaces;  // index into `edges` of the cycle in-edge it replaces
    };
    std::vector<Provenance> prov;
    for (const DirEdge& e : edges) {
      int cu = comp[e.u];
      int cv = comp[e.v];
      if (cu == cv) continue;
      DirEdge ne;
      ne.u = cu;
      ne.v = cv;
      ne.id = static_cast<int>(prov.size());
      if (cycle_of[e.v] >= 0) {
        ne.w = e.w - edges[in_edge[e.v]].w;
        prov.push_back({e.id, in_edge[e.v]});
      } else {
        ne.w = e.w;
        prov.push_back({e.id, -1});
      }
      next.push_back(ne);
    }
    std::vector<int> sub_chosen;
    if (!ChuLiu(num_comp, comp[root], std::move(next), &sub_chosen)) {
      return false;
    }
    // 4. Expand: start from all cycle edges, then apply the recursion's
    // choices, dropping each displaced cycle edge.
    std::vector<char> dropped(edges.size(), 0);
    for (int nid : sub_chosen) {
      const Provenance& p = prov[nid];
      chosen_ids->push_back(p.original);
      if (p.displaces >= 0) dropped[p.displaces] = 1;
    }
    for (int eidx : pending_cycle_edges) {
      if (!dropped[eidx]) chosen_ids->push_back(edges[eidx].id);
    }
    return true;
  }
}

}  // namespace

StorageSolution MinimumStorageArborescence(const StorageGraph& graph) {
  const int n = graph.num_versions();
  const int root = n;  // dummy vertex
  std::vector<DirEdge> edges;
  // Remember each original edge's (parent, child).
  std::vector<std::pair<int, int>> endpoint;
  for (int v = 0; v < n; ++v) {
    edges.push_back({root, v, graph.MaterializationCost(v).storage,
                     static_cast<int>(endpoint.size())});
    endpoint.push_back({StorageGraph::kDummy, v});
    for (const auto& e : graph.InEdges(v)) {
      edges.push_back({e.from, v, e.cost.storage,
                       static_cast<int>(endpoint.size())});
      endpoint.push_back({e.from, v});
    }
  }
  std::vector<int> chosen;
  StorageSolution sol;
  sol.parent.assign(n, StorageGraph::kDummy);
  if (!ChuLiu(n + 1, root, std::move(edges), &chosen)) {
    return sol;  // every version is reachable via materialization, so this
                 // cannot happen; return all-materialized defensively.
  }
  for (int id : chosen) {
    sol.parent[endpoint[id].second] = endpoint[id].first;
  }
  return Checked(graph, std::move(sol), "MinimumStorageArborescence");
}

StorageSolution ShortestPathTree(const StorageGraph& graph) {
  const int n = graph.num_versions();
  auto out = BuildOutAdjacency(graph);
  std::vector<double> dist(n, kInf);
  std::vector<int> parent(n, StorageGraph::kDummy);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (int v = 0; v < n; ++v) {
    dist[v] = graph.MaterializationCost(v).recreation;
    pq.push({dist[v], v});
  }
  std::vector<char> done(n, 0);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (done[v] || d > dist[v]) continue;
    done[v] = 1;
    for (const auto& e : out[v]) {
      double nd = d + e.cost.recreation;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        parent[e.to] = v;
        pq.push({nd, e.to});
      }
    }
  }
  StorageSolution sol;
  sol.parent = std::move(parent);
  return Checked(graph, std::move(sol), "ShortestPathTree");
}

// ---------------------------------------------------------------------------
// LMG
// ---------------------------------------------------------------------------

namespace {

// One LMG pass: repeatedly materialize the best-ratio version. `stop`
// decides when to halt given (current storage, current sum recreation,
// candidate storage increase).
StorageSolution RunLmg(const StorageGraph& graph, double beta, double theta) {
  StorageSolution sol = MinimumStorageArborescence(graph);
  const int n = graph.num_versions();

  while (true) {
    auto costs = EvaluateSolution(graph, sol);
    if (!costs.ok()) return sol;
    if (theta >= 0 && costs->sum_recreation <= theta) return sol;

    // Subtree sizes under the current tree.
    std::vector<std::vector<int>> children(n);
    std::vector<int> order;
    for (int v = 0; v < n; ++v) {
      if (sol.parent[v] != StorageGraph::kDummy) {
        children[sol.parent[v]].push_back(v);
      } else {
        order.push_back(v);
      }
    }
    std::vector<int> subtree(n, 1);
    // BFS order, then accumulate bottom-up.
    std::vector<int> bfs = order;
    for (size_t i = 0; i < bfs.size(); ++i) {
      for (int c : children[bfs[i]]) bfs.push_back(c);
    }
    for (auto it = bfs.rbegin(); it != bfs.rend(); ++it) {
      for (int c : children[*it]) subtree[*it] += subtree[c];
    }

    int best = -1;
    double best_ratio = 0.0;
    for (int v = 0; v < n; ++v) {
      if (sol.parent[v] == StorageGraph::kDummy) continue;
      double gain = (costs->recreation[v] -
                     graph.MaterializationCost(v).recreation) *
                    subtree[v];
      if (gain <= 0) continue;
      double cur_edge = 0.0;
      for (const auto& e : graph.InEdges(v)) {
        if (e.from == sol.parent[v]) cur_edge = e.cost.storage;
      }
      double dstorage = graph.MaterializationCost(v).storage - cur_edge;
      if (beta >= 0 && costs->total_storage + dstorage > beta) continue;
      double ratio = dstorage <= 0 ? kInf : gain / dstorage;
      if (best < 0 || ratio > best_ratio) {
        best = v;
        best_ratio = ratio;
      }
    }
    if (best < 0) return sol;
    sol.parent[best] = StorageGraph::kDummy;
  }
}

}  // namespace

StorageSolution LmgWithStorageBudget(const StorageGraph& graph, double beta) {
  return Checked(graph, RunLmg(graph, beta, /*theta=*/-1.0),
                 "LmgWithStorageBudget");
}

StorageSolution LmgWithRecreationTarget(const StorageGraph& graph,
                                        double theta) {
  return Checked(graph, RunLmg(graph, /*beta=*/-1.0, theta),
                 "LmgWithRecreationTarget");
}

// ---------------------------------------------------------------------------
// MP
// ---------------------------------------------------------------------------

namespace {

// Post-pass for MP: Prim's pop order can strand a version on an expensive
// materialization edge before its cheap delta parent joins the tree.
// Repeatedly re-parent the single best version for which another attached
// node offers a cheaper-storage edge keeping the whole subtree within
// theta; all path costs are recomputed between moves so theta can never be
// exceeded through stale data.
void ImproveParents(const StorageGraph& graph, double theta,
                    StorageSolution* sol) {
  const int n = graph.num_versions();
  for (int round = 0; round < 4 * n; ++round) {
    auto costs = EvaluateSolution(graph, *sol);
    if (!costs.ok()) return;
    // Deepest path cost within each subtree (to validate re-parenting).
    std::vector<std::vector<int>> children(n);
    std::vector<int> order;
    for (int v = 0; v < n; ++v) {
      if (sol->parent[v] == StorageGraph::kDummy) {
        order.push_back(v);
      } else {
        children[sol->parent[v]].push_back(v);
      }
    }
    for (size_t i = 0; i < order.size(); ++i) {
      for (int c : children[order[i]]) order.push_back(c);
    }
    std::vector<double> subtree_max(n);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      subtree_max[*it] = costs->recreation[*it];
      for (int c : children[*it]) {
        subtree_max[*it] = std::max(subtree_max[*it], subtree_max[c]);
      }
    }
    // Ancestor test to avoid cycles.
    auto is_descendant = [&sol](int maybe_desc, int of) {
      int x = maybe_desc;
      while (x != StorageGraph::kDummy) {
        if (x == of) return true;
        x = sol->parent[x];
      }
      return false;
    };
    int best_v = -1;
    int best_parent = -1;
    double best_saving = 0.0;
    for (int v = 0; v < n; ++v) {
      double cur_storage = graph.MaterializationCost(v).storage;
      if (sol->parent[v] != StorageGraph::kDummy) {
        for (const auto& e : graph.InEdges(v)) {
          if (e.from == sol->parent[v]) cur_storage = e.cost.storage;
        }
      }
      for (const auto& e : graph.InEdges(v)) {
        double saving = cur_storage - e.cost.storage;
        if (saving <= best_saving) continue;
        if (is_descendant(e.from, v)) continue;
        double new_path = costs->recreation[e.from] + e.cost.recreation;
        double slack = subtree_max[v] - costs->recreation[v];
        if (new_path + slack > theta) continue;
        best_v = v;
        best_parent = e.from;
        best_saving = saving;
      }
    }
    if (best_v < 0) break;
    sol->parent[best_v] = best_parent;
  }
}

// Final guard: any version whose path still exceeds theta (possible when
// the Prim phase materialized it late, or theta is infeasible for it) is
// re-parented onto its shortest-path-tree edge, the minimum achievable.
void RepairThetaViolations(const StorageGraph& graph, double theta,
                           const StorageSolution& spt, StorageSolution* sol) {
  for (int round = 0; round < graph.num_versions(); ++round) {
    auto costs = EvaluateSolution(graph, *sol);
    if (!costs.ok()) return;
    int worst = -1;
    for (int v = 0; v < graph.num_versions(); ++v) {
      if (costs->recreation[v] > theta &&
          sol->parent[v] != spt.parent[v]) {
        worst = v;
        break;
      }
    }
    if (worst < 0) return;
    sol->parent[worst] = spt.parent[worst];
  }
}

}  // namespace

StorageSolution MpWithRecreationThreshold(const StorageGraph& graph,
                                          double theta) {
  const int n = graph.num_versions();
  auto out = BuildOutAdjacency(graph);
  // best[v]: cheapest-storage feasible attachment found so far.
  std::vector<double> best(n);
  std::vector<int> best_parent(n, StorageGraph::kDummy);
  std::vector<double> recreation(n, 0.0);
  std::vector<char> attached(n, 0);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (int v = 0; v < n; ++v) {
    // Materialization is always allowed (otherwise no solution can meet
    // theta anyway).
    best[v] = graph.MaterializationCost(v).storage;
    pq.push({best[v], v});
  }
  std::vector<double> path_cost(n, 0.0);
  StorageSolution sol;
  sol.parent.assign(n, StorageGraph::kDummy);
  int added = 0;
  while (!pq.empty() && added < n) {
    auto [w, v] = pq.top();
    pq.pop();
    if (attached[v] || w > best[v]) continue;
    attached[v] = 1;
    sol.parent[v] = best_parent[v];
    path_cost[v] =
        best_parent[v] == StorageGraph::kDummy
            ? graph.MaterializationCost(v).recreation
            : path_cost[best_parent[v]] + recreation[v];
    ++added;
    for (const auto& e : out[v]) {
      if (attached[e.to]) continue;
      if (path_cost[v] + e.cost.recreation > theta) continue;  // infeasible
      if (e.cost.storage < best[e.to]) {
        best[e.to] = e.cost.storage;
        best_parent[e.to] = v;
        recreation[e.to] = e.cost.recreation;
        pq.push({best[e.to], e.to});
      }
    }
  }
  ImproveParents(graph, theta, &sol);
  RepairThetaViolations(graph, theta, ShortestPathTree(graph), &sol);
  return Checked(graph, std::move(sol), "MpWithRecreationThreshold");
}

StorageSolution MpWithStorageBudget(const StorageGraph& graph, double beta) {
  // Binary search theta: larger theta admits cheaper-storage attachments.
  auto spt = ShortestPathTree(graph);
  auto spt_costs = EvaluateSolution(graph, spt);
  double lo = spt_costs.ok() ? spt_costs->max_recreation : 1.0;
  auto mst = MinimumStorageArborescence(graph);
  auto mst_costs = EvaluateSolution(graph, mst);
  double hi = mst_costs.ok() ? std::max(mst_costs->max_recreation, lo) : lo;
  // Track the best *storage-feasible* candidate; if beta is below even the
  // minimum-storage solution, the instance is infeasible and we return the
  // min-storage tree as the least-bad answer.
  StorageSolution best = mst;
  double best_max = kInf;
  if (spt_costs.ok() && mst_costs.ok() &&
      spt_costs->total_storage <= beta) {
    best = spt;  // SPT fits the budget: it has the smallest possible max R
    best_max = spt_costs->max_recreation;
  }
  for (int it = 0; it < 40; ++it) {
    double theta = 0.5 * (lo + hi);
    StorageSolution cand = MpWithRecreationThreshold(graph, theta);
    auto costs = EvaluateSolution(graph, cand);
    if (costs.ok() && costs->total_storage <= beta) {
      if (costs->max_recreation < best_max) {
        best = cand;
        best_max = costs->max_recreation;
      }
      hi = theta;  // afford a tighter recreation bound
    } else {
      lo = theta;
    }
  }
  return Checked(graph, std::move(best), "MpWithStorageBudget");
}

// ---------------------------------------------------------------------------
// LAST
// ---------------------------------------------------------------------------

StorageSolution LastTree(const StorageGraph& graph, double alpha) {
  const int n = graph.num_versions();
  // Shortest-path distances (over recreation == storage in Scenario 1).
  StorageSolution spt = ShortestPathTree(graph);
  auto spt_costs = EvaluateSolution(graph, spt);
  StorageSolution mst = MinimumStorageTree(graph);
  auto mst_costs = EvaluateSolution(graph, mst);
  if (!spt_costs.ok() || !mst_costs.ok()) {
    return Checked(graph, std::move(mst), "LastTree");
  }
  const std::vector<double>& d = spt_costs->recreation;

  StorageSolution sol = mst;
  // Edge recreation weight of the MST edge into v.
  auto edge_weight = [&graph, &mst](int v) {
    if (mst.parent[v] == StorageGraph::kDummy) {
      return graph.MaterializationCost(v).recreation;
    }
    for (const auto& e : graph.InEdges(v)) {
      if (e.from == mst.parent[v]) return e.cost.recreation;
    }
    return kInf;
  };
  std::vector<std::vector<int>> children(n);
  std::vector<int> roots;
  for (int v = 0; v < n; ++v) {
    if (mst.parent[v] == StorageGraph::kDummy) {
      roots.push_back(v);
    } else {
      children[mst.parent[v]].push_back(v);
    }
  }
  // DFS from the dummy root, relinking any vertex whose tree path exceeds
  // alpha times its shortest-path distance.
  struct Frame {
    int v;
    double dist;
  };
  std::vector<Frame> stack;
  for (int r : roots) {
    stack.push_back({r, edge_weight(r)});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    double dist = f.dist;
    if (dist > alpha * d[f.v]) {
      sol.parent[f.v] = spt.parent[f.v];
      dist = d[f.v];
    }
    for (int c : children[f.v]) {
      double w = kInf;
      if (mst.parent[c] == StorageGraph::kDummy) {
        w = graph.MaterializationCost(c).recreation;
      } else {
        for (const auto& e : graph.InEdges(c)) {
          if (e.from == mst.parent[c]) w = e.cost.recreation;
        }
      }
      stack.push_back({c, dist + w});
    }
  }
  return Checked(graph, std::move(sol), "LastTree");
}

}  // namespace orpheus::deltastore
