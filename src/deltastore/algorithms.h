#ifndef ORPHEUS_DELTASTORE_ALGORITHMS_H_
#define ORPHEUS_DELTASTORE_ALGORITHMS_H_

#include "deltastore/storage_graph.h"

namespace orpheus::deltastore {

/// Problem 7.1 (Minimize Storage): minimum spanning tree / arborescence of
/// the augmented graph rooted at the dummy vertex, over ∆ weights. For the
/// undirected case (symmetric deltas) `MinimumStorageTree` runs Prim; for
/// asymmetric deltas use `MinimumStorageArborescence` (Edmonds/Chu-Liu).
StorageSolution MinimumStorageTree(const StorageGraph& graph);
StorageSolution MinimumStorageArborescence(const StorageGraph& graph);

/// Problem 7.2 (Minimize Recreation): shortest-path tree over Φ weights
/// from the dummy vertex (Dijkstra). Minimizes every R_i simultaneously.
StorageSolution ShortestPathTree(const StorageGraph& graph);

/// Problems 7.3/7.5 — the LMG (local-move greedy) algorithm: start from the
/// minimum-storage solution, then repeatedly materialize the version with
/// the best (Σ recreation reduction) / (storage increase) ratio.
///  - LmgWithStorageBudget: maximize Σ-recreation reduction while the total
///    storage stays <= beta (Problem 7.3).
///  - LmgWithRecreationTarget: stop as soon as Σ R_i <= theta, minimizing
///    storage growth along the way (Problem 7.5).
StorageSolution LmgWithStorageBudget(const StorageGraph& graph, double beta);
StorageSolution LmgWithRecreationTarget(const StorageGraph& graph,
                                        double theta);

/// Problems 7.4/7.6 — the MP (modified Prim's) algorithm: grow the tree in
/// Prim fashion, minimizing the storage of the connecting edge subject to
/// the path recreation cost staying <= theta.
///  - MpWithRecreationThreshold solves Problem 7.6 directly.
///  - MpWithStorageBudget binary-searches theta for Problem 7.4.
StorageSolution MpWithRecreationThreshold(const StorageGraph& graph,
                                          double theta);
StorageSolution MpWithStorageBudget(const StorageGraph& graph, double beta);

/// The LAST algorithm (Khuller, Raghavachari and Young), applicable in the
/// undirected Φ = ∆ scenario: rebalances an MST so every root path is
/// within alpha of the shortest path, yielding an
/// (alpha, 1 + 2/(alpha - 1)) balance between SPT and MST (Table 7.1,
/// Problems 7.4/7.6 in Scenario 1).
StorageSolution LastTree(const StorageGraph& graph, double alpha);

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_ALGORITHMS_H_
