#include "deltastore/delta.h"

#include <unordered_map>

namespace orpheus::deltastore {

uint64_t LineDelta::StorageBytes() const {
  uint64_t bytes = 0;
  for (const auto& op : ops) {
    bytes += 12;  // op header: kind + two varint-ish fields
    if (op.kind == Op::Kind::kInsert) {
      for (const auto& l : op.lines) bytes += l.size() + 1;
    }
  }
  return bytes;
}

uint64_t LineDelta::OutputLines() const {
  uint64_t n = 0;
  for (const auto& op : ops) {
    n += op.kind == Op::Kind::kCopy ? op.src_len : op.lines.size();
  }
  return n;
}

LineDelta ComputeLineDelta(const FileContent& from, const FileContent& to) {
  // Index source lines by content (first occurrence wins; later duplicates
  // are still matchable through run extension).
  std::unordered_map<std::string, std::vector<size_t>> where;
  for (size_t i = 0; i < from.lines.size(); ++i) {
    auto& v = where[from.lines[i]];
    if (v.size() < 4) v.push_back(i);  // cap to bound matching cost
  }

  LineDelta delta;
  size_t t = 0;
  while (t < to.lines.size()) {
    auto it = where.find(to.lines[t]);
    if (it == where.end()) {
      // Literal run.
      if (delta.ops.empty() ||
          delta.ops.back().kind != LineDelta::Op::Kind::kInsert) {
        LineDelta::Op op;
        op.kind = LineDelta::Op::Kind::kInsert;
        delta.ops.push_back(op);
      }
      delta.ops.back().lines.push_back(to.lines[t]);
      ++t;
      continue;
    }
    // Pick the anchor yielding the longest forward run.
    size_t best_start = it->second[0];
    size_t best_len = 0;
    for (size_t s : it->second) {
      size_t len = 0;
      while (s + len < from.lines.size() && t + len < to.lines.size() &&
             from.lines[s + len] == to.lines[t + len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_start = s;
      }
    }
    LineDelta::Op op;
    op.kind = LineDelta::Op::Kind::kCopy;
    op.src_begin = best_start;
    op.src_len = best_len;
    delta.ops.push_back(op);
    t += best_len;
  }
  return delta;
}

FileContent ApplyLineDelta(const FileContent& from, const LineDelta& delta) {
  FileContent out;
  for (const auto& op : delta.ops) {
    if (op.kind == LineDelta::Op::Kind::kCopy) {
      for (size_t i = 0; i < op.src_len; ++i) {
        out.lines.push_back(from.lines[op.src_begin + i]);
      }
    } else {
      for (const auto& l : op.lines) out.lines.push_back(l);
    }
  }
  return out;
}

}  // namespace orpheus::deltastore
