#include "deltastore/repository.h"

#include <algorithm>
#include <unordered_set>

#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace orpheus::deltastore {

namespace {

std::string RandomLine(Xorshift* rng, int version_hint) {
  return StrFormat("row,%d,%llu,%llu", version_hint,
                   static_cast<unsigned long long>(rng->Next() % 100000),
                   static_cast<unsigned long long>(rng->Next() % 100000));
}

FileContent EditFile(const FileContent& base, int edits, int version,
                     Xorshift* rng) {
  FileContent out = base;
  for (int e = 0; e < edits; ++e) {
    double dice = rng->NextDouble();
    if (out.lines.empty() || dice < 0.45) {
      size_t pos = out.lines.empty() ? 0 : rng->Uniform(out.lines.size() + 1);
      out.lines.insert(out.lines.begin() + static_cast<long>(pos),
                       RandomLine(rng, version));
    } else if (dice < 0.85) {
      size_t pos = rng->Uniform(out.lines.size());
      out.lines[pos] = RandomLine(rng, version);
    } else if (out.lines.size() > 1) {
      size_t pos = rng->Uniform(out.lines.size());
      out.lines.erase(out.lines.begin() + static_cast<long>(pos));
    }
  }
  return out;
}

}  // namespace

FileRepository FileRepository::Generate(const Config& config) {
  FileRepository repo;
  Xorshift rng(config.seed);

  FileContent root;
  root.lines.reserve(config.base_lines);
  for (int i = 0; i < config.base_lines; ++i) {
    root.lines.push_back(RandomLine(&rng, 0));
  }
  repo.files_.push_back(std::move(root));
  repo.parents_.emplace_back();

  std::vector<int> branch_heads = {0};
  for (int v = 1; v < config.num_versions; ++v) {
    bool spawn = static_cast<int>(branch_heads.size()) < config.num_branches &&
                 rng.Bernoulli(0.25);
    if (config.curated && branch_heads.size() > 1 &&
        rng.Bernoulli(config.merge_prob)) {
      // Merge a side branch into the mainline: union of distinct lines,
      // mainline order first.
      size_t bi = 1 + rng.Uniform(branch_heads.size() - 1);
      int side = branch_heads[bi];
      int main = branch_heads[0];
      FileContent merged = repo.files_[main];
      std::unordered_set<std::string> seen(merged.lines.begin(),
                                           merged.lines.end());
      for (const auto& l : repo.files_[side].lines) {
        if (seen.insert(l).second) merged.lines.push_back(l);
      }
      repo.files_.push_back(std::move(merged));
      repo.parents_.push_back({main, side});
      branch_heads[0] = v;
      branch_heads.erase(branch_heads.begin() + static_cast<long>(bi));
      continue;
    }
    size_t bi;
    if (spawn) {
      bi = rng.Uniform(branch_heads.size());
    } else {
      bi = rng.Bernoulli(0.5) ? 0 : rng.Uniform(branch_heads.size());
    }
    int head = branch_heads[bi];
    repo.files_.push_back(
        EditFile(repo.files_[head], config.edits_per_version, v, &rng));
    repo.parents_.push_back({head});
    if (spawn) {
      branch_heads.push_back(v);
    } else {
      branch_heads[bi] = v;
    }
  }
  return repo;
}

StorageGraph FileRepository::BuildStorageGraph(bool undirected, PhiModel phi,
                                               int extra_pairs,
                                               uint64_t seed) const {
  const int n = num_versions();
  StorageGraph graph(n);
  Xorshift rng(seed);

  auto phi_of = [phi](const LineDelta& delta, const FileContent& target) {
    switch (phi) {
      case PhiModel::kProportional:
        return static_cast<double>(delta.StorageBytes());
      case PhiModel::kOutputBytes:
        return static_cast<double>(target.SizeBytes()) * 0.1 +
               static_cast<double>(delta.StorageBytes()) * 0.01;
    }
    return 0.0;
  };

  for (int v = 0; v < n; ++v) {
    double size = static_cast<double>(files_[v].SizeBytes());
    graph.SetMaterializationCost(v, {size, size});
  }

  auto reveal_pair = [&](int a, int b) {
    LineDelta ab = ComputeLineDelta(files_[a], files_[b]);
    LineDelta ba = ComputeLineDelta(files_[b], files_[a]);
    if (undirected) {
      // Symmetric two-way diff: storing either direction costs the same.
      double storage = static_cast<double>(
          std::max(ab.StorageBytes(), ba.StorageBytes()));
      double phi_ab = std::max(phi_of(ab, files_[b]), phi_of(ba, files_[a]));
      graph.AddDelta(a, b, {storage, phi_ab});
      graph.AddDelta(b, a, {storage, phi_ab});
    } else {
      graph.AddDelta(a, b, {static_cast<double>(ab.StorageBytes()),
                            phi_of(ab, files_[b])});
      graph.AddDelta(b, a, {static_cast<double>(ba.StorageBytes()),
                            phi_of(ba, files_[a])});
    }
  };

  std::unordered_set<uint64_t> revealed;
  auto key = [](int a, int b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  };
  for (int v = 0; v < n; ++v) {
    for (int p : parents_[v]) {
      if (revealed.insert(key(p, v)).second) reveal_pair(p, v);
    }
  }
  for (int v = 0; v < n && extra_pairs > 0; ++v) {
    for (int e = 0; e < extra_pairs; ++e) {
      int other = static_cast<int>(rng.Uniform(n));
      if (other == v) continue;
      if (revealed.insert(key(other, v)).second) reveal_pair(other, v);
    }
  }
  return graph;
}

Result<FileContent> FileRepository::Materialize(
    const StorageSolution& solution, int v) const {
  if (v < 0 || v >= num_versions()) {
    return Status::NotFound(StrFormat("version %d", v));
  }
  if (solution.num_versions() != num_versions()) {
    return Status::InvalidArgument(
        StrFormat("solution covers %d versions, repository has %d",
                  solution.num_versions(), num_versions()));
  }
  // Walk up to a materialized ancestor.
  std::vector<int> path;
  int cur = v;
  while (cur != StorageGraph::kDummy) {
    if (cur < 0 || cur >= num_versions()) {
      return Status::InvalidArgument(
          StrFormat("solution parent %d out of range", cur));
    }
    path.push_back(cur);
    if (static_cast<int>(path.size()) > num_versions()) {
      return Status::InvalidArgument("solution contains a cycle");
    }
    cur = solution.parent[cur];
  }
  ORPHEUS_TRACE_SPAN("delta.materialize");
  ORPHEUS_HISTOGRAM_RECORD("delta.chain_len",
                           static_cast<uint64_t>(path.size() - 1));
  // path.back() is materialized: start from its stored bytes.
  FileContent content = files_[path.back()];
  uint64_t lines_decoded = 0;
  for (auto it = path.rbegin() + 1; it != path.rend(); ++it) {
    int child = *it;
    int parent = solution.parent[child];
    LineDelta delta = ComputeLineDelta(files_[parent], files_[child]);
    content = ApplyLineDelta(content, delta);
    lines_decoded += content.lines.size();
  }
  ORPHEUS_COUNTER_ADD("delta.lines_decoded", lines_decoded);
  ORPHEUS_COUNTER_ADD("delta.bytes_materialized", content.SizeBytes());
  return content;
}

Result<std::vector<FileContent>> FileRepository::MaterializeMany(
    const StorageSolution& solution, const std::vector<int>& versions) const {
  // Each chain replay only reads the repository and the solution, so the
  // requested versions materialize concurrently into pre-assigned slots.
  std::vector<FileContent> out(versions.size());
  std::vector<Status> errors(versions.size(), Status::OK());
  ParallelFor(0, versions.size(), 1,
              [this, &solution, &versions, &out, &errors](size_t lo,
                                                          size_t hi) {
                for (size_t i = lo; i < hi; ++i) {
                  Result<FileContent> r = Materialize(solution, versions[i]);
                  if (r.ok()) {
                    out[i] = r.MoveValueOrDie();
                  } else {
                    errors[i] = r.status();
                  }
                }
              });
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  return out;
}

}  // namespace orpheus::deltastore
