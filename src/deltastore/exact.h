#ifndef ORPHEUS_DELTASTORE_EXACT_H_
#define ORPHEUS_DELTASTORE_EXACT_H_

#include <optional>

#include "deltastore/storage_graph.h"

namespace orpheus::deltastore {

/// Exact solvers for small instances, playing the role of the ILP of
/// Sec. 7.2.3: branch-and-bound over each version's in-edge choice with the
/// arborescence (acyclicity) constraint. Exponential; intended for
/// n <= ~10 as an optimality reference.

/// Problem 7.6: minimize total storage subject to max_i R_i <= theta.
/// Returns nullopt when theta is infeasible.
std::optional<StorageSolution> ExactMinStorageMaxRecreation(
    const StorageGraph& graph, double theta);

/// Problem 7.5: minimize total storage subject to sum_i R_i <= theta.
std::optional<StorageSolution> ExactMinStorageSumRecreation(
    const StorageGraph& graph, double theta);

/// Problem 7.3: minimize sum_i R_i subject to total storage <= beta.
std::optional<StorageSolution> ExactMinSumRecreationStorageBudget(
    const StorageGraph& graph, double beta);

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_EXACT_H_
