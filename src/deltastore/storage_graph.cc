#include "deltastore/storage_graph.h"

#include <deque>

#include "common/string_util.h"

namespace orpheus::deltastore {

Result<SolutionCosts> EvaluateSolution(const StorageGraph& graph,
                                       const StorageSolution& solution) {
  const int n = graph.num_versions();
  if (solution.num_versions() != n) {
    return Status::InvalidArgument("solution arity mismatch");
  }
  SolutionCosts costs;
  costs.recreation.assign(n, -1.0);

  // Resolve each version's edge cost.
  std::vector<Cost> edge(n);
  std::vector<std::vector<int>> children(n);
  std::deque<int> roots;
  for (int v = 0; v < n; ++v) {
    int p = solution.parent[v];
    if (p == StorageGraph::kDummy) {
      edge[v] = graph.MaterializationCost(v);
      roots.push_back(v);
      continue;
    }
    if (p < 0 || p >= n) {
      return Status::InvalidArgument(StrFormat("bad parent %d", p));
    }
    bool found = false;
    for (const auto& e : graph.InEdges(v)) {
      if (e.from == p) {
        edge[v] = e.cost;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("delta %d -> %d not revealed", p, v));
    }
    children[p].push_back(v);
  }

  // BFS from materialized versions accumulating recreation costs.
  int visited = 0;
  while (!roots.empty()) {
    int v = roots.front();
    roots.pop_front();
    int p = solution.parent[v];
    double base = p == StorageGraph::kDummy ? 0.0 : costs.recreation[p];
    costs.recreation[v] = base + edge[v].recreation;
    costs.total_storage += edge[v].storage;
    ++visited;
    for (int c : children[v]) roots.push_back(c);
  }
  if (visited != n) {
    return Status::InvalidArgument("solution contains a cycle");
  }
  for (double r : costs.recreation) {
    costs.sum_recreation += r;
    if (r > costs.max_recreation) costs.max_recreation = r;
  }
  return costs;
}

}  // namespace orpheus::deltastore
