#ifndef ORPHEUS_DELTASTORE_DEDUP_H_
#define ORPHEUS_DELTASTORE_DEDUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "deltastore/delta.h"

namespace orpheus::deltastore {

/// A chunk-based deduplicating archive in the style of Quinlan et al.'s
/// Venti (Chapter 2 / Sec. 7.6 related work): every version is split into
/// content-defined chunks; identical chunks across versions are stored
/// once. This is the classic storage-only baseline the delta-based
/// algorithms of Chapter 7 are compared against — it deduplicates well but
/// every retrieval reads the full version's chunk list, so recreation cost
/// is always proportional to the version size (no trade-off knob).
class DedupStore {
 public:
  struct Options {
    /// Target chunk size in lines; boundaries are content-defined (a line
    /// hash modulo target == 0 ends a chunk), so insertions only disturb
    /// neighbouring chunks.
    int target_chunk_lines = 16;
    int max_chunk_lines = 64;
  };

  DedupStore() : DedupStore(Options{}) {}
  explicit DedupStore(const Options& options) : options_(options) {}

  /// Add a version; returns its id.
  int AddVersion(const FileContent& content);

  int num_versions() const { return static_cast<int>(versions_.size()); }

  /// Reconstruct a version from its chunk list (always exact).
  Result<FileContent> Materialize(int version) const;

  /// Bytes of unique chunk payloads plus per-version chunk lists.
  uint64_t StorageBytes() const;

  /// Recreation cost of a version: bytes read to rebuild it (its full
  /// size plus a per-chunk seek overhead).
  double RecreationCost(int version) const;

  size_t num_unique_chunks() const { return chunks_.size(); }

 private:
  std::vector<std::string> SplitChunks(const FileContent& content) const;

  Options options_;
  // chunk hash -> payload (the chunk store).
  std::map<uint64_t, std::string> chunks_;
  // per version: ordered chunk hashes.
  std::vector<std::vector<uint64_t>> versions_;
};

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_DEDUP_H_
