#include "deltastore/validate.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace orpheus::deltastore {

namespace {
constexpr char kComponent[] = "deltastore.solution";
}  // namespace

void ValidateStorageSolution(const StorageGraph& graph,
                             const StorageSolution& solution,
                             ValidationReport* report) {
  const int n = graph.num_versions();
  if (solution.num_versions() != n) {
    report->Add(kComponent, "",
                StrFormat("solution covers %d versions, graph has %d",
                          solution.num_versions(), n));
    return;  // per-version checks below would index out of bounds
  }
  if (n == 0) return;

  bool any_materialized = false;
  for (int v = 0; v < n; ++v) {
    int p = solution.parent[v];
    if (p == StorageGraph::kDummy) {
      any_materialized = true;
      continue;
    }
    if (p < 0 || p >= n) {
      report->Add(kComponent, StrFormat("version %d", v),
                  StrFormat("parent %d out of range [0, %d)", p, n));
      continue;
    }
    if (p == v) {
      report->Add(kComponent, StrFormat("version %d", v),
                  "stores a delta against itself");
      continue;
    }
    bool revealed = false;
    for (const auto& e : graph.InEdges(v)) {
      if (e.from == p) {
        revealed = true;
        break;
      }
    }
    if (!revealed) {
      report->Add(kComponent, StrFormat("version %d", v),
                  StrFormat("delta from %d was never revealed", p));
    }
  }
  if (!any_materialized) {
    report->Add(kComponent, "",
                "no version is materialized (no root for any delta chain)");
  }

  // Every version must reach the dummy root by following parents: a chain
  // that never reaches it sits on (or hangs off) a cycle. Memoized walk;
  // 0 = unknown, 1 = reaches the root, 2 = does not.
  std::vector<char> state(n, 0);
  for (int v = 0; v < n; ++v) {
    if (state[v] != 0) continue;
    std::vector<int> chain;
    int cur = v;
    char verdict = 0;
    while (true) {
      if (cur == StorageGraph::kDummy) {
        verdict = 1;
        break;
      }
      if (cur < 0 || cur >= n || state[cur] != 0 ||
          std::count(chain.begin(), chain.end(), cur) > 0) {
        // Out-of-range parents were reported above; a known state resolves
        // the chain; revisiting a chain member means a cycle.
        verdict = (cur >= 0 && cur < n && state[cur] == 1) ? 1 : 2;
        break;
      }
      chain.push_back(cur);
      cur = solution.parent[cur];
    }
    for (int u : chain) state[u] = verdict;
    if (verdict == 2) {
      report->Add(kComponent, StrFormat("version %d", v),
                  "delta chain never reaches a materialized version "
                  "(broken or cyclic chain)");
    }
  }
}

}  // namespace orpheus::deltastore
