#include "deltastore/exact.h"

#include <limits>
#include <vector>

namespace orpheus::deltastore {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exhaustive search over parent assignments. Each version picks either
/// materialization or one of its revealed in-edges; assignments containing
/// cycles are rejected at evaluation time. Branch-and-bound prunes on the
/// partial objective.
class ExactSearch {
 public:
  enum class Objective { kStorage, kSumRecreation };
  enum class Constraint { kNone, kMaxRecreation, kSumRecreation, kStorage };

  ExactSearch(const StorageGraph& graph, Objective objective,
              Constraint constraint, double bound)
      : graph_(graph),
        objective_(objective),
        constraint_(constraint),
        bound_(bound),
        n_(graph.num_versions()) {}

  std::optional<StorageSolution> Run() {
    StorageSolution sol;
    sol.parent.assign(n_, StorageGraph::kDummy);
    best_value_ = kInf;
    Recurse(&sol, 0, 0.0);
    if (best_value_ == kInf) return std::nullopt;
    return best_;
  }

 private:
  // Partial objective lower bound: storage accumulates per chosen edge;
  // recreation sums cannot be bounded incrementally without the tree, so we
  // only prune on storage when it is the objective.
  void Recurse(StorageSolution* sol, int v, double partial_storage) {
    if (objective_ == Objective::kStorage && partial_storage >= best_value_) {
      return;
    }
    if (v == n_) {
      auto costs = EvaluateSolution(graph_, *sol);
      if (!costs.ok()) return;  // cyclic assignment
      switch (constraint_) {
        case Constraint::kMaxRecreation:
          if (costs->max_recreation > bound_) return;
          break;
        case Constraint::kSumRecreation:
          if (costs->sum_recreation > bound_) return;
          break;
        case Constraint::kStorage:
          if (costs->total_storage > bound_) return;
          break;
        case Constraint::kNone:
          break;
      }
      double value = objective_ == Objective::kStorage
                         ? costs->total_storage
                         : costs->sum_recreation;
      if (value < best_value_) {
        best_value_ = value;
        best_ = *sol;
      }
      return;
    }
    // Option 1: materialize v.
    sol->parent[v] = StorageGraph::kDummy;
    Recurse(sol, v + 1,
            partial_storage + graph_.MaterializationCost(v).storage);
    // Option 2: each revealed delta.
    for (const auto& e : graph_.InEdges(v)) {
      sol->parent[v] = e.from;
      Recurse(sol, v + 1, partial_storage + e.cost.storage);
    }
    sol->parent[v] = StorageGraph::kDummy;
  }

  const StorageGraph& graph_;
  Objective objective_;
  Constraint constraint_;
  double bound_;
  int n_;
  double best_value_ = kInf;
  StorageSolution best_;
};

}  // namespace

std::optional<StorageSolution> ExactMinStorageMaxRecreation(
    const StorageGraph& graph, double theta) {
  return ExactSearch(graph, ExactSearch::Objective::kStorage,
                     ExactSearch::Constraint::kMaxRecreation, theta)
      .Run();
}

std::optional<StorageSolution> ExactMinStorageSumRecreation(
    const StorageGraph& graph, double theta) {
  return ExactSearch(graph, ExactSearch::Objective::kStorage,
                     ExactSearch::Constraint::kSumRecreation, theta)
      .Run();
}

std::optional<StorageSolution> ExactMinSumRecreationStorageBudget(
    const StorageGraph& graph, double beta) {
  return ExactSearch(graph, ExactSearch::Objective::kSumRecreation,
                     ExactSearch::Constraint::kStorage, beta)
      .Run();
}

}  // namespace orpheus::deltastore
