#ifndef ORPHEUS_DELTASTORE_DELTA_H_
#define ORPHEUS_DELTASTORE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace orpheus::deltastore {

/// A dataset version of arbitrary structure, modeled as a sequence of text
/// lines (Chapter 7 is format-agnostic: "our proposed algorithm is based on
/// delta-encoding, which is generic and can work with any data format").
struct FileContent {
  std::vector<std::string> lines;

  /// Bytes when stored in full (line payloads + newline separators).
  uint64_t SizeBytes() const {
    uint64_t bytes = 0;
    for (const auto& l : lines) bytes += l.size() + 1;
    return bytes;
  }

  bool operator==(const FileContent& o) const { return lines == o.lines; }
};

/// A one-way (directed) line-level delta: a program of copy-from-source and
/// insert-literal operations that rebuilds the target from the source
/// (UNIX-diff style, Sec. 7.2.1's "delta variants").
struct LineDelta {
  struct Op {
    enum class Kind { kCopy, kInsert };
    Kind kind = Kind::kCopy;
    // kCopy: [src_begin, src_begin + src_len) lines of the source.
    size_t src_begin = 0;
    size_t src_len = 0;
    // kInsert: literal lines.
    std::vector<std::string> lines;
  };
  std::vector<Op> ops;

  /// ∆: bytes needed to persist this delta (literal payloads + op headers).
  uint64_t StorageBytes() const;

  /// Lines produced when applied (used by recreation-cost models).
  uint64_t OutputLines() const;
};

/// Compute a delta that transforms `from` into `to`, using a greedy
/// hash-anchored matcher: runs of lines present in the source are emitted
/// as copies, everything else as literals.
LineDelta ComputeLineDelta(const FileContent& from, const FileContent& to);

/// Apply a delta. The result always satisfies
/// ApplyLineDelta(from, ComputeLineDelta(from, to)) == to.
FileContent ApplyLineDelta(const FileContent& from, const LineDelta& delta);

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_DELTA_H_
