#ifndef ORPHEUS_DELTASTORE_REPOSITORY_H_
#define ORPHEUS_DELTASTORE_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "deltastore/delta.h"
#include "deltastore/storage_graph.h"

namespace orpheus::deltastore {

/// How Φ relates to ∆ when building the storage graph (Sec. 7.2.1's
/// scenarios).
enum class PhiModel {
  kProportional,  // Φ = ∆ (I/O-bound; scenarios 7.1/7.2)
  kOutputBytes,   // Φ ∝ bytes written when applying (CPU-bound; Φ != ∆)
};

/// A synthetic repository of versioned files evolving along a branching
/// version graph — the workload substrate for the Chapter 7 experiments.
/// (The paper evaluates on DataHub/synthetic file collections we do not
/// have; this generator exercises the identical code path: real deltas are
/// computed between real file contents.)
class FileRepository {
 public:
  struct Config {
    int num_versions = 50;
    int num_branches = 5;
    int base_lines = 400;
    int edits_per_version = 40;  // lines inserted/deleted/modified per commit
    double merge_prob = 0.15;
    bool curated = false;  // allow merges (DAG) when true
    uint64_t seed = 42;
  };

  static FileRepository Generate(const Config& config);

  int num_versions() const { return static_cast<int>(files_.size()); }
  const FileContent& file(int v) const { return files_[v]; }
  const std::vector<int>& parents(int v) const { return parents_[v]; }

  /// Build the augmented storage graph by computing actual deltas: the
  /// materialization cost of v is its full file size; deltas are revealed
  /// along version-graph edges plus `extra_pairs` random non-adjacent pairs
  /// per version (Sec. 7.2.1: "some mechanism to choose which deltas to
  /// reveal is provided to us").
  ///
  /// With `undirected`, each revealed pair contributes a symmetric delta
  /// whose cost is max(∆ij, ∆ji) (a two-way diff); otherwise both one-way
  /// deltas are revealed with their own costs (the directed case).
  StorageGraph BuildStorageGraph(bool undirected, PhiModel phi,
                                 int extra_pairs = 0,
                                 uint64_t seed = 7) const;

  /// Recreate version v under the storage solution by walking parents to a
  /// materialized version and replaying deltas; used to verify solutions
  /// end-to-end against the original content.
  Result<FileContent> Materialize(const StorageSolution& solution,
                                  int v) const;

  /// Materialize every version in `versions`, replaying the independent
  /// delta chains concurrently on the global thread pool. Returns the
  /// contents in input order, or the lowest-indexed failure (so the error
  /// reported does not depend on scheduling).
  Result<std::vector<FileContent>> MaterializeMany(
      const StorageSolution& solution, const std::vector<int>& versions) const;

 private:
  std::vector<FileContent> files_;
  std::vector<std::vector<int>> parents_;
};

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_REPOSITORY_H_
