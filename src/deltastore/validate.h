#ifndef ORPHEUS_DELTASTORE_VALIDATE_H_
#define ORPHEUS_DELTASTORE_VALIDATE_H_

#include "common/validation.h"
#include "deltastore/storage_graph.h"

namespace orpheus::deltastore {

/// Structural invariant checks for a delta storage solution (Chapter 7):
/// the parent assignment must cover every version, reference only revealed
/// deltas, materialize at least one version, and form a forest rooted at
/// the dummy vertex — every version reaches a materialization root without
/// cycles (Lemma 7.1's spanning-tree property). All violations found are
/// appended to `report`.
void ValidateStorageSolution(const StorageGraph& graph,
                             const StorageSolution& solution,
                             ValidationReport* report);

}  // namespace orpheus::deltastore

#endif  // ORPHEUS_DELTASTORE_VALIDATE_H_
