#include "deltastore/dedup.h"

#include "common/string_util.h"

namespace orpheus::deltastore {

namespace {

uint64_t HashBytes(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<std::string> DedupStore::SplitChunks(
    const FileContent& content) const {
  std::vector<std::string> chunks;
  std::string cur;
  int lines = 0;
  for (const auto& line : content.lines) {
    cur += line;
    cur += '\n';
    ++lines;
    // Content-defined boundary: cut when the line's hash lands in the
    // 1/target residue class, or at the hard cap.
    bool boundary =
        (HashBytes(line) %
             static_cast<uint64_t>(options_.target_chunk_lines) ==
         0) ||
        lines >= options_.max_chunk_lines;
    if (boundary) {
      chunks.push_back(std::move(cur));
      cur.clear();
      lines = 0;
    }
  }
  if (!cur.empty()) chunks.push_back(std::move(cur));
  return chunks;
}

int DedupStore::AddVersion(const FileContent& content) {
  std::vector<uint64_t> list;
  for (auto& chunk : SplitChunks(content)) {
    uint64_t h = HashBytes(chunk);
    chunks_.emplace(h, std::move(chunk));
    list.push_back(h);
  }
  versions_.push_back(std::move(list));
  return num_versions() - 1;
}

Result<FileContent> DedupStore::Materialize(int version) const {
  if (version < 0 || version >= num_versions()) {
    return Status::NotFound(StrFormat("version %d", version));
  }
  std::string bytes;
  for (uint64_t h : versions_[version]) {
    auto it = chunks_.find(h);
    if (it == chunks_.end()) return Status::Corruption("missing chunk");
    bytes += it->second;
  }
  FileContent out;
  if (!bytes.empty()) {
    // Split back into lines (chunks always end lines with '\n').
    size_t start = 0;
    while (start < bytes.size()) {
      size_t nl = bytes.find('\n', start);
      if (nl == std::string::npos) break;
      out.lines.push_back(bytes.substr(start, nl - start));
      start = nl + 1;
    }
  }
  return out;
}

uint64_t DedupStore::StorageBytes() const {
  uint64_t bytes = 0;
  for (const auto& [h, payload] : chunks_) {
    (void)h;
    bytes += payload.size() + 8;  // payload + hash key
  }
  for (const auto& list : versions_) bytes += list.size() * 8;
  return bytes;
}

double DedupStore::RecreationCost(int version) const {
  if (version < 0 || version >= num_versions()) return 0.0;
  double bytes = 0.0;
  for (uint64_t h : versions_[version]) {
    auto it = chunks_.find(h);
    if (it != chunks_.end()) bytes += static_cast<double>(it->second.size());
    bytes += 16.0;  // per-chunk lookup overhead
  }
  return bytes;
}

}  // namespace orpheus::deltastore
