// The OrpheusDB command client: a REPL over CommandProcessor. Reads one
// command per line from stdin (or from files given on the command line),
// mirroring the paper's command-line interface (Sec. 3.3).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "cli/command_processor.h"
#include "common/log.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace {

int RunStream(orpheus::cli::CommandProcessor* processor, std::istream& in,
              bool interactive) {
  std::string line;
  while (true) {
    if (interactive) std::cout << "orpheus> " << std::flush;
    if (!std::getline(in, line)) break;
    auto trimmed = orpheus::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == "exit" || trimmed == "quit") break;
    auto result = processor->Execute(std::string(trimmed));
    if (result.ok()) {
      if (!result->empty()) std::cout << *result << "\n";
    } else {
      std::cout << "error: " << result.status().ToString() << "\n";
      processor->NoteError();
    }
  }
  return processor->exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  orpheus::trace::SetCurrentThreadName("main");
  orpheus::cli::CommandProcessor processor;
  if (argc > 1) {
    int exit_code = 0;
    for (int i = 1; i < argc; ++i) {
      std::ifstream file(argv[i]);
      if (!file) {
        LOG_ERROR("cannot open command file", {{"path", argv[i]}});
        return orpheus::cli::CommandProcessor::kExitError;
      }
      exit_code = std::max(exit_code,
                           RunStream(&processor, file, /*interactive=*/false));
    }
    return exit_code;
  }
  return RunStream(&processor, std::cin, /*interactive=*/true);
}
