#include "cli/command_processor.h"

#include <fstream>
#include <sstream>

#include "common/file_util.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/lyresplit.h"
#include "core/query.h"
#include "core/validate.h"
#include "minidb/csv.h"

namespace orpheus::cli {

using core::Cvd;
using core::VersionId;
using minidb::Table;

namespace {

// Shell-style tokenizer: whitespace-separated, quotes group.
Result<std::vector<std::string>> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_token = false;
  char quote = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      in_token = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (in_token) {
        out.push_back(std::move(cur));
        cur.clear();
        in_token = false;
      }
      continue;
    }
    cur += c;
    in_token = true;
  }
  if (quote != 0) return Status::InvalidArgument("unterminated quote");
  if (in_token) out.push_back(std::move(cur));
  return out;
}

Result<std::vector<VersionId>> ParseVersionList(const std::string& spec) {
  std::vector<VersionId> vids;
  for (const auto& part : Split(spec, ',')) {
    char* end = nullptr;
    long v = std::strtol(part.c_str(), &end, 10);
    if (end != part.c_str() + part.size() || v <= 0) {
      return Status::InvalidArgument(
          StrFormat("bad version id '%s'", part.c_str()));
    }
    vids.push_back(static_cast<VersionId>(v));
  }
  if (vids.empty()) return Status::InvalidArgument("no versions given");
  return vids;
}

std::string RenderTable(const Table& t, size_t max_rows = 20) {
  std::ostringstream os;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (c) os << " | ";
    os << t.schema().column(c).name;
  }
  os << "\n";
  for (uint32_t r = 0; r < t.num_rows() && r < max_rows; ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (c) os << " | ";
      os << t.GetValue(r, c).ToString();
    }
    os << "\n";
  }
  if (t.num_rows() > max_rows) {
    os << "... (" << t.num_rows() - max_rows << " more rows)\n";
  }
  return os.str();
}

}  // namespace

Result<CommandProcessor::Args> CommandProcessor::ParseArgs(
    const std::string& line) {
  auto tokens = Tokenize(line);
  if (!tokens.ok()) return tokens.status();
  Args args;
  for (size_t i = 0; i < tokens->size(); ++i) {
    const std::string& tok = (*tokens)[i];
    if (tok.size() >= 2 && tok[0] == '-' && !std::isdigit(
                                                static_cast<unsigned char>(
                                                    tok[1]))) {
      std::string value;
      if (i + 1 < tokens->size()) {
        value = (*tokens)[++i];
      }
      args.flags[tok.substr(1)] = value;
    } else {
      args.positional.push_back(tok);
    }
  }
  return args;
}

Result<Cvd*> CommandProcessor::FindCvd(const std::string& name) {
  auto it = cvds_.find(name);
  if (it == cvds_.end()) {
    if (managers_.count(name) != 0) {
      return Status::InvalidArgument(StrFormat(
          "CVD %s is open for concurrent use; drive it with the session "
          "commands or run `session close %s` first",
          name.c_str(), name.c_str()));
    }
    return Status::NotFound(StrFormat("no CVD named %s", name.c_str()));
  }
  return it->second.get();
}

Result<session::SessionManager*> CommandProcessor::FindManager(
    const std::string& cvd) {
  auto it = managers_.find(cvd);
  if (it == managers_.end()) {
    return Status::NotFound(StrFormat(
        "CVD %s is not session-managed (run `session open %s` first)",
        cvd.c_str(), cvd.c_str()));
  }
  return it->second.get();
}

Result<session::Session*> CommandProcessor::FindSession(const std::string& cvd,
                                                        int sid) {
  ORPHEUS_RETURN_NOT_OK(FindManager(cvd).status());
  auto& open = sessions_[cvd];
  auto it = open.find(sid);
  if (it == open.end()) {
    return Status::NotFound(StrFormat(
        "no open session %d on CVD %s (run `session new %s`)", sid,
        cvd.c_str(), cvd.c_str()));
  }
  return it->second.get();
}

Result<Cvd*> CommandProcessor::CvdOfStagingTable(const std::string& table) {
  for (auto& [name, cvd] : cvds_) {
    (void)name;
    for (const auto& staged : cvd->StagedTables()) {
      if (staged == table) return cvd.get();
    }
  }
  return Status::NotFound(
      StrFormat("table %s was not checked out from any CVD", table.c_str()));
}

Result<std::string> CommandProcessor::Execute(const std::string& line) {
  // `profile` wraps the rest of the line, which must reach the inner
  // Execute verbatim (quotes intact), so it is peeled off before
  // tokenization.
  std::string_view trimmed = Trim(line);
  if (trimmed.size() > 8 && ToLower(std::string(trimmed.substr(0, 8))) ==
                                "profile ") {
    return Profile(std::string(Trim(trimmed.substr(8))));
  }
  auto args_result = ParseArgs(line);
  if (!args_result.ok()) return args_result.status();
  Args args = args_result.MoveValueOrDie();
  if (args.positional.empty()) return std::string();
  std::string cmd = ToLower(args.positional[0]);
  args.positional.erase(args.positional.begin());

  if (cmd == "create_user") {
    if (args.positional.empty()) {
      return Status::InvalidArgument("usage: create_user <name>");
    }
    ORPHEUS_RETURN_NOT_OK(access_.CreateUser(args.positional[0]));
    return StrFormat("created user %s", args.positional[0].c_str());
  }
  if (cmd == "config") {
    if (args.positional.empty()) {
      return Status::InvalidArgument("usage: config <name>");
    }
    ORPHEUS_RETURN_NOT_OK(access_.Login(args.positional[0]));
    return StrFormat("logged in as %s", args.positional[0].c_str());
  }
  if (cmd == "whoami") {
    return access_.current_user().empty() ? std::string("<anonymous>")
                                          : access_.current_user();
  }
  if (cmd == "open") return OpenRepository(args);
  if (cmd == "checkpoint") return CheckpointRepository();
  if (cmd == "close") return CloseRepository();
  if (cmd == "init") return Init(args);
  if (cmd == "checkout") return Checkout(args);
  if (cmd == "commit") return Commit(args);
  if (cmd == "diff") return Diff(args);
  if (cmd == "ls") return Ls();
  if (cmd == "drop") return Drop(args);
  if (cmd == "log") return Log(args);
  if (cmd == "run") return RunSql(args);
  if (cmd == "optimize") return Optimize(args);
  if (cmd == "fsck") return Fsck(args);
  if (cmd == "session") return SessionCmd(args);
  if (cmd == "remote") return RemoteCmd(args);
  if (cmd == "stats") return Stats(args);
  if (cmd == "trace") return Trace(args);
  if (cmd == "tables") {
    std::string out;
    for (const auto& name : staging_.ListTables()) {
      out += name;
      out += "\n";
    }
    return out;
  }
  return Status::InvalidArgument(StrFormat("unknown command '%s'",
                                           cmd.c_str()));
}

Result<std::string> CommandProcessor::Init(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: init <cvd> (-t table | -f csv)");
  }
  const std::string& name = args.positional[0];
  if (cvds_.count(name)) {
    return Status::AlreadyExists(StrFormat("CVD %s exists", name.c_str()));
  }

  Cvd::Options options;
  if (const std::string* pk = args.Flag("k")) {
    options.primary_key = Split(*pk, ',');
  }

  const Table* source = nullptr;
  Table loaded("", minidb::Schema());
  if (const std::string* table_name = args.Flag("t")) {
    source = staging_.GetTable(*table_name);
    if (source == nullptr) {
      return Status::NotFound(
          StrFormat("no staging table %s", table_name->c_str()));
    }
  } else if (const std::string* path = args.Flag("f")) {
    minidb::Schema schema;
    const minidb::Schema* schema_ptr = nullptr;
    if (const std::string* spec_path = args.Flag("s")) {
      std::ifstream in(*spec_path);
      if (!in) {
        return Status::NotFound(
            StrFormat("cannot open schema file %s", spec_path->c_str()));
      }
      std::stringstream buf;
      buf << in.rdbuf();
      auto parsed = minidb::ParseSchemaSpec(buf.str());
      if (!parsed.ok()) return parsed.status();
      schema = *parsed;
      schema_ptr = &schema;
    }
    auto table = minidb::ReadCsv(*path, name, schema_ptr);
    if (!table.ok()) return table.status();
    loaded = table.MoveValueOrDie();
    source = &loaded;
  } else {
    return Status::InvalidArgument("init needs -t <table> or -f <csv>");
  }

  auto cvd = Cvd::Init(name, *source, options);
  if (!cvd.ok()) return cvd.status();
  if (repo_ != nullptr) {
    // Durably log the creation before registering it in the session: if
    // the log write fails, the CVD never existed anywhere.
    ORPHEUS_RETURN_NOT_OK(repo_->LogCreate(**cvd));
  }
  WireCommitObserver(cvd->get());
  cvds_[name] = cvd.MoveValueOrDie();
  return StrFormat("initialized CVD %s with version 1 (%zu records)",
                   name.c_str(), static_cast<size_t>(source->num_rows()));
}

Result<std::string> CommandProcessor::Checkout(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument(
        "usage: checkout <cvd> -v <vids> (-t table | -f csv)");
  }
  auto cvd = FindCvd(args.positional[0]);
  if (!cvd.ok()) return cvd.status();
  const std::string* vspec = args.Flag("v");
  if (vspec == nullptr) {
    return Status::InvalidArgument("checkout needs -v <version list>");
  }
  auto vids = ParseVersionList(*vspec);
  if (!vids.ok()) return vids.status();

  if (const std::string* table = args.Flag("t")) {
    ORPHEUS_RETURN_NOT_OK((*cvd)->Checkout(*vids, *table, &staging_));
    access_.GrantTable(*table);
    return StrFormat("checked out version(s) %s into table %s",
                     vspec->c_str(), table->c_str());
  }
  if (const std::string* path = args.Flag("f")) {
    // Materialize, export, and drop the transient table; remember the
    // file's provenance for the later commit.
    std::string tmp = "__csv_checkout__";
    ORPHEUS_RETURN_NOT_OK((*cvd)->Checkout(*vids, tmp, &staging_));
    Table* t = staging_.GetTable(tmp);
    Status written = minidb::WriteCsv(*t, *path);
    Status forgotten = (*cvd)->ForgetStaging(tmp);
    Status dropped = staging_.DropTable(tmp);
    ORPHEUS_RETURN_NOT_OK(written);
    ORPHEUS_RETURN_NOT_OK(forgotten);
    ORPHEUS_RETURN_NOT_OK(dropped);
    files_[*path] = FileInfo{args.positional[0], *vids};
    return StrFormat("checked out version(s) %s into %s", vspec->c_str(),
                     path->c_str());
  }
  return Status::InvalidArgument("checkout needs -t <table> or -f <csv>");
}

Result<std::string> CommandProcessor::Commit(const Args& args) {
  const std::string* msg = args.Flag("m");
  std::string message = msg ? *msg : "";

  if (const std::string* table = args.Flag("t")) {
    ORPHEUS_RETURN_NOT_OK(access_.CheckTableAccess(*table));
    auto cvd = CvdOfStagingTable(*table);
    if (!cvd.ok()) return cvd.status();
    auto vid = (*cvd)->Commit(*table, &staging_, message,
                              access_.current_user());
    if (!vid.ok()) return vid.status();
    access_.RevokeTable(*table);
    return StrFormat("committed table %s as version %d of CVD %s",
                     table->c_str(), *vid, (*cvd)->name().c_str());
  }
  if (const std::string* path = args.Flag("f")) {
    auto info = files_.find(*path);
    if (info == files_.end()) {
      return Status::NotFound(
          StrFormat("%s was not checked out from any CVD", path->c_str()));
    }
    auto cvd = FindCvd(info->second.cvd);
    if (!cvd.ok()) return cvd.status();
    minidb::Schema schema;
    const minidb::Schema* schema_ptr = nullptr;
    if (const std::string* spec_path = args.Flag("s")) {
      std::ifstream in(*spec_path);
      if (!in) {
        return Status::NotFound(
            StrFormat("cannot open schema file %s", spec_path->c_str()));
      }
      std::stringstream buf;
      buf << in.rdbuf();
      auto parsed = minidb::ParseSchemaSpec(buf.str());
      if (!parsed.ok()) return parsed.status();
      schema = *parsed;
      // The exported csv carries the hidden _rid column; prepend it when
      // the user's schema file describes only the data attributes.
      if (schema.FindColumn("_rid") < 0) {
        minidb::Schema with_rid;
        with_rid.AddColumn({"_rid", minidb::ValueType::kInt64});
        for (const auto& def : schema.columns()) with_rid.AddColumn(def);
        schema = with_rid;
      }
      schema_ptr = &schema;
    }
    auto table = minidb::ReadCsv(*path, *path, schema_ptr);
    if (!table.ok()) return table.status();
    auto vid = (*cvd)->CommitTable(*table, info->second.parents, message,
                                   access_.current_user());
    if (!vid.ok()) return vid.status();
    files_.erase(info);
    return StrFormat("committed %s as version %d of CVD %s", path->c_str(),
                     *vid, (*cvd)->name().c_str());
  }
  return Status::InvalidArgument("commit needs -t <table> or -f <csv>");
}

Result<std::string> CommandProcessor::Diff(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: diff <cvd> -v <v1>,<v2>");
  }
  auto cvd = FindCvd(args.positional[0]);
  if (!cvd.ok()) return cvd.status();
  const std::string* vspec = args.Flag("v");
  if (vspec == nullptr) return Status::InvalidArgument("diff needs -v v1,v2");
  auto vids = ParseVersionList(*vspec);
  if (!vids.ok()) return vids.status();
  if (vids->size() != 2) {
    return Status::InvalidArgument("diff takes exactly two versions");
  }
  auto table = (*cvd)->Diff((*vids)[0], (*vids)[1]);
  if (!table.ok()) return table.status();
  return StrFormat("records in v%d but not v%d:\n", (*vids)[0], (*vids)[1]) +
         RenderTable(*table);
}

Result<std::string> CommandProcessor::Ls() const {
  std::string out;
  for (const auto& [name, cvd] : cvds_) {
    out += StrFormat("%s  (%d versions, %llu bytes)\n", name.c_str(),
                     cvd->num_versions(),
                     static_cast<unsigned long long>(cvd->StorageBytes()));
  }
  for (const auto& [name, manager] : managers_) {
    int versions = 0;
    unsigned long long bytes = 0;
    ORPHEUS_IGNORE_ERROR(manager->ReadCvd([&](const core::Cvd& cvd) {
      versions = cvd.num_versions();
      bytes = cvd.StorageBytes();
      return Status::OK();
    }));
    out += StrFormat("%s  (%d versions, %llu bytes, session-managed)\n",
                     name.c_str(), versions, bytes);
  }
  return out.empty() ? "no CVDs\n" : out;
}

Result<std::string> CommandProcessor::Drop(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: drop <cvd>");
  }
  const std::string& name = args.positional[0];
  if (cvds_.count(name) == 0) {
    if (managers_.count(name) != 0) {
      return Status::InvalidArgument(StrFormat(
          "CVD %s is open for concurrent use; run `session close %s` first",
          name.c_str(), name.c_str()));
    }
    return Status::NotFound(StrFormat("no CVD named %s", name.c_str()));
  }
  // Log before applying: if the drop record cannot be made durable, the
  // CVD stays (memory and disk agree either way).
  if (repo_ != nullptr) ORPHEUS_RETURN_NOT_OK(repo_->LogDrop(name));
  cvds_.erase(name);
  return StrFormat("dropped CVD %s", name.c_str());
}

Result<std::string> CommandProcessor::Log(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: log <cvd>");
  }
  auto cvd = FindCvd(args.positional[0]);
  if (!cvd.ok()) return cvd.status();
  std::ostringstream os;
  for (auto it = (*cvd)->metadata().rbegin(); it != (*cvd)->metadata().rend();
       ++it) {
    os << "version " << it->vid;
    if (!it->parents.empty()) {
      os << " (parents:";
      for (auto p : it->parents) os << " " << p;
      os << ")";
    }
    os << "\n  author:  "
       << (it->author.empty() ? "<anonymous>" : it->author) << "\n  records: "
       << it->num_records << "\n  message: " << it->message << "\n";
  }
  return os.str();
}

Result<std::string> CommandProcessor::RunSql(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: run \"<sql>\"");
  }
  const std::string& sql = args.positional[0];
  // Route to the CVD named after the `CVD` keyword.
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  std::string cvd_name;
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    if (ToLower((*tokens)[i]) == "cvd") {
      cvd_name = (*tokens)[i + 1];
      // strip trailing punctuation like ','
      while (!cvd_name.empty() &&
             (cvd_name.back() == ',' || cvd_name.back() == ';')) {
        cvd_name.pop_back();
      }
      break;
    }
  }
  if (cvd_name.empty()) {
    return Status::InvalidArgument("query must reference a CVD");
  }
  auto cvd = FindCvd(cvd_name);
  if (!cvd.ok()) return cvd.status();
  auto result = core::RunQuery(**cvd, sql);
  if (!result.ok()) return result.status();
  return RenderTable(*result, 50);
}

Result<std::string> CommandProcessor::Optimize(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: optimize <cvd> [-g factor]");
  }
  auto cvd = FindCvd(args.positional[0]);
  if (!cvd.ok()) return cvd.status();
  double factor = 2.0;
  if (const std::string* g = args.Flag("g")) {
    factor = std::strtod(g->c_str(), nullptr);
    if (factor < 1.0) return Status::InvalidArgument("-g must be >= 1");
  }
  const auto& graph = (*cvd)->graph();
  // |R| estimate: records in the whole CVD (single partition union).
  auto single = core::ComputeTreeEstimatedCosts(
      graph, graph.ToTree(),
      core::Partitioning::SinglePartition(graph.num_versions()));
  uint64_t gamma = static_cast<uint64_t>(
      factor * static_cast<double>(single.storage));
  auto plan = core::LyreSplitForBudget(graph, gamma);
  return StrFormat(
      "LyreSplit plan: %d partitions (delta=%.3f), estimated storage %llu "
      "records (budget %llu), estimated avg checkout %.0f records (vs %.0f "
      "unpartitioned)",
      plan.partitioning.num_partitions, plan.delta,
      static_cast<unsigned long long>(plan.estimated.storage),
      static_cast<unsigned long long>(gamma), plan.estimated.checkout_avg,
      single.checkout_avg);
}

Result<std::string> CommandProcessor::Fsck(const Args& args) {
  if (const std::string* dir = args.Flag("d")) {
    // Offline check of an on-disk repository (works whether or not a
    // repository is open in this session — pure read). Corruption exits
    // with the distinct fsck code so scripts can tell it from a bad
    // invocation.
    auto lines = storage::Repository::Fsck(*dir);
    if (!lines.ok()) {
      NoteExit(kExitCorrupt);
      return lines.status();
    }
    std::string out =
        StrFormat("fsck %s: clean\n", dir->c_str());
    for (const std::string& line : *lines) {
      out += "  " + line + "\n";
    }
    return out;
  }
  ValidationReport report;
  int checked = 0;
  auto check_managed = [&](const std::string& name) {
    ORPHEUS_IGNORE_ERROR(managers_.at(name)->ReadCvd(
        [&report](const core::Cvd& cvd) {
          core::ValidateCvd(cvd, &report);
          return Status::OK();
        }));
    ++checked;
  };
  if (!args.positional.empty()) {
    const std::string& name = args.positional[0];
    if (managers_.count(name) != 0) {
      check_managed(name);
    } else {
      auto cvd = FindCvd(name);
      if (!cvd.ok()) return cvd.status();
      core::ValidateCvd(**cvd, &report);
      ++checked;
    }
  } else {
    for (const auto& [name, cvd] : cvds_) {
      (void)name;
      core::ValidateCvd(*cvd, &report);
      ++checked;
    }
    for (const auto& [name, manager] : managers_) {
      (void)manager;
      check_managed(name);
    }
    for (const auto& name : staging_.ListTables()) {
      const Table* table = staging_.GetTable(name);
      if (table != nullptr) table->ValidateIndexes(&report);
    }
  }
  std::string health;
  if (repo_ != nullptr && repo_->degraded()) {
    NoteExit(kExitCorrupt);
    health = StrFormat(
        "\nrepository %s is DEGRADED: a WAL append failed, commits are "
        "refused; close the process and reopen the repository to recover",
        repo_->dir().c_str());
  }
  if (report.ok()) {
    return StrFormat("fsck: %d CVD(s) checked, no violations found",
                     checked) +
           health;
  }
  NoteExit(kExitCorrupt);
  return StrFormat("fsck: %d violation(s) found\n%s",
                   static_cast<int>(report.num_violations()),
                   report.ToString().c_str()) +
         health;
}

Result<std::string> CommandProcessor::SessionCmd(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument(
        "usage: session open|new|checkout|commit|refresh|ls|close ...");
  }
  const std::string sub = ToLower(args.positional[0]);

  if (sub == "ls") {
    if (managers_.empty()) return std::string("no session-managed CVDs\n");
    std::string out;
    for (const auto& [name, manager] : managers_) {
      out += StrFormat("%s  (watermark v%d, %zu open session(s)%s)\n",
                       name.c_str(), manager->watermark(),
                       sessions_[name].size(),
                       manager->failed() ? ", POISONED" : "");
    }
    return out;
  }
  if (args.positional.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("usage: session %s <cvd> ...", sub.c_str()));
  }
  const std::string& name = args.positional[1];

  if (sub == "open") {
    if (managers_.count(name) != 0) {
      return Status::AlreadyExists(
          StrFormat("CVD %s is already session-managed", name.c_str()));
    }
    auto it = cvds_.find(name);
    if (it == cvds_.end()) {
      return Status::NotFound(StrFormat("no CVD named %s", name.c_str()));
    }
    if (!it->second->StagedTables().empty()) {
      return Status::InvalidArgument(StrFormat(
          "CVD %s has staged checkouts; commit or drop them before "
          "`session open`",
          name.c_str()));
    }
    auto manager = std::make_unique<session::SessionManager>(
        std::move(it->second), repo_.get());
    cvds_.erase(it);
    core::VersionId watermark = manager->watermark();
    managers_[name] = std::move(manager);
    return StrFormat(
        "CVD %s is now session-managed (watermark v%d); use `session new "
        "%s` to open sessions",
        name.c_str(), watermark, name.c_str());
  }
  if (sub == "close") {
    auto manager = FindManager(name);
    if (!manager.ok()) return manager.status();
    size_t released = sessions_[name].size();
    sessions_.erase(name);  // sessions first: they point into the manager
    auto cvd = (*manager)->Release();
    managers_.erase(name);
    WireCommitObserver(cvd.get());
    cvds_[name] = std::move(cvd);
    return StrFormat("CVD %s released from session management "
                     "(%zu session(s) closed)",
                     name.c_str(), released);
  }
  if (sub == "new") {
    auto manager = FindManager(name);
    if (!manager.ok()) return manager.status();
    auto session = (*manager)->Open();
    int sid = session->id();
    core::VersionId watermark = session->watermark();
    sessions_[name][sid] = std::move(session);
    return StrFormat("opened session %d on CVD %s (snapshot watermark v%d)",
                     sid, name.c_str(), watermark);
  }

  // The remaining subcommands address one session: session <sub> <cvd> <sid>.
  if (args.positional.size() < 3) {
    return Status::InvalidArgument(
        StrFormat("usage: session %s <cvd> <sid> ...", sub.c_str()));
  }
  char* end = nullptr;
  const std::string& sid_spec = args.positional[2];
  long sid = std::strtol(sid_spec.c_str(), &end, 10);
  if (end != sid_spec.c_str() + sid_spec.size() || sid <= 0) {
    return Status::InvalidArgument(
        StrFormat("bad session id '%s'", sid_spec.c_str()));
  }
  auto session = FindSession(name, static_cast<int>(sid));
  if (!session.ok()) return session.status();

  if (sub == "checkout") {
    const std::string* vspec = args.Flag("v");
    const std::string* table = args.Flag("t");
    if (vspec == nullptr || table == nullptr) {
      return Status::InvalidArgument(
          "usage: session checkout <cvd> <sid> -v <vids> -t <table>");
    }
    auto vids = ParseVersionList(*vspec);
    if (!vids.ok()) return vids.status();
    ORPHEUS_RETURN_NOT_OK((*session)->Checkout(*vids, *table));
    return StrFormat("session %ld checked out version(s) %s into table %s",
                     sid, vspec->c_str(), table->c_str());
  }
  if (sub == "commit") {
    const std::string* table = args.Flag("t");
    if (table == nullptr) {
      return Status::InvalidArgument(
          "usage: session commit <cvd> <sid> -t <table> -m \"<msg>\"");
    }
    const std::string* msg = args.Flag("m");
    auto outcome = (*session)->Commit(*table, msg ? *msg : "",
                                      access_.current_user());
    if (!outcome.ok()) return outcome.status();
    std::string out = StrFormat("session %ld committed table %s as version "
                                "%d of CVD %s",
                                sid, table->c_str(), outcome->vid,
                                name.c_str());
    if (outcome->reconciled) {
      out += StrFormat("\nreconciled with concurrent version %d into merge "
                       "version %d",
                       outcome->reconciled_with, outcome->merged_vid);
    } else if (!outcome->conflicts.empty()) {
      out += StrFormat("\nCONFLICT with concurrent version %d: %zu attribute "
                       "conflict(s); v%d left as a divergent branch",
                       outcome->reconciled_with, outcome->conflicts.size(),
                       outcome->vid);
      for (const session::MergeConflict& c : outcome->conflicts) {
        out += StrFormat("\n  key=%s attribute=%s base=%s ours=%s theirs=%s",
                         c.key.c_str(), c.attribute.c_str(), c.base.c_str(),
                         c.ours.c_str(), c.theirs.c_str());
      }
    }
    return out;
  }
  if (sub == "refresh") {
    ORPHEUS_RETURN_NOT_OK((*session)->Refresh());
    return StrFormat("session %ld now at watermark v%d", sid,
                     (*session)->watermark());
  }
  return Status::InvalidArgument(StrFormat(
      "unknown session subcommand '%s' (want "
      "open|new|checkout|commit|refresh|ls|close)",
      sub.c_str()));
}

Result<std::string> CommandProcessor::RemoteCmd(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument(
        "usage: remote connect|open|checkout|commit|refresh|heartbeat|ls|"
        "close|disconnect ...");
  }
  const std::string sub = ToLower(args.positional[0]);

  if (sub == "connect") {
    if (args.positional.size() < 2) {
      return Status::InvalidArgument(
          "usage: remote connect <unix:<path> | tcp:[host:]<port>>");
    }
    ORPHEUS_ASSIGN_OR_RETURN(remote_,
                             net::Client::Connect(args.positional[1]));
    return StrFormat("connected to %s as %s%s", args.positional[1].c_str(),
                     remote_->client_uuid().c_str(),
                     remote_->server_degraded()
                         ? " (server DEGRADED: read-only)"
                         : "");
  }
  if (remote_ == nullptr) {
    return Status::InvalidArgument(
        "not connected; run `remote connect <address>` first");
  }
  if (sub == "disconnect") {
    remote_.reset();
    return std::string("disconnected");
  }
  if (sub == "ls") {
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<net::CvdSummary> cvds,
                             remote_->Ls());
    if (cvds.empty()) return std::string("server has no CVDs\n");
    std::string out;
    for (const net::CvdSummary& c : cvds) {
      out += StrFormat("%s  (%d version(s), watermark v%d, %d open "
                       "session(s)%s)\n",
                       c.name.c_str(), c.num_versions, c.watermark,
                       c.open_sessions,
                       c.failed ? ", COMMITS REFUSED" : "");
    }
    return out;
  }
  if (sub == "open") {
    if (args.positional.size() < 2) {
      return Status::InvalidArgument("usage: remote open <cvd>");
    }
    ORPHEUS_ASSIGN_OR_RETURN(net::Client::OpenResult opened,
                             remote_->Open(args.positional[1]));
    return StrFormat(
        "opened remote session %llu on CVD %s (snapshot watermark v%d)",
        static_cast<unsigned long long>(opened.sid),
        args.positional[1].c_str(), opened.watermark);
  }

  // The remaining subcommands address one remote session by sid.
  if (args.positional.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("usage: remote %s <sid> ...", sub.c_str()));
  }
  char* end = nullptr;
  const std::string& sid_spec = args.positional[1];
  const unsigned long long sid =
      std::strtoull(sid_spec.c_str(), &end, 10);
  if (end != sid_spec.c_str() + sid_spec.size() || sid == 0) {
    return Status::InvalidArgument(
        StrFormat("bad remote session id '%s'", sid_spec.c_str()));
  }

  if (sub == "checkout") {
    const std::string* vspec = args.Flag("v");
    const std::string* table = args.Flag("t");
    if (vspec == nullptr || table == nullptr) {
      return Status::InvalidArgument(
          "usage: remote checkout <sid> -v <vids> -t <table>");
    }
    auto vids = ParseVersionList(*vspec);
    if (!vids.ok()) return vids.status();
    if (staging_.HasTable(*table)) {
      return Status::AlreadyExists(
          StrFormat("staging table %s already exists", table->c_str()));
    }
    ORPHEUS_ASSIGN_OR_RETURN(minidb::Table fetched,
                             remote_->Checkout(sid, *vids, *table));
    const size_t rows = fetched.num_rows();
    ORPHEUS_RETURN_NOT_OK(
        staging_.AdoptTable(std::move(fetched)).status());
    return StrFormat(
        "remote session %llu checked out version(s) %s into table %s "
        "(%zu record(s))",
        sid, vspec->c_str(), table->c_str(), rows);
  }
  if (sub == "commit") {
    const std::string* table = args.Flag("t");
    if (table == nullptr) {
      return Status::InvalidArgument(
          "usage: remote commit <sid> -t <table> -m \"<msg>\"");
    }
    const minidb::Table* staged = staging_.GetTable(*table);
    if (staged == nullptr) {
      return Status::NotFound(
          StrFormat("no staging table named %s", table->c_str()));
    }
    const std::string* msg = args.Flag("m");
    auto outcome = remote_->Commit(sid, *staged, msg ? *msg : "",
                                   access_.current_user());
    if (!outcome.ok()) return outcome.status();
    ORPHEUS_RETURN_NOT_OK(staging_.DropTable(*table));
    std::string out = StrFormat(
        "remote session %llu committed table %s as version %d", sid,
        table->c_str(), outcome->vid);
    if (outcome->reconciled) {
      out += StrFormat("\nreconciled with concurrent version %d into merge "
                       "version %d",
                       outcome->reconciled_with, outcome->merged_vid);
    } else if (!outcome->conflicts.empty()) {
      out += StrFormat("\nCONFLICT with concurrent version %d: %zu attribute "
                       "conflict(s); v%d left as a divergent branch",
                       outcome->reconciled_with, outcome->conflicts.size(),
                       outcome->vid);
    }
    return out;
  }
  if (sub == "refresh") {
    ORPHEUS_ASSIGN_OR_RETURN(core::VersionId watermark,
                             remote_->Refresh(sid));
    return StrFormat("remote session %llu now at watermark v%d", sid,
                     watermark);
  }
  if (sub == "heartbeat") {
    ORPHEUS_ASSIGN_OR_RETURN(int64_t lease, remote_->Heartbeat(sid));
    return StrFormat("remote session %llu lease renewed (%lld ms)", sid,
                     static_cast<long long>(lease));
  }
  if (sub == "close") {
    ORPHEUS_RETURN_NOT_OK(remote_->CloseSession(sid));
    return StrFormat("remote session %llu closed", sid);
  }
  return Status::InvalidArgument(StrFormat(
      "unknown remote subcommand '%s' (want "
      "connect|open|checkout|commit|refresh|heartbeat|ls|close|disconnect)",
      sub.c_str()));
}

Result<std::string> CommandProcessor::Stats(const Args& args) {
  auto& registry = MetricsRegistry::Global();
  bool as_json = false;
  bool reset = false;
  for (const std::string& arg : args.positional) {
    std::string a = ToLower(arg);
    if (a == "json") {
      as_json = true;
    } else if (a == "reset") {
      reset = true;
    } else {
      return Status::InvalidArgument(
          StrFormat("usage: stats [json] [reset] [-j <file>]; got '%s'",
                    arg.c_str()));
    }
  }
  std::string out;
  if (const std::string* path = args.Flag("j")) {
    ORPHEUS_RETURN_NOT_OK(
        WriteFileAtomic(*path, registry.ToJson(), /*sync=*/false));
    out = StrFormat("metrics written to %s", path->c_str());
  } else {
    out = as_json ? registry.ToJson() : registry.ToText();
    if (!as_json && repo_ != nullptr) {
      // Surface repository health with the human-readable stats (the JSON
      // form stays pure metrics for the bench schema checker).
      out = StrFormat("repository %s: %s\n", repo_->dir().c_str(),
                      repo_->degraded()
                          ? "DEGRADED (WAL append failed; reopen to recover)"
                          : "healthy") +
            out;
    }
  }
  if (reset) registry.Reset();
  return out;
}

Result<std::string> CommandProcessor::Trace(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument(
        "usage: trace start|stop|status|dump <file>");
  }
  const std::string sub = ToLower(args.positional[0]);
  if (sub == "start") {
    if (!MetricsEnabled()) {
      return Status::NotSupported(
          "tracing requires metrics (built with ORPHEUS_METRICS=ON and not "
          "disabled via the ORPHEUS_METRICS environment variable)");
    }
    trace::SetCurrentThreadName("main");
    trace::Clear();
    trace::Start();
    return std::string("tracing started (fresh buffers)");
  }
  if (sub == "stop") {
    trace::Stop();
    return StrFormat("tracing stopped (%zu event(s) buffered)",
                     trace::NumBufferedEvents());
  }
  if (sub == "status") {
    return StrFormat("tracing %s, %zu event(s) buffered, ring capacity %zu",
                     trace::IsActive() ? "active" : "inactive",
                     trace::NumBufferedEvents(), trace::RingCapacity());
  }
  if (sub == "dump") {
    if (args.positional.size() < 2) {
      return Status::InvalidArgument("usage: trace dump <file>");
    }
    const std::string& path = args.positional[1];
    ORPHEUS_RETURN_NOT_OK(
        WriteFileAtomic(path, trace::ToChromeJson(), /*sync=*/false));
    return StrFormat("trace written to %s (%zu event(s)); load it in "
                     "chrome://tracing or https://ui.perfetto.dev",
                     path.c_str(), trace::NumBufferedEvents());
  }
  return Status::InvalidArgument(
      StrFormat("unknown trace subcommand '%s' (want start|stop|status|dump)",
                sub.c_str()));
}

Result<std::string> CommandProcessor::Profile(const std::string& command) {
  if (command.empty()) {
    return Status::InvalidArgument("usage: profile <command...>");
  }
  if (!MetricsEnabled()) {
    return Status::NotSupported(
        "profiling requires metrics (built with ORPHEUS_METRICS=ON and not "
        "disabled via the ORPHEUS_METRICS environment variable)");
  }
  // Fresh recording covering exactly the wrapped command; any recording in
  // progress is restarted afterwards with its buffers cleared.
  const bool was_active = trace::IsActive();
  trace::SetCurrentThreadName("main");
  trace::Clear();
  trace::Start();
  auto result = Execute(command);
  if (!was_active) trace::Stop();
  if (!result.ok()) return result.status();
  std::string out = *result;
  if (!out.empty() && out.back() != '\n') out += '\n';
  out += StrFormat("--- profile: %s ---\n", command.c_str());
  out += trace::ProfileReport();
  return out;
}

void CommandProcessor::WireCommitObserver(Cvd* cvd) {
  const std::string name = cvd->name();
  cvd->set_commit_observer([this, name](const core::CvdCommitRecord& record) {
    if (repo_ == nullptr) return Status::OK();
    return repo_->LogCommit(name, record);
  });
}

std::vector<const Cvd*> CommandProcessor::CvdPointers() const {
  std::vector<const Cvd*> out;
  out.reserve(cvds_.size());
  for (const auto& [name, cvd] : cvds_) {
    (void)name;
    out.push_back(cvd.get());
  }
  return out;
}

Result<std::string> CommandProcessor::OpenRepository(const Args& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("usage: open <dir>");
  }
  if (repo_ != nullptr) {
    return Status::InvalidArgument(StrFormat(
        "a repository is already open at %s (close it first)",
        repo_->dir().c_str()));
  }
  if (!managers_.empty()) {
    return Status::InvalidArgument(
        "session-managed CVDs exist; run `session close` on each before "
        "opening a repository");
  }
  auto repo = storage::Repository::Open(args.positional[0]);
  if (!repo.ok()) return repo.status();
  auto recovered = (*repo)->TakeCvds();
  for (const auto& cvd : recovered) {
    if (cvds_.count(cvd->name()) != 0) {
      return Status::AlreadyExists(StrFormat(
          "repository CVD %s collides with a CVD already in this session",
          cvd->name().c_str()));
    }
  }
  repo_ = repo.MoveValueOrDie();
  // CVDs created in the session before `open` become durable now: their
  // creation is logged as if they were initialized under the repository.
  for (const auto& [name, cvd] : cvds_) {
    (void)name;
    Status logged = repo_->LogCreate(*cvd);
    if (!logged.ok()) {
      repo_.reset();
      return logged;
    }
  }
  size_t num_recovered = recovered.size();
  for (auto& cvd : recovered) {
    std::string name = cvd->name();
    cvds_[std::move(name)] = std::move(cvd);
  }
  for (const auto& [name, cvd] : cvds_) {
    (void)name;
    WireCommitObserver(cvd.get());
  }
  const auto& stats = repo_->stats();
  return StrFormat(
      "opened repository %s (checkpoint %llu, %zu CVD(s) recovered, %llu WAL "
      "record(s) replayed%s, %s)",
      repo_->dir().c_str(), static_cast<unsigned long long>(stats.seq),
      num_recovered, static_cast<unsigned long long>(stats.wal_records),
      stats.recovered_torn_tail ? ", torn tail truncated" : "",
      repo_->degraded() ? "DEGRADED" : "healthy");
}

Result<std::string> CommandProcessor::CheckpointRepository() {
  if (repo_ == nullptr) {
    return Status::InvalidArgument("no repository open (use: open <dir>)");
  }
  if (!managers_.empty()) {
    // A checkpoint folds the passed-in CVDs into the new snapshot;
    // session-managed ones live inside their managers, so checkpointing
    // without them would silently drop their history.
    return Status::InvalidArgument(
        "session-managed CVDs exist; run `session close` on each before "
        "checkpointing");
  }
  ORPHEUS_RETURN_NOT_OK(repo_->Checkpoint(CvdPointers()));
  return StrFormat("checkpoint %llu written to %s",
                   static_cast<unsigned long long>(repo_->stats().seq),
                   repo_->dir().c_str());
}

Result<std::string> CommandProcessor::CloseRepository() {
  if (repo_ == nullptr) {
    return Status::InvalidArgument("no repository open (use: open <dir>)");
  }
  if (!managers_.empty()) {
    return Status::InvalidArgument(
        "session-managed CVDs exist; run `session close` on each before "
        "closing the repository");
  }
  ORPHEUS_RETURN_NOT_OK(repo_->Close(CvdPointers()));
  std::string dir = repo_->dir();
  size_t released = cvds_.size();
  // The repository now holds the authoritative state; release the CVDs so
  // the session cannot diverge from disk unlogged.
  cvds_.clear();
  repo_.reset();
  return StrFormat("closed repository %s (%zu CVD(s) released)", dir.c_str(),
                   released);
}

}  // namespace orpheus::cli
