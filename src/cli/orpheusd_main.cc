// orpheusd: the OrpheusDB network session server (DESIGN.md §14). Opens a
// durable repository, hands its CVDs to a SessionServer, and serves the
// Session API over the wire protocol until SIGINT/SIGTERM.
//
//   orpheusd serve <repo-dir> [--listen <unix:path|tcp:[host:]port>]
//                             [--lease-ms <n>] [--max-sessions <n>]
//
// Exit codes: 0 clean shutdown, 1 bad invocation, 2 open/serve failure.

#include <csignal>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/log.h"
#include "common/trace.h"
#include "net/server.h"
#include "storage/repository.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::cout << "usage: orpheusd serve <repo-dir> [--listen <address>] "
               "[--lease-ms <n>] [--max-sessions <n>]\n"
               "  address: unix:<path> or tcp:[127.0.0.1:]<port> "
               "(default tcp:0 = kernel-assigned)\n";
  return 1;
}

// --flag value parsing for the few numeric options; atoi is banned, so go
// through the strict parser.
bool ParseInt64Flag(const std::string& value, int64_t* out) {
  auto parsed = orpheus::ParseIntStrict(value);
  if (!parsed.has_value() || *parsed <= 0) return false;
  *out = *parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  orpheus::trace::SetCurrentThreadName("main");
  if (argc < 3 || std::string(argv[1]) != "serve") return Usage();

  const std::string dir = argv[2];
  orpheus::net::ServerOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return Usage();
    const std::string value = argv[++i];
    if (flag == "--listen") {
      options.listen = value;
    } else if (flag == "--lease-ms") {
      if (!ParseInt64Flag(value, &options.lease_ms)) return Usage();
    } else if (flag == "--max-sessions") {
      int64_t n = 0;
      if (!ParseInt64Flag(value, &n)) return Usage();
      options.max_sessions = static_cast<int>(n);
    } else {
      return Usage();
    }
  }

  auto repo = orpheus::storage::Repository::Open(dir);
  if (!repo.ok()) {
    std::cout << "error: " << repo.status().ToString() << "\n";
    return 2;
  }
  std::vector<std::unique_ptr<orpheus::core::Cvd>> cvds =
      (*repo)->TakeCvds();
  LOG_INFO("orpheusd opened repository",
           {{"dir", dir}, {"cvds", static_cast<long long>(cvds.size())}});

  auto server = orpheus::net::SessionServer::Start(repo->get(),
                                                   std::move(cvds), options);
  if (!server.ok()) {
    std::cout << "error: " << server.status().ToString() << "\n";
    return 2;
  }
  // The address line is the machine-readable contract: scripts (and the
  // two-terminal walkthrough in README.md) read it to find the endpoint.
  std::cout << "orpheusd listening on " << (*server)->address() << "\n"
            << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "orpheusd shutting down\n";
  (*server)->Stop();
  std::vector<std::unique_ptr<orpheus::core::Cvd>> released =
      (*server)->ReleaseCvds();
  std::vector<const orpheus::core::Cvd*> pointers;
  pointers.reserve(released.size());
  for (const auto& cvd : released) pointers.push_back(cvd.get());
  auto closed = (*repo)->Close(pointers);
  if (!closed.ok()) {
    std::cout << "error: " << closed.ToString() << "\n";
    return 2;
  }
  return 0;
}
