#ifndef ORPHEUS_CLI_COMMAND_PROCESSOR_H_
#define ORPHEUS_CLI_COMMAND_PROCESSOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/access_control.h"
#include "core/cvd.h"
#include "minidb/database.h"
#include "net/client.h"
#include "session/session.h"
#include "storage/repository.h"

namespace orpheus::cli {

/// The OrpheusDB command client (Sec. 3.3): parses git-style version
/// control commands and SQL, and executes them against an in-process
/// session. One processor is one user session holding the staging area
/// (materialized tables), the registered CVDs, and the access controller.
///
/// Supported commands:
///   create_user <name>              register a user
///   config <name>                   log in
///   whoami                          show the current user
///   init <cvd> -t <table> [-k a,b]  register a staging table as a CVD
///   init <cvd> -f <file.csv> [-s <schema.txt>] [-k a,b]
///   checkout <cvd> -v <v1[,v2...]> (-t <table> | -f <file.csv>)
///   commit -t <table> -m "<msg>"    commit a staging table
///   commit <cvd> -f <file.csv> [-s <schema.txt>] -m "<msg>"
///   diff <cvd> -v <v1>,<v2>         records in v1 but not v2
///   ls                              list CVDs
///   drop <cvd>                      remove a CVD
///   log <cvd>                       version metadata and graph
///   run "<sql>"                     versioned SQL (Sec. 3.3.2)
///   optimize <cvd> [-g <factor>]    run the partition optimizer (Ch. 5)
///   tables                          list staging tables
///   open <dir>                      open (or create) a durable repository:
///                                   recover its CVDs, then log every
///                                   init/commit/drop to its WAL
///   checkpoint                      fold the WAL into a fresh snapshot
///   close                           checkpoint, close the repository, and
///                                   release its CVDs from the session
///   fsck [cvd]                      check structural invariants; with no
///                                   argument checks every CVD and the
///                                   staging tables, reporting every
///                                   violation found
///   fsck -d <dir>                   offline check of an on-disk repository
///                                   (CURRENT, snapshot, WAL, recovered
///                                   CVD invariants) without opening it
///   stats [json] [reset] [-j file]  metrics snapshot (DESIGN.md §8):
///                                   plaintext by default, `json` for the
///                                   JSON form, `-j <file>` to write the
///                                   JSON to a file, `reset` to zero every
///                                   counter/histogram/span afterwards
///   trace start|stop|status         flight recorder (DESIGN.md §9):
///   trace dump <file>               record span begin/end events into the
///                                   per-thread ring buffers; dump writes
///                                   Chrome trace-event JSON loadable in
///                                   chrome://tracing or Perfetto
///   profile <command...>            run any single command under a fresh
///                                   trace and render its per-stage tree
///                                   (count, total, self, p95)
///
/// Multi-session commands (DESIGN.md §13) — `session open` hands a CVD to a
/// SessionManager; plain checkout/commit on it are refused until
/// `session close` hands it back:
///   session open <cvd>              enable concurrent sessions on a CVD
///   session new <cvd>               open a session (prints its id)
///   session checkout <cvd> <sid> -v <vids> -t <table>
///   session commit <cvd> <sid> -t <table> -m "<msg>"
///                                   optimistic commit: reconciles against a
///                                   concurrent tip, or reports the conflict
///                                   set
///   session refresh <cvd> <sid>     re-pin to the durable watermark
///   session ls                      list session-managed CVDs
///   session close <cvd>             release the CVD back to the session
///
/// Remote commands (DESIGN.md §14) — drive an orpheusd server over the
/// wire protocol (start one with `orpheusd serve <dir>`); calls retry
/// transient faults with backoff and deduplicate commits server-side:
///   remote connect <address>        connect (unix:<path> or tcp:<port>)
///   remote open <cvd>               open a remote session (prints sid)
///   remote checkout <sid> -v <vids> -t <table>
///                                   materialize into the local staging area
///   remote commit <sid> -t <table> -m "<msg>"
///                                   ship the staging table and commit it
///   remote refresh <sid>            re-pin the remote watermark
///   remote heartbeat <sid>          renew the session lease
///   remote ls                       list the server's CVDs
///   remote close <sid>              close the remote session
///   remote disconnect               drop the connection
class CommandProcessor {
 public:
  CommandProcessor() = default;

  /// Execute one command line; returns the text to display.
  Result<std::string> Execute(const std::string& line);

  /// Sticky process exit code for the CLI binary: 0 until a command
  /// reports something worse. `fsck` sets kExitCorrupt when it finds
  /// violations, on-disk corruption, or a degraded repository — distinct
  /// from kExitError so scripts can tell "bad invocation" from "bad data".
  static constexpr int kExitError = 1;
  static constexpr int kExitCorrupt = 2;
  int exit_code() const { return exit_code_; }
  void NoteError() { NoteExit(kExitError); }

  /// Accessors for tests and embedding.
  minidb::Database* staging() { return &staging_; }
  core::Cvd* cvd(const std::string& name) {
    auto it = cvds_.find(name);
    return it == cvds_.end() ? nullptr : it->second.get();
  }
  core::AccessController* access() { return &access_; }
  storage::Repository* repository() { return repo_.get(); }
  session::Session* session(const std::string& cvd, int sid) {
    auto it = sessions_.find(cvd);
    if (it == sessions_.end()) return nullptr;
    auto jt = it->second.find(sid);
    return jt == it->second.end() ? nullptr : jt->second.get();
  }

 private:
  struct Args {
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;  // -x value

    const std::string* Flag(const std::string& name) const {
      auto it = flags.find(name);
      return it == flags.end() ? nullptr : &it->second;
    }
  };

  static Result<Args> ParseArgs(const std::string& line);

  Result<std::string> Init(const Args& args);
  Result<std::string> Checkout(const Args& args);
  Result<std::string> Commit(const Args& args);
  Result<std::string> Diff(const Args& args);
  Result<std::string> Ls() const;
  Result<std::string> Drop(const Args& args);
  Result<std::string> Log(const Args& args);
  Result<std::string> RunSql(const Args& args);
  Result<std::string> Optimize(const Args& args);
  Result<std::string> Fsck(const Args& args);
  Result<std::string> SessionCmd(const Args& args);
  Result<std::string> RemoteCmd(const Args& args);
  Result<std::string> Stats(const Args& args);
  Result<std::string> Trace(const Args& args);
  Result<std::string> Profile(const std::string& command);
  Result<std::string> OpenRepository(const Args& args);
  Result<std::string> CheckpointRepository();
  Result<std::string> CloseRepository();

  Result<core::Cvd*> FindCvd(const std::string& name);
  /// The CVD that owns staging table `table`, or an error.
  Result<core::Cvd*> CvdOfStagingTable(const std::string& table);

  /// Route the CVD's future commits into the repository's WAL. Safe to
  /// call whether or not a repository is open: the observer checks at
  /// commit time, so it survives close/reopen.
  void WireCommitObserver(core::Cvd* cvd);
  std::vector<const core::Cvd*> CvdPointers() const;

  /// The session manager owning `cvd`, or an error naming the command to
  /// run first.
  Result<session::SessionManager*> FindManager(const std::string& cvd);
  Result<session::Session*> FindSession(const std::string& cvd, int sid);

  void NoteExit(int code) {
    if (code > exit_code_) exit_code_ = code;
  }

  minidb::Database staging_;
  std::map<std::string, std::unique_ptr<core::Cvd>> cvds_;
  std::unique_ptr<storage::Repository> repo_;
  core::AccessController access_;
  // CVDs handed to the concurrent session layer (`session open`), plus the
  // interactive sessions opened on each, keyed by session id.
  std::map<std::string, std::unique_ptr<session::SessionManager>> managers_;
  std::map<std::string, std::map<int, std::unique_ptr<session::Session>>>
      sessions_;
  // Remote-mode client (`remote connect`); null until connected.
  std::unique_ptr<net::Client> remote_;
  int exit_code_ = 0;
  // CSV checkout provenance: file path -> (cvd name, parent versions).
  struct FileInfo {
    std::string cvd;
    std::vector<core::VersionId> parents;
  };
  std::map<std::string, FileInfo> files_;
};

}  // namespace orpheus::cli

#endif  // ORPHEUS_CLI_COMMAND_PROCESSOR_H_
