#include "net/client.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace orpheus::net {

namespace {

/// Process-unique idempotency identity: pid + a process-global counter
/// (+ wall-clock ns so pid reuse across reboots stays unique). NOT a
/// cryptographic id — orpheusd is loopback-only.
std::string DeriveClientUuid() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const long long now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  return StrFormat("c%d-%llu-%llx", static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(n),
                   static_cast<unsigned long long>(now_ns));
}

uint64_t HashSeed(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

}  // namespace

Client::Client(std::string address, ClientOptions options)
    : address_(std::move(address)),
      options_(std::move(options)),
      rng_(options_.jitter_seed != 0 ? options_.jitter_seed
                                     : HashSeed(options_.client_uuid)) {}

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& address, const ClientOptions& options) {
  ClientOptions opts = options;
  if (opts.client_uuid.empty()) opts.client_uuid = DeriveClientUuid();
  std::unique_ptr<Client> client(new Client(address, std::move(opts)));
  // Eager handshake so a wrong address or protocol mismatch fails at
  // Connect, not at the first call. Transient faults get the same
  // backoff-retry treatment as calls; definitive refusals (version
  // mismatch -> NotSupported) fail immediately.
  const Deadline deadline =
      Deadline::AfterMillis(client->options_.call_deadline_ms);
  Status s = client->EnsureConnected(deadline);
  for (int attempt = 1;
       !s.ok() && s.IsUnavailable() && attempt < client->options_.max_attempts;
       ++attempt) {
    client->BackoffBeforeRetry(attempt, deadline);
    if (deadline.expired()) break;
    s = client->EnsureConnected(deadline);
  }
  ORPHEUS_RETURN_NOT_OK(s);
  return client;
}

Status Client::EnsureConnected(const Deadline& deadline) {
  if (connected_) return Status::OK();
  ORPHEUS_ASSIGN_OR_RETURN(sock_, Socket::Connect(address_, deadline));
  ++stats_.reconnects;
  Hello hello;
  hello.magic = kNetMagic;
  hello.protocol_version = kProtocolVersion;
  hello.client_uuid = options_.client_uuid;
  ORPHEUS_RETURN_NOT_OK(SendMessage(&sock_, MsgType::kHello,
                                    EncodeHello(hello), deadline));
  MsgType type;
  std::string payload;
  ORPHEUS_RETURN_NOT_OK(RecvMessage(&sock_, &type, &payload, deadline));
  if (type != MsgType::kHelloAck) {
    DropConnection();
    return Status::Unavailable("handshake: peer did not send a HelloAck");
  }
  Result<HelloAck> ack = DecodeHelloAck(payload);
  if (!ack.ok()) {
    DropConnection();
    return Status::Unavailable(StrFormat(
        "handshake: corrupt HelloAck: %s",
        ack.status().message().c_str()));
  }
  if (ack.ValueOrDie().code != 0) {
    // Refused (version mismatch, bad magic): a definitive, non-transport
    // verdict — reconstruct it so the caller sees e.g. NotSupported, which
    // the retry loop never retries.
    DropConnection();
    Response carrier;
    carrier.code = ack.ValueOrDie().code;
    carrier.message = ack.ValueOrDie().message;
    return carrier.ToStatus();
  }
  if (ack.ValueOrDie().protocol_version != kProtocolVersion) {
    DropConnection();
    return Status::NotSupported(StrFormat(
        "server speaks protocol v%u, this client v%u",
        ack.ValueOrDie().protocol_version, kProtocolVersion));
  }
  server_degraded_ = ack.ValueOrDie().degraded;
  connected_ = true;
  return Status::OK();
}

void Client::DropConnection() {
  sock_.Close();
  connected_ = false;
}

void Client::BackoffBeforeRetry(int attempt, const Deadline& deadline) {
  const int shift = std::min(attempt - 1, 16);
  int64_t backoff_ms =
      std::min(options_.backoff_base_ms << shift, options_.backoff_cap_ms);
  // +/-50% seeded jitter: decorrelates a fleet of clients retrying after
  // the same fault, deterministically per client_uuid.
  backoff_ms = static_cast<int64_t>(
      static_cast<double>(backoff_ms) * (0.5 + rng_.NextDouble()));
  backoff_ms = std::min(backoff_ms, deadline.remaining_millis());
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

uint64_t Client::AckFloor() const {
  uint64_t floor = acked_seq_;
  for (const auto& entry : unresolved_commits_) {
    floor = std::min(floor, entry.second - 1);
  }
  return floor;
}

Result<Response> Client::Call(Request req) {
  ++stats_.calls;
  if (req.request_seq == 0) req.request_seq = next_seq_++;
  req.acked_seq = AckFloor();
  const Deadline deadline = Deadline::AfterMillis(options_.call_deadline_ms);
  Status last = Status::Unavailable("no attempt made");

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      ORPHEUS_COUNTER_ADD("net.client.retries", 1);
      BackoffBeforeRetry(attempt, deadline);
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(StrFormat(
          "%s: call deadline expired after %d attempt(s); last error: %s",
          OpName(req.op), attempt, last.ToString().c_str()));
    }

    Status s = EnsureConnected(deadline);
    bool server_retryable = false;
    if (s.ok()) {
      req.deadline_ms = deadline.remaining_millis();
      s = SendMessage(&sock_, MsgType::kRequest, EncodeRequest(req),
                      deadline);
      if (s.ok()) {
        MsgType type;
        std::string payload;
        s = RecvMessage(&sock_, &type, &payload, deadline);
        if (s.ok() && type != MsgType::kResponse) {
          s = Status::Unavailable("unexpected frame where a response was "
                                  "expected — stream desynced");
        }
        if (s.ok()) {
          Result<Response> decoded = DecodeResponse(payload);
          if (!decoded.ok()) {
            s = Status::Unavailable(StrFormat(
                "corrupt response: %s",
                decoded.status().message().c_str()));
          } else if (decoded.ValueOrDie().request_seq != req.request_seq) {
            s = Status::Unavailable(StrFormat(
                "response for request %llu while waiting for %llu — "
                "stream desynced",
                static_cast<unsigned long long>(
                    decoded.ValueOrDie().request_seq),
                static_cast<unsigned long long>(req.request_seq)));
          } else {
            Response resp = decoded.MoveValueOrDie();
            // The server's answer for this seq is in hand: let it prune.
            acked_seq_ = std::max(acked_seq_, req.request_seq);
            if (resp.ok()) return resp;
            s = resp.ToStatus();
            server_retryable = resp.retryable;
            if (!server_retryable) return s;  // definitive verdict
          }
        }
      }
    }

    if (server_retryable) {
      // Server said "try again" (busy session, durability timeout): the
      // connection itself is fine — retry over it after backoff.
      last = s;
      continue;
    }
    // Transport fault or local failure: the stream state is unknown, so
    // retry on a fresh connection.
    DropConnection();
    if (s.IsDeadlineExceeded()) {
      return Status::DeadlineExceeded(StrFormat(
          "%s: deadline expired mid-call; outcome unknown — retry with the "
          "same client to resolve (%s)",
          OpName(req.op), s.ToString().c_str()));
    }
    if (!s.IsUnavailable()) return s;  // non-transient local error
    last = s;
  }
  return Status(last.code(),
                StrFormat("%s: %d attempts exhausted; last error: %s",
                          OpName(req.op), options_.max_attempts,
                          last.ToString().c_str()));
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Result<Client::OpenResult> Client::Open(const std::string& cvd) {
  Request req;
  req.op = Op::kOpen;
  req.cvd = cvd;
  ORPHEUS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  OpenResult out;
  out.sid = resp.sid;
  out.watermark = resp.watermark;
  return out;
}

Result<minidb::Table> Client::Checkout(
    uint64_t sid, const std::vector<core::VersionId>& vids,
    const std::string& table_name) {
  Request req;
  req.op = Op::kCheckout;
  req.sid = sid;
  req.vids = vids;
  req.table_name = table_name;
  ORPHEUS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.table == nullptr) {
    return Status::Internal("checkout response carries no table");
  }
  return std::move(*resp.table);
}

Result<session::CommitOutcome> Client::Commit(uint64_t sid,
                                              const minidb::Table& table,
                                              const std::string& message,
                                              const std::string& author) {
  Request req;
  req.op = Op::kCommit;
  req.sid = sid;
  req.table_name = table.name();
  req.message = message;
  req.author = author;
  req.table = std::make_unique<minidb::Table>(table.Clone(table.name()));
  // A commit whose previous call died with the outcome unknown is retried
  // under its ORIGINAL stamp: the server either replays the recorded
  // verdict or resumes the parked durability wait — never commits twice.
  const auto key = std::make_pair(sid, table.name());
  auto unresolved = unresolved_commits_.find(key);
  const uint64_t seq = unresolved != unresolved_commits_.end()
                           ? unresolved->second
                           : next_seq_++;
  req.request_seq = seq;
  Result<Response> resp = Call(std::move(req));
  // DeadlineExceeded and attempts-exhausted Unavailable both mean the
  // outcome is UNKNOWN (the commit may have executed server-side): keep
  // the stamp pinned. Anything else is a definitive verdict.
  if (resp.ok() || (!resp.status().IsDeadlineExceeded() &&
                    !resp.status().IsUnavailable())) {
    unresolved_commits_.erase(key);
  } else {
    unresolved_commits_[key] = seq;
  }
  if (!resp.ok()) return resp.status();
  return std::move(resp.ValueOrDie().outcome);
}

Result<core::VersionId> Client::Refresh(uint64_t sid) {
  Request req;
  req.op = Op::kRefresh;
  req.sid = sid;
  ORPHEUS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  return resp.watermark;
}

Result<std::vector<CvdSummary>> Client::Ls() {
  Request req;
  req.op = Op::kLs;
  ORPHEUS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  return std::move(resp.cvds);
}

Status Client::CloseSession(uint64_t sid) {
  Request req;
  req.op = Op::kClose;
  req.sid = sid;
  return Call(std::move(req)).status();
}

Result<int64_t> Client::Heartbeat(uint64_t sid) {
  Request req;
  req.op = Op::kHeartbeat;
  req.sid = sid;
  ORPHEUS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  return resp.lease_ms;
}

}  // namespace orpheus::net
