#include "net/wire.h"

#include <utility>

#include "common/string_util.h"
#include "minidb/schema.h"

namespace orpheus::net {

using storage::Decoder;
using storage::Encoder;

namespace {

/// Statuses reconstructed from the wire reuse the StatusCode numbering; a
/// peer sending an out-of-range byte gets mapped to Internal.
Status MakeStatus(uint8_t code, const std::string& message) {
  if (code == 0) return Status::OK();
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kConstraintViolation:
      return Status::ConstraintViolation(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kNotSupported:
      return Status::NotSupported(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    default:
      return Status::Internal(message);
  }
}

void EncodeConflict(const session::MergeConflict& c, Encoder* enc) {
  enc->PutString(c.key);
  enc->PutString(c.attribute);
  enc->PutString(c.base);
  enc->PutString(c.ours);
  enc->PutString(c.theirs);
}

Result<session::MergeConflict> DecodeConflict(Decoder* dec) {
  session::MergeConflict c;
  ORPHEUS_ASSIGN_OR_RETURN(c.key, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(c.attribute, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(c.base, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(c.ours, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(c.theirs, dec->GetString());
  return c;
}

void EncodeOutcome(const session::CommitOutcome& out, Encoder* enc) {
  enc->PutI32(out.vid);
  enc->PutI32(out.merged_vid);
  enc->PutI32(out.reconciled_with);
  enc->PutU8(out.reconciled ? 1 : 0);
  enc->PutU32(static_cast<uint32_t>(out.conflicts.size()));
  for (const session::MergeConflict& c : out.conflicts) {
    EncodeConflict(c, enc);
  }
}

Result<session::CommitOutcome> DecodeOutcome(Decoder* dec) {
  session::CommitOutcome out;
  ORPHEUS_ASSIGN_OR_RETURN(out.vid, dec->GetI32());
  ORPHEUS_ASSIGN_OR_RETURN(out.merged_vid, dec->GetI32());
  ORPHEUS_ASSIGN_OR_RETURN(out.reconciled_with, dec->GetI32());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t reconciled, dec->GetU8());
  out.reconciled = reconciled != 0;
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  out.conflicts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(session::MergeConflict c, DecodeConflict(dec));
    out.conflicts.push_back(std::move(c));
  }
  return out;
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kCheckout: return "checkout";
    case Op::kCommit: return "commit";
    case Op::kRefresh: return "refresh";
    case Op::kLs: return "ls";
    case Op::kClose: return "close";
    case Op::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

Status Response::ToStatus() const {
  return MakeStatus(code, message);
}

void Response::SetStatus(const Status& s, bool transient) {
  code = static_cast<uint8_t>(s.code());
  message = std::string(s.message());
  retryable = transient;
}

// ---------------------------------------------------------------------------
// Hello / HelloAck
// ---------------------------------------------------------------------------

std::string EncodeHello(const Hello& hello) {
  Encoder enc;
  enc.PutString(hello.magic);
  enc.PutU32(hello.protocol_version);
  enc.PutString(hello.client_uuid);
  return enc.Take();
}

Result<Hello> DecodeHello(std::string_view payload) {
  Decoder dec(payload);
  Hello hello;
  ORPHEUS_ASSIGN_OR_RETURN(hello.magic, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(hello.protocol_version, dec.GetU32());
  ORPHEUS_ASSIGN_OR_RETURN(hello.client_uuid, dec.GetString());
  return hello;
}

std::string EncodeHelloAck(const HelloAck& ack) {
  Encoder enc;
  enc.PutU32(ack.protocol_version);
  enc.PutString(ack.server_id);
  enc.PutU8(ack.degraded ? 1 : 0);
  enc.PutU8(ack.code);
  enc.PutString(ack.message);
  return enc.Take();
}

Result<HelloAck> DecodeHelloAck(std::string_view payload) {
  Decoder dec(payload);
  HelloAck ack;
  ORPHEUS_ASSIGN_OR_RETURN(ack.protocol_version, dec.GetU32());
  ORPHEUS_ASSIGN_OR_RETURN(ack.server_id, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t degraded, dec.GetU8());
  ack.degraded = degraded != 0;
  ORPHEUS_ASSIGN_OR_RETURN(ack.code, dec.GetU8());
  ORPHEUS_ASSIGN_OR_RETURN(ack.message, dec.GetString());
  return ack;
}

// ---------------------------------------------------------------------------
// Table codec
// ---------------------------------------------------------------------------

void EncodeTable(const minidb::Table& table, storage::Encoder* enc) {
  enc->PutString(table.name());
  const minidb::Schema& schema = table.schema();
  enc->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const minidb::ColumnDef& col : schema.columns()) {
    enc->PutString(col.name);
    enc->PutU8(static_cast<uint8_t>(col.type));
  }
  enc->PutU32(static_cast<uint32_t>(table.num_rows()));
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    const minidb::Row row = table.GetRow(r);
    for (const minidb::Value& value : row) {
      storage::EncodeValue(value, enc);
    }
  }
}

Result<minidb::Table> DecodeTable(storage::Decoder* dec) {
  ORPHEUS_ASSIGN_OR_RETURN(std::string name, dec->GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
  std::vector<minidb::ColumnDef> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    minidb::ColumnDef col;
    ORPHEUS_ASSIGN_OR_RETURN(col.name, dec->GetString());
    ORPHEUS_ASSIGN_OR_RETURN(uint8_t type, dec->GetU8());
    if (type > static_cast<uint8_t>(minidb::ValueType::kIntArray)) {
      return Status::DataLoss(
          StrFormat("bad column type %u on the wire", type));
    }
    col.type = static_cast<minidb::ValueType>(type);
    cols.push_back(std::move(col));
  }
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t nrows, dec->GetU32());
  minidb::Table table(name, minidb::Schema(std::move(cols)));
  minidb::Row row(table.num_columns());
  for (uint32_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      ORPHEUS_ASSIGN_OR_RETURN(row[c], storage::DecodeValue(dec));
    }
    table.AppendRowUnchecked(row);
  }
  return table;
}

// ---------------------------------------------------------------------------
// Request / Response
// ---------------------------------------------------------------------------

std::string EncodeRequest(const Request& req) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(req.op));
  enc.PutU64(req.request_seq);
  enc.PutU64(req.acked_seq);
  enc.PutU64(req.sid);
  enc.PutI64(req.deadline_ms);
  enc.PutString(req.cvd);
  enc.PutString(req.table_name);
  enc.PutU32(static_cast<uint32_t>(req.vids.size()));
  for (core::VersionId vid : req.vids) enc.PutI32(vid);
  enc.PutString(req.message);
  enc.PutString(req.author);
  enc.PutU8(req.table != nullptr ? 1 : 0);
  if (req.table != nullptr) EncodeTable(*req.table, &enc);
  return enc.Take();
}

Result<Request> DecodeRequest(std::string_view payload) {
  Decoder dec(payload);
  Request req;
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t op, dec.GetU8());
  if (op < static_cast<uint8_t>(Op::kOpen) ||
      op > static_cast<uint8_t>(Op::kHeartbeat)) {
    return Status::DataLoss(StrFormat("bad request op %u", op));
  }
  req.op = static_cast<Op>(op);
  ORPHEUS_ASSIGN_OR_RETURN(req.request_seq, dec.GetU64());
  ORPHEUS_ASSIGN_OR_RETURN(req.acked_seq, dec.GetU64());
  ORPHEUS_ASSIGN_OR_RETURN(req.sid, dec.GetU64());
  ORPHEUS_ASSIGN_OR_RETURN(req.deadline_ms, dec.GetI64());
  ORPHEUS_ASSIGN_OR_RETURN(req.cvd, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(req.table_name, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t nvids, dec.GetU32());
  req.vids.reserve(nvids);
  for (uint32_t i = 0; i < nvids; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(core::VersionId vid, dec.GetI32());
    req.vids.push_back(vid);
  }
  ORPHEUS_ASSIGN_OR_RETURN(req.message, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(req.author, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t has_table, dec.GetU8());
  if (has_table != 0) {
    ORPHEUS_ASSIGN_OR_RETURN(minidb::Table table, DecodeTable(&dec));
    req.table = std::make_unique<minidb::Table>(std::move(table));
  }
  return req;
}

std::string EncodeResponse(const Response& resp) {
  Encoder enc;
  enc.PutU64(resp.request_seq);
  enc.PutU8(resp.code);
  enc.PutU8(resp.retryable ? 1 : 0);
  enc.PutString(resp.message);
  enc.PutU8(static_cast<uint8_t>(resp.op));
  if (!resp.ok()) return enc.Take();
  switch (resp.op) {
    case Op::kOpen:
      enc.PutU64(resp.sid);
      enc.PutI32(resp.watermark);
      break;
    case Op::kCheckout:
      EncodeTable(*resp.table, &enc);
      break;
    case Op::kCommit:
      EncodeOutcome(resp.outcome, &enc);
      break;
    case Op::kRefresh:
      enc.PutI32(resp.watermark);
      break;
    case Op::kLs:
      enc.PutU32(static_cast<uint32_t>(resp.cvds.size()));
      for (const CvdSummary& c : resp.cvds) {
        enc.PutString(c.name);
        enc.PutI32(c.num_versions);
        enc.PutI32(c.watermark);
        enc.PutI32(c.open_sessions);
        enc.PutU8(c.failed ? 1 : 0);
      }
      break;
    case Op::kClose:
      break;
    case Op::kHeartbeat:
      enc.PutI64(resp.lease_ms);
      break;
  }
  return enc.Take();
}

Result<Response> DecodeResponse(std::string_view payload) {
  Decoder dec(payload);
  Response resp;
  ORPHEUS_ASSIGN_OR_RETURN(resp.request_seq, dec.GetU64());
  ORPHEUS_ASSIGN_OR_RETURN(resp.code, dec.GetU8());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t retryable, dec.GetU8());
  resp.retryable = retryable != 0;
  ORPHEUS_ASSIGN_OR_RETURN(resp.message, dec.GetString());
  ORPHEUS_ASSIGN_OR_RETURN(uint8_t op, dec.GetU8());
  if (op < static_cast<uint8_t>(Op::kOpen) ||
      op > static_cast<uint8_t>(Op::kHeartbeat)) {
    return Status::DataLoss(StrFormat("bad response op %u", op));
  }
  resp.op = static_cast<Op>(op);
  if (!resp.ok()) return resp;
  switch (resp.op) {
    case Op::kOpen: {
      ORPHEUS_ASSIGN_OR_RETURN(resp.sid, dec.GetU64());
      ORPHEUS_ASSIGN_OR_RETURN(resp.watermark, dec.GetI32());
      break;
    }
    case Op::kCheckout: {
      ORPHEUS_ASSIGN_OR_RETURN(minidb::Table table, DecodeTable(&dec));
      resp.table = std::make_unique<minidb::Table>(std::move(table));
      break;
    }
    case Op::kCommit: {
      ORPHEUS_ASSIGN_OR_RETURN(resp.outcome, DecodeOutcome(&dec));
      break;
    }
    case Op::kRefresh: {
      ORPHEUS_ASSIGN_OR_RETURN(resp.watermark, dec.GetI32());
      break;
    }
    case Op::kLs: {
      ORPHEUS_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
      resp.cvds.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        CvdSummary c;
        ORPHEUS_ASSIGN_OR_RETURN(c.name, dec.GetString());
        ORPHEUS_ASSIGN_OR_RETURN(c.num_versions, dec.GetI32());
        ORPHEUS_ASSIGN_OR_RETURN(c.watermark, dec.GetI32());
        ORPHEUS_ASSIGN_OR_RETURN(c.open_sessions, dec.GetI32());
        ORPHEUS_ASSIGN_OR_RETURN(uint8_t failed, dec.GetU8());
        c.failed = failed != 0;
        resp.cvds.push_back(std::move(c));
      }
      break;
    }
    case Op::kClose:
      break;
    case Op::kHeartbeat: {
      ORPHEUS_ASSIGN_OR_RETURN(resp.lease_ms, dec.GetI64());
      break;
    }
  }
  return resp;
}

// ---------------------------------------------------------------------------
// Framed I/O
// ---------------------------------------------------------------------------

Status SendMessage(Socket* sock, MsgType type, std::string_view payload,
                   const Deadline& deadline) {
  std::string frame;
  storage::AppendFrame(&frame,
                       static_cast<storage::FrameType>(
                           static_cast<uint8_t>(type)),
                       payload);
  return sock->SendAll(frame, deadline);
}

Status RecvMessage(Socket* sock, MsgType* type, std::string* payload,
                   const Deadline& idle_deadline) {
  // The 8-byte length+crc prefix, read under the idle deadline. A timeout
  // with ZERO bytes consumed leaves the stream frame-aligned (retryable);
  // any partial read means we are desynced mid-frame.
  std::string buf(storage::kFrameHeaderSize - 1, '\0');
  size_t received = 0;
  Status s = sock->RecvAll(buf.data(), buf.size(), idle_deadline, &received);
  if (!s.ok()) {
    if (s.IsDeadlineExceeded() && received > 0) {
      return Status::Unavailable(StrFormat(
          "frame torn: %zu of %zu header bytes before the deadline",
          received, buf.size()));
    }
    return s;
  }
  storage::Decoder header(buf);
  ORPHEUS_ASSIGN_OR_RETURN(uint32_t payload_size, header.GetU32());
  if (payload_size > kMaxFramePayload) {
    return Status::Unavailable(StrFormat(
        "frame claims %u payload bytes (cap %u) — corrupt stream",
        payload_size, kMaxFramePayload));
  }
  // Once a frame has started, finish it under a generous fixed bound so a
  // stalled peer cannot park us forever, while a briefly-slow large frame
  // still completes.
  const Deadline body_deadline = Deadline::AfterMillis(10000);
  std::string rest(1 + static_cast<size_t>(payload_size), '\0');
  s = sock->RecvAll(rest.data(), rest.size(), body_deadline, &received);
  if (!s.ok()) {
    if (s.IsDeadlineExceeded()) {
      return Status::Unavailable(StrFormat(
          "frame torn: %zu of %zu body bytes before the deadline", received,
          rest.size()));
    }
    return s;
  }
  // Reassemble and parse with the storage frame reader — the same
  // torn/corrupt classification the WAL uses. A "torn tail" here cannot
  // happen (we read the exact length), so any checksum failure surfaces
  // as corruption, which on a stream means a retryable transport fault.
  buf.append(rest);
  size_t pos = 0;
  storage::Frame frame;
  bool torn = false;
  s = storage::ReadFrame(buf, 0, &pos, &frame, &torn);
  if (!s.ok() || torn) {
    return Status::Unavailable(StrFormat(
        "corrupt frame on the wire: %s",
        s.ok() ? "torn" : std::string(s.message()).c_str()));
  }
  const uint8_t raw_type = static_cast<uint8_t>(frame.type);
  if (raw_type < static_cast<uint8_t>(MsgType::kHello) ||
      raw_type > static_cast<uint8_t>(MsgType::kResponse)) {
    return Status::Unavailable(StrFormat(
        "unexpected frame type %u on the wire (not a net message)",
        raw_type));
  }
  *type = static_cast<MsgType>(raw_type);
  payload->assign(frame.payload);
  return Status::OK();
}

}  // namespace orpheus::net
