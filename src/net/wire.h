#ifndef ORPHEUS_NET_WIRE_H_
#define ORPHEUS_NET_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/types.h"
#include "minidb/table.h"
#include "net/socket.h"
#include "session/session.h"
#include "storage/format.h"

namespace orpheus::net {

/// The orpheusd wire protocol (DESIGN.md §14). Every message is ONE frame
/// in the storage/format.h layout —
///   u32 payload_size | u32 crc32c(type byte + payload) | u8 type | payload
/// — written and parsed by the same AppendFrame/ReadFrame primitives the
/// WAL uses, so a torn or corrupted frame is detected exactly like a torn
/// WAL tail. Net message types live in a disjoint range (>= 32) from the
/// storage FrameTypes (1..5): feeding a WAL at the server, or a snapshot
/// at a client, fails loudly on the first frame.
///
/// Connection lifecycle:
///   client: Hello ->  server: HelloAck (version check; error closes)
///   client: Request -> server: Response   (strict one-in-one-out)
/// Requests carry an idempotency stamp (client_uuid from the Hello, plus a
/// per-client request_seq) so the server can deduplicate retried commits,
/// and an acked_seq high-water mark that lets the server prune its dedup
/// window (DESIGN.md §14.4).

inline constexpr char kNetMagic[9] = "ORPHNET1";  // 8 bytes + NUL
inline constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload; a stream claiming more is treated
/// as corrupt rather than trusted with an allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Net message types. Cast through storage::FrameType on the wire (the
/// frame codec checksums the raw byte and does not interpret it).
enum class MsgType : uint8_t {
  kHello = 32,
  kHelloAck = 33,
  kRequest = 34,
  kResponse = 35,
};

enum class Op : uint8_t {
  kOpen = 1,       // open a session on a CVD -> sid + watermark
  kCheckout = 2,   // materialize versions into a named table -> the table
  kCommit = 3,     // ship a staged table, commit it -> CommitOutcome
  kRefresh = 4,    // re-pin the session watermark -> new watermark
  kLs = 5,         // list served CVDs -> summaries
  kClose = 6,      // close a session (releases its pinned state)
  kHeartbeat = 7,  // renew the session lease -> remaining lease ms
};

const char* OpName(Op op);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct Hello {
  std::string magic;  // must equal kNetMagic
  uint32_t protocol_version = kProtocolVersion;
  std::string client_uuid;  // idempotency identity, stable across reconnects
};

struct HelloAck {
  uint32_t protocol_version = kProtocolVersion;
  std::string server_id;
  bool degraded = false;  // repository refuses commits (read-only)
  // Non-OK: the server refuses the connection (bad magic / version
  // mismatch) and closes after sending this.
  uint8_t code = 0;  // StatusCode as u8; 0 = OK
  std::string message;
};

struct Request {
  Op op = Op::kOpen;
  uint64_t request_seq = 0;  // per-client, strictly increasing
  uint64_t acked_seq = 0;    // client has the response for every seq <= this
  uint64_t sid = 0;          // session id (0 for kOpen / kLs)
  int64_t deadline_ms = 0;   // client's remaining budget (0 = server default)
  std::string cvd;           // kOpen
  std::string table_name;    // kCheckout / kCommit
  std::vector<core::VersionId> vids;  // kCheckout
  std::string message;                // kCommit
  std::string author;                 // kCommit
  // kCommit: the staged table (unique_ptr: Table is move-only and Request
  // wants to stay movable through std::function-free code paths).
  std::unique_ptr<minidb::Table> table;
};

/// One served CVD, for kLs.
struct CvdSummary {
  std::string name;
  int num_versions = 0;
  core::VersionId watermark = core::kInvalidVersion;
  int open_sessions = 0;
  bool failed = false;  // manager poisoned (commits refused)
};

struct Response {
  uint64_t request_seq = 0;  // echo of the request's stamp
  uint8_t code = 0;          // StatusCode as u8; 0 = OK
  bool retryable = false;    // transient per the SERVER (client obeys this)
  std::string message;
  // Payloads (valid only on OK, shaped by `op`):
  Op op = Op::kOpen;
  uint64_t sid = 0;                          // kOpen
  core::VersionId watermark = 0;             // kOpen / kRefresh
  std::unique_ptr<minidb::Table> table;      // kCheckout
  session::CommitOutcome outcome;            // kCommit
  std::vector<CvdSummary> cvds;              // kLs
  int64_t lease_ms = 0;                      // kHeartbeat

  bool ok() const { return code == 0; }
  /// Rebuild a Status from code+message (OK when code == 0).
  Status ToStatus() const;
  /// Fill code/message from a Status, marking it retryable or definitive.
  void SetStatus(const Status& s, bool transient);
};

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

std::string EncodeHello(const Hello& hello);
Result<Hello> DecodeHello(std::string_view payload);

std::string EncodeHelloAck(const HelloAck& ack);
Result<HelloAck> DecodeHelloAck(std::string_view payload);

std::string EncodeRequest(const Request& req);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& resp);
Result<Response> DecodeResponse(std::string_view payload);

/// Table codec: schema (column name + ValueType) then row-major values via
/// the storage EncodeValue/DecodeValue primitives.
void EncodeTable(const minidb::Table& table, storage::Encoder* enc);
Result<minidb::Table> DecodeTable(storage::Decoder* dec);

// ---------------------------------------------------------------------------
// Framed I/O over a Socket
// ---------------------------------------------------------------------------

/// Send one message as one frame. Unavailable on connection failure,
/// DeadlineExceeded if the socket blocks past the deadline.
Status SendMessage(Socket* sock, MsgType type, std::string_view payload,
                   const Deadline& deadline);

/// Receive one message. `idle_deadline` bounds waiting for the FIRST byte
/// (an expired idle wait returns DeadlineExceeded with the stream intact —
/// safe to call again); once a frame has started, a fixed completion bound
/// applies and a tear mid-frame is Unavailable (stream desynced — the
/// caller must drop the connection). A checksum mismatch is Unavailable
/// too: on a stream it means bytes were mangled in transit, which retry
/// over a fresh connection may fix.
Status RecvMessage(Socket* sock, MsgType* type, std::string* payload,
                   const Deadline& idle_deadline);

}  // namespace orpheus::net

#endif  // ORPHEUS_NET_WIRE_H_
