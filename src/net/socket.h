#ifndef ORPHEUS_NET_SOCKET_H_
#define ORPHEUS_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"

namespace orpheus::net {

/// Deadline-aware RAII socket (DESIGN.md §14.2). All I/O is non-blocking
/// under the hood and waits via poll(2) bounded by the caller's Deadline,
/// so no network call can hang past its budget. Error taxonomy:
///   - Unavailable: the connection failed (reset, EOF, refused) — the
///     transport is dead; a RETRY over a fresh connection may succeed.
///   - DeadlineExceeded: the budget ran out — the transport may be fine,
///     but the caller's time is up.
///
/// Fault injection: every path consults role-scoped `net.*` failpoints
/// (net.client.connect, net.server.accept, net.{client,server}.send,
/// net.{client,server}.send.partial, net.{client,server}.recv). An armed
/// kError fires as Unavailable — indistinguishable from a real network
/// fault, which is the point; kAbort crashes for the crash matrix; delay
/// specs (`:<n>ms`) stall the path without failing it.
class Socket {
 public:
  /// Which end of the connection this is; selects the failpoint namespace.
  enum class Peer { kClient, kServer };

  Socket() = default;
  Socket(int fd, Peer peer) : fd_(fd), peer_(peer) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  Peer peer() const { return peer_; }

  void Close();

  /// Shut down both directions without closing the fd — wakes a thread
  /// blocked in poll() on this socket (its next recv sees EOF). Safe to
  /// call from another thread while the owner is mid-I/O; the owner still
  /// Closes.
  void ShutdownBoth();

  /// Write all of `data`, waiting (bounded by `deadline`) whenever the
  /// kernel buffer is full.
  Status SendAll(std::string_view data, const Deadline& deadline);

  /// Read exactly `n` bytes into `buf`. EOF or reset mid-read is
  /// Unavailable. `*received` (optional) reports bytes consumed so far on
  /// failure — 0 means the stream is still frame-aligned.
  Status RecvAll(char* buf, size_t n, const Deadline& deadline,
                 size_t* received = nullptr);

  /// Connect to `address` — "unix:<path>" or "tcp:<port>" /
  /// "tcp:<host>:<port>" (loopback only) — within the deadline.
  static Result<Socket> Connect(const std::string& address,
                                const Deadline& deadline);

 private:
  int fd_ = -1;
  Peer peer_ = Peer::kClient;
};

/// Listening endpoint. "unix:<path>" binds a Unix-domain socket (the path
/// is unlinked on Close); "tcp:<port>" binds 127.0.0.1 only — orpheusd has
/// no authentication, so it never listens on a routable interface. Port 0
/// lets the kernel pick; address() reports the resolved endpoint.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  static Result<Listener> Listen(const std::string& address);

  /// Accept one connection (a Peer::kServer socket), waiting at most until
  /// `deadline` (DeadlineExceeded makes a fine poll tick). After Close()
  /// (from any thread) returns Unavailable.
  Result<Socket> Accept(const Deadline& deadline);

  bool valid() const { return fd_ >= 0; }
  const std::string& address() const { return address_; }

  void Close();

 private:
  int fd_ = -1;
  std::string address_;    // resolved ("tcp:127.0.0.1:<port>" / "unix:<path>")
  std::string unix_path_;  // non-empty for unix sockets; unlinked on Close
};

}  // namespace orpheus::net

#endif  // ORPHEUS_NET_SOCKET_H_
