#ifndef ORPHEUS_NET_CLIENT_H_
#define ORPHEUS_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/types.h"
#include "minidb/table.h"
#include "net/socket.h"
#include "net/wire.h"
#include "session/session.h"

namespace orpheus::net {

struct ClientOptions {
  /// Per-call time budget: every public method either finishes or returns
  /// DeadlineExceeded within roughly this bound — never hangs.
  int64_t call_deadline_ms = 10000;
  /// Attempt cap within one call (first try + retries).
  int max_attempts = 8;
  /// Exponential backoff between retries: base * 2^attempt, capped, with
  /// +/-50% seeded jitter so a fleet of clients does not retry in
  /// lockstep.
  int64_t backoff_base_ms = 5;
  int64_t backoff_cap_ms = 500;
  /// Jitter RNG seed; 0 derives one from the client_uuid so two clients
  /// jitter differently while a fixed uuid keeps runs reproducible.
  uint64_t jitter_seed = 0;
  /// Idempotency identity sent in the Hello. Empty = derive a
  /// process-unique one. A client that reconnects MUST keep its uuid —
  /// it is the key of the server's replay window.
  std::string client_uuid;
};

/// Client side of the orpheusd wire protocol (DESIGN.md §14.5): carries
/// the Session API over a socket with deadlines, transparent reconnect,
/// and capped exponential backoff. Retry policy:
///   - Transport faults (Unavailable: reset, refused, torn frame) and
///     server verdicts marked retryable are retried on a FRESH connection
///     until the call deadline or attempt cap — safely, because mutating
///     requests carry (client_uuid, request_seq) stamps the server
///     deduplicates on: a commit retried after a lost ACK returns the
///     original result instead of committing twice.
///   - Definitive verdicts (validation errors, degraded-repository
///     refusal) surface immediately.
///   - DeadlineExceeded from a commit means the outcome is UNKNOWN: call
///     Commit again with the same table — the stamp makes the retry
///     resolve, not repeat, the commit.
///
/// NOT thread-safe: one thread drives a Client (like a Session).
class Client {
 public:
  /// Connect + handshake within the call deadline. Fails fast on a
  /// protocol-version mismatch (NotSupported — never retried).
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& address, const ClientOptions& options = {});

  struct OpenResult {
    uint64_t sid = 0;
    core::VersionId watermark = core::kInvalidVersion;
  };
  Result<OpenResult> Open(const std::string& cvd);

  Result<minidb::Table> Checkout(uint64_t sid,
                                 const std::vector<core::VersionId>& vids,
                                 const std::string& table_name);

  /// Ship `table` and commit it against the provenance recorded by the
  /// server at Checkout. Exactly-once under retry (see above).
  Result<session::CommitOutcome> Commit(uint64_t sid,
                                        const minidb::Table& table,
                                        const std::string& message,
                                        const std::string& author = "");

  Result<core::VersionId> Refresh(uint64_t sid);
  Result<std::vector<CvdSummary>> Ls();
  Status CloseSession(uint64_t sid);
  /// Renew the session lease; returns the lease term granted.
  Result<int64_t> Heartbeat(uint64_t sid);

  const std::string& client_uuid() const { return options_.client_uuid; }
  /// True if the server reported itself degraded at the last handshake.
  bool server_degraded() const { return server_degraded_; }

  struct Stats {
    uint64_t calls = 0;
    uint64_t retries = 0;
    uint64_t reconnects = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Client(std::string address, ClientOptions options);

  /// The retry loop every public method funnels through. A request_seq of
  /// 0 means "assign the next one"; Commit pre-sets it to resume an
  /// unresolved (deadline-exceeded) commit under its ORIGINAL stamp.
  Result<Response> Call(Request req);
  Status EnsureConnected(const Deadline& deadline);
  void DropConnection();
  void BackoffBeforeRetry(int attempt, const Deadline& deadline);
  /// The acked_seq to advertise: never past an unresolved commit's seq,
  /// or the server would prune the recorded verdict the retry needs.
  uint64_t AckFloor() const;

  const std::string address_;
  ClientOptions options_;
  Socket sock_;
  bool connected_ = false;
  bool server_degraded_ = false;
  uint64_t next_seq_ = 1;
  uint64_t acked_seq_ = 0;
  // Commits whose outcome is unknown (the call died in DeadlineExceeded),
  // keyed by (sid, table): the next Commit on that key reuses the stamp so
  // the server resolves — not repeats — the commit.
  std::map<std::pair<uint64_t, std::string>, uint64_t> unresolved_commits_;
  Xorshift rng_;
  Stats stats_;
};

}  // namespace orpheus::net

#endif  // ORPHEUS_NET_CLIENT_H_
