#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <optional>
#include <utility>

#include "common/env.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace orpheus::net {

namespace {

/// Consult a net.* failpoint. Fired kError becomes Unavailable — the same
/// status a real network fault produces, so injected and organic faults
/// take identical paths through the retry machinery. kAbort crashes (for
/// the crash matrix); kDelay is absorbed inside ConsumeHit.
std::optional<Status> HitNetFailpoint(const char* name) {
#if ORPHEUS_FAILPOINTS_ENABLED
  if (failpoint::AnyArmed()) {
    if (auto action = failpoint::internal::ConsumeHit(name)) {
      if (*action == failpoint::Action::kAbort) {
        failpoint::internal::CrashNow(name);
      }
      return Status::Unavailable(
          StrFormat("injected network fault at failpoint %s", name));
    }
  }
#endif
  (void)name;
  return std::nullopt;
}

Status ErrnoStatus(const char* what, int err) {
  return Status::Unavailable(StrFormat("%s: %s", what, std::strerror(err)));
}

/// poll(2) timeout for a deadline: whole milliseconds, rounded up so a
/// sub-millisecond remainder still sleeps instead of spinning.
int PollTimeoutMillis(const Deadline& deadline) {
  if (deadline.is_infinite()) return -1;
  const int64_t ns = deadline.remaining().count();
  const int64_t ms = (ns + 999999) / 1000000;
  return ms > INT_MAX ? INT_MAX : static_cast<int>(ms);
}

/// Wait for `events` on `fd` within the deadline.
Status PollFor(int fd, short events, const Deadline& deadline,
               const char* what) {
  while (true) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          StrFormat("%s: deadline expired", what));
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, PollTimeoutMillis(deadline));
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::DeadlineExceeded(
          StrFormat("%s: deadline expired", what));
    }
    if (errno == EINTR) continue;
    return ErrnoStatus(what, errno);
  }
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host;  // tcp
  int port = 0;      // tcp
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.unix_path = address.substr(5);
    if (out.unix_path.empty()) {
      return Status::InvalidArgument("unix address needs a path");
    }
    sockaddr_un sun;
    if (out.unix_path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument(StrFormat(
          "unix socket path too long (%zu bytes, max %zu): %s",
          out.unix_path.size(), sizeof(sun.sun_path) - 1,
          out.unix_path.c_str()));
    }
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    std::string rest = address.substr(4);
    out.host = "127.0.0.1";
    const size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      out.host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    if (out.host != "127.0.0.1" && out.host != "localhost") {
      return Status::InvalidArgument(StrFormat(
          "orpheusd is loopback-only (no authentication); refusing "
          "non-loopback host \"%s\"",
          out.host.c_str()));
    }
    out.host = "127.0.0.1";
    const std::optional<int64_t> port = ParseIntStrict(rest);
    if (!port || *port < 0 || *port > 65535) {
      return Status::InvalidArgument(
          StrFormat("bad tcp port \"%s\"", rest.c_str()));
    }
    out.port = static_cast<int>(*port);
    return out;
  }
  return Status::InvalidArgument(StrFormat(
      "address must be unix:<path> or tcp:[host:]<port>, got \"%s\"",
      address.c_str()));
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), peer_(other.peer_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    peer_ = other.peer_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(std::string_view data, const Deadline& deadline) {
  if (fd_ < 0) return Status::Unavailable("send on closed socket");
  const bool client = peer_ == Peer::kClient;

  // Torn-frame injection: push half the bytes for real, then fail — the
  // peer sees a frame that stops mid-payload, exactly like a crash between
  // two TCP segments.
  size_t limit = data.size();
  bool tear = false;
  if (auto s = HitNetFailpoint(client ? "net.client.send.partial"
                                      : "net.server.send.partial")) {
    limit = data.size() / 2;
    tear = true;
    (void)s;
  } else if (auto fault =
                 HitNetFailpoint(client ? "net.client.send"
                                        : "net.server.send")) {
    return *fault;
  }

  size_t sent = 0;
  while (sent < limit) {
    const ssize_t n = ::send(fd_, data.data() + sent, limit - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ORPHEUS_RETURN_NOT_OK(PollFor(fd_, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  ORPHEUS_COUNTER_ADD("net.bytes_sent", sent);
  if (tear) {
    ShutdownBoth();  // make the tear observable to the peer immediately
    return Status::Unavailable(
        "injected network fault at failpoint net.*.send.partial "
        "(frame torn mid-payload)");
  }
  return Status::OK();
}

Status Socket::RecvAll(char* buf, size_t n, const Deadline& deadline,
                       size_t* received) {
  if (received != nullptr) *received = 0;
  if (fd_ < 0) return Status::Unavailable("recv on closed socket");
  const bool client = peer_ == Peer::kClient;
  if (auto fault = HitNetFailpoint(client ? "net.client.recv"
                                          : "net.server.recv")) {
    return *fault;
  }
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, buf + got, n - got, MSG_DONTWAIT);
    if (r > 0) {
      got += static_cast<size_t>(r);
      if (received != nullptr) *received = got;
      continue;
    }
    if (r == 0) {
      return Status::Unavailable(StrFormat(
          "connection closed by peer (%zu of %zu bytes read)", got, n));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ORPHEUS_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
  ORPHEUS_COUNTER_ADD("net.bytes_recv", got);
  return Status::OK();
}

Result<Socket> Socket::Connect(const std::string& address,
                               const Deadline& deadline) {
  if (auto fault = HitNetFailpoint("net.client.connect")) return *fault;
  ORPHEUS_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));

  const int fd = ::socket(parsed.is_unix ? AF_UNIX : AF_INET,
                          SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Socket sock(fd, Peer::kClient);
  SetNonBlocking(fd);

  int rc;
  if (parsed.is_unix) {
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, parsed.unix_path.c_str(),
                parsed.unix_path.size());
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun));
  } else {
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(parsed.port));
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
  }
  if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
    return ErrnoStatus("connect", errno);
  }
  if (rc < 0) {
    ORPHEUS_RETURN_NOT_OK(PollFor(fd, POLLOUT, deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("connect (getsockopt)", errno);
    }
    if (err != 0) return ErrnoStatus("connect", err);
  }
  if (!parsed.is_unix) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ORPHEUS_COUNTER_ADD("net.connects", 1);
  return sock;
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      address_(std::move(other.address_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    // shutdown() first so a thread parked in poll(fd_) wakes immediately.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Result<Listener> Listener::Listen(const std::string& address) {
  ORPHEUS_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  const int fd = ::socket(parsed.is_unix ? AF_UNIX : AF_INET,
                          SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Listener listener;
  listener.fd_ = fd;

  int rc;
  if (parsed.is_unix) {
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, parsed.unix_path.c_str(),
                parsed.unix_path.size());
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun));
    if (rc == 0) {
      listener.unix_path_ = parsed.unix_path;
      listener.address_ = address;
    }
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(parsed.port));
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
    if (rc == 0) {
      sockaddr_in bound;
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
        return ErrnoStatus("getsockname", errno);
      }
      listener.address_ =
          StrFormat("tcp:127.0.0.1:%d", ntohs(bound.sin_port));
    }
  }
  if (rc < 0) return ErrnoStatus("bind", errno);
  if (::listen(fd, 64) < 0) return ErrnoStatus("listen", errno);
  SetNonBlocking(fd);
  return listener;
}

Result<Socket> Listener::Accept(const Deadline& deadline) {
  if (fd_ < 0) return Status::Unavailable("accept on closed listener");
  while (true) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      if (auto fault = HitNetFailpoint("net.server.accept")) {
        ::close(conn);
        return *fault;
      }
      Socket sock(conn, Socket::Peer::kServer);
      SetNonBlocking(conn);
      int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ORPHEUS_COUNTER_ADD("net.accepts", 1);
      return sock;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ORPHEUS_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline, "accept"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept", errno);
  }
}

}  // namespace orpheus::net
