#ifndef ORPHEUS_NET_SERVER_H_
#define ORPHEUS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cvd.h"
#include "net/socket.h"
#include "net/wire.h"
#include "session/session.h"
#include "storage/repository.h"

namespace orpheus::net {

struct ServerOptions {
  /// "unix:<path>" or "tcp:[127.0.0.1:]<port>" (port 0 = kernel-assigned;
  /// the bound endpoint is SessionServer::address()).
  std::string listen = "tcp:0";
  /// A session whose client has neither issued a request nor heartbeat
  /// for this long is expired: its staging state is released and further
  /// requests on its sid get NotFound (reopen to continue).
  int64_t lease_ms = 30000;
  /// Cap on concurrently open remote sessions across all CVDs.
  int max_sessions = 256;
  /// Retired mutating-op responses remembered per client for replay to a
  /// retrying peer, beyond what acked_seq already pruned.
  size_t dedup_window = 64;
  /// Cap on one commit's server-side durability wait when the request does
  /// not carry a tighter deadline.
  int64_t commit_deadline_ms = 10000;
  std::string server_id = "orpheusd";
};

/// The orpheusd network front end (DESIGN.md §14): serves the Session API
/// over the wire protocol to many concurrent clients.
///
/// Robustness contract:
///   - Exactly-once commits: every mutating request carries the client's
///     (client_uuid, request_seq) stamp. Finished open/commit responses
///     are kept in a per-client replay window (pruned by the client's
///     acked_seq); a retried request replays the recorded response byte
///     for byte instead of re-executing. A commit whose durability wait
///     timed out is parked (Session::CommitWithDeadline) and a retry
///     RESUMES the wait — the apply never runs twice.
///   - Leases: sessions expire after lease_ms without traffic; the reaper
///     (on the accept thread) releases their staging state so a dead
///     client cannot pin resources forever. Heartbeats renew.
///   - Graceful degradation: when the repository is degraded (WAL append
///     failure) or a manager is poisoned, commits are refused with a
///     distinct retryable=false status; checkouts, diffs and ls keep
///     working — snapshot reads never depend on the WAL.
///
/// Threading: one DedicatedThread accepts + reaps leases; one per live
/// connection runs the request loop. The registry lock (rank kNetServer,
/// below every session/storage rank) is never held across a session
/// operation — a per-session busy flag serializes requests on the same
/// sid while letting other sessions proceed.
class SessionServer {
 public:
  /// Take ownership of `cvds` (each gets a SessionManager routing commits
  /// into `repo`, which may be null for an in-memory server) and start
  /// listening. The repository must outlive the server.
  static Result<std::unique_ptr<SessionServer>> Start(
      storage::Repository* repo,
      std::vector<std::unique_ptr<core::Cvd>> cvds,
      const ServerOptions& options);

  ~SessionServer();
  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Stop accepting, disconnect every client, join all threads, release
  /// all sessions. Idempotent.
  void Stop();

  /// Hand the CVDs back (after Stop). The server is empty afterwards.
  std::vector<std::unique_ptr<core::Cvd>> ReleaseCvds();

  /// The bound endpoint, e.g. "tcp:127.0.0.1:45123".
  const std::string& address() const { return address_; }

  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t commits = 0;
    uint64_t commits_replayed = 0;  // dedup-window hits
    uint64_t commits_resumed = 0;   // parked durability waits resumed
    uint64_t leases_expired = 0;
    uint64_t sessions_open = 0;
  };
  Stats stats() const;

  /// Test hook: the manager serving `cvd`, or null.
  session::SessionManager* manager(const std::string& cvd) const;

 private:
  SessionServer(storage::Repository* repo, ServerOptions options);

  struct RemoteSession {
    uint64_t sid = 0;
    std::string cvd;
    std::string client_uuid;
    std::unique_ptr<session::Session> session;
    int64_t lease_deadline_ms = 0;
    bool busy = false;
    // Staging table -> request_seq of the commit whose durability wait is
    // parked in the Session (a retry with the same seq resumes it).
    std::map<std::string, uint64_t> pending_commit_seqs;
  };

  /// Per-client replay window for mutating ops (open/commit).
  struct ClientWindow {
    std::map<uint64_t, std::string> done;  // request_seq -> encoded Response
    int64_t last_active_ms = 0;
  };

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<Socket> sock, uint64_t conn_id);
  /// Run one request; returns the encoded Response to send.
  std::string Dispatch(const std::string& client_uuid, Request req);

  Response HandleOpen(const std::string& client_uuid, const Request& req);
  Response HandleCheckout(RemoteSession* rs, const Request& req);
  Response HandleCommit(RemoteSession* rs, Request* req);
  Response HandleRefresh(RemoteSession* rs, const Request& req);
  Response HandleLs(const Request& req);
  Response HandleClose(const Request& req, const std::string& client_uuid);
  Response HandleHeartbeat(RemoteSession* rs, const Request& req);

  /// Claim exclusive use of a session for one request (sets busy, renews
  /// the lease). Retryable "busy" if another request is mid-flight on it;
  /// definitive NotFound if the sid is unknown (e.g. lease expired).
  Result<RemoteSession*> ClaimSession(uint64_t sid,
                                      const std::string& client_uuid)
      ORPHEUS_EXCLUDES(mu_);
  void ReleaseSession(RemoteSession* rs) ORPHEUS_EXCLUDES(mu_);

  /// Replay-window lookup / record (mutating ops only).
  bool LookupDone(const std::string& client_uuid, uint64_t seq,
                  uint64_t acked_seq, std::string* encoded)
      ORPHEUS_EXCLUDES(mu_);
  void RecordDone(const std::string& client_uuid, uint64_t seq,
                  std::string encoded) ORPHEUS_EXCLUDES(mu_);

  void ReapExpiredLeases() ORPHEUS_EXCLUDES(mu_);

  int64_t NowMs() const {
    return static_cast<int64_t>(uptime_.ElapsedMillis());
  }

  /// Commits refused? (repo degraded or this CVD's manager poisoned.)
  bool CommitsRefused(const session::SessionManager& mgr) const;

  storage::Repository* const repo_;  // nullable, not owned
  const ServerOptions options_;
  std::string address_;
  Timer uptime_;

  // CVD name -> its manager. Built at Start, torn down at ReleaseCvds;
  // immutable in between, so handlers read it without mu_.
  std::map<std::string, std::unique_ptr<session::SessionManager>> managers_;

  Listener listener_;
  std::atomic<bool> stop_{false};

  // Registry lock: sessions, replay windows, live connections, counters.
  // Rank kNetServer (1) sits below every session/storage rank; handlers
  // release it before touching a Session.
  mutable Mutex mu_{"net.server", lock_rank::kNetServer};
  std::map<uint64_t, std::unique_ptr<RemoteSession>> sessions_
      ORPHEUS_GUARDED_BY(mu_);
  std::map<std::string, ClientWindow> windows_ ORPHEUS_GUARDED_BY(mu_);
  std::map<uint64_t, std::shared_ptr<Socket>> conns_ ORPHEUS_GUARDED_BY(mu_);
  uint64_t next_sid_ ORPHEUS_GUARDED_BY(mu_) = 1;
  uint64_t next_conn_id_ ORPHEUS_GUARDED_BY(mu_) = 1;
  Stats stats_ ORPHEUS_GUARDED_BY(mu_);

  DedicatedThread accept_thread_;
  std::vector<DedicatedThread> handler_threads_ ORPHEUS_GUARDED_BY(mu_);
};

}  // namespace orpheus::net

#endif  // ORPHEUS_NET_SERVER_H_
