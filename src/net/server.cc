#include "net/server.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace orpheus::net {

namespace {

/// A connection-drop failpoint: fired = close the connection right here
/// (kAbort crashes instead, for the crash matrix). Unlike the socket
/// sites these return no status — the server just hangs up, which is
/// exactly what a killed process or yanked cable looks like to the peer.
bool FireConnDrop(const char* name) {
#if ORPHEUS_FAILPOINTS_ENABLED
  if (failpoint::AnyArmed()) {
    if (auto action = failpoint::internal::ConsumeHit(name)) {
      if (*action == failpoint::Action::kAbort) {
        failpoint::internal::CrashNow(name);
      }
      return true;
    }
  }
#endif
  (void)name;
  return false;
}

}  // namespace

SessionServer::SessionServer(storage::Repository* repo, ServerOptions options)
    : repo_(repo), options_(std::move(options)) {}

Result<std::unique_ptr<SessionServer>> SessionServer::Start(
    storage::Repository* repo, std::vector<std::unique_ptr<core::Cvd>> cvds,
    const ServerOptions& options) {
  std::unique_ptr<SessionServer> server(new SessionServer(repo, options));
  for (std::unique_ptr<core::Cvd>& cvd : cvds) {
    std::string name = cvd->name();
    server->managers_.emplace(
        std::move(name),
        std::make_unique<session::SessionManager>(std::move(cvd), repo));
  }
  ORPHEUS_ASSIGN_OR_RETURN(server->listener_,
                           Listener::Listen(options.listen));
  server->address_ = server->listener_.address();
  LOG_INFO("orpheusd serving",
           {{"cvds", server->managers_.size()},
            {"address", server->address_}});
  SessionServer* raw = server.get();
  server->accept_thread_ =
      DedicatedThread("net.accept", [raw] { raw->AcceptLoop(); });
  return server;
}

SessionServer::~SessionServer() { Stop(); }

void SessionServer::Stop() {
  if (stop_.exchange(true)) return;
  listener_.Close();
  // Nudge every live connection so handlers parked in poll() wake now
  // instead of at their next 250ms idle tick.
  std::vector<std::shared_ptr<Socket>> socks;
  {
    MutexLock lock(&mu_);
    socks.reserve(conns_.size());
    for (auto& entry : conns_) socks.push_back(entry.second);
  }
  for (auto& sock : socks) sock->ShutdownBoth();
  accept_thread_.Join();
  std::vector<DedicatedThread> handlers;
  {
    MutexLock lock(&mu_);
    handlers.swap(handler_threads_);
  }
  for (DedicatedThread& t : handlers) t.Join();
  MutexLock lock(&mu_);
  sessions_.clear();
  conns_.clear();
  windows_.clear();
}

std::vector<std::unique_ptr<core::Cvd>> SessionServer::ReleaseCvds() {
  Stop();
  std::vector<std::unique_ptr<core::Cvd>> out;
  out.reserve(managers_.size());
  for (auto& entry : managers_) out.push_back(entry.second->Release());
  managers_.clear();
  return out;
}

SessionServer::Stats SessionServer::stats() const {
  MutexLock lock(&mu_);
  Stats out = stats_;
  out.sessions_open = sessions_.size();
  return out;
}

session::SessionManager* SessionServer::manager(
    const std::string& cvd) const {
  auto it = managers_.find(cvd);
  return it == managers_.end() ? nullptr : it->second.get();
}

bool SessionServer::CommitsRefused(
    const session::SessionManager& mgr) const {
  return (repo_ != nullptr && repo_->degraded()) || mgr.failed();
}

// ---------------------------------------------------------------------------
// Accept loop + lease reaper
// ---------------------------------------------------------------------------

void SessionServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept(Deadline::AfterMillis(100));
    ReapExpiredLeases();
    if (stop_.load(std::memory_order_acquire)) break;
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      // Injected accept fault: drop this connection attempt and keep
      // serving. A dead listener ends the loop.
      if (!listener_.valid()) break;
      LOG_WARN("net.server accept failed",
               {{"error", accepted.status().ToString()}});
      continue;
    }
    auto sock = std::make_shared<Socket>(accepted.MoveValueOrDie());
    MutexLock lock(&mu_);
    const uint64_t conn_id = next_conn_id_++;
    conns_[conn_id] = sock;
    ++stats_.connections;
    ORPHEUS_COUNTER_ADD("net.server.connections", 1);
    handler_threads_.emplace_back(
        "net.conn", [this, sock, conn_id] { HandleConnection(sock, conn_id); });
  }
}

void SessionServer::ReapExpiredLeases() {
  MutexLock lock(&mu_);
  const int64_t now = NowMs();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    RemoteSession* rs = it->second.get();
    if (!rs->busy && rs->lease_deadline_ms < now) {
      LOG_WARN("net.server lease expired; releasing session staging state",
               {{"sid", static_cast<unsigned long long>(rs->sid)},
                {"cvd", rs->cvd},
                {"client", rs->client_uuid}});
      ++stats_.leases_expired;
      ORPHEUS_COUNTER_ADD("net.server.leases_expired", 1);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  // Replay windows of clients with no sessions idle for several lease
  // periods are garbage: the client is gone for good.
  for (auto it = windows_.begin(); it != windows_.end();) {
    const bool stale =
        it->second.last_active_ms + 4 * options_.lease_ms < now;
    bool has_session = false;
    if (stale) {
      for (const auto& entry : sessions_) {
        if (entry.second->client_uuid == it->first) {
          has_session = true;
          break;
        }
      }
    }
    if (stale && !has_session) {
      it = windows_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

void SessionServer::HandleConnection(std::shared_ptr<Socket> sock,
                                     uint64_t conn_id) {
  MsgType type;
  std::string payload;
  std::string client_uuid;
  bool handshook = false;

  // Handshake: Hello -> HelloAck. A peer speaking the wrong protocol (or
  // version) gets a descriptive ack and a closed connection — never a
  // half-understood session.
  Status s = RecvMessage(sock.get(), &type, &payload,
                         Deadline::AfterMillis(options_.lease_ms));
  if (s.ok() && type == MsgType::kHello) {
    HelloAck ack;
    ack.server_id = options_.server_id;
    ack.degraded = repo_ != nullptr && repo_->degraded();
    Result<Hello> hello = DecodeHello(payload);
    if (!hello.ok()) {
      ack.code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      ack.message = std::string(hello.status().message());
    } else if (hello.ValueOrDie().magic != kNetMagic) {
      ack.code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      ack.message = "bad magic: peer is not an orpheus client";
    } else if (hello.ValueOrDie().protocol_version != kProtocolVersion) {
      ack.code = static_cast<uint8_t>(StatusCode::kNotSupported);
      ack.message = StrFormat(
          "protocol version mismatch: client speaks v%u, server v%u",
          hello.ValueOrDie().protocol_version, kProtocolVersion);
    } else if (hello.ValueOrDie().client_uuid.empty()) {
      ack.code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      ack.message = "client_uuid must be non-empty (idempotency identity)";
    } else {
      client_uuid = hello.ValueOrDie().client_uuid;
    }
    Status sent = SendMessage(sock.get(), MsgType::kHelloAck,
                              EncodeHelloAck(ack),
                              Deadline::AfterMillis(5000));
    handshook = sent.ok() && ack.code == 0;
    if (ack.code != 0) {
      LOG_WARN("net.server refused connection", {{"reason", ack.message}});
      ORPHEUS_COUNTER_ADD("net.server.handshake_refused", 1);
    }
  }

  while (handshook && !stop_.load(std::memory_order_acquire)) {
    // Short idle deadline = the tick at which we notice Stop(). An idle
    // timeout leaves the stream aligned; anything else is fatal to the
    // connection (the client reconnects and retries).
    s = RecvMessage(sock.get(), &type, &payload, Deadline::AfterMillis(250));
    if (s.IsDeadlineExceeded()) continue;
    if (!s.ok()) break;
    if (type != MsgType::kRequest) break;
    Result<Request> req = DecodeRequest(payload);
    if (!req.ok()) break;
    if (FireConnDrop("net.server.drop_after_read")) break;
    std::string encoded =
        Dispatch(client_uuid, req.MoveValueOrDie());
    if (FireConnDrop("net.server.drop_before_send")) break;
    if (!SendMessage(sock.get(), MsgType::kResponse, encoded,
                     Deadline::AfterMillis(10000))
             .ok()) {
      break;
    }
  }

  sock->Close();
  MutexLock lock(&mu_);
  conns_.erase(conn_id);
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

std::string SessionServer::Dispatch(const std::string& client_uuid,
                                    Request req) {
  {
    MutexLock lock(&mu_);
    ++stats_.requests;
  }
  ORPHEUS_COUNTER_ADD("net.server.requests", 1);
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;

  switch (req.op) {
    case Op::kOpen: {
      // Open is mutating (it allocates a sid): a retried open must get
      // the ORIGINAL sid back, not leak a second session.
      std::string replay;
      if (LookupDone(client_uuid, req.request_seq, req.acked_seq, &replay)) {
        return replay;
      }
      resp = HandleOpen(client_uuid, req);
      std::string encoded = EncodeResponse(resp);
      if (resp.ok()) RecordDone(client_uuid, req.request_seq, encoded);
      return encoded;
    }
    case Op::kLs:
      return EncodeResponse(HandleLs(req));
    case Op::kClose:
      return EncodeResponse(HandleClose(req, client_uuid));
    default:
      break;
  }

  Result<RemoteSession*> claimed = ClaimSession(req.sid, client_uuid);
  if (!claimed.ok()) {
    resp.SetStatus(claimed.status(), claimed.status().IsUnavailable());
    return EncodeResponse(resp);
  }
  RemoteSession* rs = claimed.ValueOrDie();

  if (req.op == Op::kCommit) {
    std::string replay;
    if (LookupDone(client_uuid, req.request_seq, req.acked_seq, &replay)) {
      ReleaseSession(rs);
      return replay;
    }
  }

  switch (req.op) {
    case Op::kCheckout:
      resp = HandleCheckout(rs, req);
      break;
    case Op::kCommit:
      resp = HandleCommit(rs, &req);
      break;
    case Op::kRefresh:
      resp = HandleRefresh(rs, req);
      break;
    case Op::kHeartbeat:
      resp = HandleHeartbeat(rs, req);
      break;
    default:
      resp.SetStatus(
          Status::InvalidArgument(StrFormat("op %u needs no session",
                                            static_cast<unsigned>(req.op))),
          false);
      break;
  }
  ReleaseSession(rs);

  std::string encoded = EncodeResponse(resp);
  // A commit's FINAL verdict (success or definitive error) enters the
  // replay window; a durability timeout does not — the retry must resume
  // the parked wait, not replay the "try again" answer forever.
  if (req.op == Op::kCommit &&
      resp.code != static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    RecordDone(client_uuid, req.request_seq, encoded);
  }
  return encoded;
}

Result<SessionServer::RemoteSession*> SessionServer::ClaimSession(
    uint64_t sid, const std::string& client_uuid) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    return Status::NotFound(StrFormat(
        "no session %llu on this server (closed, or its lease expired) — "
        "open a new session",
        static_cast<unsigned long long>(sid)));
  }
  RemoteSession* rs = it->second.get();
  if (rs->client_uuid != client_uuid) {
    return Status::InvalidArgument(StrFormat(
        "session %llu belongs to another client",
        static_cast<unsigned long long>(sid)));
  }
  if (rs->busy) {
    return Status::Unavailable(StrFormat(
        "session %llu is serving another request; retry",
        static_cast<unsigned long long>(sid)));
  }
  rs->busy = true;
  rs->lease_deadline_ms = NowMs() + options_.lease_ms;
  return rs;
}

void SessionServer::ReleaseSession(RemoteSession* rs) {
  MutexLock lock(&mu_);
  rs->busy = false;
  rs->lease_deadline_ms = NowMs() + options_.lease_ms;
}

bool SessionServer::LookupDone(const std::string& client_uuid, uint64_t seq,
                               uint64_t acked_seq, std::string* encoded) {
  MutexLock lock(&mu_);
  ClientWindow& win = windows_[client_uuid];
  win.last_active_ms = NowMs();
  while (!win.done.empty() && win.done.begin()->first <= acked_seq) {
    win.done.erase(win.done.begin());
  }
  auto it = win.done.find(seq);
  if (it == win.done.end()) return false;
  *encoded = it->second;
  ++stats_.commits_replayed;
  ORPHEUS_COUNTER_ADD("net.server.replayed_responses", 1);
  return true;
}

void SessionServer::RecordDone(const std::string& client_uuid, uint64_t seq,
                               std::string encoded) {
  MutexLock lock(&mu_);
  ClientWindow& win = windows_[client_uuid];
  win.last_active_ms = NowMs();
  win.done[seq] = std::move(encoded);
  while (win.done.size() > options_.dedup_window) {
    win.done.erase(win.done.begin());
  }
}

// ---------------------------------------------------------------------------
// Op handlers
// ---------------------------------------------------------------------------

Response SessionServer::HandleOpen(const std::string& client_uuid,
                                   const Request& req) {
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;
  auto it = managers_.find(req.cvd);
  if (it == managers_.end()) {
    resp.SetStatus(
        Status::NotFound(StrFormat("no CVD \"%s\" on this server",
                                   req.cvd.c_str())),
        false);
    return resp;
  }
  MutexLock lock(&mu_);
  if (sessions_.size() >= static_cast<size_t>(options_.max_sessions)) {
    resp.SetStatus(
        Status::Unavailable(StrFormat(
            "session limit reached (%d); retry after sessions close",
            options_.max_sessions)),
        true);
    return resp;
  }
  auto rs = std::make_unique<RemoteSession>();
  rs->sid = next_sid_++;
  rs->cvd = req.cvd;
  rs->client_uuid = client_uuid;
  rs->session = it->second->Open();
  rs->lease_deadline_ms = NowMs() + options_.lease_ms;
  resp.sid = rs->sid;
  resp.watermark = rs->session->watermark();
  sessions_[rs->sid] = std::move(rs);
  return resp;
}

Response SessionServer::HandleCheckout(RemoteSession* rs,
                                       const Request& req) {
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;
  session::Session* session = rs->session.get();
  // Idempotent re-checkout: a retry after a lost response finds the table
  // already staged — discard and redo rather than failing "exists". The
  // commit path ships the full table anyway, so a discarded server copy
  // loses nothing.
  if (session->table(req.table_name) != nullptr) {
    Status discarded = session->DiscardStaging(req.table_name);
    if (!discarded.ok()) {
      resp.SetStatus(discarded, false);
      return resp;
    }
  }
  Status s = session->Checkout(req.vids, req.table_name);
  if (!s.ok()) {
    resp.SetStatus(s, false);
    return resp;
  }
  const minidb::Table* table = session->table(req.table_name);
  resp.table =
      std::make_unique<minidb::Table>(table->Clone(table->name()));
  return resp;
}

Response SessionServer::HandleCommit(RemoteSession* rs, Request* req) {
  Response resp;
  resp.request_seq = req->request_seq;
  resp.op = req->op;
  session::SessionManager& mgr = *managers_.at(rs->cvd);
  if (CommitsRefused(mgr)) {
    // Graceful degradation: a distinct, deliberately NON-retryable verdict
    // — the repository needs operator attention (reopen), so hammering it
    // with retries is pointless. Checkouts keep working.
    resp.code = static_cast<uint8_t>(StatusCode::kUnavailable);
    resp.retryable = false;
    resp.message = StrFormat(
        "repository degraded: commits on \"%s\" refused (read-only "
        "checkouts still served); reopen the repository to recover",
        rs->cvd.c_str());
    ORPHEUS_COUNTER_ADD("net.server.commits_refused_degraded", 1);
    return resp;
  }

  session::Session* session = rs->session.get();
  const std::string& table_name = req->table_name;
  bool resumed = false;
  if (session->HasPendingCommit(table_name)) {
    auto pending = rs->pending_commit_seqs.find(table_name);
    if (pending == rs->pending_commit_seqs.end() ||
        pending->second != req->request_seq) {
      resp.SetStatus(
          Status::Internal(StrFormat(
              "a different commit on \"%s\" is awaiting durability; "
              "resolve it first",
              table_name.c_str())),
          false);
      return resp;
    }
    resumed = true;  // retry of the timed-out commit: resume the wait
  } else {
    if (req->table == nullptr) {
      resp.SetStatus(
          Status::InvalidArgument("commit request carries no table"),
          false);
      return resp;
    }
    Status staged =
        session->ReplaceStaging(table_name, std::move(*req->table));
    if (!staged.ok()) {
      resp.SetStatus(staged, false);
      return resp;
    }
  }

  const int64_t budget =
      req->deadline_ms > 0
          ? std::min(req->deadline_ms, options_.commit_deadline_ms)
          : options_.commit_deadline_ms;
  session::CommitOutcome outcome;
  Status s = session->CommitWithDeadline(table_name, req->message,
                                         req->author,
                                         Deadline::AfterMillis(budget),
                                         &outcome);
  if (s.IsDeadlineExceeded()) {
    rs->pending_commit_seqs[table_name] = req->request_seq;
    resp.SetStatus(s, /*transient=*/true);
    ORPHEUS_COUNTER_ADD("net.server.commit_durability_timeouts", 1);
    return resp;
  }
  rs->pending_commit_seqs.erase(table_name);
  if (!s.ok()) {
    resp.SetStatus(s, s.IsUnavailable());
    return resp;
  }
  resp.outcome = std::move(outcome);
  {
    MutexLock lock(&mu_);
    ++stats_.commits;
    if (resumed) ++stats_.commits_resumed;
  }
  ORPHEUS_COUNTER_ADD("net.server.commits", 1);
  return resp;
}

Response SessionServer::HandleRefresh(RemoteSession* rs,
                                      const Request& req) {
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;
  Status s = rs->session->Refresh();
  if (!s.ok()) {
    resp.SetStatus(s, false);
    return resp;
  }
  resp.watermark = rs->session->watermark();
  return resp;
}

Response SessionServer::HandleLs(const Request& req) {
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;
  for (const auto& entry : managers_) {
    CvdSummary summary;
    summary.name = entry.first;
    summary.watermark = entry.second->watermark();
    summary.failed = CommitsRefused(*entry.second);
    Status s = entry.second->ReadCvd([&summary](const core::Cvd& cvd) {
      summary.num_versions = cvd.num_versions();
      return Status::OK();
    });
    if (!s.ok()) {
      // A poisoned manager still lists (that IS the signal); only report
      // what we could read.
      summary.num_versions = -1;
    }
    {
      MutexLock lock(&mu_);
      for (const auto& sess : sessions_) {
        if (sess.second->cvd == entry.first) ++summary.open_sessions;
      }
    }
    resp.cvds.push_back(std::move(summary));
  }
  return resp;
}

Response SessionServer::HandleClose(const Request& req,
                                    const std::string& client_uuid) {
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;
  MutexLock lock(&mu_);
  auto it = sessions_.find(req.sid);
  if (it == sessions_.end()) return resp;  // idempotent: already gone
  if (it->second->client_uuid != client_uuid) {
    resp.SetStatus(
        Status::InvalidArgument(StrFormat(
            "session %llu belongs to another client",
            static_cast<unsigned long long>(req.sid))),
        false);
    return resp;
  }
  if (it->second->busy) {
    resp.SetStatus(
        Status::Unavailable(StrFormat(
            "session %llu is serving another request; retry close",
            static_cast<unsigned long long>(req.sid))),
        true);
    return resp;
  }
  sessions_.erase(it);
  return resp;
}

Response SessionServer::HandleHeartbeat(RemoteSession* rs,
                                        const Request& req) {
  // Claim/release already renewed the lease; just confirm the term.
  Response resp;
  resp.request_seq = req.request_seq;
  resp.op = req.op;
  resp.lease_ms = options_.lease_ms;
  (void)rs;
  return resp;
}

}  // namespace orpheus::net
