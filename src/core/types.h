#ifndef ORPHEUS_CORE_TYPES_H_
#define ORPHEUS_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace orpheus::core {

/// Version identifier within a CVD. Versions are numbered from 1 in commit
/// order (vid 0 is reserved/invalid), matching the paper's v1, v2, ...
using VersionId = int32_t;
inline constexpr VersionId kInvalidVersion = 0;

/// Immutable record identifier within a CVD (never reused; not user-visible).
using RecordId = int64_t;

/// Logical timestamp: one CVD-wide counter incremented per checkout and
/// commit. An integer, not a double — a double loses increments past 2^53
/// and equal timestamps would break commit ordering.
using LogicalTime = int64_t;

/// Version-level provenance row of the metadata table (Fig. 4.2a):
/// vid, parents, checkout time, commit time, message, attribute set.
struct VersionMetadata {
  VersionId vid = kInvalidVersion;
  std::vector<VersionId> parents;
  LogicalTime checkout_time = 0;  // creation (checkout) timestamp
  LogicalTime commit_time = 0;    // commit timestamp
  std::string message;
  std::string author;
  std::vector<int> attributes;  // attribute ids present in this version
  int64_t num_records = 0;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_TYPES_H_
