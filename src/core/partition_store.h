#ifndef ORPHEUS_CORE_PARTITION_STORE_H_
#define ORPHEUS_CORE_PARTITION_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/partitioning.h"
#include "core/types.h"
#include "minidb/table.h"

namespace orpheus::core {

/// Full access to a versioned dataset's membership and payloads, decoupled
/// from where it lives (benchmark generator or CVD backend).
///
/// Both accessors must be safe to call concurrently from multiple threads:
/// Build/MigrateTo fan partition fills out across the global thread pool.
/// (Read-only views over an immutable dataset — the only accessors the
/// repo constructs — satisfy this trivially.)
struct DatasetAccessor {
  int num_versions = 0;
  int num_attributes = 0;  // data attributes per record
  std::function<const std::vector<RecordId>&(int v)> records_of;
  /// Fill `out` (size num_attributes) with the record's attribute values.
  std::function<void(RecordId, std::vector<int64_t>*)> payload_of;
};

/// The physical realization of a partitioning (Sec. 5.1): each partition
/// stores its own split-by-rlist pair of tables — a data table holding the
/// union of its versions' records, and a versioning table mapping each of
/// its versions to an rlist. Checkout touches exactly one partition.
class PartitionedStore {
 public:
  /// Materialize `partitioning` over the dataset.
  static PartitionedStore Build(const DatasetAccessor& ds,
                                const Partitioning& partitioning);

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  int partition_of(int version) const { return partition_of_[version]; }
  int num_versions() const { return static_cast<int>(partition_of_.size()); }

  /// Materialize a version: vid index lookup in its partition's versioning
  /// table, then a hash join against that partition's data table.
  Result<minidb::Table> Checkout(int version) const;

  /// Σ over partitions of the records stored (the storage metric S).
  uint64_t TotalDataRecords() const;
  uint64_t StorageBytes() const;
  /// Bytes held by the versioning tables alone (the rlist columns the
  /// compressed membership index shrinks).
  uint64_t VersioningBytes() const;
  /// Records in the partition holding `version` (the checkout cost C_i).
  uint64_t PartitionRecords(int version) const;

  /// Migrate this store to `target` (Sec. 5.4). With `intelligent` the
  /// engine matches each target partition to the closest existing one and
  /// applies record-level inserts/deletes (falling back to from-scratch
  /// builds when modifying would cost more); otherwise every partition is
  /// rebuilt from scratch. Returns the number of records inserted+deleted
  /// (the work measure behind Figs. 5.17b/5.19b).
  uint64_t MigrateTo(const DatasetAccessor& ds, const Partitioning& target,
                     bool intelligent);

  /// Online maintenance (Sec. 5.4): add a newly committed version (already
  /// visible through `ds`) to partition `partition`, or to a brand new
  /// partition when `partition` < 0. Returns the partition used.
  Result<int> AddVersion(const DatasetAccessor& ds, int version,
                         int partition);

  /// Read-only introspection for the invariant validator and fsck
  /// (core/validate.h).
  const minidb::Table& partition_data_table(int p) const {
    return parts_[p].data;
  }
  const minidb::Table& partition_versioning_table(int p) const {
    return parts_[p].versioning;
  }
  bool partition_rid_clustered(int p) const {
    return parts_[p].rid_clustered;
  }

 private:
  /// Test-only backdoor: the validator tests corrupt a store through this
  /// to verify each seeded violation is detected. Defined in the tests.
  friend struct PartitionedStoreTestAccess;

  struct Part {
    minidb::Table data;        // [_rid, attrs...]
    minidb::Table versioning;  // [vid, rlist]
    /// True while the data table is physically ordered by rid (the paper's
    /// preferred clustering, Sec. 5.5.5); enables the sorted-merge checkout
    /// join. Build/MigrateTo sort and set it; appends clear it when they
    /// break the ascending run.
    bool rid_clustered = true;  // empty table is trivially ordered
    /// True while every stored rlist is sorted — tracked once at
    /// insert/migrate time so checkout does not re-run std::is_sorted over
    /// the full rlist on every call. Compressed rlist cells are sorted by
    /// construction; this covers the plain-vector fallback.
    bool rlists_sorted = true;
    Part(const std::string& name, int num_attributes);
  };

  static minidb::Schema DataSchema(int num_attributes);
  static void FillPartition(const DatasetAccessor& ds,
                            const std::vector<int>& versions, Part* part);
  static void AppendVersionRecords(const DatasetAccessor& ds, int version,
                                   const std::vector<RecordId>& missing,
                                   Part* part);
  /// Physically re-cluster a partition's data table on rid (no-op when
  /// already ordered) and mark it clustered.
  static void ClusterOnRid(Part* part);

  std::vector<Part> parts_;
  std::vector<int> partition_of_;
  int num_attributes_ = 0;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_PARTITION_STORE_H_
