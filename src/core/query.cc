#include "core/query.h"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/string_util.h"

namespace orpheus::core {

using minidb::ColumnDef;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

bool Condition::Matches(const Value& v) const {
  if (v.is_null()) return false;
  switch (op) {
    case Op::kEq: return v == value;
    case Op::kNe: return v != value;
    case Op::kLt: return v < value;
    case Op::kLe: return !(value < v);
    case Op::kGt: return value < v;
    case Op::kGe: return !(v < value);
  }
  return false;
}

namespace {

// Evaluate all conditions over row r of a materialized version table.
bool RowMatches(const Table& t, uint32_t r, const std::vector<Condition>& where,
                const std::vector<int>& cond_cols) {
  for (size_t i = 0; i < where.size(); ++i) {
    if (cond_cols[i] < 0) return false;
    if (!where[i].Matches(t.GetValue(r, static_cast<size_t>(cond_cols[i])))) {
      return false;
    }
  }
  return true;
}

std::vector<int> ResolveConditionColumns(const Table& t,
                                         const std::vector<Condition>& where) {
  std::vector<int> cols;
  cols.reserve(where.size());
  for (const auto& c : where) cols.push_back(t.schema().FindColumn(c.column));
  return cols;
}

}  // namespace

Result<Table> SelectFromVersions(const Cvd& cvd,
                                 const std::vector<VersionId>& vids,
                                 const std::vector<Condition>& where,
                                 const std::vector<std::string>& cols,
                                 int64_t limit) {
  if (vids.empty()) return Status::InvalidArgument("no versions given");
  // Output schema: vid, then _rid + requested columns.
  std::vector<ColumnDef> out_cols = {{"vid", ValueType::kInt64}};
  const Schema& data_schema = cvd.backend()->data_schema();
  std::vector<std::string> selected = cols;
  if (selected.empty()) {
    selected.push_back("_rid");
    for (const auto& def : data_schema.columns()) selected.push_back(def.name);
  }
  for (const auto& name : selected) {
    if (name == "_rid") {
      out_cols.push_back({"_rid", ValueType::kInt64});
      continue;
    }
    int k = data_schema.FindColumn(name);
    if (k < 0) {
      return Status::InvalidArgument(
          StrFormat("unknown column %s", name.c_str()));
    }
    out_cols.push_back(data_schema.column(static_cast<size_t>(k)));
  }
  Table out("query_result", Schema(out_cols));

  int64_t emitted = 0;
  for (VersionId vid : vids) {
    if (vid < 1 || vid > cvd.num_versions()) {
      return Status::NotFound(StrFormat("version %d does not exist", vid));
    }
    auto mat = cvd.backend()->Checkout(vid - 1, "q_tmp");
    if (!mat.ok()) return mat.status();
    const Table& t = *mat;
    std::vector<int> cond_cols = ResolveConditionColumns(t, where);
    std::vector<int> sel_cols;
    for (const auto& name : selected) {
      sel_cols.push_back(t.schema().FindColumn(name));
    }
    for (uint32_t r = 0; r < t.num_rows(); ++r) {
      if (!RowMatches(t, r, where, cond_cols)) continue;
      Row row;
      row.reserve(sel_cols.size() + 1);
      row.emplace_back(static_cast<int64_t>(vid));
      for (int c : sel_cols) {
        row.push_back(c >= 0 ? t.GetValue(r, static_cast<size_t>(c))
                             : Value::Null());
      }
      out.AppendRowUnchecked(row);
      if (limit >= 0 && ++emitted >= limit) return out;
    }
  }
  return out;
}

Result<Table> AggregateByVersion(const Cvd& cvd, AggFunc func,
                                 const std::string& col,
                                 const std::vector<Condition>& where) {
  const char* agg_name = "agg";
  switch (func) {
    case AggFunc::kCount: agg_name = "count"; break;
    case AggFunc::kSum: agg_name = "sum"; break;
    case AggFunc::kAvg: agg_name = "avg"; break;
    case AggFunc::kMin: agg_name = "min"; break;
    case AggFunc::kMax: agg_name = "max"; break;
  }
  Table out("agg_result", Schema({{"vid", ValueType::kInt64},
                                  {agg_name, ValueType::kDouble}}));
  for (VersionId vid = 1; vid <= cvd.num_versions(); ++vid) {
    auto mat = cvd.backend()->Checkout(vid - 1, "q_tmp");
    if (!mat.ok()) return mat.status();
    const Table& t = *mat;
    std::vector<int> cond_cols = ResolveConditionColumns(t, where);
    int agg_col = col == "*" ? -1 : t.schema().FindColumn(col);
    if (col != "*" && agg_col < 0) {
      return Status::InvalidArgument(StrFormat("unknown column %s",
                                               col.c_str()));
    }
    double acc = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    int64_t n = 0;
    for (uint32_t r = 0; r < t.num_rows(); ++r) {
      if (!RowMatches(t, r, where, cond_cols)) continue;
      ++n;
      if (agg_col >= 0) {
        Value v = t.GetValue(r, static_cast<size_t>(agg_col));
        if (!v.is_null()) {
          double x = v.NumericValue();
          acc += x;
          mn = std::min(mn, x);
          mx = std::max(mx, x);
        }
      }
    }
    double result = 0.0;
    switch (func) {
      case AggFunc::kCount: result = static_cast<double>(n); break;
      case AggFunc::kSum: result = acc; break;
      case AggFunc::kAvg: result = n > 0 ? acc / static_cast<double>(n) : 0.0;
        break;
      case AggFunc::kMin: result = n > 0 ? mn : 0.0; break;
      case AggFunc::kMax: result = n > 0 ? mx : 0.0; break;
    }
    Row row;
    row.emplace_back(static_cast<int64_t>(vid));
    row.emplace_back(result);
    out.AppendRowUnchecked(row);
  }
  return out;
}

// ---------------------------------------------------------------------------
// A small recursive-descent parser for the two supported SQL forms.
// ---------------------------------------------------------------------------

namespace {

struct Tokenizer {
  explicit Tokenizer(const std::string& sql) : s(sql) {}

  std::string Next() {
    SkipSpace();
    if (pos >= s.size()) return "";
    char c = s[pos];
    if (c == ',' || c == '(' || c == ')' || c == '*') {
      ++pos;
      return std::string(1, c);
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t end = s.find(quote, pos + 1);
      if (end == std::string::npos) end = s.size();
      std::string tok = s.substr(pos, end - pos + 1);
      pos = end + 1;
      return tok;
    }
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      size_t start = pos;
      ++pos;
      if (pos < s.size() && (s[pos] == '=' || s[pos] == '>')) ++pos;
      return s.substr(start, pos - start);
    }
    size_t start = pos;
    while (pos < s.size() && !std::isspace(static_cast<unsigned char>(s[pos])) &&
           s[pos] != ',' && s[pos] != '(' && s[pos] != ')' && s[pos] != '<' &&
           s[pos] != '>' && s[pos] != '=' && s[pos] != '!') {
      ++pos;
    }
    return s.substr(start, pos - start);
  }

  std::string Peek() {
    size_t saved = pos;
    std::string tok = Next();
    pos = saved;
    return tok;
  }

  void SkipSpace() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }

  const std::string& s;
  size_t pos = 0;
};

bool IsKeyword(const std::string& tok, const char* kw) {
  return ToLower(tok) == kw;
}

Result<Value> ParseLiteral(const std::string& tok) {
  if (tok.empty()) return Status::InvalidArgument("missing literal");
  if (tok.front() == '\'' || tok.front() == '"') {
    if (tok.size() < 2) return Status::InvalidArgument("bad string literal");
    return Value(tok.substr(1, tok.size() - 2));
  }
  // Numeric: integer unless it contains '.' or 'e'.
  bool is_double = tok.find('.') != std::string::npos ||
                   tok.find('e') != std::string::npos ||
                   tok.find('E') != std::string::npos;
  char* end = nullptr;
  if (is_double) {
    double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str()) return Status::InvalidArgument("bad literal");
    return Value(d);
  }
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str()) return Status::InvalidArgument("bad literal");
  return Value(static_cast<int64_t>(v));
}

Result<Condition::Op> ParseOp(const std::string& tok) {
  if (tok == "=" || tok == "==") return Condition::Op::kEq;
  if (tok == "!=" || tok == "<>") return Condition::Op::kNe;
  if (tok == "<") return Condition::Op::kLt;
  if (tok == "<=") return Condition::Op::kLe;
  if (tok == ">") return Condition::Op::kGt;
  if (tok == ">=") return Condition::Op::kGe;
  return Status::InvalidArgument(StrFormat("bad operator %s", tok.c_str()));
}

Status ParseWhere(Tokenizer* tz, std::vector<Condition>* where) {
  while (true) {
    Condition cond;
    cond.column = tz->Next();
    if (cond.column.empty()) return Status::InvalidArgument("missing column");
    auto op = ParseOp(tz->Next());
    if (!op.ok()) return op.status();
    cond.op = *op;
    auto lit = ParseLiteral(tz->Next());
    if (!lit.ok()) return lit.status();
    cond.value = *lit;
    where->push_back(std::move(cond));
    if (!IsKeyword(tz->Peek(), "and")) break;
    tz->Next();  // consume AND
  }
  return Status::OK();
}

}  // namespace

Result<Table> RunQuery(const Cvd& cvd, const std::string& sql) {
  Tokenizer tz(sql);
  if (!IsKeyword(tz.Next(), "select")) {
    return Status::InvalidArgument("query must start with SELECT");
  }

  // Select list.
  std::vector<std::string> select_list;
  while (true) {
    std::string tok = tz.Next();
    if (tok.empty()) return Status::InvalidArgument("unexpected end of query");
    if (IsKeyword(tok, "from")) break;
    if (tok == ",") continue;
    if (tok == "(" || tok == ")") {
      select_list.push_back(tok);
      continue;
    }
    select_list.push_back(tok);
  }

  // Aggregate form: SELECT vid, AGG(col) FROM CVD name ... GROUP BY vid
  bool is_agg = select_list.size() >= 2 && ToLower(select_list[0]) == "vid";
  if (is_agg) {
    AggFunc func;
    std::string fname = ToLower(select_list[1]);
    if (fname == "count") {
      func = AggFunc::kCount;
    } else if (fname == "sum") {
      func = AggFunc::kSum;
    } else if (fname == "avg") {
      func = AggFunc::kAvg;
    } else if (fname == "min") {
      func = AggFunc::kMin;
    } else if (fname == "max") {
      func = AggFunc::kMax;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown aggregate %s", fname.c_str()));
    }
    // select_list: vid count ( col ) ...
    std::string col = "*";
    for (size_t i = 2; i < select_list.size(); ++i) {
      if (select_list[i] != "(" && select_list[i] != ")") {
        col = select_list[i];
        break;
      }
    }
    if (!IsKeyword(tz.Next(), "cvd")) {
      return Status::InvalidArgument("expected FROM CVD");
    }
    std::string cvd_name = tz.Next();
    if (cvd_name != cvd.name()) {
      return Status::NotFound(StrFormat("unknown CVD %s", cvd_name.c_str()));
    }
    std::vector<Condition> where;
    std::string tok = tz.Next();
    if (IsKeyword(tok, "where")) {
      ORPHEUS_RETURN_NOT_OK(ParseWhere(&tz, &where));
      tok = tz.Next();
    }
    if (!IsKeyword(tok, "group")) {
      return Status::InvalidArgument("aggregate query requires GROUP BY vid");
    }
    tz.Next();  // BY
    tz.Next();  // vid
    return AggregateByVersion(cvd, func, col, where);
  }

  // Plain form: SELECT cols FROM VERSION v1,v2 OF CVD name [WHERE] [LIMIT]
  if (!IsKeyword(tz.Next(), "version")) {
    return Status::InvalidArgument("expected FROM VERSION");
  }
  std::vector<VersionId> vids;
  while (true) {
    std::string tok = tz.Next();
    if (tok == ",") continue;
    if (IsKeyword(tok, "of")) break;
    char* end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str()) {
      return Status::InvalidArgument(
          StrFormat("bad version id %s", tok.c_str()));
    }
    vids.push_back(static_cast<VersionId>(v));
  }
  if (!IsKeyword(tz.Next(), "cvd")) {
    return Status::InvalidArgument("expected OF CVD");
  }
  std::string cvd_name = tz.Next();
  if (cvd_name != cvd.name()) {
    return Status::NotFound(StrFormat("unknown CVD %s", cvd_name.c_str()));
  }
  std::vector<Condition> where;
  int64_t limit = -1;
  std::string tok = tz.Next();
  if (IsKeyword(tok, "where")) {
    ORPHEUS_RETURN_NOT_OK(ParseWhere(&tz, &where));
    tok = tz.Next();
  }
  if (IsKeyword(tok, "limit")) {
    auto lit = ParseLiteral(tz.Next());
    if (!lit.ok()) return lit.status();
    limit = lit->AsInt();
  }
  std::vector<std::string> cols;
  if (!(select_list.size() == 1 && select_list[0] == "*")) {
    cols = select_list;
  }
  return SelectFromVersions(cvd, vids, where, cols, limit);
}

}  // namespace orpheus::core
