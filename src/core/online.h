#ifndef ORPHEUS_CORE_ONLINE_H_
#define ORPHEUS_CORE_ONLINE_H_

#include <cstdint>
#include <vector>

#include "core/lyresplit.h"
#include "core/partitioning.h"
#include "core/version_graph.h"

namespace orpheus::core {

/// Online maintenance of a LyreSplit partitioning while versions stream in
/// (Sec. 5.4). The maintainer places each new version either into the
/// partition of its best parent or into a fresh partition, tracks the
/// current (estimated) checkout cost C_avg against the best cost C*_avg
/// LyreSplit could achieve, and reports when the tolerance factor µ is
/// exceeded so the migration engine can be invoked.
class OnlineMaintainer {
 public:
  struct Options {
    double mu = 1.5;            // tolerance factor on C_avg / C*_avg
    double gamma_factor = 2.0;  // storage threshold γ = factor * |R|
    /// Recompute C*_avg via LyreSplit every `replan_every` commits (the
    /// paper notes LyreSplit is cheap enough to run after every commit;
    /// this knob merely bounds bench time).
    int replan_every = 1;
  };

  /// `graph` must outlive the maintainer and is observed as it grows.
  OnlineMaintainer(const VersionGraph* graph, const Options& options);

  /// Seed with an initial partitioning covering graph versions
  /// [0, initial_versions).
  void Bootstrap(const LyreSplitResult& initial);

  /// Observe that version `v` (== versions_seen()) was committed; place it.
  /// Returns the partition chosen (possibly a new one), and sets
  /// `migration_needed` when C_avg > µ C*_avg.
  int OnCommit(int v, bool* migration_needed);

  /// Adopt the result of a migration: the current partitioning becomes the
  /// last LyreSplit plan.
  void OnMigrated();

  int versions_seen() const { return versions_seen_; }
  const Partitioning& current() const { return current_; }
  const LyreSplitResult& best_plan() const { return best_plan_; }
  /// Current estimated average checkout cost (records).
  double current_checkout_cost() const;
  double best_checkout_cost() const {
    return best_plan_.estimated.checkout_avg;
  }
  uint64_t current_storage() const { return storage_; }

 private:
  void Replan();

  const VersionGraph* graph_;
  Options options_;
  Partitioning current_;
  LyreSplitResult best_plan_;
  double delta_star_ = 0.5;  // δ* from the last LyreSplit invocation
  int versions_seen_ = 0;
  // Per-partition estimated record/version counts for incremental C_avg.
  std::vector<uint64_t> part_records_;
  std::vector<uint64_t> part_versions_;
  uint64_t storage_ = 0;
  uint64_t total_records_ = 0;  // |R| estimate (new records seen)
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_ONLINE_H_
