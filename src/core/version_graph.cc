#include "core/version_graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace orpheus::core {

int VersionGraph::AddVersion(const std::vector<int>& parents,
                             const std::vector<int64_t>& parent_weights,
                             int64_t num_records) {
  assert(parents.size() == parent_weights.size());
  int idx = num_versions();
  parents_.push_back(parents);
  parent_weights_.push_back(parent_weights);
  num_records_.push_back(num_records);
  children_.emplace_back();
  for (int p : parents) {
    assert(p >= 0 && p < idx);
    children_[p].push_back(idx);
  }
  return idx;
}

int64_t VersionGraph::EdgeWeight(int parent, int child) const {
  const auto& ps = parents_[child];
  for (size_t i = 0; i < ps.size(); ++i) {
    if (ps[i] == parent) return parent_weights_[child][i];
  }
  return -1;
}

namespace {

std::vector<int> Walk(int start, int max_hops,
                      const std::vector<std::vector<int>>& adj) {
  std::vector<int> out;
  std::vector<char> seen(adj.size(), 0);
  seen[start] = 1;
  std::deque<std::pair<int, int>> frontier = {{start, 0}};
  while (!frontier.empty()) {
    auto [v, d] = frontier.front();
    frontier.pop_front();
    if (max_hops >= 0 && d >= max_hops) continue;
    for (int next : adj[v]) {
      if (!seen[next]) {
        seen[next] = 1;
        out.push_back(next);
        frontier.emplace_back(next, d + 1);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<int> VersionGraph::Ancestors(int v, int max_hops) const {
  return Walk(v, max_hops, parents_);
}

std::vector<int> VersionGraph::Descendants(int v, int max_hops) const {
  return Walk(v, max_hops, children_);
}

std::vector<int> VersionGraph::Neighborhood(int v, int hops) const {
  std::vector<std::vector<int>> undirected(num_versions());
  for (int u = 0; u < num_versions(); ++u) {
    for (int p : parents_[u]) {
      undirected[u].push_back(p);
      undirected[p].push_back(u);
    }
  }
  return Walk(v, hops, undirected);
}

std::vector<int> VersionGraph::TopologicalLevels() const {
  const int n = num_versions();
  std::vector<int> level(n, 0);
  std::vector<int> indeg(n, 0);
  for (int v = 0; v < n; ++v) indeg[v] = static_cast<int>(parents_[v].size());
  std::deque<int> q;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) {
      level[v] = 1;
      q.push_back(v);
    }
  }
  while (!q.empty()) {
    int v = q.front();
    q.pop_front();
    for (int c : children_[v]) {
      level[c] = std::max(level[c], level[v] + 1);
      if (--indeg[c] == 0) q.push_back(c);
    }
  }
  return level;
}

bool VersionGraph::IsDag() const {
  for (const auto& ps : parents_) {
    if (ps.size() > 1) return true;
  }
  return false;
}

std::vector<int> VersionGraph::ToTree(int64_t* duplicated_records) const {
  const int n = num_versions();
  std::vector<int> tree_parent(n, -1);
  if (duplicated_records) *duplicated_records = 0;
  for (int v = 0; v < n; ++v) {
    if (parents_[v].empty()) continue;
    // Keep the incoming edge with the highest weight (Sec. 5.3.1).
    size_t best = 0;
    for (size_t i = 1; i < parents_[v].size(); ++i) {
      if (parent_weights_[v][i] > parent_weights_[v][best]) best = i;
    }
    tree_parent[v] = parents_[v][best];
    if (duplicated_records && parents_[v].size() > 1) {
      // Records inherited from dropped parents are conceptually re-created:
      // R̂ grows by the records of v not shared with the retained parent.
      *duplicated_records += num_records_[v] - parent_weights_[v][best];
    }
  }
  return tree_parent;
}

uint64_t VersionGraph::TotalBipartiteEdges() const {
  uint64_t total = 0;
  for (int64_t r : num_records_) total += static_cast<uint64_t>(r);
  return total;
}

}  // namespace orpheus::core
