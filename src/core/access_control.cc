#include "core/access_control.h"

#include "common/string_util.h"

namespace orpheus::core {

Status AccessController::CreateUser(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty user name");
  if (!users_.insert(name).second) {
    return Status::AlreadyExists(StrFormat("user %s exists", name.c_str()));
  }
  return Status::OK();
}

Status AccessController::Login(const std::string& name) {
  if (!users_.count(name)) {
    return Status::NotFound(StrFormat("unknown user %s", name.c_str()));
  }
  current_ = name;
  return Status::OK();
}

void AccessController::GrantTable(const std::string& table) {
  table_owner_[table] = current_;
}

Status AccessController::CheckTableAccess(const std::string& table) const {
  auto it = table_owner_.find(table);
  if (it == table_owner_.end()) return Status::OK();  // untracked table
  if (it->second != current_) {
    return Status::InvalidArgument(
        StrFormat("table %s belongs to user %s", table.c_str(),
                  it->second.empty() ? "<anonymous>" : it->second.c_str()));
  }
  return Status::OK();
}

void AccessController::RevokeTable(const std::string& table) {
  table_owner_.erase(table);
}

}  // namespace orpheus::core
