#ifndef ORPHEUS_CORE_VERSION_GRAPH_H_
#define ORPHEUS_CORE_VERSION_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/types.h"

namespace orpheus::core {

/// The version graph G = (V, E): a DAG whose nodes are versions and whose
/// edge (vi -> vj) means vj was derived from vi, weighted by the number of
/// records the two versions share (Sec. 4.3, 5.2).
///
/// Versions are dense indices [0, num_versions) here; the CVD layer maps
/// public VersionIds onto them.
class VersionGraph {
 public:
  VersionGraph() = default;

  /// Add a version with the given parents (indices of existing versions),
  /// per-parent shared-record counts `parent_weights` (same length as
  /// `parents`), and the version's record count. Returns the new index.
  int AddVersion(const std::vector<int>& parents,
                 const std::vector<int64_t>& parent_weights,
                 int64_t num_records);

  int num_versions() const { return static_cast<int>(parents_.size()); }

  const std::vector<int>& parents(int v) const { return parents_[v]; }
  const std::vector<int>& children(int v) const { return children_[v]; }
  int64_t num_records(int v) const { return num_records_[v]; }

  /// Weight (shared records) of the edge parent -> child; -1 if no edge.
  int64_t EdgeWeight(int parent, int child) const;

  /// All ancestors of v (excluding v), via reverse BFS. With `max_hops` >= 0
  /// the walk stops after that many hops (VQuel's P(k)).
  std::vector<int> Ancestors(int v, int max_hops = -1) const;
  /// All descendants of v (excluding v) (VQuel's D(k)).
  std::vector<int> Descendants(int v, int max_hops = -1) const;
  /// Versions exactly or up to `hops` undirected hops away (VQuel's N(k)).
  std::vector<int> Neighborhood(int v, int hops) const;

  /// Topological levels: root(s) at level 1 (Sec. 5.2's l(v)).
  std::vector<int> TopologicalLevels() const;

  /// True if the graph has at least one merge (a node with >1 parent).
  bool IsDag() const;

  /// DAG -> tree reduction (Sec. 5.3.1): for each multi-parent version keep
  /// only the highest-weight incoming edge. Returns, for each version, its
  /// retained parent (-1 for roots), and optionally accumulates |R̂|, the
  /// number of records conceptually duplicated by dropped edges.
  std::vector<int> ToTree(int64_t* duplicated_records = nullptr) const;

  /// Sum over versions of num_records (|E| of the bipartite graph).
  uint64_t TotalBipartiteEdges() const;

 private:
  /// Test-only backdoor: the validator tests seed cycles and adjacency
  /// asymmetries through this to verify detection. Defined in the tests.
  friend struct VersionGraphTestAccess;

  std::vector<std::vector<int>> parents_;
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<int64_t>> parent_weights_;
  std::vector<int64_t> num_records_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_VERSION_GRAPH_H_
