#include "core/lyresplit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace orpheus::core {

namespace {

/// Tree context shared by all LyreSplit variants: the tree reduction of the
/// version graph plus optional schema-awareness (Sec. 5.3.3).
struct TreeCtx {
  const VersionGraph* graph = nullptr;
  std::vector<int> tree_parent;
  std::vector<std::vector<int>> tree_children;
  // Schema-aware inputs (null => fixed schema).
  const std::vector<int>* common_attrs = nullptr;
  int total_attrs = 1;

  void Build(const VersionGraph& g) {
    graph = &g;
    tree_parent = g.ToTree();
    tree_children.assign(g.num_versions(), {});
    for (int v = 0; v < g.num_versions(); ++v) {
      if (tree_parent[v] >= 0) tree_children[tree_parent[v]].push_back(v);
    }
  }

  int64_t NodeSize(int v) const { return graph->num_records(v); }
  int64_t EdgeWeight(int v) const {
    return graph->EdgeWeight(tree_parent[v], v);
  }
  /// The split-candidate test value for the edge into v: w(p,v), or
  /// a(p,v) * w(p,v) in the schema-aware variant.
  int64_t EdgeScore(int v) const {
    int64_t w = EdgeWeight(v);
    if (common_attrs) w *= (*common_attrs)[v];
    return w;
  }
  /// The candidate threshold multiplier: δ|R| or δ|A||R|.
  double ThresholdScale() const {
    return common_attrs ? static_cast<double>(total_attrs) : 1.0;
  }
};

/// The recursive partitioner of Algorithm 5.1.
class Splitter {
 public:
  Splitter(const TreeCtx& ctx, double delta)
      : ctx_(ctx), delta_(delta), n_(ctx.graph->num_versions()) {
    sub_v_.resize(n_);
    sub_e_.resize(n_);
    sub_r_.resize(n_);
    in_comp_.assign(n_, 0);
  }

  Partitioning Run(int* levels_out) {
    partition_of_.assign(n_, -1);
    next_partition_ = 0;
    max_level_ = 0;
    // One recursion per tree root (normally just version 0).
    for (int v = 0; v < n_; ++v) {
      if (ctx_.tree_parent[v] < 0) {
        std::vector<int> nodes = CollectSubtree(v);
        Split(std::move(nodes), v, 0);
      }
    }
    if (levels_out) *levels_out = max_level_;
    Partitioning p;
    p.partition_of = std::move(partition_of_);
    p.num_partitions = next_partition_;
    return p;
  }

 private:
  std::vector<int> CollectSubtree(int root) const {
    std::vector<int> nodes;
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      nodes.push_back(v);
      for (int c : ctx_.tree_children[v]) stack.push_back(c);
    }
    return nodes;
  }

  // Compute subtree aggregates for every node of the component rooted at
  // `root` (restricted to stamped members), in reverse-DFS order.
  void ComputeSubtreeStats(const std::vector<int>& order) {
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      int v = *it;
      sub_v_[v] = 1;
      sub_e_[v] = static_cast<uint64_t>(ctx_.NodeSize(v));
      sub_r_[v] = static_cast<uint64_t>(ctx_.NodeSize(v));
      for (int c : ctx_.tree_children[v]) {
        if (in_comp_[c] != stamp_) continue;
        sub_v_[v] += sub_v_[c];
        sub_e_[v] += sub_e_[c];
        // Union grows by the child's union minus the shared records on the
        // connecting edge (no-cross-version-diff rule).
        sub_r_[v] += sub_r_[c] - static_cast<uint64_t>(ctx_.EdgeWeight(c));
      }
    }
  }

  // DFS order of the component rooted at `root` (parents before children).
  std::vector<int> ComponentOrder(int root) const {
    std::vector<int> order;
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (int c : ctx_.tree_children[v]) {
        if (in_comp_[c] == stamp_) stack.push_back(c);
      }
    }
    return order;
  }

  void Split(std::vector<int> nodes, int root, int level) {
    max_level_ = std::max(max_level_, level);
    // Stamp the component.
    ++stamp_;
    for (int v : nodes) in_comp_[v] = stamp_;
    std::vector<int> order = ComponentOrder(root);
    ComputeSubtreeStats(order);

    const uint64_t comp_v = sub_v_[root];
    const uint64_t comp_e = sub_e_[root];
    const uint64_t comp_r = sub_r_[root];

    // Termination: |R| * |V| < |E| / δ  (Algorithm 5.1, line 1).
    if (static_cast<double>(comp_r) * static_cast<double>(comp_v) <
            static_cast<double>(comp_e) / delta_ ||
        comp_v <= 1) {
      int part = next_partition_++;
      for (int v : nodes) partition_of_[v] = part;
      return;
    }

    // Candidate edges: weight (or a*w in the schema-aware variant) at most
    // δ|R| (resp. δ|A||R|). The sweep only reads the per-node aggregates, so
    // it fans out across the pool for large components; each chunk computes
    // its local winner and the chunk winners fold in component order with
    // the same strict comparisons, which reproduces the serial first-minimum
    // tie-break exactly.
    const double threshold =
        delta_ * ctx_.ThresholdScale() * static_cast<double>(comp_r);
    struct SweepBest {
      int best = -1;
      uint64_t v_gap = std::numeric_limits<uint64_t>::max();
      uint64_t r_gap = std::numeric_limits<uint64_t>::max();
      int fallback = -1;
      int64_t fallback_w = std::numeric_limits<int64_t>::max();
    };
    std::vector<SweepBest> chunk_bests = ParallelCollect<SweepBest>(
        order.size(), 1 << 12,
        [this, &order, root, threshold, comp_v, comp_r](
            size_t lo, size_t hi, std::vector<SweepBest>* out) {
          SweepBest local;
          for (size_t i = lo; i < hi; ++i) {
            int v = order[i];
            if (v == root) continue;
            int64_t score = ctx_.EdgeScore(v);
            if (score < local.fallback_w) {
              local.fallback_w = score;
              local.fallback = v;
            }
            if (static_cast<double>(score) > threshold) continue;
            // Prefer the split balancing version counts; tie-break on
            // records (Sec. 5.2's experimental policy).
            uint64_t v_gap = sub_v_[v] * 2 > comp_v ? sub_v_[v] * 2 - comp_v
                                                    : comp_v - sub_v_[v] * 2;
            uint64_t r_gap = sub_r_[v] * 2 > comp_r ? sub_r_[v] * 2 - comp_r
                                                    : comp_r - sub_r_[v] * 2;
            if (v_gap < local.v_gap ||
                (v_gap == local.v_gap && r_gap < local.r_gap)) {
              local.best = v;
              local.v_gap = v_gap;
              local.r_gap = r_gap;
            }
          }
          out->push_back(local);
        });
    SweepBest sweep;
    for (const SweepBest& c : chunk_bests) {
      if (c.fallback_w < sweep.fallback_w) {
        sweep.fallback_w = c.fallback_w;
        sweep.fallback = c.fallback;
      }
      if (c.best >= 0 &&
          (c.v_gap < sweep.v_gap ||
           (c.v_gap == sweep.v_gap && c.r_gap < sweep.r_gap))) {
        sweep.best = c.best;
        sweep.v_gap = c.v_gap;
        sweep.r_gap = c.r_gap;
      }
    }
    int best = sweep.best;
    if (best < 0) best = sweep.fallback;  // guard; Lemma 5.1 makes this rare
    if (best < 0) {
      int part = next_partition_++;
      for (int v : nodes) partition_of_[v] = part;
      return;
    }

    // Cut the edge into `best`: the lower component is best's subtree.
    std::vector<int> lower;
    {
      std::vector<int> stack = {best};
      while (!stack.empty()) {
        int v = stack.back();
        stack.pop_back();
        lower.push_back(v);
        for (int c : ctx_.tree_children[v]) {
          if (in_comp_[c] == stamp_) stack.push_back(c);
        }
      }
    }
    std::vector<char> in_lower(0);
    ++stamp_;  // re-stamp lower for the membership test below
    for (int v : lower) in_comp_[v] = stamp_;
    std::vector<int> upper;
    upper.reserve(nodes.size() - lower.size());
    for (int v : nodes) {
      if (in_comp_[v] != stamp_) upper.push_back(v);
    }
    Split(std::move(upper), root, level + 1);
    Split(std::move(lower), best, level + 1);
  }

  const TreeCtx& ctx_;
  const double delta_;
  const int n_;
  std::vector<uint64_t> sub_v_, sub_e_, sub_r_;
  std::vector<int> in_comp_;
  int stamp_ = 0;
  std::vector<int> partition_of_;
  int next_partition_ = 0;
  int max_level_ = 0;
};

LyreSplitResult RunWithCtx(const TreeCtx& ctx, double delta) {
  ORPHEUS_TRACE_SPAN("lyresplit.split");
  LyreSplitResult result;
  Splitter splitter(ctx, delta);
  result.partitioning = splitter.Run(&result.recursion_levels);
  result.delta = delta;
  result.estimated = ComputeTreeEstimatedCosts(*ctx.graph, ctx.tree_parent,
                                               result.partitioning);
  ORPHEUS_HISTOGRAM_RECORD("lyresplit.recursion_levels",
                           static_cast<uint64_t>(result.recursion_levels));
  return result;
}

}  // namespace

LyreSplitResult LyreSplitWithDelta(const VersionGraph& graph, double delta) {
  TreeCtx ctx;
  ctx.Build(graph);
  return RunWithCtx(ctx, delta);
}

LyreSplitResult LyreSplitForBudget(const VersionGraph& graph,
                                   uint64_t gamma_records) {
  ORPHEUS_TRACE_SPAN("lyresplit.budget_search");
  TreeCtx ctx;
  ctx.Build(graph);

  // Tree-wide totals determine the δ search range (Sec. 5.2).
  Partitioning single = Partitioning::SinglePartition(graph.num_versions());
  PartitionCosts base =
      ComputeTreeEstimatedCosts(graph, ctx.tree_parent, single);
  const double total_r = static_cast<double>(base.storage);  // |R| (+|R̂|)
  const double total_e = static_cast<double>(graph.TotalBipartiteEdges());
  const double total_v = static_cast<double>(graph.num_versions());

  double lo = total_e / (total_r * total_v);
  double hi = 1.0;
  lo = std::min(lo, hi);

  LyreSplitResult best = RunWithCtx(ctx, lo);
  bool have_feasible = best.estimated.storage <= gamma_records;
  int iterations = 1;
  for (int it = 0; it < 40; ++it) {
    double mid = 0.5 * (lo + hi);
    LyreSplitResult r = RunWithCtx(ctx, mid);
    ++iterations;
    if (r.estimated.storage <= gamma_records) {
      // Feasible: remember it and push for more splits (larger δ).
      if (!have_feasible ||
          r.estimated.checkout_avg < best.estimated.checkout_avg) {
        best = std::move(r);
        have_feasible = true;
      }
      if (best.estimated.storage >=
          0.99 * static_cast<double>(gamma_records)) {
        break;
      }
      lo = mid;
    } else {
      hi = mid;
    }
  }
  best.search_iterations = iterations;
  ORPHEUS_COUNTER_ADD("lyresplit.search_iterations",
                      static_cast<uint64_t>(iterations));
  return best;
}

LyreSplitResult LyreSplitWeighted(const VersionGraph& graph,
                                  const std::vector<int64_t>& freq,
                                  double delta) {
  const int n = graph.num_versions();
  assert(static_cast<int>(freq.size()) == n);
  // Build the expanded tree T' (Sec. 5.3.2): version i becomes a chain of
  // freq[i] copies; the original edge (i, j) connects i's last copy to j's
  // first copy.
  std::vector<int> tree_parent = graph.ToTree();
  VersionGraph expanded;
  std::vector<int> first_copy(n, -1);
  std::vector<int> last_copy(n, -1);
  // Insert versions in an order where parents precede children (version
  // indices already satisfy this: parents have smaller indices).
  for (int v = 0; v < n; ++v) {
    int64_t f = std::max<int64_t>(1, freq[v]);
    for (int64_t c = 0; c < f; ++c) {
      std::vector<int> parents;
      std::vector<int64_t> weights;
      if (c == 0) {
        if (tree_parent[v] >= 0) {
          parents = {last_copy[tree_parent[v]]};
          weights = {graph.EdgeWeight(tree_parent[v], v)};
        }
      } else {
        parents = {last_copy[v]};
        weights = {graph.num_records(v)};  // identical copies share all
      }
      int idx = expanded.AddVersion(parents, weights, graph.num_records(v));
      if (c == 0) first_copy[v] = idx;
      last_copy[v] = idx;
    }
  }

  TreeCtx ctx;
  ctx.Build(expanded);
  LyreSplitResult expanded_result = RunWithCtx(ctx, delta);

  // Post-process: move all copies of a version into the copy-partition with
  // the fewest (estimated) records.
  std::vector<uint64_t> part_records(expanded_result.partitioning.num_partitions,
                                     0);
  {
    auto groups = expanded_result.partitioning.Groups();
    for (int k = 0; k < static_cast<int>(groups.size()); ++k) {
      // Estimate: sum of node sizes is a safe proxy for coalescing choice.
      for (int v : groups[k]) {
        part_records[k] += static_cast<uint64_t>(expanded.num_records(v));
      }
    }
  }
  LyreSplitResult result;
  result.delta = delta;
  result.recursion_levels = expanded_result.recursion_levels;
  result.partitioning.partition_of.resize(n);
  for (int v = 0; v < n; ++v) {
    int best_part = expanded_result.partitioning.partition_of[first_copy[v]];
    for (int c = first_copy[v]; c <= last_copy[v]; ++c) {
      int p = expanded_result.partitioning.partition_of[c];
      if (part_records[p] < part_records[best_part]) best_part = p;
    }
    result.partitioning.partition_of[v] = best_part;
  }
  // Renumber partitions densely.
  std::vector<int> remap(expanded_result.partitioning.num_partitions, -1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    int& p = result.partitioning.partition_of[v];
    if (remap[p] < 0) remap[p] = next++;
    p = remap[p];
  }
  result.partitioning.num_partitions = next;
  TreeCtx orig_ctx;
  orig_ctx.Build(graph);
  result.estimated = ComputeTreeEstimatedCosts(graph, orig_ctx.tree_parent,
                                               result.partitioning);
  return result;
}

LyreSplitResult LyreSplitSchemaAware(const VersionGraph& graph,
                                     const std::vector<int>& attrs_of,
                                     const std::vector<int>& common_attrs,
                                     int total_attrs, double delta) {
  (void)attrs_of;  // node attribute counts inform only the threshold scale
  TreeCtx ctx;
  ctx.Build(graph);
  ctx.common_attrs = &common_attrs;
  ctx.total_attrs = std::max(1, total_attrs);
  return RunWithCtx(ctx, delta);
}

}  // namespace orpheus::core
