#ifndef ORPHEUS_CORE_ACCESS_CONTROL_H_
#define ORPHEUS_CORE_ACCESS_CONTROL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace orpheus::core {

/// The access controller of Fig. 3.1: it tracks registered users, the
/// logged-in user, and which user owns each materialized staging table —
/// "only the user who performed the checkout operation is permitted access
/// to the materialized table" (Sec. 3.3.1).
class AccessController {
 public:
  /// `create_user`: register a user name.
  Status CreateUser(const std::string& name);

  /// `config`: log in as a registered user.
  Status Login(const std::string& name);

  /// `whoami`: the current user ("" when not logged in).
  const std::string& current_user() const { return current_; }

  bool HasUser(const std::string& name) const {
    return users_.count(name) > 0;
  }
  std::vector<std::string> Users() const {
    return {users_.begin(), users_.end()};
  }

  /// Record that the current user owns `table` (called on checkout).
  void GrantTable(const std::string& table);

  /// Verify the current user may touch `table`; owners only.
  Status CheckTableAccess(const std::string& table) const;

  /// Drop ownership bookkeeping (called when the table is committed or
  /// dropped).
  void RevokeTable(const std::string& table);

 private:
  std::set<std::string> users_;
  std::string current_;
  std::map<std::string, std::string> table_owner_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_ACCESS_CONTROL_H_
