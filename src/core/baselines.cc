#include "core/baselines.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace orpheus::core {

namespace {

uint64_t MixRid(uint64_t x, uint64_t salt) {
  x += salt + 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Min-hash shingle signature of a record set: the k smallest hash values.
std::vector<uint64_t> Shingles(const std::vector<RecordId>& records, int k,
                               uint64_t salt) {
  std::vector<uint64_t> hashes;
  hashes.reserve(records.size());
  for (RecordId r : records) {
    hashes.push_back(MixRid(static_cast<uint64_t>(r), salt));
  }
  std::sort(hashes.begin(), hashes.end());
  if (static_cast<int>(hashes.size()) > k) hashes.resize(k);
  return hashes;
}

int64_t CommonSorted(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  int64_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

Partitioning AggloPartition(const RecordSetView& view,
                            const AggloOptions& options) {
  ORPHEUS_TRACE_SPAN("agglo.partition");
  const int n = view.num_versions;
  struct Part {
    std::vector<int> versions;
    std::vector<RecordId> records;    // sorted union
    std::vector<uint64_t> signature;  // min-hash shingles
    bool alive = true;
  };
  std::vector<Part> parts(n);
  // Signature construction (hash + sort per version) dominates setup for
  // large datasets; each iteration writes only its own slot.
  ParallelFor(0, static_cast<size_t>(n), 16,
              [&parts, &view, &options](size_t lo, size_t hi) {
                for (size_t v = lo; v < hi; ++v) {
                  parts[v].versions = {static_cast<int>(v)};
                  parts[v].records = view.records_of(static_cast<int>(v));
                  parts[v].signature = Shingles(
                      parts[v].records, options.num_shingles, options.seed);
                }
              });

  // Threshold τ: sampled median of pairwise shingle overlaps (the paper
  // sets τ via uniform sampling).
  Xorshift rng(options.seed);
  std::vector<int64_t> samples;
  for (int s = 0; s < 64 && n >= 2; ++s) {
    int a = static_cast<int>(rng.Uniform(n));
    int b = static_cast<int>(rng.Uniform(n));
    if (a == b) continue;
    samples.push_back(CommonSorted(parts[a].signature, parts[b].signature));
  }
  int64_t tau = 1;
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    tau = std::max<int64_t>(1, samples[samples.size() / 2]);
  }

  // Order partitions by their smallest shingle (shingle-based ordering).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&parts](int a, int b) {
    uint64_t ka = parts[a].signature.empty() ? 0 : parts[a].signature[0];
    uint64_t kb = parts[b].signature.empty() ? 0 : parts[b].signature[0];
    return ka < kb;
  });

  bool merged_any = true;
  uint64_t merges = 0;
  uint64_t rounds = 0;
  while (merged_any) {
    merged_any = false;
    ++rounds;
    for (size_t i = 0; i < order.size(); ++i) {
      int pi = order[i];
      if (!parts[pi].alive) continue;
      int best = -1;
      int64_t best_common = tau - 1;
      int scanned = 0;
      for (size_t j = i + 1; j < order.size() && scanned < options.lookahead;
           ++j) {
        int pj = order[j];
        if (!parts[pj].alive) continue;
        ++scanned;
        int64_t common = CommonSorted(parts[pi].signature, parts[pj].signature);
        if (common <= best_common) continue;
        if (options.capacity > 0) {
          // Capacity check on the merged union (upper bound: sum of sizes).
          uint64_t upper =
              parts[pi].records.size() + parts[pj].records.size();
          if (upper > options.capacity) {
            std::vector<RecordId> u;
            std::set_union(parts[pi].records.begin(), parts[pi].records.end(),
                           parts[pj].records.begin(), parts[pj].records.end(),
                           std::back_inserter(u));
            if (u.size() > options.capacity) continue;
          }
        }
        best = pj;
        best_common = common;
      }
      if (best >= 0) {
        Part& a = parts[pi];
        Part& b = parts[best];
        std::vector<RecordId> u;
        u.reserve(a.records.size() + b.records.size());
        std::set_union(a.records.begin(), a.records.end(), b.records.begin(),
                       b.records.end(), std::back_inserter(u));
        a.records = std::move(u);
        a.versions.insert(a.versions.end(), b.versions.begin(),
                          b.versions.end());
        a.signature = Shingles(a.records, options.num_shingles, options.seed);
        b.alive = false;
        b.records.clear();
        merged_any = true;
        ++merges;
      }
    }
  }
  ORPHEUS_COUNTER_ADD("agglo.merges", merges);
  ORPHEUS_COUNTER_ADD("agglo.merge_rounds", rounds);

  Partitioning out;
  out.partition_of.assign(n, -1);
  for (auto& p : parts) {
    if (!p.alive) continue;
    int id = out.num_partitions++;
    for (int v : p.versions) out.partition_of[v] = id;
  }
  return out;
}

Partitioning KmeansPartition(const RecordSetView& view,
                             const KmeansOptions& options) {
  ORPHEUS_TRACE_SPAN("kmeans.partition");
  const int n = view.num_versions;
  const int k = std::min(options.k, n);
  Xorshift rng(options.seed);

  // Seed centroids with K distinct random versions.
  std::vector<std::unordered_set<RecordId>> centroids(k);
  for (uint64_t pick : rng.SampleWithoutReplacement(n, k)) {
    const auto& rs = view.records_of(static_cast<int>(pick));
    size_t c = centroids.size();
    for (size_t i = 0; i < centroids.size(); ++i) {
      if (centroids[i].empty()) {
        c = i;
        break;
      }
    }
    if (c < centroids.size()) centroids[c].insert(rs.begin(), rs.end());
  }

  std::vector<int> assign(n, 0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    if (options.capacity == 0) {
      // Uncapacitated assignment depends only on the (frozen) centroids, so
      // versions score independently; each writes its own assign slot.
      ParallelFor(0, static_cast<size_t>(n), 4,
                  [&view, &centroids, &assign, k](size_t lo, size_t hi) {
                    for (size_t v = lo; v < hi; ++v) {
                      const auto& rs = view.records_of(static_cast<int>(v));
                      int best = 0;
                      int64_t best_common = -1;
                      for (int c = 0; c < k; ++c) {
                        int64_t common = 0;
                        for (RecordId r : rs) common += centroids[c].count(r);
                        if (common > best_common) {
                          best_common = common;
                          best = c;
                        }
                      }
                      assign[v] = best;
                    }
                  });
    } else {
      // Capacitated assignment is inherently sequential: each placement
      // consumes capacity that constrains later versions.
      std::vector<uint64_t> part_sizes(k, 0);
      for (int v = 0; v < n; ++v) {
        const auto& rs = view.records_of(v);
        int best = 0;
        int64_t best_common = -1;
        for (int c = 0; c < k; ++c) {
          int64_t common = 0;
          for (RecordId r : rs) common += centroids[c].count(r);
          if (common > best_common) {
            if (part_sizes[c] + rs.size() > options.capacity) continue;
            best_common = common;
            best = c;
          }
        }
        assign[v] = best;
        part_sizes[best] += rs.size();
      }
    }
    // Update: centroid becomes the union of its members. Group members
    // serially (cheap), then rebuild each centroid in parallel — clusters
    // touch disjoint sets, and set contents are order-insensitive.
    std::vector<std::vector<int>> members(k);
    for (int v = 0; v < n; ++v) members[assign[v]].push_back(v);
    ParallelFor(0, static_cast<size_t>(k), 1,
                [&centroids, &members, &view](size_t lo, size_t hi) {
                  for (size_t c = lo; c < hi; ++c) {
                    centroids[c].clear();
                    for (int v : members[c]) {
                      const auto& rs = view.records_of(v);
                      centroids[c].insert(rs.begin(), rs.end());
                    }
                  }
                });
  }

  ORPHEUS_COUNTER_ADD("kmeans.iterations",
                      static_cast<uint64_t>(options.iterations));

  // Renumber non-empty clusters densely.
  Partitioning out;
  out.partition_of.assign(n, -1);
  std::vector<int> remap(k, -1);
  for (int v = 0; v < n; ++v) {
    int c = assign[v];
    if (remap[c] < 0) remap[c] = out.num_partitions++;
    out.partition_of[v] = remap[c];
  }
  return out;
}

namespace {

// Shared binary-search scaffolding for the baselines: sweep a parameter,
// keep the best feasible partitioning (storage <= gamma).
template <typename RunFn>
Partitioning SearchParameter(const RecordSetView& view, uint64_t gamma,
                             int64_t lo, int64_t hi, RunFn run,
                             int* iterations_out) {
  Partitioning best = Partitioning::SinglePartition(view.num_versions);
  double best_checkout = std::numeric_limits<double>::infinity();
  bool have = false;
  int iterations = 0;
  while (lo <= hi) {
    int64_t mid = lo + (hi - lo) / 2;
    Partitioning p = run(mid);
    PartitionCosts costs = ComputeExactCosts(view, p);
    ++iterations;
    if (costs.storage <= gamma) {
      if (!have || costs.checkout_avg < best_checkout) {
        best = std::move(p);
        best_checkout = costs.checkout_avg;
        have = true;
      }
      if (costs.storage >= 0.99 * static_cast<double>(gamma)) break;
      // Feasible: allow more duplication (more partitions).
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
    if (iterations >= 12) break;
  }
  if (iterations_out) *iterations_out = iterations;
  ORPHEUS_COUNTER_ADD("agglo.search_iterations",
                      static_cast<uint64_t>(iterations));
  return best;
}

}  // namespace

Partitioning AggloForBudget(const RecordSetView& view, uint64_t gamma_records,
                            int* iterations_out) {
  // BC ranges from one version's records up to everything.
  uint64_t total = 0;
  uint64_t max_version = 0;
  for (int v = 0; v < view.num_versions; ++v) {
    total += view.records_of(v).size();
    max_version = std::max<uint64_t>(max_version, view.records_of(v).size());
  }
  return SearchParameter(
      view, gamma_records, static_cast<int64_t>(max_version),
      static_cast<int64_t>(total),
      [&view](int64_t bc) {
        AggloOptions opt;
        opt.capacity = static_cast<uint64_t>(bc);
        return AggloPartition(view, opt);
      },
      iterations_out);
}

Partitioning KmeansForBudget(const RecordSetView& view, uint64_t gamma_records,
                             int* iterations_out) {
  // K ranges from 1 (all together) to |V| (fully split). Larger K => more
  // storage, lower checkout cost, so the search is inverted vs Agglo's BC.
  Partitioning best = Partitioning::SinglePartition(view.num_versions);
  double best_checkout = std::numeric_limits<double>::infinity();
  bool have = false;
  int iterations = 0;
  int64_t lo = 1;
  // K beyond a few dozen clusters is never competitive and each KMeans run
  // costs O(iters * |V| * K * version-size); bound the search like the
  // paper bounds wall-clock time.
  int64_t hi = std::min<int64_t>(view.num_versions, 64);
  while (lo <= hi) {
    int64_t mid = lo + (hi - lo) / 2;
    KmeansOptions opt;
    opt.k = static_cast<int>(mid);
    Partitioning p = KmeansPartition(view, opt);
    PartitionCosts costs = ComputeExactCosts(view, p);
    ++iterations;
    if (costs.storage <= gamma_records) {
      if (!have || costs.checkout_avg < best_checkout) {
        best = std::move(p);
        best_checkout = costs.checkout_avg;
        have = true;
      }
      if (costs.storage >= 0.99 * static_cast<double>(gamma_records)) break;
      lo = mid + 1;  // afford more clusters
    } else {
      hi = mid - 1;
    }
    if (iterations >= 12) break;
  }
  if (iterations_out) *iterations_out = iterations;
  ORPHEUS_COUNTER_ADD("kmeans.search_iterations",
                      static_cast<uint64_t>(iterations));
  return best;
}

}  // namespace orpheus::core
