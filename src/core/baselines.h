#ifndef ORPHEUS_CORE_BASELINES_H_
#define ORPHEUS_CORE_BASELINES_H_

#include <cstdint>
#include <vector>

#include "core/partitioning.h"

namespace orpheus::core {

/// NScale's agglomerative-clustering partitioner (Algorithm 4 of [61]),
/// mapped to the versioning setting (Sec. 5.5.1): partitions start as single
/// versions, are ordered by min-hash shingles, and are merged with the
/// following candidates sharing the most shingles, subject to a per-
/// partition record capacity BC.
struct AggloOptions {
  uint64_t capacity = 0;      // BC: max records per partition (0 = infinite)
  int num_shingles = 24;      // min-hash signature width
  int lookahead = 100;        // l: candidate window in shingle order
  uint64_t seed = 7;
};
Partitioning AggloPartition(const RecordSetView& view,
                            const AggloOptions& options);

/// NScale's K-Means-clustering partitioner (Algorithm 5 of [61]): K seed
/// versions become centroids (their record sets); versions are assigned to
/// the centroid sharing the most records; centroids update to the union of
/// their members. Quadratic-ish and slow by design — the paper's point.
struct KmeansOptions {
  int k = 8;
  int iterations = 10;
  uint64_t capacity = 0;  // BC (0 = infinite)
  uint64_t seed = 7;
};
Partitioning KmeansPartition(const RecordSetView& view,
                             const KmeansOptions& options);

/// Binary-search drivers mirroring Sec. 5.5.1: find the parameter (BC for
/// Agglo, K for KMeans) whose partitioning minimizes checkout cost while
/// keeping storage <= gamma_records. `iterations_out` reports the number of
/// search iterations (Figs. 5.10/5.12).
Partitioning AggloForBudget(const RecordSetView& view, uint64_t gamma_records,
                            int* iterations_out = nullptr);
Partitioning KmeansForBudget(const RecordSetView& view, uint64_t gamma_records,
                             int* iterations_out = nullptr);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_BASELINES_H_
