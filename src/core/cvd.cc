#include "core/cvd.h"

#include <algorithm>
#include <unordered_set>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/validate.h"

namespace orpheus::core {

using minidb::ColumnDef;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

namespace {

// Rank types by generality for single-pool widening (int < double < string).
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return 1;
    case ValueType::kDouble: return 2;
    case ValueType::kString: return 3;
    default: return 4;
  }
}

Value CoerceValue(const Value& v, ValueType to) {
  if (v.is_null() || v.type() == to) return v;
  if (to == ValueType::kDouble &&
      (v.type() == ValueType::kInt64)) {
    return Value(static_cast<double>(v.AsInt()));
  }
  if (to == ValueType::kString) {
    return Value(v.ToString());
  }
  return v;
}

// What a stored value becomes when its column is widened to `to`. Must
// mirror minidb::Column::Widen exactly (NOT CoerceValue: Column::Widen
// stringifies doubles with std::to_string, CoerceValue with %g), because
// commit planning compares staged payloads against stored records as if
// the planned widenings had already been applied.
Value WidenStoredValue(const Value& v, ValueType to) {
  if (v.is_null() || v.type() == to) return v;
  if (v.type() == ValueType::kInt64 && to == ValueType::kDouble) {
    return Value(static_cast<double>(v.AsInt()));
  }
  if (to == ValueType::kString) {
    if (v.type() == ValueType::kInt64) return Value(std::to_string(v.AsInt()));
    if (v.type() == ValueType::kDouble) {
      return Value(std::to_string(v.AsDouble()));
    }
  }
  return v;
}

}  // namespace

namespace {

// With ORPHEUS_VALIDATE set, re-check the CVD's invariants after a mutating
// operation and abort on damage (see core/validate.h).
void MaybeValidate(const Cvd& cvd, const char* op) {
  if (!ValidationEnabled()) return;
  ValidationReport report;
  ValidateCvd(cvd, &report);
  DieIfViolations(report, op);
}

}  // namespace

Cvd::Cvd(std::string name, Options options, Schema data_schema)
    : name_(std::move(name)),
      options_(std::move(options)),
      backend_(DataModelBackend::Create(options_.model, data_schema)) {
  for (const auto& def : data_schema.columns()) {
    RegisterAttribute(def.name, def.type);
  }
}

void Cvd::RegisterAttribute(const std::string& attr_name, ValueType type) {
  AttributeInfo info;
  info.attr_id = static_cast<int>(attributes_.size());
  info.name = attr_name;
  info.type = type;
  attributes_.push_back(info);
  // The most recent registration for a position becomes current; callers
  // update current_attr_ids_ explicitly for widenings.
  current_attr_ids_.push_back(info.attr_id);
}

Result<std::unique_ptr<Cvd>> Cvd::Init(const std::string& name,
                                       const Table& initial,
                                       const Options& options) {
  // Validate the PK attributes exist.
  Schema data_schema = initial.schema();
  bool has_rid = data_schema.num_columns() > 0 &&
                 data_schema.column(0).name == "_rid";
  if (has_rid) {
    std::vector<ColumnDef> cols(data_schema.columns().begin() + 1,
                                data_schema.columns().end());
    data_schema = Schema(std::move(cols));
  }
  for (const auto& pk : options.primary_key) {
    if (data_schema.FindColumn(pk) < 0) {
      return Status::InvalidArgument(
          StrFormat("primary key attribute %s not in schema", pk.c_str()));
    }
  }
  std::unique_ptr<Cvd> cvd(new Cvd(name, options, data_schema));
  auto vid = cvd->CommitTable(initial, {}, "init " + name);
  if (!vid.ok()) return vid.status();
  return cvd;
}

Status Cvd::ValidateVersion(VersionId vid) const {
  if (vid < 1 || vid > num_versions()) {
    return Status::NotFound(StrFormat("version %d does not exist", vid));
  }
  return Status::OK();
}

Result<minidb::Table> Cvd::Materialize(const std::vector<VersionId>& vids,
                                       const std::string& table_name) const {
  if (vids.empty()) {
    return Status::InvalidArgument("checkout requires at least one version");
  }
  for (VersionId vid : vids) ORPHEUS_RETURN_NOT_OK(ValidateVersion(vid));

  ORPHEUS_TRACE_SPAN("cvd.checkout");
  ORPHEUS_COUNTER_ADD("cvd.checkout.versions_merged", vids.size());

  // Materialize the first (highest-precedence) version.
  auto first = backend_->Checkout(DenseId(vids[0]), table_name);
  if (!first.ok()) return first.status();
  Table merged = first.MoveValueOrDie();

  if (vids.size() > 1) {
    // Precedence merge on the primary key: a record whose PK was already
    // added is omitted (Sec. 3.3.1). Without a PK, rid identity is used.
    std::vector<int> pk_cols;
    for (const auto& pk : options_.primary_key) {
      int c = merged.schema().FindColumn(pk);
      if (c >= 0) pk_cols.push_back(c);
    }
    auto key_of = [&pk_cols](const Table& t, uint32_t r) {
      if (pk_cols.empty()) return t.GetValue(r, 0).ToString();
      std::string key;
      for (int c : pk_cols) {
        key += t.GetValue(r, static_cast<size_t>(c)).ToString();
        key += '\x1f';
      }
      return key;
    };
    ORPHEUS_TRACE_SPAN("cvd.merge");
    std::unordered_set<std::string> seen;
    seen.reserve(merged.num_rows() * 2);
    for (uint32_t r = 0; r < merged.num_rows(); ++r) {
      seen.insert(key_of(merged, r));
    }
    uint64_t scanned = merged.num_rows();
    uint64_t deduped = 0;
    for (size_t i = 1; i < vids.size(); ++i) {
      auto next = backend_->Checkout(DenseId(vids[i]), "tmp");
      if (!next.ok()) return next.status();
      const Table& t = *next;
      scanned += t.num_rows();
      std::vector<uint32_t> keep;
      for (uint32_t r = 0; r < t.num_rows(); ++r) {
        if (seen.insert(key_of(t, r)).second) keep.push_back(r);
      }
      deduped += t.num_rows() - keep.size();
      merged.AppendFrom(t, keep);
    }
    ORPHEUS_COUNTER_ADD("cvd.merge.rows_scanned", scanned);
    ORPHEUS_COUNTER_ADD("cvd.merge.rows_deduped", deduped);
  }

  ORPHEUS_COUNTER_ADD("cvd.checkout.records_materialized", merged.num_rows());
  return merged;
}

Status Cvd::Checkout(const std::vector<VersionId>& vids,
                     const std::string& table_name,
                     minidb::Database* staging) {
  if (staging->HasTable(table_name)) {
    return Status::AlreadyExists(
        StrFormat("staging table %s already exists", table_name.c_str()));
  }
  auto merged = Materialize(vids, table_name);
  if (!merged.ok()) return merged.status();
  auto adopted = staging->AdoptTable(merged.MoveValueOrDie());
  if (!adopted.ok()) return adopted.status();
  logical_clock_ += 1;
  staging_[table_name] = StagingInfo{vids, logical_clock_};
  MaybeValidate(*this, "Cvd::Checkout");
  return Status::OK();
}

Status Cvd::PlanSchema(const Table& table, bool has_rid_col, SchemaPlan* plan,
                       std::vector<int>* staging_col_of_attr) const {
  const Schema& tschema = table.schema();
  const size_t first_data_col = has_rid_col ? 1 : 0;

  plan->schema_after = backend_->data_schema().columns();
  plan->new_attributes.clear();
  plan->current_attr_ids = current_attr_ids_;
  int next_attr_id = static_cast<int>(attributes_.size());
  auto find_planned = [plan](const std::string& name) {
    for (size_t k = 0; k < plan->schema_after.size(); ++k) {
      if (plan->schema_after[k].name == name) return static_cast<int>(k);
    }
    return -1;
  };

  // Pass 1: new attributes and type widenings, recorded in the plan only —
  // the backend is untouched until the commit record has been made durable.
  for (size_t c = first_data_col; c < tschema.num_columns(); ++c) {
    const ColumnDef& def = tschema.column(c);
    int attr = find_planned(def.name);
    if (attr < 0) {
      // New attribute: extend the CVD (ALTER ... ADD COLUMN, NULLs for old
      // records) and log it in the attribute table.
      AttributeInfo info;
      info.attr_id = next_attr_id++;
      info.name = def.name;
      info.type = def.type;
      plan->schema_after.push_back(def);
      plan->new_attributes.push_back(info);
      plan->current_attr_ids.push_back(info.attr_id);
      continue;
    }
    ValueType have = plan->schema_after[attr].type;
    if (def.type != have && TypeRank(def.type) > TypeRank(have)) {
      // Widen to the more general type; a fresh attribute entry records the
      // change (Fig. 4.3: cooccurrence integer -> decimal => new attr id).
      AttributeInfo info;
      info.attr_id = next_attr_id++;
      info.name = def.name;
      info.type = def.type;
      plan->schema_after[attr].type = def.type;
      plan->new_attributes.push_back(info);
      plan->current_attr_ids[attr] = info.attr_id;
    }
  }

  // Pass 2: mapping from planned attribute position -> staging column.
  staging_col_of_attr->assign(plan->schema_after.size(), -1);
  for (size_t k = 0; k < plan->schema_after.size(); ++k) {
    int c = tschema.FindColumn(plan->schema_after[k].name);
    if (c >= 0 && (!has_rid_col || c != 0)) {
      (*staging_col_of_attr)[k] = c;
    }
  }
  return Status::OK();
}

Result<VersionId> Cvd::CommitTable(const Table& table,
                                   const std::vector<VersionId>& parents,
                                   const std::string& message,
                                   const std::string& author,
                                   LogicalTime checkout_time) {
  for (VersionId p : parents) ORPHEUS_RETURN_NOT_OK(ValidateVersion(p));

  ORPHEUS_TRACE_SPAN("cvd.commit");
  ORPHEUS_COUNTER_ADD("cvd.commit.rows_scanned", table.num_rows());

  // Phase 1 — plan. Everything below is a pure read of the current state:
  // the planned schema evolution, record membership, fresh rids, weights,
  // and metadata are computed into a CvdCommitRecord without mutating the
  // backend, the graph, or the counters.
  const bool has_rid_col = table.schema().num_columns() > 0 &&
                           table.schema().column(0).name == "_rid";
  SchemaPlan plan;
  std::vector<int> col_of_attr;
  ORPHEUS_RETURN_NOT_OK(PlanSchema(table, has_rid_col, &plan, &col_of_attr));

  const size_t num_attrs = plan.schema_after.size();
  const int parent_hint = parents.empty() ? -1 : DenseId(parents[0]);

  // PK positions within the (planned) CVD attribute space.
  std::vector<int> pk_attrs;
  for (const auto& pk : options_.primary_key) {
    for (size_t k = 0; k < num_attrs; ++k) {
      if (plan.schema_after[k].name == pk) {
        pk_attrs.push_back(static_cast<int>(k));
        break;
      }
    }
  }

  std::vector<RecordId> rids;
  rids.reserve(table.num_rows());
  std::vector<NewRecord> new_records;
  std::unordered_set<std::string> pk_seen;
  pk_seen.reserve(table.num_rows() * 2);
  RecordId next_rid = next_rid_;

  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    // Project the staging row into the planned CVD attribute space.
    Row payload(num_attrs);
    for (size_t k = 0; k < num_attrs; ++k) {
      if (col_of_attr[k] >= 0) {
        payload[k] =
            CoerceValue(table.GetValue(r, static_cast<size_t>(col_of_attr[k])),
                        plan.schema_after[k].type);
      }
    }
    // Primary-key constraint within the committed version.
    if (!pk_attrs.empty()) {
      std::string key;
      for (int k : pk_attrs) {
        key += payload[k].ToString();
        key += '\x1f';
      }
      if (!pk_seen.insert(key).second) {
        return Status::ConstraintViolation(
            StrFormat("duplicate primary key in commit of %s: %s",
                      table.name().c_str(), key.c_str()));
      }
    }
    // Modification detection (no cross-version diff rule): a row carrying a
    // rid is kept iff its payload still matches the stored record; anything
    // else becomes a new immutable record. The stored payload is compared
    // as if the planned widenings had already converted it.
    RecordId rid = -1;
    if (has_rid_col && !table.column(0).IsNull(r)) {
      rid = table.column(0).GetInt(r);
    }
    bool keep = false;
    if (rid >= 0 && rid < next_rid_) {
      auto stored = backend_->GetRecordPayload(rid, parent_hint);
      if (stored.ok() && stored->size() <= payload.size()) {
        keep = true;
        for (size_t k = 0; k < stored->size(); ++k) {
          if (!(WidenStoredValue((*stored)[k], plan.schema_after[k].type) ==
                payload[k])) {
            keep = false;
            break;
          }
        }
        // Attributes beyond the stored arity must be NULL for a match.
        for (size_t k = stored->size(); keep && k < payload.size(); ++k) {
          if (!payload[k].is_null()) keep = false;
        }
      }
    }
    if (keep) {
      rids.push_back(rid);
    } else {
      RecordId fresh = next_rid++;
      rids.push_back(fresh);
      new_records.push_back(NewRecord{fresh, std::move(payload)});
    }
  }

  std::sort(rids.begin(), rids.end());
  // new_records were assigned increasing rids in row order => sorted already.
  ORPHEUS_COUNTER_ADD("cvd.commit.records_new", new_records.size());
  ORPHEUS_COUNTER_ADD("cvd.commit.records_kept",
                      rids.size() - new_records.size());

  std::vector<int64_t> weights;
  for (VersionId p : parents) {
    auto prids = backend_->VersionRecords(DenseId(p));
    if (!prids.ok()) return prids.status();
    // Shared records = |parent ∩ new| via sorted merge.
    const auto& pv = *prids;
    int64_t shared = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < rids.size() && j < pv.size()) {
      if (rids[i] < pv[j]) {
        ++i;
      } else if (rids[i] > pv[j]) {
        ++j;
      } else {
        ++shared;
        ++i;
        ++j;
      }
    }
    weights.push_back(shared);
  }

  CvdCommitRecord record;
  record.vid = PublicId(backend_->num_versions());
  record.parents = parents;
  record.parent_weights = std::move(weights);
  record.rids = std::move(rids);
  record.new_records = std::move(new_records);
  record.metadata.vid = record.vid;
  record.metadata.parents = parents;
  record.metadata.checkout_time = checkout_time;
  record.metadata.commit_time = logical_clock_ + 1;
  record.metadata.message = message;
  record.metadata.author = author;
  record.metadata.attributes = plan.current_attr_ids;
  record.metadata.num_records = static_cast<int64_t>(record.rids.size());
  record.new_attributes = std::move(plan.new_attributes);
  record.current_attr_ids = std::move(plan.current_attr_ids);
  record.schema_after = std::move(plan.schema_after);
  record.next_rid_after = next_rid;
  record.logical_clock_after = logical_clock_ + 1;

  // Phase 2 — make it durable. On failure nothing was mutated: the failed
  // commit leaves no checkoutable version behind (DESIGN.md §10.4).
  if (commit_observer_) {
    ORPHEUS_RETURN_NOT_OK(commit_observer_(record));
  }

  // Phase 3 — apply. Infallible short of an internal invariant bug; if it
  // fails anyway the WAL is ahead of memory, which reopening repairs.
  ORPHEUS_RETURN_NOT_OK(ApplyCommitRecord(record));
  return record.vid;
}

Result<VersionId> Cvd::Commit(const std::string& table_name,
                              minidb::Database* staging,
                              const std::string& message,
                              const std::string& author) {
  auto it = staging_.find(table_name);
  if (it == staging_.end()) {
    return Status::NotFound(
        StrFormat("table %s was not checked out from CVD %s",
                  table_name.c_str(), name_.c_str()));
  }
  Table* table = staging->GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound(
        StrFormat("staging table %s missing", table_name.c_str()));
  }
  auto vid = CommitTable(*table, it->second.parents, message, author,
                         it->second.checkout_time);
  if (!vid.ok()) return vid.status();
  // Cleanup: the record manager removes the table from the staging area.
  ORPHEUS_RETURN_NOT_OK(staging->DropTable(table_name));
  staging_.erase(it);
  MaybeValidate(*this, "Cvd::Commit");
  return vid;
}

Result<minidb::Table> Cvd::Diff(VersionId a, VersionId b) const {
  ORPHEUS_RETURN_NOT_OK(ValidateVersion(a));
  ORPHEUS_RETURN_NOT_OK(ValidateVersion(b));
  ORPHEUS_TRACE_SPAN("cvd.diff");
  auto only = VDiff(a, b);
  if (!only.ok()) return only.status();
  std::unordered_set<RecordId> keep(only->begin(), only->end());
  auto mat = backend_->Checkout(DenseId(a), StrFormat("diff_%d_%d", a, b));
  if (!mat.ok()) return mat.status();
  const Table& t = *mat;
  std::vector<uint32_t> rows;
  const auto& rids = t.column(0).int_data();
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    if (keep.count(rids[r])) rows.push_back(r);
  }
  ORPHEUS_COUNTER_ADD("cvd.diff.rows_scanned", t.num_rows());
  ORPHEUS_COUNTER_ADD("cvd.diff.rows_out", rows.size());
  return t.CopyRows(rows, StrFormat("diff_%d_%d", a, b));
}

Result<std::vector<RecordId>> Cvd::VersionRecords(VersionId vid) const {
  ORPHEUS_RETURN_NOT_OK(ValidateVersion(vid));
  return backend_->VersionRecords(DenseId(vid));
}

std::vector<VersionId> Cvd::Ancestors(VersionId vid) const {
  std::vector<VersionId> out;
  for (int v : graph_.Ancestors(DenseId(vid))) out.push_back(PublicId(v));
  return out;
}

std::vector<VersionId> Cvd::Descendants(VersionId vid) const {
  std::vector<VersionId> out;
  for (int v : graph_.Descendants(DenseId(vid))) out.push_back(PublicId(v));
  return out;
}

std::vector<VersionId> Cvd::Parents(VersionId vid) const {
  std::vector<VersionId> out;
  for (int v : graph_.parents(DenseId(vid))) out.push_back(PublicId(v));
  return out;
}

Result<std::vector<RecordId>> Cvd::VIntersect(
    const std::vector<VersionId>& vids) const {
  if (vids.empty()) return std::vector<RecordId>{};
  auto acc = VersionRecords(vids[0]);
  if (!acc.ok()) return acc.status();
  std::vector<RecordId> cur = acc.MoveValueOrDie();
  uint64_t scanned = cur.size();
  for (size_t i = 1; i < vids.size(); ++i) {
    auto next = VersionRecords(vids[i]);
    if (!next.ok()) return next.status();
    scanned += next->size();
    std::vector<RecordId> merged;
    std::set_intersection(cur.begin(), cur.end(), next->begin(), next->end(),
                          std::back_inserter(merged));
    cur = std::move(merged);
  }
  ORPHEUS_COUNTER_ADD("cvd.setop.records_scanned", scanned);
  return cur;
}

Result<std::vector<RecordId>> Cvd::VDiff(VersionId a, VersionId b) const {
  auto ra = VersionRecords(a);
  if (!ra.ok()) return ra.status();
  auto rb = VersionRecords(b);
  if (!rb.ok()) return rb.status();
  std::vector<RecordId> out;
  std::set_difference(ra->begin(), ra->end(), rb->begin(), rb->end(),
                      std::back_inserter(out));
  ORPHEUS_COUNTER_ADD("cvd.setop.records_scanned", ra->size() + rb->size());
  return out;
}

std::vector<VersionId> Cvd::StagingParents(
    const std::string& table_name) const {
  auto it = staging_.find(table_name);
  return it == staging_.end() ? std::vector<VersionId>{} : it->second.parents;
}

Status Cvd::ForgetStaging(const std::string& table_name) {
  if (staging_.erase(table_name) == 0) {
    return Status::NotFound(
        StrFormat("table %s is not staged", table_name.c_str()));
  }
  return Status::OK();
}

Result<CvdState> Cvd::ExportState() const {
  CvdState state;
  state.name = name_;
  state.model = options_.model;
  state.primary_key = options_.primary_key;
  state.data_schema = backend_->data_schema().columns();
  state.attributes = attributes_;
  state.current_attr_ids = current_attr_ids_;
  state.next_rid = next_rid_;
  state.logical_clock = logical_clock_;
  state.metadata = metadata_;

  const size_t width = state.data_schema.size();
  const int n = backend_->num_versions();
  std::unordered_set<RecordId> seen;
  for (int v = 0; v < n; ++v) {
    auto rids = backend_->VersionRecords(v);
    if (!rids.ok()) return rids.status();
    const std::vector<int>& parents = graph_.parents(v);
    std::vector<int64_t> weights;
    weights.reserve(parents.size());
    for (int p : parents) weights.push_back(graph_.EdgeWeight(p, v));
    std::vector<NewRecord> fresh;
    for (RecordId rid : *rids) {
      if (!seen.insert(rid).second) continue;
      auto payload = backend_->GetRecordPayload(rid, v);
      if (!payload.ok()) return payload.status();
      Row row = payload.MoveValueOrDie();
      // Records stored before a schema evolution may be narrower than the
      // final schema; pad with NULLs (the single-pool semantics).
      if (row.size() < width) row.resize(width);
      if (row.size() > width) {
        return Status::Corruption(StrFormat(
            "record %lld payload wider (%zu) than schema (%zu) in CVD %s",
            static_cast<long long>(rid), row.size(), width, name_.c_str()));
      }
      fresh.push_back(NewRecord{rid, std::move(row)});
    }
    state.version_parents.push_back(parents);
    state.version_weights.push_back(std::move(weights));
    state.version_rids.push_back(rids.MoveValueOrDie());
    state.version_new_records.push_back(std::move(fresh));
  }
  return state;
}

Result<std::unique_ptr<Cvd>> Cvd::FromState(const CvdState& state) {
  const size_t n = state.version_rids.size();
  if (state.version_parents.size() != n || state.version_weights.size() != n ||
      state.version_new_records.size() != n || state.metadata.size() != n) {
    return Status::DataLoss(StrFormat(
        "inconsistent CVD state for %s: %zu versions but %zu parent lists, "
        "%zu weight lists, %zu record lists, %zu metadata entries",
        state.name.c_str(), n, state.version_parents.size(),
        state.version_weights.size(), state.version_new_records.size(),
        state.metadata.size()));
  }
  Options options;
  options.model = state.model;
  options.primary_key = state.primary_key;
  // The backend is created directly at the final schema; replayed payloads
  // are already padded to that width, so no AddAttribute replay is needed.
  std::unique_ptr<Cvd> cvd(
      new Cvd(state.name, options, Schema(state.data_schema)));
  cvd->attributes_ = state.attributes;  // overwrite ctor registrations
  cvd->current_attr_ids_ = state.current_attr_ids;
  for (size_t v = 0; v < n; ++v) {
    ORPHEUS_RETURN_NOT_OK(cvd->backend_->AddVersion(
        static_cast<int>(v), state.version_rids[v],
        state.version_new_records[v], state.version_parents[v]));
    cvd->graph_.AddVersion(state.version_parents[v], state.version_weights[v],
                           static_cast<int64_t>(state.version_rids[v].size()));
  }
  cvd->metadata_ = state.metadata;
  cvd->next_rid_ = state.next_rid;
  cvd->logical_clock_ = state.logical_clock;
  MaybeValidate(*cvd, "Cvd::FromState");
  return cvd;
}

Status Cvd::ApplyCommitRecord(const CvdCommitRecord& record) {
  if (record.vid != num_versions() + 1) {
    return Status::DataLoss(StrFormat(
        "commit record for version %d of CVD %s cannot apply at %d versions",
        record.vid, name_.c_str(), num_versions()));
  }
  if (record.parents.size() != record.parent_weights.size()) {
    return Status::DataLoss(StrFormat(
        "commit record for version %d of CVD %s: %zu parents, %zu weights",
        record.vid, name_.c_str(), record.parents.size(),
        record.parent_weights.size()));
  }
  // Replay this commit's schema evolution: widen changed types, append new
  // attributes (schema_after is authoritative).
  const size_t have = backend_->data_schema().num_columns();
  if (record.schema_after.size() < have) {
    return Status::DataLoss(StrFormat(
        "commit record for version %d of CVD %s narrows the schema",
        record.vid, name_.c_str()));
  }
  for (size_t k = 0; k < have; ++k) {
    const ColumnDef& want = record.schema_after[k];
    if (backend_->data_schema().column(k).type != want.type) {
      ORPHEUS_RETURN_NOT_OK(
          backend_->WidenAttribute(static_cast<int>(k), want.type));
    }
  }
  for (size_t k = have; k < record.schema_after.size(); ++k) {
    ORPHEUS_RETURN_NOT_OK(backend_->AddAttribute(record.schema_after[k]));
  }

  std::vector<int> dense_parents;
  dense_parents.reserve(record.parents.size());
  for (VersionId p : record.parents) {
    ORPHEUS_RETURN_NOT_OK(ValidateVersion(p));
    dense_parents.push_back(DenseId(p));
  }
  const int dense = backend_->num_versions();
  ORPHEUS_RETURN_NOT_OK(backend_->AddVersion(dense, record.rids,
                                             record.new_records,
                                             dense_parents));
  graph_.AddVersion(dense_parents, record.parent_weights,
                    static_cast<int64_t>(record.rids.size()));
  metadata_.push_back(record.metadata);
  attributes_.insert(attributes_.end(), record.new_attributes.begin(),
                     record.new_attributes.end());
  current_attr_ids_ = record.current_attr_ids;
  next_rid_ = record.next_rid_after;
  logical_clock_ = record.logical_clock_after;
  MaybeValidate(*this, "Cvd::ApplyCommitRecord");
  return Status::OK();
}

std::vector<std::string> Cvd::StagedTables() const {
  std::vector<std::string> out;
  out.reserve(staging_.size());
  for (const auto& [name, info] : staging_) {
    (void)info;
    out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace orpheus::core
