#include "core/partitioning.h"

#include <algorithm>
#include <unordered_set>

namespace orpheus::core {

std::vector<std::vector<int>> Partitioning::Groups() const {
  std::vector<std::vector<int>> groups(num_partitions);
  for (int v = 0; v < static_cast<int>(partition_of.size()); ++v) {
    groups[partition_of[v]].push_back(v);
  }
  return groups;
}

PartitionCosts ComputeExactCosts(const RecordSetView& view,
                                 const Partitioning& partitioning) {
  PartitionCosts costs;
  const int n = view.num_versions;
  auto groups = partitioning.Groups();
  for (const auto& group : groups) {
    if (group.empty()) continue;
    // Union of the group's record sets.
    std::unordered_set<RecordId> records;
    for (int v : group) {
      const auto& rs = view.records_of(v);
      records.insert(rs.begin(), rs.end());
    }
    uint64_t rk = records.size();
    costs.storage += rk;
    costs.checkout_avg += static_cast<double>(group.size()) *
                          static_cast<double>(rk);
    costs.max_partition = std::max(costs.max_partition, rk);
  }
  costs.checkout_avg /= static_cast<double>(n);
  return costs;
}

PartitionCosts ComputeTreeEstimatedCosts(const VersionGraph& graph,
                                         const std::vector<int>& tree_parent,
                                         const Partitioning& partitioning) {
  PartitionCosts costs;
  const int n = graph.num_versions();
  std::vector<uint64_t> rk(partitioning.num_partitions, 0);
  std::vector<uint64_t> vk(partitioning.num_partitions, 0);
  for (int v = 0; v < n; ++v) {
    int part = partitioning.partition_of[v];
    ++vk[part];
    int parent = tree_parent[v];
    if (parent >= 0 && partitioning.partition_of[parent] == part) {
      // v adds only its new records relative to its (in-partition) parent.
      rk[part] += static_cast<uint64_t>(graph.num_records(v) -
                                        graph.EdgeWeight(parent, v));
    } else {
      // v is the root of its partition's component: contributes fully.
      rk[part] += static_cast<uint64_t>(graph.num_records(v));
    }
  }
  for (int k = 0; k < partitioning.num_partitions; ++k) {
    costs.storage += rk[k];
    costs.checkout_avg += static_cast<double>(vk[k]) *
                          static_cast<double>(rk[k]);
    costs.max_partition = std::max(costs.max_partition, rk[k]);
  }
  costs.checkout_avg /= static_cast<double>(n);
  return costs;
}

std::vector<uint64_t> PerVersionCheckoutCost(const RecordSetView& view,
                                             const Partitioning& partitioning) {
  std::vector<uint64_t> cost(view.num_versions, 0);
  auto groups = partitioning.Groups();
  for (const auto& group : groups) {
    if (group.empty()) continue;
    std::unordered_set<RecordId> records;
    for (int v : group) {
      const auto& rs = view.records_of(v);
      records.insert(rs.begin(), rs.end());
    }
    for (int v : group) cost[v] = records.size();
  }
  return cost;
}

}  // namespace orpheus::core
