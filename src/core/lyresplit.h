#ifndef ORPHEUS_CORE_LYRESPLIT_H_
#define ORPHEUS_CORE_LYRESPLIT_H_

#include <cstdint>
#include <vector>

#include "core/partitioning.h"
#include "core/version_graph.h"

namespace orpheus::core {

/// Result of a LyreSplit run (Algorithm 5.1).
struct LyreSplitResult {
  Partitioning partitioning;
  double delta = 0.0;        // the δ actually used
  int recursion_levels = 0;  // ℓ: approximation is ((1+δ)^ℓ, 1/δ)
  int search_iterations = 0; // binary-search iterations (0 if fixed δ)
  PartitionCosts estimated;  // tree-estimated costs of the result
};

/// Run LyreSplit with a fixed δ on the version graph. A DAG is first
/// reduced to a tree by keeping each version's highest-weight in-edge
/// (Sec. 5.3.1). Guarantees ((1+δ)^ℓ, 1/δ)-approximation (Theorem 5.2).
LyreSplitResult LyreSplitWithDelta(const VersionGraph& graph, double delta);

/// Problem 5.1: minimize C_avg subject to the storage threshold
/// `gamma_records` (in records), by binary-searching δ (Sec. 5.2). The best
/// feasible partitioning found is returned.
LyreSplitResult LyreSplitForBudget(const VersionGraph& graph,
                                   uint64_t gamma_records);

/// Weighted checkout cost variant (Sec. 5.3.2): version i is checked out
/// with integer frequency freq[i]; each version is conceptually duplicated
/// freq[i] times in a chain before partitioning, and copies are coalesced
/// into the smallest resulting partition afterwards.
LyreSplitResult LyreSplitWeighted(const VersionGraph& graph,
                                  const std::vector<int64_t>& freq,
                                  double delta);

/// Schema-change-aware variant (Sec. 5.3.3): an edge is a split candidate
/// when a(vi,vj) * w(vi,vj) <= δ * |A||R|, where a() counts common
/// attributes. `attrs_of` gives the attribute count per version and
/// `common_attrs` the per-tree-edge common attribute count (indexed by
/// child version; roots ignored).
LyreSplitResult LyreSplitSchemaAware(const VersionGraph& graph,
                                     const std::vector<int>& attrs_of,
                                     const std::vector<int>& common_attrs,
                                     int total_attrs, double delta);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_LYRESPLIT_H_
