#include "core/partition_store.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "minidb/join.h"

namespace orpheus::core {

using minidb::ColumnDef;
using minidb::Schema;
using minidb::Table;
using minidb::ValueType;

minidb::Schema PartitionedStore::DataSchema(int num_attributes) {
  std::vector<ColumnDef> cols;
  cols.reserve(num_attributes + 1);
  cols.push_back({"_rid", ValueType::kInt64});
  for (int a = 0; a < num_attributes; ++a) {
    cols.push_back({StrFormat("a%d", a), ValueType::kInt64});
  }
  return Schema(std::move(cols));
}

PartitionedStore::Part::Part(const std::string& name, int num_attributes)
    : data(name + "_data", DataSchema(num_attributes)),
      versioning(name + "_versioning",
                 Schema({{"vid", ValueType::kInt64},
                         {"rlist", ValueType::kIntArray}})) {
  Status s = data.BuildUniqueIntIndex(0);
  (void)s;
  s = versioning.BuildUniqueIntIndex(0);
  (void)s;
}

void PartitionedStore::AppendVersionRecords(
    const DatasetAccessor& ds, int version,
    const std::vector<RecordId>& missing, Part* part) {
  std::vector<int64_t> row(ds.num_attributes + 1);
  std::vector<int64_t> payload(ds.num_attributes);
  for (RecordId rid : missing) {
    ds.payload_of(rid, &payload);
    row[0] = rid;
    for (int a = 0; a < ds.num_attributes; ++a) row[a + 1] = payload[a];
    part->data.AppendIntRowUnchecked(row);
  }
  const auto& rids = ds.records_of(version);
  minidb::Row vrow;
  vrow.emplace_back(static_cast<int64_t>(version));
  vrow.emplace_back(std::vector<int64_t>(rids.begin(), rids.end()));
  part->versioning.AppendRowUnchecked(vrow);
}

void PartitionedStore::FillPartition(const DatasetAccessor& ds,
                                     const std::vector<int>& versions,
                                     Part* part) {
  for (int v : versions) {
    std::vector<RecordId> missing;
    for (RecordId rid : ds.records_of(v)) {
      if (!part->data.LookupUniqueInt(0, rid)) missing.push_back(rid);
    }
    AppendVersionRecords(ds, v, missing, part);
  }
}

PartitionedStore PartitionedStore::Build(const DatasetAccessor& ds,
                                         const Partitioning& partitioning) {
  PartitionedStore store;
  store.partition_of_ = partitioning.partition_of;
  store.num_attributes_ = ds.num_attributes;
  auto groups = partitioning.Groups();
  store.parts_.reserve(groups.size());
  for (int k = 0; k < static_cast<int>(groups.size()); ++k) {
    store.parts_.emplace_back(StrFormat("p%d", k), ds.num_attributes);
    FillPartition(ds, groups[k], &store.parts_.back());
  }
  return store;
}

Result<minidb::Table> PartitionedStore::Checkout(int version) const {
  if (version < 0 || version >= num_versions()) {
    return Status::NotFound(StrFormat("version %d", version));
  }
  const Part& part = parts_[partition_of_[version]];
  auto row = part.versioning.LookupUniqueInt(0, version);
  if (!row) return Status::Corruption("version missing from its partition");
  const auto& rlist = part.versioning.column(1).GetIntArray(*row);
  std::vector<uint32_t> rows =
      minidb::JoinRids(part.data, 0, rlist, minidb::JoinAlgorithm::kHashJoin,
                       /*clustered_on_rid=*/false);
  return part.data.CopyRows(rows, StrFormat("checkout_v%d", version));
}

uint64_t PartitionedStore::TotalDataRecords() const {
  uint64_t total = 0;
  for (const auto& p : parts_) total += p.data.num_rows();
  return total;
}

uint64_t PartitionedStore::StorageBytes() const {
  uint64_t total = 0;
  for (const auto& p : parts_) {
    total += p.data.StorageBytes() + p.versioning.StorageBytes();
  }
  return total;
}

uint64_t PartitionedStore::PartitionRecords(int version) const {
  return parts_[partition_of_[version]].data.num_rows();
}

uint64_t PartitionedStore::MigrateTo(const DatasetAccessor& ds,
                                     const Partitioning& target,
                                     bool intelligent) {
  uint64_t work = 0;
  auto groups = target.Groups();

  if (!intelligent) {
    // Naive: drop everything, rebuild every partition from scratch.
    std::vector<Part> fresh;
    fresh.reserve(groups.size());
    for (int k = 0; k < static_cast<int>(groups.size()); ++k) {
      fresh.emplace_back(StrFormat("p%d", k), ds.num_attributes);
      FillPartition(ds, groups[k], &fresh.back());
      work += fresh.back().data.num_rows();
    }
    parts_ = std::move(fresh);
    partition_of_ = target.partition_of;
    return work;
  }

  // Intelligent migration: match each target partition to the existing
  // partition with the smallest modification cost, computed from the
  // common versions, then patch it with record-level inserts/deletes.
  const int old_n = num_partitions();
  std::vector<char> old_used(old_n, 0);

  // Record unions per target partition.
  std::vector<std::vector<RecordId>> target_records(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    std::unordered_set<RecordId> u;
    for (int v : groups[k]) {
      const auto& rs = ds.records_of(v);
      u.insert(rs.begin(), rs.end());
    }
    target_records[k].assign(u.begin(), u.end());
    std::sort(target_records[k].begin(), target_records[k].end());
  }

  // Candidate old partitions per target: those currently holding one of its
  // versions (partitions sharing no version share few records). Old rid
  // sets are sorted once and reused across targets.
  std::vector<std::vector<RecordId>> old_sorted(old_n);
  std::vector<char> old_sorted_ready(old_n, 0);
  auto sorted_old = [&](int oldk) -> const std::vector<RecordId>& {
    if (!old_sorted_ready[oldk]) {
      const auto& col = parts_[oldk].data.column(0).int_data();
      old_sorted[oldk].assign(col.begin(), col.end());
      std::sort(old_sorted[oldk].begin(), old_sorted[oldk].end());
      old_sorted_ready[oldk] = 1;
    }
    return old_sorted[oldk];
  };
  struct Match {
    int target = -1;
    int old = -1;
    uint64_t cost = 0;
  };
  std::vector<Match> matches;
  for (size_t k = 0; k < groups.size(); ++k) {
    std::unordered_set<int> candidates;
    for (int v : groups[k]) {
      if (v < static_cast<int>(partition_of_.size())) {
        candidates.insert(partition_of_[v]);
      }
    }
    for (int oldk : candidates) {
      // Modification cost |R' \ R| + |R \ R'| from the rid columns.
      const auto& old_rids = sorted_old(oldk);
      uint64_t common = 0;
      size_t i = 0;
      size_t j = 0;
      while (i < target_records[k].size() && j < old_rids.size()) {
        if (target_records[k][i] < old_rids[j]) {
          ++i;
        } else if (target_records[k][i] > old_rids[j]) {
          ++j;
        } else {
          ++common;
          ++i;
          ++j;
        }
      }
      uint64_t cost = (target_records[k].size() - common) +
                      (old_rids.size() - common);
      // Modifying must beat building from scratch (cost |R'_i|).
      if (cost < target_records[k].size()) {
        matches.push_back({static_cast<int>(k), oldk, cost});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.cost < b.cost; });

  std::vector<int> matched_old(groups.size(), -1);
  for (const Match& m : matches) {
    if (matched_old[m.target] >= 0 || old_used[m.old]) continue;
    matched_old[m.target] = m.old;
    old_used[m.old] = 1;
  }

  std::vector<Part> fresh;
  fresh.reserve(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    if (matched_old[k] < 0) {
      // Build from scratch.
      fresh.emplace_back(StrFormat("p%zu", k), ds.num_attributes);
      FillPartition(ds, groups[k], &fresh.back());
      work += fresh.back().data.num_rows();
      continue;
    }
    Part& old_part = parts_[matched_old[k]];
    // Deletes: rows whose rid is not needed anymore (binary search against
    // the sorted target set — no extra hash table).
    const auto& target = target_records[k];
    std::vector<uint32_t> dead;
    const auto& rids = old_part.data.column(0).int_data();
    for (uint32_t r = 0; r < old_part.data.num_rows(); ++r) {
      if (!std::binary_search(target.begin(), target.end(), rids[r])) {
        dead.push_back(r);
      }
    }
    // Inserts: needed rids the old partition lacks.
    std::vector<RecordId> missing;
    for (RecordId rid : target) {
      if (!old_part.data.LookupUniqueInt(0, rid)) missing.push_back(rid);
    }
    work += dead.size() + missing.size();
    if (!dead.empty()) old_part.data.DeleteRows(dead);
    std::vector<int64_t> row(ds.num_attributes + 1);
    std::vector<int64_t> payload(ds.num_attributes);
    for (RecordId rid : missing) {
      ds.payload_of(rid, &payload);
      row[0] = rid;
      for (int a = 0; a < ds.num_attributes; ++a) row[a + 1] = payload[a];
      old_part.data.AppendIntRowUnchecked(row);
    }
    // The versioning table is rebuilt (cheap: one rlist row per version).
    Part patched(StrFormat("p%zu", k), 0);
    patched.data = std::move(old_part.data);
    for (int v : groups[k]) {
      const auto& vr = ds.records_of(v);
      minidb::Row vrow;
      vrow.emplace_back(static_cast<int64_t>(v));
      vrow.emplace_back(std::vector<int64_t>(vr.begin(), vr.end()));
      patched.versioning.AppendRowUnchecked(vrow);
    }
    fresh.push_back(std::move(patched));
  }
  parts_ = std::move(fresh);
  partition_of_ = target.partition_of;
  return work;
}

Result<int> PartitionedStore::AddVersion(const DatasetAccessor& ds,
                                         int version, int partition) {
  if (version != num_versions()) {
    return Status::InvalidArgument("versions must be appended in order");
  }
  if (partition >= num_partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  if (partition < 0) {
    parts_.emplace_back(StrFormat("p%d", num_partitions()),
                        num_attributes_);
    partition = num_partitions() - 1;
  }
  Part& part = parts_[partition];
  std::vector<RecordId> missing;
  for (RecordId rid : ds.records_of(version)) {
    if (!part.data.LookupUniqueInt(0, rid)) missing.push_back(rid);
  }
  AppendVersionRecords(ds, version, missing, &part);
  partition_of_.push_back(partition);
  return partition;
}

}  // namespace orpheus::core
