#include "core/partition_store.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/validate.h"
#include "minidb/join.h"

namespace orpheus::core {

using minidb::ColumnDef;
using minidb::Schema;
using minidb::Table;
using minidb::ValueType;

namespace {

// Below this row count the fixed cost of fanning a payload copy out to the
// pool exceeds the copy itself.
constexpr size_t kParallelPayloadCutoff = 4096;

// Run fn(k) for every k in [0, n) on the pool. Index 0 runs inline on the
// calling thread: when there is a single partition (the whole-dataset
// store), the nested per-row parallelism inside the fill can then still
// fan out instead of being serialized onto one worker.
template <typename Fn>
void RunPerPartition(size_t n, Fn fn) {
  ThreadPool::TaskGroup group(&ThreadPool::Global());
  for (size_t k = 1; k < n; ++k) {
    group.Submit([&fn, k] { fn(k); });
  }
  if (n > 0) fn(0);
  group.Wait();
}

// With ORPHEUS_VALIDATE set, re-check every structural invariant after a
// mutating operation and abort on damage (see core/validate.h).
void MaybeValidate(const PartitionedStore& store, const char* op) {
  if (!ValidationEnabled()) return;
  ValidationReport report;
  ValidatePartitionedStore(store, &report);
  DieIfViolations(report, op);
}

}  // namespace

minidb::Schema PartitionedStore::DataSchema(int num_attributes) {
  std::vector<ColumnDef> cols;
  cols.reserve(num_attributes + 1);
  cols.push_back({"_rid", ValueType::kInt64});
  for (int a = 0; a < num_attributes; ++a) {
    cols.push_back({StrFormat("a%d", a), ValueType::kInt64});
  }
  return Schema(std::move(cols));
}

PartitionedStore::Part::Part(const std::string& name, int num_attributes)
    : data(name + "_data", DataSchema(num_attributes)),
      versioning(name + "_versioning",
                 Schema({{"vid", ValueType::kInt64},
                         {"rlist", ValueType::kIntArray}})) {
  // Indexing a freshly built empty table cannot hit duplicates; a failure
  // here is a broken invariant, not an input error.
  ORPHEUS_CHECK_OK(data.BuildUniqueIntIndex(0));
  ORPHEUS_CHECK_OK(versioning.BuildUniqueIntIndex(0));
}

void PartitionedStore::AppendVersionRecords(
    const DatasetAccessor& ds, int version,
    const std::vector<RecordId>& missing, Part* part) {
  const size_t n = missing.size();
  const size_t width = static_cast<size_t>(ds.num_attributes) + 1;
  // Clustering survives the append only if the new rids extend the
  // ascending run (commits append fresh, increasing rids, so this is the
  // common case online).
  if (!missing.empty()) {
    const auto& rids = part->data.column(0).int_data();
    const bool extends = rids.empty() || missing.front() > rids.back();
    part->rid_clustered =
        part->rid_clustered && extends &&
        std::is_sorted(missing.begin(), missing.end());
  }
  if (n >= kParallelPayloadCutoff && ThreadPool::Global().degree() > 1 &&
      !ThreadPool::Global().InWorker()) {
    // Gather payloads into a row-major staging buffer in parallel, then
    // bulk-append: the appends (and index maintenance) stay in row order,
    // so the table is identical to the serial fill.
    std::vector<int64_t> buf(n * width);
    ParallelFor(0, n, 1024, [&](size_t lo, size_t hi) {
      std::vector<int64_t> payload(ds.num_attributes);
      for (size_t i = lo; i < hi; ++i) {
        ds.payload_of(missing[i], &payload);
        int64_t* row = &buf[i * width];
        row[0] = missing[i];
        for (int a = 0; a < ds.num_attributes; ++a) row[a + 1] = payload[a];
      }
    });
    part->data.AppendIntRows(buf.data(), n);
  } else {
    std::vector<int64_t> row(width);
    std::vector<int64_t> payload(ds.num_attributes);
    for (RecordId rid : missing) {
      ds.payload_of(rid, &payload);
      row[0] = rid;
      for (int a = 0; a < ds.num_attributes; ++a) row[a + 1] = payload[a];
      part->data.AppendIntRowUnchecked(row);
    }
  }
  const auto& rids = ds.records_of(version);
  // The sortedness of each stored rlist is established here, once, instead
  // of being re-derived on every checkout.
  if (!std::is_sorted(rids.begin(), rids.end())) {
    part->rlists_sorted = false;
  }
  minidb::Row vrow;
  vrow.emplace_back(static_cast<int64_t>(version));
  vrow.emplace_back(std::vector<int64_t>(rids.begin(), rids.end()));
  part->versioning.AppendRowUnchecked(vrow);
  ORPHEUS_COUNTER_ADD("pstore.records_appended", n);
  ORPHEUS_COUNTER_ADD("pstore.versions_added", 1);
}

void PartitionedStore::FillPartition(const DatasetAccessor& ds,
                                     const std::vector<int>& versions,
                                     Part* part) {
  for (int v : versions) {
    std::vector<RecordId> missing;
    for (RecordId rid : ds.records_of(v)) {
      if (!part->data.LookupUniqueInt(0, rid)) missing.push_back(rid);
    }
    AppendVersionRecords(ds, v, missing, part);
  }
}

void PartitionedStore::ClusterOnRid(Part* part) {
  const auto& rids = part->data.column(0).int_data();
  if (!std::is_sorted(rids.begin(), rids.end())) {
    part->data.SortByIntColumn(0);
  }
  part->rid_clustered = true;
}

PartitionedStore PartitionedStore::Build(const DatasetAccessor& ds,
                                         const Partitioning& partitioning) {
  ORPHEUS_TRACE_SPAN("pstore.build");
  PartitionedStore store;
  store.partition_of_ = partitioning.partition_of;
  store.num_attributes_ = ds.num_attributes;
  auto groups = partitioning.Groups();
  store.parts_.reserve(groups.size());
  for (int k = 0; k < static_cast<int>(groups.size()); ++k) {
    store.parts_.emplace_back(StrFormat("p%d", k), ds.num_attributes);
  }
  // Each partition is filled (and clustered) independently; the fan-out is
  // the dominant build parallelism.
  RunPerPartition(groups.size(), [&store, &ds, &groups](size_t k) {
    FillPartition(ds, groups[k], &store.parts_[k]);
    ClusterOnRid(&store.parts_[k]);
  });
  ORPHEUS_GAUGE_SET("pstore.partitions",
                    static_cast<int64_t>(store.parts_.size()));
  MaybeValidate(store, "PartitionedStore::Build");
  return store;
}

Result<minidb::Table> PartitionedStore::Checkout(int version) const {
  if (version < 0 || version >= num_versions()) {
    return Status::NotFound(StrFormat("version %d", version));
  }
  ORPHEUS_TRACE_SPAN("pstore.checkout");
  const Part& part = parts_[partition_of_[version]];
  auto row = part.versioning.LookupUniqueInt(0, version);
  if (!row) return Status::Corruption("version missing from its partition");
  // Compressed rlists join without decompressing (and without a probe-set
  // build); otherwise stored rlists are sorted — the invariant is tracked
  // at insert time, not re-checked here — and the partition is kept
  // rid-clustered, so the join is normally a single linear merge pass (the
  // fast plan of Fig. 5.7(b)); the hash join remains as the fallback for
  // partitions whose clustering was broken by online appends.
  std::vector<uint32_t> rows;
  const auto& rlist_set = part.versioning.column(1).GetRidSet(*row);
  if (rlist_set) {
    ORPHEUS_COUNTER_ADD("pstore.checkout.ridset_joins", 1);
    rows = minidb::JoinRidSet(part.data, 0, *rlist_set, part.rid_clustered);
  } else {
    const auto& rlist = part.versioning.column(1).GetIntArray(*row);
    if (part.rid_clustered && part.rlists_sorted) {
      ORPHEUS_COUNTER_ADD("pstore.checkout.merge_joins", 1);
      rows = minidb::JoinRids(part.data, 0, rlist,
                              minidb::JoinAlgorithm::kMergeJoin,
                              /*clustered_on_rid=*/true);
    } else {
      ORPHEUS_COUNTER_ADD("pstore.checkout.hash_joins", 1);
      rows = minidb::JoinRids(part.data, 0, rlist,
                              minidb::JoinAlgorithm::kHashJoin,
                              /*clustered_on_rid=*/false);
    }
  }
  ORPHEUS_COUNTER_ADD("pstore.checkout.rows_out", rows.size());
  ORPHEUS_COUNTER_ADD("pstore.checkout.rows_scanned", part.data.num_rows());
  return part.data.CopyRows(rows, StrFormat("checkout_v%d", version));
}

uint64_t PartitionedStore::TotalDataRecords() const {
  uint64_t total = 0;
  for (const auto& p : parts_) total += p.data.num_rows();
  return total;
}

uint64_t PartitionedStore::StorageBytes() const {
  uint64_t total = 0;
  for (const auto& p : parts_) {
    total += p.data.StorageBytes() + p.versioning.StorageBytes();
  }
  return total;
}

uint64_t PartitionedStore::VersioningBytes() const {
  uint64_t total = 0;
  for (const auto& p : parts_) total += p.versioning.StorageBytes();
  return total;
}

uint64_t PartitionedStore::PartitionRecords(int version) const {
  return parts_[partition_of_[version]].data.num_rows();
}

uint64_t PartitionedStore::MigrateTo(const DatasetAccessor& ds,
                                     const Partitioning& target,
                                     bool intelligent) {
  ORPHEUS_TRACE_SPAN("pstore.migrate");
  auto groups = target.Groups();

  if (!intelligent) {
    // Naive: drop everything, rebuild every partition from scratch — but
    // all rebuilds run concurrently.
    std::vector<Part> fresh;
    fresh.reserve(groups.size());
    for (int k = 0; k < static_cast<int>(groups.size()); ++k) {
      fresh.emplace_back(StrFormat("p%d", k), ds.num_attributes);
    }
    RunPerPartition(groups.size(), [&fresh, &ds, &groups](size_t k) {
      FillPartition(ds, groups[k], &fresh[k]);
      ClusterOnRid(&fresh[k]);
    });
    uint64_t work = 0;
    for (const auto& p : fresh) work += p.data.num_rows();
    parts_ = std::move(fresh);
    partition_of_ = target.partition_of;
    ORPHEUS_COUNTER_ADD("pstore.records_moved", work);
    ORPHEUS_GAUGE_SET("pstore.partitions",
                      static_cast<int64_t>(parts_.size()));
    MaybeValidate(*this, "PartitionedStore::MigrateTo");
    return work;
  }

  // Intelligent migration: match each target partition to the existing
  // partition with the smallest modification cost, computed from the
  // common versions, then patch it with record-level inserts/deletes.
  // The match assignment is serial (it is a global greedy over a shared
  // cost ranking); the per-partition patching that follows is not.
  const int old_n = num_partitions();
  std::vector<char> old_used(old_n, 0);

  // Record unions per target partition (independent per target).
  std::vector<std::vector<RecordId>> target_records(groups.size());
  ParallelFor(0, groups.size(), 1, [&](size_t klo, size_t khi) {
    for (size_t k = klo; k < khi; ++k) {
      std::unordered_set<RecordId> u;
      for (int v : groups[k]) {
        const auto& rs = ds.records_of(v);
        u.insert(rs.begin(), rs.end());
      }
      target_records[k].assign(u.begin(), u.end());
      std::sort(target_records[k].begin(), target_records[k].end());
    }
  });

  // Candidate old partitions per target: those currently holding one of its
  // versions (partitions sharing no version share few records). Old rid
  // sets are sorted once and reused across targets.
  std::vector<std::vector<RecordId>> old_sorted(old_n);
  std::vector<char> old_sorted_ready(old_n, 0);
  auto sorted_old = [&](int oldk) -> const std::vector<RecordId>& {
    if (!old_sorted_ready[oldk]) {
      const auto& col = parts_[oldk].data.column(0).int_data();
      old_sorted[oldk].assign(col.begin(), col.end());
      if (!parts_[oldk].rid_clustered) {
        std::sort(old_sorted[oldk].begin(), old_sorted[oldk].end());
      }
      old_sorted_ready[oldk] = 1;
    }
    return old_sorted[oldk];
  };
  struct Match {
    int target = -1;
    int old = -1;
    uint64_t cost = 0;
  };
  std::vector<Match> matches;
  for (size_t k = 0; k < groups.size(); ++k) {
    std::unordered_set<int> candidates;
    for (int v : groups[k]) {
      if (v < static_cast<int>(partition_of_.size())) {
        candidates.insert(partition_of_[v]);
      }
    }
    for (int oldk : candidates) {
      // Modification cost |R' \ R| + |R \ R'| from the rid columns.
      const auto& old_rids = sorted_old(oldk);
      uint64_t common = 0;
      size_t i = 0;
      size_t j = 0;
      while (i < target_records[k].size() && j < old_rids.size()) {
        if (target_records[k][i] < old_rids[j]) {
          ++i;
        } else if (target_records[k][i] > old_rids[j]) {
          ++j;
        } else {
          ++common;
          ++i;
          ++j;
        }
      }
      uint64_t cost = (target_records[k].size() - common) +
                      (old_rids.size() - common);
      // Modifying must beat building from scratch (cost |R'_i|).
      if (cost < target_records[k].size()) {
        matches.push_back({static_cast<int>(k), oldk, cost});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.cost < b.cost; });

  std::vector<int> matched_old(groups.size(), -1);
  for (const Match& m : matches) {
    if (matched_old[m.target] >= 0 || old_used[m.old]) continue;
    matched_old[m.target] = m.old;
    old_used[m.old] = 1;
  }

  // Patch/rebuild phase: every target partition touches either a scratch
  // table or its uniquely matched old partition, so all targets proceed
  // concurrently.
  std::vector<Part> fresh;
  fresh.reserve(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    fresh.emplace_back(StrFormat("p%zu", k),
                       matched_old[k] < 0 ? ds.num_attributes : 0);
  }
  std::vector<uint64_t> work_of(groups.size(), 0);
  RunPerPartition(groups.size(), [&](size_t k) {
    if (matched_old[k] < 0) {
      // Build from scratch.
      FillPartition(ds, groups[k], &fresh[k]);
      ClusterOnRid(&fresh[k]);
      work_of[k] = fresh[k].data.num_rows();
      return;
    }
    Part& old_part = parts_[matched_old[k]];
    // Deletes: rows whose rid is not needed anymore (binary search
    // against the sorted target set — no extra hash table).
    const auto& target_rids = target_records[k];
    std::vector<uint32_t> dead;
    const auto& rids = old_part.data.column(0).int_data();
    for (uint32_t r = 0; r < old_part.data.num_rows(); ++r) {
      if (!std::binary_search(target_rids.begin(), target_rids.end(),
                              rids[r])) {
        dead.push_back(r);
      }
    }
    // Inserts: needed rids the old partition lacks.
    std::vector<RecordId> missing;
    for (RecordId rid : target_rids) {
      if (!old_part.data.LookupUniqueInt(0, rid)) missing.push_back(rid);
    }
    work_of[k] = dead.size() + missing.size();
    if (!dead.empty()) old_part.data.DeleteRows(dead);
    std::vector<int64_t> row(ds.num_attributes + 1);
    std::vector<int64_t> payload(ds.num_attributes);
    for (RecordId rid : missing) {
      ds.payload_of(rid, &payload);
      row[0] = rid;
      for (int a = 0; a < ds.num_attributes; ++a) row[a + 1] = payload[a];
      old_part.data.AppendIntRowUnchecked(row);
    }
    // The versioning table is rebuilt (cheap: one rlist row per version).
    fresh[k].data = std::move(old_part.data);
    for (int v : groups[k]) {
      const auto& vr = ds.records_of(v);
      if (!std::is_sorted(vr.begin(), vr.end())) {
        fresh[k].rlists_sorted = false;
      }
      minidb::Row vrow;
      vrow.emplace_back(static_cast<int64_t>(v));
      vrow.emplace_back(std::vector<int64_t>(vr.begin(), vr.end()));
      fresh[k].versioning.AppendRowUnchecked(vrow);
    }
    // Swap-removes and appends disturbed the physical order; restore the
    // rid clustering the checkout fast path relies on.
    fresh[k].rid_clustered = false;
    ClusterOnRid(&fresh[k]);
  });
  uint64_t work = 0;
  for (uint64_t w : work_of) work += w;
  parts_ = std::move(fresh);
  partition_of_ = target.partition_of;
  ORPHEUS_COUNTER_ADD("pstore.records_moved", work);
  ORPHEUS_GAUGE_SET("pstore.partitions", static_cast<int64_t>(parts_.size()));
  MaybeValidate(*this, "PartitionedStore::MigrateTo");
  return work;
}

Result<int> PartitionedStore::AddVersion(const DatasetAccessor& ds,
                                         int version, int partition) {
  if (version != num_versions()) {
    return Status::InvalidArgument("versions must be appended in order");
  }
  if (partition >= num_partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  ORPHEUS_TRACE_SPAN("pstore.add_version");
  if (partition < 0) {
    parts_.emplace_back(StrFormat("p%d", num_partitions()),
                        num_attributes_);
    partition = num_partitions() - 1;
  }
  Part& part = parts_[partition];
  std::vector<RecordId> missing;
  for (RecordId rid : ds.records_of(version)) {
    if (!part.data.LookupUniqueInt(0, rid)) missing.push_back(rid);
  }
  AppendVersionRecords(ds, version, missing, &part);
  partition_of_.push_back(partition);
  MaybeValidate(*this, "PartitionedStore::AddVersion");
  return partition;
}

}  // namespace orpheus::core
