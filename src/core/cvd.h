#ifndef ORPHEUS_CORE_CVD_H_
#define ORPHEUS_CORE_CVD_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/data_models.h"
#include "core/types.h"
#include "core/version_graph.h"
#include "minidb/database.h"

namespace orpheus::core {

/// Attribute-table row (Fig. 4.3b): any change to an attribute's properties
/// creates a new entry.
struct AttributeInfo {
  int attr_id = 0;
  std::string name;
  minidb::ValueType type = minidb::ValueType::kInt64;
};

/// Logical snapshot of a whole CVD: everything needed to reconstruct an
/// equivalent Cvd (bit-identical checkouts, identical future commits) by
/// replaying AddVersion against a fresh backend. This is what the durable
/// repository (src/storage/) serializes; staging registrations are
/// deliberately transient and not captured.
struct CvdState {
  std::string name;
  DataModelType model = DataModelType::kSplitByRlist;
  std::vector<std::string> primary_key;
  /// Final data-attribute schema; record payloads below are padded to this
  /// width (trailing NULLs stand in for attributes added after a record
  /// was stored — exactly the single-pool evolution semantics of Sec. 4.3).
  std::vector<minidb::ColumnDef> data_schema;
  std::vector<AttributeInfo> attributes;
  std::vector<int> current_attr_ids;
  RecordId next_rid = 0;
  LogicalTime logical_clock = 0;
  std::vector<VersionMetadata> metadata;
  /// Per dense version: parents (dense ids), per-parent shared-record edge
  /// weights, sorted record membership, and the payloads of records whose
  /// first appearance is in that version.
  std::vector<std::vector<int>> version_parents;
  std::vector<std::vector<int64_t>> version_weights;
  std::vector<std::vector<RecordId>> version_rids;
  std::vector<std::vector<NewRecord>> version_new_records;
};

/// Everything a single CommitTable call decided, captured by the planning
/// phase before any in-memory state changes. Replaying the record with
/// Cvd::ApplyCommitRecord against the pre-commit state reproduces the
/// post-commit state exactly — this is the WAL record the durable
/// repository logs per commit, and also how CommitTable itself applies the
/// commit after the observer has made it durable.
struct CvdCommitRecord {
  VersionId vid = kInvalidVersion;
  std::vector<VersionId> parents;       // public ids
  std::vector<int64_t> parent_weights;  // aligned with parents
  std::vector<RecordId> rids;           // sorted membership of the version
  std::vector<NewRecord> new_records;   // payloads first stored here
  VersionMetadata metadata;
  /// Attribute-table entries appended by this commit's schema
  /// reconciliation, plus the full post-commit snapshots of the pieces a
  /// replay cannot derive.
  std::vector<AttributeInfo> new_attributes;
  std::vector<int> current_attr_ids;
  std::vector<minidb::ColumnDef> schema_after;
  RecordId next_rid_after = 0;
  LogicalTime logical_clock_after = 0;
};

/// A Collaborative Versioned Dataset (Sec. 3.1): one relation with many
/// implicit versions, a version graph, version metadata, and a pluggable
/// physical data model (Chapter 4).
///
/// Public version ids are 1-based, in commit order; internally they map to
/// dense 0-based backend indices.
class Cvd {
 public:
  struct Options {
    DataModelType model = DataModelType::kSplitByRlist;
    /// Names of the primary-key attributes (may be empty: no PK enforced).
    std::vector<std::string> primary_key;
  };

  /// `init`: register an existing table (data attributes only) as a new CVD
  /// whose version 1 holds the table's records.
  static Result<std::unique_ptr<Cvd>> Init(const std::string& name,
                                           const minidb::Table& initial,
                                           const Options& options);

  const std::string& name() const { return name_; }
  DataModelBackend* backend() { return backend_.get(); }
  const DataModelBackend* backend() const { return backend_.get(); }

  int num_versions() const { return graph_.num_versions(); }
  VersionId latest() const { return num_versions(); }
  const VersionGraph& graph() const { return graph_; }
  const std::vector<VersionMetadata>& metadata() const { return metadata_; }
  const VersionMetadata& version_metadata(VersionId vid) const {
    return metadata_[vid - 1];
  }
  const std::vector<AttributeInfo>& attribute_table() const {
    return attributes_;
  }
  /// Names of the primary-key attributes (empty: no PK enforced). The
  /// session layer's reconciliation keys its three-way merge on these.
  const std::vector<std::string>& primary_key() const {
    return options_.primary_key;
  }

  /// `checkout [cvd] -v vid... -t table`: materialize one or more versions
  /// into `staging` as `table_name`. With multiple versions, records are
  /// merged in precedence order: a record whose primary key was already
  /// added by an earlier version is omitted (Sec. 3.3.1).
  Status Checkout(const std::vector<VersionId>& vids,
                  const std::string& table_name, minidb::Database* staging);

  /// The read-only core of Checkout: materialize one or more versions into
  /// a free-standing table (column 0 is `_rid`), with the same precedence
  /// merge, but without registering a staging table or ticking the logical
  /// clock. Const — safe to call concurrently with other const reads; the
  /// session layer runs it under a shared (reader) lock.
  Result<minidb::Table> Materialize(const std::vector<VersionId>& vids,
                                    const std::string& table_name) const;

  /// `commit -t table -m msg`: diff the staging table against its parent
  /// versions, add any new/modified records to the CVD, register the new
  /// version, and drop the staging table. The staging table must have been
  /// produced by Checkout (OrpheusDB tracks its parent versions).
  Result<VersionId> Commit(const std::string& table_name,
                           minidb::Database* staging,
                           const std::string& message,
                           const std::string& author = "");

  /// Commit a free-standing materialized table (schema: data attributes,
  /// optionally preceded by a `_rid` column) with explicit parent versions.
  /// Used by `init`-style imports and the bench harnesses. `checkout_time`
  /// is recorded in the version metadata (0 = unknown; Commit passes the
  /// staged checkout timestamp).
  Result<VersionId> CommitTable(const minidb::Table& table,
                                const std::vector<VersionId>& parents,
                                const std::string& message,
                                const std::string& author = "",
                                LogicalTime checkout_time = 0);

  // --- Durability hooks (src/storage/, DESIGN.md §10) ---

  /// Observer invoked with the full commit record after planning but
  /// BEFORE the commit is applied in memory (log-before-apply). The
  /// durable repository appends the record to its WAL here; a non-OK
  /// return aborts the commit with no in-memory state change, so a failed
  /// WAL append can never leave a checkoutable version that the log does
  /// not know about. If the observer succeeds, the subsequent in-memory
  /// apply is infallible short of an internal invariant bug; should it
  /// fail anyway, the WAL is ahead of memory — the safe direction, since
  /// reopening replays the logged commit.
  using CommitObserver = std::function<Status(const CvdCommitRecord&)>;
  void set_commit_observer(CommitObserver observer) {
    commit_observer_ = std::move(observer);
  }

  /// Export the full logical state (snapshot serialization).
  Result<CvdState> ExportState() const;

  /// Reconstruct a CVD from an exported state by replaying AddVersion
  /// against a fresh backend. Checkouts of the result are bit-identical to
  /// the original's.
  static Result<std::unique_ptr<Cvd>> FromState(const CvdState& state);

  /// Replay one logged commit (WAL recovery). The record must be the next
  /// version in sequence.
  Status ApplyCommitRecord(const CvdCommitRecord& record);

  /// `diff`: records present in version `a` but not in version `b`,
  /// materialized with schema [_rid, attrs...].
  Result<minidb::Table> Diff(VersionId a, VersionId b) const;

  /// Sorted rids of a version (not user-visible in OrpheusDB proper, but
  /// needed by the partition optimizer and tests).
  Result<std::vector<RecordId>> VersionRecords(VersionId vid) const;

  // --- Functional primitives usable as query predicates (Sec. 3.3.2) ---

  /// ancestor(vid): all ancestors in the version graph.
  std::vector<VersionId> Ancestors(VersionId vid) const;
  /// descendant(vid).
  std::vector<VersionId> Descendants(VersionId vid) const;
  /// parent(vid).
  std::vector<VersionId> Parents(VersionId vid) const;
  /// v_intersect(ARRAY[vids]): rids present in all the given versions.
  Result<std::vector<RecordId>> VIntersect(
      const std::vector<VersionId>& vids) const;
  /// v_diff(a, b) at the rid level.
  Result<std::vector<RecordId>> VDiff(VersionId a, VersionId b) const;

  /// Total backend storage (Fig. 4.1a).
  uint64_t StorageBytes() const { return backend_->StorageBytes(); }

  /// Staging tables currently tracked by the provenance manager.
  std::vector<std::string> StagedTables() const;

  /// Parent versions recorded for a staged table (empty if unknown).
  std::vector<VersionId> StagingParents(const std::string& table_name) const;

  /// Forget a staging registration without committing (used when a
  /// checkout is exported to a CSV file and the table is dropped).
  Status ForgetStaging(const std::string& table_name);

 private:
  Cvd(std::string name, Options options, minidb::Schema data_schema);

  int DenseId(VersionId vid) const { return vid - 1; }
  VersionId PublicId(int dense) const { return dense + 1; }
  Status ValidateVersion(VersionId vid) const;

  /// Commit planning (Sec. 4.3): align the staging table's columns with
  /// the CVD schema WITHOUT mutating anything, recording the planned
  /// schema evolution (widenings + new attributes) into `plan`. Outputs,
  /// for each planned CVD data attribute, the staging column feeding it
  /// (-1 => NULL). Const — the plan is applied only after the commit
  /// observer has made the record durable.
  struct SchemaPlan {
    std::vector<minidb::ColumnDef> schema_after;
    std::vector<AttributeInfo> new_attributes;
    std::vector<int> current_attr_ids;
  };
  Status PlanSchema(const minidb::Table& table, bool has_rid_col,
                    SchemaPlan* plan,
                    std::vector<int>* staging_col_of_attr) const;

  void RegisterAttribute(const std::string& attr_name, minidb::ValueType type);

  std::string name_;
  Options options_;
  std::unique_ptr<DataModelBackend> backend_;
  VersionGraph graph_;
  std::vector<VersionMetadata> metadata_;
  std::vector<AttributeInfo> attributes_;
  // Current attribute ids (indexes into attributes_) per data column.
  std::vector<int> current_attr_ids_;
  RecordId next_rid_ = 0;
  LogicalTime logical_clock_ = 0;
  // Provenance manager state: staging table -> parent versions + checkout
  // timestamp (Sec. 3.2).
  struct StagingInfo {
    std::vector<VersionId> parents;
    LogicalTime checkout_time = 0;
  };
  std::unordered_map<std::string, StagingInfo> staging_;
  CommitObserver commit_observer_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_CVD_H_
