#include "core/validate.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/string_util.h"

namespace orpheus::core {

namespace {

constexpr char kGraphComponent[] = "version_graph";
constexpr char kStoreComponent[] = "partition_store";
constexpr char kCvdComponent[] = "cvd";

std::string VersionCtx(int v) { return StrFormat("version %d", v); }
std::string PartitionCtx(int p) { return StrFormat("partition %d", p); }

/// True when the children relation contains a cycle. Iterative
/// three-color DFS; `cycle_node` receives one node on a cycle.
bool FindCycle(const VersionGraph& graph, int* cycle_node) {
  const int n = graph.num_versions();
  // 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> color(n, 0);
  std::vector<std::pair<int, size_t>> stack;
  for (int start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    color[start] = 1;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto& kids = graph.children(v);
      bool descended = false;
      while (next < kids.size()) {
        int c = kids[next++];
        if (c < 0 || c >= n) continue;  // reported separately
        if (color[c] == 1) {
          *cycle_node = c;
          return true;
        }
        if (color[c] == 0) {
          color[c] = 1;
          stack.emplace_back(c, 0);
          descended = true;
          break;
        }
      }
      if (!descended && next >= kids.size()) {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool SortedUnique(const std::vector<RecordId>& rids) {
  for (size_t i = 1; i < rids.size(); ++i) {
    if (rids[i] <= rids[i - 1]) return false;
  }
  return true;
}

int64_t SortedOverlap(const std::vector<RecordId>& a,
                      const std::vector<RecordId>& b) {
  int64_t shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

}  // namespace

void ValidateVersionGraph(const VersionGraph& graph,
                          ValidationReport* report) {
  const int n = graph.num_versions();
  for (int v = 0; v < n; ++v) {
    if (graph.num_records(v) < 0) {
      report->Add(kGraphComponent, VersionCtx(v),
                  StrFormat("negative record count %lld",
                            static_cast<long long>(graph.num_records(v))));
    }
    std::unordered_set<int> seen_parents;
    for (int p : graph.parents(v)) {
      if (p < 0 || p >= n) {
        report->Add(kGraphComponent, VersionCtx(v),
                    StrFormat("parent %d out of range [0, %d)", p, n));
        continue;
      }
      if (p == v) {
        report->Add(kGraphComponent, VersionCtx(v), "self edge");
        continue;
      }
      if (!seen_parents.insert(p).second) {
        report->Add(kGraphComponent, VersionCtx(v),
                    StrFormat("duplicate parent edge from %d", p));
        continue;
      }
      const auto& kids = graph.children(p);
      if (std::find(kids.begin(), kids.end(), v) == kids.end()) {
        report->Add(
            kGraphComponent, VersionCtx(v),
            StrFormat("parent %d does not list %d as a child (adjacency "
                      "asymmetry)",
                      p, v));
      }
      int64_t w = graph.EdgeWeight(p, v);
      if (w < 0) {
        report->Add(kGraphComponent, VersionCtx(v),
                    StrFormat("edge %d -> %d has no recorded weight", p, v));
      } else if (w > graph.num_records(p) || w > graph.num_records(v)) {
        report->Add(
            kGraphComponent, VersionCtx(v),
            StrFormat("edge %d -> %d weight %lld exceeds an endpoint's "
                      "record count",
                      p, v, static_cast<long long>(w)));
      }
    }
    for (int c : graph.children(v)) {
      if (c < 0 || c >= n) {
        report->Add(kGraphComponent, VersionCtx(v),
                    StrFormat("child %d out of range [0, %d)", c, n));
        continue;
      }
      const auto& ps = graph.parents(c);
      if (std::find(ps.begin(), ps.end(), v) == ps.end()) {
        report->Add(
            kGraphComponent, VersionCtx(v),
            StrFormat("child %d does not list %d as a parent (adjacency "
                      "asymmetry)",
                      c, v));
      }
    }
  }
  int cycle_node = -1;
  if (FindCycle(graph, &cycle_node)) {
    report->Add(kGraphComponent, VersionCtx(cycle_node),
                "version graph contains a cycle (not a DAG)");
  }
}

void ValidatePartitionedStore(const PartitionedStore& store,
                              ValidationReport* report) {
  const int n = store.num_versions();
  const int np = store.num_partitions();

  for (int v = 0; v < n; ++v) {
    int p = store.partition_of(v);
    if (p < 0 || p >= np) {
      report->Add(kStoreComponent, VersionCtx(v),
                  StrFormat("mapped to partition %d out of range [0, %d)", p,
                            np));
    }
  }

  // Which partition's versioning table claims each version (disjointness /
  // covering over the version dimension).
  std::vector<int> claimed_by(n, -1);

  for (int p = 0; p < np; ++p) {
    const minidb::Table& data = store.partition_data_table(p);
    const minidb::Table& versioning = store.partition_versioning_table(p);
    const std::string ctx = PartitionCtx(p);

    // Data rids: unique; physically ordered when the flag claims so.
    const auto& rids = data.column(0).int_data();
    std::unordered_set<int64_t> rid_set;
    rid_set.reserve(rids.size() * 2);
    for (size_t r = 0; r < rids.size(); ++r) {
      if (!rid_set.insert(rids[r]).second) {
        report->Add(kStoreComponent, ctx,
                    StrFormat("duplicate rid %lld in data table",
                              static_cast<long long>(rids[r])));
      }
    }
    if (store.partition_rid_clustered(p) &&
        !std::is_sorted(rids.begin(), rids.end())) {
      report->Add(kStoreComponent, ctx,
                  "rid_clustered flag set but data table is not physically "
                  "ordered by rid");
    }

    data.ValidateIndexes(report);
    versioning.ValidateIndexes(report);

    // Versioning rows: vids valid, owned by this partition, rlists sorted
    // and contained in the data table.
    std::unordered_set<int64_t> referenced;
    referenced.reserve(rids.size() * 2);
    for (uint32_t r = 0; r < versioning.num_rows(); ++r) {
      int64_t vid = versioning.column(0).GetInt(r);
      if (vid < 0 || vid >= n) {
        report->Add(kStoreComponent, ctx,
                    StrFormat("versioning row %u has vid %lld out of range "
                              "[0, %d)",
                              r, static_cast<long long>(vid), n));
        continue;
      }
      int v = static_cast<int>(vid);
      if (claimed_by[v] >= 0) {
        report->Add(kStoreComponent, ctx,
                    StrFormat("version %d also stored in partition %d "
                              "(partitions not disjoint)",
                              v, claimed_by[v]));
      } else {
        claimed_by[v] = p;
      }
      if (store.partition_of(v) != p) {
        report->Add(kStoreComponent, ctx,
                    StrFormat("version %d stored here but mapped to "
                              "partition %d",
                              v, store.partition_of(v)));
      }
      // Compressed rlist cells carry internal invariants of their own
      // (chunk ordering, cardinality agreement, no empty containers,
      // canonical container choice) — check them before materializing.
      if (const auto& set = versioning.column(1).GetRidSet(r); set) {
        if (Status s = set->Validate(); !s.ok()) {
          report->Add(kStoreComponent, ctx,
                      StrFormat("version %d compressed rlist invalid: %s", v,
                                s.ToString().c_str()));
          continue;  // materialized view would be untrustworthy
        }
      }
      const auto& rlist = versioning.column(1).GetIntArray(r);
      for (size_t i = 0; i < rlist.size(); ++i) {
        if (i > 0 && rlist[i] <= rlist[i - 1]) {
          report->Add(kStoreComponent, ctx,
                      StrFormat("version %d rlist not sorted/unique at "
                                "position %zu",
                                v, i));
          break;
        }
      }
      for (int64_t rid : rlist) {
        if (!rid_set.count(rid)) {
          report->Add(kStoreComponent, ctx,
                      StrFormat("version %d references rid %lld missing "
                                "from the data table",
                                v, static_cast<long long>(rid)));
        } else {
          referenced.insert(rid);
        }
      }
    }

    // Coverage over the record dimension: no orphan payload rows.
    for (int64_t rid : rid_set) {
      if (!referenced.count(rid)) {
        report->Add(kStoreComponent, ctx,
                    StrFormat("data rid %lld not referenced by any version "
                              "(orphan record)",
                              static_cast<long long>(rid)));
      }
    }
  }

  for (int v = 0; v < n; ++v) {
    if (claimed_by[v] < 0) {
      report->Add(kStoreComponent, VersionCtx(v),
                  "missing from every partition's versioning table "
                  "(partitions not covering)");
    }
  }
}

void ValidateCvd(const Cvd& cvd, ValidationReport* report) {
  ValidateVersionGraph(cvd.graph(), report);

  const int n = cvd.num_versions();
  const auto& metadata = cvd.metadata();
  if (static_cast<int>(metadata.size()) != n) {
    report->Add(kCvdComponent, cvd.name(),
                StrFormat("metadata has %zu entries for %d versions",
                          metadata.size(), n));
    return;  // index-aligned checks below would be meaningless
  }

  const size_t num_attr_entries = cvd.attribute_table().size();
  std::vector<std::vector<RecordId>> records(n);
  for (int i = 0; i < n; ++i) {
    const VersionMetadata& meta = metadata[i];
    const VersionId vid = i + 1;
    const std::string ctx = StrFormat("%s v%d", cvd.name().c_str(), vid);
    if (meta.vid != vid) {
      report->Add(kCvdComponent, ctx,
                  StrFormat("metadata vid %d does not match commit order",
                            meta.vid));
    }
    for (VersionId p : meta.parents) {
      if (p < 1 || p >= vid) {
        report->Add(kCvdComponent, ctx,
                    StrFormat("parent %d is not an earlier version", p));
      }
    }
    for (int attr : meta.attributes) {
      if (attr < 0 || attr >= static_cast<int>(num_attr_entries)) {
        report->Add(kCvdComponent, ctx,
                    StrFormat("attribute id %d outside the attribute table",
                              attr));
      }
    }
    if (meta.num_records != cvd.graph().num_records(i)) {
      report->Add(kCvdComponent, ctx,
                  StrFormat("metadata records %lld != graph records %lld",
                            static_cast<long long>(meta.num_records),
                            static_cast<long long>(
                                cvd.graph().num_records(i))));
    }
    auto rids = cvd.VersionRecords(vid);
    if (!rids.ok()) {
      report->Add(kCvdComponent, ctx,
                  StrFormat("backend cannot produce the record set: %s",
                            rids.status().ToString().c_str()));
      continue;
    }
    records[i] = rids.MoveValueOrDie();
    if (!SortedUnique(records[i])) {
      report->Add(kCvdComponent, ctx,
                  "backend record set is not sorted and unique");
    }
    if (static_cast<int64_t>(records[i].size()) != meta.num_records) {
      report->Add(kCvdComponent, ctx,
                  StrFormat("backend stores %zu records, metadata claims "
                            "%lld",
                            records[i].size(),
                            static_cast<long long>(meta.num_records)));
    }
  }

  // Bipartite consistency (Sec. 4.3 / 5.2): every version-graph edge weight
  // must equal the true record overlap of its endpoints.
  for (int v = 0; v < n; ++v) {
    for (int p : cvd.graph().parents(v)) {
      if (p < 0 || p >= n) continue;  // reported by ValidateVersionGraph
      int64_t w = cvd.graph().EdgeWeight(p, v);
      int64_t shared = SortedOverlap(records[p], records[v]);
      if (w >= 0 && w != shared) {
        report->Add(kCvdComponent,
                    StrFormat("%s v%d", cvd.name().c_str(), v + 1),
                    StrFormat("edge weight %lld from v%d != true record "
                              "overlap %lld",
                              static_cast<long long>(w), p + 1,
                              static_cast<long long>(shared)));
      }
    }
  }

  for (const std::string& table : cvd.StagedTables()) {
    for (VersionId p : cvd.StagingParents(table)) {
      if (p < 1 || p > n) {
        report->Add(kCvdComponent, cvd.name(),
                    StrFormat("staging table %s references version %d which "
                              "does not exist",
                              table.c_str(), p));
      }
    }
  }
}

}  // namespace orpheus::core
