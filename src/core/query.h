#ifndef ORPHEUS_CORE_QUERY_H_
#define ORPHEUS_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/cvd.h"
#include "minidb/table.h"

namespace orpheus::core {

/// A simple comparison predicate `column op constant`.
struct Condition {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string column;
  Op op = Op::kEq;
  minidb::Value value;

  bool Matches(const minidb::Value& v) const;
};

/// Aggregates supported in version-grouped queries.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

/// `SELECT ... FROM VERSION v1, v2, ... OF CVD cvd WHERE ... LIMIT n`
/// (Sec. 3.3.2): evaluate the conditions over the listed versions without
/// requiring an explicit checkout. The result carries a leading `vid`
/// column, then `_rid`, then the requested columns (empty = all).
Result<minidb::Table> SelectFromVersions(const Cvd& cvd,
                                         const std::vector<VersionId>& vids,
                                         const std::vector<Condition>& where,
                                         const std::vector<std::string>& cols,
                                         int64_t limit = -1);

/// `SELECT vid, AGG(col) FROM CVD cvd WHERE ... GROUP BY vid`: one output
/// row per version. For kCount, `col` may be "*".
Result<minidb::Table> AggregateByVersion(const Cvd& cvd, AggFunc func,
                                         const std::string& col,
                                         const std::vector<Condition>& where);

/// Parse and run one of the two supported SQL forms against `cvd`:
///   SELECT <*|col,...> FROM VERSION <v,...> OF CVD <name>
///       [WHERE col op const [AND ...]] [LIMIT n]
///   SELECT vid, <AGG>(<col|*>) FROM CVD <name>
///       [WHERE col op const [AND ...]] GROUP BY vid
/// The query translator turns these into operations on the backend tables,
/// exactly as OrpheusDB rewrites them into PostgreSQL SQL.
Result<minidb::Table> RunQuery(const Cvd& cvd, const std::string& sql);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_QUERY_H_
