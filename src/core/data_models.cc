#include "core/data_models.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/env.h"
#include "common/ridset.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace orpheus::core {

using minidb::Column;
using minidb::ColumnDef;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

const char* DataModelTypeName(DataModelType t) {
  switch (t) {
    case DataModelType::kATablePerVersion: return "a-table-per-version";
    case DataModelType::kCombinedTable: return "combined-table";
    case DataModelType::kSplitByVlist: return "split-by-vlist";
    case DataModelType::kSplitByRlist: return "split-by-rlist";
    case DataModelType::kDeltaBased: return "delta-based";
  }
  return "?";
}

Schema DataModelBackend::MaterializedSchema() const {
  std::vector<ColumnDef> cols;
  cols.reserve(data_schema_.num_columns() + 1);
  cols.push_back({"_rid", ValueType::kInt64});
  for (const auto& def : data_schema_.columns()) cols.push_back(def);
  return Schema(std::move(cols));
}

std::unique_ptr<DataModelBackend> DataModelBackend::Create(
    DataModelType type, Schema data_schema) {
  switch (type) {
    case DataModelType::kATablePerVersion:
      return std::make_unique<ATablePerVersionBackend>(std::move(data_schema));
    case DataModelType::kCombinedTable:
      return std::make_unique<CombinedTableBackend>(std::move(data_schema));
    case DataModelType::kSplitByVlist:
      return std::make_unique<SplitByVlistBackend>(std::move(data_schema));
    case DataModelType::kSplitByRlist:
      return std::make_unique<SplitByRlistBackend>(std::move(data_schema));
    case DataModelType::kDeltaBased:
      return std::make_unique<DeltaBasedBackend>(std::move(data_schema));
  }
  return nullptr;
}

namespace {

// Append {rid, data...} to a materialized-schema table.
void AppendRidRow(Table* table, RecordId rid, const Row& data) {
  Row full;
  full.reserve(data.size() + 1);
  full.emplace_back(static_cast<int64_t>(rid));
  for (const auto& v : data) full.push_back(v);
  table->AppendRowUnchecked(full);
}

Status BadVersion(int vid) {
  return Status::NotFound(StrFormat("version %d not registered", vid));
}

}  // namespace

// ---------------------------------------------------------------------------
// ATablePerVersionBackend
// ---------------------------------------------------------------------------

Status ATablePerVersionBackend::AddVersion(
    int vid, const std::vector<RecordId>& rids,
    const std::vector<NewRecord>& new_records,
    const std::vector<int>& parents) {
  if (vid != num_versions_) {
    return Status::InvalidArgument("versions must be added in order");
  }
  Table vtab(StrFormat("v%d", vid), MaterializedSchema());

  // Records inherited from parents are bulk-copied; new payloads appended.
  std::unordered_set<RecordId> fresh;
  fresh.reserve(new_records.size() * 2);
  for (const auto& nr : new_records) fresh.insert(nr.rid);

  std::unordered_set<RecordId> remaining;
  remaining.reserve(rids.size() * 2);
  for (RecordId rid : rids) {
    if (!fresh.count(rid)) remaining.insert(rid);
  }
  for (int p : parents) {
    if (remaining.empty()) break;
    const Table& ptab = version_tables_[p];
    std::vector<uint32_t> rows;
    rows.reserve(remaining.size());
    const auto& prids = ptab.column(0).int_data();
    for (uint32_t r = 0; r < ptab.num_rows(); ++r) {
      auto it = remaining.find(prids[r]);
      if (it != remaining.end()) {
        rows.push_back(r);
        remaining.erase(it);
      }
    }
    vtab.AppendFrom(ptab, rows);
  }
  if (!remaining.empty()) {
    return Status::Corruption(
        StrFormat("%zu records of v%d not found in parents or new records",
                  remaining.size(), vid));
  }
  for (const auto& nr : new_records) AppendRidRow(&vtab, nr.rid, nr.data);
  ORPHEUS_RETURN_NOT_OK(vtab.BuildUniqueIntIndex(0));
  version_tables_.push_back(std::move(vtab));
  ++num_versions_;
  return Status::OK();
}

Result<std::vector<RecordId>> ATablePerVersionBackend::VersionRecords(
    int vid) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  const auto& rids = version_tables_[vid].column(0).int_data();
  std::vector<RecordId> out(rids.begin(), rids.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<minidb::Table> ATablePerVersionBackend::Checkout(
    int vid, const std::string& out) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  // Simply read the version's table out in full.
  Table t = version_tables_[vid].Clone(out);
  return t;
}

Result<minidb::Row> ATablePerVersionBackend::GetRecordPayload(
    RecordId rid, int version_hint) const {
  auto fetch = [this, rid](int v) -> std::optional<Row> {
    auto hit = version_tables_[v].LookupUniqueInt(0, rid);
    if (!hit) return std::nullopt;
    Row full = version_tables_[v].GetRow(*hit);
    return Row(full.begin() + 1, full.end());
  };
  if (version_hint >= 0 && version_hint < num_versions_) {
    if (auto row = fetch(version_hint)) return *row;
  }
  for (int v = num_versions_ - 1; v >= 0; --v) {
    if (auto row = fetch(v)) return *row;
  }
  return Status::NotFound(StrFormat("rid %lld", static_cast<long long>(rid)));
}

uint64_t ATablePerVersionBackend::StorageBytes() const {
  uint64_t bytes = 0;
  for (const auto& t : version_tables_) bytes += t.StorageBytes();
  return bytes;
}

Status ATablePerVersionBackend::AddAttribute(const ColumnDef& def) {
  data_schema_.AddColumn(def);
  for (auto& t : version_tables_) {
    ORPHEUS_RETURN_NOT_OK(t.AddColumn(def));
  }
  return Status::OK();
}

Status ATablePerVersionBackend::WidenAttribute(int attr_idx, ValueType to) {
  for (auto& t : version_tables_) {
    ORPHEUS_RETURN_NOT_OK(t.WidenColumn(attr_idx + 1, to));
  }
  data_schema_.SetColumnType(static_cast<size_t>(attr_idx), to);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CombinedTableBackend
// ---------------------------------------------------------------------------

namespace {

Schema CombinedSchema(const Schema& data_schema) {
  std::vector<ColumnDef> cols;
  cols.push_back({"_rid", ValueType::kInt64});
  for (const auto& def : data_schema.columns()) cols.push_back(def);
  cols.push_back({"vlist", ValueType::kIntArray});
  return Schema(std::move(cols));
}

}  // namespace

CombinedTableBackend::CombinedTableBackend(Schema data_schema)
    : DataModelBackend(std::move(data_schema)),
      combined_("combined", CombinedSchema(data_schema_)),
      vlist_col_(static_cast<int>(data_schema_.num_columns()) + 1) {
  // A fresh empty table cannot contain duplicate keys.
  ORPHEUS_CHECK_OK(combined_.BuildUniqueIntIndex(0));
}

Status CombinedTableBackend::AddVersion(
    int vid, const std::vector<RecordId>& rids,
    const std::vector<NewRecord>& new_records,
    const std::vector<int>& parents) {
  if (vid != num_versions_) {
    return Status::InvalidArgument("versions must be added in order");
  }
  std::unordered_set<RecordId> fresh;
  for (const auto& nr : new_records) fresh.insert(nr.rid);
  // Existing records: `UPDATE combined SET vlist = vlist + vid WHERE rid IN
  // (...)` — per-tuple rewrite, the expensive path of Fig. 4.1(b).
  for (RecordId rid : rids) {
    if (fresh.count(rid)) continue;
    auto row = combined_.LookupUniqueInt(0, rid);
    if (!row) return Status::Corruption("rid missing from combined table");
    combined_.RewriteRowAppendToArray(*row, vlist_col_, vid);
  }
  // New records are inserted with vlist = {vid}. Attributes added after
  // table creation live physically beyond the vlist column.
  const size_t n0 = static_cast<size_t>(vlist_col_) - 1;
  for (const auto& nr : new_records) {
    Row full;
    full.reserve(nr.data.size() + 2);
    full.emplace_back(static_cast<int64_t>(nr.rid));
    for (size_t k = 0; k < n0; ++k) full.push_back(nr.data[k]);
    full.emplace_back(std::vector<int64_t>{vid});
    for (size_t k = n0; k < nr.data.size(); ++k) full.push_back(nr.data[k]);
    combined_.AppendRowUnchecked(full);
  }
  ++num_versions_;
  return Status::OK();
}

Result<std::vector<RecordId>> CombinedTableBackend::VersionRecords(
    int vid) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  std::vector<uint32_t> rows = combined_.SelectRowsArrayContains(vlist_col_, vid);
  std::vector<RecordId> out;
  out.reserve(rows.size());
  const auto& rids = combined_.column(0).int_data();
  for (uint32_t r : rows) out.push_back(rids[r]);
  std::sort(out.begin(), out.end());
  return out;
}

Result<minidb::Table> CombinedTableBackend::Checkout(
    int vid, const std::string& out) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  // One full scan with the array-containment filter (Table 4.1 checkout).
  std::vector<uint32_t> rows = combined_.SelectRowsArrayContains(vlist_col_, vid);
  std::vector<int> cols;
  cols.reserve(data_schema_.num_columns() + 1);
  cols.push_back(0);  // _rid
  for (size_t k = 0; k < data_schema_.num_columns(); ++k) {
    cols.push_back(PhysicalDataCol(static_cast<int>(k)));
  }
  return combined_.ProjectRows(rows, cols, out);
}

Result<minidb::Row> CombinedTableBackend::GetRecordPayload(
    RecordId rid, int version_hint) const {
  auto row = combined_.LookupUniqueInt(0, rid);
  if (!row) {
    return Status::NotFound(StrFormat("rid %lld", static_cast<long long>(rid)));
  }
  Row out;
  out.reserve(data_schema_.num_columns());
  for (size_t k = 0; k < data_schema_.num_columns(); ++k) {
    out.push_back(combined_.GetValue(*row, PhysicalDataCol(static_cast<int>(k))));
  }
  return out;
}

uint64_t CombinedTableBackend::StorageBytes() const {
  return combined_.StorageBytes();
}

Status CombinedTableBackend::AddAttribute(const ColumnDef& def) {
  // Insert before the trailing vlist column: minidb appends only, so we
  // record the attribute at the end of the data schema and remember vlist's
  // position separately.
  data_schema_.AddColumn(def);
  ORPHEUS_RETURN_NOT_OK(combined_.AddColumn(def));
  return Status::OK();
}

Status CombinedTableBackend::WidenAttribute(int attr_idx, ValueType to) {
  ORPHEUS_RETURN_NOT_OK(combined_.WidenColumn(PhysicalDataCol(attr_idx), to));
  data_schema_.SetColumnType(static_cast<size_t>(attr_idx), to);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SplitByVlistBackend
// ---------------------------------------------------------------------------

SplitByVlistBackend::SplitByVlistBackend(Schema data_schema)
    : DataModelBackend(std::move(data_schema)),
      data_("data", MaterializedSchema()),
      versioning_("versioning",
                  Schema({{"_rid", ValueType::kInt64},
                          {"vlist", ValueType::kIntArray}})) {
  // Fresh empty tables cannot contain duplicate keys.
  ORPHEUS_CHECK_OK(data_.BuildUniqueIntIndex(0));
  ORPHEUS_CHECK_OK(versioning_.BuildUniqueIntIndex(0));
}

Status SplitByVlistBackend::AddVersion(int vid,
                                       const std::vector<RecordId>& rids,
                                       const std::vector<NewRecord>& new_records,
                                       const std::vector<int>& parents) {
  if (vid != num_versions_) {
    return Status::InvalidArgument("versions must be added in order");
  }
  std::unordered_set<RecordId> fresh;
  for (const auto& nr : new_records) fresh.insert(nr.rid);
  // Existing records: append vid to the versioning table's vlist — still a
  // per-tuple UPDATE, but on a narrow table (cheaper than combined-table,
  // still far costlier than split-by-rlist).
  for (RecordId rid : rids) {
    if (fresh.count(rid)) continue;
    auto row = versioning_.LookupUniqueInt(0, rid);
    if (!row) return Status::Corruption("rid missing from versioning table");
    versioning_.RewriteRowAppendToArray(*row, 1, vid);
  }
  for (const auto& nr : new_records) {
    AppendRidRow(&data_, nr.rid, nr.data);
    Row vrow;
    vrow.emplace_back(static_cast<int64_t>(nr.rid));
    vrow.emplace_back(std::vector<int64_t>{vid});
    versioning_.AppendRowUnchecked(vrow);
  }
  ++num_versions_;
  return Status::OK();
}

Result<std::vector<RecordId>> SplitByVlistBackend::VersionRecords(
    int vid) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  std::vector<uint32_t> rows = versioning_.SelectRowsArrayContains(1, vid);
  std::vector<RecordId> out;
  out.reserve(rows.size());
  const auto& rids = versioning_.column(0).int_data();
  for (uint32_t r : rows) out.push_back(rids[r]);
  std::sort(out.begin(), out.end());
  return out;
}

Result<minidb::Table> SplitByVlistBackend::Checkout(
    int vid, const std::string& out) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  // Scan the versioning table for rids in the version...
  std::vector<uint32_t> vrows = versioning_.SelectRowsArrayContains(1, vid);
  std::vector<int64_t> rlist;
  rlist.reserve(vrows.size());
  const auto& rids = versioning_.column(0).int_data();
  for (uint32_t r : vrows) rlist.push_back(rids[r]);
  // ... then hash-join with the data table.
  std::vector<uint32_t> rows = minidb::JoinRids(
      data_, 0, rlist, minidb::JoinAlgorithm::kHashJoin,
      /*clustered_on_rid=*/true);
  return data_.CopyRows(rows, out);
}

Result<minidb::Row> SplitByVlistBackend::GetRecordPayload(
    RecordId rid, int version_hint) const {
  auto row = data_.LookupUniqueInt(0, rid);
  if (!row) {
    return Status::NotFound(StrFormat("rid %lld", static_cast<long long>(rid)));
  }
  Row full = data_.GetRow(*row);
  return Row(full.begin() + 1, full.end());
}

uint64_t SplitByVlistBackend::StorageBytes() const {
  return data_.StorageBytes() + versioning_.StorageBytes();
}

Status SplitByVlistBackend::AddAttribute(const ColumnDef& def) {
  data_schema_.AddColumn(def);
  return data_.AddColumn(def);
}

Status SplitByVlistBackend::WidenAttribute(int attr_idx, ValueType to) {
  ORPHEUS_RETURN_NOT_OK(data_.WidenColumn(attr_idx + 1, to));
  data_schema_.SetColumnType(static_cast<size_t>(attr_idx), to);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SplitByRlistBackend
// ---------------------------------------------------------------------------

SplitByRlistBackend::SplitByRlistBackend(Schema data_schema)
    : DataModelBackend(std::move(data_schema)),
      data_("data", MaterializedSchema()),
      versioning_("versioning", Schema({{"vid", ValueType::kInt64},
                                        {"rlist", ValueType::kIntArray}})) {
  // Fresh empty tables cannot contain duplicate keys.
  ORPHEUS_CHECK_OK(data_.BuildUniqueIntIndex(0));
  ORPHEUS_CHECK_OK(versioning_.BuildUniqueIntIndex(0));
}

Status SplitByRlistBackend::AddVersion(int vid,
                                       const std::vector<RecordId>& rids,
                                       const std::vector<NewRecord>& new_records,
                                       const std::vector<int>& parents) {
  if (vid != num_versions_) {
    return Status::InvalidArgument("versions must be added in order");
  }
  // New records go to the data table; the commit then adds exactly one
  // versioning tuple — no array-append UPDATEs at all (Approach 4.3).
  for (const auto& nr : new_records) {
    const auto& drids = data_.column(0).int_data();
    if (!drids.empty() && nr.rid <= drids.back()) {
      data_rid_ascending_ = false;
    }
    AppendRidRow(&data_, nr.rid, nr.data);
  }
  Row vrow;
  vrow.emplace_back(static_cast<int64_t>(vid));
  vrow.emplace_back(std::vector<int64_t>(rids.begin(), rids.end()));
  versioning_.AppendRowUnchecked(vrow);
  ++num_versions_;
  return Status::OK();
}

Result<std::vector<RecordId>> SplitByRlistBackend::VersionRecords(
    int vid) const {
  auto row = versioning_.LookupUniqueInt(0, vid);
  if (!row) return BadVersion(vid);
  const auto& rlist = versioning_.column(1).GetIntArray(*row);
  return std::vector<RecordId>(rlist.begin(), rlist.end());
}

Result<minidb::Table> SplitByRlistBackend::Checkout(
    int vid, const std::string& out) const {
  // Primary-key index lookup on vid, unnest(rlist)...
  auto row = versioning_.LookupUniqueInt(0, vid);
  if (!row) return BadVersion(vid);
  // Compressed rlists skip unnesting entirely: the containment join runs
  // against the packed containers (IntersectToRows when the data table is
  // rid-ascending, a parallel probe scan otherwise). An explicitly chosen
  // non-default join algorithm (the Sec. 5.5.5 ablation) still runs its
  // requested plan over the materialized rlist.
  const auto& rlist_set = versioning_.column(1).GetRidSet(*row);
  if (rlist_set && join_algo_ == minidb::JoinAlgorithm::kHashJoin) {
    std::vector<uint32_t> rows =
        minidb::JoinRidSet(data_, 0, *rlist_set, data_rid_ascending_);
    return data_.CopyRows(rows, out);
  }
  const auto& rlist = versioning_.column(1).GetIntArray(*row);
  // ... then join rids with the data table (hash-join by default).
  std::vector<uint32_t> rows =
      minidb::JoinRids(data_, 0, rlist, join_algo_, /*clustered_on_rid=*/true);
  return data_.CopyRows(rows, out);
}

Result<minidb::Row> SplitByRlistBackend::GetRecordPayload(
    RecordId rid, int version_hint) const {
  auto row = data_.LookupUniqueInt(0, rid);
  if (!row) {
    return Status::NotFound(StrFormat("rid %lld", static_cast<long long>(rid)));
  }
  Row full = data_.GetRow(*row);
  return Row(full.begin() + 1, full.end());
}

uint64_t SplitByRlistBackend::StorageBytes() const {
  return data_.StorageBytes() + versioning_.StorageBytes();
}

Status SplitByRlistBackend::AddAttribute(const ColumnDef& def) {
  data_schema_.AddColumn(def);
  return data_.AddColumn(def);
}

Status SplitByRlistBackend::WidenAttribute(int attr_idx, ValueType to) {
  ORPHEUS_RETURN_NOT_OK(data_.WidenColumn(attr_idx + 1, to));
  data_schema_.SetColumnType(static_cast<size_t>(attr_idx), to);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DeltaBasedBackend
// ---------------------------------------------------------------------------

Status DeltaBasedBackend::AddVersion(int vid, const std::vector<RecordId>& rids,
                                     const std::vector<NewRecord>& new_records,
                                     const std::vector<int>& parents) {
  if (vid != num_versions_) {
    return Status::InvalidArgument("versions must be added in order");
  }
  Delta delta(MaterializedSchema(), StrFormat("delta_v%d", vid));

  // Pick the base: the parent sharing the most records (Approach 4.4).
  int base = -1;
  int64_t best_shared = -1;
  for (int p : parents) {
    const auto& prids = membership_[p];
    int64_t shared = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < rids.size() && j < prids.size()) {
      if (rids[i] < prids[j]) {
        ++i;
      } else if (rids[i] > prids[j]) {
        ++j;
      } else {
        ++shared;
        ++i;
        ++j;
      }
    }
    if (shared > best_shared) {
      best_shared = shared;
      base = p;
    }
  }
  delta.base = base;

  std::unordered_map<RecordId, const Row*> fresh;
  for (const auto& nr : new_records) fresh.emplace(nr.rid, &nr.data);

  const std::vector<RecordId> empty;
  const std::vector<RecordId>& base_rids =
      base >= 0 ? membership_[base] : empty;

  // inserts = rids \ base; deletes = base \ rids.
  size_t i = 0;
  size_t j = 0;
  std::vector<RecordId> inserted;
  while (i < rids.size() || j < base_rids.size()) {
    if (j >= base_rids.size() || (i < rids.size() && rids[i] < base_rids[j])) {
      inserted.push_back(rids[i]);
      ++i;
    } else if (i >= rids.size() || rids[i] > base_rids[j]) {
      delta.deletes.push_back(base_rids[j]);
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  for (RecordId rid : inserted) {
    auto it = fresh.find(rid);
    if (it != fresh.end()) {
      AppendRidRow(&delta.inserts, rid, *it->second);
      continue;
    }
    // The record came from a non-base parent (merge): fetch its payload
    // through that parent's chain.
    bool found = false;
    for (int p : parents) {
      if (p == base) continue;
      auto payload = GetRecordPayload(rid, p);
      if (payload.ok()) {
        AppendRidRow(&delta.inserts, rid, *payload);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Corruption(
          StrFormat("payload for rid %lld unavailable",
                    static_cast<long long>(rid)));
    }
  }
  ORPHEUS_RETURN_NOT_OK(delta.inserts.BuildUniqueIntIndex(0));
  deltas_.push_back(std::move(delta));
  membership_.push_back(rids);
  ++num_versions_;
  return Status::OK();
}

Result<std::vector<RecordId>> DeltaBasedBackend::VersionRecords(
    int vid) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  return membership_[vid];
}

Result<minidb::Table> DeltaBasedBackend::Checkout(
    int vid, const std::string& out) const {
  if (vid < 0 || vid >= num_versions_) return BadVersion(vid);
  // Trace the version lineage back to the root via `base` links, probing
  // each delta table for still-needed records (newer occurrences win).
  // Membership lists are sorted, so large needed sets live as a compressed
  // RidSet shrunk with set Difference per hop; the hash set remains for
  // small memberships (each hop rebuilds the whole needed set, so below the
  // crossover the per-hop Difference costs more than hash erasure saves)
  // and as the ORPHEUS_RIDSET=0 fallback. Both probes visit rows in
  // identical order, so the checked-out table is byte-identical.
  static const size_t kRidSetMinMembership = static_cast<size_t>(
      orpheus::ParseEnvInt("ORPHEUS_RIDSET_DELTA_MIN", 1 << 15, 0, 1 << 30));
  Table result(out, MaterializedSchema());
  if (orpheus::RidSetEnabled() &&
      membership_[vid].size() >= kRidSetMinMembership &&
      std::is_sorted(membership_[vid].begin(), membership_[vid].end())) {
    orpheus::RidSet needed = orpheus::RidSet::FromSorted(membership_[vid]);
    int v = vid;
    while (v >= 0 && !needed.empty()) {
      const Delta& d = deltas_[v];
      const auto& rids = d.inserts.column(0).int_data();
      std::vector<uint32_t> rows = ParallelCollect<uint32_t>(
          d.inserts.num_rows(), 1 << 15,
          [&needed, &rids](size_t lo, size_t hi, std::vector<uint32_t>* hit) {
            size_t hint = 0;
            for (size_t r = lo; r < hi; ++r) {
              if (needed.ContainsHint(rids[r], &hint)) {
                hit->push_back(static_cast<uint32_t>(r));
              }
            }
          });
      std::vector<int64_t> found;
      found.reserve(rows.size());
      for (uint32_t r : rows) found.push_back(rids[r]);
      std::sort(found.begin(), found.end());
      needed = needed.Difference(orpheus::RidSet::FromSorted(found));
      result.AppendFrom(d.inserts, rows);
      v = d.base;
    }
    if (!needed.empty()) {
      return Status::Corruption("delta chain did not cover the version");
    }
    return result;
  }
  std::unordered_set<RecordId> needed(membership_[vid].begin(),
                                      membership_[vid].end());
  int v = vid;
  while (v >= 0 && !needed.empty()) {
    const Delta& d = deltas_[v];
    const auto& rids = d.inserts.column(0).int_data();
    // Parallel hash probe of this delta's rid column against the needed
    // set (read-only during the scan; rids are unique within a delta, so
    // deferring the erasures cannot double-match). Chunks stitch in row
    // order — identical to the serial probe.
    std::vector<uint32_t> rows = ParallelCollect<uint32_t>(
        d.inserts.num_rows(), 1 << 15,
        [&needed, &rids](size_t lo, size_t hi, std::vector<uint32_t>* hit) {
          for (size_t r = lo; r < hi; ++r) {
            if (needed.count(rids[r])) {
              hit->push_back(static_cast<uint32_t>(r));
            }
          }
        });
    for (uint32_t r : rows) needed.erase(rids[r]);
    result.AppendFrom(d.inserts, rows);
    v = d.base;
  }
  if (!needed.empty()) {
    return Status::Corruption("delta chain did not cover the version");
  }
  return result;
}

Result<minidb::Row> DeltaBasedBackend::GetRecordPayload(
    RecordId rid, int version_hint) const {
  int v = version_hint >= 0 && version_hint < num_versions_
              ? version_hint
              : num_versions_ - 1;
  while (v >= 0) {
    auto hit = deltas_[v].inserts.LookupUniqueInt(0, rid);
    if (hit) {
      Row full = deltas_[v].inserts.GetRow(*hit);
      return Row(full.begin() + 1, full.end());
    }
    v = deltas_[v].base;
  }
  // Not on the hinted chain: fall back to scanning all deltas.
  for (int d = num_versions_ - 1; d >= 0; --d) {
    auto hit = deltas_[d].inserts.LookupUniqueInt(0, rid);
    if (hit) {
      Row full = deltas_[d].inserts.GetRow(*hit);
      return Row(full.begin() + 1, full.end());
    }
  }
  return Status::NotFound(StrFormat("rid %lld", static_cast<long long>(rid)));
}

uint64_t DeltaBasedBackend::StorageBytes() const {
  uint64_t bytes = 0;
  for (const auto& d : deltas_) {
    bytes += d.inserts.StorageBytes();
    bytes += d.deletes.size() * 8;
    bytes += 16;  // precedent metadata tuple (vid, base)
  }
  return bytes;
}

Status DeltaBasedBackend::AddAttribute(const ColumnDef& def) {
  data_schema_.AddColumn(def);
  for (auto& d : deltas_) {
    ORPHEUS_RETURN_NOT_OK(d.inserts.AddColumn(def));
  }
  return Status::OK();
}

Status DeltaBasedBackend::WidenAttribute(int attr_idx, ValueType to) {
  for (auto& d : deltas_) {
    ORPHEUS_RETURN_NOT_OK(d.inserts.WidenColumn(attr_idx + 1, to));
  }
  data_schema_.SetColumnType(static_cast<size_t>(attr_idx), to);
  return Status::OK();
}

}  // namespace orpheus::core
