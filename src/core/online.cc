#include "core/online.h"

#include <algorithm>
#include <cassert>

namespace orpheus::core {

OnlineMaintainer::OnlineMaintainer(const VersionGraph* graph,
                                   const Options& options)
    : graph_(graph), options_(options) {}

void OnlineMaintainer::Bootstrap(const LyreSplitResult& initial) {
  best_plan_ = initial;
  current_ = initial.partitioning;
  delta_star_ = initial.delta;
  versions_seen_ = static_cast<int>(current_.partition_of.size());

  part_records_.assign(current_.num_partitions, 0);
  part_versions_.assign(current_.num_partitions, 0);
  std::vector<int> tree_parent = graph_->ToTree();
  total_records_ = 0;
  for (int v = 0; v < versions_seen_; ++v) {
    int part = current_.partition_of[v];
    ++part_versions_[part];
    int p = tree_parent[v];
    int64_t add = p >= 0 && current_.partition_of[p] == part
                      ? graph_->num_records(v) - graph_->EdgeWeight(p, v)
                      : graph_->num_records(v);
    part_records_[part] += static_cast<uint64_t>(add);
    int64_t fresh = p >= 0 ? graph_->num_records(v) - graph_->EdgeWeight(p, v)
                           : graph_->num_records(v);
    total_records_ += static_cast<uint64_t>(fresh);
  }
  storage_ = 0;
  for (uint64_t r : part_records_) storage_ += r;
}

double OnlineMaintainer::current_checkout_cost() const {
  double sum = 0.0;
  for (size_t k = 0; k < part_records_.size(); ++k) {
    sum += static_cast<double>(part_records_[k]) *
           static_cast<double>(part_versions_[k]);
  }
  return versions_seen_ > 0 ? sum / static_cast<double>(versions_seen_) : 0.0;
}

void OnlineMaintainer::Replan() {
  uint64_t gamma = static_cast<uint64_t>(
      options_.gamma_factor * static_cast<double>(total_records_));
  best_plan_ = LyreSplitForBudget(*graph_, gamma);
  delta_star_ = best_plan_.delta;
}

int OnlineMaintainer::OnCommit(int v, bool* migration_needed) {
  assert(v == versions_seen_);
  // Best parent: highest-weight in-edge (the version inherits most from it).
  const auto& parents = graph_->parents(v);
  int best_parent = -1;
  int64_t w = 0;
  for (int p : parents) {
    int64_t pw = graph_->EdgeWeight(p, v);
    if (pw > w) {
      w = pw;
      best_parent = p;
    }
  }
  int64_t fresh = graph_->num_records(v) - w;
  total_records_ += static_cast<uint64_t>(fresh);
  uint64_t gamma = static_cast<uint64_t>(
      options_.gamma_factor * static_cast<double>(total_records_));

  int chosen;
  if (best_parent < 0 ||
      (static_cast<double>(w) <=
           delta_star_ * static_cast<double>(total_records_) &&
       storage_ + static_cast<uint64_t>(graph_->num_records(v)) <= gamma)) {
    // Low overlap with the parent and room in the budget: new partition.
    chosen = current_.num_partitions++;
    part_records_.push_back(static_cast<uint64_t>(graph_->num_records(v)));
    part_versions_.push_back(1);
    storage_ += static_cast<uint64_t>(graph_->num_records(v));
  } else {
    // High overlap: join the parent's partition, adding only the delta.
    chosen = current_.partition_of[best_parent];
    part_records_[chosen] += static_cast<uint64_t>(fresh);
    ++part_versions_[chosen];
    storage_ += static_cast<uint64_t>(fresh);
  }
  current_.partition_of.push_back(chosen);
  ++versions_seen_;

  if (versions_seen_ % std::max(1, options_.replan_every) == 0) {
    Replan();
  }
  if (migration_needed) {
    *migration_needed =
        best_plan_.estimated.checkout_avg > 0 &&
        current_checkout_cost() >
            options_.mu * best_plan_.estimated.checkout_avg;
  }
  return chosen;
}

void OnlineMaintainer::OnMigrated() {
  // Recompute the plan over the complete graph, then adopt it.
  Replan();
  Bootstrap(best_plan_);
}

}  // namespace orpheus::core
