#ifndef ORPHEUS_CORE_PARTITIONING_H_
#define ORPHEUS_CORE_PARTITIONING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"
#include "core/version_graph.h"

namespace orpheus::core {

/// Assignment of versions to partitions: each version lives in exactly one
/// partition; records are implicitly duplicated across partitions (Sec. 5.1).
struct Partitioning {
  std::vector<int> partition_of;  // version index -> partition id
  int num_partitions = 0;

  static Partitioning SinglePartition(int num_versions) {
    Partitioning p;
    p.partition_of.assign(num_versions, 0);
    p.num_partitions = 1;
    return p;
  }
  static Partitioning OnePerVersion(int num_versions) {
    Partitioning p;
    p.partition_of.resize(num_versions);
    for (int i = 0; i < num_versions; ++i) p.partition_of[i] = i;
    p.num_partitions = num_versions;
    return p;
  }

  /// Versions grouped by partition.
  std::vector<std::vector<int>> Groups() const;
};

/// Access to a versioned dataset's record membership, decoupled from where
/// it lives (benchmark generator, CVD backend, ...).
struct RecordSetView {
  int num_versions = 0;
  /// Sorted rids of version v.
  std::function<const std::vector<RecordId>&(int v)> records_of;
};

/// The two partitioning metrics of Sec. 5.1, in units of records.
struct PartitionCosts {
  uint64_t storage = 0;        // S = sum over partitions of |R_k|
  double checkout_avg = 0.0;   // C_avg = sum |V_k||R_k| / n
  uint64_t max_partition = 0;  // largest |R_k|
};

/// Exact costs, computed from real record sets (unions per partition).
PartitionCosts ComputeExactCosts(const RecordSetView& view,
                                 const Partitioning& partitioning);

/// Estimated costs computed only from the version tree (node sizes + edge
/// weights), assuming the no-cross-version-diff rule: the union of a
/// connected tree component is size(root) + sum of (size(v) - w(parent,v)).
/// This is what LyreSplit itself reasons about (Figs. 5.20/5.21).
PartitionCosts ComputeTreeEstimatedCosts(const VersionGraph& graph,
                                         const std::vector<int>& tree_parent,
                                         const Partitioning& partitioning);

/// Per-version checkout cost |R_k| of the partition containing it.
std::vector<uint64_t> PerVersionCheckoutCost(const RecordSetView& view,
                                             const Partitioning& partitioning);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_PARTITIONING_H_
