#ifndef ORPHEUS_CORE_VALIDATE_H_
#define ORPHEUS_CORE_VALIDATE_H_

#include "common/validation.h"
#include "core/cvd.h"
#include "core/partition_store.h"
#include "core/version_graph.h"

namespace orpheus::core {

/// Structural invariant checks for the core data structures (the validator
/// subsystem behind `fsck` and ORPHEUS_VALIDATE). Every checker appends all
/// the violations it finds to `report` instead of stopping at the first.
///
/// Invariant catalog (see DESIGN.md):
///  - version graph: edges in range, no self edges or duplicate parents,
///    parent/child adjacency symmetric, acyclic, edge weights recorded and
///    bounded by both endpoint record counts;
///  - partition store: every version in exactly one partition (disjoint and
///    covering), versioning rows agree with the version->partition map,
///    rlists sorted/unique and contained in the partition's data table, no
///    orphan or duplicate data records, the rid_clustered flag only set when
///    the data table is physically rid-ordered, unique indexes agree with
///    the payload (minidb::Table::ValidateIndexes);
///  - CVD: metadata/version-graph/backend agreement (vid numbering, parent
///    validity, record counts), per-version rid lists sorted and unique,
///    edge weights equal to the true record overlap (the bipartite
///    version--record consistency), attribute ids within the attribute
///    table, staging registrations referencing live versions.

/// Check the version graph G = (V, E).
void ValidateVersionGraph(const VersionGraph& graph, ValidationReport* report);

/// Check a partitioned store (Sec. 5.1) in isolation.
void ValidatePartitionedStore(const PartitionedStore& store,
                              ValidationReport* report);

/// Check a CVD end to end: version graph, metadata, backend record sets,
/// and staging registrations.
void ValidateCvd(const Cvd& cvd, ValidationReport* report);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_VALIDATE_H_
