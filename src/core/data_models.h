#ifndef ORPHEUS_CORE_DATA_MODELS_H_
#define ORPHEUS_CORE_DATA_MODELS_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/types.h"
#include "minidb/join.h"
#include "minidb/table.h"

namespace orpheus::core {

/// The five candidate physical representations for a CVD (Chapter 4).
enum class DataModelType {
  kATablePerVersion,  // Approach 4.5
  kCombinedTable,     // Approach 4.1
  kSplitByVlist,      // Approach 4.2
  kSplitByRlist,      // Approach 4.3 — OrpheusDB's chosen model
  kDeltaBased,        // Approach 4.4
};

const char* DataModelTypeName(DataModelType t);

/// A record whose payload is not yet stored in the CVD: its freshly assigned
/// rid plus the data-attribute values (no rid column).
struct NewRecord {
  RecordId rid;
  minidb::Row data;
};

/// Physical storage backend for one CVD. Versions are dense indices assigned
/// by the caller in commit order; rids are assigned by the record manager.
///
/// All backends expose the same logical operations so Chapter 4's comparison
/// (Fig. 4.1) is an apples-to-apples sweep over this interface.
class DataModelBackend {
 public:
  virtual ~DataModelBackend() = default;

  virtual DataModelType type() const = 0;
  const char* name() const { return DataModelTypeName(type()); }

  /// Current data-attribute schema (no rid column).
  const minidb::Schema& data_schema() const { return data_schema_; }
  int num_versions() const { return num_versions_; }

  /// Register version `vid` == num_versions() with sorted record membership
  /// `rids`, the payloads of records never stored before (`new_records`,
  /// sorted by rid; every new rid must appear in `rids`), and its parent
  /// version indices.
  virtual Status AddVersion(int vid, const std::vector<RecordId>& rids,
                            const std::vector<NewRecord>& new_records,
                            const std::vector<int>& parents) = 0;

  /// Sorted rids of version `vid`.
  virtual Result<std::vector<RecordId>> VersionRecords(int vid) const = 0;

  /// Materialize version `vid` as a table named `out` with schema
  /// [_rid, data attributes...].
  virtual Result<minidb::Table> Checkout(int vid,
                                         const std::string& out) const = 0;

  /// Fetch the payload of a single record by rid (used by commit's
  /// modification detection). `version_hint` is a version known to contain
  /// the rid (or a good starting point).
  virtual Result<minidb::Row> GetRecordPayload(RecordId rid,
                                               int version_hint) const = 0;

  /// Bytes of physical storage (data + versioning info + indexes); what
  /// Fig. 4.1(a) plots.
  virtual uint64_t StorageBytes() const = 0;

  /// Schema evolution: add a data attribute (single-pool model, Sec. 4.3).
  virtual Status AddAttribute(const minidb::ColumnDef& def) = 0;

  /// Schema evolution: widen data attribute `attr_idx` to a more general
  /// type (e.g. int64 -> double, Sec. 4.3's integer -> decimal).
  virtual Status WidenAttribute(int attr_idx, minidb::ValueType to) = 0;

  static std::unique_ptr<DataModelBackend> Create(DataModelType type,
                                                  minidb::Schema data_schema);

 protected:
  explicit DataModelBackend(minidb::Schema data_schema)
      : data_schema_(std::move(data_schema)) {}

  /// Schema of a materialized table: [_rid, data attributes...].
  minidb::Schema MaterializedSchema() const;

  minidb::Schema data_schema_;
  int num_versions_ = 0;
};

// ---------------------------------------------------------------------------
// Approach 4.5: one full table per version.
// ---------------------------------------------------------------------------
class ATablePerVersionBackend final : public DataModelBackend {
 public:
  explicit ATablePerVersionBackend(minidb::Schema data_schema)
      : DataModelBackend(std::move(data_schema)) {}

  DataModelType type() const override {
    return DataModelType::kATablePerVersion;
  }
  Status AddVersion(int vid, const std::vector<RecordId>& rids,
                    const std::vector<NewRecord>& new_records,
                    const std::vector<int>& parents) override;
  Result<std::vector<RecordId>> VersionRecords(int vid) const override;
  Result<minidb::Table> Checkout(int vid,
                                 const std::string& out) const override;
  Result<minidb::Row> GetRecordPayload(RecordId rid,
                                       int version_hint) const override;
  uint64_t StorageBytes() const override;
  Status AddAttribute(const minidb::ColumnDef& def) override;
  Status WidenAttribute(int attr_idx, minidb::ValueType to) override;

 private:
  std::vector<minidb::Table> version_tables_;
};

// ---------------------------------------------------------------------------
// Approach 4.1: a single combined table with a vlist array column.
// ---------------------------------------------------------------------------
class CombinedTableBackend final : public DataModelBackend {
 public:
  explicit CombinedTableBackend(minidb::Schema data_schema);

  DataModelType type() const override { return DataModelType::kCombinedTable; }
  Status AddVersion(int vid, const std::vector<RecordId>& rids,
                    const std::vector<NewRecord>& new_records,
                    const std::vector<int>& parents) override;
  Result<std::vector<RecordId>> VersionRecords(int vid) const override;
  Result<minidb::Table> Checkout(int vid,
                                 const std::string& out) const override;
  Result<minidb::Row> GetRecordPayload(RecordId rid,
                                       int version_hint) const override;
  uint64_t StorageBytes() const override;
  Status AddAttribute(const minidb::ColumnDef& def) override;
  Status WidenAttribute(int attr_idx, minidb::ValueType to) override;

 private:
  // Physical position of data attribute k: attributes added after creation
  // land beyond the vlist column (minidb appends columns at the end).
  int PhysicalDataCol(int k) const {
    return k + 1 < vlist_col_ ? k + 1 : k + 2;
  }

  minidb::Table combined_;  // [_rid, attrs..., vlist, late attrs...]
  int vlist_col_;
};

// ---------------------------------------------------------------------------
// Approach 4.2: data table + versioning table keyed by rid (vlist arrays).
// ---------------------------------------------------------------------------
class SplitByVlistBackend final : public DataModelBackend {
 public:
  explicit SplitByVlistBackend(minidb::Schema data_schema);

  DataModelType type() const override { return DataModelType::kSplitByVlist; }
  Status AddVersion(int vid, const std::vector<RecordId>& rids,
                    const std::vector<NewRecord>& new_records,
                    const std::vector<int>& parents) override;
  Result<std::vector<RecordId>> VersionRecords(int vid) const override;
  Result<minidb::Table> Checkout(int vid,
                                 const std::string& out) const override;
  Result<minidb::Row> GetRecordPayload(RecordId rid,
                                       int version_hint) const override;
  uint64_t StorageBytes() const override;
  Status AddAttribute(const minidb::ColumnDef& def) override;
  Status WidenAttribute(int attr_idx, minidb::ValueType to) override;

 private:
  minidb::Table data_;        // [_rid, attrs...]
  minidb::Table versioning_;  // [_rid, vlist]
};

// ---------------------------------------------------------------------------
// Approach 4.3: data table + versioning table keyed by vid (rlist arrays).
// This is the model OrpheusDB adopts.
// ---------------------------------------------------------------------------
class SplitByRlistBackend final : public DataModelBackend {
 public:
  explicit SplitByRlistBackend(minidb::Schema data_schema);

  DataModelType type() const override { return DataModelType::kSplitByRlist; }
  Status AddVersion(int vid, const std::vector<RecordId>& rids,
                    const std::vector<NewRecord>& new_records,
                    const std::vector<int>& parents) override;
  Result<std::vector<RecordId>> VersionRecords(int vid) const override;
  Result<minidb::Table> Checkout(int vid,
                                 const std::string& out) const override;
  Result<minidb::Row> GetRecordPayload(RecordId rid,
                                       int version_hint) const override;
  uint64_t StorageBytes() const override;
  Status AddAttribute(const minidb::ColumnDef& def) override;
  Status WidenAttribute(int attr_idx, minidb::ValueType to) override;

  /// The join strategy used by Checkout; hash-join by default (Sec. 5.5.5).
  void set_join_algorithm(minidb::JoinAlgorithm algo) { join_algo_ = algo; }

  /// Direct access for the partition optimizer.
  const minidb::Table& data_table() const { return data_; }
  const minidb::Table& versioning_table() const { return versioning_; }

 private:
  minidb::Table data_;        // [_rid, attrs...]
  minidb::Table versioning_;  // [vid, rlist]
  minidb::JoinAlgorithm join_algo_ = minidb::JoinAlgorithm::kHashJoin;
  /// True while the data table's rid column is an ascending run (commits
  /// append fresh increasing rids, so this holds in the common case);
  /// lets the compressed-rlist checkout use the serial merge kernel.
  bool data_rid_ascending_ = true;
};

// ---------------------------------------------------------------------------
// Approach 4.4: delta-based — each version stores modifications from a
// single base (precedent) version.
// ---------------------------------------------------------------------------
class DeltaBasedBackend final : public DataModelBackend {
 public:
  explicit DeltaBasedBackend(minidb::Schema data_schema)
      : DataModelBackend(std::move(data_schema)) {}

  DataModelType type() const override { return DataModelType::kDeltaBased; }
  Status AddVersion(int vid, const std::vector<RecordId>& rids,
                    const std::vector<NewRecord>& new_records,
                    const std::vector<int>& parents) override;
  Result<std::vector<RecordId>> VersionRecords(int vid) const override;
  Result<minidb::Table> Checkout(int vid,
                                 const std::string& out) const override;
  Result<minidb::Row> GetRecordPayload(RecordId rid,
                                       int version_hint) const override;
  uint64_t StorageBytes() const override;
  Status AddAttribute(const minidb::ColumnDef& def) override;
  Status WidenAttribute(int attr_idx, minidb::ValueType to) override;

 private:
  struct Delta {
    int base = -1;                  // precedent version (-1 = root)
    minidb::Table inserts;          // [_rid, attrs...] records added vs base
    std::vector<RecordId> deletes;  // rids removed vs base (tombstones)
    Delta(minidb::Schema schema, const std::string& name)
        : inserts(name, std::move(schema)) {}
  };

  std::vector<Delta> deltas_;
  // Membership cache: rebuilt-on-restart index, not counted as storage
  // (the paper's delta model stores only the deltas + precedent table).
  std::vector<std::vector<RecordId>> membership_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_DATA_MODELS_H_
