#ifndef ORPHEUS_COMMON_RANDOM_H_
#define ORPHEUS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace orpheus {

/// Deterministic xorshift128+ pseudo-random generator.
///
/// We use our own generator (rather than std::mt19937) so that benchmark
/// workloads are reproducible bit-for-bit across standard library
/// implementations.
class Xorshift {
 public:
  explicit Xorshift(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 to fill the state from a single seed.
    s_[0] = SplitMix64(&seed);
    s_[1] = SplitMix64(&seed);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Sample k distinct indices from [0, n) (k <= n); order is random.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k) {
    // Floyd's algorithm would avoid the O(n) vector, but n is small enough
    // in all our uses that a partial Fisher-Yates is simpler and fast.
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    if (k > n) k = n;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + Uniform(n - i);
      uint64_t tmp = idx[i];
      idx[i] = idx[j];
      idx[j] = tmp;
    }
    idx.resize(k);
    return idx;
  }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_RANDOM_H_
