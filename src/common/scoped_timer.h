#ifndef ORPHEUS_COMMON_SCOPED_TIMER_H_
#define ORPHEUS_COMMON_SCOPED_TIMER_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace orpheus {

/// Process-wide per-stage wall-time accumulator. Engine hot paths record
/// coarse stages ("partition_store.build", "partition_store.checkout", ...)
/// through ScopedTimer; benches snapshot the totals to report per-stage
/// breakdowns next to end-to-end numbers. Thread-safe; overhead is one
/// mutexed map update per stage exit, negligible at stage granularity.
class StageTimes {
 public:
  static void Record(const std::string& stage, double seconds) {
    std::lock_guard<std::mutex> lock(Mutex());
    auto& entry = Map()[stage];
    entry.first += seconds;
    entry.second += 1;
  }

  /// Accumulated seconds for one stage (0 if never recorded).
  static double Total(const std::string& stage) {
    std::lock_guard<std::mutex> lock(Mutex());
    auto it = Map().find(stage);
    return it == Map().end() ? 0.0 : it->second.first;
  }

  /// (stage, total seconds, call count) tuples, sorted by stage name.
  struct Entry {
    std::string stage;
    double seconds = 0.0;
    uint64_t calls = 0;
  };
  static std::vector<Entry> Snapshot() {
    std::lock_guard<std::mutex> lock(Mutex());
    std::vector<Entry> out;
    out.reserve(Map().size());
    for (const auto& [stage, acc] : Map()) {
      out.push_back({stage, acc.first, acc.second});
    }
    return out;
  }

  static void Reset() {
    std::lock_guard<std::mutex> lock(Mutex());
    Map().clear();
  }

 private:
  using Acc = std::pair<double, uint64_t>;  // seconds, calls
  static std::map<std::string, Acc>& Map() {
    static std::map<std::string, Acc> map;
    return map;
  }
  static std::mutex& Mutex() {
    static std::mutex mu;
    return mu;
  }
};

/// RAII stage timer: accumulates the enclosing scope's wall time into
/// StageTimes under `stage`.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string stage) : stage_(std::move(stage)) {}
  ~ScopedTimer() { StageTimes::Record(stage_, timer_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string stage_;
  Timer timer_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_SCOPED_TIMER_H_
