#ifndef ORPHEUS_COMMON_TABLE_PRINTER_H_
#define ORPHEUS_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace orpheus {

/// Renders aligned ASCII tables for the benchmark harnesses, so every bench
/// binary reports the same rows/series the paper's figures plot.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Write the table, padded per-column, to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_TABLE_PRINTER_H_
