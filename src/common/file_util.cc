#include "common/file_util.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace orpheus {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::Internal(
      StrFormat("%s %s: %s", op, path.c_str(), strerror(err)));
}

/// write(2) the whole buffer, resuming on EINTR and short writes.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path, errno);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("fsync", path, errno);
  return Status::OK();
}

}  // namespace

Result<FileWriter> FileWriter::Create(const std::string& path) {
  ORPHEUS_FAILPOINT("io.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  return FileWriter(fd, path, 0);
}

Result<FileWriter> FileWriter::OpenAt(const std::string& path,
                                      uint64_t offset) {
  ORPHEUS_FAILPOINT("io.open");
  int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("ftruncate", path, err);
  }
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("lseek", path, err);
  }
  return FileWriter(fd, path, offset);
}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      offset_(other.offset_),
      poisoned_(other.poisoned_) {
  other.fd_ = -1;
}

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    offset_ = other.offset_;
    poisoned_ = other.poisoned_;
    other.fd_ = -1;
  }
  return *this;
}

FileWriter::~FileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileWriter::Append(std::string_view data) {
  if (fd_ < 0) return Status::Internal("append to closed file " + path_);
  if (poisoned_) {
    return Status::Internal(
        "append to " + path_ + " after a failed fsync; file state unknown");
  }
#if ORPHEUS_FAILPOINTS_ENABLED
  if (failpoint::AnyArmed() && !data.empty()) {
    // Torn-write simulation: persist only the first half of the buffer,
    // then fire (crash or error). The tail the caller thinks it wrote
    // never reaches the file — exactly what a power cut mid-write does.
    if (auto action = failpoint::internal::ConsumeHit("io.write.partial")) {
      ORPHEUS_RETURN_NOT_OK(
          WriteAll(fd_, data.data(), data.size() / 2, path_));
      offset_ += data.size() / 2;
      if (*action == failpoint::Action::kAbort) {
        failpoint::internal::CrashNow("io.write.partial");
      }
      return Status::Internal(
          "injected failure at failpoint io.write.partial");
    }
  }
#endif
  ORPHEUS_FAILPOINT("io.write");
  ORPHEUS_RETURN_NOT_OK(WriteAll(fd_, data.data(), data.size(), path_));
  offset_ += data.size();
  return Status::OK();
}

Status FileWriter::Sync() {
  if (fd_ < 0) return Status::Internal("fsync of closed file " + path_);
  ORPHEUS_FAILPOINT("io.sync");
  Status s = SyncFd(fd_, path_);
  if (!s.ok()) poisoned_ = true;
  return s;
}

Status FileWriter::Close() {
  if (fd_ < 0) return Status::OK();
  ORPHEUS_FAILPOINT("io.close");
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return ErrnoStatus("open", path, errno);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  auto writer = FileWriter::Create(tmp);
  if (!writer.ok()) return writer.status();
  Status s = writer->Append(data);
  if (s.ok() && sync) s = writer->Sync();
  Status closed = writer->Close();
  if (s.ok()) s = closed;
  if (!s.ok()) {
    ORPHEUS_IGNORE_ERROR(RemoveFile(tmp));  // best-effort cleanup
    return s;
  }
  ORPHEUS_FAILPOINT("io.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ORPHEUS_IGNORE_ERROR(RemoveFile(tmp));
    return ErrnoStatus("rename", tmp, err);
  }
  if (sync) return SyncDir(DirName(path));
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  ORPHEUS_FAILPOINT("io.dirsync");
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", dir, errno);
  Status s = SyncFd(fd, dir);
  ::close(fd);
  return s;
}

Status AtomicRename(const std::string& from, const std::string& to) {
  ORPHEUS_FAILPOINT("io.rename");
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from, errno);
  }
  return SyncDir(DirName(to));
}

Status RemoveFile(const std::string& path) {
  ORPHEUS_FAILPOINT("io.remove");
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("unlink", path, errno);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("stat", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  ORPHEUS_FAILPOINT("io.truncate");
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("ftruncate", path, err);
  }
  Status s = SyncFd(fd, path);
  ::close(fd);
  return s;
}

Status CreateDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  for (const auto& part : Split(path, '/')) {
    if (partial.empty() && part.empty()) {
      partial = "/";
      continue;
    }
    if (part.empty()) continue;
    if (!partial.empty() && partial.back() != '/') partial += '/';
    partial += part;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", partial, errno);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
  std::vector<std::string> out;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      out.push_back(std::move(name));
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

std::string DirName(const std::string& path) {
  auto slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace orpheus

// The io.* failpoint sites used by the crash matrix, for reference:
//   io.open           FileWriter::Create / OpenAt
//   io.write          FileWriter::Append (whole buffer lost)
//   io.write.partial  FileWriter::Append (first half persisted, torn write)
//   io.sync           FileWriter::Sync
//   io.close          FileWriter::Close
//   io.rename         WriteFileAtomic / AtomicRename
//   io.dirsync        SyncDir
//   io.truncate       TruncateFile (WAL torn-tail repair)
//   io.remove         RemoveFile (checkpoint garbage collection)
