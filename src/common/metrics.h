#ifndef ORPHEUS_COMMON_METRICS_H_
#define ORPHEUS_COMMON_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "common/timer.h"
#include "common/trace.h"

/// Process-wide observability layer (DESIGN.md §8).
///
/// Three primitives, all aggregated in a lock-sharded MetricsRegistry:
///   - Counter: monotonic uint64, one relaxed atomic add on the fast path.
///   - Gauge:   last-write-wins int64 (levels, partition counts, degrees).
///   - Histogram: fixed power-of-two buckets with approximate p50/p95/p99;
///     used for latencies (microseconds) and size distributions
///     (delta.chain_len, ...).
///   - TraceSpan: nestable RAII stage tracer. Spans form slash-joined paths
///     ("pstore.migrate/pstore.build"); each path aggregates call count,
///     total and child wall time, and a latency histogram, so any stage's
///     self time and tail latency fall out of one snapshot.
///
/// Conventions: metric names are dot-separated `<layer>.<op>[.<detail>]`
/// (`cvd.checkout.records_materialized`, `delta.chain_len`). Span paths use
/// the layer.op of the enclosing operation.
///
/// Cost model: instrumentation sites cache their Counter/Histogram handle in
/// a function-local static, so the steady state is one branch on a cached
/// bool plus one relaxed atomic RMW — no allocation, no locking. Span
/// enter/exit adds two clock reads and one sharded map update per *stage*,
/// not per row. Building with -DORPHEUS_METRICS=OFF defines
/// ORPHEUS_METRICS_ENABLED=0 and compiles every site out entirely; setting
/// the ORPHEUS_METRICS environment variable to 0 disables collection at
/// startup without rebuilding.

#ifndef ORPHEUS_METRICS_ENABLED
#define ORPHEUS_METRICS_ENABLED 1
#endif

namespace orpheus {

namespace metrics_internal {
/// Reads the ORPHEUS_METRICS environment variable (once, via the checked
/// env parser). Out-of-line so metrics.h does not depend on env.h.
bool ReadMetricsEnv();
}  // namespace metrics_internal

/// Master switch: false when the build compiled instrumentation out or the
/// ORPHEUS_METRICS environment variable is 0. Read once at first use;
/// inline so per-row instrumentation sites pay one guard-variable load.
inline bool MetricsEnabled() {
#if ORPHEUS_METRICS_ENABLED
  static const bool enabled = metrics_internal::ReadMetricsEnv();
  return enabled;
#else
  return false;
#endif
}

/// Monotonic counter. Value updates are relaxed: totals are exact once the
/// writing threads have joined (every engine fan-out awaits its TaskGroup),
/// and monotically approximate while they run.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket b counts values whose bit width is b
/// (i.e. [2^(b-1), 2^b), with bucket 0 = {0}), so Record is a bit_width
/// plus one relaxed atomic add — no allocation, no locking, bounded error
/// of 2x on percentile estimates, exact count/sum/min/max.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit widths of uint64_t + zero

  void Record(uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // min/max via CAS loops; contention is irrelevant at stage granularity.
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  Snapshot TakeSnapshot() const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
};

/// Aggregated statistics for one span path.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_us = 0;
  uint64_t child_us = 0;  // time spent in directly nested spans
  Histogram latency_us;
};

/// The process-wide metric store. Names are registered on first use and
/// never removed (Reset zeroes values, keeping cached handles valid), so
/// instrumentation sites can hold references in function-local statics.
/// Registration and span aggregation are sharded by name hash to keep
/// contention off unrelated call sites.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Fold one finished span into the per-path aggregate. Zero-allocation
  /// once the path is registered (heterogeneous string_view lookup).
  void RecordSpan(std::string_view path, uint64_t elapsed_us,
                  uint64_t child_us);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    struct Span {
      std::string path;
      uint64_t count = 0;
      uint64_t total_us = 0;
      uint64_t self_us = 0;
      Histogram::Snapshot latency_us;
    };
    std::vector<Span> spans;
  };
  /// A consistent-enough copy of everything, each section sorted by name.
  Snapshot TakeSnapshot() const;

  /// Zero every value; registered names (and handles) survive.
  void Reset();

  /// Plaintext snapshot for the CLI `stats` command and debugging.
  std::string ToText() const;
  /// JSON snapshot (the `--metrics-json` bench flag; schema in
  /// tools/metrics_schema.json).
  std::string ToJson() const;

 private:
  static constexpr size_t kNumShards = 16;
  struct Shard {
    // All shards share one rank: they are leaves of the lock order and two
    // shards are never held together (every registry operation touches
    // exactly one shard; snapshot iteration locks them one at a time).
    mutable Mutex mu{"metrics.shard", lock_rank::kMetricsShard};
    // std::map with transparent comparison: stable addresses for handles,
    // string_view lookup without allocating.
    std::map<std::string, Counter, std::less<>> counters ORPHEUS_GUARDED_BY(mu);
    std::map<std::string, Gauge, std::less<>> gauges ORPHEUS_GUARDED_BY(mu);
    std::map<std::string, Histogram, std::less<>> histograms
        ORPHEUS_GUARDED_BY(mu);
    std::map<std::string, SpanStats, std::less<>> spans ORPHEUS_GUARDED_BY(mu);
  };
  Shard& ShardOf(std::string_view name) {
    return shards_[std::hash<std::string_view>{}(name) % kNumShards];
  }
  const Shard& ShardOf(std::string_view name) const {
    return shards_[std::hash<std::string_view>{}(name) % kNumShards];
  }

  Shard shards_[kNumShards];
};

/// RAII stage tracer. Spans nest per thread: a span opened while another is
/// live on the same thread records under "<parent-path>/<name>" and its
/// elapsed time is charged to the parent's child_us, so self times sum
/// correctly. The path lives in a fixed buffer (no allocation); paths
/// longer than the buffer are truncated, never overflowed.
///
/// Each span also emits begin/end events into the trace ring buffers
/// (common/trace.h) when tracing is active, and — when ORPHEUS_SLOW_OP_MS
/// is set — top-level spans exceeding the threshold log their direct-child
/// time breakdown through the structured logger (common/log.h).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!MetricsEnabled()) return;
    active_ = true;
    name_ = name;
    parent_ = current_;
    current_ = this;
    size_t len = 0;
    if (parent_ != nullptr) {
      len = parent_->path_len_;
      std::memcpy(path_, parent_->path_, len);
      if (len < kMaxPath - 1) path_[len++] = '/';
    }
    size_t name_len = std::strlen(name);
    if (name_len > kMaxPath - len) name_len = kMaxPath - len;
    std::memcpy(path_ + len, name, name_len);
    path_len_ = len + name_len;
    trace::EmitBegin(name);
    timer_.Restart();
  }

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  std::string_view path() const { return {path_, path_len_}; }

 private:
  static constexpr size_t kMaxPath = 160;
  static thread_local TraceSpan* current_;

  /// Per-name direct-child wall time, accumulated only while the slow-op
  /// log is enabled; a closing top-level span over the threshold renders
  /// these as its breakdown. Fixed-size so span destruction never
  /// allocates; overflowing names merge into the last slot.
  static constexpr size_t kMaxChildren = 8;
  struct ChildTime {
    const char* name = nullptr;
    uint64_t total_us = 0;
    uint64_t count = 0;
  };

  void AddChildTime(const char* name, uint64_t elapsed_us);
  void LogSlowOp(uint64_t elapsed_us) const;

  bool active_ = false;
  const char* name_ = nullptr;
  TraceSpan* parent_ = nullptr;
  char path_[kMaxPath];
  size_t path_len_ = 0;
  uint64_t child_us_ = 0;
  ChildTime children_[kMaxChildren];
  size_t num_children_ = 0;
  Timer timer_;
};

}  // namespace orpheus

// Instrumentation macros: the only sanctioned way to emit metrics from
// engine code. Each site caches its handle in a function-local static, so
// the enabled fast path is branch + relaxed atomic; with
// ORPHEUS_METRICS_ENABLED=0 the sites compile to nothing.
#if ORPHEUS_METRICS_ENABLED

#define ORPHEUS_METRICS_CONCAT_(a, b) a##b
#define ORPHEUS_METRICS_CONCAT(a, b) ORPHEUS_METRICS_CONCAT_(a, b)

/// Count `delta` events under `name` (a string literal).
#define ORPHEUS_COUNTER_ADD(name, delta)                             \
  do {                                                               \
    if (::orpheus::MetricsEnabled()) {                               \
      static ::orpheus::Counter& orpheus_metrics_counter =           \
          ::orpheus::MetricsRegistry::Global().counter(name);        \
      orpheus_metrics_counter.Add(delta);                            \
    }                                                                \
  } while (0)

/// Set gauge `name` to `value`.
#define ORPHEUS_GAUGE_SET(name, value)                               \
  do {                                                               \
    if (::orpheus::MetricsEnabled()) {                               \
      static ::orpheus::Gauge& orpheus_metrics_gauge =               \
          ::orpheus::MetricsRegistry::Global().gauge(name);          \
      orpheus_metrics_gauge.Set(value);                              \
    }                                                                \
  } while (0)

/// Record `value` into histogram `name`.
#define ORPHEUS_HISTOGRAM_RECORD(name, value)                        \
  do {                                                               \
    if (::orpheus::MetricsEnabled()) {                               \
      static ::orpheus::Histogram& orpheus_metrics_hist =            \
          ::orpheus::MetricsRegistry::Global().histogram(name);      \
      orpheus_metrics_hist.Record(value);                            \
    }                                                                \
  } while (0)

/// Open a stage span covering the rest of the enclosing scope.
#define ORPHEUS_TRACE_SPAN(name)                  \
  ::orpheus::TraceSpan ORPHEUS_METRICS_CONCAT(    \
      orpheus_trace_span_, __LINE__)(name)

#else  // !ORPHEUS_METRICS_ENABLED

#define ORPHEUS_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (0)
#define ORPHEUS_GAUGE_SET(name, value) \
  do {                                 \
  } while (0)
#define ORPHEUS_HISTOGRAM_RECORD(name, value) \
  do {                                        \
  } while (0)
#define ORPHEUS_TRACE_SPAN(name) \
  do {                           \
  } while (0)

#endif  // ORPHEUS_METRICS_ENABLED

#endif  // ORPHEUS_COMMON_METRICS_H_
