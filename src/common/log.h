#ifndef ORPHEUS_COMMON_LOG_H_
#define ORPHEUS_COMMON_LOG_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

/// Unified structured logging (DESIGN.md §9).
///
/// Every human-facing diagnostic in the engine goes through this logger
/// (tools/lint.py bans direct stderr writes elsewhere under src/), so one
/// environment knob controls verbosity, formatting and destination:
///
///   ORPHEUS_LOG        = debug | info | warn | error | off   (default info)
///   ORPHEUS_LOG_FILE   = <path>   append to a file instead of stderr
///   ORPHEUS_LOG_FORMAT = text | json                         (default text)
///   ORPHEUS_SLOW_OP_MS = <n>      log any top-level span slower than n ms
///                                 with its per-child time breakdown
///
/// Records are a message plus key=value fields, not a format string:
///
///   LOG_WARN("checkout slow", {{"cvd", name}, {"ms", elapsed_ms}});
///
/// renders as
///
///   [2026-08-06T12:00:00Z] W cli/main.cc:41 checkout slow cvd=wine ms=1830
///
/// in text mode, or one JSON object per line in json mode. Levels are
/// checked before arguments are evaluated (the macros guard), so a
/// disabled LOG_DEBUG costs one branch.
///
/// The logger is thread-safe (one short critical section per record) and
/// usable from static constructors/destructors and abort paths; it never
/// allocates its own threads and never throws.

namespace orpheus::log {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// One key=value field. Values are pre-rendered to strings; `quoted`
/// records whether JSON output must quote the value (strings) or not
/// (numbers and booleans, emitted verbatim).
struct Field {
  std::string key;
  std::string value;
  bool quoted = true;

  Field(std::string_view k, std::string_view v)
      : key(k), value(v), quoted(true) {}
  Field(std::string_view k, const char* v)
      : key(k), value(v == nullptr ? "" : v), quoted(true) {}
  Field(std::string_view k, const std::string& v)
      : key(k), value(v), quoted(true) {}
  Field(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), quoted(false) {}
  Field(std::string_view k, int v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  Field(std::string_view k, long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  Field(std::string_view k, long long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  Field(std::string_view k, unsigned v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  Field(std::string_view k, unsigned long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  Field(std::string_view k, unsigned long long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  Field(std::string_view k, double v);
};

/// True when records at `level` pass the configured threshold. The macros
/// call this before evaluating their arguments.
bool Enabled(Level level);

/// Emit one record unconditionally (no level filtering — the macros do
/// that; direct callers like abort paths use this to guarantee the record
/// is written regardless of ORPHEUS_LOG).
void Write(Level level, const char* file, int line, std::string_view msg,
           std::initializer_list<Field> fields);
void Write(Level level, const char* file, int line, std::string_view msg);
/// Same, for field lists built at runtime (e.g. the slow-op breakdown).
void WriteV(Level level, const char* file, int line, std::string_view msg,
            const std::vector<Field>& fields);

/// Slow-operation threshold in milliseconds from ORPHEUS_SLOW_OP_MS;
/// 0 (the default, or an unset variable) disables the slow-op log.
uint64_t SlowOpThresholdMs();

/// Test hooks: override the level / sink for the duration of a test.
/// Passing nullptr to CaptureForTest restores the configured sink.
void SetLevelForTest(Level level);
void CaptureForTest(std::string* capture);
/// Re-read ORPHEUS_LOG / ORPHEUS_LOG_FORMAT / ORPHEUS_LOG_FILE after a
/// test changed them, resetting level/format/sink to defaults first (a
/// previously opened file sink is closed). Mirrors fresh-process startup,
/// including the stderr fallback + warn-once when the file cannot open.
void ReinitFromEnvForTest();

}  // namespace orpheus::log

#define ORPHEUS_LOG_AT(level, ...)                                     \
  do {                                                                 \
    if (::orpheus::log::Enabled(level)) {                              \
      ::orpheus::log::Write(level, __FILE__, __LINE__, __VA_ARGS__);   \
    }                                                                  \
  } while (0)

#define LOG_DEBUG(...) ORPHEUS_LOG_AT(::orpheus::log::Level::kDebug, __VA_ARGS__)
#define LOG_INFO(...) ORPHEUS_LOG_AT(::orpheus::log::Level::kInfo, __VA_ARGS__)
#define LOG_WARN(...) ORPHEUS_LOG_AT(::orpheus::log::Level::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) ORPHEUS_LOG_AT(::orpheus::log::Level::kError, __VA_ARGS__)

#endif  // ORPHEUS_COMMON_LOG_H_
