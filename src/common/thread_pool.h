#ifndef ORPHEUS_COMMON_THREAD_POOL_H_
#define ORPHEUS_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace orpheus {

/// A fixed-size thread pool shared by all engine hot paths (partition
/// build, checkout joins, migration, delta materialization).
///
/// Design constraints, in priority order:
///   1. Determinism: every parallel construct in the engine writes into
///      pre-assigned output slots and stitches them in input order, so the
///      result is byte-identical for any degree. Degree 1 runs everything
///      inline on the calling thread — exact serial execution, used by the
///      determinism tests as the reference.
///   2. No nested fan-out: a task that itself calls ParallelFor/Submit runs
///      that work inline (pool workers never re-submit), which bounds the
///      task graph and makes Wait() deadlock-free by construction.
///   3. Helping: a thread blocked in Wait() drains queued tasks instead of
///      sleeping, so the caller participates in its own fan-out.
///
/// The global pool's degree comes from the ORPHEUS_THREADS environment
/// variable, defaulting to std::thread::hardware_concurrency(). Benches and
/// tests may override it at a quiescent point with SetDegree().
class ThreadPool {
 public:
  /// The process-wide pool. Constructed (and ORPHEUS_THREADS read) on first
  /// use.
  static ThreadPool& Global();

  explicit ThreadPool(int degree);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (>= 1). Degree d runs d-1 worker threads plus the
  /// submitting thread (which helps while waiting).
  int degree() const { return degree_; }

  /// Re-size the pool. Must only be called while no tasks are in flight
  /// (benches/tests switching between threads=1 and threads=N runs).
  void SetDegree(int degree);

  /// True when the calling thread is one of this pool's workers; parallel
  /// constructs use this to degrade nested fan-out to inline execution.
  bool InWorker() const;

  /// A group of tasks that can be awaited together (the Submit/Wait API).
  /// Submission order is preserved in the queue but tasks run concurrently;
  /// callers must not depend on execution order.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool);
    /// Waits for all submitted tasks.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Schedule `fn`. Runs inline immediately when the pool is serial
    /// (degree 1) or the caller is already a pool worker.
    void Submit(std::function<void()> fn);

    /// Block until every submitted task has finished, helping to drain the
    /// pool's queue while waiting.
    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool* pool_;
    // Never held together with the pool's mu_ (Submit and FinishTask both
    // bump pending_ outside the queue lock), so groups may live on worker
    // stacks without risking lock inversion against the queue.
    Mutex mu_{"pool.group", lock_rank::kTaskGroup};
    CondVar done_cv_;
    int pending_ ORPHEUS_GUARDED_BY(mu_) = 0;
  };

  /// Split [begin, end) into chunks of at least `grain` indices and invoke
  /// `fn(chunk_begin, chunk_end)` on each, in parallel. Chunk boundaries
  /// depend only on (begin, end, grain, degree()), never on timing; with
  /// degree 1 (or a range no larger than grain) this is exactly
  /// `fn(begin, end)` on the calling thread.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void StartWorkers(int degree);
  void StopWorkers();
  void WorkerLoop(int worker_index);
  /// Pop and run one queued task; false if the queue was empty.
  bool RunOneTask();
  static void FinishTask(TaskGroup* group);

  // degree_ and workers_ change only in StartWorkers/StopWorkers, which the
  // SetDegree contract restricts to quiescent points; they stay unguarded so
  // degree() and InWorker() are lock-free on the hot path.
  int degree_ = 1;
  std::vector<std::thread> workers_;

  Mutex mu_{"pool.queue", lock_rank::kThreadPool};
  CondVar work_cv_;
  std::deque<Task> queue_ ORPHEUS_GUARDED_BY(mu_);
  bool stopping_ ORPHEUS_GUARDED_BY(mu_) = false;
};

/// A single named thread for long-running *blocking* work — server accept
/// loops, per-connection handlers — that must never occupy a pool worker
/// (a handler parked in poll() would starve the fan-out constructs above).
/// This is the one sanctioned home for threads outside the pool: the
/// tools/lint.py bare-thread rule confines std::thread to this file, so
/// every thread in the process is either a pool worker or a DedicatedThread
/// with a trace-visible name.
///
/// The function must return on its own (typically by observing a stop flag
/// its owner sets); Join()/the destructor only wait, they cannot interrupt.
class DedicatedThread {
 public:
  DedicatedThread() = default;
  /// Starts `fn` on a new thread registered under `name` in trace dumps.
  DedicatedThread(std::string name, std::function<void()> fn);
  /// Joins if still running.
  ~DedicatedThread();

  DedicatedThread(DedicatedThread&&) noexcept = default;
  DedicatedThread& operator=(DedicatedThread&& other) noexcept;
  DedicatedThread(const DedicatedThread&) = delete;
  DedicatedThread& operator=(const DedicatedThread&) = delete;

  /// Blocks until `fn` returns. Safe to call twice (second is a no-op).
  void Join();
  bool joinable() const { return thread_.joinable(); }

 private:
  std::thread thread_;
};

/// Shorthand for ThreadPool::Global().ParallelFor(...).
inline void ParallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

/// Parallel order-preserving collect: run `fn(lo, hi, &chunk_out)` over
/// chunks of [0, n) and return the chunk outputs concatenated in index
/// order. Because consecutive ranges are stitched back in order, the result
/// equals the serial single-chunk run for any filter/map-style `fn` —
/// byte-identical at every pool degree. This is the "probe per-chunk,
/// stitch in order" primitive behind the parallel hash-join scans.
template <typename T, typename Fn>
std::vector<T> ParallelCollect(size_t n, size_t grain, Fn fn) {
  Mutex mu("pool.collect");
  std::vector<std::pair<size_t, std::vector<T>>> chunks;
  ThreadPool::Global().ParallelFor(0, n, grain,
                                   [&](size_t lo, size_t hi) {
                                     std::vector<T> local;
                                     fn(lo, hi, &local);
                                     MutexLock lock(&mu);
                                     chunks.emplace_back(lo, std::move(local));
                                   });
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t total = 0;
  for (const auto& [lo, v] : chunks) total += v.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& [lo, v] : chunks) {
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_THREAD_POOL_H_
