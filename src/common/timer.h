#ifndef ORPHEUS_COMMON_TIMER_H_
#define ORPHEUS_COMMON_TIMER_H_

#include <chrono>

namespace orpheus {

/// Wall-clock stopwatch used by benches to report paper-style timings.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_TIMER_H_
